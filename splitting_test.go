package samurai

import (
	"context"
	"math"
	"testing"

	"samurai/internal/rng"
)

// leaf is one OnLeaf observation, captured for bit comparison.
type leaf struct {
	level float64
	den   uint64
	logLR float64
}

func collectLeaves(dst *[]leaf) func(float64, uint64, float64) {
	return func(level float64, den uint64, logLR float64) {
		*dst = append(*dst, leaf{level, den, logLR})
	}
}

// TestSplitGlitchDeterministicBranching: with an always-crossed first
// level (glitch depth is ≥ 0 by construction) and an unreachable final
// level, every root branches exactly once, the leaf weights conserve
// the root count exactly, untilted bursts carry log-LR exactly 0, and
// the whole run — result and leaf-by-leaf — is bit-identical on rerun.
func TestSplitGlitchDeterministicBranching(t *testing.T) {
	run := func() (*leafRun, error) {
		var leaves []leaf
		res, err := RunSplitGlitchCtx(context.Background(), SplitConfig{
			Seed:      21,
			Levels:    []float64{0, 1e9},
			Bursts:    2,
			Particles: 2,
			Clones:    2,
			OnLeaf:    collectLeaves(&leaves),
		})
		if err != nil {
			return nil, err
		}
		return &leafRun{res.Roots, res.Leaves, res.Hits, res.P, res.LevelHits, leaves}, nil
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.roots != 2 || a.leaves != 4 {
		t.Fatalf("want 2 roots branching once into 4 leaves, got %d/%d", a.roots, a.leaves)
	}
	if a.hits != 0 || a.p != 0 {
		t.Fatalf("unreachable final level was hit: hits=%d p=%g", a.hits, a.p)
	}
	if a.levelHits[0] != 2 || a.levelHits[1] != 0 {
		t.Fatalf("level hits %v, want [2 0]", a.levelHits)
	}
	mass := 0.0
	for _, l := range a.leafs {
		if l.logLR != 0 {
			t.Fatalf("untilted leaf carries log-LR %g", l.logLR)
		}
		if l.level < 0 {
			t.Fatalf("negative glitch depth %g", l.level)
		}
		// den is a power of two, so the float sum is exact.
		mass += 1 / float64(l.den)
	}
	if mass != float64(a.roots) {
		t.Fatalf("leaf weights sum to %g, want %d exactly", mass, a.roots)
	}

	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if b.leaves != a.leaves || math.Float64bits(b.p) != math.Float64bits(a.p) {
		t.Fatal("rerun not bit-identical")
	}
	for i := range a.leafs {
		if math.Float64bits(a.leafs[i].level) != math.Float64bits(b.leafs[i].level) ||
			a.leafs[i].den != b.leafs[i].den ||
			math.Float64bits(a.leafs[i].logLR) != math.Float64bits(b.leafs[i].logLR) {
			t.Fatalf("leaf %d differs across reruns: %+v vs %+v", i, a.leafs[i], b.leafs[i])
		}
	}
}

type leafRun struct {
	roots, leaves, hits int
	p                   float64
	levelHits           []int
	leafs               []leaf
}

// TestSplitGlitchGenealogyPinned: the single-particle single-burst run
// reproduces, bit for bit, a direct RunCtx at the seed derived from the
// documented genealogy (root.SplitInto(i), then one Uint64 per burst) —
// including the tilt's log-likelihood ratio, pinning the composition of
// importance sampling with splitting.
func TestSplitGlitchGenealogyPinned(t *testing.T) {
	const seed, tilt = 77, -0.05
	var leaves []leaf
	_, err := RunSplitGlitchCtx(context.Background(), SplitConfig{
		Base:      Config{TiltEV: tilt},
		Seed:      seed,
		Levels:    []float64{1e9},
		Bursts:    1,
		Particles: 1,
		OnLeaf:    collectLeaves(&leaves),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 1 {
		t.Fatalf("want 1 leaf, got %d", len(leaves))
	}
	var stream rng.Stream
	rng.New(seed).SplitInto(0, &stream)
	res, err := RunCtx(context.Background(), Config{Seed: stream.Uint64(), TiltEV: tilt})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(leaves[0].level) != math.Float64bits(res.GlitchDepth) {
		t.Fatalf("leaf level %x, direct glitch depth %x",
			math.Float64bits(leaves[0].level), math.Float64bits(res.GlitchDepth))
	}
	if math.Float64bits(leaves[0].logLR) != math.Float64bits(res.LogLR) {
		t.Fatal("leaf log-LR not bit-identical to the direct tilted run")
	}
	if res.LogLR == 0 {
		t.Fatal("tilted run carries no likelihood ratio — tilt not applied")
	}
}

// TestSplitGlitchValidation: non-positive burst counts are rejected
// before any simulation runs.
func TestSplitGlitchValidation(t *testing.T) {
	if _, err := RunSplitGlitch(SplitConfig{Levels: []float64{1}}); err == nil {
		t.Fatal("zero bursts accepted")
	}
}

// TestSplitGlitchCancel: a cancelled context aborts the run with the
// context's error.
func TestSplitGlitchCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSplitGlitchCtx(ctx, SplitConfig{
		Levels: []float64{1}, Bursts: 1, Particles: 1,
	}); err == nil {
		t.Fatal("cancelled split run succeeded")
	}
}

package samurai

import (
	"context"
	"fmt"

	"samurai/internal/rareevent"
	"samurai/internal/rng"
	"samurai/internal/trap"
)

// SplitConfig configures multilevel splitting on the glitch-depth level
// function (sram.GlitchDepth, surfaced as Result.GlitchDepth). Each
// root particle is one cell: its trap population is sampled on the
// first write burst and frozen for every later burst, so only the trap
// occupancy paths re-randomise between bursts — repeated writes to the
// same physical cell. The estimated event is first passage of the
// running-max glitch depth over a campaign of Bursts writes:
//
//	P[ max_{b ≤ Bursts} GlitchDepth_b ≥ Levels[last] ]
//
// Base.TiltEV composes with the splitting: every burst contributes its
// exact log-likelihood ratio to the particle weight, so importance
// sampling and splitting can attack the same rare event together.
type SplitConfig struct {
	// Base is the per-burst methodology configuration. Base.Seed is
	// ignored — burst seeds are drawn from the particle streams so the
	// whole run is a pure function of Seed and the particle genealogy.
	Base Config
	// Seed is the master seed of the particle genealogy.
	Seed uint64
	// Levels are the ascending glitch-depth thresholds; the last one is
	// the rare event, the ones before it are branching stages. The
	// Vdd/2 decision threshold is depth 1, so Levels ending in 1 ask
	// for the write-error probability itself.
	Levels []float64
	// Bursts is the number of write bursts per particle path.
	Bursts int
	// Particles and Clones are passed to rareevent.SplitSpec (defaults
	// 64 and 2).
	Particles int
	Clones    int
	// OnLeaf, when non-nil, observes every terminal particle (level,
	// integer weight denominator, accumulated log-LR) — the hook the
	// weight-conservation tests use.
	OnLeaf func(level float64, den uint64, logLR float64)
}

// RunSplitGlitch is RunSplitGlitchCtx without cancellation.
func RunSplitGlitch(cfg SplitConfig) (*rareevent.SplitResult, error) {
	return RunSplitGlitchCtx(context.Background(), cfg)
}

// RunSplitGlitchCtx runs multilevel splitting over repeated write
// bursts of the full two-pass methodology and returns the unbiased
// estimate of the campaign-level rare event. For a fixed SplitConfig
// the result is bit-identical across runs and machines.
func RunSplitGlitchCtx(ctx context.Context, cfg SplitConfig) (*rareevent.SplitResult, error) {
	if cfg.Bursts <= 0 {
		return nil, fmt.Errorf("samurai: splitting needs a positive burst count, got %d", cfg.Bursts)
	}
	base := cfg.Base.defaults()
	spec := rareevent.SplitSpec{
		Levels:    cfg.Levels,
		Clones:    cfg.Clones,
		Particles: cfg.Particles,
		Stages:    cfg.Bursts,
		OnLeaf:    cfg.OnLeaf,
	}
	init := func(int, *rng.Stream) (any, error) {
		// The particle state is the cell's trap population; nil until
		// the first burst samples it.
		return (map[string]trap.Profile)(nil), nil
	}
	step := func(stage int, state any, r *rng.Stream) (any, float64, float64, error) {
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, err
		}
		c := base
		c.Profiles = state.(map[string]trap.Profile)
		c.Seed = r.Uint64()
		res, err := RunCtx(ctx, c)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("burst %d: %w", stage, err)
		}
		// Freeze the population sampled by the first burst; branched
		// siblings share the map read-only.
		return res.Profiles, res.GlitchDepth, res.LogLR, nil
	}
	return rareevent.RunSplit(spec, init, step, rng.New(cfg.Seed))
}

package samurai

import "samurai/internal/waveform"

// constWave is a test helper building a constant waveform.
func constWave(v float64) *waveform.PWL { return waveform.Constant(v) }

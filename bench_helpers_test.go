package samurai_test

import (
	"runtime"
	"testing"
	"time"

	"samurai/internal/circuit"
	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/sram"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

func benchCoreUniformise(b *testing.B) {
	b.ReportAllocs()
	tech := device.Node("90nm")
	ctx := tech.TrapContext(tech.Vdd)
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0}
	ls := ctx.RateSum(tr)
	horizon := 1e4 / ls
	r := rng.New(1)
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		p, err := markov.Uniformise(ctx, tr, markov.ConstantBias(tech.Vdd), 0, horizon, r.Split(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		events += p.Transitions()
	}
	b.ReportMetric(float64(events)/float64(b.N), "transitions/op")
}

// benchBatchUniformise runs the batched SoA kernel on n lanes of the
// BenchmarkCoreUniformise workload (same trap, same constant bias, same
// 10⁴-candidate horizon per lane) and reports the per-trap-path cost.
// The sequential kernel runs inside the same op with the timer stopped,
// so the reported speedup-x is a same-run, same-thermal-state ratio —
// comparing ns/op across two separately-timed benchmarks is ±15% on a
// frequency-scaling host, which would make the ≥5x gate meaningless.
func benchBatchUniformise(b *testing.B, n int) {
	b.ReportAllocs()
	tech := device.Node("90nm")
	ctx := tech.TrapContext(tech.Vdd)
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0}
	ls := ctx.RateSum(tr)
	horizon := 1e4 / ls
	bias := waveform.Constant(tech.Vdd)
	traps := make([]trap.Trap, n)
	for i := range traps {
		traps[i] = tr
	}
	bs := markov.NewBatchState()
	r := rng.New(1)
	b.ResetTimer()
	events := 0
	var seqNs int64
	for i := 0; i < b.N; i++ {
		paths, err := bs.Run(ctx, traps, bias, 0, horizon, r.Split(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range paths {
			events += p.Transitions()
		}
		b.StopTimer()
		// Flush collector debt between the two kernels' windows so
		// neither pays assists for the other's garbage: the comparison
		// is per-candidate compute, and both kernels allocate the same
		// per-path storage anyway.
		runtime.GC()
		parent := r.Split(uint64(i))
		start := time.Now()
		for k := 0; k < n; k++ {
			p, err := markov.Uniformise(ctx, tr, markov.ConstantBias(tech.Vdd), 0, horizon, parent.Split(uint64(k)))
			if err != nil {
				b.Fatal(err)
			}
			events -= p.Transitions()
		}
		seqNs += time.Since(start).Nanoseconds()
		runtime.GC()
		b.StartTimer()
	}
	if events != 0 {
		b.Fatal("batch and sequential kernels disagree on transition counts")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/trap-path")
	b.ReportMetric(float64(seqNs)/float64(b.Elapsed().Nanoseconds()), "speedup-x")
}

// benchArrayTransient runs a hold-state transient on an n×n shared-line
// SRAM array through the automatically selected sparse MNA backend. It
// reports per-step cost and the frozen pattern's nonzero count — the
// acceptance criterion is that ns/step tracks nnz (which grows with
// cell count), not unknowns² as the dense path would.
func benchArrayTransient(b *testing.B, n int) {
	b.ReportAllocs()
	tech := device.Node("90nm")
	wl := make([]*waveform.PWL, n)
	bl := make([]*waveform.PWL, n)
	blb := make([]*waveform.PWL, n)
	arr, err := sram.BuildArray(sram.ArrayConfig{Rows: n, Cols: n, Cell: sram.CellConfig{Tech: tech}}, wl, bl, blb)
	if err != nil {
		b.Fatal(err)
	}
	ic := arr.InitialConditions(func(r, c int) int { return (r + c) % 2 })
	const steps = 10
	const dt = 2e-11
	nnz := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := arr.Circuit.NewRunner(circuit.TransientSpec{
			T0: 0, T1: steps * dt, Dt: dt,
			UIC: true, InitialV: ic,
		})
		if err != nil {
			b.Fatal(err)
		}
		for !r.Done() {
			if err := r.Step(dt); err != nil {
				b.Fatal(err)
			}
		}
		nnz = r.MatrixNNZ()
	}
	b.ReportMetric(float64(nnz), "nnz")
	b.ReportMetric(float64(arr.Circuit.Size()), "unknowns")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*steps), "ns/step")
}

func benchCellTransient(b *testing.B) {
	b.ReportAllocs()
	tech := device.Node("90nm")
	p := sram.Fig8Pattern(tech.Vdd)
	wl, bl, blb, err := p.Waveforms()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell, err := sram.Build(sram.CellConfig{Tech: tech}, wl, bl, blb)
		if err != nil {
			b.Fatal(err)
		}
		run, err := cell.Evaluate(p, 0)
		if err != nil {
			b.Fatal(err)
		}
		if run.NumError != 0 {
			b.Fatal("clean transient failed")
		}
	}
}

package samurai_test

import (
	"testing"

	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/sram"
	"samurai/internal/trap"
)

func benchCoreUniformise(b *testing.B) {
	b.ReportAllocs()
	tech := device.Node("90nm")
	ctx := tech.TrapContext(tech.Vdd)
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0}
	ls := ctx.RateSum(tr)
	horizon := 1e4 / ls
	r := rng.New(1)
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		p, err := markov.Uniformise(ctx, tr, markov.ConstantBias(tech.Vdd), 0, horizon, r.Split(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		events += p.Transitions()
	}
	b.ReportMetric(float64(events)/float64(b.N), "transitions/op")
}

func benchCellTransient(b *testing.B) {
	b.ReportAllocs()
	tech := device.Node("90nm")
	p := sram.Fig8Pattern(tech.Vdd)
	wl, bl, blb, err := p.Waveforms()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell, err := sram.Build(sram.CellConfig{Tech: tech}, wl, bl, blb)
		if err != nil {
			b.Fatal(err)
		}
		run, err := cell.Evaluate(p, 0)
		if err != nil {
			b.Fatal(err)
		}
		if run.NumError != 0 {
			b.Fatal("clean transient failed")
		}
	}
}

// Package units collects the physical constants and unit helpers used
// throughout the SAMURAI reproduction. All quantities are SI unless a
// name says otherwise (energies in electron-volts are suffixed EV).
package units

import "math"

// Fundamental constants (CODATA values, SI).
const (
	BoltzmannJPerK     = 1.380649e-23     // k, J/K
	ElectronCharge     = 1.602176634e-19  // q, C
	ElectronVoltJ      = 1.602176634e-19  // 1 eV in J
	VacuumPermittivity = 8.8541878128e-12 // ε0, F/m
	RoomTemperature    = 300.0            // K, default simulation temperature
)

// Derived material constants.
const (
	// SiO2Permittivity is the permittivity of gate-oxide SiO2 (κ = 3.9), F/m.
	SiO2Permittivity = 3.9 * VacuumPermittivity
)

// ThermalVoltage returns kT/q in volts at temperature t (kelvin).
func ThermalVoltage(t float64) float64 {
	return BoltzmannJPerK * t / ElectronCharge
}

// ThermalEnergyEV returns kT in electron-volts at temperature t (kelvin).
func ThermalEnergyEV(t float64) float64 {
	return BoltzmannJPerK * t / ElectronVoltJ
}

// Common engineering prefixes, handy for building readable parameter
// literals (e.g. 45*units.Nano for 45 nm).
const (
	Femto = 1e-15
	Pico  = 1e-12
	Nano  = 1e-9
	Micro = 1e-6
	Milli = 1e-3
	Kilo  = 1e3
	Mega  = 1e6
	Giga  = 1e9
)

// DB returns 10*log10(x), the decibel value of a power ratio. It returns
// -Inf for x <= 0 so that callers can plot log-scale quantities without
// special-casing empty bins.
func DB(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(x)
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ApproxEqual reports whether a and b agree to within rel relative
// tolerance (or abs absolute tolerance near zero). It is the single
// floating-point comparison helper shared by tests and experiment code.
func ApproxEqual(a, b, rel, abs float64) bool {
	d := math.Abs(a - b)
	if d <= abs {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

package units

import (
	"math"
	"testing"
)

func TestThermalVoltage(t *testing.T) {
	// kT/q at 300 K ≈ 25.85 mV.
	if v := ThermalVoltage(300); math.Abs(v-0.02585) > 1e-4 {
		t.Fatalf("Vt(300K) = %g", v)
	}
	if ThermalVoltage(600) <= ThermalVoltage(300) {
		t.Fatal("thermal voltage must grow with temperature")
	}
}

func TestThermalEnergyEV(t *testing.T) {
	if e := ThermalEnergyEV(300); math.Abs(e-0.02585) > 1e-4 {
		t.Fatalf("kT(300K) = %g eV", e)
	}
}

func TestDB(t *testing.T) {
	if DB(10) != 10 {
		t.Fatalf("DB(10) = %g", DB(10))
	}
	if DB(1) != 0 {
		t.Fatalf("DB(1) = %g", DB(1))
	}
	if !math.IsInf(DB(0), -1) || !math.IsInf(DB(-3), -1) {
		t.Fatal("non-positive input must give -Inf")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9, 0) {
		t.Fatal("relative tolerance broken")
	}
	if !ApproxEqual(0, 1e-12, 0, 1e-9) {
		t.Fatal("absolute tolerance broken")
	}
	if ApproxEqual(1, 2, 1e-3, 1e-3) {
		t.Fatal("clearly different values accepted")
	}
}

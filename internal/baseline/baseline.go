// Package baseline implements the comparison methods the paper argues
// against:
//
//   - StationaryTrace follows the spirit of Ye et al. (paper ref [10]):
//     RTN-like waveforms generated with trap statistics frozen at a
//     single reference bias, blind to the bias-dependent non-stationary
//     behaviour that dominates SRAM operation.
//   - WorstCasePower is the classical "stationary analysis" bound: the
//     RTN noise power evaluated with every trap held at its
//     worst-case-activity bias. Comparing it against the power realised
//     under an actual switching bias quantifies the pessimism the paper
//     cites (§I-B, up to ~15 dB).
package baseline

import (
	"math"

	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/rtn"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

// StationaryTrace generates an RTN trace with every trap simulated as a
// *stationary* telegraph process whose rates are frozen at vgsRef,
// regardless of the actual bias waveform. The amplitude composition
// (Eq 3) still uses the true drain current so the comparison against
// SAMURAI isolates the statistics, not the amplitude model.
func StationaryTrace(profile trap.Profile, dev device.MOSParams, vgsRef float64, vgs, id *waveform.PWL, t0, t1 float64, n int, r *rng.Stream) (*rtn.Trace, []*markov.Path, error) {
	paths := make([]*markov.Path, len(profile.Traps))
	for i, tr := range profile.Traps {
		p, err := markov.Gillespie(profile.Ctx, tr, vgsRef, t0, t1, r.Split(uint64(i)))
		if err != nil {
			return nil, nil, err
		}
		paths[i] = p
	}
	trace, err := rtn.Compose(paths, dev, vgs, id, t0, t1, n)
	if err != nil {
		return nil, nil, err
	}
	return trace, paths, nil
}

// WorstCaseBias returns, for each trap, the bias in [vLo, vHi] at which
// its activity 4p(1−p) peaks (scanned on a uniform grid), together with
// the peak activity.
func WorstCaseBias(ctx trap.Context, tr trap.Trap, vLo, vHi float64, grid int) (vgs, activity float64) {
	if grid < 2 {
		grid = 2
	}
	best, bestV := -1.0, vLo
	for i := 0; i < grid; i++ {
		v := vLo + (vHi-vLo)*float64(i)/float64(grid-1)
		a := ctx.Activity(tr, v)
		if a > best {
			best, bestV = a, v
		}
	}
	return bestV, best
}

// WorstCasePower returns the stationary RTN noise power (A²) predicted
// by holding every trap at its individual worst-case bias — the upper
// bound a stationary analysis would have to assume for a device whose
// gate swings across [vLo, vHi]. deltaI is the per-trap Eq (3) step
// amplitude at the worst-case bias.
func WorstCasePower(profile trap.Profile, dev device.MOSParams, idAtWorst float64, vLo, vHi float64) float64 {
	total := 0.0
	for _, tr := range profile.Traps {
		v, _ := WorstCaseBias(profile.Ctx, tr, vLo, vHi, 1024)
		p := profile.Ctx.OccupancyProb(tr, v)
		dI := rtn.StepAmplitude(dev, v, idAtWorst)
		total += dI * dI * p * (1 - p)
	}
	return total
}

// EmpiricalPower returns the variance of a sampled trace (A²).
func EmpiricalPower(tr *rtn.Trace) float64 {
	if len(tr.I) == 0 {
		return 0
	}
	mean := tr.Mean()
	s := 0.0
	for _, v := range tr.I {
		d := v - mean
		s += d * d
	}
	return s / float64(len(tr.I))
}

// PessimismDB returns 10·log10(predicted/actual) — the dB gap between a
// stationary worst-case prediction and the realised non-stationary
// power.
func PessimismDB(predicted, actual float64) float64 {
	if actual <= 0 || predicted <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(predicted/actual)
}

package baseline

import (
	"math"
	"testing"

	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/rtn"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

func testSetup() (device.MOSParams, trap.Context) {
	tech := device.Node("90nm")
	dev := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)
	return dev, tech.TrapContext(tech.Vdd)
}

func TestStationaryTraceIgnoresBias(t *testing.T) {
	dev, ctx := testSetup()
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0}
	profile := trap.Profile{Ctx: ctx, Traps: []trap.Trap{tr}}
	ls := ctx.RateSum(tr)
	horizon := 2e3 / ls

	// A violently swinging bias...
	swing, err := waveform.New([]float64{0, horizon}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	id := waveform.Constant(50e-6)

	_, paths, err := StationaryTrace(profile, dev, ctx.VRef, swing, id, 0, horizon, 256, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// ...must still produce the activity of the frozen reference bias:
	// at VRef the trap is maximally active; at the actual bias (0 V)
	// it would be pinned. Transition count must reflect VRef.
	wantRate := 2.0 / (1/ctx.RateSum(tr)*2 + 0) // ballpark: λs/2 per state change pair
	got := float64(paths[0].Transitions()) / horizon
	if got < wantRate/10 {
		t.Fatalf("stationary baseline froze at the wrong bias: rate %g", got)
	}
	// For contrast, the exact non-stationary simulation at the actual
	// pinned bias produces (almost) no transitions.
	exact, err := markov.Uniformise(ctx, tr, markov.ConstantBias(0), 0, horizon, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Transitions() > paths[0].Transitions()/10 {
		t.Fatalf("pinned-bias chain unexpectedly active: %d vs %d",
			exact.Transitions(), paths[0].Transitions())
	}
}

func TestWorstCaseBiasFindsActivityPeak(t *testing.T) {
	_, ctx := testSetup()
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0.05}
	v, act := WorstCaseBias(ctx, tr, 0, 2.4, 256)
	// Peak activity is at β=1, i.e. where the level split crosses 0.
	cEff := ctx.Coupling * ctx.EffectiveCoupling(tr)
	wantV := ctx.VRef + tr.E/cEff
	if math.Abs(v-wantV) > 0.05 {
		t.Fatalf("worst-case bias %g, want ≈%g", v, wantV)
	}
	if act < 0.99 {
		t.Fatalf("peak activity %g, want ≈1", act)
	}
}

func TestWorstCasePowerBoundsSingleTrap(t *testing.T) {
	dev, ctx := testSetup()
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0}
	profile := trap.Profile{Ctx: ctx, Traps: []trap.Trap{tr}}
	id := 50e-6
	p := WorstCasePower(profile, dev, id, 0, 2.4)
	// Single trap worst case: ΔI²·(1/4) at the activity peak.
	dI := rtn.StepAmplitude(dev, ctx.VRef, id)
	want := dI * dI / 4
	if math.Abs(p-want) > 0.1*want {
		t.Fatalf("worst-case power %g, want ≈%g", p, want)
	}
}

func TestEmpiricalPowerMatchesVariance(t *testing.T) {
	tr := &rtn.Trace{T: []float64{0, 1, 2, 3}, I: []float64{1, -1, 1, -1}}
	if p := EmpiricalPower(tr); math.Abs(p-1) > 1e-12 {
		t.Fatalf("power = %g, want 1", p)
	}
	if EmpiricalPower(&rtn.Trace{}) != 0 {
		t.Fatal("empty trace power must be 0")
	}
}

func TestPessimismDB(t *testing.T) {
	if db := PessimismDB(10, 1); math.Abs(db-10) > 1e-12 {
		t.Fatalf("10x → %g dB", db)
	}
	if db := PessimismDB(1, 1); math.Abs(db) > 1e-12 {
		t.Fatalf("1x → %g dB", db)
	}
	if !math.IsInf(PessimismDB(1, 0), 1) {
		t.Fatal("zero actual must give +Inf")
	}
}

package rareevent

import (
	"math"
	"math/big"
	"testing"

	"samurai/internal/rng"
)

// TestEstimatorUnitWeights: with all weights exactly 1 the estimator
// degenerates to the naive MC estimator — mean weight exactly 1, ESS
// exactly n, LR variance exactly 0, and the CI half-width matches the
// hand-computed CLT width.
func TestEstimatorUnitWeights(t *testing.T) {
	var e Estimator
	xs := []float64{0, 1, 0, 0, 1, 0, 0, 0}
	for _, x := range xs {
		e.Add(1, x)
	}
	if e.N() != len(xs) {
		t.Fatalf("n = %d", e.N())
	}
	if math.Float64bits(e.MeanWeight()) != math.Float64bits(1.0) {
		t.Fatalf("unit-weight mean weight %g, want exactly 1", e.MeanWeight())
	}
	if math.Float64bits(e.ESS()) != math.Float64bits(float64(len(xs))) {
		t.Fatalf("unit-weight ESS %g, want exactly %d", e.ESS(), len(xs))
	}
	if math.Float64bits(e.WeightVariance()) != 0 {
		t.Fatalf("unit-weight LR variance %g, want exactly 0", e.WeightVariance())
	}
	if got, want := e.Mean(), 0.25; math.Abs(got-want) > 1e-15 {
		t.Fatalf("mean %g, want %g", got, want)
	}
	// Hand CLT: var = (Σx² − n·mean²)/(n−1) = (2 − 8·1/16)/7 = 3/14.
	want := Z95 * math.Sqrt((3.0/14)/8)
	if math.Abs(e.CIHalfWidth(Z95)-want) > 1e-15 {
		t.Fatalf("CI half %g, want %g", e.CIHalfWidth(Z95), want)
	}
}

// TestEstimatorWeighted checks the weighted aggregates against direct
// formula evaluation on a small fixed sample.
func TestEstimatorWeighted(t *testing.T) {
	var e Estimator
	ws := []float64{0.5, 2.0, 1.5, 0.25}
	xs := []float64{1, 0, 1, 1}
	sw, sw2, swx := 0.0, 0.0, 0.0
	for i := range ws {
		e.Add(ws[i], xs[i])
		sw += ws[i]
		sw2 += ws[i] * ws[i]
		swx += ws[i] * xs[i]
	}
	n := float64(len(ws))
	if got := e.Mean(); math.Abs(got-swx/n) > 1e-15 {
		t.Fatalf("mean %g, want %g", got, swx/n)
	}
	if got := e.MeanWeight(); math.Abs(got-sw/n) > 1e-15 {
		t.Fatalf("mean weight %g, want %g", got, sw/n)
	}
	if got := e.ESS(); math.Abs(got-sw*sw/sw2) > 1e-15 {
		t.Fatalf("ESS %g, want %g", got, sw*sw/sw2)
	}
}

// TestControlAdjustedDegenerate: with constant weights the control
// variate has zero variance and the adjusted estimate must fall back
// to the plain mean, not divide by zero.
func TestControlAdjustedDegenerate(t *testing.T) {
	var e Estimator
	for i := 0; i < 10; i++ {
		e.Add(1, float64(i%2))
	}
	if math.Float64bits(e.ControlAdjusted()) != math.Float64bits(e.Mean()) {
		t.Fatalf("degenerate control adjustment %g != mean %g", e.ControlAdjusted(), e.Mean())
	}
}

// TestNaivePaths pins the naive-paths formula on a known point:
// p = 1e-6, half = 1e-7 at z ≈ 1.96 needs ~3.84e14·1e-6 ≈ 3.84e8.
func TestNaivePaths(t *testing.T) {
	got := NaivePaths(1e-6, 1e-7, Z95)
	want := Z95 * Z95 * 1e-6 * (1 - 1e-6) / 1e-14
	if math.Abs(got-want) > want*1e-12 {
		t.Fatalf("NaivePaths = %g, want %g", got, want)
	}
	if !math.IsInf(NaivePaths(0.5, 0, Z95), 1) {
		t.Fatal("zero half-width should need infinitely many paths")
	}
}

// splitWalkState is the toy state for the splitting tests: a running
// sum of unit-rate exponential increments, so the level (the sum) is
// monotone and crossing probabilities are easy to reason about.
type splitWalkState struct{ sum float64 }

func splitWalkStep(stage int, state any, r *rng.Stream) (any, float64, float64, error) {
	s := state.(splitWalkState)
	s.sum += r.Exp(1)
	return s, s.sum, 0, nil
}

func splitWalkInit(i int, r *rng.Stream) (any, error) { return splitWalkState{}, nil }

// TestSplitWeightConservation is the exact-conservation property test:
// over every root particle, the leaf weights 1/den must sum to exactly
// 1 — verified in exact rational arithmetic (big.Rat), so any clone
// miscount or denominator slip fails regardless of float rounding.
// Swept across clone factors, including non-powers-of-two.
func TestSplitWeightConservation(t *testing.T) {
	for _, m := range []int{2, 3, 5} {
		perRoot := make(map[int]*big.Rat)
		cur := -1
		spec := SplitSpec{
			Levels:    []float64{1.0, 2.5, 4.0, 6.0},
			Clones:    m,
			Particles: 40,
			Stages:    12,
			OnLeaf: func(level float64, den uint64, logLR float64) {
				if perRoot[cur] == nil {
					perRoot[cur] = new(big.Rat)
				}
				perRoot[cur].Add(perRoot[cur], new(big.Rat).SetFrac64(1, int64(den)))
			},
		}
		init := func(i int, r *rng.Stream) (any, error) {
			cur = i
			return splitWalkInit(i, r)
		}
		res, err := RunSplit(spec, init, splitWalkStep, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		one := big.NewRat(1, 1)
		for i := 0; i < spec.Particles; i++ {
			if perRoot[i] == nil {
				t.Fatalf("m=%d: root %d produced no leaves", m, i)
			}
			if perRoot[i].Cmp(one) != 0 {
				t.Fatalf("m=%d: root %d leaf weights sum to %s, want exactly 1", m, i, perRoot[i].RatString())
			}
		}
		if res.Leaves <= res.Roots {
			t.Fatalf("m=%d: no splitting happened (%d leaves from %d roots)", m, res.Leaves, res.Roots)
		}
	}
}

// TestSplitDeterministic: two runs from the same seed are bit-identical
// in every reported float and count.
func TestSplitDeterministic(t *testing.T) {
	run := func() *SplitResult {
		spec := SplitSpec{Levels: []float64{1.5, 3.0, 5.0}, Particles: 64, Stages: 10}
		res, err := RunSplit(spec, splitWalkInit, splitWalkStep, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if math.Float64bits(a.P) != math.Float64bits(b.P) || math.Float64bits(a.CIHalf) != math.Float64bits(b.CIHalf) {
		t.Fatalf("splitting not deterministic: %v vs %v", a, b)
	}
	if a.Leaves != b.Leaves || a.Hits != b.Hits {
		t.Fatalf("splitting counts not deterministic: %v vs %v", a, b)
	}
}

// TestSplitUnbiasedVsDirect compares the splitting estimate of
// P[Σ_{i<k} Exp(1) ≥ L] against a plain Monte-Carlo estimate of the
// same walk — they must agree within combined CLT error bars. This is
// the estimator-level unbiasedness check for the branching scheme.
func TestSplitUnbiasedVsDirect(t *testing.T) {
	const stages = 8
	const level = 12.0
	spec := SplitSpec{
		Levels:    []float64{3.0, 6.0, 9.0, level},
		Particles: 1500,
		Stages:    stages,
	}
	res, err := RunSplit(spec, splitWalkInit, splitWalkStep, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}

	// Direct MC with many paths (the event P[Gamma(8,1) ≥ 12] ≈ 0.089
	// is not rare, so direct MC converges fine here).
	const n = 200000
	root := rng.New(123)
	var child rng.Stream
	hits := 0
	for i := 0; i < n; i++ {
		root.SplitInto(uint64(i), &child)
		sum := 0.0
		for s := 0; s < stages; s++ {
			sum += child.Exp(1)
		}
		if sum >= level {
			hits++
		}
	}
	direct := float64(hits) / n
	directHalf := Z95 * math.Sqrt(direct*(1-direct)/n)
	tol := res.CIHalf + directHalf
	if math.Abs(res.P-direct) > 1.5*tol {
		t.Fatalf("splitting P = %g ± %g vs direct %g ± %g — outside combined bars",
			res.P, res.CIHalf, direct, directHalf)
	}
	if res.Hits == 0 {
		t.Fatal("splitting produced no hits on a non-rare event")
	}
}

// TestSplitValidation: malformed specs fail loudly.
func TestSplitValidation(t *testing.T) {
	if _, err := RunSplit(SplitSpec{Stages: 4}, splitWalkInit, splitWalkStep, rng.New(1)); err == nil {
		t.Fatal("no levels accepted")
	}
	if _, err := RunSplit(SplitSpec{Levels: []float64{2, 1}, Stages: 4}, splitWalkInit, splitWalkStep, rng.New(1)); err == nil {
		t.Fatal("descending levels accepted")
	}
	if _, err := RunSplit(SplitSpec{Levels: []float64{1}}, splitWalkInit, splitWalkStep, rng.New(1)); err == nil {
		t.Fatal("zero stages accepted")
	}
}

// TestEstimatorEmpty pins the zero-path guards: estimates are NaN (no
// data is not zero probability), ESS is 0, the weight variance is 0
// and the CI half-width is +Inf — never a divide-by-zero.
func TestEstimatorEmpty(t *testing.T) {
	var e Estimator
	if e.N() != 0 {
		t.Fatalf("fresh estimator has %d paths", e.N())
	}
	if !math.IsNaN(e.Mean()) || !math.IsNaN(e.MeanWeight()) {
		t.Fatalf("empty estimates not NaN: mean %g, mean weight %g", e.Mean(), e.MeanWeight())
	}
	if e.ESS() != 0 || e.WeightVariance() != 0 {
		t.Fatalf("empty ESS %g / weight variance %g, want 0/0", e.ESS(), e.WeightVariance())
	}
	if !math.IsInf(e.CIHalfWidth(Z95), 1) {
		t.Fatalf("empty CI half-width %g, want +Inf", e.CIHalfWidth(Z95))
	}
	if !math.IsNaN(e.ControlAdjusted()) {
		t.Fatalf("empty control-adjusted estimate %g, want NaN", e.ControlAdjusted())
	}
}

// TestEstimatorSinglePath: one path is an estimate without a variance —
// the CI half-width must be +Inf and the weight variance 0.
func TestEstimatorSinglePath(t *testing.T) {
	var e Estimator
	e.Add(0.5, 1)
	if got := e.Mean(); got != 0.5 {
		t.Fatalf("single-path mean %g, want 0.5", got)
	}
	if !math.IsInf(e.CIHalfWidth(Z95), 1) || e.WeightVariance() != 0 {
		t.Fatalf("single-path CI %g / variance %g", e.CIHalfWidth(Z95), e.WeightVariance())
	}
	if math.Float64bits(e.ControlAdjusted()) != math.Float64bits(e.Mean()) {
		t.Fatal("single-path control adjustment must fall back to the mean")
	}
}

// TestStatsSnapshot: the reportable block mirrors every accessor bit
// for bit and carries the tilt through.
func TestStatsSnapshot(t *testing.T) {
	var e Estimator
	for i := 0; i < 8; i++ {
		w := 0.8 + 0.05*float64(i)
		x := float64(i % 3 / 2)
		e.Add(w, x)
	}
	st := e.Stats(-0.07)
	if st.TiltEV != -0.07 || st.N != 8 {
		t.Fatalf("snapshot header %+v", st)
	}
	if math.Float64bits(st.PFail) != math.Float64bits(e.Mean()) ||
		math.Float64bits(st.ESS) != math.Float64bits(e.ESS()) ||
		math.Float64bits(st.LRVar) != math.Float64bits(e.WeightVariance()) ||
		math.Float64bits(st.CIHalf) != math.Float64bits(e.CIHalfWidth(Z95)) ||
		math.Float64bits(st.CVAdjusted) != math.Float64bits(e.ControlAdjusted()) {
		t.Fatalf("snapshot diverges from accessors: %+v", st)
	}
}

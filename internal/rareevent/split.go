package rareevent

import (
	"fmt"
	"math"

	"samurai/internal/obs"
	"samurai/internal/rng"
)

// Multilevel splitting (fixed branching): particles advance stage by
// stage through a monotone level function; every time a particle's
// running level crosses the next threshold it is branched into Clones
// children, each carrying 1/Clones of the parent's weight. No particle
// is ever killed, so the estimator is unbiased by construction — each
// branching conserves conditional expectation exactly — and weights
// stay exact rationals 1/Clones^k, tracked as integer denominators so
// conservation is checkable to the bit.
//
// Determinism: root particle i draws from root.SplitInto(i); child j
// of a branching draws from the parent stream's Split at the moment of
// the branching (child 0 simply continues the parent's stream). Every
// stream is therefore a pure function of (seed, particle genealogy),
// which is what keeps splitting runs bit-reproducible and replayable.

var mRareClones = obs.GetCounter("samurai_rare_clones_total",
	"child particles spawned by multilevel splitting")

// maxLeaves bounds the particle population so a mis-specified level
// schedule fails loudly instead of exhausting memory.
const maxLeaves = 1 << 20

// StageFunc advances one particle through stage k: it consumes draws
// from r, returns the successor state, the stage's level value (the
// engine keeps the running max) and the stage's log-likelihood-ratio
// increment (0 when sampling untilted). The state passed in must be
// treated as immutable — branched siblings share it.
type StageFunc func(stage int, state any, r *rng.Stream) (next any, level, dLogLR float64, err error)

// InitFunc builds root particle i's initial state from its stream.
type InitFunc func(i int, r *rng.Stream) (any, error)

// SplitSpec configures a splitting run.
type SplitSpec struct {
	// Levels are the ascending thresholds of the (running-max) level
	// function. The last level defines the rare event itself — a leaf
	// counts as a hit when its running level reaches it; the levels
	// before it are the branching stages.
	Levels []float64
	// Clones is the branching factor per crossed level (default 2;
	// powers of two keep the float weights exact as well as the
	// integer denominators).
	Clones int
	// Particles is the number of root particles (default 64).
	Particles int
	// Stages is the number of StageFunc advances per path.
	Stages int
	// OnLeaf, when non-nil, observes every terminal particle: its
	// final running level, integer weight denominator and accumulated
	// log-LR. Used by the conservation property tests and diagnostics.
	OnLeaf func(level float64, den uint64, logLR float64)
}

func (s SplitSpec) withDefaults() SplitSpec {
	if s.Clones == 0 {
		s.Clones = 2
	}
	if s.Particles == 0 {
		s.Particles = 64
	}
	return s
}

// SplitResult aggregates a splitting run.
type SplitResult struct {
	// Roots and Leaves count the initial and terminal particles.
	Roots  int `json:"roots"`
	Leaves int `json:"leaves"`
	// Hits counts leaves whose running level reached the final level.
	Hits int `json:"hits"`
	// P is the unbiased estimate of P[level reaches Levels[last]]:
	// the per-root mean of Σ_leaf exp(logLR)/den over hit leaves.
	P float64 `json:"p"`
	// CIHalf is the 95% CLT half-width over per-root contributions
	// (roots are iid; leaves within a root are not).
	CIHalf float64 `json:"ci_half"`
	// LevelHits counts, per level, the particles that crossed it.
	LevelHits []int `json:"level_hits"`
}

// splitState carries the run-wide bookkeeping shared by the recursion.
type splitState struct {
	spec      SplitSpec
	step      StageFunc
	leaves    int
	hits      int
	levelHits []int
}

type splitParticle struct {
	state  any
	stream rng.Stream
	den    uint64
	logLR  float64
	level  float64
	lvlIdx int // next un-crossed level index
}

// RunSplit executes fixed multilevel splitting and returns the
// unbiased estimate of the rare event {running level ≥ Levels[last]}.
func RunSplit(spec SplitSpec, init InitFunc, step StageFunc, root *rng.Stream) (*SplitResult, error) {
	spec = spec.withDefaults()
	if len(spec.Levels) == 0 {
		return nil, fmt.Errorf("rareevent: splitting needs at least one level (the rare event itself)")
	}
	for i := 1; i < len(spec.Levels); i++ {
		if spec.Levels[i] <= spec.Levels[i-1] {
			return nil, fmt.Errorf("rareevent: levels must be strictly ascending")
		}
	}
	if spec.Clones < 1 {
		return nil, fmt.Errorf("rareevent: clone factor %d < 1", spec.Clones)
	}
	if spec.Stages <= 0 {
		return nil, fmt.Errorf("rareevent: need a positive stage count, got %d", spec.Stages)
	}
	ss := &splitState{spec: spec, step: step, levelHits: make([]int, len(spec.Levels))}
	var est Estimator
	for i := 0; i < spec.Particles; i++ {
		var stream rng.Stream
		root.SplitInto(uint64(i), &stream)
		st, err := init(i, &stream)
		if err != nil {
			return nil, fmt.Errorf("rareevent: root %d init: %w", i, err)
		}
		y, err := ss.run(splitParticle{state: st, stream: stream, den: 1, level: math.Inf(-1)}, 0)
		if err != nil {
			return nil, fmt.Errorf("rareevent: root %d: %w", i, err)
		}
		est.Add(1, y)
	}
	return &SplitResult{
		Roots:     spec.Particles,
		Leaves:    ss.leaves,
		Hits:      ss.hits,
		P:         est.Mean(),
		CIHalf:    est.CIHalfWidth(Z95),
		LevelHits: ss.levelHits,
	}, nil
}

// run advances one particle from the given stage to the end,
// branching on level crossings, and returns the particle's total
// contribution Σ_leaf exp(logLR)/den·1{hit} (the per-root estimator
// term once divided by nothing — roots carry den 1).
func (ss *splitState) run(p splitParticle, stage int) (float64, error) {
	m := ss.spec.Clones
	last := len(ss.spec.Levels) - 1
	total := 0.0
	for ; stage < ss.spec.Stages; stage++ {
		next, level, dlr, err := ss.step(stage, p.state, &p.stream)
		if err != nil {
			return 0, fmt.Errorf("stage %d: %w", stage, err)
		}
		p.state = next
		p.logLR += dlr
		if level > p.level {
			p.level = level
		}
		// Branch once per intermediate level newly crossed by the
		// running max. The final level is the event itself, never a
		// branching stage.
		for p.lvlIdx < last && p.level >= ss.spec.Levels[p.lvlIdx] {
			lvl := p.lvlIdx
			ss.levelHits[lvl]++
			p.lvlIdx++
			p.den *= uint64(m)
			for j := 1; j < m; j++ {
				child := p
				// Child j's stream derives from the parent stream's
				// state at the branching instant; the id folds in the
				// level index so two crossings inside one stage (no
				// draws in between) still yield distinct children.
				child.stream = *p.stream.Split(uint64(lvl+1)<<8 | uint64(j))
				y, err := ss.run(child, stage+1)
				if err != nil {
					return 0, err
				}
				mRareClones.Inc()
				total += y
			}
		}
	}
	ss.leaves++
	if ss.leaves > maxLeaves {
		return 0, fmt.Errorf("particle population exceeded %d leaves — level schedule too aggressive", maxLeaves)
	}
	hit := p.level >= ss.spec.Levels[last]
	if hit {
		ss.hits++
		if p.lvlIdx == last {
			ss.levelHits[last]++
		}
		total += math.Exp(p.logLR) / float64(p.den)
	}
	if ss.spec.OnLeaf != nil {
		ss.spec.OnLeaf(p.level, p.den, p.logLR)
	}
	return total, nil
}

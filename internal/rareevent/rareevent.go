// Package rareevent is the variance-reduction layer of the Monte
// Carlo stack: unbiased importance-sampling estimation over
// likelihood-reweighted paths (the weights come from the exact
// thinning log-LR of markov.UniformiseTilted) and fixed multilevel
// splitting over a monotone level function (the glitch depth of
// sram.GlitchDepth). Everything here is plain deterministic
// arithmetic over per-path (weight, indicator) pairs — callers feed
// outcomes in a fixed order (cell index, root-particle index) and the
// aggregates are bit-reproducible.
package rareevent

import (
	"math"

	"samurai/internal/obs"
)

// Z95 is the two-sided 95% normal quantile used for the reported
// confidence half-widths.
const Z95 = 1.959963984540054

// Estimator accumulates the unnormalised importance-sampling
// estimator of E_nominal[X] from tilted samples: feed one
// (weight, indicator) pair per path and read the mean Σwx/n, whose
// unbiasedness is exactly the likelihood-ratio identity
// E_tilted[wX] = E_nominal[X]. The self-normalised variant is
// deliberately absent — it trades unbiasedness for variance and would
// fail the vv conformance gates.
type Estimator struct {
	n                                  int
	sumW, sumW2, sumWX, sumWX2, sumW2X float64
}

// Add records one path: w its likelihood-ratio weight (exp of the
// thinning log-LR, possibly divided by a splitting denominator), x
// the indicator or functional value under estimation.
func (e *Estimator) Add(w, x float64) {
	e.n++
	e.sumW += w
	e.sumW2 += w * w
	wx := w * x
	e.sumWX += wx
	e.sumWX2 += wx * wx
	e.sumW2X += w * wx
}

// N returns the number of paths recorded.
func (e *Estimator) N() int { return e.n }

// Mean returns the unbiased IS estimate Σwx/n.
func (e *Estimator) Mean() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	return e.sumWX / float64(e.n)
}

// MeanWeight returns Σw/n; under a correctly accumulated likelihood
// ratio its expectation is exactly 1, which is both the control
// variate's known mean and the conformance oracle for broken weights.
func (e *Estimator) MeanWeight() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	return e.sumW / float64(e.n)
}

// ESS is the Kish effective sample size (Σw)²/Σw² — how many naive
// (unit-weight) paths the weighted ensemble is worth.
func (e *Estimator) ESS() float64 {
	if e.sumW2 == 0 {
		return 0
	}
	return e.sumW * e.sumW / e.sumW2
}

// WeightVariance is the sample variance of the weights — the
// likelihood-ratio variance the report carries (0 exactly at tilt 0,
// where every weight is exactly 1).
func (e *Estimator) WeightVariance() float64 {
	if e.n < 2 {
		return 0
	}
	n := float64(e.n)
	mean := e.sumW / n
	v := (e.sumW2 - n*mean*mean) / (n - 1)
	if v < 0 {
		return 0
	}
	return v
}

// CIHalfWidth is the z-quantile CLT half-width of Mean().
func (e *Estimator) CIHalfWidth(z float64) float64 {
	if e.n < 2 {
		return math.Inf(1)
	}
	n := float64(e.n)
	mean := e.sumWX / n
	v := (e.sumWX2 - n*mean*mean) / (n - 1)
	if v < 0 {
		v = 0
	}
	return z * math.Sqrt(v/n)
}

// ControlAdjusted returns the control-variate-adjusted estimate using
// the weight itself as the control (its mean is exactly 1):
// mean(wx) − β·(mean(w)−1) with β the regression coefficient
// cov(wx, w)/var(w). The adjustment estimates β from the same sample,
// so it carries an O(1/n) bias — it is reported for diagnostics and
// variance comparison, while the unbiased Mean() is what the
// conformance gates certify.
func (e *Estimator) ControlAdjusted() float64 {
	if e.n < 2 {
		return e.Mean()
	}
	n := float64(e.n)
	varW := e.sumW2/n - (e.sumW/n)*(e.sumW/n)
	if varW <= 0 {
		return e.Mean()
	}
	cov := e.sumW2X/n - (e.sumWX/n)*(e.sumW/n)
	beta := cov / varW
	return e.sumWX/n - beta*(e.sumW/n-1)
}

// ArrayStats is the rare-event aggregate block attached to array
// sweeps, jobd summaries and vv scenario rows. Field order is fixed
// (no maps), so JSON encodings are bit-stable for fixed inputs.
type ArrayStats struct {
	// TiltEV is the energy tilt the sweep sampled under, eV.
	TiltEV float64 `json:"tilt_ev"`
	// N is the number of weighted paths (cells).
	N int `json:"n"`
	// PFail is the unbiased IS estimate of the failure probability.
	PFail float64 `json:"p_fail"`
	// ESS is the Kish effective sample size of the weights.
	ESS float64 `json:"ess"`
	// LRVar is the sample variance of the likelihood-ratio weights.
	LRVar float64 `json:"lr_var"`
	// CIHalf is the 95% CLT confidence half-width of PFail.
	CIHalf float64 `json:"ci_half"`
	// CVAdjusted is the control-variate-adjusted estimate (weight
	// control, known mean 1); diagnostic, slightly biased, see
	// Estimator.ControlAdjusted.
	CVAdjusted float64 `json:"cv_adjusted"`
}

var (
	mRareESS = obs.GetGauge("samurai_rare_ess",
		"effective sample size of the most recent rare-event aggregate")
	mRareLRVar = obs.GetGauge("samurai_rare_lr_variance",
		"likelihood-ratio weight variance of the most recent rare-event aggregate")
	mRarePaths = obs.GetCounter("samurai_rare_paths_total",
		"weighted paths aggregated by rare-event estimators")
)

// Stats snapshots the estimator into the reportable aggregate block
// (and publishes the ESS / weight-variance gauges).
func (e *Estimator) Stats(tiltEV float64) ArrayStats {
	st := ArrayStats{
		TiltEV:     tiltEV,
		N:          e.n,
		PFail:      e.Mean(),
		ESS:        e.ESS(),
		LRVar:      e.WeightVariance(),
		CIHalf:     e.CIHalfWidth(Z95),
		CVAdjusted: e.ControlAdjusted(),
	}
	mRareESS.Set(st.ESS)
	mRareLRVar.Set(st.LRVar)
	mRarePaths.Add(int64(e.n))
	return st
}

// NaivePaths returns how many unweighted Monte-Carlo paths a naive
// estimator of a probability p needs for a z-quantile CI half-width
// of half — the denominator of the paths-to-target-CI speedup the
// benchmarks pin: z²·p(1−p)/half².
func NaivePaths(p, half, z float64) float64 {
	if half <= 0 {
		return math.Inf(1)
	}
	return z * z * p * (1 - p) / (half * half)
}

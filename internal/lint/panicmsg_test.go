package lint

import "testing"

func TestPanicMsgFlagsUnprefixedPanics(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

import "fmt"

// Bad1 panics with a raw error value.
func Bad1(err error) {
	panic(err)
}

// Bad2 panics without the package prefix.
func Bad2() {
	panic("dimension mismatch")
}

// Bad3 prefixes with the wrong package.
func Bad3(n int) {
	panic(fmt.Sprintf("other: bad n %d", n))
}
`}
	wantFindings(t, diags(t, files, panicMsgRule), 3)
}

func TestPanicMsgAcceptsPrefixedForms(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

import "fmt"

// Good1 uses a plain prefixed literal.
func Good1() {
	panic("kern: negative dimension")
}

// Good2 uses a prefixed Sprintf format.
func Good2(n int) {
	panic(fmt.Sprintf("kern: bad size %d", n))
}

// Good3 concatenates onto a prefixed literal head.
func Good3(name string) {
	panic("kern: unknown node " + name)
}
`}
	wantFindings(t, diags(t, files, panicMsgRule), 0)
}

func TestPanicMsgOnlyAppliesToInternalPackages(t *testing.T) {
	files := map[string]string{"tool/tool.go": `package tool

// Loose panics however it likes outside internal/.
func Loose(err error) {
	panic(err)
}
`}
	wantFindings(t, diags(t, files, panicMsgRule), 0)
}

func TestPanicMsgSkipsTestFiles(t *testing.T) {
	files := map[string]string{
		"internal/kern/kern.go": `package kern
`,
		"internal/kern/kern_test.go": `package kern

// MustFail panics freely inside a test helper.
func MustFail() {
	panic("boom")
}
`}
	wantFindings(t, diags(t, files, panicMsgRule), 0)
}

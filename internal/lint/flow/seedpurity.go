package flow

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"samurai/internal/lint"
)

const seedpurityName = "seedpurity"

var seedpurityRule = lint.Rule{
	Name:        seedpurityName,
	Doc:         "every rng.Stream created on the montecarlo/jobd path must derive from the job seed (config field, parameter, or Split/SplitInto) — never a constant or fresh source",
	CheckModule: checkSeedpurity,
}

// seedRootPkgs are the packages whose exported functions anchor the
// reachability sweep: anything they can call transitively is "on the
// seeded Monte Carlo path" and must derive its streams from the job
// seed, or sharded re-runs stop being bit-identical.
var seedRootPkgs = map[string]bool{
	"samurai/internal/montecarlo": true,
	"samurai/internal/jobd":       true,
}

// streamCtors are the fresh-stream constructors whose seed argument is
// policed.
var streamCtors = map[string]bool{
	"samurai/internal/rng.New":    true,
	"samurai/internal/rng.NewSeq": true,
}

// checkSeedpurity walks the call graph from the montecarlo/jobd
// exported surface and, for every reachable rng.New/rng.NewSeq call,
// demands the seed expression derive from a parameter, a *Seed* field,
// or an existing stream. The diagnostic carries the call chain that
// makes the site reachable, so "who dragged this into the seeded path"
// is answered in the finding.
func checkSeedpurity(pkgs []*lint.Package) []lint.Diagnostic {
	g, _ := analyze(pkgs)

	// BFS, recording one witness parent per node, visiting in sorted
	// order so the chosen witness chains are deterministic.
	parent := map[*Node]*Node{}
	reached := map[*Node]bool{}
	var queue []*Node
	for _, n := range g.Sorted {
		if seedRootPkgs[n.Pkg.Path] && n.Fn.Exported() {
			reached[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Calls {
			for _, fn := range c.Callees {
				cn := g.Nodes[fn]
				if cn == nil || reached[cn] {
					continue
				}
				reached[cn] = true
				parent[cn] = n
				queue = append(queue, cn)
			}
		}
	}

	var out []lint.Diagnostic
	var nodes []*Node
	for n := range reached {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name() < nodes[j].Name() })
	for _, n := range nodes {
		node := n
		ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, fn := range node.callees[call] {
				if !streamCtors[fn.FullName()] || len(call.Args) == 0 {
					continue
				}
				if seedDerived(node, call.Args[0]) {
					continue
				}
				out = append(out, lint.Diagnostic{
					Rule: seedpurityName,
					Pos:  node.Pkg.Fset.Position(call.Pos()),
					Message: fmt.Sprintf("%s reachable from the seeded Monte Carlo path (%s) seeds a fresh stream from %s; derive it from the job seed or Split/SplitInto",
						fn.Name(), chainTo(parent, node), describeSeedExpr(node, call.Args[0])),
				})
			}
			return true
		})
	}
	return out
}

// chainTo renders the BFS witness chain root→node.
func chainTo(parent map[*Node]*Node, n *Node) string {
	var names []string
	for cur := n; cur != nil; cur = parent[cur] {
		names = append(names, cur.Fn.Name())
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// seedDerived reports whether the seed expression traces back to an
// acceptable origin: a parameter of the enclosing function, a field or
// variable whose name mentions Seed, or a value produced by an
// rng.Stream method (Split-style derivation).
func seedDerived(n *Node, e ast.Expr) bool {
	ok := false
	ast.Inspect(e, func(x ast.Node) bool {
		if ok {
			return false
		}
		switch x := x.(type) {
		case *ast.Ident:
			obj := n.Pkg.Info.ObjectOf(x)
			if obj == nil {
				return true
			}
			if strings.Contains(obj.Name(), "Seed") || strings.Contains(obj.Name(), "seed") {
				ok = true
				return false
			}
			for _, p := range n.params {
				if p != nil && p == obj {
					ok = true
					return false
				}
			}
			if n.recvObj != nil && obj == n.recvObj {
				ok = true
				return false
			}
		case *ast.SelectorExpr:
			if sel, isSel := n.Pkg.Info.Selections[x]; isSel {
				if fn, isFn := sel.Obj().(*types.Func); isFn && fn.Pkg() != nil &&
					strings.HasSuffix(fn.Pkg().Path(), "internal/rng") {
					ok = true // derived through a Stream method
					return false
				}
			}
		}
		return true
	})
	return ok
}

// describeSeedExpr names the offending seed origin for the diagnostic.
func describeSeedExpr(n *Node, e ast.Expr) string {
	if tv, ok := n.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return fmt.Sprintf("the constant %s", tv.Value.String())
	}
	return "a value unrelated to the job seed"
}

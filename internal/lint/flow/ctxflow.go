package flow

import (
	"fmt"
	"go/ast"
	"go/types"

	"samurai/internal/lint"
)

const ctxflowName = "ctxflow"

var ctxflowRule = lint.Rule{
	Name:        ctxflowName,
	Doc:         "a function holding a context.Context must hand it (or a derived context) to every module callee that accepts one — no dropped cancellation",
	CheckModule: checkCtxflow,
}

// checkCtxflow enforces context plumbing on the drain path: once a
// function receives a ctx, calling a ctx-accepting module function with
// context.Background()/TODO() (or no derived context at all) severs
// cancellation, which is exactly the bug that would make a samuraid
// drain hang past its deadline.
func checkCtxflow(pkgs []*lint.Package) []lint.Diagnostic {
	g, _ := analyze(pkgs)
	var out []lint.Diagnostic
	for _, n := range g.Sorted {
		node := n
		derived := ctxDerivedObjects(node)
		if len(derived) == 0 {
			continue
		}
		ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			callees := node.callees[call]
			if len(callees) != 1 {
				return true // interface/value calls are too approximate to police
			}
			cn := g.Nodes[callees[0]]
			if cn == nil || !acceptsContext(cn.Fn) {
				return true
			}
			for _, arg := range call.Args {
				if isContextExpr(node, arg) {
					if ctxExprDerived(node, arg, derived) {
						return true // properly plumbed
					}
					out = append(out, lint.Diagnostic{
						Rule: ctxflowName,
						Pos:  node.Pkg.Fset.Position(arg.Pos()),
						Message: fmt.Sprintf("%s holds a context but passes a fresh one to %s, severing cancellation; pass the incoming ctx (or derive via context.With*)",
							node.Name(), cn.Name()),
					})
					return true
				}
			}
			// No context-typed argument at all: a nil context slipped in.
			out = append(out, lint.Diagnostic{
				Rule: ctxflowName,
				Pos:  node.Pkg.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("%s holds a context but calls %s without one (nil context?); pass the incoming ctx",
					node.Name(), cn.Name()),
			})
			return true
		})
	}
	return out
}

// ctxDerivedObjects returns the function's context-carrying objects:
// its context parameters plus every local assigned a context derived
// from one (context.WithCancel and friends).
func ctxDerivedObjects(n *Node) map[types.Object]bool {
	derived := map[types.Object]bool{}
	for _, p := range n.params {
		if p != nil && isContextType(p.Type()) {
			derived[p] = true
		}
	}
	if len(derived) == 0 {
		return nil
	}
	// Fixpoint over simple assignments: ctx2 := context.WithValue(ctx, ...)
	// and ctx2 := ctx. Two passes suffice for straight-line derivation
	// chains; deeper chains re-trigger via the repeat loop.
	for pass := 0; pass < 3; pass++ {
		before := len(derived)
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			as, ok := x.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				obj := rootObj(n.Pkg, lhs)
				if obj == nil || !isContextType(obj.Type()) {
					continue
				}
				ri := i
				if len(as.Rhs) == 1 {
					ri = 0
				}
				if ri < len(as.Rhs) && ctxExprDerived(n, as.Rhs[ri], derived) {
					derived[obj] = true
				}
			}
			return true
		})
		if len(derived) == before {
			break
		}
	}
	return derived
}

// ctxExprDerived reports whether the expression mentions a derived
// context object (directly, or through a context.With* wrapper).
func ctxExprDerived(n *Node, e ast.Expr, derived map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && derived[n.Pkg.Info.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// isContextExpr reports whether the expression has type context.Context.
func isContextExpr(n *Node, e ast.Expr) bool {
	tv, ok := n.Pkg.Info.Types[e]
	return ok && tv.Type != nil && isContextType(tv.Type)
}

// isContextType matches the context.Context interface type.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// acceptsContext reports whether the function has a context parameter.
func acceptsContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

package flow

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"samurai/internal/lint"
)

// rngStub is a minimal samurai/internal/rng so fixtures exercise the
// real sink names (rng.New, Split, SplitInto) without the real module.
const rngStub = `package rng

// Stream is a deterministic random stream (fixture stub).
type Stream struct{ s uint64 }

// New returns a stream seeded with seed.
func New(seed uint64) *Stream { return &Stream{s: seed} }

// NewSeq returns a stream for a (seed, sequence) pair.
func NewSeq(seed, seq uint64) *Stream { return &Stream{s: seed ^ seq} }

// Split derives the child stream with the given id.
func (s *Stream) Split(id uint64) *Stream { return &Stream{s: s.s + id} }

// SplitInto derives the child stream in place.
func (s *Stream) SplitInto(id uint64, dst *Stream) { dst.s = s.s + id }

// Uint64 draws the next value.
func (s *Stream) Uint64() uint64 { s.s++; return s.s }
`

// load writes the fixture files into a temp module and loads it.
func load(t *testing.T, files map[string]string) []*lint.Package {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module samurai\n\ngo 1.22\n"
	}
	for name, src := range files {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := lint.LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return pkgs
}

// run applies one flow rule to a fixture module.
func run(t *testing.T, files map[string]string, rule lint.Rule) []lint.Diagnostic {
	t.Helper()
	return lint.Run(load(t, files), []lint.Rule{rule})
}

// wantN asserts the diagnostic count, logging what was found on mismatch.
func wantN(t *testing.T, got []lint.Diagnostic, want int) {
	t.Helper()
	if len(got) != want {
		for _, d := range got {
			t.Logf("  %s", d)
		}
		t.Fatalf("got %d finding(s), want %d", len(got), want)
	}
}

// wantChain asserts some finding's message mentions every marker, in
// order — the "correct call chain" acceptance check.
func wantChain(t *testing.T, got []lint.Diagnostic, markers ...string) {
	t.Helper()
	if len(got) == 0 {
		t.Fatal("no findings")
	}
next:
	for _, d := range got {
		at := 0
		for _, m := range markers {
			i := strings.Index(d.Message[at:], m)
			if i < 0 {
				continue next
			}
			at += i + len(m)
		}
		return
	}
	for _, d := range got {
		t.Logf("  %s", d)
	}
	t.Fatalf("no finding carries the chain %v", markers)
}

func TestGraphResolvesStaticAndInterfaceCalls(t *testing.T) {
	pkgs := load(t, map[string]string{
		"a/a.go": `package a

// Runner is implemented by Fast below.
type Runner interface{ Run() int }

// Fast is the sole module implementation.
type Fast struct{}

// Run satisfies Runner.
func (Fast) Run() int { return 1 }

// helper is statically called by Drive.
func helper() int { return 2 }

// Drive calls helper statically and r.Run through the interface.
func Drive(r Runner) int { return helper() + r.Run() }
`,
	})
	g := BuildGraph(pkgs)
	var drive *Node
	for _, n := range g.Sorted {
		if n.Fn.Name() == "Drive" {
			drive = n
		}
	}
	if drive == nil {
		t.Fatal("Drive not in graph")
	}
	var callees []string
	for _, c := range drive.Calls {
		for _, fn := range c.Callees {
			callees = append(callees, fn.FullName())
		}
	}
	joined := strings.Join(callees, " ")
	if !strings.Contains(joined, "samurai/a.helper") {
		t.Fatalf("static call missing: %v", callees)
	}
	if !strings.Contains(joined, "(samurai/a.Fast).Run") {
		t.Fatalf("CHA candidate missing: %v", callees)
	}
}

func TestGraphDumpIsDeterministic(t *testing.T) {
	pkgs := load(t, map[string]string{
		"a/a.go": `package a

// B is called by A.
func B() int { return 1 }

// A calls B.
func A() int { return B() }
`,
	})
	g := BuildGraph(pkgs)
	var d1, d2 strings.Builder
	if err := g.Dump(&d1); err != nil {
		t.Fatal(err)
	}
	if err := g.Dump(&d2); err != nil {
		t.Fatal(err)
	}
	if d1.String() != d2.String() {
		t.Fatal("two dumps of the same graph differ")
	}
	if !strings.Contains(d1.String(), "samurai/a.A") || !strings.Contains(d1.String(), "-> samurai/a.B") {
		t.Fatalf("dump missing expected edge:\n%s", d1.String())
	}
}

// montecarloFixture builds a miniature seeded Monte Carlo path using
// the repo's real import paths, with an optional injected wall-clock
// perturbation on the per-cell result.
func montecarloFixture(inject string) map[string]string {
	return map[string]string{
		"internal/rng/rng.go": rngStub,
		"internal/montecarlo/montecarlo.go": `package montecarlo

import (
	` + maybeTimeImport(inject) + `
	"samurai/internal/rng"
)

// ArrayConfig seeds the sweep.
type ArrayConfig struct {
	Seed  uint64
	Cells int
}

// CellOutcome is one cell's result.
type CellOutcome struct {
	Index int
	Value float64
}

// simulateCell runs one seeded cell.
func simulateCell(cfg ArrayConfig, i int, r *rng.Stream) CellOutcome {
	v := float64(r.Uint64())
	` + inject + `
	return CellOutcome{Index: i, Value: v}
}

// RunArray runs every cell from the job seed.
func RunArray(cfg ArrayConfig) []CellOutcome {
	root := rng.New(cfg.Seed)
	out := make([]CellOutcome, cfg.Cells)
	for i := 0; i < cfg.Cells; i++ {
		out[i] = simulateCell(cfg, i, root.Split(uint64(i)))
	}
	return out
}
`,
	}
}

func maybeTimeImport(inject string) string {
	if strings.Contains(inject, "time.") {
		return `"time"`
	}
	return ""
}

func TestDetflowCatchesInjectedTimeNowOnMonteCarloResultPath(t *testing.T) {
	got := run(t, montecarloFixture(`v += float64(time.Now().Nanosecond()) * 1e-18`), detflowRule)
	// The perturbation poisons both return sinks on the path: the
	// per-cell outcome and the array result built from it.
	wantN(t, got, 2)
	wantChain(t, got, "per-cell Monte Carlo outcome", "wall-clock time", "simulateCell")
	wantChain(t, got, "Monte Carlo array result", "wall-clock time", "simulateCell", "RunArray")
}

func TestDetflowCleanMonteCarloPathPasses(t *testing.T) {
	wantN(t, run(t, montecarloFixture(""), detflowRule), 0)
}

func TestDetflowInterproceduralChainToSeedSink(t *testing.T) {
	got := run(t, map[string]string{
		"internal/rng/rng.go": rngStub,
		"a/a.go": `package a

import (
	"time"
	"samurai/internal/rng"
)

// badSeed derives a seed from the wall clock.
func badSeed() uint64 { return uint64(time.Now().UnixNano()) }

// Setup seeds a stream through the tainted helper.
func Setup() *rng.Stream { return rng.New(badSeed()) }
`,
	}, detflowRule)
	wantChain(t, got, "rng stream seeding", "wall-clock time", "badSeed", "rng stream seeding")
}

func TestDetflowNondetOkSuppresses(t *testing.T) {
	got := run(t, montecarloFixture(
		`//lint:nondet-ok fixture documents an intentional wall-clock perturbation
	v += float64(time.Now().Nanosecond()) * 1e-18`), detflowRule)
	wantN(t, got, 0)
}

func TestDetflowGoroutineCapturedWrite(t *testing.T) {
	files := map[string]string{
		"internal/rng/rng.go": rngStub,
		"a/a.go": `package a

import "samurai/internal/rng"

// Seed races a captured counter across goroutines and seeds with it.
func Seed(done chan struct{}) *rng.Stream {
	var n uint64
	for i := 0; i < 4; i++ {
		go func() {
			n++
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	return rng.New(n)
}
`,
	}
	got := run(t, files, detflowRule)
	wantChain(t, got, "rng stream seeding", "unsynchronised goroutine write")
}

func TestDetflowSelectWinner(t *testing.T) {
	files := map[string]string{
		"internal/rng/rng.go": rngStub,
		"a/a.go": `package a

import "samurai/internal/rng"

// Seed races two producers; the select winner decides the seed.
func Seed(a, b chan uint64) *rng.Stream {
	var s uint64
	select {
	case v := <-a:
		s = v
	case v := <-b:
		s = v
	}
	return rng.New(s)
}
`,
	}
	got := run(t, files, detflowRule)
	wantChain(t, got, "rng stream seeding", "select winner")
}

func TestMaporderFlagsAppendInMapRange(t *testing.T) {
	files := map[string]string{
		"a/a.go": `package a

// Names collects keys in visit order — nondeterministic.
func Names(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	return names
}
`,
	}
	got := run(t, files, maporderRule)
	wantN(t, got, 1)
	if !strings.Contains(got[0].Message, "names") {
		t.Fatalf("finding does not name the output: %s", got[0].Message)
	}
}

func TestMaporderSortedAfterIsClean(t *testing.T) {
	files := map[string]string{
		"a/a.go": `package a

import "sort"

// Names collects keys then sorts — the canonical deterministic idiom.
func Names(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
`,
	}
	wantN(t, run(t, files, maporderRule), 0)
}

func TestMaporderKeyedWriteAndIntSumAreClean(t *testing.T) {
	files := map[string]string{
		"a/a.go": `package a

// Invert writes keyed output and sums ints: both order-independent.
func Invert(m map[string]int) (map[int]string, int) {
	out := map[int]string{}
	sum := 0
	for k, v := range m {
		out[v] = k
		sum += v
	}
	return out, sum
}
`,
	}
	wantN(t, run(t, files, maporderRule), 0)
}

func TestMaporderFloatAccumulationFlagged(t *testing.T) {
	files := map[string]string{
		"a/a.go": `package a

// Total sums floats in map order — rounding differs per visit order.
func Total(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
`,
	}
	got := run(t, files, maporderRule)
	wantN(t, got, 1)
	if !strings.Contains(got[0].Message, "total") {
		t.Fatalf("finding does not name the accumulator: %s", got[0].Message)
	}
}

func TestCtxflowFlagsDroppedContext(t *testing.T) {
	files := map[string]string{
		"a/a.go": `package a

import "context"

// inner accepts a context.
func inner(ctx context.Context) {}

// Outer holds a context but hands inner a fresh one.
func Outer(ctx context.Context) {
	inner(context.Background())
}
`,
	}
	got := run(t, files, ctxflowRule)
	wantN(t, got, 1)
	if !strings.Contains(got[0].Message, "Outer") || !strings.Contains(got[0].Message, "inner") {
		t.Fatalf("finding does not name caller and callee: %s", got[0].Message)
	}
}

func TestCtxflowPassedAndDerivedContextsAreClean(t *testing.T) {
	files := map[string]string{
		"a/a.go": `package a

import (
	"context"
	"time"
)

// inner accepts a context.
func inner(ctx context.Context) {}

// Direct forwards the incoming context.
func Direct(ctx context.Context) { inner(ctx) }

// Derived forwards a context derived from the incoming one.
func Derived(ctx context.Context) {
	c2, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	inner(c2)
}
`,
	}
	wantN(t, run(t, files, ctxflowRule), 0)
}

func TestSeedpurityFlagsConstantSeedWithChain(t *testing.T) {
	files := map[string]string{
		"internal/rng/rng.go": rngStub,
		"internal/montecarlo/mc.go": `package montecarlo

import "samurai/internal/rng"

// helper hides the constant seed one call deep.
func helper() *rng.Stream { return rng.New(12345) }

// Run is the exported seeded entry point.
func Run() uint64 { return helper().Uint64() }
`,
	}
	got := run(t, files, seedpurityRule)
	wantChain(t, got, "Run -> helper", "12345")
}

func TestSeedpuritySeedDerivedStreamsAreClean(t *testing.T) {
	files := map[string]string{
		"internal/rng/rng.go": rngStub,
		"internal/montecarlo/mc.go": `package montecarlo

import "samurai/internal/rng"

// Config carries the job seed.
type Config struct{ Seed uint64 }

// Run seeds from the config and splits per cell — the approved shape.
func Run(cfg Config, cells int) uint64 {
	root := rng.New(cfg.Seed)
	var sum uint64
	for i := 0; i < cells; i++ {
		sum += root.Split(uint64(i)).Uint64()
	}
	return sum
}
`,
	}
	wantN(t, run(t, files, seedpurityRule), 0)
}

func TestSeedpurityIgnoresUnreachablePackages(t *testing.T) {
	files := map[string]string{
		"internal/rng/rng.go": rngStub,
		"internal/experiments/x.go": `package experiments

import "samurai/internal/rng"

// Scratch is off the seeded path; constant seeds are fine here.
func Scratch() uint64 { return rng.New(7).Uint64() }
`,
	}
	wantN(t, run(t, files, seedpurityRule), 0)
}

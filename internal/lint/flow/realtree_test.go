package flow

import (
	"os"
	"path/filepath"
	"testing"

	"samurai/internal/lint"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestRealTreeSweepsClean is the acceptance gate: the repository itself
// must carry zero unsuppressed flow findings. Intentional
// nondeterminism (obs timestamps, progress events) is documented with
// //lint:nondet-ok at the source line; anything else is a regression
// against the replayability invariants the golden tests pin.
func TestRealTreeSweepsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	pkgs, err := lint.LoadModule(repoRoot(t))
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	rules := []lint.Rule{detflowRule, maporderRule, ctxflowRule, seedpurityRule}
	got := lint.Run(pkgs, rules)
	for _, d := range got {
		t.Errorf("%s", d)
	}
	if len(got) > 0 {
		t.Fatalf("%d unsuppressed flow finding(s) in the real tree", len(got))
	}
}

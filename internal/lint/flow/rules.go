package flow

import "samurai/internal/lint"

// Registration order is the order `samurailint -list` shows the flow
// rules after the per-package builtins.
func init() {
	lint.Register(detflowRule)
	lint.Register(maporderRule)
	lint.Register(ctxflowRule)
	lint.Register(seedpurityRule)
}

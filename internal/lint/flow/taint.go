package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"samurai/internal/lint"
)

// trace is one step of a taint witness, a linked list back to the
// source. Rendering walks to the root so every diagnostic shows the
// full source→sink chain.
type trace struct {
	desc string
	pos  token.Position
	prev *trace
}

func (t *trace) root() *trace {
	for t.prev != nil {
		t = t.prev
	}
	return t
}

// chain renders the witness source-first: "a (f.go:3) -> b (g.go:7)".
func (t *trace) chain() string {
	var steps []string
	for s := t; s != nil; s = s.prev {
		steps = append(steps, fmt.Sprintf("%s (%s:%d)", s.desc, filepath.Base(s.pos.Filename), s.pos.Line))
	}
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return strings.Join(steps, " -> ")
}

// sourceFuncs are external calls whose results are nondeterministic by
// construction, keyed by types.Func.FullName.
var sourceFuncs = map[string]string{
	"time.Now":             "wall-clock time",
	"time.Since":           "wall-clock duration",
	"time.Until":           "wall-clock duration",
	"os.Getpid":            "process id",
	"os.Getenv":            "environment variable",
	"os.LookupEnv":         "environment variable",
	"os.Environ":           "environment",
	"os.Hostname":          "host name",
	"runtime.NumCPU":       "host CPU count",
	"runtime.GOMAXPROCS":   "scheduler parallelism",
	"runtime.NumGoroutine": "live goroutine count",
}

// sourceDesc reports whether fn is a nondeterminism source and why.
// Beyond the fixed table, every function of math/rand and math/rand/v2
// is a source: the global generator is both unseeded and shared.
func sourceDesc(fn *types.Func) string {
	if d, ok := sourceFuncs[fn.FullName()]; ok {
		return d
	}
	if p := fn.Pkg(); p != nil && (p.Path() == "math/rand" || p.Path() == "math/rand/v2") {
		return "global math/rand state"
	}
	return ""
}

// analysis is the interprocedural taint state: a module-wide
// object→witness map plus per-function summaries, iterated to a
// fixpoint. Taint only ever grows and the first witness written for an
// object is kept, so the result (and every reported chain) is
// deterministic regardless of iteration count.
type analysis struct {
	g *Graph
	// taint maps a program object (local, parameter, package var) to
	// the witness explaining how nondeterminism reached it.
	taint map[types.Object]*trace
	// retTaint summarises "result i of this function carries taint",
	// per result index. Index -1 means "some result, index unknown" and
	// taints every position. Per-index precision matters for APIs like
	// trace.Start that return a clean context alongside a timed span:
	// only the span result is tainted, so destructuring call sites keep
	// the context clean.
	retTaint map[*Node]map[int]*trace
	// paramOut summarises "calling this function taints the object
	// passed as argument i" (writes through pointer-like parameters).
	paramOut map[*Node]map[int]*trace
	changed  bool
}

// analyze builds the graph and runs taint propagation to a fixpoint.
// The result is memoised per package slice: all four flow rules run
// against the same module load, so the expensive pass happens once.
var memo struct {
	pkgs []*lint.Package
	g    *Graph
	a    *analysis
}

func analyze(pkgs []*lint.Package) (*Graph, *analysis) {
	if memo.g != nil && len(memo.pkgs) == len(pkgs) && (len(pkgs) == 0 || memo.pkgs[0] == pkgs[0]) {
		return memo.g, memo.a
	}
	g := BuildGraph(pkgs)
	a := &analysis{
		g:        g,
		taint:    map[types.Object]*trace{},
		retTaint: map[*Node]map[int]*trace{},
		paramOut: map[*Node]map[int]*trace{},
	}
	for i := 0; ; i++ {
		a.changed = false
		for _, n := range g.Sorted {
			a.visit(n)
		}
		if !a.changed || i > 64 {
			break
		}
	}
	memo.pkgs, memo.g, memo.a = pkgs, g, a
	return g, a
}

// mark records taint on an object, first witness wins.
func (a *analysis) mark(obj types.Object, t *trace) {
	if obj == nil || t == nil {
		return
	}
	if _, ok := a.taint[obj]; ok {
		return
	}
	a.taint[obj] = t
	a.changed = true
}

// setRet records taint on result index i of n (first witness wins per
// index; i == -1 taints every position).
func (a *analysis) setRet(n *Node, i int, t *trace) {
	if t == nil {
		return
	}
	m := a.retTaint[n]
	if m == nil {
		m = map[int]*trace{}
		a.retTaint[n] = m
	}
	if _, ok := m[i]; ok {
		return
	}
	m[i] = t
	a.changed = true
}

// retIndex returns the taint of result index i, falling back to the
// index-unknown (-1) summary.
func (a *analysis) retIndex(n *Node, i int) *trace {
	m := a.retTaint[n]
	if m == nil {
		return nil
	}
	if t := m[i]; t != nil {
		return t
	}
	return m[-1]
}

// retAny returns a witness if any result of n carries taint, preferring
// the lowest index so the reported chain is deterministic.
func (a *analysis) retAny(n *Node) *trace {
	m := a.retTaint[n]
	if len(m) == 0 {
		return nil
	}
	if t, ok := m[-1]; ok {
		return t
	}
	min := -1
	for i := range m {
		if min == -1 || i < min {
			min = i
		}
	}
	return m[min]
}

func (a *analysis) setParamOut(n *Node, i int, t *trace) {
	if t == nil {
		return
	}
	m := a.paramOut[n]
	if m == nil {
		m = map[int]*trace{}
		a.paramOut[n] = m
	}
	if _, ok := m[i]; ok {
		return
	}
	m[i] = t
	a.changed = true
}

// step extends a witness by one hop.
func step(prev *trace, desc string, pos token.Position) *trace {
	return &trace{desc: desc, pos: pos, prev: prev}
}

// visit applies the flow-insensitive transfer functions to one node.
func (a *analysis) visit(n *Node) {
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.AssignStmt:
			a.assign(n, s)
		case *ast.ValueSpec:
			a.valueSpec(n, s)
		case *ast.ReturnStmt:
			a.returnStmt(n, s)
		case *ast.GoStmt:
			a.goStmt(n, s)
		case *ast.SelectStmt:
			a.selectStmt(n, s)
		case *ast.RangeStmt:
			a.rangeStmt(n, s)
		case *ast.SendStmt:
			a.mark(rootObj(n.Pkg, s.Chan), a.exprTaint(n, s.Value))
		case *ast.CallExpr:
			a.propagateCall(n, s)
		}
		return true
	})
}

func (a *analysis) assign(n *Node, s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Tuple assignment. For a call RHS the callee summary is
		// per-result-index, so each target gets its own taint; other
		// tuple forms (map/chan/type-assert comma-ok) share the operand
		// taint across all targets.
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			for i, t := range a.callTupleTaint(n, call, len(s.Lhs)) {
				a.assignTo(n, s.Lhs[i], t)
			}
			return
		}
		t := a.exprTaint(n, s.Rhs[0])
		for _, lhs := range s.Lhs {
			a.assignTo(n, lhs, t)
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		t := a.exprTaint(n, s.Rhs[i])
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE && t == nil {
			t = a.exprTaint(n, lhs) // op-assign keeps existing taint
		}
		a.assignTo(n, lhs, t)
	}
}

// assignTo taints the storage root of an lvalue, and records a paramOut
// summary when the write escapes through a parameter.
func (a *analysis) assignTo(n *Node, lhs ast.Expr, t *trace) {
	if t == nil {
		return
	}
	obj := rootObj(n.Pkg, lhs)
	if obj == nil {
		return
	}
	a.mark(obj, t)
	if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
		return // rebinding a local name does not escape
	}
	if obj == n.recvObj {
		a.setParamOut(n, -1, t)
	}
	for i, p := range n.params {
		if p != nil && p == obj {
			a.setParamOut(n, i, t)
		}
	}
}

func (a *analysis) valueSpec(n *Node, s *ast.ValueSpec) {
	if len(s.Values) == 1 && len(s.Names) > 1 {
		t := a.exprTaint(n, s.Values[0])
		for _, name := range s.Names {
			a.mark(n.Pkg.Info.Defs[name], t)
		}
		return
	}
	for i, name := range s.Names {
		if i < len(s.Values) {
			a.mark(n.Pkg.Info.Defs[name], a.exprTaint(n, s.Values[i]))
		}
	}
}

func (a *analysis) returnStmt(n *Node, s *ast.ReturnStmt) {
	pos := n.Pkg.Fset.Position(s.Pos())
	if len(s.Results) == 0 {
		// Naked return: named results carry whatever taint they have,
		// positionally.
		if res := n.Decl.Type.Results; res != nil {
			idx := 0
			for _, field := range res.List {
				if len(field.Names) == 0 {
					idx++
					continue
				}
				for _, name := range field.Names {
					if t := a.taint[n.Pkg.Info.Defs[name]]; t != nil {
						a.setRet(n, idx, step(t, "returned from "+n.Name(), pos))
					}
					idx++
				}
			}
		}
		return
	}
	if nres := resultCount(n); len(s.Results) == 1 && nres > 1 {
		// return f(): a multi-result call forwarded whole. Propagate the
		// callee's per-index summary.
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			for i, t := range a.callTupleTaint(n, call, nres) {
				if t != nil {
					a.setRet(n, i, step(t, "returned from "+n.Name(), pos))
				}
			}
			return
		}
	}
	for i, r := range s.Results {
		if t := a.exprTaint(n, r); t != nil {
			a.setRet(n, i, step(t, "returned from "+n.Name(), pos))
		}
	}
}

// resultCount returns the number of result values of n's signature.
func resultCount(n *Node) int {
	res := n.Decl.Type.Results
	if res == nil {
		return 0
	}
	count := 0
	for _, field := range res.List {
		if len(field.Names) == 0 {
			count++
			continue
		}
		count += len(field.Names)
	}
	return count
}

// goStmt models the classic fan-out hazard: a goroutine writing to a
// variable captured from the enclosing scope without synchronisation.
// Index-disjoint writes (outs[i] = ...) follow the repo's sharding
// convention and are exempt, as is any literal whose body takes a lock.
func (a *analysis) goStmt(n *Node, s *ast.GoStmt) {
	lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	if locksInside(lit.Body) {
		return
	}
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if inner, ok := x.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		var targets []ast.Expr
		switch s := x.(type) {
		case *ast.AssignStmt:
			targets = s.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{s.X}
		default:
			return true
		}
		for _, lhs := range targets {
			lv := ast.Unparen(lhs)
			if _, indexed := lv.(*ast.IndexExpr); indexed {
				continue // index-disjoint sharding convention
			}
			obj := rootObj(n.Pkg, lv)
			if obj == nil || insideNode(lit, obj) {
				continue
			}
			pos := n.Pkg.Fset.Position(lv.Pos())
			a.mark(obj, &trace{desc: "unsynchronised goroutine write to " + obj.Name(), pos: pos})
		}
		return true
	})
}

// locksInside reports whether the block calls a Lock method — a crude
// but effective signal that the writes are mutex-guarded.
func locksInside(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
				found = true
			}
		}
		return !found
	})
	return found
}

// selectStmt taints variables assigned from channel receives when two
// or more clauses receive values: which clause runs — and therefore
// which value lands — is decided by the scheduler.
func (a *analysis) selectStmt(n *Node, s *ast.SelectStmt) {
	var recvAssigns []*ast.AssignStmt
	for _, c := range s.Body.List {
		comm, ok := c.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		if as, ok := comm.Comm.(*ast.AssignStmt); ok {
			recvAssigns = append(recvAssigns, as)
		}
	}
	if len(recvAssigns) < 2 {
		return
	}
	for _, as := range recvAssigns {
		pos := n.Pkg.Fset.Position(as.Pos())
		for _, lhs := range as.Lhs {
			a.mark(rootObj(n.Pkg, lhs), &trace{desc: "value chosen by select winner", pos: pos})
		}
	}
}

// rangeStmt propagates the ranged container's taint to the iteration
// variables. Iteration-*order* nondeterminism of maps is handled by the
// maporder rule, not by value taint.
func (a *analysis) rangeStmt(n *Node, s *ast.RangeStmt) {
	t := a.exprTaint(n, s.X)
	if t == nil {
		return
	}
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if e != nil {
			a.mark(rootObj(n.Pkg, e), t)
		}
	}
}

// propagateCall pushes taint across one call site: tainted arguments
// taint the callee's parameters (context-insensitively), and callee
// paramOut summaries taint the caller's argument objects.
func (a *analysis) propagateCall(n *Node, call *ast.CallExpr) {
	callees := n.callees[call]
	if len(callees) == 0 {
		return
	}
	pos := n.Pkg.Fset.Position(call.Pos())
	var recvExpr ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isSel := n.Pkg.Info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
			recvExpr = sel.X
		}
	}
	for _, fn := range callees {
		cn := a.g.Nodes[fn]
		if cn == nil {
			continue // external callee: no body to propagate into
		}
		if recvExpr != nil && cn.recvObj != nil {
			if t := a.exprTaint(n, recvExpr); t != nil {
				a.mark(cn.recvObj, step(t, "receiver of "+cn.Name(), pos))
			}
		}
		for i, arg := range call.Args {
			t := a.exprTaint(n, arg)
			if t != nil {
				pi := i
				if pi >= len(cn.params) && len(cn.params) > 0 {
					pi = len(cn.params) - 1 // variadic tail
				}
				if pi < len(cn.params) && cn.params[pi] != nil {
					a.mark(cn.params[pi], step(t, fmt.Sprintf("passed to %s", cn.Name()), pos))
				}
			}
		}
		// Callee writes through its parameters: taint our arguments.
		for i, t := range a.paramOut[cn] {
			var target ast.Expr
			if i == -1 {
				target = recvExpr
			} else if i < len(call.Args) {
				target = call.Args[i]
			}
			if target != nil {
				a.mark(rootObj(n.Pkg, target), step(t, "written via call to "+cn.Name(), pos))
			}
		}
	}
}

// exprTaint computes the taint of a value expression.
func (a *analysis) exprTaint(n *Node, e ast.Expr) *trace {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		if obj := n.Pkg.Info.ObjectOf(e); obj != nil {
			return a.taint[obj]
		}
		return nil
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := n.Pkg.Info.Uses[id].(*types.PkgName); isPkg {
				return a.taint[n.Pkg.Info.ObjectOf(e.Sel)]
			}
		}
		return a.exprTaint(n, e.X) // field access carries root taint
	case *ast.CallExpr:
		return a.callTaint(n, e)
	case *ast.BinaryExpr:
		if t := a.exprTaint(n, e.X); t != nil {
			return t
		}
		return a.exprTaint(n, e.Y)
	case *ast.UnaryExpr:
		return a.exprTaint(n, e.X)
	case *ast.ParenExpr:
		return a.exprTaint(n, e.X)
	case *ast.StarExpr:
		return a.exprTaint(n, e.X)
	case *ast.TypeAssertExpr:
		return a.exprTaint(n, e.X)
	case *ast.IndexExpr:
		if t := a.exprTaint(n, e.X); t != nil {
			return t
		}
		return nil
	case *ast.SliceExpr:
		return a.exprTaint(n, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if t := a.exprTaint(n, el); t != nil {
				return t
			}
		}
		return nil
	case *ast.KeyValueExpr:
		return a.exprTaint(n, e.Value)
	default:
		return nil // literals, func literals, type exprs
	}
}

// callTaint computes the taint of a call's result value.
func (a *analysis) callTaint(n *Node, call *ast.CallExpr) *trace {
	pos := n.Pkg.Fset.Position(call.Pos())
	fun := ast.Unparen(call.Fun)

	// Conversion T(x): the value passes through.
	if tv, ok := n.Pkg.Info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return a.exprTaint(n, call.Args[0])
		}
		return nil
	}
	// Builtins (append, len, min, ...): any tainted operand taints the result.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := n.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			for _, arg := range call.Args {
				if t := a.exprTaint(n, arg); t != nil {
					return t
				}
			}
			return nil
		}
	}

	callees := n.callees[call]
	for _, fn := range callees {
		if d := sourceDesc(fn); d != "" {
			return &trace{desc: d + " from " + fn.FullName(), pos: pos}
		}
		if cn := a.g.Nodes[fn]; cn != nil {
			if t := a.retAny(cn); t != nil {
				return step(t, "result of "+cn.Name(), pos)
			}
			continue
		}
		// External, non-source callee: conservative pass-through of
		// argument and receiver taint (e.g. d.Seconds(), fmt.Sprintf).
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if s, isSel := n.Pkg.Info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
				if t := a.exprTaint(n, sel.X); t != nil {
					return step(t, "through "+fn.FullName(), pos)
				}
			}
		}
		for _, arg := range call.Args {
			if t := a.exprTaint(n, arg); t != nil {
				return step(t, "through "+fn.FullName(), pos)
			}
		}
	}
	return nil
}

// callTupleTaint computes per-result-index taint for a multi-result
// call destructured into k targets. Sources and external pass-through
// taint every index (which result carries the nondeterminism is
// unknowable without a body); internal callees use their per-index
// retTaint summary.
func (a *analysis) callTupleTaint(n *Node, call *ast.CallExpr, k int) []*trace {
	out := make([]*trace, k)
	pos := n.Pkg.Fset.Position(call.Pos())
	fun := ast.Unparen(call.Fun)
	fill := func(t *trace) {
		for i := range out {
			if out[i] == nil {
				out[i] = t
			}
		}
	}
	for _, fn := range n.callees[call] {
		if d := sourceDesc(fn); d != "" {
			fill(&trace{desc: d + " from " + fn.FullName(), pos: pos})
			continue
		}
		if cn := a.g.Nodes[fn]; cn != nil {
			for i := range out {
				if out[i] == nil {
					if t := a.retIndex(cn, i); t != nil {
						out[i] = step(t, "result of "+cn.Name(), pos)
					}
				}
			}
			continue
		}
		// External, non-source callee: conservative pass-through of
		// argument and receiver taint into every result.
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if s, isSel := n.Pkg.Info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
				if t := a.exprTaint(n, sel.X); t != nil {
					fill(step(t, "through "+fn.FullName(), pos))
				}
			}
		}
		for _, arg := range call.Args {
			if t := a.exprTaint(n, arg); t != nil {
				fill(step(t, "through "+fn.FullName(), pos))
			}
		}
	}
	return out
}

// rootObj resolves an lvalue or value expression to the object that
// stores it: x, x.f, x[i], *x, (&x).f all root at x.
func rootObj(pkg *lint.Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pkg.Info.ObjectOf(e)
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
				return pkg.Info.ObjectOf(e.Sel)
			}
		}
		return rootObj(pkg, e.X)
	case *ast.IndexExpr:
		return rootObj(pkg, e.X)
	case *ast.StarExpr:
		return rootObj(pkg, e.X)
	case *ast.UnaryExpr:
		return rootObj(pkg, e.X)
	case *ast.SliceExpr:
		return rootObj(pkg, e.X)
	default:
		return nil
	}
}

// insideNode reports whether obj is declared within the given span.
func insideNode(span ast.Node, obj types.Object) bool {
	return obj.Pos() >= span.Pos() && obj.Pos() <= span.End()
}

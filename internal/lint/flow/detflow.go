package flow

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"samurai/internal/lint"
)

const detflowName = "detflow"

var detflowRule = lint.Rule{
	Name:        detflowName,
	Doc:         "no nondeterminism source (clock, pid, env, scheduler) may flow into a seeded simulation result, the jobd WAL, rng seeding, or a vv report",
	CheckModule: checkDetflow,
}

// callSinks are functions whose arguments (or receiver, for record)
// must be deterministic, keyed by types.Func.FullName. These are the
// repo's replayability chokepoints: everything a golden test pins
// passes through one of them.
var callSinks = map[string]string{
	"(*samurai/internal/jobd.Store).append":     "jobd WAL append",
	"samurai/internal/rng.New":                  "rng stream seeding",
	"samurai/internal/rng.NewSeq":               "rng stream seeding",
	"(*samurai/internal/rng.Stream).Split":      "rng stream split id",
	"(*samurai/internal/rng.Stream).SplitInto":  "rng stream split id",
	"(*samurai/internal/circuit.Runner).record": "transient probe record buffer",
}

// returnSinks are functions whose results must be deterministic: the
// seeded simulation entry points whose outputs golden tests replay.
var returnSinks = map[string]string{
	"samurai/internal/montecarlo.simulateCell": "per-cell Monte Carlo outcome",
	"samurai/internal/montecarlo.RunArray":     "Monte Carlo array result",
	"samurai/internal/montecarlo.RunArrayCtx":  "Monte Carlo array result",
	"samurai.Run":    "seeded transient simulation result",
	"samurai.RunCtx": "seeded transient simulation result",
}

// serializerPkgs are packages where any encoding/json marshal call is a
// sink: their byte-identical reports are a pinned invariant.
var serializerPkgs = map[string]string{
	"samurai/cmd/samuraivv": "samuraivv report serialization",
	"samurai/internal/vv":   "vv report serialization",
}

// checkDetflow reports every witnessed source→sink taint path. The
// diagnostic is anchored at the SOURCE line (so a //lint:nondet-ok
// there documents the intent where the nondeterminism enters) and the
// message carries the whole chain to the sink.
func checkDetflow(pkgs []*lint.Package) []lint.Diagnostic {
	g, a := analyze(pkgs)
	var out []lint.Diagnostic
	seen := map[string]bool{}
	report := func(t *trace, sinkDesc string, sinkPos string) {
		root := t.root()
		key := fmt.Sprintf("%s:%d|%s", root.pos.Filename, root.pos.Line, sinkDesc)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, lint.Diagnostic{
			Rule: detflowName,
			Pos:  root.pos,
			Message: fmt.Sprintf("nondeterministic value reaches %s at %s: %s",
				sinkDesc, sinkPos, t.chain()),
		})
	}

	for _, n := range g.Sorted {
		node := n
		ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			pos := g.position(node.Pkg, call)
			at := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			for _, fn := range node.callees[call] {
				desc, isSink := callSinks[fn.FullName()]
				if !isSink {
					if d, ok := serializerPkgs[node.Pkg.Path]; ok && isJSONMarshal(fn) {
						desc, isSink = d, true
					}
				}
				if !isSink {
					continue
				}
				for _, arg := range call.Args {
					if t := a.exprTaint(node, arg); t != nil {
						report(step(t, "into "+desc, pos), desc, at)
					}
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if s, isSel := node.Pkg.Info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
						if t := a.exprTaint(node, sel.X); t != nil {
							report(step(t, "into "+desc, pos), desc, at)
						}
					}
				}
			}
			return true
		})
	}

	// Return sinks: the function's own result summary must be clean.
	names := make([]string, 0, len(returnSinks))
	for name := range returnSinks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, n := range g.Sorted {
			if n.Name() != name {
				continue
			}
			if t := a.retAny(n); t != nil {
				pos := g.position(n.Pkg, n.Decl)
				report(t, returnSinks[name], fmt.Sprintf("%s:%d", pos.Filename, pos.Line))
			}
		}
	}
	return out
}

// isJSONMarshal matches encoding/json marshalling entry points.
func isJSONMarshal(fn *types.Func) bool {
	if p := fn.Pkg(); p == nil || p.Path() != "encoding/json" {
		return false
	}
	switch fn.Name() {
	case "Marshal", "MarshalIndent":
		return true
	case "Encode": // (*json.Encoder).Encode
		return true
	}
	return false
}

// Package flow implements whole-program determinism analyses for the
// SAMURAI repository: a call graph over every module package plus an
// interprocedural taint engine, consumed by four registered lint rules
// (detflow, maporder, ctxflow, seedpurity). Importing this package for
// side effects adds the rules to lint.AllRules.
//
// The call graph resolves static calls directly from type information,
// interface method calls with a CHA-style approximation (every declared
// module type implementing the interface is a candidate receiver), and
// calls through function-typed values by matching signatures against
// the set of address-taken module functions. Function literals do not
// get their own nodes: a closure's calls and writes are attributed to
// the declared function that defines it, which is the right attribution
// for "who introduced this nondeterminism" reporting. See DESIGN.md §11
// for the soundness limits of these approximations.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"

	"samurai/internal/lint"
)

// Node is one declared function or method in the module.
type Node struct {
	Fn   *types.Func
	Pkg  *lint.Package
	Decl *ast.FuncDecl

	// Calls lists the node's call sites in source order with their
	// candidate callees (module functions and externals alike).
	Calls []Call

	// recvObj and params are the declared receiver/parameter objects
	// (nil entries for unnamed or blank parameters), used by the taint
	// engine to model argument passing.
	recvObj types.Object
	params  []types.Object

	// callees indexes Calls by call site for the taint walker.
	callees map[*ast.CallExpr][]*types.Func
}

// Name returns the node's fully qualified name, e.g.
// "(*samurai/internal/jobd.Store).append".
func (n *Node) Name() string { return n.Fn.FullName() }

// Call is one resolved call site.
type Call struct {
	Site    *ast.CallExpr
	Callees []*types.Func
}

// Graph is the module call graph.
type Graph struct {
	Pkgs  []*lint.Package
	Nodes map[*types.Func]*Node
	// Sorted holds the nodes ordered by fully qualified name, the
	// iteration order of every analysis so diagnostics are stable.
	Sorted []*Node
}

// BuildGraph constructs the call graph for the loaded module packages.
func BuildGraph(pkgs []*lint.Package) *Graph {
	b := &builder{
		g:          &Graph{Pkgs: pkgs, Nodes: map[*types.Func]*Node{}},
		chaCache:   map[string][]*types.Func{},
		addrTaken:  map[*types.Func]bool{},
		namedTypes: nil,
	}
	b.collectNodes()
	b.collectNamedTypes()
	b.collectAddressTaken()
	b.resolveCalls()
	sort.Slice(b.g.Sorted, func(i, j int) bool {
		return b.g.Sorted[i].Name() < b.g.Sorted[j].Name()
	})
	return b.g
}

type builder struct {
	g          *Graph
	namedTypes []*types.Named
	addrTaken  map[*types.Func]bool
	chaCache   map[string][]*types.Func
}

// collectNodes creates one node per declared function with a body.
func (b *builder) collectNodes() {
	for _, pkg := range b.g.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Pkg: pkg, Decl: fd, callees: map[*ast.CallExpr][]*types.Func{}}
				if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
					n.recvObj = pkg.Info.Defs[fd.Recv.List[0].Names[0]]
				}
				for _, field := range fd.Type.Params.List {
					if len(field.Names) == 0 {
						n.params = append(n.params, nil)
						continue
					}
					for _, name := range field.Names {
						n.params = append(n.params, pkg.Info.Defs[name])
					}
				}
				b.g.Nodes[fn] = n
				b.g.Sorted = append(b.g.Sorted, n)
			}
		}
	}
}

// collectNamedTypes gathers every named type declared in the module,
// the candidate receiver universe for the CHA approximation.
func (b *builder) collectNamedTypes() {
	for _, pkg := range b.g.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				b.namedTypes = append(b.namedTypes, named)
			}
		}
	}
}

// collectAddressTaken records every module function referenced outside
// a direct call position — assigned to a variable, passed as an
// argument, stored in a struct. These are the candidate targets of
// calls through function-typed values.
func (b *builder) collectAddressTaken() {
	for _, pkg := range b.g.Pkgs {
		if pkg.Info == nil {
			continue
		}
		called := map[*ast.Ident]bool{}
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.AST, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					called[fun] = true
				case *ast.SelectorExpr:
					called[fun.Sel] = true
				}
				return true
			})
		}
		for id, obj := range pkg.Info.Uses {
			if called[id] {
				continue
			}
			if fn, ok := obj.(*types.Func); ok {
				if _, inModule := b.g.Nodes[origin(fn)]; inModule {
					b.addrTaken[origin(fn)] = true
				}
			}
		}
	}
}

// origin maps an instantiated generic function back to its declaration.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// resolveCalls fills every node's call list.
func (b *builder) resolveCalls() {
	for _, n := range b.g.Sorted {
		node := n
		ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			callees := b.resolve(node.Pkg, call)
			if len(callees) > 0 {
				node.callees[call] = callees
				node.Calls = append(node.Calls, Call{Site: call, Callees: callees})
			}
			return true
		})
	}
}

// resolve returns the candidate callees of one call expression.
func (b *builder) resolve(pkg *lint.Package, call *ast.CallExpr) []*types.Func {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) — unwrap to the function expr.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if _, ok := pkg.Info.Uses[identOf(ix.X)].(*types.Func); ok {
			fun = ast.Unparen(ix.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}

	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fn].(type) {
		case *types.Func:
			return []*types.Func{origin(obj)}
		case *types.Var:
			return b.funcValueTargets(obj.Type())
		}
		return nil // builtin, conversion, or unresolved
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fn]; ok {
			switch obj := sel.Obj().(type) {
			case *types.Func:
				if types.IsInterface(sel.Recv()) {
					return b.chaTargets(sel.Recv(), obj)
				}
				return []*types.Func{origin(obj)}
			case *types.Var:
				return b.funcValueTargets(obj.Type())
			}
			return nil
		}
		// Qualified reference pkg.Fn or pkg.Var.
		switch obj := pkg.Info.Uses[fn.Sel].(type) {
		case *types.Func:
			return []*types.Func{origin(obj)}
		case *types.Var:
			return b.funcValueTargets(obj.Type())
		}
		return nil
	case *ast.FuncLit:
		return nil // body inlined into the enclosing node
	default:
		// Call of an arbitrary function-valued expression.
		if tv, ok := pkg.Info.Types[fun]; ok && !tv.IsType() {
			return b.funcValueTargets(tv.Type)
		}
		return nil
	}
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// chaTargets approximates an interface method call: the declared method
// itself (covers implementations outside the module) plus the matching
// method of every module type implementing the interface.
func (b *builder) chaTargets(recv types.Type, m *types.Func) []*types.Func {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return []*types.Func{origin(m)}
	}
	key := recv.String() + "." + m.Name()
	if hit, ok := b.chaCache[key]; ok {
		return hit
	}
	out := []*types.Func{origin(m)}
	for _, named := range b.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		impl := types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface)
		if !impl {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, origin(fn))
		}
	}
	b.chaCache[key] = out
	return out
}

// funcValueTargets approximates a call through a function-typed value:
// every address-taken module function with an identical signature.
func (b *builder) funcValueTargets(t types.Type) []*types.Func {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Func
	for fn := range b.addrTaken {
		fsig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		if types.Identical(sig, fsig.Underlying()) {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// position resolves a node position against the graph's file set.
func (g *Graph) position(pkg *lint.Package, n ast.Node) token.Position {
	return pkg.Fset.Position(n.Pos())
}

// Dump writes a deterministic text rendering of the graph: one line per
// node (name and definition site) followed by its sorted callees. The
// output is stable across runs so CI can diff it between commits.
func (g *Graph) Dump(w io.Writer) error {
	edges := 0
	for _, n := range g.Sorted {
		edges += len(n.Calls)
	}
	if _, err := fmt.Fprintf(w, "# call graph: %d nodes, %d call sites\n", len(g.Sorted), edges); err != nil {
		return err
	}
	for _, n := range g.Sorted {
		pos := g.position(n.Pkg, n.Decl)
		if _, err := fmt.Fprintf(w, "%s %s:%d\n", n.Name(), pos.Filename, pos.Line); err != nil {
			return err
		}
		seen := map[string]bool{}
		var names []string
		for _, c := range n.Calls {
			for _, fn := range c.Callees {
				if name := fn.FullName(); !seen[name] {
					seen[name] = true
					names = append(names, name)
				}
			}
		}
		sort.Strings(names)
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "  -> %s\n", name); err != nil {
				return err
			}
		}
	}
	return nil
}

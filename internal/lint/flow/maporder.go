package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"samurai/internal/lint"
)

const maporderName = "maporder"

var maporderRule = lint.Rule{
	Name:        maporderName,
	Doc:         "ranging over a map while appending to or accumulating into ordered output is silently nondeterministic; sort the keys first",
	CheckModule: checkMaporder,
}

// checkMaporder flags map-range loops whose bodies feed order-sensitive
// outputs. Order-insensitive patterns stay silent: keyed writes
// (out[k] = v), exact commutative accumulation (integer sums), and
// slices that are sorted after the loop (the repo's canonical
// sorted-keys idiom, e.g. circuit.NewRunner's source-name collection).
func checkMaporder(pkgs []*lint.Package) []lint.Diagnostic {
	g, _ := analyze(pkgs)
	var out []lint.Diagnostic
	for _, n := range g.Sorted {
		node := n
		var ranges []*ast.RangeStmt
		ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
			if rs, ok := x.(*ast.RangeStmt); ok && isMapType(node, rs.X) {
				ranges = append(ranges, rs)
			}
			return true
		})
		for _, rs := range ranges {
			ast.Inspect(node.Decl.Body, func(y ast.Node) bool {
				as, ok := y.(*ast.AssignStmt)
				if !ok || innermostRange(ranges, as) != rs {
					return true
				}
				out = append(out, maporderInBody(node, rs, as)...)
				return true
			})
		}
	}
	return out
}

// innermostRange returns the innermost map-range statement enclosing
// the node, nil if none — each assignment is attributed to exactly one
// loop even when map ranges nest.
func innermostRange(ranges []*ast.RangeStmt, n ast.Node) *ast.RangeStmt {
	var best *ast.RangeStmt
	for _, rs := range ranges {
		if rs.Body.Pos() <= n.Pos() && n.End() <= rs.Body.End() {
			if best == nil || rs.Body.Pos() > best.Body.Pos() {
				best = rs
			}
		}
	}
	return best
}

// maporderInBody inspects one node inside a map-range body and returns
// diagnostics for order-sensitive output it produces.
func maporderInBody(node *Node, rs *ast.RangeStmt, y ast.Node) []lint.Diagnostic {
	var out []lint.Diagnostic
	flag := func(pos ast.Node, what string) {
		out = append(out, lint.Diagnostic{
			Rule: maporderName,
			Pos:  node.Pkg.Fset.Position(pos.Pos()),
			Message: fmt.Sprintf("map iteration order is nondeterministic and %s; "+
				"collect and sort the keys first", what),
		})
	}
	as, ok := y.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	for i, lhs := range as.Lhs {
		lv := ast.Unparen(lhs)
		if _, keyed := lv.(*ast.IndexExpr); keyed {
			continue // out[k] = v: content is order-independent
		}
		obj := rootObj(node.Pkg, lv)
		if obj == nil || insideNode(rs, obj) {
			continue // loop-local scratch cannot leak ordering
		}
		// append(dst, ...) growing an outer slice in visit order.
		if i < len(as.Rhs) {
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok && isAppendCall(node, call) {
				if sortedAfter(node, rs, obj) {
					continue
				}
				flag(as, fmt.Sprintf("the append to %q records it", obj.Name()))
				continue
			}
		}
		// Order-sensitive accumulation: float or string op-assign.
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			if isOrderSensitiveType(node, lv) {
				flag(as, fmt.Sprintf("the accumulation into %q is not exact under reordering", obj.Name()))
			}
		}
	}
	return out
}

func isAppendCall(node *Node, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := node.Pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// isMapType reports whether the expression has map type.
func isMapType(node *Node, e ast.Expr) bool {
	tv, ok := node.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isOrderSensitiveType reports whether accumulating into the expression
// depends on operand order: floating-point (rounding) and strings
// (concatenation). Integer sums are exact and commutative.
func isOrderSensitiveType(node *Node, e ast.Expr) bool {
	tv, ok := node.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch {
	case b.Info()&types.IsFloat != 0, b.Info()&types.IsComplex != 0, b.Info()&types.IsString != 0:
		return true
	}
	return false
}

// sortedAfter reports whether the object is passed to a sort.* or
// slices.* call after the range loop in the same function — visit-order
// nondeterminism is erased by the sort.
func sortedAfter(node *Node, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := node.Pkg.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootObj(node.Pkg, arg) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

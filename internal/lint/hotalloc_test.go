package lint

import "testing"

func TestHotAllocFlagsAllocationsInHotFunctions(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

import "fmt"

// step is the inner loop.
//
//lint:hot
func step(xs []float64, n int) string {
	buf := make([]float64, n)
	buf = append(buf, 1.0)
	m := map[string]int{"a": 1}
	_ = m
	_ = buf
	return fmt.Sprintf("n=%d", n)
}
`}
	wantFindings(t, diags(t, files, hotAllocRule), 4)
}

func TestHotAllocIgnoresUnannotatedFunctions(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

import "fmt"

// cold may allocate freely.
func cold(n int) string {
	buf := make([]float64, n)
	buf = append(buf, 1.0)
	m := map[string]int{"a": 1}
	_ = m
	_ = buf
	return fmt.Sprintf("n=%d", n)
}
`}
	wantFindings(t, diags(t, files, hotAllocRule), 0)
}

func TestHotAllocAcceptsDisciplinedHotFunction(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

import "fmt"

// record index-assigns into preallocated storage; the error path may
// construct (fmt.Errorf is not Sprintf) because an error ends the hot
// loop anyway.
//
//lint:hot
func record(dst []float64, k int, v float64) error {
	if k >= len(dst) {
		return fmt.Errorf("kern: sample %d beyond capacity %d", k, len(dst))
	}
	dst[k] = v
	return nil
}
`}
	wantFindings(t, diags(t, files, hotAllocRule), 0)
}

func TestHotAllocFlagsNamedMapLiterals(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

// index is a named map type.
type index map[string]int

// lookup builds a named-map literal per call.
//
//lint:hot
func lookup(k string) int {
	return index{"a": 1}[k]
}
`}
	wantFindings(t, diags(t, files, hotAllocRule), 1)
}

func TestHotAllocSkipsShadowedBuiltins(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

// appendTo shadows the builtin name; calling it is a plain call.
func appendTo(dst []float64, v float64) []float64 { return dst }

// hot calls the shadowing function, not the builtin.
//
//lint:hot
func hot(dst []float64, v float64) []float64 {
	append := appendTo
	return append(dst, v)
}
`}
	wantFindings(t, diags(t, files, hotAllocRule), 0)
}

func TestHotAllocStructLiteralsAreFine(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

// pt is a plain value struct.
type pt struct{ x, y float64 }

// hot builds a stack value — composite struct literals do not count as
// map allocations.
//
//lint:hot
func hot(a, b float64) pt {
	return pt{x: a, y: b}
}
`}
	wantFindings(t, diags(t, files, hotAllocRule), 0)
}

// TestHotAllocMethodsOnSoAStruct pins the rule's coverage of the
// batched-kernel shape: //lint:hot methods (not just functions) on a
// generic-free struct-of-arrays workspace. A disciplined advance that
// index-assigns into pre-grown lane buffers is clean; growing a lane
// slice inside the method is flagged, receiver or not.
func TestHotAllocMethodsOnSoAStruct(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

// soa is a lane-indexed struct-of-arrays workspace. grow (cold,
// unannotated) owns every allocation.
type soa struct {
	t   []float64
	acc []int64
}

// grow resizes the lanes outside the hot path.
func (s *soa) grow(n int) {
	s.t = make([]float64, n)
	s.acc = make([]int64, n)
}

// advance is the per-lane inner loop: loads, stores and arithmetic on
// the pre-grown arrays only.
//
//lint:hot
func (s *soa) advance(k int, dt float64) float64 {
	s.t[k] += dt
	s.acc[k]++
	return s.t[k]
}

// leakyAdvance grows a lane buffer per call — the allocation the
// annotation exists to forbid.
//
//lint:hot
func (s *soa) leakyAdvance(k int) {
	s.t = append(s.t, 0)
}
`}
	wantFindings(t, diags(t, files, hotAllocRule), 1)
}

func TestHotAllocSuppressible(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

// hot keeps one justified allocation.
//
//lint:hot
func hot(n int) []float64 {
	//lint:ignore hotalloc one-time warm-up allocation measured to be outside the loop
	return make([]float64, n)
}
`}
	wantFindings(t, diags(t, files, hotAllocRule), 0)
}

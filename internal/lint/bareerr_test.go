package lint

import "testing"

func TestBareErrFlagsDroppedCalls(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

// Fail returns an error.
func Fail() error { return nil }

// Closer has a failing Close.
type Closer struct{}

// Close implements io.Closer.
func (Closer) Close() error { return nil }

// Drops discards errors four different ways.
func Drops(c Closer) {
	Fail()         // statement drop
	defer c.Close() // deferred drop
	go Fail()      // goroutine drop
	_ = Fail()     // blank drop
}
`}
	wantFindings(t, diags(t, files, bareErrRule), 4)
}

func TestBareErrFlagsBlankTupleSlotAndPanicErr(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

// Two returns a value and an error.
func Two() (int, error) { return 0, nil }

// Blank drops only the error slot of a tuple.
func Blank() int {
	n, _ := Two()
	return n
}

// Escalate turns an error into a panic.
func Escalate(err error) {
	panic(err)
}
`}
	wantFindings(t, diags(t, files, bareErrRule), 2)
}

func TestBareErrAllowsHandledErrors(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

// Two returns a value and an error.
func Two() (int, error) { return 0, nil }

// Handled propagates every error.
func Handled() (int, error) {
	n, err := Two()
	if err != nil {
		return 0, err
	}
	return n, nil
}
`}
	wantFindings(t, diags(t, files, bareErrRule), 0)
}

func TestBareErrExemptsFmtPrintAndBuilders(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

import (
	"fmt"
	"strings"
)

// Report uses the conventional never-checked writers.
func Report(b *strings.Builder) {
	fmt.Println("hello")
	fmt.Printf("%d\n", 1)
	b.WriteString("x")
	fmt.Fprintf(b, "%d", 2)
}
`}
	wantFindings(t, diags(t, files, bareErrRule), 0)
}

func TestBareErrIgnoresNonErrorBlanksAndTestFiles(t *testing.T) {
	files := map[string]string{
		"a/a.go": `package a

// Pair returns two non-error values.
func Pair() (int, string) { return 0, "" }

// UsesPair blanks a non-error slot.
func UsesPair() int {
	n, _ := Pair()
	return n
}
`,
		"a/a_test.go": `package a

// Fail returns an error.
func Fail() error { return nil }

// TestishDrop drops an error inside a test file, which is allowed.
func TestishDrop() {
	_ = Fail()
}
`}
	wantFindings(t, diags(t, files, bareErrRule), 0)
}

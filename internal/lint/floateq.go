package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq forbids == and != between floating-point expressions. Exact
// float equality silently diverges under re-association, FMA
// contraction and cross-platform libm differences — the estimator-bias
// failure mode the paper's validation guards against. Comparisons must
// go through the tolerance helper units.ApproxEqual (or carry a
// //lint:ignore floateq justification when bitwise equality really is
// the intent, e.g. matching a breakpoint that was stored verbatim).
//
// Two comparisons stay legal because they are exact in IEEE-754:
//
//   - comparison against the constant 0 (unset-config sentinels and
//     sign tests), and
//   - any comparison inside internal/num or internal/units, where the
//     tolerance helpers and numerical kernels themselves live.
//
// The rule needs type information, so it covers non-test files only;
// tests may pin exact sample-path values on purpose.
const floatEqName = "floateq"

var floatEqRule = Rule{
	Name:  floatEqName,
	Doc:   "no == / != between floats outside internal/num and internal/units; use units.ApproxEqual",
	Check: checkFloatEq,
}

// exemptFloatEqPkgs hold the approved tolerance helpers and the
// numerical kernels whose exact comparisons are load-bearing.
func floatEqExempt(path string) bool {
	return strings.HasSuffix(path, "internal/num") || strings.HasSuffix(path, "internal/units")
}

func checkFloatEq(pkg *Package) []Diagnostic {
	if pkg.Info == nil || floatEqExempt(pkg.Path) {
		return nil
	}
	var out []Diagnostic
	pkg.eachFile(true, func(f *File) {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pkg, be.X) || !isFloat(pkg, be.Y) {
				return true
			}
			if isExactZero(pkg, be.X) || isExactZero(pkg, be.Y) {
				return true
			}
			out = append(out, Diagnostic{
				Rule:    floatEqName,
				Pos:     pkg.position(be),
				Message: fmt.Sprintf("floating-point %s comparison; use units.ApproxEqual or justify with //lint:ignore floateq", be.Op),
			})
			return true
		})
	})
	return out
}

// isFloat reports whether the expression's type is (or defaults to) a
// floating-point kind.
func isFloat(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat:
		return true
	}
	return false
}

// isExactZero reports whether e is a compile-time constant equal to 0.
func isExactZero(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}

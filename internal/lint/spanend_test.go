package lint

import "testing"

// obsStub mirrors the span surface of samurai/internal/obs so fixtures
// type-check against the real package path the rule matches on.
const obsStub = `package obs

type Span struct{ name string }

func StartSpan(name string) *Span { return &Span{name: name} }

func (s *Span) Child(name string) *Span { return &Span{name: name} }
func (s *Span) Name() string            { return s.name }
func (s *Span) End() int                { return 0 }
`

// traceStub mirrors the (ctx, span) surface of
// samurai/internal/obs/trace.
const traceStub = `package trace

import "context"

type Span struct{ path string }

func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{path: name}
}

func StartInst(ctx context.Context, name string, inst uint64) (context.Context, *Span) {
	return ctx, &Span{path: name}
}

func (s *Span) End() int       { return 0 }
func (s *Span) Path() string   { return s.path }
func (s *Span) SpanID() uint64 { return 0 }
`

func spanendFixture(body string) map[string]string {
	return map[string]string{
		"internal/obs/span.go":        obsStub,
		"internal/obs/trace/trace.go": traceStub,
		"sim/sim.go":                  body,
	}
}

func TestSpanEndFlagsNeverEndedSpan(t *testing.T) {
	files := spanendFixture(`package sim

import "samurai/internal/obs"

func Work() {
	sp := obs.StartSpan("work")
	_ = sp.Name()
}
`)
	wantFindings(t, diags(t, files, spanEndRule), 1)
}

func TestSpanEndAcceptsDeferredEnd(t *testing.T) {
	files := spanendFixture(`package sim

import (
	"context"

	"samurai/internal/obs"
	"samurai/internal/obs/trace"
)

func Work(ctx context.Context) {
	sp := obs.StartSpan("work")
	defer sp.End()

	ctx, tsp := trace.Start(ctx, "phase")
	defer tsp.End()
	_ = ctx
}
`)
	wantFindings(t, diags(t, files, spanEndRule), 0)
}

func TestSpanEndAcceptsDeferredClosureEnd(t *testing.T) {
	files := spanendFixture(`package sim

import "samurai/internal/obs"

func Work() {
	sp := obs.StartSpan("work")
	defer func() {
		sp.End()
	}()
}
`)
	wantFindings(t, diags(t, files, spanEndRule), 0)
}

func TestSpanEndAcceptsStraightLineExplicitEnd(t *testing.T) {
	// The rtngen pattern: create, work, End, no return in between.
	files := spanendFixture(`package sim

import "samurai/internal/obs"

func Work() {
	sp := obs.StartSpan("work")
	child := sp.Child("inner")
	child.End()
	sp.End()
}
`)
	wantFindings(t, diags(t, files, spanEndRule), 0)
}

func TestSpanEndFlagsReturnBetweenCreateAndEnd(t *testing.T) {
	files := spanendFixture(`package sim

import "samurai/internal/obs"

func Work(fail bool) error {
	sp := obs.StartSpan("work")
	if fail {
		return nil // leaks sp
	}
	sp.End()
	return nil
}
`)
	wantFindings(t, diags(t, files, spanEndRule), 1)
}

func TestSpanEndFlagsDiscardedResults(t *testing.T) {
	files := spanendFixture(`package sim

import (
	"context"

	"samurai/internal/obs"
	"samurai/internal/obs/trace"
)

func Work(ctx context.Context) {
	obs.StartSpan("dropped")
	_ = obs.StartSpan("blank")
	_, _ = trace.Start(ctx, "blank2")
}
`)
	wantFindings(t, diags(t, files, spanEndRule), 3)
}

func TestSpanEndSkipsEscapingSpans(t *testing.T) {
	files := spanendFixture(`package sim

import "samurai/internal/obs"

type holder struct{ sp *obs.Span }

func finish(sp *obs.Span) { sp.End() }

// Returned: the caller owns the End.
func Open() *obs.Span {
	sp := obs.StartSpan("open")
	return sp
}

// Passed on: finish owns the End.
func Delegate() {
	sp := obs.StartSpan("delegate")
	finish(sp)
}

// Stored: the holder owns the End.
func Stash(h *holder) {
	sp := obs.StartSpan("stash")
	h.sp = sp
}
`)
	wantFindings(t, diags(t, files, spanEndRule), 0)
}

func TestSpanEndTracksTraceTupleResult(t *testing.T) {
	// The span sits at index 1 of trace.Start's results; the context at
	// index 0 must not be mistaken for the trackable value.
	files := spanendFixture(`package sim

import (
	"context"

	"samurai/internal/obs/trace"
)

func Work(ctx context.Context) {
	ctx, sp := trace.StartInst(ctx, "cell", 3)
	_ = ctx
	_ = sp.Path()
}
`)
	wantFindings(t, diags(t, files, spanEndRule), 1)
}

func TestSpanEndHonoursIgnoreDirective(t *testing.T) {
	files := spanendFixture(`package sim

import "samurai/internal/obs"

func Work() {
	//lint:ignore spanend span deliberately left open for the process lifetime
	sp := obs.StartSpan("work")
	_ = sp
}
`)
	wantFindings(t, diags(t, files, spanEndRule), 0)
}

func TestSpanEndIgnoresUnrelatedCalls(t *testing.T) {
	// Functions returning non-span values, or spans from other
	// packages, are not this rule's business.
	files := spanendFixture(`package sim

type fake struct{}

func (f *fake) End() {}

func open() *fake { return &fake{} }

func Work() {
	f := open()
	_ = f
}
`)
	wantFindings(t, diags(t, files, spanEndRule), 0)
}

package lint

import "testing"

func TestHTTPTimeoutsFlagsBareServer(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

import "net/http"

func serve() *http.Server {
	return &http.Server{Addr: ":8080"}
}
`}
	wantFindings(t, diags(t, files, httpTimeoutsRule), 1)
}

func TestHTTPTimeoutsAcceptsReadHeaderTimeout(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

import (
	"net/http"
	"time"
)

func serve() *http.Server {
	return &http.Server{Addr: ":8080", ReadHeaderTimeout: 5 * time.Second}
}
`}
	wantFindings(t, diags(t, files, httpTimeoutsRule), 0)
}

func TestHTTPTimeoutsFlagsValueLiteralAndVarDecl(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

import "net/http"

var srv = http.Server{Addr: ":1"}

func twice() {
	s := http.Server{}
	_ = s
	p := &http.Server{Handler: nil}
	_ = p
}
`}
	wantFindings(t, diags(t, files, httpTimeoutsRule), 3)
}

func TestHTTPTimeoutsIgnoresOtherServerTypes(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

type Server struct {
	Addr string
}

func local() Server {
	return Server{Addr: ":9"}
}
`}
	wantFindings(t, diags(t, files, httpTimeoutsRule), 0)
}

func TestHTTPTimeoutsSeesThroughImportAlias(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

import web "net/http"

func serve() *web.Server {
	return &web.Server{Addr: ":8080"}
}
`}
	wantFindings(t, diags(t, files, httpTimeoutsRule), 1)
}

func TestHTTPTimeoutsSuppressible(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

import "net/http"

func serve() *http.Server {
	//lint:ignore httptimeouts test server is torn down by the harness
	return &http.Server{Addr: ":8080"}
}
`}
	wantFindings(t, diags(t, files, httpTimeoutsRule), 0)
}

func TestHTTPTimeoutsFlagsBareClient(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

import "net/http"

var shared = http.Client{}

func dial() *http.Client {
	return &http.Client{Transport: nil}
}
`}
	wantFindings(t, diags(t, files, httpTimeoutsRule), 2)
}

func TestHTTPTimeoutsAcceptsClientTimeout(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

import (
	"net/http"
	"time"
)

func dial() *http.Client {
	return &http.Client{Timeout: 30 * time.Second}
}
`}
	wantFindings(t, diags(t, files, httpTimeoutsRule), 0)
}

func TestHTTPTimeoutsClientSeesThroughImportAlias(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

import web "net/http"

func dial() *web.Client {
	return &web.Client{}
}
`}
	wantFindings(t, diags(t, files, httpTimeoutsRule), 1)
}

func TestHTTPTimeoutsIgnoresOtherClientTypes(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

type Client struct {
	Addr string
}

func local() Client {
	return Client{Addr: ":9"}
}
`}
	wantFindings(t, diags(t, files, httpTimeoutsRule), 0)
}

func TestHTTPTimeoutsClientSuppressible(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

import "net/http"

func dial() *http.Client {
	//lint:ignore httptimeouts requests are bounded per-call by contexts in this test harness
	return &http.Client{}
}
`}
	wantFindings(t, diags(t, files, httpTimeoutsRule), 0)
}

func TestHTTPTimeoutsChecksTestFiles(t *testing.T) {
	files := map[string]string{
		"a/a.go": "package a\n",
		"a/a_test.go": `package a

import "net/http"

func newSrv() *http.Server {
	return &http.Server{Addr: ":0"}
}
`}
	wantFindings(t, diags(t, files, httpTimeoutsRule), 1)
}

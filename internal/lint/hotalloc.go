package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc enforces the repository's hot-path memory discipline (see
// DESIGN.md): a function annotated with a `//lint:hot` directive in its
// doc comment is an inner-loop kernel whose body must not allocate.
// Flagged inside annotated functions:
//
//   - make(...) — slice/map/chan construction
//   - append(...) — growth may escape any preallocated capacity; hot
//     code index-assigns into buffers sized up front (cold grow helpers
//     live in separate, unannotated functions)
//   - map composite literals (map[...]...{...} or named map types)
//   - fmt.Sprintf — formats into a fresh string on every call
//
// Calls into other functions are not traversed (the rule is
// intra-procedural); annotate the callee too if it is part of the hot
// loop. Error paths may use fmt.Errorf — constructing an error already
// means the hot loop is over.
const hotAllocName = "hotalloc"

var hotAllocRule = Rule{
	Name:  hotAllocName,
	Doc:   "functions annotated //lint:hot must not make, append, build map literals or fmt.Sprintf",
	Check: checkHotAlloc,
}

func checkHotAlloc(pkg *Package) []Diagnostic {
	var out []Diagnostic
	pkg.eachFile(false, func(f *File) {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotAnnotated(fd) {
				continue
			}
			out = append(out, hotallocCheckBody(pkg, fd)...)
		}
	})
	return out
}

// isHotAnnotated reports whether the function's doc comment group
// carries a //lint:hot directive line.
func isHotAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "lint:hot" {
			return true
		}
	}
	return false
}

func hotallocCheckBody(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	flag := func(n ast.Node, format string, args ...any) {
		out = append(out, Diagnostic{
			Rule:    hotAllocName,
			Pos:     pkg.position(n),
			Message: fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			switch {
			case pkg.isBuiltin(node.Fun, "make"):
				flag(node, "make allocates inside hot function %s; preallocate in the enclosing context", fd.Name.Name)
			case pkg.isBuiltin(node.Fun, "append"):
				flag(node, "append may grow (allocate) inside hot function %s; index-assign into a preallocated buffer", fd.Name.Name)
			case pkg.isPkgDot(node.Fun, "fmt", "Sprintf"):
				flag(node, "fmt.Sprintf allocates a string inside hot function %s", fd.Name.Name)
			}
		case *ast.CompositeLit:
			if pkg.isMapLiteral(node) {
				flag(node, "map literal allocates inside hot function %s", fd.Name.Name)
			}
		}
		return true
	})
	return out
}

// isBuiltin reports whether e is a direct use of the named language
// builtin (shadowing identifiers are excluded when type info exists).
func (p *Package) isBuiltin(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if p.Info != nil {
		if obj := p.Info.Uses[id]; obj != nil {
			_, builtin := obj.(*types.Builtin)
			return builtin
		}
	}
	return true
}

// isMapLiteral reports whether cl constructs a map value, either
// through a syntactic map type or a named type whose underlying type is
// a map.
func (p *Package) isMapLiteral(cl *ast.CompositeLit) bool {
	if _, ok := cl.Type.(*ast.MapType); ok {
		return true
	}
	if p.Info != nil && cl.Type != nil {
		if tv, ok := p.Info.Types[cl.Type]; ok && tv.Type != nil {
			_, isMap := tv.Type.Underlying().(*types.Map)
			return isMap
		}
	}
	return false
}

package lint

import (
	"fmt"
	"go/ast"
	"strconv"
	"strings"
)

// noRandGlobalRule enforces the repository's core reproducibility
// invariant: every stochastic component draws from an injected,
// splittable *rng.Stream. It forbids importing math/rand, math/rand/v2
// or crypto/rand anywhere outside internal/rng itself, and it forbids
// seeding a stream from the wall clock (time.Now inside the arguments
// of rng.New / rng.NewSeq / any *.Seed call) — a time-derived seed makes
// a sample path unrepeatable by construction.
const noRandGlobalName = "norandglobal"

var noRandGlobalRule = Rule{
	Name:  noRandGlobalName,
	Doc:   "all randomness must flow through an injected *rng.Stream; no math/rand, crypto/rand or time-seeded streams",
	Check: checkNoRandGlobal,
}

// forbiddenRandImports are the randomness sources that bypass rng.Stream.
var forbiddenRandImports = map[string]string{
	"math/rand":    "unseedable global state; take a *rng.Stream instead",
	"math/rand/v2": "unseedable global state; take a *rng.Stream instead",
	"crypto/rand":  "non-reproducible entropy; take a *rng.Stream instead",
}

// checkNoRandGlobal is purely syntactic so it covers test files too — a
// test seeded from the clock is just as unrepeatable.
func checkNoRandGlobal(pkg *Package) []Diagnostic {
	if pkg.Path == "samurai/internal/rng" || strings.HasSuffix(pkg.Path, "/internal/rng") {
		return nil
	}
	var out []Diagnostic
	pkg.eachFile(false, func(f *File) {
		for _, imp := range f.AST.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := forbiddenRandImports[path]; bad {
				out = append(out, Diagnostic{
					Rule:    noRandGlobalName,
					Pos:     pkg.position(imp),
					Message: fmt.Sprintf("import of %s is forbidden outside internal/rng: %s", path, why),
				})
			}
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSeedingCall(call) {
				return true
			}
			for _, arg := range call.Args {
				if tn := findTimeNow(pkg, arg); tn != nil {
					out = append(out, Diagnostic{
						Rule:    noRandGlobalName,
						Pos:     pkg.position(tn),
						Message: "time-seeded randomness defeats reproducibility; derive the seed from config or Stream.Split",
					})
				}
			}
			return true
		})
	})
	return out
}

// isSeedingCall reports whether the call constructs or seeds a random
// stream: rng.New, rng.NewSeq, or any method/function named Seed.
func isSeedingCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		switch fn.Sel.Name {
		case "Seed":
			return true
		case "New", "NewSeq":
			if id, ok := fn.X.(*ast.Ident); ok && id.Name == "rng" {
				return true
			}
		}
	case *ast.Ident:
		return fn.Name == "Seed"
	}
	return false
}

// findTimeNow returns the first time.Now call nested inside e, nil if none.
func findTimeNow(pkg *Package, e ast.Expr) ast.Node {
	var found ast.Node
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && pkg.isPkgDot(call.Fun, "time", "Now") {
			found = call
			return false
		}
		return true
	})
	return found
}

package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// sharedFset positions every file the loader ever parses. Sharing one
// FileSet with the stdlib source importer keeps all positions coherent
// and lets the importer's package cache survive across LoadModule calls
// (the test suite loads many small fixture modules).
var (
	sharedFset     = token.NewFileSet()
	stdImporterMu  sync.Mutex
	stdImporterVal types.Importer
)

func stdImporter() types.Importer {
	stdImporterMu.Lock()
	defer stdImporterMu.Unlock()
	if stdImporterVal == nil {
		stdImporterVal = importer.ForCompiler(sharedFset, "source", nil)
	}
	return stdImporterVal
}

// moduleImporter resolves module-local import paths from the packages
// already type-checked this load, and everything else from the stdlib
// source importer.
type moduleImporter struct {
	modulePath string
	local      map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	if path == m.modulePath || strings.HasPrefix(path, m.modulePath+"/") {
		return nil, fmt.Errorf("lint: module package %q not yet type-checked (import cycle?)", path)
	}
	stdImporterMu.Lock()
	defer stdImporterMu.Unlock()
	return stdImporterVal.Import(path)
}

// LoadModule parses and type-checks every package of the Go module
// rooted at dir (the directory containing go.mod). Test files are
// parsed and attached to their package but excluded from type-checking;
// rules that need type information skip them.
func LoadModule(dir string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	stdImporter() // ensure the shared importer exists

	dirs, err := packageDirs(dir)
	if err != nil {
		return nil, err
	}

	fset := sharedFset
	pkgs := make([]*Package, 0, len(dirs))
	for _, d := range dirs {
		pkg, err := parseDir(fset, dir, modPath, d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}

	ordered, err := topoSort(pkgs, modPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{modulePath: modPath, local: map[string]*types.Package{}}
	for _, pkg := range ordered {
		if err := typeCheck(pkg, imp); err != nil {
			return nil, err
		}
		imp.local[pkg.Path] = pkg.Types
	}
	return ordered, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			return p, nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs walks the module and returns every directory holding .go
// files, skipping testdata, vendor, hidden and underscore-prefixed
// directories (the same exclusions the go tool applies).
func packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				out = append(out, path)
				break
			}
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// parseDir parses one directory into a Package (nil if it has no
// buildable non-test files — e.g. a directory of only test helpers).
func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}

	pkg := &Package{Path: importPath, Dir: dir, Fset: fset}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		full := filepath.Join(dir, name)
		include, err := buildIncluded(full)
		if err != nil {
			return nil, err
		}
		if !include {
			continue // excluded by a //go:build constraint on this platform
		}
		af, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		ignores, sups := collectIgnores(fset, af)
		f := &File{
			Name:         full,
			AST:          af,
			Test:         strings.HasSuffix(name, "_test.go"),
			ignores:      ignores,
			suppressions: sups,
		}
		pkg.Files = append(pkg.Files, f)
		if !f.Test && pkg.Name == "" {
			pkg.Name = af.Name.Name
		}
	}
	if pkg.Name == "" {
		return nil, nil
	}
	// Non-test files first so type-checking sees a stable order.
	sort.SliceStable(pkg.Files, func(i, j int) bool {
		if pkg.Files[i].Test != pkg.Files[j].Test {
			return !pkg.Files[i].Test
		}
		return pkg.Files[i].Name < pkg.Files[j].Name
	})
	return pkg, nil
}

// buildIncluded evaluates the file's build constraints (//go:build and
// legacy // +build lines above the package clause) for the current
// platform. Without this a file like cmd/tool/gen.go carrying
// `//go:build ignore` would be parsed into the package, fail
// type-checking, and silently knock the whole module out of the lint
// gate. Tags recognised as true: GOOS, GOARCH, "gc", "cgo" and every
// go1.N version tag — mirroring what `go build` enables by default.
func buildIncluded(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("lint: reading %s: %w", path, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "" || strings.HasPrefix(trimmed, "//"):
			// Header comment or blank line: may hold a constraint.
		default:
			return true, nil // reached the package clause: no constraint found
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			continue // ordinary comment line
		}
		if !expr.Eval(defaultBuildTag) {
			return false, nil
		}
	}
	return true, nil
}

// defaultBuildTag reports whether a build tag is satisfied on the
// current platform.
func defaultBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "cgo":
		return true
	}
	if v, ok := strings.CutPrefix(tag, "go1."); ok {
		if _, err := strconv.Atoi(v); err == nil {
			return true // assume a current toolchain
		}
	}
	return false
}

// topoSort orders packages so every module-local import precedes its
// importers (required for type-checking with moduleImporter).
func topoSort(pkgs []*Package, modPath string) ([]*Package, error) {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	var ordered []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p.Path)
		case 2:
			return nil
		}
		state[p.Path] = 1
		for _, dep := range localImports(p, modPath) {
			if q, ok := byPath[dep]; ok {
				if err := visit(q); err != nil {
					return err
				}
			}
		}
		state[p.Path] = 2
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// localImports lists the module-local imports of the package's non-test
// files, sorted and deduplicated.
func localImports(p *Package, modPath string) []string {
	seen := map[string]bool{}
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		for _, imp := range f.AST.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == modPath || strings.HasPrefix(path, modPath+"/") {
				seen[path] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// typeCheck type-checks the package's non-test compilation unit and
// records the result on the package.
func typeCheck(pkg *Package, imp types.Importer) error {
	var files []*ast.File
	for _, f := range pkg.Files {
		if !f.Test {
			files = append(files, f.AST)
		}
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := conf.Check(pkg.Path, pkg.Fset, files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"math"
	"strconv"
	"strings"

	"samurai/internal/units"
)

// MagicConst forbids inlining physical constants as numeric literals.
// A truncated Boltzmann constant or a hand-typed kT/q is exactly the
// kind of silent numerical divergence that breaks cross-package
// agreement between the trap kernels and the validation experiments —
// all such values must come from internal/units.
//
// The registry values are *referenced from* internal/units, so the rule
// can never drift from the canonical definitions. Matching uses a
// relative tolerance wide enough to catch common truncations
// (1.38e-23, 0.0259) but far too tight to hit ordinary engineering
// literals.
const magicConstName = "magicconst"

var magicConstRule = Rule{
	Name:  magicConstName,
	Doc:   "physical-constant literals must come from internal/units, not be inlined",
	Check: checkMagicConst,
}

// physicalConstant is one registry entry.
type physicalConstant struct {
	value   float64
	replace string // what to write instead
}

// magicRegistry lists the recognised physical constants. Values are
// taken from internal/units so the registry is correct by construction.
var magicRegistry = []physicalConstant{
	{units.BoltzmannJPerK, "units.BoltzmannJPerK"},
	{units.ElectronCharge, "units.ElectronCharge (or units.ElectronVoltJ)"},
	{units.BoltzmannJPerK / units.ElectronCharge, "units.BoltzmannJPerK/units.ElectronCharge (k in eV/K)"},
	{units.ThermalVoltage(units.RoomTemperature), "units.ThermalVoltage(units.RoomTemperature)"},
	{units.VacuumPermittivity, "units.VacuumPermittivity"},
	{units.SiO2Permittivity, "units.SiO2Permittivity"},
}

// magicRelTol is the relative tolerance for matching a literal against
// the registry; 2e-3 catches 3-significant-figure truncations.
const magicRelTol = 2e-3

// checkMagicConst is purely syntactic, so it covers test files too;
// internal/units itself (where the canonical literals live) is exempt,
// as is this package's registry.
func checkMagicConst(pkg *Package) []Diagnostic {
	if strings.HasSuffix(pkg.Path, "internal/units") || strings.HasSuffix(pkg.Path, "internal/lint") {
		return nil
	}
	var out []Diagnostic
	pkg.eachFile(false, func(f *File) {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.FLOAT {
				return true
			}
			v, err := strconv.ParseFloat(lit.Value, 64)
			if err != nil {
				return true
			}
			for _, pc := range magicRegistry {
				if relClose(v, pc.value, magicRelTol) {
					out = append(out, Diagnostic{
						Rule:    magicConstName,
						Pos:     pkg.position(lit),
						Message: fmt.Sprintf("inlined physical constant %s; use %s", lit.Value, pc.replace),
					})
					break
				}
			}
			return true
		})
	})
	return out
}

// relClose reports |a-b| <= tol*|b| (b is the registry reference).
func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Abs(b)
}

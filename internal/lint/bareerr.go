package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// BareErr forbids silently discarding error returns in non-test files:
//
//   - a statement that calls an error-returning function and drops the
//     result entirely (including `defer f.Close()` and `go f()`),
//   - a blank assignment `_ = f()` / `x, _ := f()` whose blanked slot
//     is the error, and
//   - panic(err) — escalating an error value to a panic instead of
//     returning it (the internal/waveform pattern this rule was built
//     to catch).
//
// Printing through the fmt.Print/Fprint families is exempt (the fmt
// convention; buffered writers surface failures at Flush/Close, which
// ARE checked), as are writes to strings.Builder and bytes.Buffer,
// which are documented never to fail.
const bareErrName = "bareerr"

var bareErrRule = Rule{
	Name:  bareErrName,
	Doc:   "no discarded error returns (dropped calls, `_ =` drops, panic(err)) in non-test files",
	Check: checkBareErr,
}

// errorIface is the built-in error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func checkBareErr(pkg *Package) []Diagnostic {
	if pkg.Info == nil {
		return nil
	}
	var out []Diagnostic
	flag := func(n ast.Node, msg string) {
		out = append(out, Diagnostic{Rule: bareErrName, Pos: pkg.position(n), Message: msg})
	}
	pkg.eachFile(true, func(f *File) {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					bareerrCheckDroppedCall(pkg, call, "", flag)
				}
			case *ast.DeferStmt:
				bareerrCheckDroppedCall(pkg, st.Call, "deferred ", flag)
			case *ast.GoStmt:
				bareerrCheckDroppedCall(pkg, st.Call, "spawned ", flag)
			case *ast.AssignStmt:
				bareerrCheckBlankAssign(pkg, st, flag)
			case *ast.CallExpr:
				if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "panic" && len(st.Args) == 1 {
					if t := pkg.Info.TypeOf(st.Args[0]); t != nil && isErrorType(t) {
						flag(st, "error escalated to panic; return the error instead")
					}
				}
			}
			return true
		})
	})
	return out
}

// checkDroppedCall flags a statement-position call whose error result
// is discarded.
func bareerrCheckDroppedCall(pkg *Package, call *ast.CallExpr, kind string, flag func(ast.Node, string)) {
	if !returnsError(pkg, call) || exemptCallee(pkg, call) {
		return
	}
	flag(call, fmt.Sprintf("%scall drops its error result; handle or assign it", kind))
}

// checkBlankAssign flags blank-identifier assignments that drop an
// error-typed value.
func bareerrCheckBlankAssign(pkg *Package, st *ast.AssignStmt, flag func(ast.Node, string)) {
	// Tuple form: a, _ := f()
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok || exemptCallee(pkg, call) {
			return
		}
		tuple, ok := pkg.Info.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range st.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				flag(lhs, "error result discarded with _; handle or return it")
			}
		}
		return
	}
	// Parallel form: _ = expr (per position).
	for i, lhs := range st.Lhs {
		if !isBlank(lhs) || i >= len(st.Rhs) {
			continue
		}
		if call, ok := st.Rhs[i].(*ast.CallExpr); ok && exemptCallee(pkg, call) {
			continue
		}
		if t := pkg.Info.TypeOf(st.Rhs[i]); t != nil && isErrorType(t) {
			flag(lhs, "error value discarded with _; handle or return it")
		}
	}
}

// returnsError reports whether the call yields an error, directly or as
// a tuple component.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	t := pkg.Info.TypeOf(call)
	switch tt := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < tt.Len(); i++ {
			if isErrorType(tt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tt)
	}
}

// isErrorType reports whether t is the error interface or implements it
// as a declared error type.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Interface); ok && b.NumMethods() == 1 && b.Method(0).Name() == "Error" {
		return true
	}
	return types.Implements(t, errorIface)
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// exemptFuncs never have their dropped errors flagged.
var exemptFuncs = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

// exemptRecvTypes are writer types documented never to return an error.
var exemptRecvTypes = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

// exemptCallee reports whether the call target is on the exemption list.
func exemptCallee(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if exemptFuncs[fn.FullName()] {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return exemptRecvTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

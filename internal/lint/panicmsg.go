package lint

import (
	"fmt"
	"go/ast"
	"strconv"
	"strings"
)

// PanicMsg enforces the repository's panic-message convention in
// internal packages: a panic must carry a message identifying the
// package, in the form "pkg: message" — matching the existing "num:",
// "markov:" and "rng:" panics. Accepted argument shapes:
//
//	panic("num: Factor requires a square matrix")
//	panic(fmt.Sprintf("markov: transition at t=%g before last event %g", t, last))
//	panic("device: unknown node " + name)
//
// panic(err) and other non-literal payloads are rejected: they lose the
// package attribution and usually mean an error that should have been
// returned instead (see the bareerr rule).
const panicMsgName = "panicmsg"

var panicMsgRule = Rule{
	Name:  panicMsgName,
	Doc:   `panics in internal packages must carry a "pkg: " prefixed message`,
	Check: checkPanicMsg,
}

// The check applies to non-test files of internal
// packages; tests may panic however they like.
func checkPanicMsg(pkg *Package) []Diagnostic {
	if !strings.Contains(pkg.Path, "/internal/") {
		return nil
	}
	prefix := pkg.Name + ": "
	var out []Diagnostic
	pkg.eachFile(true, func(f *File) {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "panic" {
				return true
			}
			if !panicArgHasPrefix(call.Args[0], prefix) {
				out = append(out, Diagnostic{
					Rule:    panicMsgName,
					Pos:     pkg.position(call),
					Message: fmt.Sprintf("panic message must be a string starting with %q (got %s)", prefix, describeExpr(call.Args[0])),
				})
			}
			return true
		})
	})
	return out
}

// panicArgHasPrefix reports whether the panic argument is a string
// literal, Sprintf/Errorf format, or literal-headed concatenation whose
// leading text carries the required prefix.
func panicArgHasPrefix(e ast.Expr, prefix string) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		s, err := strconv.Unquote(v.Value)
		return err == nil && strings.HasPrefix(s, prefix)
	case *ast.BinaryExpr:
		// "pkg: something " + detail — the leftmost operand decides.
		return panicArgHasPrefix(v.X, prefix)
	case *ast.CallExpr:
		// fmt.Sprintf / fmt.Errorf with a literal format string.
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" &&
				(sel.Sel.Name == "Sprintf" || sel.Sel.Name == "Errorf") && len(v.Args) > 0 {
				return panicArgHasPrefix(v.Args[0], prefix)
			}
		}
	}
	return false
}

// describeExpr names the offending argument shape for the diagnostic.
func describeExpr(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return fmt.Sprintf("identifier %q", v.Name)
	case *ast.BasicLit:
		return "literal without the prefix"
	case *ast.CallExpr:
		return "call expression"
	default:
		return "non-literal expression"
	}
}

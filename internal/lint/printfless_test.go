package lint

import "testing"

func TestPrintfLessFlagsConsoleOutput(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

import (
	"fmt"
	"log"
)

// Bad1 prints straight to stdout.
func Bad1(n int) {
	fmt.Println("solved", n)
}

// Bad2 uses a format print.
func Bad2(n int) {
	fmt.Printf("n=%d\n", n)
}

// Bad3 logs through the global logger.
func Bad3(err error) {
	log.Printf("warning: %v", err)
}

// Bad4 even log.New counts: process-global console plumbing.
func Bad4() {
	log.Fatal("boom")
}
`}
	wantFindings(t, diags(t, files, printfLessRule), 4)
}

func TestPrintfLessAcceptsExplicitWriters(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

import (
	"fmt"
	"io"
	"strings"
)

// Good1 writes to an explicit writer.
func Good1(w io.Writer, n int) {
	fmt.Fprintf(w, "n=%d\n", n)
}

// Good2 formats into a string.
func Good2(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Good3 builds output without printing.
func Good3(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		fmt.Fprint(&b, p)
	}
	return b.String()
}
`}
	wantFindings(t, diags(t, files, printfLessRule), 0)
}

func TestPrintfLessOnlyAppliesToInternalPackages(t *testing.T) {
	files := map[string]string{"tool/tool.go": `package tool

import (
	"fmt"
	"log"
)

// Loose prints freely outside internal/.
func Loose(n int) {
	fmt.Println(n)
	log.Printf("n=%d", n)
}
`}
	wantFindings(t, diags(t, files, printfLessRule), 0)
}

func TestPrintfLessSkipsTestFiles(t *testing.T) {
	files := map[string]string{
		"internal/kern/kern.go": `package kern
`,
		"internal/kern/kern_test.go": `package kern

import "fmt"

// Debug prints freely inside a test helper.
func Debug(n int) {
	fmt.Println("n =", n)
}
`}
	wantFindings(t, diags(t, files, printfLessRule), 0)
}

func TestPrintfLessIgnoresShadowingIdentifiers(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

// logger mimics the log package's shape.
type logger struct{}

func (logger) Printf(format string, args ...any) {}

// Fine calls a method on a local value named log — not the package.
func Fine() {
	var log logger
	log.Printf("n=%d", 1)
}
`}
	wantFindings(t, diags(t, files, printfLessRule), 0)
}

func TestPrintfLessSuppressible(t *testing.T) {
	files := map[string]string{"internal/kern/kern.go": `package kern

import "fmt"

// Tolerated carries a justified suppression.
func Tolerated(n int) {
	//lint:ignore printfless debugging aid kept for the bring-up harness
	fmt.Println("n =", n)
}
`}
	wantFindings(t, diags(t, files, printfLessRule), 0)
}

package lint

import (
	"go/ast"
	"go/types"
)

// HTTPTimeouts requires every net/http.Server composite literal to set
// ReadHeaderTimeout, and every net/http.Client composite literal to set
// Timeout.
//
// A server without ReadHeaderTimeout never times out a client that
// sends headers one byte at a time (Slowloris), so a handful of idle
// sockets can pin the daemon's listener forever — fatal for samuraid,
// which must always stay responsive to its drain signal. The other
// server timeouts (ReadTimeout, WriteTimeout) are workload-dependent
// and deliberately not mandated: long-lived NDJSON/SSE progress
// streams are legitimate.
//
// A client without Timeout hangs forever on a peer that accepts the
// connection and then goes silent — for a fabric worker, one wedged
// coordinator socket would stall the lease loop past any stealing
// deadline, turning a recoverable network blip into a lost worker.
// Every outbound path must bound its requests (per-request contexts
// are complementary, not a substitute: the zero-value client has no
// backstop at all).
//
// Literals that intentionally run without the timeout can suppress the
// finding with `//lint:ignore httptimeouts reason`.
const httpTimeoutsName = "httptimeouts"

var httpTimeoutsRule = Rule{
	Name:  httpTimeoutsName,
	Doc:   "http.Server literals must set ReadHeaderTimeout (Slowloris hardening); http.Client literals must set Timeout (unbounded hang hardening)",
	Check: checkHTTPTimeouts,
}

// httptimeoutsTargets maps the net/http type to the field its literals
// must set and the message emitted when they don't.
var httptimeoutsTargets = map[string]struct {
	field   string
	message string
}{
	"Server": {
		field:   "ReadHeaderTimeout",
		message: "http.Server literal without ReadHeaderTimeout; set one (Slowloris hardening)",
	},
	"Client": {
		field:   "Timeout",
		message: "http.Client literal without Timeout; set one (a silent peer hangs the request forever)",
	},
}

func checkHTTPTimeouts(pkg *Package) []Diagnostic {
	var out []Diagnostic
	pkg.eachFile(false, func(f *File) {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || lit.Type == nil {
				return true
			}
			name, ok := httptimeoutsHTTPType(pkg, lit.Type)
			if !ok {
				return true
			}
			target, ok := httptimeoutsTargets[name]
			if !ok {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == target.field {
					return true
				}
			}
			out = append(out, Diagnostic{
				Rule:    httpTimeoutsName,
				Pos:     pkg.position(lit),
				Message: target.message,
			})
			return true
		})
	})
	return out
}

// httptimeoutsHTTPType reports the net/http type name the composite
// literal's type expression denotes ("Server", "Client", …), if any.
// Type information is authoritative when available (catching aliases
// and dot-imports); untyped files fall back to the syntactic
// `http.<Name>` selector.
func httptimeoutsHTTPType(pkg *Package, typ ast.Expr) (string, bool) {
	if pkg.Info != nil {
		if t := pkg.Info.TypeOf(typ); t != nil {
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "net/http" {
				return named.Obj().Name(), true
			}
			// Typed but not a net/http named type.
			return "", false
		}
	}
	for name := range httptimeoutsTargets {
		if pkg.isPkgDot(typ, "net/http", name) {
			return name, true
		}
	}
	return "", false
}

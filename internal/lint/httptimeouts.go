package lint

import (
	"go/ast"
	"go/types"
)

// HTTPTimeouts requires every net/http.Server composite literal to set
// ReadHeaderTimeout. A server without it never times out a client that
// sends headers one byte at a time (Slowloris), so a handful of idle
// sockets can pin the daemon's listener forever — fatal for samuraid,
// which must always stay responsive to its drain signal. The other
// timeouts (ReadTimeout, WriteTimeout) are workload-dependent and
// deliberately not mandated: long-lived NDJSON/SSE progress streams
// are legitimate.
//
// Servers that intentionally run without the timeout can suppress the
// finding with `//lint:ignore httptimeouts reason`.
const httpTimeoutsName = "httptimeouts"

var httpTimeoutsRule = Rule{
	Name:  httpTimeoutsName,
	Doc:   "http.Server composite literals must set ReadHeaderTimeout (Slowloris hardening)",
	Check: checkHTTPTimeouts,
}

func checkHTTPTimeouts(pkg *Package) []Diagnostic {
	var out []Diagnostic
	pkg.eachFile(false, func(f *File) {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || lit.Type == nil {
				return true
			}
			if !httptimeoutsIsHTTPServer(pkg, lit.Type) {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "ReadHeaderTimeout" {
					return true
				}
			}
			out = append(out, Diagnostic{
				Rule:    httpTimeoutsName,
				Pos:     pkg.position(lit),
				Message: "http.Server literal without ReadHeaderTimeout; set one (Slowloris hardening)",
			})
			return true
		})
	})
	return out
}

// isHTTPServer reports whether the composite literal's type expression
// denotes net/http.Server. Type information is authoritative when
// available (catching aliases and dot-imports); untyped files fall back
// to the syntactic `http.Server` selector.
func httptimeoutsIsHTTPServer(pkg *Package, typ ast.Expr) bool {
	if pkg.Info != nil {
		if t := pkg.Info.TypeOf(typ); t != nil {
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Server"
			}
			// Typed but not net/http.Server (or not a named type at all).
			return false
		}
	}
	return pkg.isPkgDot(typ, "net/http", "Server")
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd requires that every span created via the obs/trace layer —
// obs.StartSpan, (*obs.Span).Child, trace.Start, trace.StartInst, or
// any other call returning a span — is Ended on all paths of the
// creating function. A span that is never Ended silently loses its
// histogram observation, its trace record and its flight-recorder note,
// so the exported trace under-reports exactly the code path being
// debugged.
//
// Accepted shapes:
//
//   - defer sp.End() (including inside a deferred closure), which
//     covers every exit path by construction;
//   - explicit sp.End() calls, provided no return statement sits
//     between the creation and the last End — an early return there
//     would leak the span.
//
// Spans that escape the creating function (returned, stored, passed to
// another function) are skipped: responsibility for Ending them moved
// with the value. Discarding a span result (`_` or a bare call
// statement) is always flagged.
const spanendName = "spanend"

var spanEndRule = Rule{
	Name:  spanendName,
	Doc:   "spans from obs.StartSpan/Span.Child/trace.Start must be Ended on all paths (defer or explicit)",
	Check: checkSpanEnd,
}

func checkSpanEnd(pkg *Package) []Diagnostic {
	var out []Diagnostic
	pkg.eachFile(false, func(f *File) {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					spanendCheckBody(pkg, fn.Body, &out)
				}
			case *ast.FuncLit:
				spanendCheckBody(pkg, fn.Body, &out)
			}
			return true
		})
	})
	return out
}

// spanendTracked is one span variable created in the function under
// analysis.
type spanendTracked struct {
	obj    types.Object // identity in typed files; nil in test files
	name   string       // identity fallback for untyped files
	defIdent *ast.Ident // the defining occurrence (skipped as a use)
	pos    token.Pos    // creation position
}

// spanendCheckBody analyses one function body. Span creations are
// matched at this body's nesting level only (nested func literals get
// their own call), but End/escape uses are searched through the whole
// subtree so `defer func() { sp.End() }()` counts.
func spanendCheckBody(pkg *Package, body *ast.BlockStmt, out *[]Diagnostic) {
	var tracked []spanendTracked

	// Pass 1: creations and discards at this nesting level.
	spanendWalkLevel(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if _, ok := spanendSpanIndex(pkg, call); ok {
					*out = append(*out, Diagnostic{
						Rule:    spanendName,
						Pos:     pkg.position(call),
						Message: "span result discarded; assign it and End it on every path",
					})
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			idx, ok := spanendSpanIndex(pkg, call)
			if !ok || idx >= len(st.Lhs) {
				return
			}
			id, ok := st.Lhs[idx].(*ast.Ident)
			if !ok {
				// Stored straight into a field or element: escapes.
				return
			}
			if id.Name == "_" {
				*out = append(*out, Diagnostic{
					Rule:    spanendName,
					Pos:     pkg.position(call),
					Message: "span result discarded as _; assign it and End it on every path",
				})
				return
			}
			t := spanendTracked{name: id.Name, defIdent: id, pos: call.Pos()}
			if pkg.Info != nil {
				if obj := pkg.Info.Defs[id]; obj != nil {
					t.obj = obj
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					t.obj = obj // plain `=` reassignment of an existing var
				}
			}
			tracked = append(tracked, t)
		}
	})
	if len(tracked) == 0 {
		return
	}

	// Returns at this nesting level, for the explicit-End leak check.
	var returns []token.Pos
	spanendWalkLevel(body, func(n ast.Node) {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r.Pos())
		}
	})

	// Pass 2: classify every use of each tracked span in the full
	// subtree.
	for _, tr := range tracked {
		var (
			deferredEnd bool
			lastEnd     token.Pos
			ends        int
			escaped     bool
		)
		var stack []ast.Node
		ast.Inspect(body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			id, ok := n.(*ast.Ident)
			if !ok || id == tr.defIdent || !spanendSameVar(pkg, id, tr) {
				return true
			}
			switch spanendClassifyUse(stack) {
			case useEnd:
				ends++
				if id.Pos() > lastEnd {
					lastEnd = id.Pos()
				}
				if spanendInsideDefer(stack) {
					deferredEnd = true
				}
			case useNeutral:
				// Reading Name/Path/SpanID: neither ends nor escapes.
			case useEscape:
				escaped = true
			}
			return true
		})

		switch {
		case escaped || deferredEnd:
			// Escaped spans are someone else's to End; deferred End
			// covers every path.
		case ends == 0:
			*out = append(*out, Diagnostic{
				Rule:    spanendName,
				Pos:     pkg.Fset.Position(tr.pos),
				Message: "span " + tr.name + " is never Ended; defer " + tr.name + ".End() after creating it",
			})
		default:
			for _, r := range returns {
				if r > tr.pos && r < lastEnd {
					*out = append(*out, Diagnostic{
						Rule:    spanendName,
						Pos:     pkg.Fset.Position(tr.pos),
						Message: fmt.Sprintf("span %s leaks on the return at line %d; End it before returning or use defer",
							tr.name, pkg.Fset.Position(r).Line),
					})
					break
				}
			}
		}
	}
}

// spanendWalkLevel visits the nodes of body without descending into
// nested function literals.
func spanendWalkLevel(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

type spanendUseKind int

const (
	useEscape spanendUseKind = iota
	useEnd
	useNeutral
)

// spanendClassifyUse inspects the ancestor chain of a tracked ident
// (stack top) and decides what the use does with the span.
func spanendClassifyUse(stack []ast.Node) spanendUseKind {
	if len(stack) < 3 {
		return useEscape
	}
	sel, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || sel.X != stack[len(stack)-1] {
		return useEscape
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	if !ok || call.Fun != sel {
		// Method value (f := sp.End) or field access: the span can be
		// Ended anywhere from here — treat as escaped.
		return useEscape
	}
	if sel.Sel.Name == "End" {
		return useEnd
	}
	// Any other method call (Name, Path, SpanID, Child) just reads the
	// span. Child results are tracked separately at their own
	// assignment.
	return useNeutral
}

// spanendInsideDefer reports whether the current node (stack top) is
// lexically inside a defer statement — a direct `defer sp.End()` or a
// deferred closure body.
func spanendInsideDefer(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// spanendSameVar reports whether id refers to the tracked span
// variable: object identity when type information covers the file, name
// match otherwise (untyped test files).
func spanendSameVar(pkg *Package, id *ast.Ident, tr spanendTracked) bool {
	if tr.obj != nil && pkg.Info != nil {
		if use := pkg.Info.Uses[id]; use != nil {
			return use == tr.obj
		}
		if def := pkg.Info.Defs[id]; def != nil {
			return def == tr.obj
		}
		return false
	}
	return id.Name == tr.name
}

// spanendSpanIndex reports whether call creates a span and at which
// result index the span sits. With type information any call whose
// results include exactly one obs or trace span pointer matches; in
// untyped (test) files only the qualified creation calls are
// recognised, so unqualified in-package helpers never false-positive.
func spanendSpanIndex(pkg *Package, call *ast.CallExpr) (int, bool) {
	if pkg.Info != nil {
		if t := pkg.Info.TypeOf(call); t != nil {
			switch tt := t.(type) {
			case *types.Tuple:
				idx, found := -1, 0
				for i := 0; i < tt.Len(); i++ {
					if spanendIsSpanPtr(tt.At(i).Type()) {
						idx, found = i, found+1
					}
				}
				return idx, found == 1
			default:
				if spanendIsSpanPtr(tt) {
					return 0, true
				}
				return -1, false
			}
		}
	}
	switch {
	case pkg.isPkgDot(call.Fun, "samurai/internal/obs", "StartSpan"):
		return 0, true
	case pkg.isPkgDot(call.Fun, "samurai/internal/obs/trace", "Start"),
		pkg.isPkgDot(call.Fun, "samurai/internal/obs/trace", "StartInst"):
		return 1, true
	}
	return -1, false
}

// spanendIsSpanPtr reports whether t is *obs.Span or *trace.Span.
func spanendIsSpanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Name() != "Span" {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "samurai/internal/obs", "samurai/internal/obs/trace":
		return true
	}
	return false
}

package lint

import "testing"

func TestFloatEqFlagsEqualityAndInequality(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

// Same compares exactly (the anti-pattern).
func Same(x, y float64) bool { return x == y }

// Diff compares exactly with != on float32.
func Diff(x, y float32) bool { return x != y }
`}
	wantFindings(t, diags(t, files, floatEqRule), 2)
}

func TestFloatEqAllowsZeroSentinels(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

// Unset reports the zero-value sentinel.
func Unset(x float64) bool { return x == 0 }

// Sign reports an exact negative-zero-safe sign test.
func Sign(x float64) bool { return 0.0 != x }
`}
	wantFindings(t, diags(t, files, floatEqRule), 0)
}

func TestFloatEqIgnoresNonFloatComparisons(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

// EqInt compares integers, which is exact.
func EqInt(x, y int) bool { return x == y }

// EqStr compares strings.
func EqStr(x, y string) bool { return x == y }
`}
	wantFindings(t, diags(t, files, floatEqRule), 0)
}

func TestFloatEqExemptsNumAndUnits(t *testing.T) {
	files := map[string]string{
		"internal/num/num.go": `package num

// Approx is a tolerance kernel that legitimately compares exactly.
func Approx(a, b float64) bool { return a == b }
`,
		"internal/units/units.go": `package units

// Eq is a tolerance helper that legitimately compares exactly.
func Eq(a, b float64) bool { return a == b }
`}
	wantFindings(t, diags(t, files, floatEqRule), 0)
}

func TestFloatEqSkipsTestFiles(t *testing.T) {
	files := map[string]string{
		"a/a.go": `package a
`,
		"a/a_test.go": `package a

// PinsPath pins an exact reproducible sample value.
func PinsPath(x, y float64) bool { return x == y }
`}
	wantFindings(t, diags(t, files, floatEqRule), 0)
}

package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// PrintfLess keeps internal packages free of ad-hoc console output:
// telemetry must flow through internal/obs (structured events, metrics)
// so that library code never writes to stdout/stderr behind the
// caller's back. Flagged in non-test files of internal packages:
//
//   - fmt.Print / fmt.Printf / fmt.Println (implicit stdout)
//   - any call through the standard "log" package (implicit stderr and
//     process-global state)
//
// fmt.Fprint*/Sprint* are fine — they target an explicit writer or a
// string. Binaries under cmd/ and examples/ may print freely.
const printfLessName = "printfless"

var printfLessRule = Rule{
	Name:  printfLessName,
	Doc:   "no fmt.Print*/log.* in internal packages; telemetry goes through internal/obs",
	Check: checkPrintfLess,
}

// fmtStdoutFuncs are the fmt functions that write to process stdout.
var fmtStdoutFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

// The check applies to non-test files of internal
// packages; tests may print freely.
func checkPrintfLess(pkg *Package) []Diagnostic {
	if !strings.Contains(pkg.Path, "/internal/") {
		return nil
	}
	var out []Diagnostic
	pkg.eachFile(true, func(f *File) {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case fmtStdoutFuncs[sel.Sel.Name] && pkg.isPkgDot(sel, "fmt", sel.Sel.Name):
				out = append(out, Diagnostic{
					Rule:    printfLessName,
					Pos:     pkg.position(call),
					Message: fmt.Sprintf("fmt.%s writes to stdout from an internal package; emit through internal/obs or take an io.Writer", sel.Sel.Name),
				})
			case pkg.selectsPackage(sel, "log"):
				out = append(out, Diagnostic{
					Rule:    printfLessName,
					Pos:     pkg.position(call),
					Message: fmt.Sprintf("log.%s called from an internal package; emit through internal/obs instead", sel.Sel.Name),
				})
			}
			return true
		})
	})
	return out
}

// selectsPackage reports whether sel selects any member of the import
// with the given path (matched by path so aliases work; falls back to
// the default package name in untyped files).
func (p *Package) selectsPackage(sel *ast.SelectorExpr, path string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if p.Info != nil {
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Path() == path
		}
		if p.Info.Uses[id] != nil {
			return false // a variable or type named like the package
		}
	}
	want := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		want = path[i+1:]
	}
	return id.Name == want
}

package lint

import "testing"

func TestTestSeedFlagsTimeSeededTest(t *testing.T) {
	files := map[string]string{
		"internal/rng/rng.go": rngStub,
		"sim/sim.go":          "package sim\n",
		"sim/sim_test.go": `package sim

import (
	"testing"
	"time"

	"samurai/internal/rng"
)

func TestNoise(t *testing.T) {
	r := rng.New(uint64(time.Now().UnixNano()))
	_ = r
}
`}
	got := diags(t, files, testSeedRule)
	wantFindings(t, got, 1)
}

func TestTestSeedFlagsPidAndEnvSeeds(t *testing.T) {
	files := map[string]string{
		"internal/rng/rng.go": rngStub,
		"sim/sim.go":          "package sim\n",
		"sim/sim_test.go": `package sim

import (
	"os"
	"testing"

	"samurai/internal/rng"
)

func TestPid(t *testing.T) {
	r := rng.New(uint64(os.Getpid()))
	r.Seed(uint64(len(os.Getenv("SEED"))))
}
`}
	wantFindings(t, diags(t, files, testSeedRule), 2)
}

func TestTestSeedFlagsGlobalRand(t *testing.T) {
	files := map[string]string{
		"sim/sim.go": "package sim\n",
		"sim/sim_test.go": `package sim

import (
	"math/rand"
	"testing"
)

func TestNoise(t *testing.T) {
	if rand.Float64() < 0 {
		t.Fatal("impossible")
	}
}
`}
	wantFindings(t, diags(t, files, testSeedRule), 1)
}

func TestTestSeedAllowsFixedAndLoopSeeds(t *testing.T) {
	files := map[string]string{
		"internal/rng/rng.go": rngStub,
		"sim/sim.go":          "package sim\n",
		"sim/sim_test.go": `package sim

import (
	"testing"

	"samurai/internal/rng"
)

const baseSeed = 7

func TestFixed(t *testing.T) {
	r := rng.New(42)
	r.Seed(baseSeed)
	for i := 0; i < 4; i++ {
		child := rng.NewSeq(uint64(i), baseSeed+uint64(i))
		_ = child
	}
	_ = r
}
`}
	wantFindings(t, diags(t, files, testSeedRule), 0)
}

func TestTestSeedIgnoresNonTestFiles(t *testing.T) {
	// Production code seeding from time is norandglobal's business, not
	// this rule's.
	files := map[string]string{
		"internal/rng/rng.go": rngStub,
		"sim/sim.go": `package sim

import (
	"time"

	"samurai/internal/rng"
)

// Fresh is the anti-pattern, but in a non-test file.
func Fresh() *rng.Stream { return rng.New(uint64(time.Now().UnixNano())) }
`}
	wantFindings(t, diags(t, files, testSeedRule), 0)
}

func TestTestSeedHonoursIgnoreDirective(t *testing.T) {
	files := map[string]string{
		"internal/rng/rng.go": rngStub,
		"sim/sim.go":          "package sim\n",
		"sim/sim_test.go": `package sim

import (
	"testing"
	"time"

	"samurai/internal/rng"
)

func TestSoak(t *testing.T) {
	//lint:ignore testseed soak test intentionally explores fresh seeds
	r := rng.New(uint64(time.Now().UnixNano()))
	_ = r
}
`}
	wantFindings(t, diags(t, files, testSeedRule), 0)
}

package lint

import "testing"

// rngStub is a minimal internal/rng so fixtures can exercise the
// time-seeding detection without depending on the real package.
const rngStub = `package rng

// Stream is the stub stream type.
type Stream struct{ s uint64 }

// New returns a stub stream.
func New(seed uint64) *Stream { return &Stream{seed} }

// NewSeq returns a stub stream on a sequence.
func NewSeq(seed, seq uint64) *Stream { return &Stream{seed ^ seq} }

// Seed reseeds the stream.
func (s *Stream) Seed(v uint64) { s.s = v }
`

func TestNoRandGlobalFlagsForbiddenImports(t *testing.T) {
	for _, imp := range []string{"math/rand", "crypto/rand"} {
		files := map[string]string{"sim/sim.go": `package sim

import "` + imp + `"

// Draw pulls one raw value.
func Draw() uint32 {
	var b [4]byte
	rand.Read(b[:])
	return uint32(b[0])
}
`}
		got := diags(t, files, noRandGlobalRule)
		if len(got) == 0 {
			t.Fatalf("import %s: expected a finding", imp)
		}
	}
}

func TestNoRandGlobalAllowsRNGPackageItself(t *testing.T) {
	files := map[string]string{"internal/rng/rng.go": `package rng

import "math/rand"

// Ref exposes the stdlib source for differential testing.
func Ref(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`}
	wantFindings(t, diags(t, files, noRandGlobalRule), 0)
}

func TestNoRandGlobalFlagsTimeSeededStream(t *testing.T) {
	files := map[string]string{
		"internal/rng/rng.go": rngStub,
		"sim/sim.go": `package sim

import (
	"time"

	"samurai/internal/rng"
)

// Fresh builds an unrepeatable stream (the anti-pattern).
func Fresh() *rng.Stream {
	return rng.New(uint64(time.Now().UnixNano()))
}

// Reseed is the method-call variant of the anti-pattern.
func Reseed(s *rng.Stream) {
	s.Seed(uint64(time.Now().Unix()))
}
`}
	wantFindings(t, diags(t, files, noRandGlobalRule), 2)
}

func TestNoRandGlobalAllowsInjectedStreams(t *testing.T) {
	files := map[string]string{
		"internal/rng/rng.go": rngStub,
		"sim/sim.go": `package sim

import "samurai/internal/rng"

// Fixed builds a reproducible stream from a config seed.
func Fixed(seed uint64) *rng.Stream {
	return rng.New(seed)
}
`}
	wantFindings(t, diags(t, files, noRandGlobalRule), 0)
}

func TestNoRandGlobalCoversTestFiles(t *testing.T) {
	files := map[string]string{"sim/sim_test.go": `package sim

import "math/rand"

// Noise draws stdlib randomness inside a test file.
func Noise() float64 { return rand.Float64() }
`,
		"sim/sim.go": `package sim
`}
	got := diags(t, files, noRandGlobalRule)
	if len(got) == 0 {
		t.Fatal("expected a finding in the test file")
	}
}

// Package lint is a small, zero-external-dependency static-analysis
// framework for the SAMURAI repository, built directly on go/parser,
// go/ast and go/types. It exists to *enforce* the conventions that keep
// the reproduction exactly reproducible and numerically honest:
//
//   - all randomness flows through an injected *rng.Stream (norandglobal)
//   - floating-point values are never compared with == / != outside the
//     approved tolerance helpers (floateq)
//   - panics in internal packages carry a "pkg: " prefix (panicmsg)
//   - physical constants come from internal/units, never inlined
//     (magicconst)
//   - error returns are never silently discarded (bareerr)
//   - internal packages never print to the console; telemetry flows
//     through internal/obs (printfless)
//   - functions annotated //lint:hot stay allocation-free: no make,
//     append, map literals or fmt.Sprintf in their bodies (hotalloc)
//   - http.Server literals always set ReadHeaderTimeout, so no service
//     binary can be pinned by a Slowloris client (httptimeouts)
//   - test files seed RNGs with fixed values only — no time/pid/env
//     seeds and no global rand, so failures replay (testseed)
//
// Diagnostics are position-tracked and emitted in a deterministic order
// (file, line, column, rule). Individual findings can be suppressed with
// a justification comment on the offending line or the line above:
//
//	//lint:ignore rulename reason the exact comparison is intentional
//
// The comment must name the rule (or a comma-separated list of rules)
// and carry a non-empty reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// File is one parsed source file inside a Package.
type File struct {
	Name string // path as handed to the loader
	AST  *ast.File
	// Test reports whether the file is a _test.go file. Test files are
	// parsed (so syntactic rules can see them) but not type-checked.
	Test bool
	// ignores maps line number -> rules suppressed on that line.
	ignores map[int][]string
}

// Package is one package unit: parsed files plus (for the non-test
// compilation unit) full type information.
type Package struct {
	// Path is the import path, e.g. "samurai/internal/waveform".
	Path string
	// Name is the package identifier, e.g. "waveform".
	Name string
	// Dir is the directory the files came from.
	Dir string
	// Fset positions every AST node in Files.
	Fset *token.FileSet
	// Files holds all parsed files, non-test first.
	Files []*File
	// Types and Info describe the non-test compilation unit; test files
	// are not covered. Info is never nil after a successful load.
	Types *types.Package
	Info  *types.Info
}

// Rule is one named check over a package.
type Rule interface {
	// Name is the identifier used in diagnostics and //lint:ignore.
	Name() string
	// Doc is a one-line description shown by `samurailint -list`.
	Doc() string
	// Check inspects the package and returns raw findings; suppression
	// and ordering are handled by the framework.
	Check(pkg *Package) []Diagnostic
}

// AllRules returns the full rule set in deterministic order.
func AllRules() []Rule {
	return []Rule{
		NoRandGlobal{},
		FloatEq{},
		PanicMsg{},
		MagicConst{},
		BareErr{},
		PrintfLess{},
		HotAlloc{},
		HTTPTimeouts{},
		TestSeed{},
	}
}

// Run applies the rules to the packages, drops suppressed findings, and
// returns the survivors sorted by (file, line, column, rule).
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, r := range rules {
			for _, d := range r.Check(pkg) {
				if !pkg.suppressed(r.Name(), d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// suppressed reports whether an ignore directive covers the rule at the
// diagnostic's line (trailing comment) or on the line directly above.
func (p *Package) suppressed(rule string, pos token.Position) bool {
	for _, f := range p.Files {
		if f.Name != pos.Filename {
			continue
		}
		for _, line := range []int{pos.Line, pos.Line - 1} {
			for _, r := range f.ignores[line] {
				if r == rule || r == "all" {
					return true
				}
			}
		}
	}
	return false
}

// ignoreDirective parses "lint:ignore rule1,rule2 reason"; ok is false
// for comments that are not directives or lack a rule list + reason.
func ignoreDirective(text string) (rules []string, ok bool) {
	body, found := strings.CutPrefix(strings.TrimSpace(text), "lint:ignore")
	if !found {
		return nil, false
	}
	fields := strings.Fields(body)
	if len(fields) < 2 { // need a rule list AND a non-empty reason
		return nil, false
	}
	for _, r := range strings.Split(fields[0], ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	return rules, len(rules) > 0
}

// collectIgnores indexes a file's //lint:ignore directives by line.
func collectIgnores(fset *token.FileSet, f *ast.File) map[int][]string {
	out := map[int][]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if rules, ok := ignoreDirective(text); ok {
				line := fset.Position(c.Pos()).Line
				out[line] = append(out[line], rules...)
			}
		}
	}
	return out
}

// eachFile invokes fn for every file in the package, optionally
// restricted to type-checked (non-test) files.
func (p *Package) eachFile(typedOnly bool, fn func(f *File)) {
	for _, f := range p.Files {
		if typedOnly && f.Test {
			continue
		}
		fn(f)
	}
}

// position is a shorthand for resolving a node position.
func (p *Package) position(n ast.Node) token.Position {
	return p.Fset.Position(n.Pos())
}

// isPkgDot reports whether e is a selector pkgname.sel referring to the
// named import (matched by import path so aliases work).
func (p *Package) isPkgDot(e ast.Expr, path, sel string) bool {
	s, ok := e.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return false
	}
	id, ok := s.X.(*ast.Ident)
	if !ok {
		return false
	}
	if p.Info != nil {
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Path() == path
		}
	}
	// Untyped (test) files: fall back to the default package name.
	want := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		want = path[i+1:]
	}
	return id.Name == want
}

// Package lint is a small, zero-external-dependency static-analysis
// framework for the SAMURAI repository, built directly on go/parser,
// go/ast and go/types. It exists to *enforce* the conventions that keep
// the reproduction exactly reproducible and numerically honest:
//
//   - all randomness flows through an injected *rng.Stream (norandglobal)
//   - floating-point values are never compared with == / != outside the
//     approved tolerance helpers (floateq)
//   - panics in internal packages carry a "pkg: " prefix (panicmsg)
//   - physical constants come from internal/units, never inlined
//     (magicconst)
//   - error returns are never silently discarded (bareerr)
//   - internal packages never print to the console; telemetry flows
//     through internal/obs (printfless)
//   - functions annotated //lint:hot stay allocation-free: no make,
//     append, map literals or fmt.Sprintf in their bodies (hotalloc)
//   - http.Server literals always set ReadHeaderTimeout, so no service
//     binary can be pinned by a Slowloris client (httptimeouts)
//   - test files seed RNGs with fixed values only — no time/pid/env
//     seeds and no global rand, so failures replay (testseed)
//   - every span created through internal/obs or internal/obs/trace is
//     Ended on all paths, so traces never under-report (spanend)
//
// Beyond these per-package rules, the sub-package lint/flow registers
// whole-program call-graph rules (detflow, maporder, ctxflow,
// seedpurity) that prove no nondeterminism source can reach a seeded
// simulation result; importing lint/flow adds them to AllRules.
//
// Rules live in one registry: each is a Rule value (name, doc, run
// function) listed in builtinRules or added via Register, so the
// driver, the test harness and the documentation all iterate the same
// table.
//
// Diagnostics are position-tracked and emitted in a deterministic order
// (file, line, column, rule). Individual findings can be suppressed with
// a justification comment on the offending line or the line above:
//
//	//lint:ignore rulename reason the exact comparison is intentional
//
// The comment must name the rule (or a comma-separated list of rules)
// and carry a non-empty reason. The dedicated determinism escape hatch
//
//	//lint:nondet-ok reason the timestamp is wall-clock metadata
//
// suppresses every flow rule at that line; `samurailint -suppressions`
// inventories both directive kinds and rejects empty or copy-pasted
// reasons.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// File is one parsed source file inside a Package.
type File struct {
	Name string // path as handed to the loader
	AST  *ast.File
	// Test reports whether the file is a _test.go file. Test files are
	// parsed (so syntactic rules can see them) but not type-checked.
	Test bool
	// ignores maps line number -> rules suppressed on that line.
	ignores map[int][]string
	// suppressions records every lint:ignore / lint:nondet-ok directive
	// in the file, including malformed ones (empty reason), for the
	// -suppressions inventory.
	suppressions []Suppression
}

// Package is one package unit: parsed files plus (for the non-test
// compilation unit) full type information.
type Package struct {
	// Path is the import path, e.g. "samurai/internal/waveform".
	Path string
	// Name is the package identifier, e.g. "waveform".
	Name string
	// Dir is the directory the files came from.
	Dir string
	// Fset positions every AST node in Files.
	Fset *token.FileSet
	// Files holds all parsed files, non-test first.
	Files []*File
	// Types and Info describe the non-test compilation unit; test files
	// are not covered. Info is never nil after a successful load.
	Types *types.Package
	Info  *types.Info
}

// Rule is one registry entry: a named check with exactly one of Check
// (runs per package) or CheckModule (runs once over the whole module —
// whole-program analyses such as the lint/flow call-graph rules) set.
type Rule struct {
	// Name is the identifier used in diagnostics and //lint:ignore.
	Name string
	// Doc is a one-line description shown by `samurailint -list`.
	Doc string
	// Check inspects one package and returns raw findings; suppression
	// and ordering are handled by the framework.
	Check func(pkg *Package) []Diagnostic
	// CheckModule inspects the whole module at once.
	CheckModule func(pkgs []*Package) []Diagnostic
}

// registered holds rules added by Register (e.g. by lint/flow's init),
// in registration order.
var registered []Rule

// Register adds a rule to the registry. It is intended to be called
// from init functions of rule-providing sub-packages; duplicate or
// malformed registrations panic immediately so a bad rule table can
// never lint anything.
func Register(r Rule) {
	if r.Name == "" || r.Doc == "" {
		panic("lint: Register called with empty name or doc")
	}
	if (r.Check == nil) == (r.CheckModule == nil) {
		panic("lint: rule " + r.Name + " must set exactly one of Check or CheckModule")
	}
	for _, have := range AllRules() {
		if have.Name == r.Name {
			panic("lint: duplicate rule name " + r.Name)
		}
	}
	registered = append(registered, r)
}

// builtinRules is the table of per-package rules shipped by this
// package, in the order they are listed by `samurailint -list`.
func builtinRules() []Rule {
	return []Rule{
		noRandGlobalRule,
		floatEqRule,
		panicMsgRule,
		magicConstRule,
		bareErrRule,
		printfLessRule,
		hotAllocRule,
		httpTimeoutsRule,
		testSeedRule,
		spanEndRule,
	}
}

// AllRules returns the full rule set — builtins first, then rules added
// via Register in registration order.
func AllRules() []Rule {
	out := builtinRules()
	return append(out, registered...)
}

// RuleByName looks a rule up in the registry.
func RuleByName(name string) (Rule, bool) {
	for _, r := range AllRules() {
		if r.Name == name {
			return r, true
		}
	}
	return Rule{}, false
}

// Run applies the rules to the packages, drops suppressed findings, and
// returns the survivors sorted by (file, line, column, rule).
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	files := fileIndex(pkgs)
	var out []Diagnostic
	keep := func(name string, ds []Diagnostic) {
		for _, d := range ds {
			if !suppressedIn(files, name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	for _, r := range rules {
		if r.CheckModule != nil {
			keep(r.Name, r.CheckModule(pkgs))
		}
		if r.Check == nil {
			continue
		}
		for _, pkg := range pkgs {
			keep(r.Name, r.Check(pkg))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// fileIndex maps file path -> *File across all packages (test and
// non-test), for suppression lookup of module-scope diagnostics.
func fileIndex(pkgs []*Package) map[string]*File {
	idx := map[string]*File{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			idx[f.Name] = f
		}
	}
	return idx
}

// suppressedIn reports whether an ignore directive covers the rule at
// the diagnostic's line (trailing comment) or on the line directly
// above.
func suppressedIn(files map[string]*File, rule string, pos token.Position) bool {
	f := files[pos.Filename]
	if f == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, r := range f.ignores[line] {
			if r == rule || r == "all" {
				return true
			}
		}
	}
	return false
}

// Suppression is one //lint:ignore or //lint:nondet-ok directive found
// in a source file. Malformed directives (a rule list without a reason,
// or a bare nondet-ok) are recorded with an empty Reason — they look
// like waivers but suppress nothing, which -suppressions treats as an
// error.
type Suppression struct {
	// Directive is "ignore" or "nondet-ok".
	Directive string
	// Rules are the rule names the directive covers.
	Rules []string
	// Reason is the justification text (empty for malformed directives).
	Reason string
	Pos    token.Position
}

// Suppressions inventories every suppression directive in the loaded
// packages, sorted by (file, line).
func Suppressions(pkgs []*Package) []Suppression {
	var out []Suppression
	for _, p := range pkgs {
		for _, f := range p.Files {
			out = append(out, f.suppressions...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// flowRuleNames are the rules a //lint:nondet-ok directive waives: the
// whole-program determinism rules provided by lint/flow. Kept here (not
// in lint/flow) so directive parsing has no dependency on which rule
// packages are linked in.
var flowRuleNames = []string{"detflow", "maporder", "ctxflow", "seedpurity"}

// suppressed reports whether an ignore directive covers the rule at the
// diagnostic's line (trailing comment) or on the line directly above.
func (p *Package) suppressed(rule string, pos token.Position) bool {
	return suppressedIn(fileIndex([]*Package{p}), rule, pos)
}

// ignoreDirective parses "lint:ignore rule1,rule2 reason" and
// "lint:nondet-ok reason". For well-formed directives it returns the
// covered rules and ok=true. Malformed-but-recognisable directives
// (missing reason) return ok=false with directive set, so they can be
// inventoried.
func ignoreDirective(text string) (directive string, rules []string, reason string, ok bool) {
	text = strings.TrimSpace(text)
	if body, found := strings.CutPrefix(text, "lint:nondet-ok"); found {
		reason = strings.TrimSpace(body)
		if reason == "" {
			return "nondet-ok", nil, "", false
		}
		return "nondet-ok", append([]string(nil), flowRuleNames...), reason, true
	}
	body, found := strings.CutPrefix(text, "lint:ignore")
	if !found {
		return "", nil, "", false
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "ignore", nil, "", false
	}
	for _, r := range strings.Split(fields[0], ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(body), fields[0]))
	if len(rules) == 0 || reason == "" { // need a rule list AND a reason
		return "ignore", rules, "", false
	}
	return "ignore", rules, reason, true
}

// collectIgnores indexes a file's suppression directives by line and
// records the full inventory (including malformed directives) on the
// returned suppression list.
func collectIgnores(fset *token.FileSet, f *ast.File) (map[int][]string, []Suppression) {
	ignores := map[int][]string{}
	var sups []Suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			directive, rules, reason, ok := ignoreDirective(text)
			if directive == "" {
				continue
			}
			pos := fset.Position(c.Pos())
			sups = append(sups, Suppression{Directive: directive, Rules: rules, Reason: reason, Pos: pos})
			if ok {
				ignores[pos.Line] = append(ignores[pos.Line], rules...)
			}
		}
	}
	return ignores, sups
}

// eachFile invokes fn for every file in the package, optionally
// restricted to type-checked (non-test) files.
func (p *Package) eachFile(typedOnly bool, fn func(f *File)) {
	for _, f := range p.Files {
		if typedOnly && f.Test {
			continue
		}
		fn(f)
	}
}

// position is a shorthand for resolving a node position.
func (p *Package) position(n ast.Node) token.Position {
	return p.Fset.Position(n.Pos())
}

// isPkgDot reports whether e is a selector pkgname.sel referring to the
// named import (matched by import path so aliases work).
func (p *Package) isPkgDot(e ast.Expr, path, sel string) bool {
	s, ok := e.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return false
	}
	id, ok := s.X.(*ast.Ident)
	if !ok {
		return false
	}
	if p.Info != nil {
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Path() == path
		}
	}
	// Untyped (test) files: fall back to the default package name.
	want := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		want = path[i+1:]
	}
	return id.Name == want
}

package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materialises a fixture module on disk without loading it,
// for tests that need LoadModule's error return.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module samurai\n\ngo 1.22\n"
	}
	for name, src := range files {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadModuleReportsTypeErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": `package a

func f() int { return "not an int" }
`,
	})
	if _, err := LoadModule(dir); err == nil {
		t.Fatal("LoadModule succeeded on a module with type errors; a loader regression here would silently lint nothing")
	} else if !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("error does not identify the type-check phase: %v", err)
	}
}

func TestLoadModuleReportsParseErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nfunc f( {\n",
	})
	if _, err := LoadModule(dir); err == nil {
		t.Fatal("LoadModule succeeded on a module with a syntax error")
	}
}

func TestLoadModuleSkipsBuildTagExcludedFiles(t *testing.T) {
	pkgs := load(t, map[string]string{
		"a/a.go": `package a

// F is fine.
func F() int { return 1 }
`,
		// Would fail type-checking if included; //go:build ignore must
		// exclude it exactly as the go tool does.
		"a/gen.go": `//go:build ignore

package main

func main() { undefinedSymbol() }
`,
		// Legacy +build constraint for a foreign OS.
		"a/other.go": `// +build plan9x

package a

func broken() { alsoUndefined() }
`,
	})
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if n := len(pkgs[0].Files); n != 1 {
		for _, f := range pkgs[0].Files {
			t.Logf("  loaded: %s", f.Name)
		}
		t.Fatalf("package has %d files, want 1 (constrained files must be skipped)", n)
	}
}

func TestLoadModuleIncludesSatisfiedBuildTags(t *testing.T) {
	pkgs := load(t, map[string]string{
		"a/a.go": `//go:build gc && go1.18

package a

// F is guarded by tags every supported toolchain satisfies.
func F() int { return 1 }
`,
	})
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("file with satisfied build tags was not loaded: %+v", pkgs)
	}
}

func TestLoadModuleSkipsVendorTestdataAndHiddenDirs(t *testing.T) {
	broken := `package broken

func f() { thisDoesNotCompile( }
`
	pkgs := load(t, map[string]string{
		"a/a.go": `package a

// F anchors the one real package.
func F() int { return 1 }
`,
		"vendor/dep/dep.go":     broken,
		"a/testdata/fixture.go": broken,
		".cache/tmp.go":         broken,
		"_scratch/old.go":       broken,
	})
	if len(pkgs) != 1 || pkgs[0].Path != "samurai/a" {
		var paths []string
		for _, p := range pkgs {
			paths = append(paths, p.Path)
		}
		t.Fatalf("loaded packages %v, want only samurai/a", paths)
	}
}

func TestBuildIncludedStopsAtPackageClause(t *testing.T) {
	// A //go:build-looking line after the package clause is ordinary
	// source and must not exclude the file.
	pkgs := load(t, map[string]string{
		"a/a.go": `package a

// The string below mentions //go:build ignore but the scan must have
// stopped at the package clause already.
const doc = "//go:build ignore"
`,
	})
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatal("file was wrongly excluded by a post-package-clause constraint")
	}
}

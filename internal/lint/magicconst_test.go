package lint

import "testing"

func TestMagicConstFlagsInlinedPhysicalConstants(t *testing.T) {
	files := map[string]string{"phys/phys.go": `package phys

// Boltzmann truncated to three significant figures.
const k = 1.38e-23

// ThermalV hand-types kT/q at room temperature.
func ThermalV() float64 { return 0.02585 }

// Charge hand-types the elementary charge.
func Charge() float64 { return 1.602e-19 }
`}
	wantFindings(t, diags(t, files, magicConstRule), 3)
}

func TestMagicConstAllowsOrdinaryLiterals(t *testing.T) {
	files := map[string]string{"phys/phys.go": `package phys

// Engineering literals nowhere near the registry.
const (
	dt    = 1e-12
	gain  = 3.14
	scale = 30.0
	tiny  = 2.5e-23 // not within tolerance of k
)
`}
	wantFindings(t, diags(t, files, magicConstRule), 0)
}

func TestMagicConstExemptsUnitsPackage(t *testing.T) {
	files := map[string]string{"internal/units/units.go": `package units

// Boltzmann is the canonical literal; this is where it is allowed.
const Boltzmann = 1.380649e-23
`}
	wantFindings(t, diags(t, files, magicConstRule), 0)
}

func TestMagicConstCoversTestFiles(t *testing.T) {
	files := map[string]string{
		"phys/phys.go": `package phys
`,
		"phys/phys_test.go": `package phys

// kT/q inlined inside a test — still a divergence hazard.
const vt = 0.0259
`}
	got := diags(t, files, magicConstRule)
	if len(got) != 1 {
		t.Fatalf("got %d finding(s), want 1", len(got))
	}
}

package lint

import (
	"fmt"
	"go/ast"
)

// TestSeed enforces determinism at the test layer: test files must seed
// their RNG streams with fixed values. A seed derived from the wall
// clock, the process id or the environment makes a failing statistical
// test unreproducible — the one property the V&V gates depend on — and
// any use of the stdlib global rand smuggles in unseedable state.
//
// The rule is purely syntactic (test files are parsed but not
// type-checked) and complements norandglobal: norandglobal bans the
// forbidden imports tree-wide, testseed rejects non-constant seed
// *sources* flowing into rng.New / rng.NewSeq / Seed calls inside
// _test.go files, plus any call spelled rand.<F>. Literals, named
// constants and loop-variable-derived seeds all pass.
const testSeedName = "testseed"

var testSeedRule = Rule{
	Name:  testSeedName,
	Doc:   "test files must seed RNGs with fixed values; no time/pid/env-derived seeds and no global rand",
	Check: checkTestSeed,
}

// nondeterministicSeedSources maps package ident -> function names whose
// results must never reach a seed in a test file.
var nondeterministicSeedSources = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getpid": true, "Getenv": true, "Environ": true, "Getppid": true},
}

func checkTestSeed(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		if !f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "rand" {
					out = append(out, Diagnostic{
						Rule:    testSeedName,
						Pos:     pkg.position(call),
						Message: fmt.Sprintf("test uses global rand.%s; draw from a fixed-seed *rng.Stream instead", sel.Sel.Name),
					})
					return true
				}
			}
			if !isSeedingCall(call) {
				return true
			}
			for _, arg := range call.Args {
				if bad := findNondeterministicSource(arg); bad != "" {
					out = append(out, Diagnostic{
						Rule:    testSeedName,
						Pos:     pkg.position(call),
						Message: fmt.Sprintf("test seeds an RNG from %s; use a fixed literal seed so failures replay", bad),
					})
				}
			}
			return true
		})
	}
	return out
}

// findNondeterministicSource returns the rendered name of the first
// forbidden source call nested inside e ("time.Now", "os.Getpid", ...),
// or "" when the expression is seed-safe.
func findNondeterministicSource(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if fns, ok := nondeterministicSeedSources[id.Name]; ok && fns[sel.Sel.Name] {
			found = id.Name + "." + sel.Sel.Name
			return false
		}
		return true
	})
	return found
}

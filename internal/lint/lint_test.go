package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// load writes the fixture files into a temp module (adding a go.mod if
// the fixture does not provide one) and loads it.
func load(t *testing.T, files map[string]string) []*Package {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module samurai\n\ngo 1.22\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for name, src := range files {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return pkgs
}

// diags runs a single rule over a fixture module.
func diags(t *testing.T, files map[string]string, rule Rule) []Diagnostic {
	t.Helper()
	return Run(load(t, files), []Rule{rule})
}

// wantFindings asserts the finding count and that every message names
// the rule's own identifier via Diagnostic.String.
func wantFindings(t *testing.T, got []Diagnostic, want int) {
	t.Helper()
	if len(got) != want {
		for _, d := range got {
			t.Logf("  %s", d)
		}
		t.Fatalf("got %d finding(s), want %d", len(got), want)
	}
}

func TestAllRulesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range AllRules() {
		if r.Name == "" || r.Doc == "" {
			t.Fatalf("rule %T has empty name or doc", r)
		}
		if seen[r.Name] {
			t.Fatalf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
	if len(seen) < 5 {
		t.Fatalf("expected at least 5 rules, have %d", len(seen))
	}
}

func TestIgnoreDirectiveParsing(t *testing.T) {
	cases := []struct {
		text      string
		directive string
		rules     []string
		reason    string
		ok        bool
	}{
		{"lint:ignore floateq exact by construction", "ignore", []string{"floateq"}, "exact by construction", true},
		{"lint:ignore floateq,bareerr shared reason", "ignore", []string{"floateq", "bareerr"}, "shared reason", true},
		{"lint:ignore floateq", "ignore", []string{"floateq"}, "", false}, // no reason
		{"lint:ignore", "ignore", nil, "", false},
		{"nolint:whatever", "", nil, "", false},
		{" lint:ignore all everything here is fine", "ignore", []string{"all"}, "everything here is fine", true},
		{"lint:nondet-ok wall-clock metadata only", "nondet-ok", flowRuleNames, "wall-clock metadata only", true},
		{"lint:nondet-ok", "nondet-ok", nil, "", false}, // no reason
	}
	for _, c := range cases {
		directive, rules, reason, ok := ignoreDirective(c.text)
		if ok != c.ok || directive != c.directive {
			t.Fatalf("%q: (directive, ok) = (%q, %v), want (%q, %v)", c.text, directive, ok, c.directive, c.ok)
		}
		if c.ok && reason != c.reason {
			t.Fatalf("%q: reason = %q, want %q", c.text, reason, c.reason)
		}
		if len(rules) != len(c.rules) {
			t.Fatalf("%q: rules = %v, want %v", c.text, rules, c.rules)
		}
		for i := range rules {
			if rules[i] != c.rules[i] {
				t.Fatalf("%q: rules = %v, want %v", c.text, rules, c.rules)
			}
		}
	}
}

func TestIgnoreSuppressesOnlyNamedRule(t *testing.T) {
	src := func(comment string) map[string]string {
		return map[string]string{"a/a.go": `package a

func eq(x, y float64) bool {
	` + comment + `
	return x == y
}
`}
	}
	wantFindings(t, diags(t, src("//lint:ignore floateq bitwise identity is the intent"), floatEqRule), 0)
	wantFindings(t, diags(t, src("//lint:ignore bareerr wrong rule name"), floatEqRule), 1)
	wantFindings(t, diags(t, src("//lint:ignore floateq"), floatEqRule), 1) // reason missing
	wantFindings(t, diags(t, src("//lint:ignore all blanket waiver"), floatEqRule), 0)
}

func TestIgnoreOnSameLine(t *testing.T) {
	files := map[string]string{"a/a.go": `package a

func eq(x, y float64) bool {
	return x == y //lint:ignore floateq trailing justification
}
`}
	wantFindings(t, diags(t, files, floatEqRule), 0)
}

func TestDiagnosticsDeterministicallyOrdered(t *testing.T) {
	files := map[string]string{
		"b/b.go": `package b

func eq2(x, y float64) bool { return x == y }

func eq3(x, y float32) bool { return x != y }
`,
		"a/a.go": `package a

func eq1(x, y float64) bool { return x == y }
`,
	}
	got := Run(load(t, files), []Rule{floatEqRule})
	wantFindings(t, got, 3)
	for i := 1; i < len(got); i++ {
		prev, cur := got[i-1], got[i]
		if prev.Pos.Filename > cur.Pos.Filename ||
			(prev.Pos.Filename == cur.Pos.Filename && prev.Pos.Line > cur.Pos.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", prev, cur)
		}
	}
}

func TestLoadModuleResolvesLocalImports(t *testing.T) {
	files := map[string]string{
		"internal/base/base.go": `package base

// V is an exported value.
const V = 3
`,
		"top.go": `package top

import "samurai/internal/base"

// W re-exports base.V.
const W = base.V
`,
	}
	pkgs := load(t, files)
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	// Dependency order: base before top.
	if pkgs[0].Path != "samurai/internal/base" {
		t.Fatalf("expected base first, got %s", pkgs[0].Path)
	}
}

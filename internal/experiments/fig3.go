package experiments

import (
	"fmt"
	"io"
	"math"

	"samurai/internal/analysis"
	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/rtn"
	"samurai/internal/trap"
)

// Fig3Device is the spectral analysis of one sampled device instance.
type Fig3Device struct {
	Index int
	// Traps is the sampled population size; Simulated the subset whose
	// corner lies within the measurement bandwidth (faster traps
	// contribute only a negligible flat background and are skipped —
	// exactly what a band-limited measurement would show).
	Traps, Simulated int
	// Slope and Residual are the log-log 1/f fit over the analysis
	// band: a clean 1/f spectrum has Slope ≈ −1 and a small RMS
	// residual (in decades).
	Slope, Residual float64
}

// Fig3TechResult summarises the 25-device panel for one technology.
type Fig3TechResult struct {
	Tech      string
	WOverL    float64
	Devices   []Fig3Device
	MeanTraps float64
	// MeanResidual and MaxResidual aggregate the 1/f fit quality: the
	// paper's point is that the old (many-trap) technology fits well
	// while the new (few-trap) one does not.
	MeanResidual, MaxResidual float64
	// MeanSlope and SlopeStd summarise the fitted exponents: a genuine
	// 1/f ensemble clusters tightly at −1, while few-trap devices
	// scatter widely (their apparent slope depends on where their
	// handful of Lorentzian corners happen to fall).
	MeanSlope, SlopeStd float64
}

// Fig3Result pairs the two technologies of the paper's Fig 3.
type Fig3Result struct {
	Old, New Fig3TechResult
}

// Fig3Config controls the experiment.
type Fig3Config struct {
	Seed             uint64
	Devices          int // default 25, as in the paper
	Samples          int // trace samples per device; default 1<<18
	Window           float64
	OldTech, NewTech string
	// OldWOverL widens the old-technology device (earlier nodes used
	// larger analog-style devices; this is also what gives them their
	// large trap populations). Default 10.
	OldWOverL float64
}

func (c Fig3Config) defaults() Fig3Config {
	if c.Devices == 0 {
		c.Devices = 25
	}
	if c.Samples == 0 {
		c.Samples = 1 << 18
	}
	if c.Window == 0 {
		c.Window = 2e-3
	}
	if c.OldTech == "" {
		c.OldTech = "130nm"
	}
	if c.NewTech == "" {
		c.NewTech = "32nm"
	}
	if c.OldWOverL == 0 {
		c.OldWOverL = 10
	}
	return c
}

// Fig3 reproduces the paper's Fig 3: spectral density plots for 25
// randomly sampled device instances in an older technology (large
// device, ~hundreds of traps → the analytical 1/f fit is good) and a
// deeply scaled one (a handful of traps → discrete Lorentzian corners,
// 1/f fit fails).
func Fig3(cfg Fig3Config) (*Fig3Result, error) {
	cfg = cfg.defaults()
	root := rng.New(cfg.Seed)
	old, err := fig3Tech(cfg.OldTech, cfg.OldWOverL, cfg, root.Split(1))
	if err != nil {
		return nil, err
	}
	newer, err := fig3Tech(cfg.NewTech, 1.5, cfg, root.Split(2))
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Old: *old, New: *newer}, nil
}

func fig3Tech(name string, wOverL float64, cfg Fig3Config, root *rng.Stream) (*Fig3TechResult, error) {
	tech := device.Node(name)
	w, l := wOverL*tech.Lmin, tech.Lmin
	dev := device.NewMOS(tech, device.NMOS, w, l)
	ctx := tech.TrapContext(tech.Vdd)
	profiler := tech.TrapProfiler()
	vgs := tech.Vdd
	id := dev.Eval(vgs, vgs).Ids

	dt := cfg.Window / float64(cfg.Samples)
	// Traps whose total rate exceeds half the sampling rate have their
	// corner far beyond Nyquist; their aliased contribution is a small
	// flat background, so they are excluded from the event simulation.
	rateCap := 0.5 / dt

	res := &Fig3TechResult{Tech: name, WOverL: wOverL}
	trapTotal := 0
	for d := 0; d < cfg.Devices; d++ {
		r := root.Split(uint64(d))
		profile := profiler.Sample(w, l, ctx, r.Split(0))
		trapTotal += len(profile.Traps)

		sim := trap.Profile{Ctx: ctx}
		for _, tr := range profile.Traps {
			if ctx.RateSum(tr) <= rateCap {
				sim.Traps = append(sim.Traps, tr)
			}
		}
		paths, err := markov.UniformiseProfile(sim, markov.ConstantBias(vgs), 0, cfg.Window, r.Split(1))
		if err != nil {
			return nil, err
		}
		trace, err := rtn.ComposeConstant(paths, dev, vgs, id, 0, cfg.Window, cfg.Samples)
		if err != nil {
			return nil, err
		}
		freqs, psd, err := analysis.Welch(trace.I, dt, cfg.Samples/32)
		if err != nil {
			return nil, err
		}
		// Fit band: from the first resolved Welch bin up to a third of
		// the highest simulated Lorentzian corner (beyond which every
		// spectrum rolls off at 1/f² regardless of trap population).
		fLo := freqs[0] * 2
		fHi := rateCap / (2 * math.Pi) / 3
		var fx, fy []float64
		for i := range freqs {
			if freqs[i] >= fLo && freqs[i] <= fHi && psd[i] > 0 {
				fx = append(fx, freqs[i])
				fy = append(fy, psd[i])
			}
		}
		// Log-binned fit: equal weight per decade, estimator noise
		// averaged out, so the residual measures genuine spectral
		// structure (the discrete Lorentzian corners of a few-trap
		// device) rather than FFT noise.
		bx, by := analysis.LogBin(fx, fy, 6)
		slope, resid := analysis.LogLogSlope(bx, by)
		res.Devices = append(res.Devices, Fig3Device{
			Index: d, Traps: len(profile.Traps), Simulated: len(sim.Traps),
			Slope: slope, Residual: resid,
		})
	}
	res.MeanTraps = float64(trapTotal) / float64(cfg.Devices)
	for _, d := range res.Devices {
		res.MeanResidual += d.Residual
		res.MeanSlope += d.Slope
		res.MaxResidual = math.Max(res.MaxResidual, d.Residual)
	}
	res.MeanResidual /= float64(len(res.Devices))
	res.MeanSlope /= float64(len(res.Devices))
	for _, d := range res.Devices {
		dev := d.Slope - res.MeanSlope
		res.SlopeStd += dev * dev
	}
	res.SlopeStd = math.Sqrt(res.SlopeStd / float64(len(res.Devices)))
	return res, nil
}

// OneOverFReference returns the analytical 1/f model for a technology's
// mean trap population — the dashed "analytical solution" line of
// Fig 3 — evaluated at frequency f.
func OneOverFReference(techName string, wOverL float64, f float64) float64 {
	tech := device.Node(techName)
	w, l := wOverL*tech.Lmin, tech.Lmin
	dev := device.NewMOS(tech, device.NMOS, w, l)
	ctx := tech.TrapContext(tech.Vdd)
	vgs := tech.Vdd
	id := dev.Eval(vgs, vgs).Ids
	dI := rtn.StepAmplitude(dev, vgs, id)
	meanTraps := tech.TrapProfiler().ExpectedCount(w, l, tech.Tox)
	// Effective variance: ΔI²·p(1−p) averaged over the energy band;
	// use the p=1/2 worst case scaled by the active fraction ~kT/band.
	totalVar := dI * dI * 0.25 * meanTraps * 0.1
	lMin := 1 / (ctx.Tau0 * math.Exp(ctx.Gamma*ctx.Tox))
	lMax := 1 / ctx.Tau0
	return analysis.OneOverFModel(totalVar, lMin, lMax)(f)
}

// WriteText renders the comparison table.
func (r *Fig3Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Fig 3 — 1/f fit quality across %d device instances per technology\n", len(r.Old.Devices))
	fmt.Fprintf(w, "%8s %10s %16s %14s %14s %14s\n", "tech", "mean traps", "slope (µ±σ)", "mean residual", "max residual", "verdict")
	row := func(t Fig3TechResult) {
		fmt.Fprintf(w, "%8s %10.1f %9.2f ± %4.2f %14.3f %14.3f %14s\n",
			t.Tech, t.MeanTraps, t.MeanSlope, t.SlopeStd, t.MeanResidual, t.MaxResidual, t.verdict(r.Old))
	}
	row(r.Old)
	row(r.New)
}

// verdict classifies a technology panel against the old-technology
// reference: the analytical 1/f fit "fails" when either the residual
// structure or the slope scatter substantially exceeds the many-trap
// baseline.
func (t Fig3TechResult) verdict(ref Fig3TechResult) string {
	if t.MaxResidual > 1.8*ref.MaxResidual || t.SlopeStd > 2*ref.SlopeStd {
		return "1/f fit FAILS"
	}
	return "1/f fit OK"
}

// Contrast returns the new-to-old residual ratio — the quantitative
// form of the paper's visual contrast (must be ≫ 1).
func (r *Fig3Result) Contrast() float64 {
	if r.Old.MeanResidual == 0 {
		return math.Inf(1)
	}
	return r.New.MeanResidual / r.Old.MeanResidual
}

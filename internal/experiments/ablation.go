package experiments

import (
	"fmt"
	"io"

	samurai "samurai"
	"samurai/internal/circuit"
	"samurai/internal/device"
	"samurai/internal/sram"
)

// Ablations probe the design choices DESIGN.md calls out: the implicit
// integration scheme, the RTN trace sampling resolution, and the
// write-margin calibration target. Each reports how the headline
// outcome (write errors under accelerated RTN) responds to the knob.

// AblationRow is one knob setting's outcome.
type AblationRow struct {
	Label  string
	Errors int
	Slow   int
	// Aux carries a knob-specific scalar (e.g. trip fraction).
	Aux float64
}

// AblationResult is a table of knob settings.
type AblationResult struct {
	Name string
	Note string
	Rows []AblationRow
}

// WriteText renders the ablation table.
func (r *AblationResult) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Ablation — %s\n", r.Name)
	if r.Note != "" {
		fmt.Fprintf(w, "(%s)\n", r.Note)
	}
	fmt.Fprintf(w, "%24s %8s %8s %10s\n", "setting", "errors", "slow", "aux")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%24s %8d %8d %10.4g\n", row.Label, row.Errors, row.Slow, row.Aux)
	}
}

func fig8StyleConfig(seed uint64) (samurai.Config, error) {
	tech := device.Node("32nm")
	vdd := 2.0 / 3.0 * tech.Vdd
	cellCfg, err := sram.MarginalCellConfig(sram.CellConfig{Tech: tech, Vdd: vdd})
	if err != nil {
		return samurai.Config{}, err
	}
	return samurai.Config{
		Tech: tech, Cell: cellCfg,
		Pattern: sram.Fig8Pattern(vdd),
		Seed:    seed, Scale: 30,
	}, nil
}

// AblateIntegrationMethod reruns the headline experiment under backward
// Euler and trapezoidal integration. The write-error verdicts must not
// depend on the scheme (they are decided by margins of tens of mV, far
// above the integration error at the default step).
func AblateIntegrationMethod(seed uint64) (*AblationResult, error) {
	cfg, err := fig8StyleConfig(seed)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		Name: "implicit integration scheme",
		Note: "identical trap populations; outcome must be scheme-independent",
	}
	var profiles = cfg.Profiles
	for _, m := range []circuit.Method{circuit.BackwardEuler, circuit.Trapezoidal} {
		c := cfg
		c.Method = m
		c.Profiles = profiles
		out, err := samurai.Run(c)
		if err != nil {
			return nil, err
		}
		profiles = out.Profiles // pin for the second scheme
		res.Rows = append(res.Rows, AblationRow{
			Label:  m.String(),
			Errors: out.WithRTN.NumError,
			Slow:   out.WithRTN.NumSlow,
		})
	}
	return res, nil
}

// AblateTraceResolution sweeps the number of samples per RTN trace.
// Too-coarse traces blur glitch edges; the outcome must converge by the
// default (4096) resolution.
func AblateTraceResolution(seed uint64) (*AblationResult, error) {
	cfg, err := fig8StyleConfig(seed)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		Name: "RTN trace sampling resolution",
		Note: "aux = samples per trace; verdict must converge by 4096",
	}
	var profiles = cfg.Profiles
	for _, n := range []int{256, 1024, 4096, 16384} {
		c := cfg
		c.TraceSamples = n
		c.Profiles = profiles
		out, err := samurai.Run(c)
		if err != nil {
			return nil, err
		}
		profiles = out.Profiles
		res.Rows = append(res.Rows, AblationRow{
			Label:  fmt.Sprintf("%d samples", n),
			Errors: out.WithRTN.NumError,
			Slow:   out.WithRTN.NumSlow,
			Aux:    float64(n),
		})
	}
	return res, nil
}

// AblateWriteMargin sweeps the calibration target (where in the WL
// window the clean write crosses the trip point) and reports the
// accelerated-RTN error rate: the tighter the margin, the more errors —
// the quantitative form of "the timing of RTN glitches plays a crucial
// role".
func AblateWriteMargin(seed uint64) (*AblationResult, error) {
	tech := device.Node("32nm")
	vdd := 2.0 / 3.0 * tech.Vdd
	res := &AblationResult{
		Name: "write margin (clean trip-point position in the WL window)",
		Note: "aux = trip fraction; errors at RTN ×30 grow as margin tightens",
	}
	for _, frac := range []float64{0.10, 0.16, 0.22, 0.28} {
		cnode, err := sram.CalibrateCNode(sram.CellConfig{Tech: tech, Vdd: vdd}, sram.DefaultTiming(), frac)
		if err != nil {
			return nil, err
		}
		cell := sram.CellConfig{Tech: tech, Vdd: vdd, CNode: cnode}
		errorsTotal, slowTotal := 0, 0
		for s := uint64(0); s < 3; s++ {
			out, err := samurai.Run(samurai.Config{
				Tech: tech, Cell: cell,
				Pattern: sram.Fig8Pattern(vdd),
				Seed:    seed + s, Scale: 30,
			})
			if err != nil {
				return nil, err
			}
			if out.Clean.NumError != 0 {
				return nil, fmt.Errorf("experiments: clean write failed at frac %g", frac)
			}
			errorsTotal += out.WithRTN.NumError
			slowTotal += out.WithRTN.NumSlow
		}
		res.Rows = append(res.Rows, AblationRow{
			Label:  fmt.Sprintf("trip at %.0f%% of WL", frac*100),
			Errors: errorsTotal,
			Slow:   slowTotal,
			Aux:    frac,
		})
	}
	return res, nil
}

package experiments

import (
	"fmt"
	"io"
	"math"

	"samurai/internal/circuit"
	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/num"
	"samurai/internal/rng"
	"samurai/internal/rtn"
	"samurai/internal/waveform"
)

// ---------------------------------------------------------------------
// EXP-X3: RTN–NBTI correlation from the common trap origin (§I-B).
// ---------------------------------------------------------------------

// X3Result quantifies the paper's observation that "RTN and NBTI are
// positively correlated … most likely due to this common root cause":
// both are computed from the *same* sampled trap population per device,
// so devices rich in traps suffer both more RTN and more NBTI.
type X3Result struct {
	Tech    string
	Devices int
	// Pearson is the cross-device correlation coefficient between the
	// RTN amplitude metric and the NBTI shift metric.
	Pearson float64
	// MeanRTNmV and MeanNBTImV are the population means (in mV of
	// equivalent threshold shift).
	MeanRTNmV, MeanNBTImV float64
	// MarginCreditFrac is the fraction of the naive RTN+NBTI guard
	// band recovered when budgeting them jointly (quantile of the sum)
	// instead of summing individual quantiles — the "more design
	// choices" the paper promises from exploiting the correlation.
	MarginCreditFrac float64
}

// X3Config controls EXP-X3.
type X3Config struct {
	Tech    string
	Devices int
	Seed    uint64
}

func (c X3Config) defaults() X3Config {
	if c.Tech == "" {
		c.Tech = "32nm"
	}
	if c.Devices == 0 {
		c.Devices = 400
	}
	return c
}

// X3 samples many device instances and computes, per instance:
//
//   - an RTN metric: ΔVt · (count of bias-active traps) — the
//     threshold fluctuation amplitude the device can exhibit;
//   - an NBTI metric: ΔVt · Σ over slow traps of their stationary
//     occupancy at stress bias — the quasi-permanent component of
//     trapped charge after prolonged high-V_gs stress (the
//     trapping/detrapping picture of NBTI shares Eq (1)–(2) with RTN).
//
// It reports the cross-device Pearson correlation and the guard-band
// credit from budgeting the two jointly.
func X3(cfg X3Config) (*X3Result, error) {
	cfg = cfg.defaults()
	tech := device.Node(cfg.Tech)
	dev := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)
	ctx := tech.TrapContext(tech.Vdd)
	profiler := tech.TrapProfiler()
	dVt := rtn.DeltaVt(dev)
	root := rng.New(cfg.Seed)

	// "Slow" traps for the NBTI metric: total rate below 1 MHz — on
	// SRAM operational timescales (nanosecond cycles) these never
	// detrap, so their occupancy is a quasi-permanent threshold shift,
	// which is exactly the trapping picture of NBTI. (The same traps
	// ARE the slow tail of the RTN spectrum — the common root cause.)
	const slowRate = 1e6
	rtnM := make([]float64, cfg.Devices)
	nbtiM := make([]float64, cfg.Devices)
	for d := 0; d < cfg.Devices; d++ {
		profile := profiler.Sample(dev.W, dev.L, ctx, root.Split(uint64(d)))
		active := profile.ActiveTraps(tech.Vdd, 0.05)
		rtnM[d] = dVt * float64(len(active))
		nbti := 0.0
		for _, tr := range profile.Traps {
			if ctx.RateSum(tr) < slowRate {
				nbti += ctx.OccupancyProb(tr, tech.Vdd)
			}
		}
		nbtiM[d] = dVt * nbti
	}

	res := &X3Result{
		Tech: cfg.Tech, Devices: cfg.Devices,
		Pearson:    pearson(rtnM, nbtiM),
		MeanRTNmV:  num.Mean(rtnM) * 1e3,
		MeanNBTImV: num.Mean(nbtiM) * 1e3,
	}

	// Guard-band credit: compare q99(RTN)+q99(NBTI) (independent
	// budgeting) against q99(RTN+NBTI) (joint budgeting). With
	// positive correlation the joint quantile is still smaller than
	// the sum of quantiles, and the saved margin is the credit.
	sum := make([]float64, cfg.Devices)
	for i := range sum {
		sum[i] = rtnM[i] + nbtiM[i]
	}
	indep := num.Quantile(rtnM, 0.99) + num.Quantile(nbtiM, 0.99)
	joint := num.Quantile(sum, 0.99)
	if indep > 0 {
		res.MarginCreditFrac = (indep - joint) / indep
	}
	return res, nil
}

func pearson(x, y []float64) float64 {
	mx, my := num.Mean(x), num.Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// WriteText renders the EXP-X3 summary.
func (r *X3Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "EXP-X3 — RTN–NBTI correlation from common trap origin (%s, %d devices)\n", r.Tech, r.Devices)
	fmt.Fprintf(w, "mean RTN amplitude: %.2f mV; mean NBTI shift: %.2f mV (ΔVt equivalents)\n",
		r.MeanRTNmV, r.MeanNBTImV)
	fmt.Fprintf(w, "Pearson correlation: %.3f\n", r.Pearson)
	fmt.Fprintf(w, "joint-budgeting guard-band credit at q99: %.1f%%\n", r.MarginCreditFrac*100)
}

// ---------------------------------------------------------------------
// EXP-X4: RTN in ring oscillators (paper future-work #4).
// ---------------------------------------------------------------------

// X4Result compares a CMOS ring oscillator's period statistics with and
// without RTN injection — the paper notes "RTN is also known to impact
// ring oscillators".
type X4Result struct {
	Tech   string
	Stages int
	Scale  float64
	// CleanPeriodPs and CleanJitterPs: mean period and cycle-to-cycle
	// std without RTN (the jitter is numerical-noise level).
	CleanPeriodPs, CleanJitterPs float64
	// RTNPeriodPs and RTNJitterPs: with ×Scale RTN on every device.
	RTNPeriodPs, RTNJitterPs float64
	// PeriodShiftFrac is |T_rtn − T_clean| / T_clean.
	PeriodShiftFrac        float64
	CleanCycles, RTNCycles int
}

// X4Config controls EXP-X4.
type X4Config struct {
	Tech   string
	Stages int
	Scale  float64
	Seed   uint64
	// Horizon is the simulated time; zero → 12 ns.
	Horizon float64
}

func (c X4Config) defaults() X4Config {
	if c.Tech == "" {
		c.Tech = "32nm"
	}
	if c.Stages == 0 {
		c.Stages = 5
	}
	if c.Scale == 0 {
		c.Scale = 30
	}
	if c.Horizon == 0 {
		c.Horizon = 12e-9
	}
	return c
}

// buildRing elaborates an n-stage ring oscillator and returns the
// circuit plus the per-stage device names.
func buildRing(tech device.Technology, stages int, vdd float64) (*circuit.Circuit, []string, error) {
	ckt := circuit.New()
	if err := ckt.AddDCVSource("VDD", "vdd", circuit.Ground, vdd); err != nil {
		return nil, nil, err
	}
	nm := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)
	pm := device.NewMOS(tech, device.PMOS, 4*tech.Lmin, tech.Lmin)
	var devices []string
	node := func(i int) string { return fmt.Sprintf("n%d", i%stages) }
	for i := 0; i < stages; i++ {
		in, out := node(i), node(i+1)
		nName := fmt.Sprintf("MN%d", i)
		pName := fmt.Sprintf("MP%d", i)
		if err := ckt.AddMOSFET(nName, out, in, circuit.Ground, nm); err != nil {
			return nil, nil, err
		}
		if err := ckt.AddMOSFET(pName, out, in, "vdd", pm); err != nil {
			return nil, nil, err
		}
		if err := ckt.AddCapacitor(fmt.Sprintf("C%d", i), out, circuit.Ground, 2e-15); err != nil {
			return nil, nil, err
		}
		// Companion RTN sources (drain↔source, opposing polarity by
		// the Eq (3) sign convention).
		if err := ckt.AddISource("IRTN_"+nName, circuit.Ground, out, waveform.Constant(0)); err != nil {
			return nil, nil, err
		}
		if err := ckt.AddISource("IRTN_"+pName, "vdd", out, waveform.Constant(0)); err != nil {
			return nil, nil, err
		}
		devices = append(devices, nName, pName)
	}
	return ckt, devices, nil
}

func ringInitial(stages int, vdd float64) map[string]float64 {
	init := map[string]float64{"vdd": vdd}
	for i := 0; i < stages; i++ {
		v := 0.0
		if i%2 == 0 {
			v = vdd
		}
		init[fmt.Sprintf("n%d", i)] = v
	}
	return init
}

// ringPeriods runs the transient and extracts the oscillation periods
// of node n0 from its rising V_dd/2 crossings, discarding the first few
// start-up cycles.
func ringPeriods(ckt *circuit.Circuit, stages int, vdd, horizon float64) ([]float64, error) {
	res, err := ckt.Transient(circuit.TransientSpec{
		T0: 0, T1: horizon, Dt: 1e-12,
		UIC: true, InitialV: ringInitial(stages, vdd),
	})
	if err != nil {
		return nil, err
	}
	v, err := res.Voltage("n0")
	if err != nil {
		return nil, err
	}
	crossings := v.Crossings(vdd / 2)
	// Keep rising edges only: value grows across the crossing.
	var rising []float64
	for _, t := range crossings {
		if v.Eval(t+2e-12) > v.Eval(t-2e-12) {
			rising = append(rising, t)
		}
	}
	if len(rising) < 6 {
		return nil, fmt.Errorf("experiments: ring produced only %d rising edges", len(rising))
	}
	var periods []float64
	for i := 3; i < len(rising); i++ { // skip start-up
		periods = append(periods, rising[i]-rising[i-1])
	}
	return periods, nil
}

// X4 measures the ring oscillator with and without RTN. The RTN pass
// uses the two-pass methodology: device biases from the clean run,
// uniformised trap paths, Eq (3) traces scaled by cfg.Scale.
func X4(cfg X4Config) (*X4Result, error) {
	cfg = cfg.defaults()
	tech := device.Node(cfg.Tech)
	vdd := tech.Vdd

	cleanCkt, devices, err := buildRing(tech, cfg.Stages, vdd)
	if err != nil {
		return nil, err
	}
	cleanRes, err := cleanCkt.Transient(circuit.TransientSpec{
		T0: 0, T1: cfg.Horizon, Dt: 1e-12,
		UIC: true, InitialV: ringInitial(cfg.Stages, vdd),
	})
	if err != nil {
		return nil, err
	}
	cleanRing, _, err := buildRing(tech, cfg.Stages, vdd)
	if err != nil {
		return nil, err
	}
	cleanPeriods, err := ringPeriods(cleanRing, cfg.Stages, vdd, cfg.Horizon)
	if err != nil {
		return nil, err
	}

	// RTN pass: traces per device from the clean biases.
	ctx := tech.TrapContext(vdd)
	profiler := tech.TrapProfiler()
	rtnCkt, _, err := buildRing(tech, cfg.Stages, vdd)
	if err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	for i, name := range devices {
		var dp device.MOSParams
		dp, err = rtnCkt.MOSFETParams(name)
		if err != nil {
			return nil, err
		}
		profile := profiler.Sample(dp.W, dp.L, ctx, root.Split(uint64(10+i)))
		vgs, id, err := cleanRes.DeviceBias(name)
		if err != nil {
			return nil, err
		}
		paths, err := markov.UniformiseProfile(profile, markov.PWLBias(vgs), 0, cfg.Horizon, root.Split(uint64(100+i)))
		if err != nil {
			return nil, err
		}
		trace, err := rtn.Compose(paths, dp, vgs, id, 0, cfg.Horizon, 4096)
		if err != nil {
			return nil, err
		}
		w, err := trace.Scale(cfg.Scale).PWL()
		if err != nil {
			return nil, err
		}
		if err := rtnCkt.SetISourceWaveform("IRTN_"+name, w); err != nil {
			return nil, err
		}
	}
	rtnPeriods, err := ringPeriods(rtnCkt, cfg.Stages, vdd, cfg.Horizon)
	if err != nil {
		return nil, err
	}

	res := &X4Result{
		Tech: cfg.Tech, Stages: cfg.Stages, Scale: cfg.Scale,
		CleanPeriodPs: num.Mean(cleanPeriods) * 1e12,
		CleanJitterPs: num.StdDev(cleanPeriods) * 1e12,
		RTNPeriodPs:   num.Mean(rtnPeriods) * 1e12,
		RTNJitterPs:   num.StdDev(rtnPeriods) * 1e12,
		CleanCycles:   len(cleanPeriods),
		RTNCycles:     len(rtnPeriods),
	}
	if res.CleanPeriodPs > 0 {
		res.PeriodShiftFrac = math.Abs(res.RTNPeriodPs-res.CleanPeriodPs) / res.CleanPeriodPs
	}
	return res, nil
}

// WriteText renders the EXP-X4 summary.
func (r *X4Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "EXP-X4 — RTN in a %d-stage %s ring oscillator (×%.0f)\n", r.Stages, r.Tech, r.Scale)
	fmt.Fprintf(w, "%8s %14s %16s %8s\n", "run", "period (ps)", "c2c jitter (ps)", "cycles")
	fmt.Fprintf(w, "%8s %14.2f %16.3f %8d\n", "clean", r.CleanPeriodPs, r.CleanJitterPs, r.CleanCycles)
	fmt.Fprintf(w, "%8s %14.2f %16.3f %8d\n", "RTN", r.RTNPeriodPs, r.RTNJitterPs, r.RTNCycles)
	fmt.Fprintf(w, "period shift: %.2f%%\n", r.PeriodShiftFrac*100)
}

package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// CSV export of the literal figure series, so the paper's plots can be
// regenerated with any plotting tool:
//
//	go run ./cmd/figures -csvdir out -only fig7,fig8
//
// writes fig7_<sweep>_point<k>_{autocorr,psd}.csv and fig8_*.csv.

func writeCSV(dir, name, header string, rows func(w *bufio.Writer)) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, header)
	rows(w)
	err = w.Flush()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteCurvesCSV dumps every captured point's R(τ) and S(f) series.
// Points without curves (Fig7Config.Curves unset) are skipped.
func (r *Fig7Result) WriteCurvesCSV(dir string) error {
	for k, p := range r.Points {
		c := p.Curve
		if c == nil {
			continue
		}
		base := fmt.Sprintf("fig7_%s_point%d", r.Sweep, k)
		if err := writeCSV(dir, base+"_autocorr.csv", "tau_s,R_sim,R_analytic", func(w *bufio.Writer) {
			for i := range c.LagS {
				fmt.Fprintf(w, "%.9e,%.9e,%.9e\n", c.LagS[i], c.REmp[i], c.RAna[i])
			}
		}); err != nil {
			return err
		}
		if err := writeCSV(dir, base+"_psd.csv", "freq_hz,S_sim,S_analytic,S_thermal", func(w *bufio.Writer) {
			for i := range c.FreqHz {
				fmt.Fprintf(w, "%.9e,%.9e,%.9e,%.9e\n", c.FreqHz[i], c.SEmp[i], c.SAna[i], p.ThermalPSD)
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesCSV dumps the five Fig 8 panels as CSV files.
func (r *Fig8Result) WriteSeriesCSV(dir string) error {
	if r.QClean == nil {
		return fmt.Errorf("experiments: Fig8 series not captured")
	}
	if err := writeCSV(dir, "fig8_q_waveforms.csv", "time_s,q_clean_V,q_rtn_V", func(w *bufio.Writer) {
		const n = 2000
		t0, t1 := r.QClean.Begin(), r.QClean.End()
		for i := 0; i <= n; i++ {
			t := t0 + (t1-t0)*float64(i)/n
			fmt.Fprintf(w, "%.9e,%.6f,%.6f\n", t, r.QClean.Eval(t), r.QRTN.Eval(t))
		}
	}); err != nil {
		return err
	}
	occ := func(name string, times []float64, counts []int) error {
		return writeCSV(dir, "fig8_nfilled_"+name+".csv", "time_s,n_filled", func(w *bufio.Writer) {
			for i := range times {
				fmt.Fprintf(w, "%.9e,%d\n", times[i], counts[i])
			}
		})
	}
	if err := occ("m5", r.M5Times, r.M5Counts); err != nil {
		return err
	}
	if err := occ("m6", r.M6Times, r.M6Counts); err != nil {
		return err
	}
	return writeCSV(dir, "fig8_irtn_m2.csv", "time_s,i_rtn_A", func(w *bufio.Writer) {
		for i := range r.M2Trace.T {
			fmt.Fprintf(w, "%.9e,%.9e\n", r.M2Trace.T[i], r.M2Trace.I[i])
		}
	})
}

// WriteSeriesCSV dumps the Fig 3 per-device spectra would require
// re-running; instead the T3 scan, being already tabular, exports
// directly.
func (r *T3Result) WriteSeriesCSV(dir string) error {
	return writeCSV(dir, "t3_vmin_scan.csv", "vdd_V,clean_errors,rtn_errors", func(w *bufio.Writer) {
		for _, row := range r.Rows {
			fmt.Fprintf(w, "%.3f,%d,%d\n", row.Vdd, row.CleanErrs, row.RTNErrs)
		}
	})
}

package experiments

import (
	"fmt"
	"io"
	"math"

	"samurai/internal/device"
	"samurai/internal/rng"
	"samurai/internal/rtn"
	"samurai/internal/units"
)

// Fig2Row is one technology's V_dd margin stack: the minimum supply
// required once each non-ideality is added on top of the static-noise
// baseline (paper Fig 2, originally Renesas measurement data — here a
// parametric model whose RTN increment comes from this repo's own trap
// statistics).
type Fig2Row struct {
	Tech string
	// VddScaling is the node's nominal supply — the paper's downward
	// sloping dashed line.
	VddScaling float64
	// Static is the supply needed to overcome static noise alone.
	Static float64
	// PlusVariation adds local/global Vt variation (6σ).
	PlusVariation float64
	// PlusNBTI adds the NBTI aging guard band.
	PlusNBTI float64
	// PlusRTN adds the RTN increment — computed from the trap model:
	// expected active trap count × per-trap ΔVt × a 3σ tail factor.
	PlusRTN float64
	// RTNIncrement is the RTN-only contribution in volts.
	RTNIncrement float64
	// ActiveTraps is the expected count of bias-active traps on the
	// critical (pull-down) device.
	ActiveTraps float64
	// CorrelationCredit is the margin recovered when the NBTI–RTN
	// correlation (common trap origin, §I-B) is accounted for.
	CorrelationCredit float64
	// OverLine reports whether the full stack exceeds the scaling line
	// (margin exhausted) and whether it would still fit without RTN.
	OverLine, FitsWithoutRTN bool
}

// Fig2Result is the margin stack across all built-in nodes.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2Config controls the margin model.
type Fig2Config struct {
	Seed uint64
	// StaticFrac is the static-noise supply fraction (default 0.62).
	StaticFrac float64
	// SigmaCount is the variation guard band in σVt units (default 6).
	SigmaCount float64
	// NBTIRef is the NBTI guard band at the 130nm reference (default
	// 20 mV), scaled by (L_ref/L)^0.7 as stress fields grow.
	NBTIRef float64
	// CorrRho is the assumed NBTI–RTN correlation credit factor
	// (default 0.4 of the smaller contribution).
	CorrRho float64
	// ActivityThreshold defines "active" traps (default 0.05).
	ActivityThreshold float64
	// SampleDevices is the Monte-Carlo size for estimating the active
	// trap count (default 200).
	SampleDevices int
}

func (c Fig2Config) defaults() Fig2Config {
	if c.StaticFrac == 0 {
		c.StaticFrac = 0.62
	}
	if c.SigmaCount == 0 {
		c.SigmaCount = 6
	}
	if c.NBTIRef == 0 {
		c.NBTIRef = 0.020
	}
	if c.CorrRho == 0 {
		c.CorrRho = 0.4
	}
	if c.ActivityThreshold == 0 {
		c.ActivityThreshold = 0.05
	}
	if c.SampleDevices == 0 {
		c.SampleDevices = 200
	}
	return c
}

// Fig2 builds the margin stack for every built-in technology node.
func Fig2(cfg Fig2Config) (*Fig2Result, error) {
	cfg = cfg.defaults()
	root := rng.New(cfg.Seed)
	res := &Fig2Result{}
	refL := device.Node("130nm").Lmin
	for i, name := range device.Nodes() {
		tech := device.Node(name)
		pd := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)

		// RTN increment from the trap model: expected number of
		// bias-active traps on the pull-down, each shifting Vt by
		// q/(Cox·W·L), with a 3× tail factor for the worst cell in a
		// large array.
		active := expectedActiveTraps(tech, pd, cfg, root.Split(uint64(i)))
		dVtPerTrap := rtn.DeltaVt(pd)
		rtnInc := 3 * active * dVtPerTrap

		nbti := cfg.NBTIRef * math.Pow(refL/tech.Lmin, 0.7)
		static := cfg.StaticFrac * tech.Vdd
		variation := cfg.SigmaCount * tech.SigmaVt

		row := Fig2Row{
			Tech:          name,
			VddScaling:    tech.Vdd,
			Static:        static,
			PlusVariation: static + variation,
			PlusNBTI:      static + variation + nbti,
			PlusRTN:       static + variation + nbti + rtnInc,
			RTNIncrement:  rtnInc,
			ActiveTraps:   active,
			// Correlated NBTI/RTN share trap origins: part of the two
			// guard bands overlaps.
			CorrelationCredit: cfg.CorrRho * math.Min(nbti, rtnInc),
		}
		row.OverLine = row.PlusRTN > row.VddScaling
		row.FitsWithoutRTN = row.PlusNBTI <= row.VddScaling
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// expectedActiveTraps Monte-Carlo-estimates the mean count of traps on
// the device whose activity at nominal bias exceeds the threshold.
func expectedActiveTraps(tech device.Technology, dev device.MOSParams, cfg Fig2Config, r *rng.Stream) float64 {
	ctx := tech.TrapContext(tech.Vdd)
	profiler := tech.TrapProfiler()
	total := 0
	for d := 0; d < cfg.SampleDevices; d++ {
		profile := profiler.Sample(dev.W, dev.L, ctx, r.Split(uint64(d)))
		total += len(profile.ActiveTraps(tech.Vdd, cfg.ActivityThreshold))
	}
	return float64(total) / float64(cfg.SampleDevices)
}

// WriteText renders the stack as the textual equivalent of the paper's
// stacked-bar figure.
func (r *Fig2Result) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Fig 2 — V_dd margin stack vs technology (all voltages in V)")
	fmt.Fprintf(w, "%6s %8s %8s %8s %8s %8s %9s %8s %10s\n",
		"tech", "Vdd", "static", "+var", "+NBTI", "+RTN", "RTN inc", "act.trp", "verdict")
	for _, row := range r.Rows {
		verdict := "fits"
		if row.OverLine {
			verdict = "OVER LINE"
			if row.FitsWithoutRTN {
				verdict = "RTN-LIMITED"
			}
		}
		fmt.Fprintf(w, "%6s %8.3f %8.3f %8.3f %8.3f %8.3f %9.4f %8.2f %10s\n",
			row.Tech, row.VddScaling, row.Static, row.PlusVariation,
			row.PlusNBTI, row.PlusRTN, row.RTNIncrement, row.ActiveTraps, verdict)
	}
	fmt.Fprintf(w, "(RTN increment = 3 × E[active traps] × q/(Cox·W·L); kT = %.4f eV)\n",
		units.ThermalEnergyEV(units.RoomTemperature))
}

// RTNGrowth returns the ratio of the newest node's RTN increment to the
// oldest's — the paper's "steadily increasing impact" claim.
func (r *Fig2Result) RTNGrowth() float64 {
	if len(r.Rows) < 2 || r.Rows[0].RTNIncrement == 0 {
		return math.Inf(1)
	}
	return r.Rows[len(r.Rows)-1].RTNIncrement / r.Rows[0].RTNIncrement
}

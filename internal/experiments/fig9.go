package experiments

import (
	"fmt"
	"io"

	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/rtn"
	"samurai/internal/sram"
	"samurai/internal/waveform"
)

// F9Result is the read-failure analysis of the paper's footnote 2
// ("RTN-induced SRAM read failures have also been reported. SAMURAI is
// capable of predicting these too"): the full methodology applied to
// read cycles on a read-stressed cell.
type F9Result struct {
	Tech  string
	Vdd   float64
	Reads int
	Scale float64
	// At ×1 and ×Scale: destructive reads (stored bit flipped) and
	// incorrect sensing.
	DisturbedUnscaled, DisturbedScaled   int
	WrongValueUnscaled, WrongValueScaled int
	// CleanDeltaV and ScaledDeltaVMin track the sense margin erosion.
	CleanDeltaV, ScaledDeltaVMin float64
}

// F9Config controls EXP-F9.
type F9Config struct {
	Tech    string
	VddFrac float64
	Scale   float64
	Reads   int
	Seed    uint64
}

func (c F9Config) defaults() F9Config {
	if c.Tech == "" {
		c.Tech = "32nm"
	}
	if c.VddFrac == 0 {
		c.VddFrac = 2.0 / 3.0
	}
	if c.Scale == 0 {
		c.Scale = 300
	}
	if c.Reads == 0 {
		c.Reads = 12
	}
	return c
}

// F9 runs the two-pass methodology on read cycles: a clean read
// extracts per-transistor biases, SAMURAI generates RTN traces on
// sampled trap populations, and the RTN-injected reads are classified
// for destructive flips and sense errors. Each read uses a fresh trap
// population (different seed), modelling different cells of an array.
func F9(cfg F9Config) (*F9Result, error) {
	cfg = cfg.defaults()
	tech := device.Node(cfg.Tech)
	vdd := cfg.VddFrac * tech.Vdd
	readCfg := sram.ReadMarginalCellConfig(tech, vdd)

	const storedBit = 0 // reading a 0 stresses the Q-side pull-down
	clean, err := sram.EvaluateRead(readCfg, storedBit, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: clean read: %w", err)
	}
	if !clean.Correct || clean.Disturbed {
		return nil, fmt.Errorf("experiments: clean read failed: %+v", clean)
	}

	res := &F9Result{
		Tech: cfg.Tech, Vdd: vdd, Reads: cfg.Reads, Scale: cfg.Scale,
		CleanDeltaV:     clean.DeltaV,
		ScaledDeltaVMin: clean.DeltaV,
	}
	ctx := tech.TrapContext(vdd)
	profiler := tech.TrapProfiler()
	params, err := sram.DeviceParams(readCfg.Cell)
	if err != nil {
		return nil, err
	}
	t1 := readCfg.Timing.Total
	root := rng.New(cfg.Seed)

	for k := 0; k < cfg.Reads; k++ {
		r := root.Split(uint64(k))
		traces := map[string]*waveform.PWL{}
		tracesScaled := map[string]*waveform.PWL{}
		for i, name := range sram.Transistors {
			dev := params[name]
			profile := profiler.Sample(dev.W, dev.L, ctx, r.Split(uint64(10+i)))
			vgs, id, err := clean.Trans.DeviceBias(name)
			if err != nil {
				return nil, err
			}
			paths, err := markov.UniformiseProfile(profile, markov.PWLBias(vgs), 0, t1, r.Split(uint64(20+i)))
			if err != nil {
				return nil, err
			}
			trace, err := rtn.Compose(paths, dev, vgs, id, 0, t1, 1024)
			if err != nil {
				return nil, err
			}
			w, err := trace.PWL()
			if err != nil {
				return nil, err
			}
			traces[name] = w
			scaled, err := trace.Scale(cfg.Scale).PWL()
			if err != nil {
				return nil, err
			}
			tracesScaled[name] = scaled
		}
		un, err := sram.EvaluateRead(readCfg, storedBit, traces, 0)
		if err != nil {
			return nil, err
		}
		sc, err := sram.EvaluateRead(readCfg, storedBit, tracesScaled, 0)
		if err != nil {
			return nil, err
		}
		if un.Disturbed {
			res.DisturbedUnscaled++
		}
		if !un.Correct {
			res.WrongValueUnscaled++
		}
		if sc.Disturbed {
			res.DisturbedScaled++
		}
		if !sc.Correct {
			res.WrongValueScaled++
		}
		// Track the worst sense margin among still-correct scaled
		// reads (read slowdown).
		if sc.Correct && absF(sc.DeltaV) < absF(res.ScaledDeltaVMin) {
			res.ScaledDeltaVMin = sc.DeltaV
		}
	}
	return res, nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// WriteText renders the EXP-F9 table.
func (r *F9Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "EXP-F9 — RTN-induced read failures (%s read-stressed cell, Vdd=%.2f V, %d reads of a stored 0)\n",
		r.Tech, r.Vdd, r.Reads)
	fmt.Fprintf(w, "%12s %12s %12s\n", "RTN scale", "disturbed", "wrong value")
	fmt.Fprintf(w, "%12s %12d %12d\n", "×1", r.DisturbedUnscaled, r.WrongValueUnscaled)
	fmt.Fprintf(w, "%12s %12d %12d\n", fmt.Sprintf("×%.0f", r.Scale), r.DisturbedScaled, r.WrongValueScaled)
	fmt.Fprintf(w, "clean sense margin %.3f V; worst surviving margin at ×%.0f: %.3f V\n",
		r.CleanDeltaV, r.Scale, r.ScaledDeltaVMin)
}

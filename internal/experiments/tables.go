package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"samurai/internal/baseline"
	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/rtn"
	"samurai/internal/trap"
	"samurai/internal/units"
)

// ---------------------------------------------------------------------
// EXP-T1: uniformisation vs time-discretised Bernoulli baseline.
// ---------------------------------------------------------------------

// T1Row compares the two simulators at one baseline step size.
type T1Row struct {
	// DtOverTau is the baseline step as a fraction of the mean dwell.
	DtOverTau float64
	// BaselineErr and UniformErr are the max |P₁(t)| deviations of the
	// ensemble occupancy from the exact ODE solution.
	BaselineErr, UniformErr float64
	// BaselineSteps and UniformEvents are the per-path work performed.
	BaselineSteps, UniformEvents float64
	// BaselineNs and UniformNs are measured per-path wall times.
	BaselineNs, UniformNs float64
}

// T1Result is the accuracy/efficiency table (implied by §III: the
// uniformised chain is exact at event-driven cost, while a discretised
// simulator pays O(dt) bias at O(1/dt) cost).
type T1Result struct {
	Rows []T1Row
	// Paths is the ensemble size used for the error estimates.
	Paths int
}

// T1Config controls EXP-T1.
type T1Config struct {
	Seed  uint64
	Paths int // default 4000
}

// T1 runs a single trap under a sinusoid-modulated bias (a demanding
// non-stationary case) with both simulators, comparing their ensemble
// occupancies against the exact ODE.
func T1(cfg T1Config) (*T1Result, error) {
	if cfg.Paths == 0 {
		cfg.Paths = 4000
	}
	tech := device.Node("90nm")
	ctx := tech.TrapContext(tech.Vdd)
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0.02}
	ls := ctx.RateSum(tr)
	// Bias oscillating through the trap's active window at a period
	// comparable to the dwell time — strongly non-stationary.
	cEff := ctx.Coupling * ctx.EffectiveCoupling(tr)
	vStar := ctx.VRef + tr.E/cEff
	amp := 4 * units.ThermalVoltage(units.RoomTemperature) / cEff
	period := 6 / ls
	bias := func(t float64) float64 {
		return vStar + amp*math.Sin(2*math.Pi*t/period)
	}
	t0, t1 := 0.0, 5*period
	tr.InitFilled = false
	const gridN = 100
	_, pExact := markov.OccupancyODE(ctx, tr, bias, t0, t1, 0, gridN)

	root := rng.New(cfg.Seed)
	res := &T1Result{Paths: cfg.Paths}

	// Uniformisation reference (one row-shared measurement).
	uniErr, uniEvents, uniNs, err := t1Uniform(ctx, tr, bias, t0, t1, pExact, cfg.Paths, root.Split(1))
	if err != nil {
		return nil, err
	}
	for i, frac := range []float64{1.0, 0.3, 0.1, 0.03} {
		dt := frac / ls
		bErr, bSteps, bNs, err := t1Baseline(ctx, tr, bias, t0, t1, dt, pExact, cfg.Paths, root.Split(uint64(10+i)))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, T1Row{
			DtOverTau:     frac,
			BaselineErr:   bErr,
			UniformErr:    uniErr,
			BaselineSteps: bSteps,
			UniformEvents: uniEvents,
			BaselineNs:    bNs,
			UniformNs:     uniNs,
		})
	}
	return res, nil
}

func t1Uniform(ctx trap.Context, tr trap.Trap, bias markov.BiasFunc, t0, t1 float64, pExact []float64, nPaths int, r *rng.Stream) (maxErr, events, perPathNs float64, err error) {
	grid := len(pExact) - 1
	counts := make([]float64, grid+1)
	start := time.Now()
	total := 0
	for k := 0; k < nPaths; k++ {
		p, e := markov.Uniformise(ctx, tr, bias, t0, t1, r.Split(uint64(k)))
		if e != nil {
			return 0, 0, 0, e
		}
		total += p.Transitions()
		accumulate(p, t0, t1, counts)
	}
	elapsed := time.Since(start)
	maxErr = maxAbsDiff(counts, pExact, nPaths)
	// Events ≈ candidates: rate·horizon (transitions ≤ candidates).
	events = ctx.RateSum(tr) * (t1 - t0)
	return maxErr, events, float64(elapsed.Nanoseconds()) / float64(nPaths), nil
}

func t1Baseline(ctx trap.Context, tr trap.Trap, bias markov.BiasFunc, t0, t1, dt float64, pExact []float64, nPaths int, r *rng.Stream) (maxErr, steps, perPathNs float64, err error) {
	grid := len(pExact) - 1
	counts := make([]float64, grid+1)
	start := time.Now()
	for k := 0; k < nPaths; k++ {
		p, e := markov.DiscretisedBernoulli(ctx, tr, bias, t0, t1, dt, r.Split(uint64(k)))
		if e != nil {
			return 0, 0, 0, e
		}
		accumulate(p, t0, t1, counts)
	}
	elapsed := time.Since(start)
	return maxAbsDiff(counts, pExact, nPaths), (t1 - t0) / dt, float64(elapsed.Nanoseconds()) / float64(nPaths), nil
}

func accumulate(p *markov.Path, t0, t1 float64, counts []float64) {
	grid := len(counts) - 1
	for i := 0; i <= grid; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(grid)
		if p.StateAt(t) {
			counts[i]++
		}
	}
}

func maxAbsDiff(counts, pExact []float64, n int) float64 {
	m := 0.0
	for i := range counts {
		d := math.Abs(counts[i]/float64(n) - pExact[i])
		if d > m {
			m = d
		}
	}
	return m
}

// WriteText renders the EXP-T1 table.
func (r *T1Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "EXP-T1 — uniformisation (exact) vs discretised Bernoulli baseline (%d paths)\n", r.Paths)
	fmt.Fprintf(w, "%10s %14s %14s %14s %14s %12s %12s\n",
		"dt/tau", "baseline err", "uniform err", "base steps", "uni events", "base ns", "uni ns")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10.2f %14.4f %14.4f %14.0f %14.0f %12.0f %12.0f\n",
			row.DtOverTau, row.BaselineErr, row.UniformErr,
			row.BaselineSteps, row.UniformEvents, row.BaselineNs, row.UniformNs)
	}
}

// ---------------------------------------------------------------------
// EXP-T2: pessimism of stationary analysis.
// ---------------------------------------------------------------------

// T2Result quantifies the dB gap between a stationary worst-case RTN
// power prediction and the power realised under a switching gate (§I-B
// reports measured gaps of up to ~15 dB).
type T2Result struct {
	// Duty is the fraction of time the gate is high.
	Duty []float64
	// PredictedPower is the stationary worst-case prediction, A².
	PredictedPower float64
	// ActualPower[i] is the realised non-stationary power at Duty[i].
	ActualPower []float64
	// PessimismDB[i] = 10·log10(predicted/actual).
	PessimismDB []float64
	Traps       int
}

// T2Config controls EXP-T2.
type T2Config struct {
	Seed    uint64
	Samples int // reserved for PSD extensions
}

// T2 compares stationary worst-case RTN power against the realised
// power when the device's gate is duty-cycled, using the same trap
// population for both.
func T2(cfg T2Config) (*T2Result, error) {
	if cfg.Samples == 0 {
		cfg.Samples = 1 << 16
	}
	tech := device.Node("45nm")
	dev := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)
	ctx := tech.TrapContext(tech.Vdd)
	root := rng.New(cfg.Seed)
	profile := tech.TrapProfiler().Sample(dev.W, dev.L, ctx, root.Split(0))

	vHi, vLo := tech.Vdd, 0.0
	idHi := dev.Eval(vHi, vHi/2).Ids
	predicted := baseline.WorstCasePower(profile, dev, idHi, vLo, vHi)

	res := &T2Result{PredictedPower: predicted, Traps: len(profile.Traps)}
	// Switched ("cyclostationary") operation, Kolhatkar-style (paper
	// ref [2]): the gate is duty-cycled and the output noise is
	// measured by synchronous sampling at a fixed phase near the end
	// of each conducting window. Switching faster than a trap's
	// corner pins its occupancy, so the observed noise power falls
	// below the stationary worst-case prediction — the pessimism gap.
	const periods = 2000
	period := 1e-5
	horizon := float64(periods) * period
	dI := rtn.StepAmplitude(dev, vHi, idHi)

	// Partition the population: traps that equilibrate many times
	// within one period are exactly at their instantaneous stationary
	// distribution at every synchronous sample — their variance
	// contribution dI²·p(1−p)|_{vHi} is added in closed form, and the
	// event-driven simulation is reserved for the slow and mid traps
	// whose memory across periods is the whole point of the
	// non-stationary analysis. (Simulating a 10 GHz interface trap for
	// 2·10⁴ periods would cost ~10⁸ candidate events for a
	// contribution that is known analytically.)
	fastVar := 0.0
	slow := trap.Profile{Ctx: profile.Ctx}
	for _, tr := range profile.Traps {
		if ctx.RateSum(tr)*period > 50 {
			p := ctx.OccupancyProb(tr, vHi)
			fastVar += dI * dI * p * (1 - p)
		} else {
			slow.Traps = append(slow.Traps, tr)
		}
	}

	for i, duty := range []float64{1.0, 0.75, 0.5, 0.25} {
		bias := func(t float64) float64 {
			frac := t/period - math.Floor(t/period)
			if frac < duty {
				return vHi
			}
			return vLo
		}
		paths, err := markov.UniformiseProfile(slow, bias, 0, horizon, root.Split(uint64(100+i)))
		if err != nil {
			return nil, err
		}
		// Synchronous samples of N_filled at 90% through each
		// conducting window; Eq (3) converts to current.
		times, counts := rtn.NFilled(paths)
		samples := make([]float64, periods)
		for k := 0; k < periods; k++ {
			t := (float64(k) + 0.9*duty) * period
			samples[k] = dI * float64(rtn.CountAt(times, counts, t))
		}
		actual := variance(samples) + fastVar
		res.Duty = append(res.Duty, duty)
		res.ActualPower = append(res.ActualPower, actual)
		res.PessimismDB = append(res.PessimismDB, baseline.PessimismDB(predicted, actual))
	}
	return res, nil
}

func variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	s := 0.0
	for _, v := range x {
		d := v - mean
		s += d * d
	}
	return s / float64(len(x))
}

// WriteText renders the EXP-T2 table.
func (r *T2Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "EXP-T2 — stationary worst-case vs realised RTN power (%d traps)\n", r.Traps)
	fmt.Fprintf(w, "predicted worst-case power: %.4g A²\n", r.PredictedPower)
	fmt.Fprintf(w, "%8s %16s %14s\n", "duty", "actual power", "pessimism dB")
	for i := range r.Duty {
		fmt.Fprintf(w, "%8.2f %16.4g %14.1f\n", r.Duty[i], r.ActualPower[i], r.PessimismDB[i])
	}
}

// MaxPessimism returns the largest dB gap observed.
func (r *T2Result) MaxPessimism() float64 {
	m := math.Inf(-1)
	for _, v := range r.PessimismDB {
		if v > m && !math.IsInf(v, 1) {
			m = v
		}
	}
	return m
}

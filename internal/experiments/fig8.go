package experiments

import (
	"fmt"
	"io"

	samurai "samurai"
	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/rtn"
	"samurai/internal/sram"
	"samurai/internal/waveform"
)

// Fig8Occupancy summarises a transistor's trap activity split by the
// state of its gate net — the paper's plots (b) and (c) show that M5
// (gate = Q) toggles when Q is high and freezes when Q is low, and the
// mirror image for M6 (gate = Q̄).
type Fig8Occupancy struct {
	Transistor string
	Traps      int
	// TransRateGateHigh/Low are trap transitions per second while the
	// transistor's gate is above/below V_dd/2.
	TransRateGateHigh, TransRateGateLow float64
	// MeanFilledGateHigh/Low are the time-average filled counts.
	MeanFilledGateHigh, MeanFilledGateLow float64
}

// Fig8Result is the full-methodology demonstration.
type Fig8Result struct {
	Tech  string
	Vdd   float64
	Scale float64
	Bits  []int
	// CleanOK: plot (a) — the pattern writes correctly without RTN.
	CleanOK bool
	// M5, M6: plots (b), (c) — non-stationary occupancy statistics.
	M5, M6 Fig8Occupancy
	// M2TraceMax/Mean: plot (d) — the generated I_RTN for M2, A.
	M2TraceMax, M2TraceMean float64
	// ErrorCycles: plot (e) — write errors under ×Scale RTN.
	ErrorCycles []int
	SlowCycles  []int
	// UnscaledErrors is the error count at ×1 for contrast.
	UnscaledErrors int
	// Series data for CSV export (the literal plot curves): the clean
	// and RTN-injected Q waveforms, the filled-trap step functions of
	// M5/M6 and the M2 trace.
	QClean, QRTN       *waveform.PWL
	M5Times, M6Times   []float64
	M5Counts, M6Counts []int
	M2Trace            *rtn.Trace
}

// Fig8Config controls the methodology demonstration.
type Fig8Config struct {
	Tech    string
	VddFrac float64
	Scale   float64
	Seed    uint64
	// OccupancyEnsemble pools the plot-(b,c) occupancy statistics over
	// this many independently sampled trap populations (default 8) so
	// the reported contrast is not hostage to a single population's
	// fast-trap lottery. The headline run (plots a, d, e) still uses a
	// single population, exactly like the paper.
	OccupancyEnsemble int
}

func (c Fig8Config) defaults() Fig8Config {
	if c.Tech == "" {
		c.Tech = "32nm"
	}
	if c.VddFrac == 0 {
		c.VddFrac = 2.0 / 3.0
	}
	if c.Scale == 0 {
		c.Scale = 30
	}
	if c.OccupancyEnsemble == 0 {
		c.OccupancyEnsemble = 8
	}
	return c
}

// Fig8 runs the paper's §IV-B demonstration end to end: the bit pattern
// [1,1,0,1,0,1,0,0,1] is written to a marginal cell; SAMURAI generates
// per-transistor traces from the clean biases; the ×Scale accelerated
// re-simulation exhibits write errors while the unscaled one does not.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	cfg = cfg.defaults()
	tech := device.Node(cfg.Tech)
	vdd := cfg.VddFrac * tech.Vdd
	cellCfg, err := sram.MarginalCellConfig(sram.CellConfig{Tech: tech, Vdd: vdd})
	if err != nil {
		return nil, err
	}
	pattern := sram.Fig8Pattern(vdd)

	scaled, err := samurai.Run(samurai.Config{
		Tech: tech, Cell: cellCfg, Pattern: pattern,
		Seed: cfg.Seed, Scale: cfg.Scale,
	})
	if err != nil {
		return nil, err
	}
	// Unscaled contrast run on the same trap populations.
	unscaled, err := samurai.Run(samurai.Config{
		Tech: tech, Cell: cellCfg, Pattern: pattern,
		Seed: cfg.Seed, Scale: 1, Profiles: scaled.Profiles,
	})
	if err != nil {
		return nil, err
	}

	res := &Fig8Result{
		Tech: cfg.Tech, Vdd: vdd, Scale: cfg.Scale,
		Bits:           pattern.Bits,
		CleanOK:        scaled.Clean.NumError == 0,
		UnscaledErrors: unscaled.WithRTN.NumError,
	}
	res.M5, err = occupancyStats("M5", scaled, sram.NodeQ, vdd, tech, cfg)
	if err != nil {
		return nil, err
	}
	res.M6, err = occupancyStats("M6", scaled, sram.NodeQB, vdd, tech, cfg)
	if err != nil {
		return nil, err
	}
	res.M2TraceMax = scaled.Traces["M2"].MaxAbs()
	res.M2TraceMean = scaled.Traces["M2"].Mean()
	res.QClean = scaled.Clean.Q
	res.QRTN = scaled.WithRTN.Q
	res.M5Times, res.M5Counts = rtn.NFilled(scaled.Paths["M5"])
	res.M6Times, res.M6Counts = rtn.NFilled(scaled.Paths["M6"])
	res.M2Trace = scaled.Traces["M2"]
	for _, c := range scaled.WithRTN.Cycles {
		if !c.Written {
			res.ErrorCycles = append(res.ErrorCycles, c.Index)
		} else if c.Slow {
			res.SlowCycles = append(res.SlowCycles, c.Index)
		}
	}
	return res, nil
}

// occupancyStats splits a transistor's trap activity by its gate state
// in the clean run, pooled over an ensemble of trap populations.
//
// Transitions inside a short guard window after each gate edge are not
// attributed to either state: a falling gate edge forces exactly one
// relaxation emission per filled trap, which is the occupancy
// *following* the bias rather than sustained telegraph activity — the
// paper's exploded views show the sustained toggling, which is what the
// high/low rates here measure.
func occupancyStats(name string, run *samurai.Result, gateNode string, vdd float64, tech device.Technology, cfg Fig8Config) (Fig8Occupancy, error) {
	gate, err := run.Clean.Trans.Voltage(gateNode)
	if err != nil {
		return Fig8Occupancy{}, err
	}
	vgs, _, err := run.Clean.Trans.DeviceBias(name)
	if err != nil {
		return Fig8Occupancy{}, err
	}
	t0, t1 := gate.Begin(), gate.End()
	edges := gate.Crossings(vdd / 2)
	const guard = 150e-12
	afterEdge := func(t float64) bool {
		for _, e := range edges {
			if t >= e && t-e < guard {
				return true
			}
		}
		return false
	}

	st := Fig8Occupancy{Transistor: name, Traps: len(run.Paths[name])}
	dev := run.Config.Cell.Defaults()
	allParams, err := sram.DeviceParams(dev)
	if err != nil {
		return Fig8Occupancy{}, err
	}
	devParams := allParams[name]
	ctx := tech.TrapContext(dev.Vdd)
	profiler := tech.TrapProfiler()
	root := rng.New(cfg.Seed ^ 0x5f8a)

	var tHigh, tLow, fillHigh, fillLow float64
	var transHigh, transLow float64
	ensembles := cfg.OccupancyEnsemble
	for k := 0; k < ensembles; k++ {
		var paths []*markov.Path
		if k == 0 {
			paths = run.Paths[name] // the headline population
		} else {
			profile := profiler.Sample(devParams.W, devParams.L, ctx, root.Split(uint64(2*k)))
			paths, err = markov.UniformiseProfile(profile, markov.PWLBias(vgs), t0, t1, root.Split(uint64(2*k+1)))
			if err != nil {
				return Fig8Occupancy{}, err
			}
		}
		const probes = 2000
		dt := (t1 - t0) / probes
		times, counts := rtn.NFilled(paths)
		for i := 0; i < probes; i++ {
			t := t0 + (float64(i)+0.5)*dt
			nf := float64(rtn.CountAt(times, counts, t))
			if gate.Eval(t) > vdd/2 {
				tHigh += dt
				fillHigh += nf * dt
			} else {
				tLow += dt
				fillLow += nf * dt
			}
		}
		for _, p := range paths {
			for i := 1; i < len(p.Times); i++ {
				t := p.Times[i]
				if afterEdge(t) {
					continue
				}
				if gate.Eval(t) > vdd/2 {
					transHigh++
				} else {
					transLow++
				}
			}
		}
	}
	if tHigh > 0 {
		st.TransRateGateHigh = transHigh / tHigh
		st.MeanFilledGateHigh = fillHigh / tHigh
	}
	if tLow > 0 {
		st.TransRateGateLow = transLow / tLow
		st.MeanFilledGateLow = fillLow / tLow
	}
	return st, nil
}

// WriteText renders the five-plot summary.
func (r *Fig8Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Fig 8 — SAMURAI+SPICE methodology (%s marginal cell, Vdd=%.2f V, pattern %v)\n",
		r.Tech, r.Vdd, r.Bits)
	fmt.Fprintf(w, "(a) clean write pass: %v\n", r.CleanOK)
	occ := func(o Fig8Occupancy) {
		fmt.Fprintf(w, "    %s (%d traps): trans/s gate-high %.3g, gate-low %.3g; mean filled high %.2f, low %.2f\n",
			o.Transistor, o.Traps, o.TransRateGateHigh, o.TransRateGateLow,
			o.MeanFilledGateHigh, o.MeanFilledGateLow)
	}
	fmt.Fprintln(w, "(b,c) non-stationary trap occupancy:")
	occ(r.M5)
	occ(r.M6)
	fmt.Fprintf(w, "(d) M2 I_RTN trace: max %.3g A, mean %.3g A (×%.0f accelerated)\n",
		r.M2TraceMax, r.M2TraceMean, r.Scale)
	fmt.Fprintf(w, "(e) write errors at ×%.0f: cycles %v (slow: %v); at ×1: %d errors\n",
		r.Scale, r.ErrorCycles, r.SlowCycles, r.UnscaledErrors)
}

// NonStationaryContrast returns the M5 gate-high/gate-low transition
// rate ratio — the quantitative form of the paper's plots (b)/(c)
// (must be ≫ 1 for M5, and the mirrored statistic for M6).
func (r *Fig8Result) NonStationaryContrast() (m5, m6 float64) {
	m5 = ratio(r.M5.TransRateGateHigh, r.M5.TransRateGateLow)
	m6 = ratio(r.M6.TransRateGateHigh, r.M6.TransRateGateLow)
	return
}

func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return markovInf
	}
	return a / b
}

const markovInf = 1e30

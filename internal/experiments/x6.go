package experiments

import (
	"fmt"
	"io"

	"samurai/internal/markov"
	"samurai/internal/pll"
	"samurai/internal/rng"
	"samurai/internal/trap"
)

// X6Row is one RTN-amplitude point of the PLL cycle-slip study.
type X6Row struct {
	// DeltaFOverLock is δf normalised to the lock range K/2π.
	DeltaFOverLock float64
	Slips          int
	Predicted      float64
	TimeFilledFrac float64
}

// X6Result is the PLL cycle-slip conjecture made quantitative (paper
// future-work #4: "We also conjecture that RTN causes cycle slipping in
// Phase Locked Loops"): a VCO-bias trap toggles the oscillator
// frequency by δf; below the lock range the loop rides the glitches
// out, above it every filled interval produces cycle slips at the
// analytical beat rate.
type X6Result struct {
	LoopGain  float64
	TrapRate  float64
	Rows      []X6Row
	Threshold float64 // K/2π, Hz
}

// X6Config controls EXP-X6.
type X6Config struct {
	Seed uint64
	// LoopGain K in rad/s (default 1e6).
	LoopGain float64
}

func (c X6Config) defaults() X6Config {
	if c.LoopGain == 0 {
		c.LoopGain = 1e6
	}
	return c
}

// X6 simulates a trap whose dwell times are long against the loop time
// constant (so each capture is a frequency step the loop must absorb)
// and sweeps the RTN-induced VCO shift across the lock range.
func X6(cfg X6Config) (*X6Result, error) {
	cfg = cfg.defaults()
	k := cfg.LoopGain
	// Trap toggling ~200× slower than the loop: dwell ≈ 100/K.
	ctx := trap.DefaultContext(2e-9, 1.0)
	// Pick a depth whose rate sum lands near K/100 and an energy at
	// β ≈ 1 so the trap actually toggles.
	// RateSum = 1/(τ0·e^(γy)) = K/100 → y = ln(100/(τ0·K))/γ.
	// With τ0 = 1e-10 and K = 1e6: y = ln(1e6)/1e10 ≈ 1.38 nm.
	yDepth := 0.0
	for y := 0.0; y < ctx.Tox; y += ctx.Tox / 4096 {
		if ctx.RateSum(trap.Trap{Y: y}) <= k/100 {
			yDepth = y
			break
		}
	}
	if yDepth == 0 {
		return nil, fmt.Errorf("experiments: no trap depth slow enough for K=%g", k)
	}
	tr := trap.Trap{Y: yDepth, E: 0}
	ls := ctx.RateSum(tr)
	horizon := 40 / ls
	path, err := markov.Uniformise(ctx, tr, markov.ConstantBias(ctx.VRef), 0, horizon, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}

	res := &X6Result{LoopGain: k, TrapRate: ls, Threshold: k / (2 * 3.141592653589793)}
	for _, ratio := range []float64{0.5, 0.9, 1.5, 3.0} {
		df := ratio * res.Threshold
		out, err := pll.Simulate(pll.Config{K: k, DeltaF: df}, path)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, X6Row{
			DeltaFOverLock: ratio,
			Slips:          out.Slips,
			Predicted:      out.PredictedSlips,
			TimeFilledFrac: out.TimeFilled / horizon,
		})
	}
	return res, nil
}

// WriteText renders the EXP-X6 table.
func (r *X6Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "EXP-X6 — RTN-induced PLL cycle slipping (loop gain %.3g rad/s, lock range %.3g Hz, trap rate %.3g /s)\n",
		r.LoopGain, r.Threshold, r.TrapRate)
	fmt.Fprintf(w, "%14s %10s %12s %14s\n", "δf / lock", "slips", "predicted", "filled frac")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%14.2f %10d %12.1f %14.2f\n",
			row.DeltaFOverLock, row.Slips, row.Predicted, row.TimeFilledFrac)
	}
}

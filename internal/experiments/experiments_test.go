package experiments

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The experiment tests run reduced-size configurations: they assert the
// paper's qualitative claims (who wins, in which direction) rather than
// absolute numbers, and finish in seconds. The full-size runs live in
// the benchmark harness.

func TestFig2Claims(t *testing.T) {
	res, err := Fig2(Fig2Config{Seed: 1, SampleDevices: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Claim 1: the RTN increment grows monotonically under scaling.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].RTNIncrement <= res.Rows[i-1].RTNIncrement {
			t.Fatalf("RTN increment not growing at %s", res.Rows[i].Tech)
		}
	}
	if res.RTNGrowth() < 2 {
		t.Fatalf("RTN growth = %g, want ≥2 across nodes", res.RTNGrowth())
	}
	// Claim 2: active trap counts shrink into the "5–10" regime at the
	// newest node.
	newest := res.Rows[len(res.Rows)-1]
	if newest.ActiveTraps < 3 || newest.ActiveTraps > 15 {
		t.Fatalf("active traps at 32nm = %g, want a handful", newest.ActiveTraps)
	}
	// Claim 3: the newest node is pushed over the scaling line by RTN
	// specifically.
	if !newest.OverLine || !newest.FitsWithoutRTN {
		t.Fatalf("32nm should be RTN-limited: %+v", newest)
	}
	// Older nodes still fit.
	if res.Rows[0].OverLine {
		t.Fatal("130nm must not be margin-limited")
	}
	var buf bytes.Buffer
	res.WriteText(&buf)
	if !strings.Contains(buf.String(), "RTN-LIMITED") {
		t.Fatal("rendered table lacks the RTN-limited verdict")
	}
}

func TestFig3Claims(t *testing.T) {
	res, err := Fig3(Fig3Config{Seed: 5, Devices: 6, Samples: 1 << 16, Window: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	// Old tech: many traps; new tech: order-of-magnitude fewer.
	if res.Old.MeanTraps < 5*res.New.MeanTraps {
		t.Fatalf("trap count contrast too weak: %g vs %g", res.Old.MeanTraps, res.New.MeanTraps)
	}
	// The old technology must fit 1/f: slope near −1, tight scatter.
	if math.Abs(res.Old.MeanSlope+1) > 0.35 {
		t.Fatalf("old-tech slope %g, want ≈−1", res.Old.MeanSlope)
	}
	// The few-trap panel must scatter more.
	if res.New.SlopeStd < res.Old.SlopeStd {
		t.Fatalf("new-tech slope scatter (%g) not larger than old (%g)",
			res.New.SlopeStd, res.Old.SlopeStd)
	}
}

func TestFig5Claims(t *testing.T) {
	res, err := Fig5(Fig5Config{})
	if err != nil {
		t.Fatal(err)
	}
	cleanOK, midSlow, edgeError := res.Classify()
	if !cleanOK {
		t.Fatal("clean write failed")
	}
	if !midSlow {
		t.Fatal("mid-window glitch did not slow the write")
	}
	if !edgeError {
		t.Fatal("WL-edge glitch did not produce a write error")
	}
	var buf bytes.Buffer
	res.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "WRITE ERROR") || !strings.Contains(out, "SLOWDOWN") {
		t.Fatalf("rendered table missing outcomes:\n%s", out)
	}
}

func TestFig7Claims(t *testing.T) {
	for _, sweep := range []Fig7Sweep{SweepVgs, SweepEtr, SweepYtr} {
		res, err := Fig7(sweep, Fig7Config{Seed: 1, Samples: 1 << 16, SweepN: 3})
		if err != nil {
			t.Fatalf("%s: %v", sweep, err)
		}
		acc, psd := res.MaxErr()
		if acc > 0.10 {
			t.Fatalf("%s: autocorrelation error %g too large", sweep, acc)
		}
		if psd > 0.35 {
			t.Fatalf("%s: PSD error %g too large", sweep, psd)
		}
		for _, p := range res.Points {
			if p.Transitions < 100 {
				t.Fatalf("%s: too few transitions (%d) for valid statistics", sweep, p.Transitions)
			}
			if p.ThermalPSD <= 0 {
				t.Fatalf("%s: missing thermal floor", sweep)
			}
		}
	}
}

func TestFig7RateSumInvariant(t *testing.T) {
	// Within the Vgs sweep, λ_c+λ_e must be identical at every bias
	// (Eq 1) — the property that makes uniformisation exact.
	res, err := Fig7(SweepVgs, Fig7Config{Seed: 2, Samples: 1 << 14, SweepN: 4})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Points[0].RateSum
	for _, p := range res.Points {
		if math.Abs(p.RateSum-first) > 1e-9*first {
			t.Fatalf("rate sum varies across bias: %g vs %g", p.RateSum, first)
		}
	}
}

func TestFig8Claims(t *testing.T) {
	res, err := Fig8(Fig8Config{Seed: 1, OccupancyEnsemble: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CleanOK {
		t.Fatal("plot (a): clean pattern must write correctly")
	}
	if len(res.ErrorCycles) == 0 {
		t.Fatal("plot (e): ×30 RTN must produce at least one write error")
	}
	if res.UnscaledErrors != 0 {
		t.Fatal("unscaled RTN must not produce errors (they are rare events)")
	}
	m5, m6 := res.NonStationaryContrast()
	if m5 < 1.2 || m6 < 1.2 {
		t.Fatalf("non-stationary activity contrast too weak: M5 %g, M6 %g", m5, m6)
	}
	if res.M2TraceMax <= 0 {
		t.Fatal("plot (d): M2 trace empty")
	}
}

func TestT1Claims(t *testing.T) {
	res, err := T1(T1Config{Seed: 1, Paths: 1500})
	if err != nil {
		t.Fatal(err)
	}
	coarse := res.Rows[0]
	fine := res.Rows[len(res.Rows)-1]
	// The baseline's coarse-step bias must dominate the Monte-Carlo
	// noise floor, and shrink with dt.
	if coarse.BaselineErr < 3*coarse.UniformErr {
		t.Fatalf("coarse baseline bias %g not ≫ uniformisation error %g",
			coarse.BaselineErr, coarse.UniformErr)
	}
	if fine.BaselineErr > coarse.BaselineErr/3 {
		t.Fatalf("baseline bias did not shrink: %g → %g", coarse.BaselineErr, fine.BaselineErr)
	}
	// Cost: the fine baseline does far more work than uniformisation.
	if fine.BaselineSteps < 10*fine.UniformEvents {
		t.Fatalf("baseline steps %g vs uniform events %g", fine.BaselineSteps, fine.UniformEvents)
	}
}

func TestT2Claims(t *testing.T) {
	res, err := T2(T2Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The stationary worst-case must over-predict at every duty cycle.
	for i, db := range res.PessimismDB {
		if db < 0 {
			t.Fatalf("duty %g: negative pessimism %g dB", res.Duty[i], db)
		}
	}
	if res.MaxPessimism() < 2 {
		t.Fatalf("max pessimism %g dB, want a clear gap", res.MaxPessimism())
	}
}

func TestX1Claims(t *testing.T) {
	res, err := X1(X1Config{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Feedback must actually matter: waveforms differ visibly.
	if res.MaxQDiff < 0.05 {
		t.Fatalf("coupled and two-pass nearly identical (ΔQ=%g V)", res.MaxQDiff)
	}
}

func TestX2Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("MC-heavy experiment; skipped in -short mode (CI race gate)")
	}
	res, err := X2(X2Config{Cells: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.WithRTNFailed < res.VarOnlyFailed {
		t.Fatalf("RTN cannot reduce failures: %d vs %d", res.WithRTNFailed, res.VarOnlyFailed)
	}
	if res.WithRTNFailed == res.VarOnlyFailed {
		t.Fatalf("accelerated RTN should add failures at this margin (var %d, rtn %d)",
			res.VarOnlyFailed, res.WithRTNFailed)
	}
}

func TestF9Claims(t *testing.T) {
	res, err := F9(F9Config{Seed: 1, Reads: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.DisturbedUnscaled != 0 || res.WrongValueUnscaled != 0 {
		t.Fatalf("physical-amplitude RTN must not break reads: %+v", res)
	}
	if res.DisturbedScaled == 0 {
		t.Fatal("accelerated RTN should produce at least one destructive read")
	}
	// Sense margin must erode among surviving reads.
	if absF(res.ScaledDeltaVMin) >= absF(res.CleanDeltaV) {
		t.Fatalf("sense margin did not erode: clean %g, worst scaled %g",
			res.CleanDeltaV, res.ScaledDeltaVMin)
	}
}

func TestX3Claims(t *testing.T) {
	res, err := X3(X3Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Positive, significant correlation (se ≈ 1/√400 = 0.05).
	if res.Pearson < 0.1 {
		t.Fatalf("RTN–NBTI correlation %g, want clearly positive", res.Pearson)
	}
	if res.MarginCreditFrac <= 0 {
		t.Fatalf("joint budgeting yields no credit: %g", res.MarginCreditFrac)
	}
	if res.MeanRTNmV <= 0 || res.MeanNBTImV <= 0 {
		t.Fatal("degenerate metrics")
	}
}

func TestX4Claims(t *testing.T) {
	res, err := X4(X4Config{Seed: 1, Horizon: 6e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.CleanCycles < 20 || res.RTNCycles < 20 {
		t.Fatalf("too few oscillation cycles: %d/%d", res.CleanCycles, res.RTNCycles)
	}
	// RTN must add visible cycle-to-cycle jitter over the numerical
	// floor of the clean run.
	if res.RTNJitterPs < 3*res.CleanJitterPs {
		t.Fatalf("RTN jitter %g ps not clearly above clean floor %g ps",
			res.RTNJitterPs, res.CleanJitterPs)
	}
}

func TestAblationIntegrationMethodInvariant(t *testing.T) {
	res, err := AblateIntegrationMethod(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Errors != res.Rows[1].Errors {
		t.Fatalf("write-error verdict depends on integration scheme: %+v", res.Rows)
	}
}

func TestAblationTraceResolutionConverges(t *testing.T) {
	res, err := AblateTraceResolution(1)
	if err != nil {
		t.Fatal(err)
	}
	// The two finest settings must agree.
	n := len(res.Rows)
	if res.Rows[n-1].Errors != res.Rows[n-2].Errors {
		t.Fatalf("outcome not converged at fine resolution: %+v", res.Rows)
	}
}

func TestAblationWriteMarginMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("MC-heavy experiment; skipped in -short mode (CI race gate)")
	}
	res, err := AblateWriteMargin(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Errors < res.Rows[i-1].Errors {
			t.Fatalf("error count not monotone in margin tightness: %+v", res.Rows)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Errors <= first.Errors {
		t.Fatalf("tightest margin (%d errors) not worse than loosest (%d)", last.Errors, first.Errors)
	}
}

func TestX5Claims(t *testing.T) {
	res, err := X5(X5Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// VRT: exactly two discrete levels, clearly separated, with the
	// trap toggling between them.
	if res.LevelRatio < 1.05 {
		t.Fatalf("VRT levels not separated: %g", res.LevelRatio)
	}
	if res.Transitions < 3 {
		t.Fatalf("trap toggled only %d times", res.Transitions)
	}
	// DRV: trapped charge must raise the minimum retention voltage.
	if res.DRVShifted <= res.DRVBase {
		t.Fatalf("trapped charge did not raise DRV: %g → %g", res.DRVBase, res.DRVShifted)
	}
	// The shift must be on the order of the injected ΔVt (tens of mV),
	// not numerically negligible.
	if res.DRVShifted-res.DRVBase < 0.005 {
		t.Fatalf("DRV shift implausibly small: %g V", res.DRVShifted-res.DRVBase)
	}
}

func TestT3Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("MC-heavy experiment; skipped in -short mode (CI race gate)")
	}
	// Reduced scan around the known transition region for speed.
	res, err := T3(T3Config{VLo: 0.44, VHi: 0.52, Seeds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.RTNVmin <= res.CleanVmin {
		t.Fatalf("physical RTN must raise V_min: clean %g, rtn %g", res.CleanVmin, res.RTNVmin)
	}
	if res.DeltaVminMV < 5 || res.DeltaVminMV > 100 {
		t.Fatalf("ΔV_min = %g mV implausible", res.DeltaVminMV)
	}
	// Error counts must be monotone non-decreasing as Vdd falls.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].CleanErrs < res.Rows[i-1].CleanErrs {
			t.Fatalf("clean errors not monotone in Vdd: %+v", res.Rows)
		}
	}
}

func TestX6Claims(t *testing.T) {
	res, err := X6(X6Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.DeltaFOverLock < 1 {
			if row.Slips != 0 {
				t.Fatalf("slips inside the lock range at δf ratio %g: %d", row.DeltaFOverLock, row.Slips)
			}
			continue
		}
		if row.Slips == 0 {
			t.Fatalf("no slips at δf ratio %g", row.DeltaFOverLock)
		}
		// Above threshold the count must track the analytical beat
		// rate within a few percent.
		if diff := float64(row.Slips) - row.Predicted; diff > 0.05*row.Predicted+3 || -diff > 0.05*row.Predicted+3 {
			t.Fatalf("slips %d vs predicted %g at ratio %g", row.Slips, row.Predicted, row.DeltaFOverLock)
		}
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	f7, err := Fig7(SweepVgs, Fig7Config{Seed: 1, Samples: 1 << 14, SweepN: 2, Curves: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := f7.WriteCurvesCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, p := range f7.Points {
		if p.Curve == nil || len(p.Curve.LagS) == 0 || len(p.Curve.FreqHz) == 0 {
			t.Fatal("curves not captured")
		}
		if len(p.Curve.LagS) != len(p.Curve.REmp) || len(p.Curve.FreqHz) != len(p.Curve.SAna) {
			t.Fatal("curve columns misaligned")
		}
	}
	f8, err := Fig8(Fig8Config{Seed: 1, OccupancyEnsemble: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := f8.WriteSeriesCSV(dir); err != nil {
		t.Fatal(err)
	}
	t3, err := T3(T3Config{VLo: 0.47, VHi: 0.50, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := t3.WriteSeriesCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig7_Vgs_point0_autocorr.csv", "fig7_Vgs_point0_psd.csv",
		"fig8_q_waveforms.csv", "fig8_nfilled_m5.csv", "fig8_irtn_m2.csv",
		"t3_vmin_scan.csv",
	} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing export %s: %v", name, err)
		}
		if fi.Size() < 40 {
			t.Fatalf("export %s suspiciously small (%d bytes)", name, fi.Size())
		}
	}
}

func TestX7Claims(t *testing.T) {
	res, err := X7(X7Config{Seed: 1, Seeds: 2, Reads: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Write assist must strictly reduce error count, reaching zero at
	// the strongest level.
	if res.AssistErrors[0] == 0 {
		t.Fatal("baseline (no assist) shows no errors — stress too weak for the claim")
	}
	last := len(res.AssistErrors) - 1
	if res.AssistErrors[last] != 0 {
		t.Fatalf("strongest assist still fails %d writes", res.AssistErrors[last])
	}
	for i := 1; i < len(res.AssistErrors); i++ {
		if res.AssistErrors[i] > res.AssistErrors[i-1] {
			t.Fatalf("assist made things worse: %v", res.AssistErrors)
		}
	}
	// The 8T cell must never lose stored data, while the 6T does.
	if res.Disturbed6T == 0 {
		t.Fatal("6T baseline shows no destructive reads — stress too weak")
	}
	if res.Disturbed8T != 0 {
		t.Fatalf("8T cell lost data %d times", res.Disturbed8T)
	}
}

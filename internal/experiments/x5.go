package experiments

import (
	"fmt"
	"io"

	"samurai/internal/device"
	"samurai/internal/dram"
	"samurai/internal/rng"
	"samurai/internal/rtn"
	"samurai/internal/sram"
	"samurai/internal/trap"
)

// X5Result covers the remaining retention applications of future-work
// #4: (a) DRAM Variable Retention Time from a single slow access-device
// trap, and (b) the SRAM data-retention-voltage shift caused by trapped
// charge.
type X5Result struct {
	// --- DRAM VRT ---
	// TEmptyMs and TFilledMs are the two discrete retention levels.
	TEmptyMs, TFilledMs float64
	LevelRatio          float64
	Epochs              int
	Transitions         int
	FractionFilled      float64
	// --- SRAM DRV ---
	Tech string
	// DRVBase is the clean data-retention voltage and DRVShifted the
	// value with nElectrons trapped on pull-down M5.
	DRVBase, DRVShifted float64
	NElectrons          int
}

// X5Config controls EXP-X5.
type X5Config struct {
	Seed uint64
	// Epochs is the number of VRT retention measurements (default 400).
	Epochs int
	// NElectrons is the trapped-charge count for the DRV shift
	// (default 10 — a worst-case cluster on one pull-down).
	NElectrons int
	Tech       string
}

func (c X5Config) defaults() X5Config {
	if c.Epochs == 0 {
		c.Epochs = 400
	}
	if c.NElectrons == 0 {
		c.NElectrons = 10
	}
	if c.Tech == "" {
		c.Tech = "32nm"
	}
	return c
}

// X5 runs both retention studies.
func X5(cfg X5Config) (*X5Result, error) {
	cfg = cfg.defaults()

	// (a) DRAM VRT: thick-oxide access device, one deep slow trap at
	// β ≈ 1 under the retention bias.
	cell := dram.DefaultCellConfig()
	ctx := trap.DefaultContext(cell.Tox, 0)
	tr := trap.Trap{Y: 0.8 * cell.Tox, E: 0}
	vrt, err := dram.SimulateVRT(cell, tr, ctx, cfg.Epochs, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}

	// (b) SRAM DRV shift under trapped charge.
	tech := device.Node(cfg.Tech)
	sramCell := sram.CellConfig{Tech: tech}
	base, err := sram.DataRetentionVoltage(sramCell, nil, 0.01)
	if err != nil {
		return nil, err
	}
	pd := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)
	shift := float64(cfg.NElectrons) * rtn.DeltaVt(pd)
	shifted, err := sram.DataRetentionVoltage(sramCell, map[string]float64{"M5": shift}, 0.01)
	if err != nil {
		return nil, err
	}

	return &X5Result{
		TEmptyMs:       vrt.TEmpty * 1e3,
		TFilledMs:      vrt.TFilled * 1e3,
		LevelRatio:     vrt.LevelRatio(),
		Epochs:         cfg.Epochs,
		Transitions:    vrt.Transitions,
		FractionFilled: vrt.FractionFilled,
		Tech:           cfg.Tech,
		DRVBase:        base,
		DRVShifted:     shifted,
		NElectrons:     cfg.NElectrons,
	}, nil
}

// WriteText renders the EXP-X5 summary.
func (r *X5Result) WriteText(w io.Writer) {
	fmt.Fprintln(w, "EXP-X5 — retention effects (paper future-work #4, refs [22][23])")
	fmt.Fprintf(w, "DRAM VRT: retention switches between %.4g ms (trap empty) and %.4g ms (trap filled)\n",
		r.TEmptyMs, r.TFilledMs)
	fmt.Fprintf(w, "          level ratio %.3f; %d trap transitions over %d measurement epochs (%.0f%% filled)\n",
		r.LevelRatio, r.Transitions, r.Epochs, r.FractionFilled*100)
	fmt.Fprintf(w, "SRAM DRV (%s): %.3f V clean → %.3f V with %d electrons trapped on M5 (+%.1f mV)\n",
		r.Tech, r.DRVBase, r.DRVShifted, r.NElectrons, (r.DRVShifted-r.DRVBase)*1e3)
}

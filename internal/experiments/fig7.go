// Package experiments contains one driver per figure/table of the
// paper, shared by the benchmark harness (bench_test.go), the command
// line tools (cmd/...) and EXPERIMENTS.md generation. Every driver is
// deterministic given its seed and returns both structured results and
// a human-readable rendering.
package experiments

import (
	"fmt"
	"io"
	"math"

	"samurai/internal/analysis"
	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/num"
	"samurai/internal/rng"
	"samurai/internal/rtn"
	"samurai/internal/trap"
	"samurai/internal/units"
)

// Fig7Sweep identifies which trap parameter a validation run sweeps.
type Fig7Sweep string

const (
	// SweepVgs sweeps the gate bias at fixed trap position/energy.
	SweepVgs Fig7Sweep = "Vgs"
	// SweepEtr sweeps the trap energy level.
	SweepEtr Fig7Sweep = "Etr"
	// SweepYtr sweeps the trap depth into the oxide.
	SweepYtr Fig7Sweep = "Ytr"
)

// Fig7Point is the validation outcome for one trap configuration:
// simulated-vs-analytical agreement of R(τ) and S(f) at constant bias.
type Fig7Point struct {
	// Swept parameter value (V, eV or m depending on the sweep).
	Value float64
	// Trap and bias actually simulated.
	Trap trap.Trap
	Vgs  float64
	// RateSum is λ_c+λ_e (Eq 1); POcc the stationary fill probability.
	RateSum, POcc float64
	// Transitions actually realised in the trace.
	Transitions int
	// AutocorrErr is the mean relative error of the empirical R(τ)
	// against the analytical expression over τ ∈ [0, 4/λs].
	AutocorrErr float64
	// PSDErr is the median relative error of the Welch PSD against the
	// analytical Lorentzian over the resolved band.
	PSDErr float64
	// ThermalPSD is the device thermal-noise floor 8/3·kT·gm (A²/Hz)
	// at this bias, for the Fig 7(d–f) floor line.
	ThermalPSD float64
	// CornerHz is the analytical Lorentzian corner frequency.
	CornerHz float64
	// Curve holds the decimated R(τ)/S(f) series (simulated and
	// analytical) when Fig7Config.Curves is set — the literal plot
	// data of the paper's panels.
	Curve *Fig7Curve
}

// Fig7Curve is the plot data of one validation point.
type Fig7Curve struct {
	LagS, REmp, RAna   []float64
	FreqHz, SEmp, SAna []float64
}

// Fig7Result is a full validation sweep (one panel pair of Fig 7).
type Fig7Result struct {
	Sweep  Fig7Sweep
	Points []Fig7Point
}

// Fig7Config controls the validation experiment.
type Fig7Config struct {
	Tech string
	Seed uint64
	// Samples per trace; zero → 1<<19.
	Samples int
	// SweepN points per sweep; zero → 5.
	SweepN int
	// Curves records the decimated R(τ)/S(f) series per point for CSV
	// export (the literal figure data).
	Curves bool
}

func (c Fig7Config) defaults() Fig7Config {
	if c.Tech == "" {
		c.Tech = "90nm"
	}
	if c.Samples == 0 {
		c.Samples = 1 << 19
	}
	if c.SweepN == 0 {
		c.SweepN = 5
	}
	return c
}

// Fig7 runs one validation sweep: two of {V_gs, E_tr, y_tr} fixed at
// typical values, the third swept, each configuration simulated with
// Algorithm 1 under constant bias and compared against the analytical
// stationary expressions (paper refs [3], [5]).
func Fig7(sweep Fig7Sweep, cfg Fig7Config) (*Fig7Result, error) {
	cfg = cfg.defaults()
	tech := device.Node(cfg.Tech)
	ctx := tech.TrapContext(tech.Vdd)
	dev := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)
	root := rng.New(cfg.Seed)

	// Typical fixed values: a mid-oxide trap near the Fermi level,
	// biased at nominal Vdd. The sweeps cover the "appropriate range"
	// of the paper — the span over which the trap is genuinely active
	// (stationary occupancy between ~5% and ~95%); outside it the trap
	// is pinned and both the estimators and the analytical expressions
	// degenerate to constants.
	const yFrac = 0.45
	baseTrap := trap.Trap{Y: yFrac * ctx.Tox, E: 0.02}
	kt := units.ThermalEnergyEV(units.RoomTemperature)
	// Gate bias at which this trap's β = 1 (maximum activity).
	cEff := ctx.Coupling * ctx.EffectiveCoupling(baseTrap)
	vStar := ctx.VRef + baseTrap.E/cEff
	baseVgs := vStar

	var values []float64
	switch sweep {
	case SweepVgs:
		half := 3 * kt / cEff // p from ~0.05 to ~0.95
		values = num.Linspace(vStar-half, vStar+half, cfg.SweepN)
	case SweepEtr:
		values = num.Linspace(baseTrap.E-3*kt, baseTrap.E+3*kt, cfg.SweepN)
	case SweepYtr:
		values = num.Linspace(0.30*ctx.Tox, 0.60*ctx.Tox, cfg.SweepN)
	default:
		return nil, fmt.Errorf("experiments: unknown sweep %q", sweep)
	}

	res := &Fig7Result{Sweep: sweep}
	for i, v := range values {
		tr := baseTrap
		vgs := baseVgs
		switch sweep {
		case SweepVgs:
			vgs = v
		case SweepEtr:
			tr.E = v
		case SweepYtr:
			tr.Y = v
		}
		pt, err := validateTrap(ctx, tr, vgs, dev, cfg.Samples, cfg.Curves, root.Split(uint64(i)))
		if err != nil {
			return nil, err
		}
		pt.Value = v
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// validateTrap simulates one trap at constant bias long enough for
// ~10⁴ expected transitions, then compares empirical R(τ) and S(f)
// against the analytical Lorentzian forms.
func validateTrap(ctx trap.Context, tr trap.Trap, vgs float64, dev device.MOSParams, samples int, curves bool, r *rng.Stream) (Fig7Point, error) {
	ls := ctx.RateSum(tr)
	p := ctx.OccupancyProb(tr, vgs)
	// Effective transition rate of the telegraph process: 2·λc·λe/λs.
	lc, le := ctx.Rates(tr, vgs)
	transRate := 2 * lc * le / ls
	if transRate <= 0 {
		return Fig7Point{}, fmt.Errorf("experiments: trap pinned at this bias (p=%g)", p)
	}
	// Horizon: aim for ~2·10⁴ transitions; sample so the mean dwell is
	// well resolved.
	horizon := 2e4 / transRate
	dt := horizon / float64(samples)

	tr.InitFilled = r.Float64() < p // start at stationarity
	path, err := markov.Uniformise(ctx, tr, markov.ConstantBias(vgs), 0, horizon, r)
	if err != nil {
		return Fig7Point{}, err
	}

	id := 50e-6 // representative on-current, A
	deltaI := rtn.StepAmplitude(dev, vgs, id)
	_, vs := path.Sample(0, horizon, samples)
	x := make([]float64, len(vs))
	for i, s := range vs {
		x[i] = s * deltaI
	}

	ana := analysis.LorentzianParams{DeltaI: deltaI, Lc: lc, Le: le}

	// Autocorrelation comparison over τ ∈ [0, 4/λs].
	maxLag := int(4 / ls / dt)
	if maxLag < 8 {
		maxLag = 8
	}
	if maxLag > samples/4 {
		maxLag = samples / 4
	}
	lags, rEmp, err := analysis.AutocorrelationFFT(x, dt, maxLag)
	if err != nil {
		return Fig7Point{}, err
	}
	floor := ana.Autocorrelation(0) * 1e-3
	accErr := 0.0
	for k := range lags {
		accErr += num.RelErr(rEmp[k], ana.Autocorrelation(lags[k]), floor)
	}
	accErr /= float64(len(lags))

	// PSD comparison over the resolved band around the corner.
	freqs, psd, err := analysis.Welch(x, dt, samples/64)
	if err != nil {
		return Fig7Point{}, err
	}
	// Compare against the exact sampled-process spectrum (which folds
	// the Lorentzian tail aliasing into the reference, as the FFT
	// estimator does).
	corner := ana.CornerFrequency()
	var errs []float64
	for k := range freqs {
		if freqs[k] < corner/30 || freqs[k] > corner*30 {
			continue
		}
		errs = append(errs, num.RelErr(psd[k], ana.SampledPSD(freqs[k], dt), ana.PSD(corner)*1e-6))
	}
	if len(errs) == 0 {
		return Fig7Point{}, fmt.Errorf("experiments: no PSD bins near corner %g Hz", corner)
	}
	psdErr := num.Quantile(errs, 0.5)

	var curve *Fig7Curve
	if curves {
		curve = &Fig7Curve{}
		decim := func(n, target int) int {
			d := n / target
			if d < 1 {
				d = 1
			}
			return d
		}
		dl := decim(len(lags), 120)
		for k := 0; k < len(lags); k += dl {
			curve.LagS = append(curve.LagS, lags[k])
			curve.REmp = append(curve.REmp, rEmp[k])
			curve.RAna = append(curve.RAna, ana.Autocorrelation(lags[k]))
		}
		// Log-decimate the spectrum across the plotted band.
		lastDecade := -1000.0
		for k := range freqs {
			if freqs[k] < corner/100 || freqs[k] > corner*100 {
				continue
			}
			if math.Log10(freqs[k]) < lastDecade+0.025 {
				continue
			}
			lastDecade = math.Log10(freqs[k])
			curve.FreqHz = append(curve.FreqHz, freqs[k])
			curve.SEmp = append(curve.SEmp, psd[k])
			curve.SAna = append(curve.SAna, ana.SampledPSD(freqs[k], dt))
		}
	}

	return Fig7Point{
		Curve: curve,
		Trap:  tr, Vgs: vgs,
		RateSum: ls, POcc: p,
		Transitions: path.Transitions(),
		AutocorrErr: accErr,
		PSDErr:      psdErr,
		ThermalPSD:  dev.ThermalNoisePSD(vgs, vgs),
		CornerHz:    corner,
	}, nil
}

// WriteText renders the sweep as the table printed by cmd/validate and
// recorded in EXPERIMENTS.md.
func (r *Fig7Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Fig 7 validation — sweep %s (constant bias, Algorithm 1 vs analytical)\n", r.Sweep)
	fmt.Fprintf(w, "%12s %12s %8s %10s %12s %12s %12s\n",
		string(r.Sweep), "lambda_sum", "P(occ)", "events", "R(tau) err", "S(f) err", "corner Hz")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%12.4g %12.4g %8.3f %10d %12.4f %12.4f %12.4g\n",
			p.Value, p.RateSum, p.POcc, p.Transitions, p.AutocorrErr, p.PSDErr, p.CornerHz)
	}
}

// MaxErr returns the worst autocorrelation and PSD errors of the sweep.
func (r *Fig7Result) MaxErr() (acc, psd float64) {
	for _, p := range r.Points {
		acc = math.Max(acc, p.AutocorrErr)
		psd = math.Max(psd, p.PSDErr)
	}
	return
}

package experiments

import (
	"fmt"
	"io"

	samurai "samurai"
	"samurai/internal/device"
	"samurai/internal/sram"
)

// T3Row is one supply point of the V_min scan.
type T3Row struct {
	Vdd       float64
	CleanErrs int
	RTNErrs   int
}

// T3Result is the RTN-induced V_min measurement (the paper's ref [14],
// Toh et al., "Impact of random telegraph signals on Vmin in 45nm
// SRAM", reproduced in simulation): the write V_min with physical,
// UNSCALED RTN sits above the RTN-free V_min.
type T3Result struct {
	Tech string
	Rows []T3Row
	// CleanVmin and RTNVmin are the lowest supplies at which every
	// write passed across all seeds.
	CleanVmin, RTNVmin float64
	// DeltaVminMV = (RTNVmin − CleanVmin) in millivolts — the V_dd
	// margin RTN consumes, measured by full simulation rather than the
	// Fig 2 analytical model.
	DeltaVminMV float64
	Seeds       int
}

// T3Config controls EXP-T3.
type T3Config struct {
	Tech string
	// RefVdd is the calibration supply (default 2/3 of nominal).
	RefVdd float64
	// VLo, VHi, VStep bound the scan (defaults 0.40–0.56 V in 10 mV).
	VLo, VHi, VStep float64
	Seeds           int
	Seed            uint64
}

func (c T3Config) defaults() T3Config {
	if c.Tech == "" {
		c.Tech = "32nm"
	}
	if c.RefVdd == 0 {
		c.RefVdd = 2.0 / 3.0 * device.Node(c.Tech).Vdd
	}
	if c.VLo == 0 {
		c.VLo = 0.40
	}
	if c.VHi == 0 {
		c.VHi = 0.56
	}
	if c.VStep == 0 {
		c.VStep = 0.01
	}
	if c.Seeds == 0 {
		c.Seeds = 4
	}
	return c
}

// T3 calibrates a marginal cell once at the reference supply, then
// sweeps V_dd downward running the full methodology at ×1 (physical
// amplitudes) and records where clean and RTN-afflicted writes start
// failing.
func T3(cfg T3Config) (*T3Result, error) {
	cfg = cfg.defaults()
	tech := device.Node(cfg.Tech)
	cellCfg, err := sram.MarginalCellConfig(sram.CellConfig{Tech: tech, Vdd: cfg.RefVdd})
	if err != nil {
		return nil, err
	}

	res := &T3Result{Tech: cfg.Tech, Seeds: cfg.Seeds}
	steps := int((cfg.VHi-cfg.VLo)/cfg.VStep + 0.5)
	for k := 0; k <= steps; k++ {
		vdd := cfg.VHi - float64(k)*cfg.VStep
		cell := cellCfg
		cell.Vdd = vdd
		pattern := sram.Fig8Pattern(vdd)
		row := T3Row{Vdd: vdd}
		for s := 0; s < cfg.Seeds; s++ {
			out, err := samurai.Run(samurai.Config{
				Tech: tech, Cell: cell, Pattern: pattern,
				Seed: cfg.Seed + uint64(s), Scale: 1,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: T3 at vdd=%.2f: %w", vdd, err)
			}
			row.CleanErrs += out.Clean.NumError
			row.RTNErrs += out.WithRTN.NumError
		}
		res.Rows = append(res.Rows, row)
	}
	// Vmin: the lowest supply at which all writes passed (scanning
	// from the top, the last error-free row before the first failure).
	res.CleanVmin = vminOf(res.Rows, func(r T3Row) int { return r.CleanErrs })
	res.RTNVmin = vminOf(res.Rows, func(r T3Row) int { return r.RTNErrs })
	res.DeltaVminMV = (res.RTNVmin - res.CleanVmin) * 1e3
	return res, nil
}

func vminOf(rows []T3Row, errs func(T3Row) int) float64 {
	vmin := rows[0].Vdd
	for _, r := range rows { // rows are in descending Vdd order
		if errs(r) > 0 {
			break
		}
		vmin = r.Vdd
	}
	return vmin
}

// WriteText renders the EXP-T3 table.
func (r *T3Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "EXP-T3 — RTN-induced V_min shift (%s, physical ×1 amplitudes, %d seeds × 9 writes per point)\n",
		r.Tech, r.Seeds)
	fmt.Fprintf(w, "%8s %12s %12s\n", "Vdd (V)", "clean errs", "rtn errs")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8.2f %12d %12d\n", row.Vdd, row.CleanErrs, row.RTNErrs)
	}
	fmt.Fprintf(w, "V_min: clean %.2f V, with RTN %.2f V → ΔV_min = +%.0f mV consumed by RTN\n",
		r.CleanVmin, r.RTNVmin, r.DeltaVminMV)
}

package experiments

import (
	"fmt"
	"io"

	"samurai/internal/device"
	"samurai/internal/sram"
	"samurai/internal/waveform"
)

// Fig5Scenario identifies one of the paper's three glitch timings.
type Fig5Scenario string

const (
	// GlitchNone: no RTN — Q settles before WL de-asserts (Fig 5 top).
	GlitchNone Fig5Scenario = "none"
	// GlitchMid: the glitch starts after WL asserts and ends before WL
	// de-asserts — the write is slowed (Fig 5 middle).
	GlitchMid Fig5Scenario = "mid-window"
	// GlitchEdge: the glitch starts just before WL de-asserts and
	// lasts through the edge — write error (Fig 5 bottom).
	GlitchEdge Fig5Scenario = "wl-edge"
)

// Fig5Outcome is the classified result of one scenario.
type Fig5Outcome struct {
	Scenario Fig5Scenario
	// GlitchStart/GlitchStop are absolute times, s (0 for none).
	GlitchStart, GlitchStop float64
	// Amplitude is the injected opposing current, A.
	Amplitude float64
	Cycle     sram.CycleResult
	// QFinal is Q at the end of the cycle.
	QFinal float64
}

// Fig5Result is the three-scenario comparison.
type Fig5Result struct {
	Tech     string
	Vdd      float64
	CNode    float64
	Outcomes []Fig5Outcome
}

// Fig5Config controls the glitch experiment.
type Fig5Config struct {
	Tech string
	// VddFrac scales the supply below nominal (default 2/3 — the
	// low-voltage regime the paper targets).
	VddFrac float64
	// Amplitude is the glitch current; 0 → auto-search the smallest
	// amplitude (on a grid) for which the WL-edge glitch flips the
	// write while the clean write succeeds.
	Amplitude float64
}

func (c Fig5Config) defaults() Fig5Config {
	if c.Tech == "" {
		c.Tech = "32nm"
	}
	if c.VddFrac == 0 {
		c.VddFrac = 2.0 / 3.0
	}
	return c
}

// Fig5 reproduces the paper's Fig 5: a single write-1 on a marginal
// cell under three I_RTN glitch timings applied to the pass transistors
// (Fig 4). The glitch opposes the nominal pass-gate current, so a
// mid-window glitch delays the flip while an edge glitch leaves the
// cell un-flipped when the wordline shuts.
func Fig5(cfg Fig5Config) (*Fig5Result, error) {
	cfg = cfg.defaults()
	tech := device.Node(cfg.Tech)
	vdd := cfg.VddFrac * tech.Vdd
	cellCfg, err := sram.MarginalCellConfig(sram.CellConfig{Tech: tech, Vdd: vdd})
	if err != nil {
		return nil, err
	}

	p := sram.Pattern{Bits: []int{1}, Timing: sram.DefaultTiming(), Vdd: vdd}
	wlOn, wlOff := p.WLWindow(0)
	win := wlOff - wlOn

	res := &Fig5Result{Tech: cfg.Tech, Vdd: vdd, CNode: cellCfg.CNode}

	amp := cfg.Amplitude
	if amp == 0 {
		amp, err = fig5SearchAmplitude(cellCfg, p, wlOn, wlOff)
		if err != nil {
			return nil, err
		}
	}

	scenarios := []struct {
		s          Fig5Scenario
		start, dur float64
	}{
		{GlitchNone, 0, 0},
		{GlitchMid, wlOn + 0.15*win, 0.45 * win},
		{GlitchEdge, wlOn + 0.55*win, 0.45*win + p.Timing.Rise},
	}
	for _, sc := range scenarios {
		out, err := fig5RunScenario(cellCfg, p, sc.s, sc.start, sc.dur, amp)
		if err != nil {
			return nil, err
		}
		res.Outcomes = append(res.Outcomes, *out)
	}
	return res, nil
}

// fig5RunScenario writes a 1 (over a held 0) with a square opposing
// glitch on both pass transistors over [start, start+dur].
func fig5RunScenario(cellCfg sram.CellConfig, p sram.Pattern, s Fig5Scenario, start, dur, amp float64) (*Fig5Outcome, error) {
	wl, bl, blb, err := p.Waveforms()
	if err != nil {
		return nil, err
	}
	cell, err := sram.Build(cellCfg, wl, bl, blb)
	if err != nil {
		return nil, err
	}
	if s != GlitchNone {
		// Writing a 1: M1 passes V_dd into Q (its channel current is
		// negative in our drain-at-Q convention) and M2 pulls Q̄ down
		// (positive current). The opposing Eq-3 injection carries the
		// sign of the channel current.
		rise := p.Timing.Rise / 5
		g1, err := glitchPWL(start, dur, rise, -amp)
		if err != nil {
			return nil, err
		}
		g2, err := glitchPWL(start, dur, rise, +amp)
		if err != nil {
			return nil, err
		}
		if err := cell.SetRTNTrace("M1", g1); err != nil {
			return nil, err
		}
		if err := cell.SetRTNTrace("M2", g2); err != nil {
			return nil, err
		}
	}
	run, err := cell.Evaluate(p, 0)
	if err != nil {
		return nil, err
	}
	out := &Fig5Outcome{
		Scenario: s, Amplitude: amp,
		Cycle:  run.Cycles[0],
		QFinal: run.Cycles[0].QAtCycleEnd,
	}
	if s != GlitchNone {
		out.GlitchStart, out.GlitchStop = start, start+dur
	}
	return out, nil
}

func glitchPWL(start, dur, rise, amp float64) (*waveform.PWL, error) {
	return waveform.New(
		[]float64{0, start, start + rise, start + dur, start + dur + rise},
		[]float64{0, 0, amp, amp, 0},
	)
}

// fig5SearchAmplitude finds the smallest amplitude on a geometric grid
// for which the WL-edge glitch produces a write error.
func fig5SearchAmplitude(cellCfg sram.CellConfig, p sram.Pattern, wlOn, wlOff float64) (float64, error) {
	win := wlOff - wlOn
	start := wlOn + 0.55*win
	dur := 0.45*win + p.Timing.Rise
	for amp := 1e-6; amp <= 2e-3; amp *= 1.5 {
		out, err := fig5RunScenario(cellCfg, p, GlitchEdge, start, dur, amp)
		if err != nil {
			return 0, err
		}
		if !out.Cycle.Written {
			return amp, nil
		}
	}
	return 0, fmt.Errorf("experiments: no amplitude up to 2 mA flips the write")
}

// WriteText renders the scenario table.
func (r *Fig5Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Fig 5 — glitch-timing scenarios (%s cell, Vdd=%.2f V, CNode=%.3g fF)\n",
		r.Tech, r.Vdd, r.CNode*1e15)
	fmt.Fprintf(w, "%12s %12s %12s %10s %10s %10s %12s\n",
		"scenario", "start (ns)", "stop (ns)", "amp (µA)", "Q final", "written", "outcome")
	for _, o := range r.Outcomes {
		outcome := "write OK"
		switch {
		case !o.Cycle.Written:
			outcome = "WRITE ERROR"
		case o.Cycle.Slow:
			outcome = "SLOWDOWN"
		}
		fmt.Fprintf(w, "%12s %12.3f %12.3f %10.1f %10.3f %10v %12s\n",
			o.Scenario, o.GlitchStart*1e9, o.GlitchStop*1e9, o.Amplitude*1e6,
			o.QFinal, o.Cycle.Written, outcome)
	}
}

// Classify returns the outcome triple (ok, slow, error) matching the
// paper's three panels; the experiment "reproduces" when the none
// scenario is ok, the mid one is slow-or-ok-late and the edge one errs.
func (r *Fig5Result) Classify() (cleanOK, midSlow, edgeError bool) {
	for _, o := range r.Outcomes {
		switch o.Scenario {
		case GlitchNone:
			cleanOK = o.Cycle.Written && !o.Cycle.Slow
		case GlitchMid:
			midSlow = o.Cycle.Written && (o.Cycle.Slow || o.Cycle.SettleAfterWL > 0)
		case GlitchEdge:
			edgeError = !o.Cycle.Written
		}
	}
	return
}

package experiments

import (
	"fmt"
	"io"

	samurai "samurai"
	"samurai/internal/device"
	"samurai/internal/montecarlo"
	"samurai/internal/sram"
)

// ---------------------------------------------------------------------
// EXP-X1: bidirectionally-coupled co-simulation vs two-pass methodology
// (paper future-work #1).
// ---------------------------------------------------------------------

// X1Result compares the paper's two-pass methodology with the coupled
// co-simulation on identical trap populations.
type X1Result struct {
	Tech  string
	Vdd   float64
	Scale float64
	Seeds int
	// TwoPassErrors and CoupledErrors are the total write errors over
	// all seeds for each mode.
	TwoPassErrors, CoupledErrors int
	TwoPassSlow, CoupledSlow     int
	// MaxQDiff is the largest |ΔQ| between the two modes' Q waveforms
	// over all seeds — a direct measure of how much the feedback the
	// two-pass method ignores actually matters.
	MaxQDiff float64
}

// X1Config controls EXP-X1.
type X1Config struct {
	Tech    string
	VddFrac float64
	Scale   float64
	Seeds   int
}

func (c X1Config) defaults() X1Config {
	if c.Tech == "" {
		c.Tech = "32nm"
	}
	if c.VddFrac == 0 {
		c.VddFrac = 2.0 / 3.0
	}
	if c.Scale == 0 {
		c.Scale = 30
	}
	if c.Seeds == 0 {
		c.Seeds = 3
	}
	return c
}

// X1 runs both modes with pinned trap profiles per seed and compares
// error counts and waveforms.
func X1(cfg X1Config) (*X1Result, error) {
	cfg = cfg.defaults()
	tech := device.Node(cfg.Tech)
	vdd := cfg.VddFrac * tech.Vdd
	cellCfg, err := sram.MarginalCellConfig(sram.CellConfig{Tech: tech, Vdd: vdd})
	if err != nil {
		return nil, err
	}
	pattern := sram.Fig8Pattern(vdd)

	res := &X1Result{Tech: cfg.Tech, Vdd: vdd, Scale: cfg.Scale, Seeds: cfg.Seeds}
	for seed := 0; seed < cfg.Seeds; seed++ {
		base := samurai.Config{
			Tech: tech, Cell: cellCfg, Pattern: pattern,
			Seed: uint64(seed), Scale: cfg.Scale,
		}
		two, err := samurai.Run(base)
		if err != nil {
			return nil, err
		}
		coupledCfg := base
		coupledCfg.Profiles = two.Profiles // identical populations
		coupled, err := samurai.RunCoupled(coupledCfg)
		if err != nil {
			return nil, err
		}
		res.TwoPassErrors += two.WithRTN.NumError
		res.TwoPassSlow += two.WithRTN.NumSlow
		res.CoupledErrors += coupled.NumError
		res.CoupledSlow += coupled.NumSlow
		for _, t := range two.WithRTN.Q.T {
			d := two.WithRTN.Q.Eval(t) - coupled.Q.Eval(t)
			if d < 0 {
				d = -d
			}
			if d > res.MaxQDiff {
				res.MaxQDiff = d
			}
		}
	}
	return res, nil
}

// WriteText renders the EXP-X1 comparison.
func (r *X1Result) WriteText(w io.Writer) {
	writes := r.Seeds * 9
	fmt.Fprintf(w, "EXP-X1 — two-pass methodology vs coupled co-simulation (%s, Vdd=%.2f V, ×%.0f, %d writes)\n",
		r.Tech, r.Vdd, r.Scale, writes)
	fmt.Fprintf(w, "%10s %10s %10s\n", "mode", "errors", "slow")
	fmt.Fprintf(w, "%10s %10d %10d\n", "two-pass", r.TwoPassErrors, r.TwoPassSlow)
	fmt.Fprintf(w, "%10s %10d %10d\n", "coupled", r.CoupledErrors, r.CoupledSlow)
	fmt.Fprintf(w, "max |ΔQ| between modes: %.3f V\n", r.MaxQDiff)
}

// ---------------------------------------------------------------------
// EXP-X2: SRAM-array Monte-Carlo (paper future-work #3).
// ---------------------------------------------------------------------

// X2Result is the array-level write-error statistics with and without
// RTN on top of local Vt variation.
type X2Result struct {
	Tech            string
	Vdd             float64
	Cells           int
	Scale           float64
	VarOnlyFailed   int
	WithRTNFailed   int
	VarOnlyRate     float64
	WithRTNRate     float64
	MeanTrapsPerRTN float64
}

// X2Config controls EXP-X2.
type X2Config struct {
	Tech    string
	VddFrac float64
	Scale   float64
	Cells   int
	Seed    uint64
	Workers int
}

func (c X2Config) defaults() X2Config {
	if c.Tech == "" {
		c.Tech = "32nm"
	}
	if c.VddFrac == 0 {
		c.VddFrac = 2.0 / 3.0
	}
	if c.Scale == 0 {
		c.Scale = 10
	}
	if c.Cells == 0 {
		c.Cells = 64
	}
	return c
}

// X2 simulates an array of cells with per-cell Vt variation twice —
// variation only, then variation + accelerated RTN — quantifying the
// incremental bit-error contribution of RTN (the paper's motivating
// claim: on top of other variabilities, RTN's increment flips cells).
func X2(cfg X2Config) (*X2Result, error) {
	cfg = cfg.defaults()
	tech := device.Node(cfg.Tech)
	vdd := cfg.VddFrac * tech.Vdd
	cellCfg, err := sram.MarginalCellConfig(sram.CellConfig{Tech: tech, Vdd: vdd})
	if err != nil {
		return nil, err
	}
	pattern := sram.Fig8Pattern(vdd)
	base := montecarlo.ArrayConfig{
		Tech: tech, Cell: cellCfg, Pattern: pattern,
		Cells: cfg.Cells, Scale: cfg.Scale, Seed: cfg.Seed,
		Workers: cfg.Workers,
	}

	varOnly := base
	varOnly.WithRTN = false
	vRes, err := montecarlo.RunArray(varOnly, samurai.ArrayRunner())
	if err != nil {
		return nil, err
	}
	withRTN := base
	withRTN.WithRTN = true
	rRes, err := montecarlo.RunArray(withRTN, samurai.ArrayRunner())
	if err != nil {
		return nil, err
	}
	return &X2Result{
		Tech: cfg.Tech, Vdd: vdd, Cells: cfg.Cells, Scale: cfg.Scale,
		VarOnlyFailed:   vRes.NumFailed,
		WithRTNFailed:   rRes.NumFailed,
		VarOnlyRate:     vRes.ErrorRate,
		WithRTNRate:     rRes.ErrorRate,
		MeanTrapsPerRTN: rRes.MeanTraps,
	}, nil
}

// WriteText renders the EXP-X2 table.
func (r *X2Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "EXP-X2 — %d-cell array Monte-Carlo (%s, Vdd=%.2f V, RTN ×%.0f)\n",
		r.Cells, r.Tech, r.Vdd, r.Scale)
	fmt.Fprintf(w, "%18s %10s %10s\n", "population", "failed", "rate")
	fmt.Fprintf(w, "%18s %10d %10.3f\n", "variation only", r.VarOnlyFailed, r.VarOnlyRate)
	fmt.Fprintf(w, "%18s %10d %10.3f\n", "variation + RTN", r.WithRTNFailed, r.WithRTNRate)
	fmt.Fprintf(w, "mean traps per cell: %.1f\n", r.MeanTrapsPerRTN)
}

package experiments

import (
	"fmt"
	"io"

	samurai "samurai"
	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/rtn"
	"samurai/internal/sram"
	"samurai/internal/waveform"
)

// X7Result quantifies the two classic cell re-designs against RTN —
// the "or the SRAM cell must be re-designed" branch of the paper's
// methodology flowchart:
//
//   - negative-bitline write assist vs the ×30 write errors of Fig 8;
//   - the 8T read-decoupled cell vs the destructive reads of EXP-F9.
type X7Result struct {
	Tech string
	Vdd  float64
	// AssistRows: write errors (over Seeds×9 writes) per assist level.
	AssistLevels []float64
	AssistErrors []int
	AssistSlow   []int
	// Reads compares destructive reads at the F9 stress level.
	Reads        int
	ReadScale    float64
	Disturbed6T  int
	Disturbed8T  int
	WrongValue8T int
}

// X7Config controls EXP-X7.
type X7Config struct {
	Seed  uint64
	Seeds int
	Reads int
}

func (c X7Config) defaults() X7Config {
	if c.Seeds == 0 {
		c.Seeds = 4
	}
	if c.Reads == 0 {
		c.Reads = 12
	}
	return c
}

// X7 runs both re-design studies on the 32 nm marginal cells.
func X7(cfg X7Config) (*X7Result, error) {
	cfg = cfg.defaults()
	tech := device.Node("32nm")
	vdd := 2.0 / 3.0 * tech.Vdd
	res := &X7Result{Tech: "32nm", Vdd: vdd, Reads: cfg.Reads, ReadScale: 300}

	// --- write assist ---
	cellCfg, err := sram.MarginalCellConfig(sram.CellConfig{Tech: tech, Vdd: vdd})
	if err != nil {
		return nil, err
	}
	for _, assist := range []float64{0, 0.05, 0.10} {
		pattern := sram.Fig8Pattern(vdd)
		pattern.BLUnderdrive = assist
		errs, slow := 0, 0
		for s := 0; s < cfg.Seeds; s++ {
			out, err := samurai.Run(samurai.Config{
				Tech: tech, Cell: cellCfg, Pattern: pattern,
				Seed: cfg.Seed + uint64(s), Scale: 30,
			})
			if err != nil {
				return nil, err
			}
			errs += out.WithRTN.NumError
			slow += out.WithRTN.NumSlow
		}
		res.AssistLevels = append(res.AssistLevels, assist)
		res.AssistErrors = append(res.AssistErrors, errs)
		res.AssistSlow = append(res.AssistSlow, slow)
	}

	// --- 6T vs 8T reads under SAMURAI traces (EXP-F9 stress) ---
	readCfg := sram.ReadMarginalCellConfig(tech, vdd)
	clean6, err := sram.EvaluateRead(readCfg, 0, nil, 0)
	if err != nil {
		return nil, err
	}
	cfg8 := sram.ReadCell8TConfig{Cell: readCfg.Cell}.Defaults()
	clean8, err := sram.EvaluateRead8T(cfg8, 0, nil, 0)
	if err != nil {
		return nil, err
	}
	if !clean6.Correct || !clean8.Correct {
		return nil, fmt.Errorf("experiments: clean reads failed (6T %v, 8T %v)", clean6.Correct, clean8.Correct)
	}

	// Per-circuit methodology: each cell's traces come from ITS OWN
	// clean-read bias waveforms (injecting the 6T's bitline-discharge
	// currents into the 8T's quiescent core would be a different —
	// and wrong — experiment). The same trap populations (same split
	// streams) are used for the shared core transistors, so the
	// comparison isolates the topology.
	ctx := tech.TrapContext(vdd)
	profiler := tech.TrapProfiler()
	params, err := sram.DeviceParams(readCfg.Cell)
	if err != nil {
		return nil, err
	}
	t1 := readCfg.Timing.Total
	root := rng.New(cfg.Seed ^ 0x77)
	buildTraces := func(r *rng.Stream, bias *sram.ReadResult, names []string) (map[string]*waveform.PWL, error) {
		traces := map[string]*waveform.PWL{}
		for i, name := range names {
			dev, ok := params[name]
			if !ok {
				// 8T buffer devices: size from the defaults.
				dev = device.NewMOS(tech, device.NMOS, cfg8.WReadDriver, cfg8.Cell.L)
			}
			profile := profiler.Sample(dev.W, dev.L, ctx, r.Split(uint64(10+i)))
			vgs, id, err := bias.Trans.DeviceBias(name)
			if err != nil {
				return nil, err
			}
			paths, err := markov.UniformiseProfile(profile, markov.PWLBias(vgs), 0, t1, r.Split(uint64(20+i)))
			if err != nil {
				return nil, err
			}
			trace, err := rtn.Compose(paths, dev, vgs, id, 0, t1, 1024)
			if err != nil {
				return nil, err
			}
			w, err := trace.Scale(res.ReadScale).PWL()
			if err != nil {
				return nil, err
			}
			traces[name] = w
		}
		return traces, nil
	}
	for k := 0; k < cfg.Reads; k++ {
		r := root.Split(uint64(k))
		traces6, err := buildTraces(r, clean6, sram.Transistors)
		if err != nil {
			return nil, err
		}
		six, err := sram.EvaluateRead(readCfg, 0, traces6, 0)
		if err != nil {
			return nil, err
		}
		if six.Disturbed {
			res.Disturbed6T++
		}
		traces8, err := buildTraces(r, clean8, sram.Transistors8T)
		if err != nil {
			return nil, err
		}
		eight, err := sram.EvaluateRead8T(cfg8, 0, traces8, 0)
		if err != nil {
			return nil, err
		}
		if eight.Disturbed {
			res.Disturbed8T++
		}
		if !eight.Correct {
			res.WrongValue8T++
		}
	}
	return res, nil
}

// WriteText renders the EXP-X7 tables.
func (r *X7Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "EXP-X7 — cell re-design vs RTN (%s, Vdd=%.2f V)\n", r.Tech, r.Vdd)
	fmt.Fprintln(w, "write assist (negative bitline) at RTN ×30:")
	fmt.Fprintf(w, "%14s %10s %10s\n", "assist (mV)", "errors", "slow")
	for i := range r.AssistLevels {
		fmt.Fprintf(w, "%14.0f %10d %10d\n",
			r.AssistLevels[i]*1e3, r.AssistErrors[i], r.AssistSlow[i])
	}
	fmt.Fprintf(w, "read path at RTN ×%.0f (%d reads of a stored 0):\n", r.ReadScale, r.Reads)
	fmt.Fprintf(w, "%8s %12s %12s\n", "cell", "disturbed", "wrong value")
	fmt.Fprintf(w, "%8s %12d %12s\n", "6T", r.Disturbed6T, "—")
	fmt.Fprintf(w, "%8s %12d %12d\n", "8T", r.Disturbed8T, r.WrongValue8T)
}

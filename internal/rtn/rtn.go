// Package rtn turns trap occupancy paths into RTN current traces using
// the paper's Eq (3):
//
//	I_RTN(t) = I_d(t) / (W·L·N(t)) · N_filled(t)
//
// where N(t) is the inversion-layer carrier number density at the
// instantaneous bias and N_filled(t) the number of filled traps.
package rtn

import (
	"errors"
	"sort"

	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/obs"
	"samurai/internal/units"
	"samurai/internal/waveform"
)

// Trace-composition instrumentation (Eq 3). Published once per Compose
// call; see internal/obs for the determinism guarantee.
var (
	mTraces = obs.GetCounter("samurai_rtn_traces_total",
		"RTN current traces composed via Eq (3)")
	mTraceSamples = obs.GetCounter("samurai_rtn_trace_samples_total",
		"samples evaluated across all composed traces")
	mTraceTransitions = obs.GetCounter("samurai_rtn_trace_transitions_total",
		"trap transitions aggregated into composed traces")
)

// Trace is a sampled RTN current waveform.
type Trace struct {
	T []float64 // sample instants, s
	I []float64 // RTN current, A
}

// NFilled aggregates trap paths into the piecewise-constant count of
// filled traps. The returned times/counts satisfy: counts[i] holds on
// [times[i], times[i+1]).
func NFilled(paths []*markov.Path) (times []float64, counts []int) {
	type event struct {
		t     float64
		delta int
	}
	var events []event
	n0 := 0
	start := 0.0
	for _, p := range paths {
		if p.Begin() < start || len(events) == 0 {
			start = p.Begin()
		}
		if p.Filled[0] {
			n0++
		}
		for i := 1; i < len(p.Times); i++ {
			d := -1
			if p.Filled[i] {
				d = +1
			}
			events = append(events, event{p.Times[i], d})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })
	times = append(times, start)
	counts = append(counts, n0)
	cur := n0
	for _, e := range events {
		cur += e.delta
		//lint:ignore floateq merges events at bitwise-identical stored times, not nearby ones
		if times[len(times)-1] == e.t {
			counts[len(counts)-1] = cur
			continue
		}
		times = append(times, e.t)
		counts = append(counts, cur)
	}
	return
}

// CountAt evaluates an NFilled step function at time t.
func CountAt(times []float64, counts []int, t float64) int {
	if len(times) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(times, t)
	//lint:ignore floateq exact hit on a stored step-function breakpoint located by SearchFloat64s
	if i < len(times) && times[i] == t {
		return counts[i]
	}
	if i == 0 {
		return counts[0]
	}
	return counts[i-1]
}

// Compose builds the sampled I_RTN trace per Eq (3) for a device with
// trap paths, gate-bias waveform vgs and drain-current waveform id,
// sampled at n uniform instants over [t0, t1].
func Compose(paths []*markov.Path, dev device.MOSParams, vgs, id *waveform.PWL, t0, t1 float64, n int) (*Trace, error) {
	if n < 2 {
		return nil, errors.New("rtn: need at least two samples")
	}
	if t1 <= t0 {
		return nil, errors.New("rtn: empty time interval")
	}
	times, counts := NFilled(paths)
	mTraces.Inc()
	mTraceSamples.Add(int64(n))
	mTraceTransitions.Add(int64(len(times) - 1))
	tr := &Trace{T: make([]float64, n), I: make([]float64, n)}
	dt := (t1 - t0) / float64(n-1)
	idx := 0
	// The sample sweep is monotone, so cursors make each bias lookup
	// O(1) amortised instead of a binary search per sample.
	vgsCur := vgs.Cursor()
	idCur := id.Cursor()
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		tr.T[i] = t
		for idx+1 < len(times) && times[idx+1] <= t {
			idx++
		}
		nf := 0
		if len(counts) > 0 {
			nf = counts[idx]
		}
		if nf == 0 {
			continue
		}
		carriers := dev.CarrierCount(vgsCur.Eval(t)) // W·L·N(t)
		tr.I[i] = idCur.Eval(t) / carriers * float64(nf)
	}
	return tr, nil
}

// ComposeConstant is Compose for constant bias: vgs and id fixed. It is
// the form used by the Fig 7 validation experiments.
func ComposeConstant(paths []*markov.Path, dev device.MOSParams, vgs, id, t0, t1 float64, n int) (*Trace, error) {
	return Compose(paths, dev, waveform.Constant(vgs), waveform.Constant(id), t0, t1, n)
}

// Scale multiplies the trace amplitude by k in place and returns the
// trace. The paper scales I_RTN by ×30 to make the (rare) write error
// observable — the "accelerated RTN testing" device of §IV-B.
func (tr *Trace) Scale(k float64) *Trace {
	for i := range tr.I {
		tr.I[i] *= k
	}
	return tr
}

// PWL converts the trace to a piecewise-linear waveform for injection
// into the circuit simulator as a current source. The waveform owns
// copies of the samples, so later in-place edits of the trace (e.g.
// Scale) do not retroactively change already-exported waveforms.
func (tr *Trace) PWL() (*waveform.PWL, error) {
	return waveform.New(
		append([]float64(nil), tr.T...),
		append([]float64(nil), tr.I...))
}

// Mean returns the time-average current of the trace.
func (tr *Trace) Mean() float64 {
	s := 0.0
	for _, v := range tr.I {
		s += v
	}
	if len(tr.I) == 0 {
		return 0
	}
	return s / float64(len(tr.I))
}

// MaxAbs returns the largest |I| in the trace.
func (tr *Trace) MaxAbs() float64 {
	m := 0.0
	for _, v := range tr.I {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// StepAmplitude returns the Eq (3) single-trap current step
// ΔI = I_d/(W·L·N) at the given constant bias — the amplitude of one
// trap's telegraph signal.
func StepAmplitude(dev device.MOSParams, vgs, id float64) float64 {
	return id / dev.CarrierCount(vgs)
}

// DeltaVt returns the threshold-voltage shift equivalent of one trapped
// electron, q/(Cox·W·L) — the quantity the V_dd margin model of Fig 2
// accumulates across traps.
func DeltaVt(dev device.MOSParams) float64 {
	return units.ElectronCharge / dev.GateCap()
}

package rtn

import (
	"math"
	"testing"

	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/units"
	"samurai/internal/waveform"
)

func testDev() device.MOSParams {
	return device.NewMOS(device.Node("90nm"), device.NMOS, 180e-9, 90e-9)
}

func pathWith(t0, tf float64, init bool, flips ...float64) *markov.Path {
	p := markov.NewPath(t0, tf, init)
	for _, f := range flips {
		p.Transition(f)
	}
	return p
}

func TestNFilledSingleTrap(t *testing.T) {
	p := pathWith(0, 10, false, 2, 5)
	times, counts := NFilled([]*markov.Path{p})
	wantT := []float64{0, 2, 5}
	wantC := []int{0, 1, 0}
	if len(times) != len(wantT) {
		t.Fatalf("times = %v", times)
	}
	for i := range wantT {
		if times[i] != wantT[i] || counts[i] != wantC[i] {
			t.Fatalf("NFilled = %v %v", times, counts)
		}
	}
}

func TestNFilledSuperposition(t *testing.T) {
	a := pathWith(0, 10, true, 4)     // filled on [0,4)
	b := pathWith(0, 10, false, 2, 6) // filled on [2,6)
	c := pathWith(0, 10, false, 2, 8) // filled on [2,8) — same edge time as b
	times, counts := NFilled([]*markov.Path{a, b, c})
	cases := map[float64]int{0.5: 1, 2.5: 3, 4.5: 2, 6.5: 1, 8.5: 0}
	for tt, want := range cases {
		if got := CountAt(times, counts, tt); got != want {
			t.Fatalf("count at %g = %d, want %d", tt, got, want)
		}
	}
}

func TestCountAtEdges(t *testing.T) {
	times := []float64{0, 1, 2}
	counts := []int{0, 1, 2}
	if CountAt(times, counts, -1) != 0 {
		t.Fatal("before start")
	}
	if CountAt(times, counts, 1) != 1 {
		t.Fatal("exact event time must use the new count")
	}
	if CountAt(times, counts, 99) != 2 {
		t.Fatal("after end")
	}
	if CountAt(nil, nil, 0) != 0 {
		t.Fatal("empty step function")
	}
}

func TestComposeEquation3(t *testing.T) {
	dev := testDev()
	p := pathWith(0, 1e-6, false, 0.4e-6)
	vgs, id := 1.2, 50e-6
	tr, err := ComposeConstant([]*markov.Path{p}, dev, vgs, id, 0, 1e-6, 101)
	if err != nil {
		t.Fatal(err)
	}
	dI := StepAmplitude(dev, vgs, id)
	// Before the flip: zero; after: exactly ΔI.
	if tr.I[10] != 0 {
		t.Fatalf("pre-flip current %g", tr.I[10])
	}
	if math.Abs(tr.I[80]-dI) > 1e-12*dI {
		t.Fatalf("post-flip current %g, want %g", tr.I[80], dI)
	}
}

func TestComposeScalesWithCount(t *testing.T) {
	dev := testDev()
	// Two traps filled simultaneously → exactly 2ΔI.
	a := pathWith(0, 1e-6, true)
	b := pathWith(0, 1e-6, true)
	tr, err := ComposeConstant([]*markov.Path{a, b}, dev, 1.2, 50e-6, 0, 1e-6, 11)
	if err != nil {
		t.Fatal(err)
	}
	dI := StepAmplitude(dev, 1.2, 50e-6)
	if math.Abs(tr.I[5]-2*dI) > 1e-12*dI {
		t.Fatalf("two-trap current %g, want %g", tr.I[5], 2*dI)
	}
}

func TestComposeTracksBiasWaveform(t *testing.T) {
	dev := testDev()
	p := pathWith(0, 1e-6, true)
	// Drain current ramps 0→100µA: I_RTN must ramp proportionally.
	id, err := waveform.New([]float64{0, 1e-6}, []float64{0, 100e-6})
	if err != nil {
		t.Fatal(err)
	}
	vgs := waveform.Constant(1.2)
	tr, err := Compose([]*markov.Path{p}, dev, vgs, id, 0, 1e-6, 101)
	if err != nil {
		t.Fatal(err)
	}
	if tr.I[0] != 0 {
		t.Fatalf("zero-current bias should give zero RTN, got %g", tr.I[0])
	}
	mid, end := tr.I[50], tr.I[100]
	if math.Abs(end-2*mid) > 1e-9*end {
		t.Fatalf("RTN does not track I_d: mid %g end %g", mid, end)
	}
}

func TestComposeRejectsBadArgs(t *testing.T) {
	dev := testDev()
	p := pathWith(0, 1, false)
	if _, err := ComposeConstant([]*markov.Path{p}, dev, 1, 1e-6, 0, 1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := ComposeConstant([]*markov.Path{p}, dev, 1, 1e-6, 1, 0, 10); err == nil {
		t.Fatal("reversed interval accepted")
	}
}

func TestScaleAndStats(t *testing.T) {
	tr := &Trace{T: []float64{0, 1, 2}, I: []float64{1, -2, 3}}
	tr.Scale(2)
	if tr.I[1] != -4 {
		t.Fatal("Scale wrong")
	}
	if tr.MaxAbs() != 6 {
		t.Fatalf("MaxAbs = %g", tr.MaxAbs())
	}
	if math.Abs(tr.Mean()-4.0/3) > 1e-12 {
		t.Fatalf("Mean = %g", tr.Mean())
	}
}

func TestTracePWLRoundTrip(t *testing.T) {
	tr := &Trace{T: []float64{0, 1e-9, 2e-9}, I: []float64{0, 1e-6, 0.5e-6}}
	w, err := tr.PWL()
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.T {
		if w.Eval(tr.T[i]) != tr.I[i] {
			t.Fatal("PWL disagrees with trace samples")
		}
	}
}

func TestStepAmplitudeEquation(t *testing.T) {
	dev := testDev()
	vgs, id := 1.2, 50e-6
	want := id / dev.CarrierCount(vgs)
	if got := StepAmplitude(dev, vgs, id); math.Abs(got-want) > 1e-15 {
		t.Fatalf("StepAmplitude = %g, want %g", got, want)
	}
}

func TestDeltaVtFormula(t *testing.T) {
	dev := testDev()
	want := units.ElectronCharge / dev.GateCap()
	if got := DeltaVt(dev); math.Abs(got-want) > 1e-18 {
		t.Fatalf("DeltaVt = %g, want %g", got, want)
	}
	// Smaller devices shift more per trap.
	small := device.NewMOS(device.Node("32nm"), device.NMOS, 64e-9, 32e-9)
	if DeltaVt(small) <= DeltaVt(dev) {
		t.Fatal("DeltaVt must grow as area shrinks")
	}
}

func TestPWLIsIsolatedFromLaterScale(t *testing.T) {
	// Exporting a waveform and then scaling the trace must not change
	// the exported waveform (regression: PWL used to alias the
	// trace's sample slice).
	tr := &Trace{T: []float64{0, 1}, I: []float64{1, 2}}
	w, err := tr.PWL()
	if err != nil {
		t.Fatal(err)
	}
	tr.Scale(30)
	if w.Eval(1) != 2 {
		t.Fatalf("exported waveform mutated by Scale: %g", w.Eval(1))
	}
}

package vv

import (
	"bytes"
	"encoding/json"
	"testing"

	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

// TestMatrixShape pins the scenario matrix's structural invariants:
// stable names, positive horizons, probes inside the horizon, and a
// gate count that matches what RunScenario actually emits.
func TestMatrixShape(t *testing.T) {
	scenarios, err := Matrix()
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	if len(scenarios) < 7 {
		t.Fatalf("matrix has %d scenarios, want >= 7", len(scenarios))
	}
	seen := map[string]bool{}
	for _, sc := range scenarios {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.T1 <= sc.T0 {
			t.Errorf("%s: empty horizon", sc.Name)
		}
		if sc.Paths <= 0 {
			t.Errorf("%s: no paths", sc.Name)
		}
		for _, p := range sc.Probes {
			if p < sc.T0 || p > sc.T1 {
				t.Errorf("%s: probe %g outside [%g, %g]", sc.Name, p, sc.T0, sc.T1)
			}
		}
	}
	for _, want := range []string{"const-active", "const-extreme-beta", "near-degenerate-lambda", "step-bias", "ramp-bias", "sram-write-wl"} {
		if !seen[want] {
			t.Errorf("matrix missing scenario %q", want)
		}
	}
}

// TestRunMatrixPasses is the headline conformance check: the production
// simulator must clear every gate of the full matrix.
func TestRunMatrixPasses(t *testing.T) {
	rep, err := RunMatrix(Options{Seed: 1, E2E: !testing.Short()})
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	for _, sc := range rep.Scenarios {
		want := 0
		for _, ms := range mustMatrix(t) {
			if ms.Name == sc.Name {
				want = ms.GateCount()
			}
		}
		if sc.Name == "e2e-samurai-run" {
			want = e2eGateCount
		}
		if len(sc.Gates) != want {
			t.Errorf("%s: %d gates emitted, GateCount says %d", sc.Name, len(sc.Gates), want)
		}
		for _, g := range sc.Gates {
			if !g.Pass {
				t.Errorf("%s/%s (%s): p=%g < alpha=%g (value %g, ref %g, n %d)",
					sc.Name, g.Name, g.Statistic, g.PValue, g.Alpha, g.Value, g.Ref, g.N)
			}
		}
	}
	if !rep.Pass {
		t.Fatalf("report failed")
	}
	if rep.PerGateAlpha <= 0 || rep.PerGateAlpha > rep.Alpha {
		t.Fatalf("per-gate alpha %g inconsistent with budget %g", rep.PerGateAlpha, rep.Alpha)
	}
}

func mustMatrix(t *testing.T) []Scenario {
	t.Helper()
	scenarios, err := Matrix()
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	return scenarios
}

// TestReportDeterministic is the bit-identity acceptance criterion: a
// fixed master seed must yield a byte-identical JSON report.
func TestReportDeterministic(t *testing.T) {
	run := func() []byte {
		rep, err := RunMatrix(Options{Seed: 99, E2E: false})
		if err != nil {
			t.Fatalf("RunMatrix: %v", err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("reports differ between identical runs:\n%s\n---\n%s", a, b)
	}
	// A different seed must actually change the sampled statistics.
	rep2, err := RunMatrix(Options{Seed: 100, E2E: false})
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	b2, err := json.Marshal(rep2)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if bytes.Equal(a, b2) {
		t.Fatalf("seed change did not change the report")
	}
}

// brokenSimulator scales both propensities by (1+eps) — a thinning
// bug that preserves determinism and path validity, so every golden
// seeded test in the tree would still pass. Only distribution-level
// gates can see it.
func brokenSimulator(eps float64) Simulator {
	return func(ctx trap.Context, tr trap.Trap, bias *waveform.PWL, t0, t1 float64, r *rng.Stream) (*markov.Path, error) {
		cur := bias.Cursor()
		rates := func(u float64) (lc, le float64) {
			lc, le = ctx.Rates(tr, cur.Eval(u))
			return lc * (1 + eps), le * (1 + eps)
		}
		return markov.UniformiseGeneral(rates, ctx.RateSum(tr)*(1+eps), tr.InitFilled, t0, t1, r)
	}
}

// TestBrokenThinningCaught is the detection-power acceptance criterion:
// an off-by-ε thinning probability must be rejected, and specifically
// by at least one KS or chi-square gate.
func TestBrokenThinningCaught(t *testing.T) {
	sc := mustMatrix(t)[0] // const-active: every gate family applies
	budget := Budget{Alpha: DefaultAlpha, Gates: sc.GateCount()}
	sr, err := RunScenario(sc, brokenSimulator(0.3), rng.New(5), budget)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if sr.Pass {
		t.Fatalf("broken thinning (eps=0.3) passed the %s gate battery", sc.Name)
	}
	distCaught := false
	for _, g := range sr.Gates {
		if !g.Pass && (g.Statistic == "ks-dkw" || g.Statistic == "chi2") {
			distCaught = true
			t.Logf("caught by %s (%s): D/stat=%g p=%g", g.Name, g.Statistic, g.Value, g.PValue)
		}
	}
	if !distCaught {
		t.Fatalf("no KS/chi-square gate rejected the broken simulator; gates: %+v", sr.Gates)
	}
}

// TestBrokenSimulatorSanity: an honest implementation routed through
// the same UniformiseGeneral code path (eps=0) must still pass, so the
// broken-thinning rejection above is attributable to the ε alone.
func TestBrokenSimulatorSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical battery skipped in -short")
	}
	sc := mustMatrix(t)[0]
	budget := Budget{Alpha: DefaultAlpha, Gates: sc.GateCount()}
	sr, err := RunScenario(sc, brokenSimulator(0), rng.New(5), budget)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if !sr.Pass {
		t.Fatalf("eps=0 general-kernel run failed the battery: %+v", sr.Gates)
	}
}

// TestScenarioErrorPropagates: a simulator error must surface, not be
// folded into a report.
func TestScenarioErrorPropagates(t *testing.T) {
	sc := mustMatrix(t)[0]
	bad := func(ctx trap.Context, tr trap.Trap, bias *waveform.PWL, t0, t1 float64, r *rng.Stream) (*markov.Path, error) {
		return nil, markov.ErrBadInterval
	}
	if _, err := RunScenario(sc, bad, rng.New(1), Budget{Alpha: DefaultAlpha, Gates: sc.GateCount()}); err == nil {
		t.Fatalf("simulator error swallowed")
	}
}

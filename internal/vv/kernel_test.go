package vv

import (
	"bytes"
	"encoding/json"
	"testing"

	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

// TestBatchKernelReportIdentical is the batch-kernel conformance row's
// strongest form: because BatchState lane k splits the scenario stream
// exactly as RunScenario's sequential loop does, the batch report must
// be byte-identical to the sequential report apart from the kernel
// field. Any SoA-layout or chunked-draw bug that perturbs a single
// accept decision in any of the matrix's ensembles breaks this.
func TestBatchKernelReportIdentical(t *testing.T) {
	seq, err := RunMatrix(Options{Seed: 7, E2E: false})
	if err != nil {
		t.Fatalf("sequential RunMatrix: %v", err)
	}
	bat, err := RunMatrix(Options{Seed: 7, E2E: false, Kernel: KernelBatch})
	if err != nil {
		t.Fatalf("batch RunMatrix: %v", err)
	}
	if seq.Kernel != KernelSequential {
		t.Errorf("sequential report kernel = %q", seq.Kernel)
	}
	if bat.Kernel != KernelBatch {
		t.Errorf("batch report kernel = %q", bat.Kernel)
	}
	if !bat.Pass {
		t.Errorf("batch kernel failed the conformance matrix")
	}
	bat.Kernel = seq.Kernel
	a, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(bat)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("batch and sequential reports diverge beyond the kernel field:\n%s\n---\n%s", a, b)
	}
}

// TestRunScenarioBatchMatchesSequential pins the per-scenario identity
// at path granularity for the first matrix row, so a divergence is
// attributable before the whole-report diff above triggers.
func TestRunScenarioBatchMatchesSequential(t *testing.T) {
	sc := mustMatrix(t)[0]
	budget := Budget{Alpha: DefaultAlpha, Gates: sc.GateCount()}
	seq, err := RunScenario(sc, DefaultSimulator, rng.New(11), budget)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	bat, err := RunScenarioBatch(sc, markov.NewBatchState(), rng.New(11), budget)
	if err != nil {
		t.Fatalf("RunScenarioBatch: %v", err)
	}
	a, _ := json.Marshal(seq)
	b, _ := json.Marshal(bat)
	if !bytes.Equal(a, b) {
		t.Fatalf("scenario reports differ:\n%s\n---\n%s", a, b)
	}
}

// TestKernelOptionValidation: unknown kernels and a custom Simulator
// combined with the batch kernel (which bypasses the seam) must be
// rejected, not silently ignored.
func TestKernelOptionValidation(t *testing.T) {
	if _, err := RunMatrix(Options{Seed: 1, E2E: false, Kernel: "vectorised"}); err == nil {
		t.Errorf("unknown kernel accepted")
	}
	sim := func(ctx trap.Context, tr trap.Trap, bias *waveform.PWL, t0, t1 float64, r *rng.Stream) (*markov.Path, error) {
		return DefaultSimulator(ctx, tr, bias, t0, t1, r)
	}
	if _, err := RunMatrix(Options{Seed: 1, E2E: false, Kernel: KernelBatch, Sim: sim}); err == nil {
		t.Errorf("custom Sim with batch kernel accepted")
	}
}

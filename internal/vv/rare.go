package vv

import (
	"fmt"
	"math"

	"samurai/internal/markov"
	"samurai/internal/obs"
	"samurai/internal/rareevent"
	"samurai/internal/rng"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

// Rare-event conformance: the importance-sampling kernel
// (markov.UniformiseTilted) is gated for *unbiasedness* against the
// same closed-form Master reference the naive battery uses. Each rare
// row draws an ensemble under one energy tilt and checks
//
//   - is-mean: the weighted occupancy estimate Σ wᵢxᵢ/n matches the
//     analytic p(T1) — exact binomial at tilt 0 (weights are unit),
//     CLT z under a real tilt;
//   - weight-mean: Σ wᵢ/n matches its exactly-known expectation 1
//     (the weight is the control variate with closed-form mean) —
//     exact at tilt 0, CLT z otherwise;
//   - lr-exact: every path's incrementally accumulated log-LR equals
//     the post-hoc recomputation from its thinning record, to the bit;
//   - tilt0-naive-identity (tilt-0 rows only): the tilted kernel's
//     paths are bit-identical to markov.Uniformise on the same
//     streams.
//
// Rare rows are always drawn through the sequential tilted kernel —
// deliberately kernel-independent, so a sequential and a batch
// conformance report differ only in their "kernel" field even when
// rare rows are enabled.

var mVVRareRows = obs.GetCounter("samurai_vv_rare_rows_total",
	"rare-event conformance rows executed")

// RareSimulator draws one tilted path: the seam the broken-weight
// detection tests substitute through. rec, when non-nil, receives the
// candidate history (markov.ThinningRecord semantics).
type RareSimulator func(ctx trap.Context, tr trap.Trap, bias *waveform.PWL, t0, t1, tiltEV float64, r *rng.Stream, rec *markov.ThinningRecord) (*markov.Path, float64, error)

// DefaultRareSimulator is the production tilted kernel behind the seam.
func DefaultRareSimulator(ctx trap.Context, tr trap.Trap, bias *waveform.PWL, t0, t1, tiltEV float64, r *rng.Stream, rec *markov.ThinningRecord) (*markov.Path, float64, error) {
	return markov.UniformiseTilted(ctx, tr, markov.PWLBias(bias), t0, t1, tiltEV, r, rec)
}

// RareScenario is one row of the rare-event conformance matrix.
type RareScenario struct {
	Name   string
	Ctx    trap.Context
	Tr     trap.Trap
	Bias   *waveform.PWL
	T0, T1 float64
	// TiltEV is the importance-sampling energy tilt the row samples
	// under (0 pins the naive-identity contract).
	TiltEV float64
	// Paths is the ensemble size.
	Paths int
	Note  string
}

// GateCount returns the number of gates the row contributes: is-mean,
// weight-mean and lr-exact, plus the naive-identity gate at tilt 0.
func (sc RareScenario) GateCount() int {
	n := 3
	if sc.TiltEV == 0 {
		n++
	}
	return n
}

// RareMatrix returns the standard rare-event rows: one occupancy
// scenario (β ≈ 1000, equilibrium p ≈ 1e-3) swept over three tilt
// strengths including 0, plus a deeper row (p ≈ 9e-6) under a strong
// tilt — the regime where the naive battery has no power at all.
//
// Horizons are 12/λ* — long enough that the occupancy fully
// equilibrates (the relaxation rate of the two-state chain is exactly
// λ* = λ_c+λ_e, bias-independent), yet short enough that the weight
// distribution stays light-tailed: a path sees ~12 candidates, every
// per-candidate LR factor is bounded by the reject ratio
// (1−p)/(1−q), so the worst-case weight is that ratio to the 12th
// power (≈ 1.4 at the mid tilt, ≈ 5 at the deep tilt). Long horizons
// with per-candidate tilting are exactly where importance sampling
// degenerates — the ESS the report carries makes that visible.
func RareMatrix() []RareScenario {
	ctx := vvCtx()
	const horizonCandidates = 12.0
	rows := []RareScenario{}
	{
		tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0.18}
		horizon := horizonCandidates / ctx.RateSum(tr)
		for _, row := range []struct {
			name string
			tilt float64
		}{
			{"rare-tilt0", 0},
			{"rare-tilt-mid", -0.05},
			{"rare-tilt-strong", -0.09},
		} {
			rows = append(rows, RareScenario{
				Name: row.name, Ctx: ctx, Tr: tr,
				Bias: waveform.Constant(1.2), T0: 0, T1: horizon,
				TiltEV: row.tilt, Paths: 3000,
				Note: fmt.Sprintf("beta~1000 (p~1e-3), tilt %g eV", row.tilt),
			})
		}
	}
	{
		tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0.30}
		horizon := horizonCandidates / ctx.RateSum(tr)
		rows = append(rows, RareScenario{
			Name: "rare-deep", Ctx: ctx, Tr: tr,
			Bias: waveform.Constant(1.2), T0: 0, T1: horizon,
			TiltEV: -0.25, Paths: 4000,
			Note: "beta~1e5 (p~9e-6); naive MC has no power here",
		})
	}
	return rows
}

// rareGateCount sums the gates of the standard rare matrix.
func rareGateCount() int {
	n := 0
	for _, sc := range RareMatrix() {
		n += sc.GateCount()
	}
	return n
}

// RunRareScenario draws the row's tilted ensemble through sim and runs
// the unbiasedness gate battery. The attached ScenarioReport.Rare
// block carries the weighted aggregate (ESS, LR variance, CI width).
func RunRareScenario(sc RareScenario, sim RareSimulator, r *rng.Stream, budget Budget) (ScenarioReport, error) {
	m, err := NewMaster(sc.Ctx, sc.Tr, sc.Bias)
	if err != nil {
		return ScenarioReport{}, fmt.Errorf("vv: rare row %s: %w", sc.Name, err)
	}
	perGate := budget.PerGate()
	alphaAsym := perGate / asymptoticSafety
	sr := ScenarioReport{Name: sc.Name, Note: sc.Note, Paths: sc.Paths, Pass: true}
	mVVRareRows.Inc()
	mVVPaths.Add(int64(sc.Paths))

	p0 := 0.0
	if sc.Tr.InitFilled {
		p0 = 1
	}
	ref := m.Occupancy(sc.T0, sc.T1, p0)
	zeroTilt := sc.TiltEV == 0

	var est rareevent.Estimator
	weights := make([]float64, sc.Paths)
	weighted := make([]float64, sc.Paths)
	lrMismatches := 0
	unitViolations := 0
	identityViolations := 0
	var child, twin rng.Stream
	var rec markov.ThinningRecord
	for i := 0; i < sc.Paths; i++ {
		r.SplitInto(uint64(i), &child)
		p, logLR, err := sim(sc.Ctx, sc.Tr, sc.Bias, sc.T0, sc.T1, sc.TiltEV, &child, &rec)
		if err != nil {
			return sr, fmt.Errorf("vv: rare row %s path %d: %w", sc.Name, i, err)
		}
		// lr-exact: the incremental accumulation must equal the
		// post-hoc recomputation from the candidate record to the bit.
		post := markov.RecomputeLogLR(sc.Ctx, sc.Tr, markov.PWLBias(sc.Bias), sc.TiltEV, &rec)
		if math.Float64bits(logLR) != math.Float64bits(post) {
			lrMismatches++
		}
		w := math.Exp(logLR)
		x := 0.0
		if p.StateAt(sc.T1) {
			x = 1
		}
		weights[i] = w
		weighted[i] = w * x
		est.Add(w, x)
		if zeroTilt {
			if math.Float64bits(w) != math.Float64bits(1.0) {
				unitViolations++
			}
			// tilt0-naive-identity: re-derive the same child stream and
			// draw with the naive kernel; the paths must agree bit for
			// bit (same stream consumption, same arithmetic).
			r.SplitInto(uint64(i), &twin)
			naive, err := markov.Uniformise(sc.Ctx, sc.Tr, markov.PWLBias(sc.Bias), sc.T0, sc.T1, &twin)
			if err != nil {
				return sr, fmt.Errorf("vv: rare row %s naive twin %d: %w", sc.Name, i, err)
			}
			if !pathsBitEqual(p, naive) {
				identityViolations++
			}
		}
	}

	// is-mean: the unbiasedness gate against the closed-form oracle.
	if zeroTilt {
		k := 0
		for _, wx := range weighted {
			if wx > 0.5 {
				k++
			}
		}
		pv := BinomTwoSidedP(k, sc.Paths, ref)
		sr.add(Gate{
			Name: "rare-is-mean", Statistic: "binom", N: sc.Paths,
			Value: float64(k), Ref: float64(sc.Paths) * ref, PValue: pv,
			Alpha: perGate, Pass: pv >= perGate,
		})
	} else {
		z, pv := MeanZTest(weighted, ref)
		sr.add(Gate{
			Name: "rare-is-mean", Statistic: "clt-z", N: sc.Paths,
			Value: z, Ref: ref, PValue: pv, Alpha: alphaAsym,
			Pass: pv >= alphaAsym,
		})
	}

	// weight-mean: the control variate with exactly known mean 1.
	if zeroTilt {
		pass := unitViolations == 0
		pv := 0.0
		if pass {
			pv = 1
		}
		sr.add(Gate{
			Name: "rare-weight-mean", Statistic: "exact", N: sc.Paths,
			Value: float64(unitViolations), Ref: 0, PValue: pv,
			Alpha: perGate, Pass: pass,
		})
	} else {
		z, pv := MeanZTest(weights, 1)
		sr.add(Gate{
			Name: "rare-weight-mean", Statistic: "clt-z", N: sc.Paths,
			Value: z, Ref: 1, PValue: pv, Alpha: alphaAsym,
			Pass: pv >= alphaAsym,
		})
	}

	// lr-exact: incremental vs recomputed log-LR, bitwise.
	{
		pass := lrMismatches == 0
		pv := 0.0
		if pass {
			pv = 1
		}
		sr.add(Gate{
			Name: "rare-lr-exact", Statistic: "exact", N: sc.Paths,
			Value: float64(lrMismatches), Ref: 0, PValue: pv,
			Alpha: perGate, Pass: pass,
		})
	}

	if zeroTilt {
		pass := identityViolations == 0
		pv := 0.0
		if pass {
			pv = 1
		}
		sr.add(Gate{
			Name: "rare-tilt0-naive-identity", Statistic: "exact", N: sc.Paths,
			Value: float64(identityViolations), Ref: 0, PValue: pv,
			Alpha: perGate, Pass: pass,
		})
	}

	stats := est.Stats(sc.TiltEV)
	sr.Rare = &stats
	return sr, nil
}

// pathsBitEqual compares two occupancy paths bit for bit.
func pathsBitEqual(a, b *markov.Path) bool {
	if len(a.Times) != len(b.Times) || len(a.Filled) != len(b.Filled) {
		return false
	}
	for i := range a.Times {
		if math.Float64bits(a.Times[i]) != math.Float64bits(b.Times[i]) {
			return false
		}
	}
	for i := range a.Filled {
		if a.Filled[i] != b.Filled[i] {
			return false
		}
	}
	return true
}

// RunRareMatrix runs only the rare-event rows as a standalone report
// (the budget is Bonferroni-divided over the rare gates alone). Row i
// draws from root.Split(500+i) — the same derivation the combined
// RunMatrix uses — so a row's ensemble is identical whether it ran
// standalone or alongside the naive battery.
func RunRareMatrix(opts Options) (*Report, error) {
	opts = opts.defaults()
	rows := RareMatrix()
	budget := Budget{Alpha: opts.Alpha, Gates: rareGateCount()}
	root := rng.New(opts.Seed)
	rep := &Report{
		Seed:         opts.Seed,
		Kernel:       KernelSequential,
		Alpha:        opts.Alpha,
		Gates:        budget.Gates,
		PerGateAlpha: budget.PerGate(),
		Pass:         true,
	}
	for i, sc := range rows {
		sr, err := RunRareScenario(sc, DefaultRareSimulator, root.Split(uint64(500+i)), budget)
		if err != nil {
			return nil, err
		}
		mVVScenarios.Inc()
		if !sr.Pass {
			rep.Pass = false
		}
		rep.Scenarios = append(rep.Scenarios, sr)
	}
	return rep, nil
}

package vv

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestNormalCDF(t *testing.T) {
	approx(t, "Φ(0)", NormalCDF(0), 0.5, 1e-15)
	approx(t, "Φ(1.959964)", NormalCDF(1.959964), 0.975, 1e-6)
	approx(t, "Φ(-1.959964)", NormalCDF(-1.959964), 0.025, 1e-6)
	approx(t, "Φ(5)", NormalCDF(5), 1-2.866516e-7, 1e-12)
}

func TestNormalTwoSidedP(t *testing.T) {
	approx(t, "P(|Z|≥1.96)", NormalTwoSidedP(1.959964), 0.05, 1e-6)
	approx(t, "P(|Z|≥0)", NormalTwoSidedP(0), 1, 1e-15)
	// Symmetric in the sign of z.
	approx(t, "sym", NormalTwoSidedP(-3.1)-NormalTwoSidedP(3.1), 0, 1e-18)
}

func TestNormalQuantile(t *testing.T) {
	for _, p := range []float64{1e-9, 0.025, 0.5, 0.975, 1 - 1e-9} {
		z := NormalQuantile(p)
		approx(t, "Φ(Φ⁻¹(p))", NormalCDF(z), p, 1e-12)
	}
	if !math.IsNaN(NormalQuantile(0)) || !math.IsNaN(NormalQuantile(1)) {
		t.Errorf("quantile at 0/1 should be NaN")
	}
}

func TestKSStat(t *testing.T) {
	uniform := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	// A perfectly spaced sample has D = 1/(2n).
	n := 10
	s := make([]float64, n)
	for i := range s {
		s[i] = (float64(i) + 0.5) / float64(n)
	}
	approx(t, "D(perfect)", KSStat(s, uniform), 1.0/float64(2*n), 1e-15)
	// A degenerate sample at 0 has D = 1.
	approx(t, "D(degenerate)", KSStat([]float64{0, 0, 0}, uniform), 1, 1e-15)
	if got := KSStat(nil, uniform); got > 0 {
		t.Errorf("empty sample: D = %g, want 0", got)
	}
}

func TestKSPValue(t *testing.T) {
	// λ ≈ 1.358 is the classic 5% critical value of the Kolmogorov
	// distribution; invert Stephens' λ(n, d) at n = 100.
	n := 100
	sn := math.Sqrt(float64(n))
	d := 1.3581 / (sn + 0.12 + 0.11/sn)
	approx(t, "Q at 5% critical", KSPValue(n, d), 0.05, 2e-3)
	approx(t, "Q(d=0)", KSPValue(n, 0), 1, 1e-15)
	if p := KSPValue(n, 1); p > 1e-80 {
		t.Errorf("Q(D=1) = %g, want ~0", p)
	}
	// Monotone decreasing in d.
	if KSPValue(50, 0.1) <= KSPValue(50, 0.2) {
		t.Errorf("KS p-value not monotone in d")
	}
}

func TestKSPValueDKW(t *testing.T) {
	approx(t, "DKW(100, 0.1)", KSPValueDKW(100, 0.1), 2*math.Exp(-2), 1e-15)
	approx(t, "DKW clamp", KSPValueDKW(10, 0.01), 1, 1e-15)
	// The DKW bound dominates the asymptotic p-value (it is the
	// conservative gate).
	for _, d := range []float64{0.05, 0.1, 0.2, 0.4} {
		if KSPValueDKW(200, d) < KSPValue(200, d) {
			t.Errorf("DKW(200, %g) below asymptotic p-value", d)
		}
	}
}

func TestGammaQ(t *testing.T) {
	// Q(1/2, x) = erfc(√x) exactly.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 20} {
		approx(t, "Q(1/2,x)", GammaQ(0.5, x), math.Erfc(math.Sqrt(x)), 1e-12)
	}
	// Q(1, x) = e^{−x}.
	for _, x := range []float64{0.3, 1, 4, 30} {
		approx(t, "Q(1,x)", GammaQ(1, x), math.Exp(-x), 1e-12)
	}
	approx(t, "Q(a,0)", GammaQ(3, 0), 1, 1e-15)
	if !math.IsNaN(GammaQ(-1, 1)) || !math.IsNaN(GammaQ(1, -1)) {
		t.Errorf("invalid arguments should yield NaN")
	}
}

func TestChiSquarePValue(t *testing.T) {
	// Classic 5% critical values of the chi-square distribution.
	approx(t, "χ²(1)", ChiSquarePValue(3.841, 1), 0.05, 1e-3)
	approx(t, "χ²(2)", ChiSquarePValue(5.991, 2), 0.05, 1e-3)
	approx(t, "χ²(10)", ChiSquarePValue(18.307, 10), 0.05, 1e-3)
	approx(t, "χ² stat 0", ChiSquarePValue(0, 5), 1, 1e-15)
	if !math.IsNaN(ChiSquarePValue(1, 0)) {
		t.Errorf("dof 0 should yield NaN")
	}
}

func TestChiSquareUniform(t *testing.T) {
	// Perfectly balanced PIT values give statistic 0.
	k := 10
	var u []float64
	for bin := 0; bin < k; bin++ {
		for j := 0; j < 7; j++ {
			u = append(u, (float64(bin)+0.5)/float64(k))
		}
	}
	stat, dof := ChiSquareUniform(u, k)
	if dof != k-1 {
		t.Errorf("dof = %d, want %d", dof, k-1)
	}
	approx(t, "balanced stat", stat, 0, 1e-12)
	// Everything in one bin: stat = n·(k−1).
	one := make([]float64, 50)
	stat, _ = ChiSquareUniform(one, k)
	approx(t, "degenerate stat", stat, float64(50*(k-1)), 1e-9)
	// Out-of-range values clamp into edge bins rather than panic.
	stat, _ = ChiSquareUniform([]float64{-0.5, 1.5}, 2)
	approx(t, "clamped stat", stat, 0, 1e-12)
}

func TestBinomTwoSidedP(t *testing.T) {
	// Reference: the minimum-likelihood two-sided test at p0 = 1/2 is
	// the symmetric two-tail sum: k=2, n=10 → 2·(1+10+45)/1024.
	approx(t, "binom(2,10,0.5)", BinomTwoSidedP(2, 10, 0.5), 112.0/1024, 1e-12)
	approx(t, "binom(5,10,0.5)", BinomTwoSidedP(5, 10, 0.5), 1, 1e-12)
	approx(t, "binom(0,20,0.5)", BinomTwoSidedP(0, 20, 0.5), 2.0/(1<<20), 1e-12)
	// Degenerate null hypotheses.
	approx(t, "p0=0,k=0", BinomTwoSidedP(0, 5, 0), 1, 0)
	approx(t, "p0=0,k>0", BinomTwoSidedP(1, 5, 0), 0, 0)
	approx(t, "p0=1,k=n", BinomTwoSidedP(5, 5, 1), 1, 0)
	if !math.IsNaN(BinomTwoSidedP(6, 5, 0.5)) {
		t.Errorf("k > n should yield NaN")
	}
	// The p-value is a valid probability for asymmetric nulls too.
	for k := 0; k <= 30; k++ {
		p := BinomTwoSidedP(k, 30, 0.07)
		if p < 0 || p > 1 {
			t.Errorf("binom(%d,30,0.07) = %g outside [0,1]", k, p)
		}
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100, 1.959964)
	// Known value: the 95% Wilson interval for 50/100 is (0.4038, 0.5962).
	approx(t, "wilson lo", lo, 0.4038, 5e-4)
	approx(t, "wilson hi", hi, 0.5962, 5e-4)
	// Zero successes: the lower bound clamps to 0, the upper stays
	// informative (unlike the Wald interval's degenerate [0,0]).
	lo, hi = WilsonInterval(0, 20, 1.959964)
	if lo > 0 || hi < 0.1 || hi > 0.3 {
		t.Errorf("wilson(0/20) = (%g, %g), want (0, ~0.16)", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0, 2)
	if lo > 0 || hi < 1 {
		t.Errorf("wilson(n=0) = (%g, %g), want (0, 1)", lo, hi)
	}
}

func TestMeanZTest(t *testing.T) {
	z, p := MeanZTest([]float64{1, 2, 3, 4, 5}, 3)
	approx(t, "z(centred)", z, 0, 1e-15)
	approx(t, "p(centred)", p, 1, 1e-15)
	// Shifted null: mean 3, sd √2.5, n 5 ⇒ z = 1/(√2.5/√5) = √2.
	z, _ = MeanZTest([]float64{1, 2, 3, 4, 5}, 2)
	approx(t, "z(shifted)", z, math.Sqrt2, 1e-12)
	// Degenerate sample.
	_, p = MeanZTest([]float64{7, 7, 7}, 7)
	approx(t, "p(constant, matching)", p, 1, 0)
	_, p = MeanZTest([]float64{7, 7, 7}, 8)
	approx(t, "p(constant, off)", p, 0, 0)
	_, p = MeanZTest([]float64{1}, 0)
	approx(t, "p(n<2)", p, 1, 0)
}

func TestBudget(t *testing.T) {
	b := Budget{Alpha: 1e-6, Gates: 50}
	approx(t, "per-gate", b.PerGate(), 2e-8, 1e-20)
	b = Budget{Alpha: 0.01, Gates: 0}
	approx(t, "no gates", b.PerGate(), 0.01, 0)
}

func TestPITAndExpCDF(t *testing.T) {
	cdf := ExpCDF(2)
	approx(t, "ExpCDF(0)", cdf(0), 0, 0)
	approx(t, "ExpCDF(ln2/2)", cdf(math.Ln2/2), 0.5, 1e-15)
	u := PIT([]float64{0, math.Ln2 / 2}, cdf)
	approx(t, "PIT[0]", u[0], 0, 0)
	approx(t, "PIT[1]", u[1], 0.5, 1e-15)
}

// Package vv is the statistical verification-and-validation layer of
// the SAMURAI reproduction. The golden seeded tests elsewhere in the
// tree pin *determinism* — the same seed always yields the same sample
// path — but nothing there checks that the paths are drawn from the
// *right law*. A thinning bug that scales every propensity by (1+ε)
// is perfectly deterministic and passes every golden test while
// skewing every dwell time; it is exactly the class of defect this
// package exists to catch.
//
// The package has three parts:
//
//   - analytic references (analytic.go): a deterministic
//     master-equation propagator for the 2-state time-inhomogeneous
//     chain under PWL bias, plus exact dwell-time CDFs — no sampling.
//   - a seeded statistical test kit (this file): Kolmogorov–Smirnov,
//     chi-square and exact-binomial/CLT gates with sample-size-aware
//     thresholds derived from an explicit false-positive budget.
//   - conformance suites (scenario.go, conformance.go): a scenario
//     matrix driven through markov.Uniformise, rtn.Compose and
//     samurai.Run, with empirical distributions gated against the
//     analytic references.
//
// Everything is deterministic for a fixed master seed: sampling uses
// split rng.Streams and every p-value is computed by closed-form
// series, so the JSON conformance report is bit-identical across runs.
package vv

import (
	"math"
	"sort"
)

// ---------------------------------------------------------------------
// Normal distribution.

// NormalCDF returns Φ(x), the standard normal CDF.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalTwoSidedP returns the two-sided tail probability of a standard
// normal statistic: P(|Z| ≥ |z|) = erfc(|z|/√2).
func NormalTwoSidedP(z float64) float64 {
	return math.Erfc(math.Abs(z) / math.Sqrt2)
}

// NormalQuantile returns z with Φ(z) = p for p in (0, 1), by bisection
// on NormalCDF. Bisection is slower than a rational approximation but
// carries no tuned constants and is exactly reproducible; the kit only
// evaluates it a handful of times per report.
func NormalQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		return math.NaN()
	}
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if NormalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// ---------------------------------------------------------------------
// Kolmogorov–Smirnov.

// KSStat returns the two-sided Kolmogorov–Smirnov statistic
// D_n = sup_x |F_n(x) − F(x)| of the sample against the reference CDF.
// The sample is not modified.
func KSStat(sample []float64, cdf func(float64) float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	n := float64(len(s))
	d := 0.0
	for i, x := range s {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// KSPValue returns the p-value of a two-sided KS statistic d for sample
// size n, using the asymptotic Kolmogorov distribution with Stephens'
// finite-sample correction:
//
//	λ = (√n + 0.12 + 0.11/√n)·d,   Q(λ) = 2·Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}
//
// The series is alternating with super-exponentially shrinking terms,
// so truncation after 100 terms is far below float64 resolution.
func KSPValue(n int, d float64) float64 {
	if n <= 0 || d <= 0 {
		return 1
	}
	sn := math.Sqrt(float64(n))
	lambda := (sn + 0.12 + 0.11/sn) * d
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k) * float64(k) * lambda * lambda)
		sum += sign * term
		sign = -sign
		if term < 1e-300 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// KSPValueDKW returns the Dvoretzky–Kiefer–Wolfowitz tail bound
// P(D_n > d) ≤ 2·e^(−2nd²), clamped to [0, 1]. Unlike the asymptotic
// Kolmogorov distribution this is a rigorous finite-sample bound at
// every n, so gating on it keeps the false-positive budget honest even
// for small samples; it is slightly conservative (a true p-value is
// never larger), which costs no detection power at the effect sizes
// the conformance gates target.
func KSPValueDKW(n int, d float64) float64 {
	if n <= 0 || d <= 0 {
		return 1
	}
	p := 2 * math.Exp(-2*float64(n)*d*d)
	if p > 1 {
		return 1
	}
	return p
}

// ---------------------------------------------------------------------
// Chi-square via the regularized incomplete gamma function.

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a) for a > 0, x ≥ 0 — the survival function of
// the Gamma(a, 1) distribution. Series expansion for x < a+1, Lentz
// continued fraction otherwise (both standard, both deterministic).
func GammaQ(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a, x) = 1 − Q(a, x) by its power series.
func gammaPSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 1000; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a, x) by the modified Lentz
// continued fraction.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 1000; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquarePValue returns P(χ²_dof ≥ stat) = Q(dof/2, stat/2).
func ChiSquarePValue(stat float64, dof int) float64 {
	if dof <= 0 {
		return math.NaN()
	}
	if stat <= 0 {
		return 1
	}
	return GammaQ(float64(dof)/2, stat/2)
}

// ChiSquareUniform performs a chi-square goodness-of-fit test of
// probability-integral-transformed values u (which are iid Uniform(0,1)
// under the null hypothesis that the original sample follows the
// reference CDF) against k equiprobable bins. It returns the statistic
// and the degrees of freedom (k−1). Values outside [0,1) are clamped
// into the edge bins.
func ChiSquareUniform(u []float64, k int) (stat float64, dof int) {
	if k < 2 || len(u) == 0 {
		return 0, 0
	}
	counts := make([]int, k)
	for _, v := range u {
		i := int(v * float64(k))
		if i < 0 {
			i = 0
		}
		if i >= k {
			i = k - 1
		}
		counts[i]++
	}
	expected := float64(len(u)) / float64(k)
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, k - 1
}

// PIT applies the probability integral transform cdf(x) to every
// sample, returning the transformed slice (the input is unchanged).
func PIT(sample []float64, cdf func(float64) float64) []float64 {
	u := make([]float64, len(sample))
	for i, x := range sample {
		u[i] = cdf(x)
	}
	return u
}

// ---------------------------------------------------------------------
// Binomial and CLT mean gates.

// BinomTwoSidedP returns the exact two-sided p-value of observing k
// successes in n Bernoulli(p0) trials, by the minimum-likelihood
// convention: the summed probability of every outcome whose point mass
// does not exceed that of k (with a small relative slack so ties are
// included despite rounding). Exact for any (k, n, p0), including the
// tiny np0 regimes where the normal approximation fails; cost is O(n).
func BinomTwoSidedP(k, n int, p0 float64) float64 {
	if n <= 0 || k < 0 || k > n {
		return math.NaN()
	}
	if p0 <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p0 >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	logPMF := func(j int) float64 {
		lgn, _ := math.Lgamma(float64(n + 1))
		lgj, _ := math.Lgamma(float64(j + 1))
		lgnj, _ := math.Lgamma(float64(n - j + 1))
		return lgn - lgj - lgnj + float64(j)*math.Log(p0) + float64(n-j)*math.Log1p(-p0)
	}
	ref := logPMF(k)
	p := 0.0
	for j := 0; j <= n; j++ {
		if lp := logPMF(j); lp <= ref+1e-7 {
			p += math.Exp(lp)
		}
	}
	if p > 1 {
		return 1
	}
	return p
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion with k successes in n trials at normal quantile z — the
// interval whose coverage stays honest at small k, unlike the Wald
// interval.
func WilsonInterval(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	phat := float64(k) / float64(n)
	nn := float64(n)
	z2 := z * z
	den := 1 + z2/nn
	centre := (phat + z2/(2*nn)) / den
	half := z / den * math.Sqrt(phat*(1-phat)/nn+z2/(4*nn*nn))
	lo, hi = centre-half, centre+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// MeanZTest returns the CLT z statistic and two-sided p-value of the
// sample mean against the reference mean mu0, using the sample's own
// (unbiased) standard deviation. With n in the thousands the normal
// approximation error is far below the per-gate thresholds the kit
// runs at.
func MeanZTest(sample []float64, mu0 float64) (z, p float64) {
	n := len(sample)
	if n < 2 {
		return 0, 1
	}
	mean := 0.0
	for _, v := range sample {
		mean += v
	}
	mean /= float64(n)
	ss := 0.0
	for _, v := range sample {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	if sd == 0 {
		//lint:ignore floateq zero-variance sample: exact equality is the only sensible test
		if mean == mu0 {
			return 0, 1
		}
		return math.Inf(1), 0
	}
	z = (mean - mu0) / (sd / math.Sqrt(float64(n)))
	return z, NormalTwoSidedP(z)
}

// ---------------------------------------------------------------------
// False-positive budget.

// Budget is an explicit false-positive allowance for a battery of
// statistical gates: the total probability, under the null hypothesis
// that the simulator is exact, that at least one gate fails. Bonferroni
// division keeps the bound valid regardless of dependence between
// gates: per-gate α = Alpha / Gates, and by the union bound the whole
// battery rejects a correct simulator with probability ≤ Alpha.
type Budget struct {
	// Alpha is the total false-positive probability per report run.
	Alpha float64
	// Gates is the number of statistical gates sharing the budget.
	Gates int
}

// PerGate returns the Bonferroni-divided per-gate significance level.
func (b Budget) PerGate() float64 {
	if b.Gates <= 0 {
		return b.Alpha
	}
	return b.Alpha / float64(b.Gates)
}

// ExpCDF returns the CDF of the exponential distribution with the
// given rate: F(t) = 1 − e^(−rate·t).
func ExpCDF(rate float64) func(float64) float64 {
	return func(t float64) float64 {
		if t <= 0 {
			return 0
		}
		return -math.Expm1(-rate * t)
	}
}

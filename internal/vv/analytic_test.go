package vv

import (
	"math"
	"testing"

	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

// activeTrap is the β≈1 fixture shared with the markov package's tests.
func activeTrap(ctx trap.Context) trap.Trap {
	return trap.Trap{Y: 0.45 * ctx.Tox, E: 0}
}

func mustMaster(t *testing.T, ctx trap.Context, tr trap.Trap, bias *waveform.PWL) *Master {
	t.Helper()
	m, err := NewMaster(ctx, tr, bias)
	if err != nil {
		t.Fatalf("NewMaster: %v", err)
	}
	return m
}

func TestNewMasterValidates(t *testing.T) {
	ctx := vvCtx()
	if _, err := NewMaster(ctx, activeTrap(ctx), nil); err == nil {
		t.Fatalf("nil bias accepted")
	}
	var bad trap.Context
	if _, err := NewMaster(bad, trap.Trap{}, waveform.Constant(1)); err == nil {
		t.Fatalf("invalid context accepted")
	}
}

// TestMasterConstantBias pins the propagator against the textbook
// closed forms p(t) = p∞ + (p0−p∞)e^(−λs·t) under constant bias.
func TestMasterConstantBias(t *testing.T) {
	ctx := vvCtx()
	tr := activeTrap(ctx)
	m := mustMaster(t, ctx, tr, waveform.Constant(1.2))
	lc, le := ctx.Rates(tr, 1.2)
	ls := lc + le
	pInf := lc / ls
	approx(t, "RateSum", m.RateSum(), ls, 1e-9*ls)
	approx(t, "StationaryOccupancy", m.StationaryOccupancy(1.2), pInf, 1e-12)

	for _, h := range []float64{0.01 / ls, 1 / ls, 10 / ls, 300 / ls} {
		want := pInf * -math.Expm1(-ls*h) // p0 = 0
		approx(t, "Occupancy", m.Occupancy(0, h, 0), want, 1e-12)
		// Exact ∫p and E[N] closed forms.
		occInt := pInf*h - pInf*(-math.Expm1(-ls*h))/ls
		approx(t, "MeanOccupancy", m.MeanOccupancy(0, h, 0), occInt/h, 1e-12)
		wantN := lc*h + (le-lc)*occInt
		approx(t, "ExpectedTransitions", m.ExpectedTransitions(0, h, 0), wantN, 1e-9*wantN+1e-15)
	}
	// Propagation is consistent under splitting the interval.
	h := 5 / ls
	pMid := m.Occupancy(0, h/2, 0)
	approx(t, "split consistency", m.Occupancy(h/2, h, pMid), m.Occupancy(0, h, 0), 1e-14)
}

// TestMasterMatchesODEOracle checks the propagator against the
// markov package's RK4 occupancy oracle on genuinely time-varying
// biases (ramp, step, pulse train), where no closed form exists.
func TestMasterMatchesODEOracle(t *testing.T) {
	ctx := vvCtx()
	tr := activeTrap(ctx)
	ls := ctx.RateSum(tr)
	horizon := 60 / ls

	ramp, err := waveform.New([]float64{0, horizon}, []float64{0.95, 1.45})
	if err != nil {
		t.Fatalf("ramp: %v", err)
	}
	step, err := waveform.Step([]float64{0, horizon / 2}, []float64{0.95, 1.45}, horizon/1000)
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	var pulseT, pulseV []float64
	for i := 0; i < 4; i++ {
		u := float64(i) * horizon / 4
		pulseT = append(pulseT, u, u+horizon/10)
		pulseV = append(pulseV, 1.45, 0.95)
	}
	pulses, err := waveform.Step(pulseT, pulseV, horizon/500)
	if err != nil {
		t.Fatalf("pulses: %v", err)
	}

	for _, tc := range []struct {
		name string
		bias *waveform.PWL
	}{
		{"ramp", ramp},
		{"step", step},
		{"pulses", pulses},
	} {
		m := mustMaster(t, ctx, tr, tc.bias)
		rates := func(u float64) (float64, float64) {
			return ctx.Rates(tr, tc.bias.Eval(u))
		}
		const oracleSteps = 400000
		_, odeP := markov.OccupancyODEFunc(rates, 0, horizon, 0, oracleSteps)
		const checks = 16
		_, ps := m.OccupancyGrid(0, horizon, 0, checks)
		for i := 0; i <= checks; i++ {
			ode := odeP[i*oracleSteps/checks]
			if math.Abs(ps[i]-ode) > 1e-7 {
				t.Errorf("%s: p at grid %d: propagator %.12g vs oracle %.12g", tc.name, i, ps[i], ode)
			}
		}
	}
}

func TestFirstTransitionCDFConstantBias(t *testing.T) {
	ctx := vvCtx()
	tr := activeTrap(ctx)
	m := mustMaster(t, ctx, tr, waveform.Constant(1.2))
	lc, le := ctx.Rates(tr, 1.2)

	// Starting empty the first flip is the capture: Exp(λc).
	cdf := m.FirstTransitionCDF(0, false)
	ref := ExpCDF(lc)
	for _, u := range []float64{0.1 / lc, 1 / lc, 4 / lc} {
		approx(t, "first-flip CDF (empty)", cdf(u), ref(u), 1e-12)
	}
	// Starting filled it is the emission: Exp(λe).
	cdf = m.FirstTransitionCDF(0, true)
	ref = ExpCDF(le)
	approx(t, "first-flip CDF (filled)", cdf(1/le), ref(1/le), 1e-12)
	if got := cdf(-1); got > 0 {
		t.Errorf("CDF before start = %g, want 0", got)
	}

	// The conditional variant renormalises by F(t1) and saturates at 1.
	t1 := 2 / lc
	raw := m.FirstTransitionCDF(0, false)
	cond := m.ConditionalFirstTransitionCDF(0, t1, false)
	approx(t, "conditional mid", cond(t1/2), raw(t1/2)/raw(t1), 1e-12)
	approx(t, "conditional at horizon", cond(t1), 1, 0)
	approx(t, "IntegratedExitRate", m.IntegratedExitRate(0, t1, false), lc*t1, 1e-9*lc*t1)
}

// TestWindowedDwellCDFLimits checks the windowed dwell law reduces to
// the plain exponential when the window dwarfs the mean dwell, and that
// it is a valid, monotone CDF in the strongly censored regime.
func TestWindowedDwellCDFLimits(t *testing.T) {
	ctx := vvCtx()
	tr := activeTrap(ctx)
	m := mustMaster(t, ctx, tr, waveform.Constant(1.2))
	lc, le := ctx.Rates(tr, 1.2)

	// β≈1: the window is 300 mean dwells, censoring is negligible.
	T := 300 / (lc + le)
	cdf := m.WindowedDwellCDF(1.2, 0, T, 0, true)
	ref := ExpCDF(le)
	for _, u := range []float64{0.2 / le, 1 / le, 3 / le} {
		approx(t, "windowed≈exp", cdf(u), ref(u), 2e-2)
	}
	// Boundary behaviour.
	if cdf(0) > 0 || cdf(-1) > 0 {
		t.Errorf("CDF positive at d<=0")
	}
	approx(t, "CDF at window", cdf(T), 1, 0)
	prev := -1.0
	for i := 0; i <= 100; i++ {
		v := cdf(float64(i) / 100 * T)
		if v < prev-1e-12 || v < 0 || v > 1 {
			t.Fatalf("windowed dwell CDF not monotone in [0,1] at %d: %g after %g", i, v, prev)
		}
		prev = v
	}
}

// TestWindowedDwellCDFAgainstSimulation draws an ensemble with the
// production kernel in the strongly censored extreme-β regime and
// checks the pooled completed dwells against the windowed law — and
// confirms the plain exponential is measurably wrong there (the very
// discrepancy that motivated the windowed reference).
func TestWindowedDwellCDFAgainstSimulation(t *testing.T) {
	ctx := vvCtx()
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0.12} // β ≈ 100
	ls := ctx.RateSum(tr)
	T := 300 / ls
	m := mustMaster(t, ctx, tr, waveform.Constant(1.2))
	lc, _ := ctx.Rates(tr, 1.2)

	r := rng.New(424242)
	var child rng.Stream
	var empty []float64
	nPaths := 1500
	if testing.Short() {
		nPaths = 400
	}
	for i := 0; i < nPaths; i++ {
		r.SplitInto(uint64(i), &child)
		p, err := markov.Uniformise(ctx, tr, markov.ConstantBias(1.2), 0, T, &child)
		if err != nil {
			t.Fatalf("Uniformise: %v", err)
		}
		_, e := p.DwellTimes()
		empty = append(empty, e...)
	}
	if len(empty) < 500 {
		t.Fatalf("too few empty dwells pooled: %d", len(empty))
	}
	dWindowed := KSStat(empty, m.WindowedDwellCDF(1.2, 0, T, 0, false))
	dExp := KSStat(empty, ExpCDF(lc))
	// The windowed law fits; the uncensored exponential does not.
	bound := 3 / math.Sqrt(float64(len(empty)))
	if dWindowed > bound {
		t.Errorf("windowed dwell KS D = %g exceeds %g (n=%d)", dWindowed, bound, len(empty))
	}
	if dExp < 2*dWindowed {
		t.Errorf("plain-exponential KS D = %g not clearly worse than windowed %g", dExp, dWindowed)
	}
}

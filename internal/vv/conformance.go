package vv

import (
	"fmt"
	"math"
	"sort"

	"samurai"
	"samurai/internal/device"
	"samurai/internal/markov"
	"samurai/internal/obs"
	"samurai/internal/rareevent"
	"samurai/internal/rng"
	"samurai/internal/rtn"
	"samurai/internal/sram"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

// Conformance-harness instrumentation; published as gates run so a
// long matrix is observable through the standard /metrics endpoint.
var (
	mVVScenarios = obs.GetCounter("samurai_vv_scenarios_total",
		"conformance scenarios executed")
	mVVGates = obs.GetCounter("samurai_vv_gates_total",
		"statistical gates evaluated")
	mVVGateFailures = obs.GetCounter("samurai_vv_gate_failures_total",
		"statistical gates that rejected the simulator")
	mVVPaths = obs.GetCounter("samurai_vv_paths_total",
		"sample paths drawn by the conformance harness")
)

// Simulator draws one trap occupancy path over [t0, t1] under a PWL
// gate bias. The conformance suites are written against this seam so a
// deliberately broken kernel can be substituted in tests to prove the
// gates have detection power.
type Simulator func(ctx trap.Context, tr trap.Trap, bias *waveform.PWL, t0, t1 float64, r *rng.Stream) (*markov.Path, error)

// DefaultSimulator is the production Algorithm 1 kernel
// (markov.Uniformise) behind the Simulator seam.
func DefaultSimulator(ctx trap.Context, tr trap.Trap, bias *waveform.PWL, t0, t1 float64, r *rng.Stream) (*markov.Path, error) {
	return markov.Uniformise(ctx, tr, markov.PWLBias(bias), t0, t1, r)
}

// Gate is one statistical check in a conformance report. Pass is
// decided by comparing the p-value against the gate's Bonferroni share
// of the report-wide false-positive budget (Alpha); for the "exact"
// statistic the p-value is 1 or 0 by construction.
type Gate struct {
	Name string `json:"name"`
	// Statistic names the test family: "binom" (exact binomial),
	// "clt-z" (CLT mean z-test), "ks-dkw" (Kolmogorov–Smirnov gated on
	// the DKW tail bound), "chi2" (chi-square on PIT bins), or "exact"
	// (a deterministic identity that must hold to the bit).
	Statistic string  `json:"statistic"`
	N         int     `json:"n"`
	Value     float64 `json:"value"`
	Ref       float64 `json:"ref"`
	PValue    float64 `json:"p_value"`
	Alpha     float64 `json:"alpha"`
	Pass      bool    `json:"pass"`
}

// ScenarioReport is the outcome of one scenario's gate battery.
type ScenarioReport struct {
	Name  string `json:"name"`
	Note  string `json:"note"`
	Paths int    `json:"paths"`
	Gates []Gate `json:"gates"`
	// Rare carries the importance-sampling aggregate (ESS, LR
	// variance, CI width) of rare-event rows; absent on naive rows, so
	// existing report goldens are unaffected.
	Rare *rareevent.ArrayStats `json:"rare,omitempty"`
	Pass bool                  `json:"pass"`
}

// add records a gate in the report and the obs counters.
func (sr *ScenarioReport) add(g Gate) {
	mVVGates.Inc()
	if !g.Pass {
		mVVGateFailures.Inc()
		sr.Pass = false
	}
	sr.Gates = append(sr.Gates, g)
}

// Kernel names accepted by Options.Kernel and recorded in the report.
const (
	// KernelSequential draws each scenario path with one Simulator call
	// (the production markov.Uniformise behind the seam by default).
	KernelSequential = "sequential"
	// KernelBatch draws each scenario's whole path ensemble in a single
	// markov.BatchState.Run call, with every path as one SoA lane.
	KernelBatch = "batch"
)

// Report is the full conformance report emitted by cmd/samuraivv. It
// contains only ordered fields (no maps, no timestamps), so for a fixed
// seed the JSON encoding is bit-identical across runs and machines.
type Report struct {
	Seed uint64 `json:"seed"`
	// Kernel records which sampling kernel drew the synthetic-scenario
	// ensembles. Because batch lane k splits the scenario stream exactly
	// as the sequential loop does, the two kernels' reports are
	// bit-identical apart from this field — TestBatchKernelReportIdentical
	// pins that.
	Kernel string `json:"kernel"`
	// Alpha is the total false-positive budget: the probability that a
	// correct simulator fails at least one gate in this report.
	Alpha        float64          `json:"alpha"`
	Gates        int              `json:"gates"`
	PerGateAlpha float64          `json:"per_gate_alpha"`
	Scenarios    []ScenarioReport `json:"scenarios"`
	Pass         bool             `json:"pass"`
}

// DefaultAlpha is the default report-wide false-positive budget. It is
// the CI flake bound documented in DESIGN.md §10.
const DefaultAlpha = 1e-6

// asymptoticSafety further divides the per-gate alpha for gates whose
// p-values are asymptotic approximations (CLT z, chi-square). At the
// extreme tails these budgets operate in (α ≈ 1e-8), moderate-deviation
// error can inflate the true rejection rate by a small factor; an extra
// order of magnitude of threshold headroom keeps the documented budget
// honest while costing no detection power (real defects produce
// p-values tens of orders of magnitude below any of these thresholds).
const asymptoticSafety = 10

// chiBins is the equiprobable bin count of the PIT chi-square gates.
const chiBins = 20

// composeSamples is the trace sample count of the rtn.Compose gates.
const composeSamples = 512

// composeDrainCurrent is the constant drain current, A, used by the
// Compose gates (the value is arbitrary: Eq (3) is linear in I_d).
const composeDrainCurrent = 10e-6

// Options configures a conformance run.
type Options struct {
	// Seed is the master seed; every stream in the run derives from it.
	Seed uint64
	// Alpha is the report-wide false-positive budget (default
	// DefaultAlpha).
	Alpha float64
	// Sim is the simulator under test (default DefaultSimulator). Only
	// the sequential kernel routes through this seam; combining a custom
	// Sim with KernelBatch is rejected.
	Sim Simulator
	// Kernel selects how scenario ensembles are drawn: KernelSequential
	// (default, one Sim call per path) or KernelBatch (one
	// markov.BatchState.Run per scenario, every path a lane).
	Kernel string
	// E2E also drives the full samurai.Run methodology (two circuit
	// passes per run) and gates the resulting trap path statistics.
	E2E bool
	// E2ERuns is the number of end-to-end methodology runs (default 32).
	E2ERuns int
	// Rare appends the rare-event unbiasedness rows (RareMatrix) to
	// the report. The rows always draw through the sequential tilted
	// kernel regardless of Kernel — the rare battery gates the
	// importance-sampling layer, not the naive kernels — so sequential
	// and batch reports still differ only in their "kernel" field.
	Rare bool
}

func (o Options) defaults() Options {
	if o.Alpha == 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Sim == nil {
		o.Sim = DefaultSimulator
	}
	if o.Kernel == "" {
		o.Kernel = KernelSequential
	}
	if o.E2ERuns == 0 {
		o.E2ERuns = 32
	}
	return o
}

// e2eGateCount is the number of gates the end-to-end suite contributes
// (len(e2eProbeFracs) binomial probes + one first-transition KS).
const e2eGateCount = 4

// e2eProbeFracs positions the end-to-end occupancy probes inside the
// write pattern.
var e2eProbeFracs = []float64{0.25, 0.6, 0.9}

// RunMatrix executes the full conformance matrix (plus, optionally, the
// end-to-end methodology suite) and returns the report. The report is a
// pure function of Options for a fixed simulator.
func RunMatrix(opts Options) (*Report, error) {
	if opts.Kernel == KernelBatch && opts.Sim != nil {
		return nil, fmt.Errorf("vv: the batch kernel bypasses the Simulator seam; drop Sim or use %s", KernelSequential)
	}
	opts = opts.defaults()
	if opts.Kernel != KernelSequential && opts.Kernel != KernelBatch {
		return nil, fmt.Errorf("vv: unknown kernel %q (want %s or %s)", opts.Kernel, KernelSequential, KernelBatch)
	}
	scenarios, err := Matrix()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, sc := range scenarios {
		total += sc.GateCount()
	}
	if opts.E2E {
		total += e2eGateCount
	}
	if opts.Rare {
		total += rareGateCount()
	}
	budget := Budget{Alpha: opts.Alpha, Gates: total}
	root := rng.New(opts.Seed)
	rep := &Report{
		Seed:         opts.Seed,
		Kernel:       opts.Kernel,
		Alpha:        opts.Alpha,
		Gates:        total,
		PerGateAlpha: budget.PerGate(),
		Pass:         true,
	}
	var bs *markov.BatchState
	if opts.Kernel == KernelBatch {
		bs = markov.NewBatchState()
	}
	for i, sc := range scenarios {
		var sr ScenarioReport
		var err error
		if bs != nil {
			sr, err = RunScenarioBatch(sc, bs, root.Split(uint64(100+i)), budget)
		} else {
			sr, err = RunScenario(sc, opts.Sim, root.Split(uint64(100+i)), budget)
		}
		if err != nil {
			return nil, err
		}
		mVVScenarios.Inc()
		if !sr.Pass {
			rep.Pass = false
		}
		rep.Scenarios = append(rep.Scenarios, sr)
	}
	if opts.Rare {
		for i, sc := range RareMatrix() {
			sr, err := RunRareScenario(sc, DefaultRareSimulator, root.Split(uint64(500+i)), budget)
			if err != nil {
				return nil, err
			}
			mVVScenarios.Inc()
			if !sr.Pass {
				rep.Pass = false
			}
			rep.Scenarios = append(rep.Scenarios, sr)
		}
	}
	if opts.E2E {
		sr, err := runE2E(opts, root.Split(999), budget)
		if err != nil {
			return nil, err
		}
		mVVScenarios.Inc()
		if !sr.Pass {
			rep.Pass = false
		}
		rep.Scenarios = append(rep.Scenarios, sr)
	}
	return rep, nil
}

// RunScenario draws the scenario's path ensemble with sim and runs its
// gate battery against the analytic Master reference. The budget is the
// report-wide false-positive budget (its PerGate share decides each
// gate's threshold).
func RunScenario(sc Scenario, sim Simulator, r *rng.Stream, budget Budget) (ScenarioReport, error) {
	paths := make([]*markov.Path, sc.Paths)
	var child rng.Stream
	for i := range paths {
		r.SplitInto(uint64(i), &child)
		p, err := sim(sc.Ctx, sc.Tr, sc.Bias, sc.T0, sc.T1, &child)
		if err != nil {
			return ScenarioReport{Name: sc.Name, Note: sc.Note, Paths: sc.Paths},
				fmt.Errorf("vv: scenario %s path %d: %w", sc.Name, i, err)
		}
		paths[i] = p
	}
	return scenarioGates(sc, paths, budget)
}

// RunScenarioBatch draws the scenario's whole ensemble with one
// markov.BatchState.Run call — every path is a lane of the SoA kernel —
// and runs the identical gate battery. Lane k derives its stream via
// r.SplitInto(k), exactly the derivation RunScenario's sequential loop
// uses, so the resulting ScenarioReport is bit-identical to the
// sequential one under the production simulator: the batch row re-proves
// the paper's statistical conformance for the fast kernel at zero extra
// analytic machinery.
func RunScenarioBatch(sc Scenario, bs *markov.BatchState, r *rng.Stream, budget Budget) (ScenarioReport, error) {
	traps := make([]trap.Trap, sc.Paths)
	for i := range traps {
		traps[i] = sc.Tr
	}
	paths, err := bs.Run(sc.Ctx, traps, sc.Bias, sc.T0, sc.T1, r)
	if err != nil {
		return ScenarioReport{Name: sc.Name, Note: sc.Note, Paths: sc.Paths},
			fmt.Errorf("vv: scenario %s batch: %w", sc.Name, err)
	}
	return scenarioGates(sc, paths, budget)
}

// scenarioGates runs the scenario's gate battery over an already-drawn
// path ensemble against the analytic Master reference.
func scenarioGates(sc Scenario, paths []*markov.Path, budget Budget) (ScenarioReport, error) {
	m, err := NewMaster(sc.Ctx, sc.Tr, sc.Bias)
	if err != nil {
		return ScenarioReport{}, fmt.Errorf("vv: scenario %s: %w", sc.Name, err)
	}
	perGate := budget.PerGate()
	alphaAsym := perGate / asymptoticSafety
	sr := ScenarioReport{Name: sc.Name, Note: sc.Note, Paths: sc.Paths, Pass: true}
	mVVPaths.Add(int64(len(paths)))

	p0 := 0.0
	if sc.Tr.InitFilled {
		p0 = 1
	}

	// Occupancy probes: exact binomial tests of the filled count at
	// each probe instant against the analytic p(t). Exact at any n·p,
	// including the pinned-state regimes where CLT gates are invalid.
	probes := append([]float64(nil), sc.Probes...)
	sort.Float64s(probes)
	pAnalytic := p0
	prev := sc.T0
	for j, t := range probes {
		pAnalytic = m.Occupancy(prev, t, pAnalytic)
		prev = t
		k := 0
		for _, p := range paths {
			if p.StateAt(t) {
				k++
			}
		}
		pv := BinomTwoSidedP(k, len(paths), pAnalytic)
		sr.add(Gate{
			Name:      fmt.Sprintf("occupancy-probe-%d", j),
			Statistic: "binom",
			N:         len(paths),
			Value:     float64(k),
			Ref:       float64(len(paths)) * pAnalytic,
			PValue:    pv,
			Alpha:     perGate,
			Pass:      pv >= perGate,
		})
	}

	// Time-average occupancy: CLT z-test of the per-path filled
	// fraction against the analytic (1/T)·∫p dt.
	occ := make([]float64, len(paths))
	for i, p := range paths {
		occ[i] = p.FilledFraction()
	}
	muOcc := m.MeanOccupancy(sc.T0, sc.T1, p0)
	z, pv := MeanZTest(occ, muOcc)
	sr.add(Gate{
		Name: "occupancy-mean", Statistic: "clt-z", N: len(occ),
		Value: z, Ref: muOcc, PValue: pv, Alpha: alphaAsym,
		Pass: pv >= alphaAsym,
	})

	// Transition count: CLT z-test of the per-path flip count against
	// the analytic E[N] = ∫ λ_c(1−p)+λ_e·p dt. This is the gate with
	// the most direct power against thinning-probability bugs — a
	// (1+ε) rate scaling shifts E[N] by ε while golden tests stay green.
	tc := make([]float64, len(paths))
	for i, p := range paths {
		tc[i] = float64(p.Transitions())
	}
	muTrans := m.ExpectedTransitions(sc.T0, sc.T1, p0)
	z, pv = MeanZTest(tc, muTrans)
	sr.add(Gate{
		Name: "transitions-mean", Statistic: "clt-z", N: len(tc),
		Value: z, Ref: muTrans, PValue: pv, Alpha: alphaAsym,
		Pass: pv >= alphaAsym,
	})

	// First-transition time: KS against the exact conditional law
	// F(t)/F(t1) of the inhomogeneous chain, gated on the DKW bound
	// (rigorous at any sample size, no asymptotic approximation).
	var first []float64
	for _, p := range paths {
		if len(p.Times) > 1 {
			first = append(first, p.Times[1])
		}
	}
	firstCDF := m.ConditionalFirstTransitionCDF(sc.T0, sc.T1, sc.Tr.InitFilled)
	d := KSStat(first, firstCDF)
	pv = KSPValueDKW(len(first), d)
	sr.add(Gate{
		Name: "first-transition-ks", Statistic: "ks-dkw", N: len(first),
		Value: d, Ref: 0, PValue: pv, Alpha: perGate,
		Pass: pv >= perGate,
	})

	if sc.Dwell {
		addDwellGates(&sr, sc, m, paths, alphaAsym, p0)
	}
	if sc.Compose {
		if err := addComposeGates(&sr, sc, m, paths, perGate, alphaAsym, p0); err != nil {
			return sr, err
		}
	}
	return sr, nil
}

// addDwellGates runs the constant-bias dwell-time gates against the
// exact windowed dwell law (see Master.WindowedDwellCDF — the finite
// horizon censors long sojourns, so the reference is a mixture of
// truncated exponentials, not a plain exponential). Sojourns are pooled
// across paths; within a path the pooled samples are only approximately
// iid (the window couples how many sojourns fit), so both gate families
// run at the asymptotic threshold rather than the rigorous one.
func addDwellGates(sr *ScenarioReport, sc Scenario, m *Master, paths []*markov.Path, alphaAsym, p0 float64) {
	v := sc.Bias.Eval(sc.T0)
	var filled, empty []float64
	for _, p := range paths {
		f, e := p.DwellTimes()
		filled = append(filled, f...)
		empty = append(empty, e...)
	}
	for _, g := range []struct {
		name   string
		dwells []float64
		state  bool
	}{
		{"dwell-filled", filled, true},
		{"dwell-empty", empty, false},
	} {
		cdf := m.WindowedDwellCDF(v, sc.T0, sc.T1, p0, g.state)
		d := KSStat(g.dwells, cdf)
		pv := KSPValueDKW(len(g.dwells), d)
		sr.add(Gate{
			Name: g.name + "-ks", Statistic: "ks-dkw", N: len(g.dwells),
			Value: d, Ref: 0, PValue: pv, Alpha: alphaAsym,
			Pass: pv >= alphaAsym,
		})
		stat, dof := ChiSquareUniform(PIT(g.dwells, cdf), chiBins)
		pv = ChiSquarePValue(stat, dof)
		sr.add(Gate{
			Name: g.name + "-chi2", Statistic: "chi2", N: len(g.dwells),
			Value: stat, Ref: float64(dof), PValue: pv, Alpha: alphaAsym,
			Pass: pv >= alphaAsym,
		})
	}
}

// addComposeGates drives rtn.Compose over the scenario's path ensemble
// (all paths as traps of one device) and gates the composed trace:
// first an exact Eq (3) identity — every sample must equal the
// single-trap step amplitude times the filled count, to the bit — then
// a CLT gate on the per-path sampled occupancy over the same grid.
func addComposeGates(sr *ScenarioReport, sc Scenario, m *Master, paths []*markov.Path, perGate, alphaAsym, p0 float64) error {
	tech := device.Node("90nm")
	dev := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)
	idW := waveform.Constant(composeDrainCurrent)
	trace, err := rtn.Compose(paths, dev, sc.Bias, idW, sc.T0, sc.T1, composeSamples)
	if err != nil {
		return fmt.Errorf("vv: scenario %s compose: %w", sc.Name, err)
	}

	// Exact identity: Compose under constant bias is algebraically
	// I_i = ΔI·N_filled(t_i) with ΔI = I_d/(W·L·N); both sides are
	// computed through the same float operations, so the difference
	// must be exactly zero.
	step := rtn.StepAmplitude(dev, sc.Bias.Eval(sc.T0), composeDrainCurrent)
	times, counts := rtn.NFilled(paths)
	maxErr := 0.0
	for i, t := range trace.T {
		nf := rtn.CountAt(times, counts, t)
		if e := math.Abs(trace.I[i] - step*float64(nf)); e > maxErr {
			maxErr = e
		}
	}
	identityPass := maxErr <= 0
	pv := 0.0
	if identityPass {
		pv = 1
	}
	sr.add(Gate{
		Name: "compose-identity", Statistic: "exact", N: composeSamples,
		Value: maxErr, Ref: 0, PValue: pv, Alpha: perGate,
		Pass: identityPass,
	})

	// Sampled occupancy over the Compose grid: each path contributes an
	// iid time-average of its 0/1 state at the sample instants; the
	// reference is the analytic p(t) averaged over the same instants.
	_, ps := m.OccupancyGrid(sc.T0, sc.T1, p0, composeSamples-1)
	mu := 0.0
	for _, p := range ps {
		mu += p
	}
	mu /= float64(len(ps))
	sample := make([]float64, len(paths))
	for i, p := range paths {
		_, vs := p.Sample(sc.T0, sc.T1, composeSamples)
		s := 0.0
		for _, v := range vs {
			s += v
		}
		sample[i] = s / float64(len(vs))
	}
	z, pv := MeanZTest(sample, mu)
	sr.add(Gate{
		Name: "compose-occupancy", Statistic: "clt-z", N: len(sample),
		Value: z, Ref: mu, PValue: pv, Alpha: alphaAsym,
		Pass: pv >= alphaAsym,
	})
	return nil
}

// runE2E drives the full samurai.Run methodology with a pinned
// single-trap profile on the pass transistor M1 and gates the resulting
// occupancy paths against a Master built on the *extracted* clean-pass
// bias — so circuit simulation, bias extraction, trap simulation and
// the plumbing between them are all inside the tested loop. The clean
// pass is seed-independent, so one run's extracted bias serves as the
// analytic reference for all runs.
func runE2E(opts Options, r *rng.Stream, budget Budget) (ScenarioReport, error) {
	perGate := budget.PerGate()
	tech := device.Node("90nm")
	vdd := sram.CellConfig{Tech: tech}.Defaults().Vdd
	tctx := tech.TrapContext(vdd)
	// A shallow (fast) trap: λ_s ≈ 4e9/s sees tens of candidate events
	// inside the ~18 ns Fig 8 pattern.
	tr := trap.Trap{Y: 1e-10, E: 0}
	profiles := map[string]trap.Profile{}
	for _, name := range sram.Transistors {
		pr := trap.Profile{Ctx: tctx}
		if name == "M1" {
			pr.Traps = []trap.Trap{tr}
		}
		profiles[name] = pr
	}
	dur := sram.Fig8Pattern(vdd).Duration()

	sr := ScenarioReport{
		Name:  "e2e-samurai-run",
		Note:  "full two-pass methodology, pinned single trap on M1, gates on extracted-bias reference",
		Paths: opts.E2ERuns,
		Pass:  true,
	}
	seeds := make([]uint64, opts.E2ERuns)
	for i := range seeds {
		seeds[i] = r.Uint64()
	}
	states := make([][]bool, len(e2eProbeFracs))
	for j := range states {
		states[j] = make([]bool, opts.E2ERuns)
	}
	var first []float64
	var master *Master
	for run := 0; run < opts.E2ERuns; run++ {
		res, err := samurai.Run(samurai.Config{Tech: tech, Seed: seeds[run], Profiles: profiles})
		if err != nil {
			return sr, fmt.Errorf("vv: e2e run %d: %w", run, err)
		}
		path := res.Paths["M1"][0]
		for j, f := range e2eProbeFracs {
			states[j][run] = path.StateAt(f * dur)
		}
		if len(path.Times) > 1 {
			first = append(first, path.Times[1])
		}
		if master == nil {
			vgs, _, err := res.Clean.Trans.DeviceBias("M1")
			if err != nil {
				return sr, fmt.Errorf("vv: e2e bias extraction: %w", err)
			}
			master, err = NewMaster(tctx, tr, vgs)
			if err != nil {
				return sr, fmt.Errorf("vv: e2e reference: %w", err)
			}
		}
	}

	pAnalytic := 0.0
	prev := 0.0
	for j, f := range e2eProbeFracs {
		t := f * dur
		pAnalytic = master.Occupancy(prev, t, pAnalytic)
		prev = t
		k := 0
		for _, filled := range states[j] {
			if filled {
				k++
			}
		}
		pv := BinomTwoSidedP(k, opts.E2ERuns, pAnalytic)
		sr.add(Gate{
			Name:      fmt.Sprintf("e2e-occupancy-probe-%d", j),
			Statistic: "binom",
			N:         opts.E2ERuns,
			Value:     float64(k),
			Ref:       float64(opts.E2ERuns) * pAnalytic,
			PValue:    pv,
			Alpha:     perGate,
			Pass:      pv >= perGate,
		})
	}
	cdf := master.ConditionalFirstTransitionCDF(0, dur, false)
	d := KSStat(first, cdf)
	pv := KSPValueDKW(len(first), d)
	sr.add(Gate{
		Name: "e2e-first-transition-ks", Statistic: "ks-dkw", N: len(first),
		Value: d, Ref: 0, PValue: pv, Alpha: perGate,
		Pass: pv >= perGate,
	})
	return sr, nil
}

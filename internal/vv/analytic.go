package vv

import (
	"fmt"
	"math"

	"samurai/internal/trap"
	"samurai/internal/units"
	"samurai/internal/waveform"
)

// Master solves the two-state master equation of a single trap under a
// PWL gate-bias waveform, deterministically and without sampling. It
// is the analytic reference every conformance gate compares against.
//
// The occupancy probability p(t) = P(trap filled at t) obeys
//
//	dp/dt = λ_c(t) − (λ_c(t)+λ_e(t))·p(t) = λ_c(t) − λ_s·p(t)
//
// where λ_s = λ_c+λ_e is bias-invariant under the paper's Eq (1).
// With constant λ_s the integrating factor is a plain exponential and
// the exact solution over any interval [a, b] is the piecewise-
// exponential propagator
//
//	p(b) = p(a)·e^(−λ_s(b−a)) + ∫_a^b λ_c(s)·e^(−λ_s(b−s)) ds .
//
// On segments where the bias is constant the integral collapses to the
// closed form p(b) = p∞ + (p(a)−p∞)·e^(−λ_s·h) with p∞ = 1/(1+β); on
// linear (ramp) segments λ_c(s) is smooth and the integral is
// evaluated by composite Gauss–Legendre quadrature on subintervals
// short enough (λ_s·h ≤ 1/4 and a fraction of kT of bias swing) that
// the quadrature error sits at the float64 noise floor. No Monte
// Carlo, no ODE time-stepping error beyond the quadrature.
type Master struct {
	Ctx  trap.Context
	Tr   trap.Trap
	Bias *waveform.PWL

	lambdaS float64
	// dBetaExpDV is |d(logβ)/dV| = Coupling·effC/kT — the bias
	// sensitivity that controls how finely ramp segments must be cut.
	dBetaExpDV float64
}

// NewMaster validates the trap context and builds a solver for the
// given trap and bias waveform.
func NewMaster(ctx trap.Context, tr trap.Trap, bias *waveform.PWL) (*Master, error) {
	if err := ctx.Validate(); err != nil {
		return nil, fmt.Errorf("vv: %w", err)
	}
	if bias == nil || bias.Len() == 0 {
		return nil, fmt.Errorf("vv: nil or empty bias waveform")
	}
	m := &Master{Ctx: ctx, Tr: tr, Bias: bias}
	m.lambdaS = ctx.RateSum(tr)
	// kT in eV is numerically kT/q in volts; LevelSplitEV divides by
	// the same quantity, so the subdivision heuristic below tracks the
	// actual β sensitivity.
	kt := units.ThermalEnergyEV(ctx.TempK)
	m.dBetaExpDV = ctx.Coupling * ctx.EffectiveCoupling(tr) / kt
	return m, nil
}

// RateSum returns λ_s = λ_c+λ_e (bias-invariant).
func (m *Master) RateSum() float64 { return m.lambdaS }

// Rates returns (λ_c, λ_e) at time t.
func (m *Master) Rates(t float64) (lc, le float64) {
	return m.Ctx.Rates(m.Tr, m.Bias.Eval(t))
}

// sameBits reports bit-identity of two floats (used to detect constant
// bias segments without a floating-point equality comparison).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// segments invokes fn over [t0, t1] cut at every bias breakpoint
// strictly inside the interval, so each piece is a single linear (or
// constant) bias segment.
func (m *Master) segments(t0, t1 float64, fn func(a, b float64)) {
	prev := t0
	for _, bt := range m.Bias.T {
		if bt <= t0 || bt >= t1 {
			continue
		}
		fn(prev, bt)
		prev = bt
	}
	if prev < t1 {
		fn(prev, t1)
	}
}

// subdivisions returns how many quadrature subintervals a linear bias
// segment of length h and bias swing dv needs for the Gauss–Legendre
// error to be negligible: λ_s·h ≤ 1/4 and ≤ 1/4 "kT unit" of β
// exponent swing per subinterval.
func (m *Master) subdivisions(h, dv float64) int {
	byRate := m.lambdaS * h / 0.25
	byBias := math.Abs(dv) * m.dBetaExpDV / 0.25
	n := int(math.Ceil(math.Max(byRate, byBias)))
	if n < 1 {
		n = 1
	}
	const maxSub = 1 << 16
	if n > maxSub {
		n = maxSub
	}
	return n
}

// Eight-point Gauss–Legendre nodes and weights on [-1, 1].
var (
	glNodes = [8]float64{
		-0.9602898564975363, -0.7966664774136267, -0.5255324099163290, -0.1834346424956498,
		0.1834346424956498, 0.5255324099163290, 0.7966664774136267, 0.9602898564975363,
	}
	glWeights = [8]float64{
		0.1012285362903763, 0.2223810344533745, 0.3137066458778873, 0.3626837833783620,
		0.3626837833783620, 0.3137066458778873, 0.2223810344533745, 0.1012285362903763,
	}
)

// lambdaC returns λ_c at time t.
func (m *Master) lambdaC(t float64) float64 {
	lc, _ := m.Ctx.Rates(m.Tr, m.Bias.Eval(t))
	return lc
}

// stepLinear propagates p across one quadrature subinterval [u, w] of
// a linear bias segment using the exact exponential propagator with
// Gauss–Legendre quadrature on the forcing integral.
func (m *Master) stepLinear(u, w, pu float64) float64 {
	h := w - u
	forcing := 0.0
	for k := 0; k < 8; k++ {
		s := u + 0.5*h*(1+glNodes[k])
		forcing += glWeights[k] * m.lambdaC(s) * math.Exp(-m.lambdaS*(w-s))
	}
	forcing *= 0.5 * h
	return pu*math.Exp(-m.lambdaS*h) + forcing
}

// stepConstant propagates p across [u, w] under constant bias v,
// algebraically exactly, and returns (p(w), ∫p dt, ∫intensity dt)
// where intensity(t) = λ_c(1−p) + λ_e·p is the expected transition
// rate of the chain.
func (m *Master) stepConstant(v, u, w, pu float64) (pw, occInt, transInt float64) {
	lc, le := m.Ctx.Rates(m.Tr, v)
	h := w - u
	pInf := lc / m.lambdaS
	decay := math.Exp(-m.lambdaS * h)
	pw = pInf + (pu-pInf)*decay
	// ∫p = p∞·h + (p(u)−p∞)·(1−e^{−λs·h})/λs  (exact)
	occInt = pInf*h + (pu-pInf)*(-math.Expm1(-m.lambdaS*h))/m.lambdaS
	// intensity = λc + (λe−λc)·p  ⇒ exact integral via ∫p
	transInt = lc*h + (le-lc)*occInt
	return pw, occInt, transInt
}

// advance walks [t0, t1] starting from occupancy p0 and returns the
// final occupancy together with ∫p dt and the expected transition
// count ∫ λ_c(1−p)+λ_e·p dt.
func (m *Master) advance(t0, t1, p0 float64) (p, occInt, transInt float64) {
	p = p0
	m.segments(t0, t1, func(a, b float64) {
		va, vb := m.Bias.Eval(a), m.Bias.Eval(b)
		if sameBits(va, vb) {
			var oi, ti float64
			p, oi, ti = m.stepConstant(va, a, b, p)
			occInt += oi
			transInt += ti
			return
		}
		n := m.subdivisions(b-a, vb-va)
		h := (b - a) / float64(n)
		for i := 0; i < n; i++ {
			u := a + float64(i)*h
			w := u + h
			if i == n-1 {
				w = b
			}
			mid := 0.5 * (u + w)
			pu := p
			pm := m.stepLinear(u, mid, pu)
			pw := m.stepLinear(mid, w, pm)
			// Simpson on the (smooth) occupancy and intensity over the
			// short subinterval; with λ_s·h ≤ 1/4 the composite error
			// is far below every gate's statistical resolution.
			occInt += (w - u) / 6 * (pu + 4*pm + pw)
			iu := m.intensityAt(u, pu)
			im := m.intensityAt(mid, pm)
			iw := m.intensityAt(w, pw)
			transInt += (w - u) / 6 * (iu + 4*im + iw)
			p = pw
		}
	})
	return p, occInt, transInt
}

// intensityAt returns λ_c(t)·(1−p) + λ_e(t)·p.
func (m *Master) intensityAt(t, p float64) float64 {
	lc, le := m.Ctx.Rates(m.Tr, m.Bias.Eval(t))
	return lc*(1-p) + le*p
}

// Occupancy returns p(t1) given p(t0) = p0.
func (m *Master) Occupancy(t0, t1, p0 float64) float64 {
	if t1 <= t0 {
		return p0
	}
	p, _, _ := m.advance(t0, t1, p0)
	return p
}

// OccupancyGrid returns p(t) on n+1 uniform instants spanning [t0, t1].
func (m *Master) OccupancyGrid(t0, t1, p0 float64, n int) (ts, ps []float64) {
	if n < 1 {
		n = 1
	}
	ts = make([]float64, n+1)
	ps = make([]float64, n+1)
	h := (t1 - t0) / float64(n)
	p := p0
	prev := t0
	for i := 0; i <= n; i++ {
		t := t0 + float64(i)*h
		if i == n {
			t = t1
		}
		if t > prev {
			p = m.Occupancy(prev, t, p)
		}
		ts[i] = t
		ps[i] = p
		prev = t
	}
	return ts, ps
}

// MeanOccupancy returns the time-average occupancy (1/(t1−t0))·∫p dt.
func (m *Master) MeanOccupancy(t0, t1, p0 float64) float64 {
	if t1 <= t0 {
		return p0
	}
	_, occInt, _ := m.advance(t0, t1, p0)
	return occInt / (t1 - t0)
}

// ExpectedTransitions returns E[N(t0,t1)], the expected number of
// state flips of the chain over the interval:
//
//	E[N] = ∫ λ_c(t)·(1−p(t)) + λ_e(t)·p(t) dt .
func (m *Master) ExpectedTransitions(t0, t1, p0 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	_, _, transInt := m.advance(t0, t1, p0)
	return transInt
}

// IntegratedExitRate returns Λ(t0, t1) = ∫ λ_exit(s) ds where the exit
// rate is λ_e when the trap is filled and λ_c when empty — the
// cumulative hazard of leaving the given state.
func (m *Master) IntegratedExitRate(t0, t1 float64, filled bool) float64 {
	if t1 <= t0 {
		return 0
	}
	total := 0.0
	m.segments(t0, t1, func(a, b float64) {
		va, vb := m.Bias.Eval(a), m.Bias.Eval(b)
		if sameBits(va, vb) {
			lc, le := m.Ctx.Rates(m.Tr, va)
			rate := lc
			if filled {
				rate = le
			}
			total += rate * (b - a)
			return
		}
		n := m.subdivisions(b-a, vb-va)
		h := (b - a) / float64(n)
		for i := 0; i < n; i++ {
			u := a + float64(i)*h
			w := u + h
			if i == n-1 {
				w = b
			}
			sum := 0.0
			for k := 0; k < 8; k++ {
				s := u + 0.5*(w-u)*(1+glNodes[k])
				lc, le := m.Ctx.Rates(m.Tr, m.Bias.Eval(s))
				rate := lc
				if filled {
					rate = le
				}
				sum += glWeights[k] * rate
			}
			total += 0.5 * (w - u) * sum
		}
	})
	return total
}

// FirstTransitionCDF returns the CDF of the first state flip of a trap
// that starts at t0 in the given state:
//
//	F(t) = 1 − exp(−Λ(t0, t))
//
// with Λ the integrated exit rate. Exact for the inhomogeneous chain.
func (m *Master) FirstTransitionCDF(t0 float64, filled bool) func(float64) float64 {
	return func(t float64) float64 {
		if t <= t0 {
			return 0
		}
		return -math.Expm1(-m.IntegratedExitRate(t0, t, filled))
	}
}

// ConditionalFirstTransitionCDF returns the CDF of the first flip time
// conditioned on a flip occurring by the horizon t1 — the law of the
// first-transition samples a finite simulation actually yields.
func (m *Master) ConditionalFirstTransitionCDF(t0, t1 float64, filled bool) func(float64) float64 {
	raw := m.FirstTransitionCDF(t0, filled)
	norm := raw(t1)
	return func(t float64) float64 {
		if norm <= 0 {
			return 0
		}
		if t >= t1 {
			return 1
		}
		return raw(t) / norm
	}
}

// WindowedDwellCDF returns the exact CDF of the *completed interior*
// sojourn durations in one state that a finite observation window
// [t0, t1] yields under constant bias v — the law markov.Path.DwellTimes
// samples are actually drawn from. Naively the dwells are Exp(μ) with μ
// the state's exit rate, but a finite window censors long sojourns: a
// sojourn entered at window offset u is observed complete only if its
// Exp(μ) duration fits in the remaining T−u, so the pooled law is a
// mixture of truncated exponentials weighted by the entry intensity
// (the observation-window effect of arXiv:2201.10659). For β ≫ 1 the
// majority state's mean dwell is a visible fraction of any practical
// window and the plain exponential is measurably wrong.
//
// With window length T, entry intensity r(u) = a + b·e^(−λ_s·u)
// (r = λ_e·p for empty sojourns, λ_c·(1−p) for filled ones, with
// p(u) = p∞ + (p0−p∞)·e^(−λ_s·u)), the unnormalised CDF is
//
//	N(d) = ∫₀^d μ·e^(−μs)·R(T−s) ds ,  R(x) = ∫₀^x r(u) du ,
//
// and F(d) = N(d)/N(T); every integral has a closed form below.
func (m *Master) WindowedDwellCDF(v, t0, t1, p0 float64, filled bool) func(float64) float64 {
	lc, le := m.Ctx.Rates(m.Tr, v)
	pInf := lc / m.lambdaS
	T := t1 - t0
	var mu, a, b float64
	if filled {
		mu = le
		a = lc * (1 - pInf)
		b = -lc * (p0 - pInf)
	} else {
		mu = lc
		a = le * pInf
		b = le * (p0 - pInf)
	}
	ls := m.lambdaS
	n := func(d float64) float64 {
		em := -math.Expm1(-mu * d) // 1 − e^(−μd)
		// ∫ μe^(−μs)·a(T−s) ds = a·[T·(1−e^(−μd)) − (1−e^(−μd)(1+μd))/μ]
		linear := a * (T*em - (1-math.Exp(-mu*d)*(1+mu*d))/mu)
		// ∫ μe^(−μs)·(b/λ_s) ds
		constant := b / ls * em
		// −(b/λ_s)·∫ μe^(−μs)·e^(−λ_s(T−s)) ds, with ε = λ_s−μ > 0
		// (ε is the *other* state's rate). Exponents are combined before
		// exponentiation so λ_s·T ≫ 1 cannot overflow the intermediate.
		eps := ls - mu
		expTerm := -(b * mu / ls) * (math.Exp(eps*d-ls*T) - math.Exp(-ls*T)) / eps
		return linear + constant + expTerm
	}
	norm := n(T)
	return func(d float64) float64 {
		if d <= 0 || norm <= 0 {
			return 0
		}
		if d >= T {
			return 1
		}
		// Deep in the tail the ratio can round a few ulp past 1.
		f := n(d) / norm
		if f > 1 {
			return 1
		}
		if f < 0 {
			return 0
		}
		return f
	}
}

// StationaryOccupancy returns 1/(1+β) at the given constant bias.
func (m *Master) StationaryOccupancy(vgs float64) float64 {
	return m.Ctx.OccupancyProb(m.Tr, vgs)
}

package vv

import (
	"fmt"

	"samurai/internal/sram"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

// Scenario is one cell of the conformance matrix: a trap + bias
// waveform + horizon, the number of Monte-Carlo paths to draw, and
// which gate families apply.
type Scenario struct {
	// Name identifies the scenario in reports (stable across runs).
	Name string
	// Ctx and Tr define the trap; Bias the gate-bias waveform.
	Ctx  trap.Context
	Tr   trap.Trap
	Bias *waveform.PWL
	// T0 and T1 bound the simulated interval.
	T0, T1 float64
	// Paths is the number of independent sample paths to draw.
	Paths int
	// Probes are absolute instants at which the empirical occupancy is
	// gated against the analytic p(t) with an exact binomial test.
	Probes []float64
	// Dwell enables the constant-bias dwell-time KS and chi-square
	// gates (valid only when the bias is constant over [T0, T1]).
	Dwell bool
	// Compose enables the rtn.Compose trace gates.
	Compose bool
	// Note documents what the scenario stresses.
	Note string
}

// GateCount returns how many statistical gates the scenario
// contributes to the report — needed up front so the false-positive
// budget can be Bonferroni-divided before any gate runs.
func (sc Scenario) GateCount() int {
	n := len(sc.Probes) // binomial occupancy probes
	n += 2              // occupancy-mean CLT, transitions-mean CLT
	n++                 // first-transition KS
	if sc.Dwell {
		n += 4 // filled/empty dwell KS + chi-square
	}
	if sc.Compose {
		n += 2 // exact Eq(3) identity + sampled-occupancy CLT
	}
	return n
}

// vvCtx is the shared trap context of the synthetic scenarios: the
// literature-default 1.9 nm oxide referenced at 1.2 V, matching the
// markov package's own test fixtures.
func vvCtx() trap.Context { return trap.DefaultContext(1.9e-9, 1.2) }

// probeFracs positions the default occupancy probes inside a horizon.
var probeFracs = []float64{0.1, 0.35, 0.65, 0.95}

func probesAt(t0, t1 float64) []float64 {
	out := make([]float64, len(probeFracs))
	for i, f := range probeFracs {
		out[i] = t0 + f*(t1-t0)
	}
	return out
}

// Matrix returns the standard conformance scenario matrix. Horizons
// are expressed in units of 1/λ_s so every scenario draws a predictable
// number of candidate events regardless of the trap parameters.
func Matrix() ([]Scenario, error) {
	ctx := vvCtx()
	var out []Scenario

	// 1. Constant bias, β ≈ 1: the maximally active trap. Dwell times
	// in both states are plentiful, so every gate family applies.
	{
		tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0}
		horizon := 300 / ctx.RateSum(tr)
		out = append(out, Scenario{
			Name: "const-active", Ctx: ctx, Tr: tr,
			Bias: waveform.Constant(1.2), T0: 0, T1: horizon,
			Paths: 2000, Probes: probesAt(0, horizon),
			Dwell: true, Compose: true,
			Note: "constant bias, beta~1, ~300 candidates/path",
		})
	}

	// 2. Constant bias, moderately skewed β: asymmetric dwell laws.
	{
		tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0.03}
		horizon := 300 / ctx.RateSum(tr)
		out = append(out, Scenario{
			Name: "const-beta-skew", Ctx: ctx, Tr: tr,
			Bias: waveform.Constant(1.2), T0: 0, T1: horizon,
			Paths: 2000, Probes: probesAt(0, horizon),
			Dwell: true, Compose: true,
			Note: "constant bias, beta~3, asymmetric capture/emission",
		})
	}

	// 3. Constant bias, extreme β (~100): the trap is pinned empty
	// ~99% of the time; occupancy probes exercise the exact binomial
	// gate in the small-np regime where CLT gates are invalid.
	{
		tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0.12}
		horizon := 300 / ctx.RateSum(tr)
		out = append(out, Scenario{
			Name: "const-extreme-beta", Ctx: ctx, Tr: tr,
			Bias: waveform.Constant(1.2), T0: 0, T1: horizon,
			Paths: 2000, Probes: probesAt(0, horizon),
			Dwell: true,
			Note:  "constant bias, beta~100, trap pinned empty",
		})
	}

	// 4. Near-degenerate λ*: a horizon of only ~3 mean event times, so
	// most paths see 0–3 candidates. Stresses censoring (first/last
	// sojourn handling) and the conditional first-transition law.
	{
		tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0}
		horizon := 3 / ctx.RateSum(tr)
		out = append(out, Scenario{
			Name: "near-degenerate-lambda", Ctx: ctx, Tr: tr,
			Bias: waveform.Constant(1.2), T0: 0, T1: horizon,
			Paths: 4000, Probes: probesAt(0, horizon),
			Note: "~3 candidates/path; censored-sojourn regime",
		})
	}

	// 5. Step bias: the bias jumps mid-horizon from a level that pins
	// the trap empty to one that pins it filled. The occupancy relaxes
	// exponentially after the step — the classic non-stationary
	// transient of the da Silva/Wirth time-domain description.
	{
		tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0}
		horizon := 300 / ctx.RateSum(tr)
		step, err := waveform.Step(
			[]float64{0, horizon / 2},
			[]float64{0.95, 1.45},
			horizon/1000)
		if err != nil {
			return nil, fmt.Errorf("vv: step scenario: %w", err)
		}
		probes := []float64{
			0.25 * horizon,                  // settled at the low level
			horizon/2 + 1/ctx.RateSum(tr)/2, // mid-relaxation after the step
			0.95 * horizon,                  // settled at the high level
		}
		out = append(out, Scenario{
			Name: "step-bias", Ctx: ctx, Tr: tr,
			Bias: step, T0: 0, T1: horizon,
			Paths: 2000, Probes: probes,
			Note: "bias step mid-horizon; exponential occupancy relaxation",
		})
	}

	// 6. Ramp bias: a continuous sweep across the trap's active window,
	// so λ_c/λ_e vary smoothly all horizon long — the case where the
	// propagator's quadrature (not a closed form) is the reference.
	{
		tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0}
		horizon := 300 / ctx.RateSum(tr)
		ramp, err := waveform.New(
			[]float64{0, horizon},
			[]float64{0.95, 1.45})
		if err != nil {
			return nil, fmt.Errorf("vv: ramp scenario: %w", err)
		}
		out = append(out, Scenario{
			Name: "ramp-bias", Ctx: ctx, Tr: tr,
			Bias: ramp, T0: 0, T1: horizon,
			Paths: 2000, Probes: probesAt(0, horizon),
			Note: "continuous bias ramp across the active window",
		})
	}

	// 7. SRAM write waveform: the Fig 8 pattern's wordline, i.e. the
	// real pulse train the methodology applies to pass-gate traps. A
	// shallow (fast) trap sees tens of candidates inside the 18 ns
	// pattern.
	{
		pat := sram.Fig8Pattern(1.2)
		wl, _, _, err := pat.Waveforms()
		if err != nil {
			return nil, fmt.Errorf("vv: sram waveforms: %w", err)
		}
		tr := trap.Trap{Y: 1e-10, E: 0}
		out = append(out, Scenario{
			Name: "sram-write-wl", Ctx: ctx, Tr: tr,
			Bias: wl, T0: 0, T1: pat.Duration(),
			Paths: 2000, Probes: probesAt(0, pat.Duration()),
			Note: "Fig 8 wordline pulse train on a shallow trap",
		})
	}

	// 8. SRAM read-like pulse train: short periodic access pulses with
	// a long quiescent fraction — the observation-window regime of the
	// dwell-time literature (arXiv:2201.10659).
	{
		tr := trap.Trap{Y: 1e-10, E: 0}
		period := 2e-9
		var times, vals []float64
		for i := 0; i < 8; i++ {
			t := float64(i) * period
			times = append(times, t, t+0.3*period)
			vals = append(vals, 1.2, 0.2)
		}
		pulses, err := waveform.Step(times, vals, period/100)
		if err != nil {
			return nil, fmt.Errorf("vv: read-pulse scenario: %w", err)
		}
		horizon := 8 * period
		out = append(out, Scenario{
			Name: "sram-read-pulse", Ctx: ctx, Tr: tr,
			Bias: pulses, T0: 0, T1: horizon,
			Paths: 2000, Probes: probesAt(0, horizon),
			Note: "periodic access pulses; observation-window dwell regime",
		})
	}

	return out, nil
}

package vv

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"samurai/internal/markov"
	"samurai/internal/rng"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

// TestRareMatrixPasses is the unbiasedness acceptance criterion: the
// importance-sampling estimate must match the closed-form Master
// reference within the Bonferroni budget for every tilt strength —
// including tilt 0, where the identity gates are exact — across
// several master seeds.
func TestRareMatrixPasses(t *testing.T) {
	seeds := []uint64{1, 2}
	if !testing.Short() {
		seeds = append(seeds, 3, 17)
	}
	for _, seed := range seeds {
		rep, err := RunRareMatrix(Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Pass {
			for _, sc := range rep.Scenarios {
				for _, g := range sc.Gates {
					if !g.Pass {
						t.Errorf("seed %d: %s/%s failed (value %g, p %g)", seed, sc.Name, g.Name, g.Value, g.PValue)
					}
				}
			}
			t.Fatalf("seed %d: rare matrix failed", seed)
		}
		tilts := map[float64]bool{}
		for _, sc := range rep.Scenarios {
			if sc.Rare == nil {
				t.Fatalf("seed %d: row %s carries no rare aggregate", seed, sc.Name)
			}
			tilts[sc.Rare.TiltEV] = true
		}
		if len(tilts) < 3 || !tilts[0] {
			t.Fatalf("seed %d: want >= 3 tilt strengths including 0, got %v", seed, tilts)
		}
	}
}

// TestRareTiltZeroExact pins the tilt-0 row's exact contracts: the
// naive-identity and unit-weight gates are "exact" statistics, the ESS
// is exactly the path count and the LR variance exactly 0.
func TestRareTiltZeroExact(t *testing.T) {
	rep, err := RunRareMatrix(Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var row *ScenarioReport
	for i := range rep.Scenarios {
		if rep.Scenarios[i].Name == "rare-tilt0" {
			row = &rep.Scenarios[i]
		}
	}
	if row == nil {
		t.Fatal("no rare-tilt0 row in the rare matrix")
	}
	found := map[string]bool{}
	for _, g := range row.Gates {
		if g.Statistic == "exact" {
			found[g.Name] = true
			if !g.Pass || math.Float64bits(g.Value) != 0 {
				t.Fatalf("exact gate %s: value %g pass %v", g.Name, g.Value, g.Pass)
			}
		}
	}
	for _, name := range []string{"rare-weight-mean", "rare-lr-exact", "rare-tilt0-naive-identity"} {
		if !found[name] {
			t.Fatalf("tilt-0 row missing exact gate %s (gates: %+v)", name, row.Gates)
		}
	}
	st := row.Rare
	if math.Float64bits(st.ESS) != math.Float64bits(float64(row.Paths)) {
		t.Fatalf("tilt-0 ESS %g, want exactly %d", st.ESS, row.Paths)
	}
	if math.Float64bits(st.LRVar) != 0 {
		t.Fatalf("tilt-0 LR variance %g, want exactly 0", st.LRVar)
	}
}

// brokenWeightSimulator wraps the production tilted kernel but drops
// the LAST candidate's log-LR factor from every path — the classic
// bookkeeping bug where one thinning term is missed. The path itself
// and the thinning record stay honest. The last term is the one a
// mean-based gate has power against: dropping an *early* factor
// leaves the remaining product a conditional likelihood ratio (its
// mean is still exactly 1 by the martingale property, and the
// equilibrated occupancy forgets the early state to within e^-12), so
// only the exact incremental-vs-recompute gate would see it. The last
// factor is correlated with the terminal state, so its loss shifts
// the occupancy estimate by orders of magnitude.
func brokenWeightSimulator(ctx trap.Context, tr trap.Trap, bias *waveform.PWL, t0, t1, tiltEV float64, r *rng.Stream, rec *markov.ThinningRecord) (*markov.Path, float64, error) {
	var local markov.ThinningRecord
	p, logLR, err := markov.UniformiseTilted(ctx, tr, markov.PWLBias(bias), t0, t1, tiltEV, r, &local)
	if err != nil {
		return nil, 0, err
	}
	if n := len(local.Times); n > 0 {
		// Recomputing over the first n-1 candidates IS the sum with the
		// last term dropped (RecomputeLogLR replays in candidate order).
		prefix := markov.ThinningRecord{Times: local.Times[:n-1], Accepts: local.Accepts[:n-1]}
		logLR = markov.RecomputeLogLR(ctx, tr, markov.PWLBias(bias), tiltEV, &prefix)
	}
	if rec != nil {
		rec.Times = append(rec.Times[:0], local.Times...)
		rec.Accepts = append(rec.Accepts[:0], local.Accepts...)
	}
	return p, logLR, nil
}

// honestWrapperSimulator routes through the identical wrapper plumbing
// (local record, copy-out) without dropping the term — the sanity twin
// that attributes the rejection below to the dropped factor alone.
func honestWrapperSimulator(ctx trap.Context, tr trap.Trap, bias *waveform.PWL, t0, t1, tiltEV float64, r *rng.Stream, rec *markov.ThinningRecord) (*markov.Path, float64, error) {
	var local markov.ThinningRecord
	p, logLR, err := markov.UniformiseTilted(ctx, tr, markov.PWLBias(bias), t0, t1, tiltEV, r, &local)
	if err != nil {
		return nil, 0, err
	}
	if rec != nil {
		rec.Times = append(rec.Times[:0], local.Times...)
		rec.Accepts = append(rec.Accepts[:0], local.Accepts...)
	}
	return p, logLR, nil
}

// TestBrokenWeightCaught is the detection-power criterion of the rare
// battery, mirroring TestBrokenThinningCaught: a weight missing one
// log-LR term must be rejected — by the exact incremental-vs-recompute
// gate, and independently by the statistical weight-mean gate (the
// control variate with known mean 1).
func TestBrokenWeightCaught(t *testing.T) {
	rows := RareMatrix()
	var sc RareScenario
	for _, r := range rows {
		if r.Name == "rare-deep" {
			sc = r
		}
	}
	if sc.Name == "" {
		t.Fatal("no rare-deep row")
	}
	budget := Budget{Alpha: DefaultAlpha, Gates: sc.GateCount()}
	sr, err := RunRareScenario(sc, brokenWeightSimulator, rng.New(9), budget)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Pass {
		t.Fatalf("broken weight (dropped LR term) passed the %s battery", sc.Name)
	}
	exactCaught, statCaught := false, false
	for _, g := range sr.Gates {
		if g.Pass {
			continue
		}
		switch {
		case g.Name == "rare-lr-exact":
			exactCaught = true
			t.Logf("caught by %s: %g mismatched paths", g.Name, g.Value)
		case g.Statistic == "clt-z":
			statCaught = true
			t.Logf("caught by %s (%s): z=%g p=%g", g.Name, g.Statistic, g.Value, g.PValue)
		}
	}
	if !exactCaught {
		t.Fatalf("rare-lr-exact did not reject the dropped term; gates: %+v", sr.Gates)
	}
	if !statCaught {
		t.Fatalf("no statistical gate rejected the broken weight; gates: %+v", sr.Gates)
	}
}

// TestBrokenWeightSanity: the honest wrapper through the same plumbing
// passes, so the rejection above is attributable to the dropped term.
func TestBrokenWeightSanity(t *testing.T) {
	rows := RareMatrix()
	var sc RareScenario
	for _, r := range rows {
		if r.Name == "rare-deep" {
			sc = r
		}
	}
	budget := Budget{Alpha: DefaultAlpha, Gates: sc.GateCount()}
	sr, err := RunRareScenario(sc, honestWrapperSimulator, rng.New(9), budget)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Pass {
		t.Fatalf("honest wrapper failed the battery: %+v", sr.Gates)
	}
}

// TestRareRowsKernelIndependent: with rare rows enabled, sequential
// and batch conformance reports must still be byte-identical apart
// from the kernel field — the rare rows always draw through the
// sequential tilted kernel, by design.
func TestRareRowsKernelIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("full double matrix skipped in -short")
	}
	seq, err := RunMatrix(Options{Seed: 7, Rare: true})
	if err != nil {
		t.Fatal(err)
	}
	bat, err := RunMatrix(Options{Seed: 7, Rare: true, Kernel: KernelBatch})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Pass || !bat.Pass {
		t.Fatalf("rare-extended matrix failed: seq=%v bat=%v", seq.Pass, bat.Pass)
	}
	bat.Kernel = seq.Kernel
	a, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(bat)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("rare-extended batch and sequential reports diverge beyond the kernel field")
	}
}

// TestRareStandaloneMatchesCombined: a row's ensemble derives from
// root.Split(500+i) in both the standalone rare matrix and the
// combined RunMatrix, so the reported aggregates (which don't depend
// on the budget) are bit-identical across the two entry points.
func TestRareStandaloneMatchesCombined(t *testing.T) {
	alone, err := RunRareMatrix(Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	combined, err := RunMatrix(Options{Seed: 4, Rare: true})
	if err != nil {
		t.Fatal(err)
	}
	stats := map[string]string{}
	for _, sc := range combined.Scenarios {
		if sc.Rare != nil {
			b, err := json.Marshal(sc.Rare)
			if err != nil {
				t.Fatal(err)
			}
			stats[sc.Name] = string(b)
		}
	}
	if len(stats) != len(alone.Scenarios) {
		t.Fatalf("combined run has %d rare rows, standalone %d", len(stats), len(alone.Scenarios))
	}
	for _, sc := range alone.Scenarios {
		b, err := json.Marshal(sc.Rare)
		if err != nil {
			t.Fatal(err)
		}
		if stats[sc.Name] != string(b) {
			t.Fatalf("row %s aggregates differ between entry points:\n%s\n%s", sc.Name, stats[sc.Name], b)
		}
	}
}

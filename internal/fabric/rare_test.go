package fabric

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"samurai/internal/jobd"
	"samurai/internal/montecarlo"
	"samurai/internal/rng"
	"samurai/internal/sram"
)

// rareTestSpec is the canonical fabric rare sweep: small, tilted, and
// executed by the stub runner below so the test exercises the merge
// protocol rather than the circuit solver.
func rareTestSpec(cells, workers int) jobd.Spec {
	return jobd.Spec{
		Type:    jobd.TypeRareArray,
		Seed:    1234,
		Cells:   cells,
		Workers: workers,
		TiltEV:  -0.1,
	}
}

// stubRareRunner is a pure function of (seed, tiltEV) — the property
// the production samurai.RareArrayRunnerCtx has — cheap enough to shard
// across many workers in a unit test.
func stubRareRunner(_ context.Context, _ sram.CellConfig, _ sram.Pattern, _, tiltEV float64, seed uint64) (int, int, int, float64, float64, error) {
	r := rng.New(seed)
	u := r.Float64()
	errs := 0
	if u > 0.8 {
		errs = 1
	}
	return errs, int(seed % 3), int(seed % 7), tiltEV * (u - 0.5), 1.25 * u, nil
}

// TestFabricRareMergeBitIdentical: two workers splitting one rare_array
// job over the lease protocol merge to records and a weighted summary
// bit-identical to a single-node RunArrayCtx of the same spec — the
// fabric extension of montecarlo's TestRareSweepSubsetMerge.
func TestFabricRareMergeBitIdentical(t *testing.T) {
	spec := rareTestSpec(24, 2)
	cfg, err := spec.ArrayConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := montecarlo.RunArrayCtx(context.Background(), cfg, nil, montecarlo.ArrayOptions{
		RareEvent: &montecarlo.RareEventSpec{TiltEV: spec.TiltEV, Runner: stubRareRunner},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]jobd.CellRecord, 0, len(res.Outcomes))
	for _, o := range res.Outcomes {
		want = append(want, jobd.NewCellRecord(o))
	}

	c, srv := newFabric(t, t.TempDir(), Options{LeaseCells: 5, LeaseTTL: time.Minute})
	v, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	const nWorkers = 2
	var wg sync.WaitGroup
	errs := make([]error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewWorker(WorkerOptions{
				BaseURL:      srv.URL,
				Poll:         10 * time.Millisecond,
				ExitWhenDone: true,
				RareRunner:   stubRareRunner,
			})
			errs[i] = w.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	got, _ := c.Records(v.ID)
	if len(got) != len(want) {
		t.Fatalf("merged %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(got[i], want[i]) {
			t.Fatalf("cell %d not bit-identical to single-node run:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	fv, _ := c.Get(v.ID)
	if fv.State != jobd.StateDone {
		t.Fatalf("job is %s (%s), want done", fv.State, fv.Error)
	}
	if fv.Result == nil || fv.Result.Rare == nil {
		t.Fatalf("done rare job has no weighted summary: %+v", fv.Result)
	}
	g, w := fv.Result.Rare, res.Rare
	if g.N != w.N ||
		math.Float64bits(g.TiltEV) != math.Float64bits(w.TiltEV) ||
		math.Float64bits(g.PFail) != math.Float64bits(w.PFail) ||
		math.Float64bits(g.ESS) != math.Float64bits(w.ESS) ||
		math.Float64bits(g.LRVar) != math.Float64bits(w.LRVar) ||
		math.Float64bits(g.CIHalf) != math.Float64bits(w.CIHalf) {
		t.Fatalf("fabric rare summary not bit-identical:\n got %+v\nwant %+v", g, w)
	}
	if fv.Result.NumFailed != res.NumFailed ||
		math.Float64bits(fv.Result.ErrorRate) != math.Float64bits(res.ErrorRate) {
		t.Fatalf("fabric counts differ: %+v vs %d/%g", fv.Result, res.NumFailed, res.ErrorRate)
	}
}

// TestFabricRareDuplicateMismatchCaught: a duplicate checkpoint whose
// log-LR diverges by one ulp is a determinism violation the coordinator
// must fail loudly — the rare fields are part of the bit-comparison.
func TestFabricRareDuplicateMismatchCaught(t *testing.T) {
	spec := rareTestSpec(4, 1)
	c, srv := newFabric(t, t.TempDir(), Options{LeaseCells: 8, LeaseTTL: time.Minute})
	_ = srv
	v, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	grant, code, err := c.Lease(LeaseRequest{})
	if err != nil || code != 200 || grant.Idle {
		t.Fatalf("lease: %v (code %d, idle %v)", err, code, grant.Idle)
	}
	rec := jobd.CellRecord{Index: 0, LogLR: 0.25, GlitchDepth: 0.5}
	if _, code, err := c.Checkpoint(CheckpointRequest{Worker: grant.Worker, Job: v.ID, Lease: grant.Lease, Cells: []jobd.CellRecord{rec}}); err != nil || code != 200 {
		t.Fatalf("first checkpoint: %v (code %d)", err, code)
	}
	twisted := rec
	twisted.LogLR = math.Nextafter(rec.LogLR, 1)
	if _, code, _ := c.Checkpoint(CheckpointRequest{Worker: grant.Worker, Job: v.ID, Lease: grant.Lease, Cells: []jobd.CellRecord{twisted}}); code != 409 {
		t.Fatalf("diverging duplicate log-LR accepted (code %d)", code)
	}
	fv, _ := c.Get(v.ID)
	if fv.State != jobd.StateFailed {
		t.Fatalf("job is %s after a determinism violation, want failed", fv.State)
	}
}

// Package fabric is the distributed sweep layer: a coordinator that
// owns the jobd write-ahead store and shards Monte-Carlo array jobs
// into cell-index leases, plus the worker client that acquires leases,
// simulates its subset via montecarlo.RunArrayCtx and streams the
// per-cell results back as checkpoints.
//
// # Determinism under sharding
//
// Every cell's rng stream is a pure function of (job seed, cell index)
// — the invariant the single-node resume tests pin bit-exactly — so
// cells shard across workers with no coordination beyond index ranges:
// an N-worker fabric run merges to results byte-identical to a
// single-node montecarlo.RunArrayCtx sweep of the same spec. Work
// stealing rides the same invariant: when a straggler's lease expires
// and its cells are reissued, a late checkpoint from the original
// worker is simply a duplicate of a bit-identical result, resolved by
// "first durable checkpoint wins". The coordinator asserts Float64bits
// equality on every duplicate — a free fleet-wide self-check: any
// mismatch means a worker's floating-point environment or build
// diverged, and the job fails loudly rather than merging poison.
//
// The protocol is three HTTP endpoints on the coordinator:
//
//	POST /fabric/lease       acquire a lease (or renew / release one)
//	POST /fabric/checkpoint  stream completed cell records back
//	GET  /fabric/status      leases, steals, worker liveness
package fabric

import "samurai/internal/jobd"

// Endpoint paths served by the coordinator and dialed by workers.
const (
	PathLease      = "/fabric/lease"
	PathCheckpoint = "/fabric/checkpoint"
	PathStatus     = "/fabric/status"
)

// LeaseRequest is the POST /fabric/lease body. At most one of Renew or
// Release is set; with neither, the request acquires a fresh lease.
type LeaseRequest struct {
	// Worker identifies the requester. Empty on first contact: the
	// coordinator assigns an id and returns it. Unknown ids (a worker
	// outliving a coordinator restart) are re-registered transparently.
	Worker string `json:"worker,omitempty"`
	// Renew heartbeats an existing lease: its deadline is extended and
	// no new work is handed out. A renewal of an expired or stolen lease
	// fails with HTTP 410 — the worker must stop and re-acquire.
	Renew uint64 `json:"renew,omitempty"`
	// Release returns a lease's un-checkpointed cells to the pool
	// without waiting for expiry (the graceful-drain path).
	Release uint64 `json:"release,omitempty"`
	// Error, set on a Release, reports a simulation failure: the job is
	// failed loudly instead of the cells being retried forever. (Cell
	// outcomes are pure functions of the seed, so a simulation error
	// reproduces on any worker — re-leasing cannot fix it.)
	Error string `json:"error,omitempty"`
}

// LeaseResponse answers an acquire or renew.
type LeaseResponse struct {
	// Worker echoes (or assigns) the worker id.
	Worker string `json:"worker"`
	// Lease identifies the granted lease; 0 when Idle.
	Lease uint64 `json:"lease,omitempty"`
	// Job and Spec describe the sweep the leased cells belong to.
	Job  string     `json:"job,omitempty"`
	Spec *jobd.Spec `json:"spec,omitempty"`
	// Lo and Hi bound the leased contiguous cell-index range [Lo, Hi).
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
	// TTLMS is the lease deadline in milliseconds; the worker should
	// renew well inside it (it is also returned on renewals).
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Idle reports that no lease is available right now.
	Idle bool `json:"idle,omitempty"`
	// Done reports that every known job is terminal (or the coordinator
	// is draining); pollers running with -once may exit.
	Done bool `json:"done,omitempty"`
}

// CheckpointRequest is the POST /fabric/checkpoint body: a batch of
// completed cells for one job, appended to the coordinator's WAL in
// order. The lease id is advisory — checkpoints are accepted for any
// non-terminal job even after the lease was stolen, because the result
// is bit-identical either way and first-durable-wins.
type CheckpointRequest struct {
	Worker string            `json:"worker"`
	Job    string            `json:"job"`
	Lease  uint64            `json:"lease,omitempty"`
	Cells  []jobd.CellRecord `json:"cells"`
}

// CheckpointResponse reports what the coordinator did with the batch.
type CheckpointResponse struct {
	// Accepted counts cells durably appended by this request.
	Accepted int `json:"accepted"`
	// Duplicates counts cells that were already durable; each one passed
	// the bit-equality assertion.
	Duplicates int `json:"duplicates"`
	// Done / Total is the job's checkpoint progress after the batch.
	Done  int `json:"done"`
	Total int `json:"total"`
	// State is the job's lifecycle state after the batch ("done" once
	// the final cell lands).
	State jobd.State `json:"state"`
}

// Status is the GET /fabric/status document.
type Status struct {
	Draining bool `json:"draining"`
	// StealsTotal counts expired leases whose cells were returned to the
	// pool across all jobs since this coordinator started.
	StealsTotal int64         `json:"steals_total"`
	Jobs        []JobStatus   `json:"jobs"`
	Workers     []WorkerState `json:"workers,omitempty"`
}

// JobStatus is one job's sharding state.
type JobStatus struct {
	ID         string        `json:"id"`
	State      jobd.State    `json:"state"`
	CellsDone  int           `json:"cells_done"`
	CellsTotal int           `json:"cells_total"`
	// Pending counts cells neither checkpointed nor currently leased.
	Pending int `json:"pending"`
	// Leased counts cells currently out under a live lease.
	Leased int `json:"leased"`
	// Steals counts leases of this job that expired and were reclaimed.
	Steals int           `json:"steals"`
	Leases []LeaseStatus `json:"leases,omitempty"`
}

// LeaseStatus describes one outstanding lease.
type LeaseStatus struct {
	ID     uint64 `json:"id"`
	Worker string `json:"worker"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
	// Remaining counts leased cells not yet checkpointed.
	Remaining int `json:"remaining"`
	// ExpiresInMS is the time to the lease deadline (negative once
	// reapable).
	ExpiresInMS int64 `json:"expires_in_ms"`
	Renews      int   `json:"renews"`
}

// WorkerState is the coordinator's liveness view of one worker.
type WorkerState struct {
	ID string `json:"id"`
	// Cells counts checkpoints accepted from this worker.
	Cells int64 `json:"cells"`
	// Leases counts leases ever granted to this worker.
	Leases int64 `json:"leases"`
	// LastContactMS is the time since the worker's last request.
	LastContactMS int64 `json:"last_contact_ms"`
	// CellsPerSec is the worker's checkpoint throughput since first
	// contact with this coordinator process.
	CellsPerSec float64 `json:"cells_per_sec"`
}

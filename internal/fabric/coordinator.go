package fabric

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"samurai/internal/jobd"
	"samurai/internal/obs"
	"samurai/internal/obs/trace"
	"samurai/internal/rareevent"
)

// Coordinator instrumentation. Lease churn, steals and duplicate
// checkpoints are the fabric's health signals: steals climbing means
// workers are dying or the TTL is too tight; duplicate mismatches
// must stay at zero forever (each one is a determinism violation).
var (
	mLeasesGranted = obs.GetCounter("samurai_fabric_leases_granted_total",
		"cell-range leases handed to workers")
	mLeasesOutstanding = obs.GetGauge("samurai_fabric_leases_outstanding",
		"leases currently held by workers")
	mSteals = obs.GetCounter("samurai_fabric_steals_total",
		"expired leases whose cells were returned to the pool")
	mDupCheckpoints = obs.GetCounter("samurai_fabric_duplicate_checkpoints_total",
		"checkpoints for cells that were already durable (bit-verified)")
	mDupMismatches = obs.GetCounter("samurai_fabric_duplicate_mismatches_total",
		"duplicate checkpoints whose payload diverged bit-wise (determinism violations)")
	mWorkers = obs.GetGauge("samurai_fabric_workers",
		"workers that have contacted this coordinator")
	mCellsAccepted = obs.GetCounter("samurai_fabric_cells_checkpointed_total",
		"cells durably appended to the job store by the fabric")
	mFabricStoreErrors = obs.GetCounter("samurai_fabric_store_errors_total",
		"failed write-ahead store appends in the coordinator")
)

// fabricJobGauge resolves the per-state job count gauge.
func fabricJobGauge(st jobd.State) *obs.Gauge {
	return obs.GetGauge("samurai_fabric_jobs",
		"coordinator jobs by lifecycle state", obs.L("state", string(st)))
}

// workerCells resolves the per-worker checkpoint counter.
func workerCells(id string) *obs.Counter {
	return obs.GetCounter("samurai_fabric_worker_cells_total",
		"cells checkpointed per worker", obs.L("worker", id))
}

// workerRate resolves the per-worker throughput gauge.
func workerRate(id string) *obs.Gauge {
	return obs.GetGauge("samurai_fabric_worker_cells_per_second",
		"checkpoint throughput per worker since first contact", obs.L("worker", id))
}

// Options tunes a Coordinator. The zero value is usable.
type Options struct {
	// LeaseCells caps the cells handed out per lease (default 32).
	// Smaller leases steal faster after a worker death; larger ones
	// amortise the per-lease HTTP round trips.
	LeaseCells int
	// LeaseTTL is the renewal deadline (default 10s). A lease not
	// renewed within it is stolen: its cells return to the pool.
	LeaseTTL time.Duration
	// Now supplies the clock (default time.Now). Tests inject a fake to
	// drive lease expiry without sleeping. The clock feeds lease
	// deadlines and liveness only — never anything durable.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.LeaseCells <= 0 {
		o.LeaseCells = 32
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Coordinator owns the job WAL of a distributed sweep and shards array
// jobs into cell-range leases. It is the only writer of the Store;
// workers are stateless and interchangeable. All lease state is
// in-memory: after a crash the coordinator replays jobs and checkpoints
// from the WAL and re-leases whatever is missing.
type Coordinator struct {
	store *jobd.Store
	opts  Options

	mu        sync.Mutex
	jobs      map[string]*shard
	order     []string
	seq       uint64
	leaseSeq  uint64
	workerSeq uint64
	leases    map[uint64]*lease
	workers   map[string]*workerInfo
	steals    int64
	draining  bool
}

// New builds a coordinator over a freshly opened store. replayed and
// maxSeq come from jobd.Open. Non-terminal array jobs are re-sharded
// from their checkpointed cells; non-terminal run-type jobs (left by a
// scheduler deployment) are failed loudly — the fabric executes array
// sweeps only.
func New(store *jobd.Store, replayed []*jobd.Job, maxSeq uint64, opts Options) *Coordinator {
	c := &Coordinator{
		store:   store,
		opts:    opts.withDefaults(),
		jobs:    map[string]*shard{},
		seq:     maxSeq,
		leases:  map[uint64]*lease{},
		workers: map[string]*workerInfo{},
	}
	for _, j := range replayed {
		sh := newShard(j)
		c.jobs[j.ID] = sh
		c.order = append(c.order, j.ID)
		fabricJobGauge(j.State).Add(1)
		if j.Spec.Type == jobd.TypeRun && !j.State.Terminal() {
			c.transitionLocked(sh, jobd.StateFailed,
				"fabric: coordinator executes array jobs only")
		}
	}
	return c
}

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = errors.New("fabric: coordinator is draining; not accepting jobs")

// errNotArray marks submissions the fabric cannot shard.
var errNotArray = errors.New("fabric: coordinator accepts array jobs only")

// Submit validates, persists and shards a new array job.
func (c *Coordinator) Submit(spec jobd.Spec) (jobd.View, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return jobd.View{}, err
	}
	if !jobd.ArrayLike(spec.Type) {
		return jobd.View{}, errNotArray
	}
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return jobd.View{}, ErrDraining
	}
	c.seq++
	j := &jobd.Job{
		ID:         fmt.Sprintf("job-%06d", c.seq),
		Seq:        c.seq,
		Spec:       spec,
		State:      jobd.StateQueued,
		CellsTotal: spec.Cells,
	}
	sh := newShard(j)
	c.jobs[j.ID] = sh
	c.order = append(c.order, j.ID)
	v := j.View()
	if err := c.store.AppendJob(j); err != nil {
		mFabricStoreErrors.Inc()
		delete(c.jobs, j.ID)
		c.order = c.order[:len(c.order)-1]
		c.mu.Unlock()
		return jobd.View{}, err
	}
	c.mu.Unlock()
	fabricJobGauge(jobd.StateQueued).Add(1)
	obs.Emit("fabric.state", obs.F("job", j.ID), obs.F("state", string(jobd.StateQueued)))
	return v, nil
}

// Get returns a snapshot of a job.
func (c *Coordinator) Get(id string) (jobd.View, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh, ok := c.jobs[id]
	if !ok {
		return jobd.View{}, false
	}
	return sh.job.View(), true
}

// List returns snapshots of all jobs in submission order.
func (c *Coordinator) List() []jobd.View {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]jobd.View, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.jobs[id].job.View())
	}
	return out
}

// Records returns the checkpointed cells of a job, sorted by index.
func (c *Coordinator) Records(id string) ([]jobd.CellRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh, ok := c.jobs[id]
	if !ok {
		return nil, false
	}
	return sh.job.Records(), true
}

// Trace returns a job's tracer (lease lifecycle spans and fabric
// events).
func (c *Coordinator) Trace(id string) (*trace.Tracer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh, ok := c.jobs[id]
	if !ok {
		return nil, false
	}
	return sh.tracer, true
}

// Draining reports whether Drain has begun.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Drain stops the coordinator gracefully: no new jobs or leases are
// handed out, but checkpoints for outstanding leases keep landing, so
// workers flush cleanly. Incomplete jobs stay queued in the WAL and
// resume under the next coordinator.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
}

// touchWorker registers or refreshes a worker, assigning an id on first
// contact (or after a coordinator restart wiped the roster — the worker
// keeps the id it presents, so its metrics stay continuous).
func (c *Coordinator) touchWorker(id string, now time.Time) *workerInfo {
	if id == "" {
		for {
			c.workerSeq++
			id = fmt.Sprintf("w-%03d", c.workerSeq)
			if _, taken := c.workers[id]; !taken {
				break
			}
		}
	}
	w, ok := c.workers[id]
	if !ok {
		w = &workerInfo{id: id, first: now}
		c.workers[id] = w
		mWorkers.Set(float64(len(c.workers)))
	}
	w.last = now
	return w
}

// reapLocked steals expired leases: their unfinished cells return to
// the pool for the next acquire. Called on every request, so a busy
// fabric needs no background timer (and an idle one steals on the next
// status poll).
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if !l.expires.Before(now) {
			continue
		}
		sh := c.jobs[l.jobID]
		back := sh.release(l)
		delete(c.leases, id)
		mLeasesOutstanding.Add(-1)
		if back == 0 {
			// Every cell of the range is durable; the worker just never
			// said goodbye. Quiet completion, not a steal.
			continue
		}
		sh.steals++
		c.steals++
		mSteals.Inc()
		sh.tracer.Event("fabric.steal", l.id, uint64(back), 0)
		obs.Emit("fabric.steal",
			obs.F("job", l.jobID),
			obs.F("lease", l.id),
			obs.F("worker", l.worker),
			obs.F("cells_back", back))
	}
}

// Lease serves one POST /fabric/lease exchange: acquire, renew or
// release. It returns the response plus the HTTP status to send.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, int, error) {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.touchWorker(req.Worker, now)
	c.reapLocked(now)

	if req.Renew != 0 {
		return c.renewLocked(w, req.Renew, now)
	}
	if req.Release != 0 {
		return c.releaseLocked(w, req, now)
	}
	return c.acquireLocked(w, now)
}

// renewLocked pushes a live lease's deadline out. A lease that expired
// (stolen) or was never granted gets 410: the worker must abandon the
// range and re-acquire.
func (c *Coordinator) renewLocked(w *workerInfo, id uint64, now time.Time) (LeaseResponse, int, error) {
	l, ok := c.leases[id]
	if !ok || l.worker != w.id {
		return LeaseResponse{Worker: w.id}, http.StatusGone,
			fmt.Errorf("fabric: lease %d is not held by %s (expired, stolen or released)", id, w.id)
	}
	l.expires = now.Add(c.opts.LeaseTTL)
	l.renews++
	return LeaseResponse{
		Worker: w.id, Lease: l.id, Job: l.jobID,
		Lo: l.lo, Hi: l.hi,
		TTLMS: c.opts.LeaseTTL.Milliseconds(),
	}, http.StatusOK, nil
}

// releaseLocked returns a lease's unfinished cells to the pool (the
// graceful worker-drain path). With Error set, the job is failed loudly
// — a worker hit a simulation error that retrying elsewhere cannot fix.
func (c *Coordinator) releaseLocked(w *workerInfo, req LeaseRequest, now time.Time) (LeaseResponse, int, error) {
	l, ok := c.leases[req.Release]
	if !ok || l.worker != w.id {
		return LeaseResponse{Worker: w.id}, http.StatusGone,
			fmt.Errorf("fabric: lease %d is not held by %s (expired, stolen or released)", req.Release, w.id)
	}
	sh := c.jobs[l.jobID]
	back := sh.release(l)
	delete(c.leases, l.id)
	mLeasesOutstanding.Add(-1)
	sh.tracer.Event("fabric.release", l.id, uint64(back), 0)
	obs.Emit("fabric.release",
		obs.F("job", l.jobID),
		obs.F("lease", l.id),
		obs.F("worker", w.id),
		obs.F("cells_back", back))
	if req.Error != "" && !sh.job.State.Terminal() {
		c.transitionLocked(sh, jobd.StateFailed,
			fmt.Sprintf("fabric: worker %s: %s", w.id, req.Error))
	}
	return LeaseResponse{Worker: w.id, Idle: true, Done: c.allTerminalLocked()}, http.StatusOK, nil
}

// acquireLocked grants the first available cell run, walking jobs in
// submission order.
func (c *Coordinator) acquireLocked(w *workerInfo, now time.Time) (LeaseResponse, int, error) {
	if !c.draining {
		for _, id := range c.order {
			sh := c.jobs[id]
			if !sh.leasable() {
				continue
			}
			lo, hi, ok := sh.firstRun(c.opts.LeaseCells)
			if !ok {
				continue
			}
			c.leaseSeq++
			l := &lease{
				id: c.leaseSeq, jobID: id, lo: lo, hi: hi,
				worker: w.id, expires: now.Add(c.opts.LeaseTTL),
			}
			sh.grant(l)
			c.leases[l.id] = l
			w.leases++
			mLeasesGranted.Inc()
			mLeasesOutstanding.Add(1)
			if sh.job.State == jobd.StateQueued {
				c.transitionLocked(sh, jobd.StateRunning, "")
			}
			sh.tracer.Event("fabric.grant", l.id, uint64(lo), uint64(hi))
			obs.Emit("fabric.grant",
				obs.F("job", id),
				obs.F("lease", l.id),
				obs.F("worker", w.id),
				obs.F("lo", lo),
				obs.F("hi", hi))
			spec := sh.job.Spec
			return LeaseResponse{
				Worker: w.id, Lease: l.id, Job: id, Spec: &spec,
				Lo: lo, Hi: hi,
				TTLMS: c.opts.LeaseTTL.Milliseconds(),
			}, http.StatusOK, nil
		}
	}
	return LeaseResponse{
		Worker: w.id, Idle: true,
		Done: c.draining || c.allTerminalLocked(),
	}, http.StatusOK, nil
}

// allTerminalLocked reports whether every known job finished.
func (c *Coordinator) allTerminalLocked() bool {
	for _, sh := range c.jobs {
		if !sh.job.State.Terminal() {
			return false
		}
	}
	return true
}

// recordsEqual compares two checkpoints for the same cell bit-wise:
// all integer fields, and every VtShift value via Float64bits. This is
// the fabric's determinism assertion — two workers simulating the same
// (seed, index) must produce indistinguishable records.
func recordsEqual(a, b jobd.CellRecord) bool {
	if a.Index != b.Index || a.TrapCount != b.TrapCount ||
		a.Errors != b.Errors || a.Slow != b.Slow || a.Failed != b.Failed {
		return false
	}
	if math.Float64bits(a.LogLR) != math.Float64bits(b.LogLR) ||
		math.Float64bits(a.GlitchDepth) != math.Float64bits(b.GlitchDepth) {
		return false
	}
	if len(a.VtShift) != len(b.VtShift) {
		return false
	}
	for k, av := range a.VtShift {
		bv, ok := b.VtShift[k]
		if !ok || math.Float64bits(av) != math.Float64bits(bv) {
			return false
		}
	}
	return true
}

// Checkpoint serves one POST /fabric/checkpoint batch. Cells are
// appended to the WAL in request order; duplicates (stolen leases,
// retried batches) are bit-verified against the durable record and
// dropped. First durable checkpoint wins — a mismatch fails the job.
func (c *Coordinator) Checkpoint(req CheckpointRequest) (CheckpointResponse, int, error) {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.touchWorker(req.Worker, now)
	c.reapLocked(now)

	sh, ok := c.jobs[req.Job]
	if !ok {
		return CheckpointResponse{}, http.StatusNotFound,
			fmt.Errorf("fabric: no job %q", req.Job)
	}
	j := sh.job
	resp := CheckpointResponse{Total: j.CellsTotal}
	for _, rec := range req.Cells {
		if rec.Index < 0 || rec.Index >= j.CellsTotal {
			resp.Done, resp.State = j.Done(), j.State
			return resp, http.StatusBadRequest,
				fmt.Errorf("fabric: cell index %d outside [0,%d)", rec.Index, j.CellsTotal)
		}
		if prev, dup := j.Cell(rec.Index); dup {
			mDupCheckpoints.Inc()
			if !recordsEqual(prev, rec) {
				mDupMismatches.Inc()
				msg := fmt.Sprintf(
					"fabric: duplicate checkpoint for job %s cell %d from worker %s diverges from the durable record (determinism violation)",
					j.ID, rec.Index, w.id)
				if !j.State.Terminal() {
					c.transitionLocked(sh, jobd.StateFailed, msg)
				}
				resp.Done, resp.State = j.Done(), j.State
				return resp, http.StatusConflict, errors.New(msg)
			}
			resp.Duplicates++
			continue
		}
		if j.State.Terminal() {
			resp.Done, resp.State = j.Done(), j.State
			return resp, http.StatusConflict,
				fmt.Errorf("fabric: job %s is %s; not accepting new cells", j.ID, j.State)
		}
		if err := c.store.AppendCell(j.ID, rec); err != nil {
			mFabricStoreErrors.Inc()
			resp.Done, resp.State = j.Done(), j.State
			return resp, http.StatusInternalServerError,
				fmt.Errorf("fabric: checkpoint store failed: %w", err)
		}
		j.PutCell(rec)
		sh.settle(rec.Index)
		resp.Accepted++
		w.cells++
		mCellsAccepted.Inc()
		workerCells(w.id).Inc()
		sh.tracer.Event("fabric.checkpoint", uint64(rec.Index), uint64(j.Done()), uint64(j.CellsTotal))
	}
	if elapsed := now.Sub(w.first).Seconds(); elapsed > 0 {
		workerRate(w.id).Set(float64(w.cells) / elapsed)
	}
	c.settleLeasesLocked(sh)
	if !j.State.Terminal() && j.Done() == j.CellsTotal {
		c.finalizeLocked(sh)
	}
	resp.Done, resp.State = j.Done(), j.State
	return resp, http.StatusOK, nil
}

// settleLeasesLocked retires the shard's leases whose every cell is
// durable — the holder's own final checkpoint, or a faster thief
// draining a re-leased range cell by cell. Without this, a finished
// lease would linger to its TTL and read as a steal.
func (c *Coordinator) settleLeasesLocked(sh *shard) {
	for id, l := range c.leases {
		if l.jobID != sh.job.ID || sh.remaining(l) > 0 {
			continue
		}
		delete(c.leases, id)
		mLeasesOutstanding.Add(-1)
		sh.tracer.Event("fabric.complete", l.id, uint64(l.lo), uint64(l.hi))
	}
}

// finalizeLocked completes a fully checkpointed job: the summary is
// recomputed from the durable records with the same operations
// single-node RunArrayCtx uses (a count and an integer sum, each
// divided by the cell count), so the fabric's aggregate is bit-
// identical to the single-node one.
func (c *Coordinator) finalizeLocked(sh *shard) {
	j := sh.job
	numFailed, trapSum := 0, 0
	var est rareevent.Estimator
	for _, rec := range j.Records() {
		if rec.Failed {
			numFailed++
		}
		trapSum += rec.TrapCount
		// Records() is sorted by index, so this accumulation order is
		// the one single-node RunArrayCtx uses for its weighted
		// aggregate — the fabric's rare summary is bit-identical.
		x := 0.0
		if rec.Failed {
			x = 1
		}
		est.Add(math.Exp(rec.LogLR), x)
	}
	sum := jobd.Summary{
		NumFailed: numFailed,
		ErrorRate: float64(numFailed) / float64(j.CellsTotal),
		MeanTraps: float64(trapSum) / float64(j.CellsTotal),
	}
	if j.Spec.Type == jobd.TypeRareArray {
		stats := est.Stats(j.Spec.TiltEV)
		sum.Rare = &stats
	}
	if err := c.store.AppendResult(j.ID, sum); err != nil {
		mFabricStoreErrors.Inc()
	}
	j.Result = &sum
	c.transitionLocked(sh, jobd.StateDone, "")
	// Leases outlived by their job (stolen ranges re-checkpointed by
	// someone faster) are settled now.
	for id, l := range c.leases {
		if l.jobID != j.ID {
			continue
		}
		delete(c.leases, id)
		mLeasesOutstanding.Add(-1)
	}
	sh.tracer.Event("fabric.done", uint64(numFailed), uint64(trapSum), 0)
	obs.Emit("fabric.done",
		obs.F("job", j.ID),
		obs.F("num_failed", numFailed),
		obs.F("mean_traps", sum.MeanTraps))
}

// transitionLocked moves a job to a new state, persisting first. A
// failed append downgrades to in-memory only, mirroring the scheduler's
// stay-truthful policy.
func (c *Coordinator) transitionLocked(sh *shard, st jobd.State, errMsg string) {
	if err := c.store.AppendState(sh.job.ID, st, errMsg); err != nil {
		mFabricStoreErrors.Inc()
	}
	old := sh.job.State
	sh.job.State = st
	sh.job.Error = errMsg
	fabricJobGauge(old).Add(-1)
	fabricJobGauge(st).Add(1)
	fields := []obs.Field{obs.F("job", sh.job.ID), obs.F("state", string(st))}
	if errMsg != "" {
		fields = append(fields, obs.F("error", errMsg))
	}
	obs.Emit("fabric.state", fields...)
}

// Status snapshots the fabric for GET /fabric/status.
func (c *Coordinator) Status() Status {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)

	st := Status{Draining: c.draining, StealsTotal: c.steals, Jobs: []JobStatus{}}
	byJob := map[string][]*lease{}
	for _, l := range c.leases {
		byJob[l.jobID] = append(byJob[l.jobID], l)
	}
	for _, id := range c.order {
		sh := c.jobs[id]
		js := JobStatus{
			ID:         id,
			State:      sh.job.State,
			CellsDone:  sh.job.Done(),
			CellsTotal: sh.job.CellsTotal,
			Pending:    sh.nPend,
			Leased:     len(sh.leased),
			Steals:     sh.steals,
		}
		ls := byJob[id]
		sort.Slice(ls, func(a, b int) bool { return ls[a].id < ls[b].id })
		for _, l := range ls {
			js.Leases = append(js.Leases, LeaseStatus{
				ID: l.id, Worker: l.worker, Lo: l.lo, Hi: l.hi,
				Remaining:   sh.remaining(l),
				ExpiresInMS: l.expires.Sub(now).Milliseconds(),
				Renews:      l.renews,
			})
		}
		st.Jobs = append(st.Jobs, js)
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := c.workers[id]
		ws := WorkerState{
			ID: id, Cells: w.cells, Leases: w.leases,
			LastContactMS: now.Sub(w.last).Milliseconds(),
		}
		if elapsed := now.Sub(w.first).Seconds(); elapsed > 0 {
			ws.CellsPerSec = float64(w.cells) / elapsed
		}
		st.Workers = append(st.Workers, ws)
	}
	return st
}

package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"samurai/internal/jobd"
	"samurai/internal/obs"
)

// NewHandler mounts the coordinator API next to the observability
// surface (obs.NewMux: /metrics, /debug/pprof) and returns the combined
// handler. The /jobs surface mirrors the single-node samuraid API, so
// clients submit and fetch results identically whether a scheduler or
// a fabric sits behind the socket; /fabric/* is the worker protocol.
//
//	POST /jobs                submit an array Spec, 202 + View
//	GET  /jobs                list all jobs
//	GET  /jobs/{id}           one job's View
//	GET  /jobs/{id}/result    409 until done; provenance manifest,
//	                          summary + sorted cells
//	GET  /jobs/{id}/trace     lease-lifecycle trace (Chrome JSON, or
//	                          ?format=jsonl)
//	POST /fabric/lease        acquire / renew / release a cell lease
//	POST /fabric/checkpoint   append completed cell records
//	GET  /fabric/status       leases, steals, worker liveness
//	GET  /healthz             liveness (503 while draining)
func NewHandler(c *Coordinator) http.Handler {
	mux := obs.NewMux(nil)
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec jobd.Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("fabric: decoding job spec: %w", err))
			return
		}
		v, err := c.Submit(spec)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrDraining) {
				code = http.StatusServiceUnavailable
			}
			httpError(w, code, err)
			return
		}
		writeJSON(w, http.StatusAccepted, v)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.List())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := c.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("fabric: no job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		v, ok := c.Get(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("fabric: no job %q", id))
			return
		}
		if v.State != jobd.StateDone {
			httpError(w, http.StatusConflict, fmt.Errorf("fabric: job %q is %s, not done", id, v.State))
			return
		}
		cells, _ := c.Records(id)
		// Same serve-time-only provenance rule as the single-node result
		// endpoint: the manifest is machine-dependent and never enters
		// the WAL.
		writeJSON(w, http.StatusOK, struct {
			ID      string            `json:"id"`
			RunInfo obs.RunInfo       `json:"run_info"`
			Summary *jobd.Summary     `json:"summary"`
			Cells   []jobd.CellRecord `json:"cells,omitempty"`
		}{
			ID:      id,
			RunInfo: obs.Info(v.Spec.Seed, fmt.Sprintf("%016x", v.Spec.TraceID())),
			Summary: v.Result,
			Cells:   cells,
		})
	})
	mux.HandleFunc("GET /jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		tr, ok := c.Trace(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("fabric: no trace for job %q", id))
			return
		}
		var err error
		switch format := r.URL.Query().Get("format"); format {
		case "", "chrome":
			w.Header().Set("Content-Type", "application/json")
			err = tr.WriteChrome(w)
		case "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			err = tr.WriteJSONL(w)
		default:
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("fabric: unknown trace format %q (want chrome or jsonl)", format))
			return
		}
		if err != nil {
			// Mid-stream write failure: the client hung up.
			return
		}
	})
	mux.HandleFunc("POST "+PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("fabric: decoding lease request: %w", err))
			return
		}
		resp, code, err := c.Lease(req)
		if err != nil {
			httpError(w, code, err)
			return
		}
		writeJSON(w, code, resp)
	})
	mux.HandleFunc("POST "+PathCheckpoint, func(w http.ResponseWriter, r *http.Request) {
		var req CheckpointRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("fabric: decoding checkpoint: %w", err))
			return
		}
		resp, code, err := c.Checkpoint(req)
		if err != nil {
			httpError(w, code, err)
			return
		}
		writeJSON(w, code, resp)
	})
	mux.HandleFunc("GET "+PathStatus, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if c.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// writeJSON encodes v as the response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//lint:ignore bareerr a worker that hung up mid-response re-polls; the lease protocol self-heals
	json.NewEncoder(w).Encode(v)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"samurai"
	"samurai/internal/jobd"
	"samurai/internal/montecarlo"
	"samurai/internal/obs"
)

// Worker-side instrumentation (the worker process has its own metrics
// surface when cmd/samuraiw serves one).
var (
	mwLeases = obs.GetCounter("samurai_fabricw_leases_total",
		"leases acquired by this worker")
	mwCellsSim = obs.GetCounter("samurai_fabricw_cells_simulated_total",
		"cells simulated by this worker")
	mwLost = obs.GetCounter("samurai_fabricw_leases_lost_total",
		"leases lost to stealing (renewal refused mid-run)")
	mwRetries = obs.GetCounter("samurai_fabricw_post_retries_total",
		"coordinator requests retried after transport or 5xx failures")
)

// WorkerOptions configures a fabric worker. BaseURL is required; the
// zero value of everything else is usable.
type WorkerOptions struct {
	// BaseURL is the coordinator's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// ID is the worker's identity; empty lets the coordinator assign
	// one on first contact.
	ID string
	// Threads overrides the per-lease cell parallelism (0 keeps the
	// job spec's Workers setting).
	Threads int
	// Client is the HTTP client for all coordinator calls. The default
	// sets a 30s Timeout — every client in this tree must bound its
	// requests (samurailint httptimeouts).
	Client *http.Client
	// Poll is the idle re-poll interval when no lease is available
	// (default 500ms).
	Poll time.Duration
	// Runner executes one cell (default samurai.ArrayRunnerCtx()).
	Runner montecarlo.CtxRunner
	// RareRunner executes one cell of a rare_array lease (default
	// samurai.RareArrayRunnerCtx()).
	RareRunner montecarlo.RareCtxRunner
	// ExitWhenDone makes Run return once the coordinator reports every
	// job terminal, instead of polling for more work forever.
	ExitWhenDone bool
	// MaxRetries bounds the capped-exponential-backoff retries of each
	// coordinator request (default 8).
	MaxRetries int
	// Backoff is the initial retry backoff (default 100ms); MaxBackoff
	// caps the exponential growth (default 5s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// OnCheckpoint, when non-nil, observes every cell the coordinator
	// acknowledged as durably accepted (test and chaos hooks).
	OnCheckpoint func(job string, index int)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.Runner == nil {
		o.Runner = samurai.ArrayRunnerCtx()
	}
	if o.RareRunner == nil {
		o.RareRunner = samurai.RareArrayRunnerCtx()
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 8
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	return o
}

// Worker is a fabric lease executor: it acquires cell-range leases from
// a coordinator, simulates them with montecarlo.RunArrayCtx restricted
// to the leased subset, and streams checkpoints back. Workers hold no
// durable state — killing one loses nothing but the lease TTL.
type Worker struct {
	opts WorkerOptions

	mu sync.Mutex
	id string

	drain     chan struct{}
	drainOnce sync.Once
}

// NewWorker builds a worker; Run does the work.
func NewWorker(opts WorkerOptions) *Worker {
	o := opts.withDefaults()
	return &Worker{opts: o, id: o.ID, drain: make(chan struct{})}
}

// ID returns the worker's identity (assigned by the coordinator on
// first contact when WorkerOptions.ID was empty).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

func (w *Worker) setID(id string) {
	if id == "" {
		return
	}
	w.mu.Lock()
	w.id = id
	w.mu.Unlock()
}

// Drain stops the worker gracefully: in-flight cells finish and
// checkpoint, the unfinished remainder of the current lease is released
// back to the pool, and Run returns nil. Safe to call more than once.
func (w *Worker) Drain() {
	w.drainOnce.Do(func() { close(w.drain) })
}

func (w *Worker) draining() bool {
	select {
	case <-w.drain:
		return true
	default:
		return false
	}
}

// Run executes the lease/simulate/checkpoint loop until the context is
// cancelled (hard abort — the coordinator steals the lease after its
// TTL), Drain is called (graceful), or — with ExitWhenDone — the
// coordinator reports all jobs terminal.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if w.draining() {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, err := w.acquire(ctx)
		if err != nil {
			if w.draining() {
				return nil
			}
			return err
		}
		if grant.Idle {
			if grant.Done && w.opts.ExitWhenDone {
				return nil
			}
			timer := time.NewTimer(w.opts.Poll)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-w.drain:
				timer.Stop()
				return nil
			}
			continue
		}
		if err := w.runLease(ctx, grant); err != nil {
			return err
		}
	}
}

// acquire requests a fresh lease with capped-exponential-backoff retry
// on transport and 5xx failures.
func (w *Worker) acquire(ctx context.Context) (LeaseResponse, error) {
	var resp LeaseResponse
	err := w.retry(ctx, func() (int, error) {
		resp = LeaseResponse{}
		return w.post(ctx, PathLease, LeaseRequest{Worker: w.ID()}, &resp)
	})
	if err != nil {
		return resp, fmt.Errorf("fabric: acquiring lease: %w", err)
	}
	w.setID(resp.Worker)
	if !resp.Idle {
		mwLeases.Inc()
	}
	return resp, nil
}

// runLease simulates one granted cell range. Three goroutine roles:
// the renewal heartbeat keeps the lease alive (and cancels the run the
// moment the coordinator refuses — the lease was stolen, further work
// is waste), the sender streams checkpoint batches with retry, and the
// calling goroutine runs the sweep itself.
func (w *Worker) runLease(ctx context.Context, grant LeaseResponse) error {
	if grant.Spec == nil {
		return fmt.Errorf("fabric: lease %d granted without a spec", grant.Lease)
	}
	cfg, err := grant.Spec.ArrayConfig()
	if err != nil {
		return fmt.Errorf("fabric: lease %d spec: %w", grant.Lease, err)
	}
	if w.opts.Threads > 0 {
		cfg.Workers = w.opts.Threads
	}

	lctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var hbWG sync.WaitGroup
	stolen := make(chan struct{})
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeat(lctx, cancel, grant, stolen)
	}()

	// The checkpoint channel is sized for the whole range, so OnCell
	// (called on simulation worker goroutines) never blocks on the
	// network: a slow coordinator stalls durability, not simulation.
	recs := make(chan jobd.CellRecord, grant.Hi-grant.Lo)
	var sendErr error
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		sendErr = w.sendLoop(ctx, grant, recs)
		if sendErr != nil {
			cancel()
		}
	}()

	sub := montecarlo.IndexRange{Lo: grant.Lo, Hi: grant.Hi}
	aopts := montecarlo.ArrayOptions{
		Subset: &sub,
		Drain:  w.drain,
		OnCell: func(o montecarlo.CellOutcome) {
			mwCellsSim.Inc()
			recs <- jobd.NewCellRecord(o)
		},
	}
	var run montecarlo.CtxRunner
	if grant.Spec.Type == jobd.TypeRareArray {
		// The worker streams raw records (counts + per-cell log-LR);
		// the weighted aggregate is the coordinator's to compute once
		// every shard is durable, so the shard-local one is discarded.
		aopts.RareEvent = &montecarlo.RareEventSpec{
			TiltEV: grant.Spec.TiltEV,
			Runner: w.opts.RareRunner,
		}
	} else {
		run = w.opts.Runner
	}
	_, runErr := montecarlo.RunArrayCtx(lctx, cfg, run, aopts)
	close(recs)
	<-senderDone
	cancel()
	hbWG.Wait()

	if sendErr != nil {
		return sendErr
	}

	wasStolen := false
	select {
	case <-stolen:
		wasStolen = true
	default:
	}

	if runErr != nil && !wasStolen {
		// Unfinished cells go back to the pool now instead of waiting
		// out the TTL. Best-effort: if the release is lost, stealing
		// covers it. The parent context (not lctx — cancelled above
		// unconditionally) distinguishes a genuine simulation failure,
		// which must fail the job loudly, from an external abort.
		relErr := ""
		if !errors.Is(runErr, montecarlo.ErrDrained) && ctx.Err() == nil {
			relErr = runErr.Error()
		}
		var resp LeaseResponse
		//lint:ignore bareerr best-effort release; lease expiry recovers the cells regardless
		w.post(ctx, PathLease, LeaseRequest{Worker: w.ID(), Release: grant.Lease, Error: relErr}, &resp)
	}

	switch {
	case runErr == nil:
		return nil
	case errors.Is(runErr, montecarlo.ErrDrained):
		// Graceful drain: Run's loop observes w.draining and exits.
		return nil
	case ctx.Err() != nil:
		return ctx.Err()
	case wasStolen:
		// The coordinator moved on; so do we.
		obs.Emit("fabricw.stolen",
			obs.F("worker", w.ID()), obs.F("lease", grant.Lease))
		return nil
	default:
		return fmt.Errorf("fabric: lease %d (job %s cells [%d,%d)): %w",
			grant.Lease, grant.Job, grant.Lo, grant.Hi, runErr)
	}
}

// heartbeat renews the lease at a third of its TTL until the lease
// context ends. A 410 means the lease was stolen: stolen is closed and
// the run cancelled.
func (w *Worker) heartbeat(lctx context.Context, cancel context.CancelFunc, grant LeaseResponse, stolen chan struct{}) {
	interval := time.Duration(grant.TTLMS) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-lctx.Done():
			return
		case <-ticker.C:
			var resp LeaseResponse
			code, err := w.post(lctx, PathLease, LeaseRequest{Worker: w.ID(), Renew: grant.Lease}, &resp)
			switch {
			case err == nil:
				continue
			case code == http.StatusGone:
				mwLost.Inc()
				close(stolen)
				cancel()
				return
			default:
				// Transient: the lease survives missed renewals for the
				// remainder of its TTL; try again next tick.
			}
		}
	}
}

// sendLoop batches checkpoint records as they arrive and posts each
// batch with retry. A post that fails permanently (409 determinism
// mismatch, job gone, retries exhausted) aborts the lease.
func (w *Worker) sendLoop(ctx context.Context, grant LeaseResponse, recs <-chan jobd.CellRecord) error {
	for rec := range recs {
		batch := []jobd.CellRecord{rec}
	gather:
		for {
			select {
			case r, ok := <-recs:
				if !ok {
					break gather
				}
				batch = append(batch, r)
			default:
				break gather
			}
		}
		var resp CheckpointResponse
		err := w.retry(ctx, func() (int, error) {
			resp = CheckpointResponse{}
			return w.post(ctx, PathCheckpoint, CheckpointRequest{
				Worker: w.ID(), Job: grant.Job, Lease: grant.Lease, Cells: batch,
			}, &resp)
		})
		if err != nil {
			return fmt.Errorf("fabric: checkpointing %d cells of job %s: %w", len(batch), grant.Job, err)
		}
		if w.opts.OnCheckpoint != nil {
			for _, r := range batch {
				w.opts.OnCheckpoint(grant.Job, r.Index)
			}
		}
	}
	return nil
}

// retry runs fn with capped exponential backoff. Transport errors
// (code 0) and 5xx responses are retried; 4xx responses are protocol
// outcomes and returned immediately.
func (w *Worker) retry(ctx context.Context, fn func() (int, error)) error {
	backoff := w.opts.Backoff
	for attempt := 0; ; attempt++ {
		code, err := fn()
		if err == nil {
			return nil
		}
		retriable := code == 0 || code >= http.StatusInternalServerError
		if !retriable || attempt >= w.opts.MaxRetries || ctx.Err() != nil {
			return err
		}
		mwRetries.Inc()
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
		if backoff *= 2; backoff > w.opts.MaxBackoff {
			backoff = w.opts.MaxBackoff
		}
	}
}

// post sends one JSON request and decodes the JSON response. Error
// responses (>= 400) are folded into the returned error together with
// the coordinator's message; the status code is returned either way
// (0 for transport failures).
func (w *Worker) post(ctx context.Context, path string, req, out any) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, fmt.Errorf("fabric: encoding %T: %w", req, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(hreq)
	if err != nil {
		return 0, err
	}
	//lint:ignore bareerr response body close is best-effort after a full read
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		//lint:ignore bareerr a malformed error body degrades to the bare status code
		json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return resp.StatusCode, fmt.Errorf("fabric: %s: %s", path, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("fabric: decoding %s response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

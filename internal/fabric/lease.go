package fabric

import (
	"time"

	"samurai/internal/jobd"
	"samurai/internal/obs/trace"
)

// lease is one outstanding grant of a contiguous cell range to one
// worker. Leases are soft state: they exist only in coordinator memory
// and are rebuilt from scratch (empty) after a restart — the WAL holds
// checkpoints, never lease bookkeeping, so wall-clock deadlines stay
// out of the durable record.
type lease struct {
	id     uint64
	jobID  string
	lo, hi int
	worker string
	// expires is the steal deadline; renewals push it out.
	expires time.Time
	renews  int
}

// shard is the coordinator's per-job sharding state: which cells still
// need work, which are out under a lease, and the job's tracer.
type shard struct {
	job *jobd.Job
	// pending marks cells neither checkpointed nor leased; nil for jobs
	// the coordinator does not shard (terminal or non-array).
	pending []bool
	nPend   int
	// leased maps a leased cell index to its lease id. Lease ids start
	// at 1, so the zero value of a missing key never matches.
	leased map[int]uint64
	steals int
	// tracer records the lease lifecycle as instants (fabric.grant /
	// fabric.steal / fabric.release / fabric.complete events) rather
	// than timed spans: leases are long-lived coordinator state, and a
	// stored span would smuggle wall-clock time next to the durable
	// record the fabric must keep deterministic.
	tracer *trace.Tracer
}

// newShard wraps a replayed or freshly submitted job. Only live array
// jobs get sharding state; terminal and run-type jobs are tracked for
// the API surface but never leased.
func newShard(j *jobd.Job) *shard {
	sh := &shard{
		job:    j,
		leased: map[int]uint64{},
		tracer: trace.New(j.Spec.TraceID(), trace.Options{}),
	}
	if !jobd.ArrayLike(j.Spec.Type) || j.State.Terminal() {
		return sh
	}
	sh.pending = make([]bool, j.CellsTotal)
	for i := 0; i < j.CellsTotal; i++ {
		if !j.Checkpointed(i) {
			sh.pending[i] = true
			sh.nPend++
		}
	}
	return sh
}

// leasable reports whether the shard has cells to hand out.
func (sh *shard) leasable() bool {
	return sh.nPend > 0 && !sh.job.State.Terminal()
}

// firstRun finds the first contiguous run of pending cells, capped at
// max. Granting low indices first keeps early cells durable earliest,
// which is what makes a partially swept array useful for peeking.
func (sh *shard) firstRun(max int) (lo, hi int, ok bool) {
	for i := range sh.pending {
		if !sh.pending[i] {
			continue
		}
		lo, hi = i, i
		for hi < len(sh.pending) && hi-lo < max && sh.pending[hi] {
			hi++
		}
		return lo, hi, true
	}
	return 0, 0, false
}

// grant marks the lease's cells as out.
func (sh *shard) grant(l *lease) {
	for i := l.lo; i < l.hi; i++ {
		if sh.pending[i] {
			sh.pending[i] = false
			sh.nPend--
			sh.leased[i] = l.id
		}
	}
}

// release returns a lease's unfinished cells to the pool and reports
// how many went back. Cells already checkpointed (or re-leased after a
// steal) are untouched.
func (sh *shard) release(l *lease) int {
	back := 0
	for i := l.lo; i < l.hi; i++ {
		if sh.leased[i] == l.id {
			delete(sh.leased, i)
			sh.pending[i] = true
			sh.nPend++
			back++
		}
	}
	return back
}

// remaining counts the lease's cells still out (not yet checkpointed).
func (sh *shard) remaining(l *lease) int {
	n := 0
	for i := l.lo; i < l.hi; i++ {
		if sh.leased[i] == l.id {
			n++
		}
	}
	return n
}

// settle clears the sharding state for a freshly checkpointed cell,
// whatever its lease history: pending (stolen and not yet re-leased),
// leased to anyone, or already settled.
func (sh *shard) settle(i int) {
	if sh.pending != nil && sh.pending[i] {
		sh.pending[i] = false
		sh.nPend--
	}
	delete(sh.leased, i)
}

// workerInfo is the coordinator's liveness and throughput view of one
// worker, keyed by the id assigned at first contact.
type workerInfo struct {
	id     string
	cells  int64
	leases int64
	first  time.Time
	last   time.Time
}

package fabric

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"samurai"
	"samurai/internal/jobd"
	"samurai/internal/montecarlo"
	"samurai/internal/sram"
)

// testSpec is the canonical fabric test sweep: variation-only (fast)
// with a fixed seed, matching the single-node resume golden tests.
func testSpec(cells, workers int) jobd.Spec {
	withRTN := false
	return jobd.Spec{
		Type:    jobd.TypeArray,
		Seed:    1234,
		Cells:   cells,
		WithRTN: &withRTN,
		Workers: workers,
	}
}

// baseline runs the spec single-node through RunArrayCtx — the result
// every fabric topology must reproduce bit-for-bit.
func baseline(t *testing.T, spec jobd.Spec) (*montecarlo.ArrayResult, []jobd.CellRecord) {
	t.Helper()
	cfg, err := spec.ArrayConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := montecarlo.RunArrayCtx(context.Background(), cfg, samurai.ArrayRunnerCtx(), montecarlo.ArrayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]jobd.CellRecord, 0, len(res.Outcomes))
	for _, o := range res.Outcomes {
		recs = append(recs, jobd.NewCellRecord(o))
	}
	return res, recs
}

// assertMerged compares the coordinator's merged records and summary
// against the single-node baseline, float64s as raw bits.
func assertMerged(t *testing.T, c *Coordinator, jobID string, res *montecarlo.ArrayResult, want []jobd.CellRecord) {
	t.Helper()
	v, ok := c.Get(jobID)
	if !ok {
		t.Fatalf("job %s vanished", jobID)
	}
	if v.State != jobd.StateDone {
		t.Fatalf("job %s is %s (%s), want done", jobID, v.State, v.Error)
	}
	got, _ := c.Records(jobID)
	if len(got) != len(want) {
		t.Fatalf("merged %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(got[i], want[i]) {
			t.Fatalf("cell %d not bit-identical to single-node run:\n got %+v\nwant %+v", i, got[i], want[i])
		}
		for k, wv := range want[i].VtShift {
			if math.Float64bits(got[i].VtShift[k]) != math.Float64bits(wv) {
				t.Fatalf("cell %d VtShift[%q] bits differ", i, k)
			}
		}
	}
	if v.Result == nil {
		t.Fatal("done job has no summary")
	}
	if v.Result.NumFailed != res.NumFailed ||
		math.Float64bits(v.Result.ErrorRate) != math.Float64bits(res.ErrorRate) ||
		math.Float64bits(v.Result.MeanTraps) != math.Float64bits(res.MeanTraps) {
		t.Fatalf("summary not bit-identical: got %+v, want {NumFailed:%d ErrorRate:%v MeanTraps:%v}",
			v.Result, res.NumFailed, res.ErrorRate, res.MeanTraps)
	}
}

// newFabric stands up a coordinator plus HTTP server over a fresh
// store in dir.
func newFabric(t *testing.T, dir string, opts Options) (*Coordinator, *httptest.Server) {
	t.Helper()
	store, jobs, seq, err := jobd.Open(filepath.Join(dir, "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//lint:ignore bareerr double-close races with explicit closes in restart tests are benign here
		store.Close()
	})
	c := New(store, jobs, seq, opts)
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)
	return c, srv
}

// TestFabricMergeBitIdentical is the headline tentpole assertion: three
// workers splitting one array job over the lease protocol merge to the
// byte-identical records and summary of a single-node RunArrayCtx.
func TestFabricMergeBitIdentical(t *testing.T) {
	spec := testSpec(24, 2)
	res, want := baseline(t, spec)

	c, srv := newFabric(t, t.TempDir(), Options{LeaseCells: 5, LeaseTTL: time.Minute})
	v, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	const nWorkers = 3
	var wg sync.WaitGroup
	errs := make([]error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewWorker(WorkerOptions{
				BaseURL:      srv.URL,
				Poll:         10 * time.Millisecond,
				ExitWhenDone: true,
			})
			errs[i] = w.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	assertMerged(t, c, v.ID, res, want)

	st := c.Status()
	if st.StealsTotal != 0 {
		t.Fatalf("healthy run recorded %d steals", st.StealsTotal)
	}
	if len(st.Workers) == 0 {
		t.Fatal("status lists no workers")
	}
}

// TestFabricChaosWorkerKill repeatedly hard-kills workers mid-lease
// (context cancellation — checkpoint flushing dies with them) and lets
// fresh workers steal the remains. The merged result must still be
// bit-identical, and at least one steal must be on the books.
func TestFabricChaosWorkerKill(t *testing.T) {
	spec := testSpec(12, 1)
	res, want := baseline(t, spec)

	c, srv := newFabric(t, t.TempDir(), Options{LeaseCells: 6, LeaseTTL: 250 * time.Millisecond})
	v, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic kill schedule: each chaos worker is cancelled after
	// its k-th acknowledged checkpoint, well inside a 6-cell lease.
	for _, k := range []int32{1, 2} {
		ctx, cancel := context.WithCancel(context.Background())
		var acked atomic.Int32
		w := NewWorker(WorkerOptions{
			BaseURL:      srv.URL,
			Poll:         10 * time.Millisecond,
			ExitWhenDone: true,
			OnCheckpoint: func(string, int) {
				if acked.Add(1) == k {
					cancel()
				}
			},
		})
		// The kill races the run loop: either the worker dies mid-lease
		// (ctx error) or it got lucky and finished flushing first. Both
		// are valid chaos outcomes.
		//lint:ignore bareerr chaos worker errors are the point of the test
		w.Run(ctx)
		cancel()
	}
	if done := c.Status().Jobs[0].CellsDone; done >= spec.Cells {
		t.Fatalf("chaos workers completed all %d cells; kill schedule too lax to test stealing", done)
	}

	// A clean finisher drains the pool, stealing whatever the dead
	// workers still nominally hold.
	w := NewWorker(WorkerOptions{
		BaseURL:      srv.URL,
		Poll:         10 * time.Millisecond,
		ExitWhenDone: true,
	})
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("finisher worker: %v", err)
	}

	assertMerged(t, c, v.ID, res, want)
	if st := c.Status(); st.StealsTotal < 1 {
		t.Fatalf("expected at least one steal, status: %+v", st)
	}
}

// TestFabricCoordinatorRestart kills the coordinator mid-job (store
// closed, process state dropped), replays the WAL into a fresh one and
// lets the same worker identity finish. Checkpointed cells must survive
// the restart and the merged result must stay bit-identical.
func TestFabricCoordinatorRestart(t *testing.T) {
	spec := testSpec(12, 1)
	res, want := baseline(t, spec)
	path := filepath.Join(t.TempDir(), "store.jsonl")

	store, jobs, seq, err := jobd.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c := New(store, jobs, seq, Options{LeaseCells: 4, LeaseTTL: time.Minute})
	srv := httptest.NewServer(NewHandler(c))
	v, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var acked atomic.Int32
	w1 := NewWorker(WorkerOptions{
		BaseURL:      srv.URL,
		ID:           "w-alpha",
		Poll:         10 * time.Millisecond,
		ExitWhenDone: true,
		OnCheckpoint: func(string, int) {
			if acked.Add(1) == 3 {
				cancel()
			}
		},
	})
	//lint:ignore bareerr the worker dies with its context by design
	w1.Run(ctx)
	cancel()
	srv.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if acked.Load() < 3 {
		t.Fatalf("first worker checkpointed only %d cells before the crash", acked.Load())
	}

	store2, jobs2, seq2, err := jobd.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if len(jobs2) != 1 || jobs2[0].Done() < 3 {
		t.Fatalf("replay lost checkpoints: %d jobs, %d cells", len(jobs2), jobs2[0].Done())
	}
	c2 := New(store2, jobs2, seq2, Options{LeaseCells: 4, LeaseTTL: time.Minute})
	srv2 := httptest.NewServer(NewHandler(c2))
	defer srv2.Close()

	// The same worker identity re-registers transparently on first
	// contact with the new coordinator.
	w2 := NewWorker(WorkerOptions{
		BaseURL:      srv2.URL,
		ID:           "w-alpha",
		Poll:         10 * time.Millisecond,
		ExitWhenDone: true,
	})
	if err := w2.Run(context.Background()); err != nil {
		t.Fatalf("post-restart worker: %v", err)
	}

	assertMerged(t, c2, v.ID, res, want)
	st := c2.Status()
	if len(st.Workers) != 1 || st.Workers[0].ID != "w-alpha" {
		t.Fatalf("worker registration did not replay: %+v", st.Workers)
	}
	if st.Workers[0].Cells == 0 {
		t.Fatal("re-registered worker shows no checkpoints")
	}
}

// TestWorkerRunnerErrorFailsJob: a simulation error must travel the
// fail-loudly path end to end — the worker attaches it to the lease
// release and the coordinator fails the job. Without it the cells
// silently return to the pool and the deterministically failing range
// is re-leased (and re-failed) forever.
func TestWorkerRunnerErrorFailsJob(t *testing.T) {
	c, srv := newFabric(t, t.TempDir(), Options{LeaseCells: 4, LeaseTTL: time.Minute})
	v, err := c.Submit(testSpec(8, 1))
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("solver diverged")
	w := NewWorker(WorkerOptions{
		BaseURL:      srv.URL,
		Poll:         10 * time.Millisecond,
		ExitWhenDone: true,
		Runner: func(context.Context, sram.CellConfig, sram.Pattern, float64, uint64) (int, int, int, error) {
			return 0, 0, 0, boom
		},
	})
	runErr := w.Run(context.Background())
	if runErr == nil || !errors.Is(runErr, boom) {
		t.Fatalf("worker with failing runner returned %v, want the runner error", runErr)
	}

	jv, ok := c.Get(v.ID)
	if !ok {
		t.Fatalf("job %s vanished", v.ID)
	}
	if jv.State != jobd.StateFailed {
		t.Fatalf("job state %s after runner error, want failed", jv.State)
	}
	if !strings.Contains(jv.Error, "solver diverged") {
		t.Fatalf("job error %q does not carry the runner error", jv.Error)
	}
}

// TestWorkerDrainReleasesLease SIGTERM-drains a worker mid-lease: the
// in-flight cell finishes and checkpoints, the unfinished remainder
// returns to the pool immediately (release, not TTL steal), and Run
// returns nil.
func TestWorkerDrainReleasesLease(t *testing.T) {
	spec := testSpec(12, 1)
	c, srv := newFabric(t, t.TempDir(), Options{LeaseCells: 12, LeaseTTL: time.Minute})
	if _, err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}

	w := NewWorker(WorkerOptions{
		BaseURL:      srv.URL,
		Poll:         10 * time.Millisecond,
		ExitWhenDone: true,
	})
	var once sync.Once
	w.opts.OnCheckpoint = func(string, int) {
		once.Do(w.Drain)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained worker: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drained worker did not return")
	}

	st := c.Status()
	js := st.Jobs[0]
	if js.CellsDone == 0 {
		t.Fatal("drain lost the in-flight checkpoint")
	}
	if js.CellsDone >= spec.Cells {
		t.Skip("sweep finished before the drain landed; nothing to release")
	}
	if js.Leased != 0 || len(js.Leases) != 0 {
		t.Fatalf("drained worker left a lease outstanding: %+v", js)
	}
	if js.Pending != spec.Cells-js.CellsDone {
		t.Fatalf("pending %d after drain, want %d", js.Pending, spec.Cells-js.CellsDone)
	}
	if st.StealsTotal != 0 {
		t.Fatalf("graceful drain recorded a steal: %+v", st)
	}
}

package fabric

import (
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"samurai/internal/jobd"
)

// fakeClock drives lease expiry without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// newClockedCoordinator builds a coordinator on a fake clock over a
// fresh store, returning the store path for restart tests.
func newClockedCoordinator(t *testing.T, clk *fakeClock, opts Options) (*Coordinator, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.jsonl")
	store, jobs, seq, err := jobd.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//lint:ignore bareerr restart tests close the store explicitly first; the double close is benign
		store.Close()
	})
	opts.Now = clk.Now
	return New(store, jobs, seq, opts), path
}

// cellRec builds a synthetic checkpoint for protocol-level tests (no
// simulation involved).
func cellRec(i int, v float64) jobd.CellRecord {
	return jobd.CellRecord{
		Index:     i,
		VtShift:   map[string]float64{"M1": v, "M2": -v},
		TrapCount: i % 3,
	}
}

// mustLease acquires a fresh lease and fails the test on anything but
// a grant.
func mustLease(t *testing.T, c *Coordinator, worker string) LeaseResponse {
	t.Helper()
	resp, code, err := c.Lease(LeaseRequest{Worker: worker})
	if err != nil || code != http.StatusOK {
		t.Fatalf("lease: code %d, err %v", code, err)
	}
	if resp.Idle {
		t.Fatalf("expected a grant, got idle (done=%v)", resp.Done)
	}
	return resp
}

// TestLeaseRenewAfterExpiry: a renewal arriving after the TTL ran out
// gets 410 — the lease was stolen and the worker must re-acquire.
func TestLeaseRenewAfterExpiry(t *testing.T) {
	clk := newFakeClock()
	c, _ := newClockedCoordinator(t, clk, Options{LeaseCells: 4, LeaseTTL: 10 * time.Second})
	if _, err := c.Submit(testSpec(8, 1)); err != nil {
		t.Fatal(err)
	}

	grant := mustLease(t, c, "")
	if grant.Lo != 0 || grant.Hi != 4 {
		t.Fatalf("first lease [%d,%d), want [0,4)", grant.Lo, grant.Hi)
	}

	// In-TTL renewal works and extends the deadline.
	clk.Advance(8 * time.Second)
	if _, code, err := c.Lease(LeaseRequest{Worker: grant.Worker, Renew: grant.Lease}); err != nil || code != http.StatusOK {
		t.Fatalf("in-TTL renew: code %d, err %v", code, err)
	}
	clk.Advance(8 * time.Second)
	if _, code, err := c.Lease(LeaseRequest{Worker: grant.Worker, Renew: grant.Lease}); err != nil || code != http.StatusOK {
		t.Fatalf("renew after extension: code %d, err %v", code, err)
	}

	// Let it lapse: the renewal must be refused.
	clk.Advance(11 * time.Second)
	_, code, err := c.Lease(LeaseRequest{Worker: grant.Worker, Renew: grant.Lease})
	if code != http.StatusGone || err == nil {
		t.Fatalf("renew after expiry: code %d, err %v, want 410", code, err)
	}

	// The stolen range is immediately re-grantable, and the steal is on
	// the books.
	regrant := mustLease(t, c, "w-other")
	if regrant.Lo != 0 || regrant.Hi != 4 {
		t.Fatalf("re-grant [%d,%d), want the stolen [0,4)", regrant.Lo, regrant.Hi)
	}
	if st := c.Status(); st.StealsTotal != 1 || st.Jobs[0].Steals != 1 {
		t.Fatalf("steal not recorded: %+v", st)
	}
}

// TestCheckpointStolenLeaseFirstWins: a late checkpoint from the
// original holder of a stolen lease is accepted (first durable wins),
// and the thief's overlapping checkpoints become verified duplicates.
func TestCheckpointStolenLeaseFirstWins(t *testing.T) {
	clk := newFakeClock()
	c, _ := newClockedCoordinator(t, clk, Options{LeaseCells: 4, LeaseTTL: 10 * time.Second})
	if _, err := c.Submit(testSpec(4, 1)); err != nil {
		t.Fatal(err)
	}

	g1 := mustLease(t, c, "w-slow")
	clk.Advance(11 * time.Second)
	g2 := mustLease(t, c, "w-thief")
	if g2.Lo != g1.Lo || g2.Hi != g1.Hi {
		t.Fatalf("thief leased [%d,%d), want the stolen [%d,%d)", g2.Lo, g2.Hi, g1.Lo, g1.Hi)
	}

	// The slow worker's results land first — still valid, bit-wise the
	// same computation.
	resp, code, err := c.Checkpoint(CheckpointRequest{
		Worker: "w-slow", Job: g1.Job, Lease: g1.Lease,
		Cells: []jobd.CellRecord{cellRec(0, 0.25), cellRec(1, 0.5)},
	})
	if err != nil || code != http.StatusOK {
		t.Fatalf("stolen-lease checkpoint: code %d, err %v", code, err)
	}
	if resp.Accepted != 2 || resp.Duplicates != 0 {
		t.Fatalf("stolen-lease checkpoint: %+v", resp)
	}

	// The thief re-simulates the whole range; the overlap must come back
	// as bit-verified duplicates.
	resp, code, err = c.Checkpoint(CheckpointRequest{
		Worker: "w-thief", Job: g2.Job, Lease: g2.Lease,
		Cells: []jobd.CellRecord{cellRec(0, 0.25), cellRec(1, 0.5), cellRec(2, 0.75), cellRec(3, 1.0)},
	})
	if err != nil || code != http.StatusOK {
		t.Fatalf("thief checkpoint: code %d, err %v", code, err)
	}
	if resp.Accepted != 2 || resp.Duplicates != 2 {
		t.Fatalf("thief checkpoint: %+v", resp)
	}
	if resp.State != jobd.StateDone || resp.Done != 4 {
		t.Fatalf("job not completed by the thief: %+v", resp)
	}
}

// TestDuplicateCheckpointMismatchFailsLoudly: duplicate checkpoints
// whose float bits diverge are a determinism violation — 409 and the
// job fails, rather than silently merging poison.
func TestDuplicateCheckpointMismatchFailsLoudly(t *testing.T) {
	clk := newFakeClock()
	c, _ := newClockedCoordinator(t, clk, Options{LeaseCells: 4, LeaseTTL: 10 * time.Second})
	if _, err := c.Submit(testSpec(4, 1)); err != nil {
		t.Fatal(err)
	}
	g := mustLease(t, c, "w-a")

	if _, code, err := c.Checkpoint(CheckpointRequest{
		Worker: "w-a", Job: g.Job, Lease: g.Lease,
		Cells: []jobd.CellRecord{cellRec(0, 0.25)},
	}); err != nil || code != http.StatusOK {
		t.Fatalf("first checkpoint: code %d, err %v", code, err)
	}

	// Same cell, last float bit nudged: must be rejected loudly.
	bad := cellRec(0, 0.25)
	bad.VtShift["M1"] = 0.25000000000000006
	_, code, err := c.Checkpoint(CheckpointRequest{
		Worker: "w-b", Job: g.Job, Cells: []jobd.CellRecord{bad},
	})
	if code != http.StatusConflict || err == nil {
		t.Fatalf("mismatching duplicate: code %d, err %v, want 409", code, err)
	}
	if !strings.Contains(err.Error(), "determinism") {
		t.Fatalf("mismatch error does not name the violation: %v", err)
	}
	v, _ := c.Get(g.Job)
	if v.State != jobd.StateFailed {
		t.Fatalf("job state %s after determinism violation, want failed", v.State)
	}
}

// TestWorkerRegistrationReplayAfterRestart: a worker that outlives a
// coordinator restart keeps its identity — the new coordinator
// re-registers it transparently on first contact and its checkpoints
// replay from the WAL.
func TestWorkerRegistrationReplayAfterRestart(t *testing.T) {
	clk := newFakeClock()
	c, path := newClockedCoordinator(t, clk, Options{LeaseCells: 2, LeaseTTL: 10 * time.Second})
	if _, err := c.Submit(testSpec(4, 1)); err != nil {
		t.Fatal(err)
	}

	g := mustLease(t, c, "w-longlived")
	if g.Worker != "w-longlived" {
		t.Fatalf("presented id not honoured: %q", g.Worker)
	}
	if _, code, err := c.Checkpoint(CheckpointRequest{
		Worker: "w-longlived", Job: g.Job, Lease: g.Lease,
		Cells: []jobd.CellRecord{cellRec(0, 0.25), cellRec(1, 0.5)},
	}); err != nil || code != http.StatusOK {
		t.Fatalf("pre-restart checkpoint: code %d, err %v", code, err)
	}
	if err := c.store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, jobs2, seq2, err := jobd.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	c2 := New(store2, jobs2, seq2, Options{LeaseCells: 2, LeaseTTL: 10 * time.Second, Now: clk.Now})

	// The worker's next acquire re-registers it under the same id and
	// hands out only the unfinished half.
	g2 := mustLease(t, c2, "w-longlived")
	if g2.Worker != "w-longlived" {
		t.Fatalf("replayed registration changed the id: %q", g2.Worker)
	}
	if g2.Lo != 2 || g2.Hi != 4 {
		t.Fatalf("post-restart lease [%d,%d), want the unfinished [2,4)", g2.Lo, g2.Hi)
	}
	resp, code, err := c2.Checkpoint(CheckpointRequest{
		Worker: "w-longlived", Job: g2.Job, Lease: g2.Lease,
		Cells: []jobd.CellRecord{cellRec(2, 0.75), cellRec(3, 1.0)},
	})
	if err != nil || code != http.StatusOK {
		t.Fatalf("post-restart checkpoint: code %d, err %v", code, err)
	}
	if resp.State != jobd.StateDone {
		t.Fatalf("job not done after restart completion: %+v", resp)
	}
	st := c2.Status()
	if len(st.Workers) != 1 || st.Workers[0].ID != "w-longlived" || st.Workers[0].Cells != 2 {
		t.Fatalf("worker roster after restart: %+v", st.Workers)
	}
}

// TestLeaseReleaseReturnsCells: an explicit release (graceful worker
// drain) returns the unfinished cells without a steal.
func TestLeaseReleaseReturnsCells(t *testing.T) {
	clk := newFakeClock()
	c, _ := newClockedCoordinator(t, clk, Options{LeaseCells: 4, LeaseTTL: 10 * time.Second})
	if _, err := c.Submit(testSpec(4, 1)); err != nil {
		t.Fatal(err)
	}
	g := mustLease(t, c, "w-a")
	if _, code, err := c.Checkpoint(CheckpointRequest{
		Worker: "w-a", Job: g.Job, Lease: g.Lease,
		Cells: []jobd.CellRecord{cellRec(0, 0.25)},
	}); err != nil || code != http.StatusOK {
		t.Fatalf("checkpoint: code %d, err %v", code, err)
	}
	if _, code, err := c.Lease(LeaseRequest{Worker: "w-a", Release: g.Lease}); err != nil || code != http.StatusOK {
		t.Fatalf("release: code %d, err %v", code, err)
	}
	st := c.Status()
	if st.StealsTotal != 0 {
		t.Fatalf("release counted as a steal: %+v", st)
	}
	if st.Jobs[0].Pending != 3 || st.Jobs[0].Leased != 0 {
		t.Fatalf("released cells not back in the pool: %+v", st.Jobs[0])
	}
	// Releasing again is 410: the lease no longer exists.
	if _, code, _ := c.Lease(LeaseRequest{Worker: "w-a", Release: g.Lease}); code != http.StatusGone {
		t.Fatalf("double release: code %d, want 410", code)
	}
	// The cells are immediately re-grantable.
	g2 := mustLease(t, c, "w-b")
	if g2.Lo != 1 || g2.Hi != 4 {
		t.Fatalf("re-grant [%d,%d), want [1,4)", g2.Lo, g2.Hi)
	}
}

// TestReleaseWithErrorFailsJob: a release carrying a simulation error
// fails the job — deterministic failures reproduce on every worker, so
// re-leasing forever would be a silent infinite loop.
func TestReleaseWithErrorFailsJob(t *testing.T) {
	clk := newFakeClock()
	c, _ := newClockedCoordinator(t, clk, Options{LeaseCells: 4, LeaseTTL: 10 * time.Second})
	if _, err := c.Submit(testSpec(4, 1)); err != nil {
		t.Fatal(err)
	}
	g := mustLease(t, c, "w-a")
	if _, code, err := c.Lease(LeaseRequest{
		Worker: "w-a", Release: g.Lease, Error: "cell 2: solver diverged",
	}); err != nil || code != http.StatusOK {
		t.Fatalf("release with error: code %d, err %v", code, err)
	}
	v, _ := c.Get(g.Job)
	if v.State != jobd.StateFailed || !strings.Contains(v.Error, "solver diverged") {
		t.Fatalf("job after failing release: state %s, error %q", v.State, v.Error)
	}
}

// TestReleaseByNonHolderRefused: only the holder may release a lease.
// A stale or confused worker gets 410 and cannot free another worker's
// live range — or, worse, fail the whole job by attaching an Error to a
// lease it never held.
func TestReleaseByNonHolderRefused(t *testing.T) {
	clk := newFakeClock()
	c, _ := newClockedCoordinator(t, clk, Options{LeaseCells: 4, LeaseTTL: 10 * time.Second})
	if _, err := c.Submit(testSpec(4, 1)); err != nil {
		t.Fatal(err)
	}
	g := mustLease(t, c, "w-holder")

	_, code, err := c.Lease(LeaseRequest{Worker: "w-intruder", Release: g.Lease, Error: "not my lease"})
	if code != http.StatusGone || err == nil {
		t.Fatalf("foreign release: code %d, err %v, want 410", code, err)
	}

	// The lease is still live under its holder and the job unharmed.
	if _, code, err := c.Lease(LeaseRequest{Worker: "w-holder", Renew: g.Lease}); err != nil || code != http.StatusOK {
		t.Fatalf("holder renew after foreign release: code %d, err %v", code, err)
	}
	v, _ := c.Get(g.Job)
	if v.State != jobd.StateRunning || v.Error != "" {
		t.Fatalf("job after foreign release: state %s, error %q, want running", v.State, v.Error)
	}
	if st := c.Status(); st.Jobs[0].Leased != 4 {
		t.Fatalf("foreign release freed cells: %+v", st.Jobs[0])
	}

	// The rightful holder's release still works.
	if _, code, err := c.Lease(LeaseRequest{Worker: "w-holder", Release: g.Lease}); err != nil || code != http.StatusOK {
		t.Fatalf("holder release: code %d, err %v", code, err)
	}
}

// TestSubmitRejectsRunJobs: the fabric shards cell index spaces; run
// jobs have none and are refused up front.
func TestSubmitRejectsRunJobs(t *testing.T) {
	clk := newFakeClock()
	c, _ := newClockedCoordinator(t, clk, Options{})
	if _, err := c.Submit(jobd.Spec{Type: jobd.TypeRun, Seed: 1}); err == nil {
		t.Fatal("run-type submission accepted")
	}
}

// TestReplayedRunJobFailed: a non-terminal run-type job left in the WAL
// by a scheduler deployment is failed loudly on coordinator startup
// instead of hanging queued forever.
func TestReplayedRunJobFailed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	store, _, _, err := jobd.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j := &jobd.Job{ID: "job-000001", Seq: 1, Spec: jobd.Spec{Type: jobd.TypeRun, Seed: 7}, State: jobd.StateQueued}
	if err := store.AppendJob(j); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, jobs2, seq2, err := jobd.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	clk := newFakeClock()
	c := New(store2, jobs2, seq2, Options{Now: clk.Now})
	v, ok := c.Get("job-000001")
	if !ok || v.State != jobd.StateFailed {
		t.Fatalf("replayed run job: %+v", v)
	}
	// Leasing finds nothing and reports done (all terminal).
	resp, code, err := c.Lease(LeaseRequest{})
	if err != nil || code != http.StatusOK || !resp.Idle || !resp.Done {
		t.Fatalf("lease over terminal table: %+v code %d err %v", resp, code, err)
	}
}

// TestDrainStopsLeasingAcceptsCheckpoints: after Drain, no new leases
// go out but outstanding workers still flush their checkpoints.
func TestDrainStopsLeasingAcceptsCheckpoints(t *testing.T) {
	clk := newFakeClock()
	c, _ := newClockedCoordinator(t, clk, Options{LeaseCells: 2, LeaseTTL: 10 * time.Second})
	if _, err := c.Submit(testSpec(4, 1)); err != nil {
		t.Fatal(err)
	}
	g := mustLease(t, c, "w-a")
	c.Drain()

	resp, code, err := c.Lease(LeaseRequest{Worker: "w-b"})
	if err != nil || code != http.StatusOK || !resp.Idle || !resp.Done {
		t.Fatalf("lease while draining: %+v code %d err %v", resp, code, err)
	}
	if _, err := c.Submit(testSpec(4, 1)); err == nil {
		t.Fatal("submission accepted while draining")
	}
	cp, code, err := c.Checkpoint(CheckpointRequest{
		Worker: "w-a", Job: g.Job, Lease: g.Lease,
		Cells: []jobd.CellRecord{cellRec(0, 0.25), cellRec(1, 0.5)},
	})
	if err != nil || code != http.StatusOK || cp.Accepted != 2 {
		t.Fatalf("checkpoint while draining: %+v code %d err %v", cp, code, err)
	}
}

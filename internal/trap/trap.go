// Package trap models oxide traps — the physical origin of RTN — as
// described in §II of the SAMURAI paper.
//
// A trap is characterised by its depth y_tr into the oxide (measured
// from the oxide–semiconductor interface) and its energy level E_tr
// (expressed relative to the channel Fermi level at a reference bias).
// Its stochastic capture/emission behaviour under instantaneous gate
// bias V_gs(t) follows the paper's Eq (1) and Eq (2):
//
//	λ_c(t) + λ_e(t) = 1 / (τ₀ · e^(γ·y_tr))          (1)
//	β(t) = λ_e(t)/λ_c(t) = g · e^((E_T − E_F)|_t/kT)  (2)
//
// The sum of propensities is bias-independent (it depends only on the
// tunnelling distance y_tr), while the ratio β tracks the gate bias
// through the band bending across the oxide: a trap at depth y_tr sees
// a fraction y_tr/t_ox of the oxide voltage swing.
package trap

import (
	"fmt"
	"math"

	"samurai/internal/units"
)

// Trap is a single oxide trap.
type Trap struct {
	// Y is the depth into the oxide from the Si interface, in metres.
	Y float64
	// E is the trap energy level in eV relative to the channel Fermi
	// level at the reference bias VRef of the owning device context.
	E float64
	// InitFilled is the trap's initial state at simulation start.
	InitFilled bool
}

// Context carries the device- and environment-level parameters that,
// together with a Trap, determine the propensity functions.
type Context struct {
	// Tox is the oxide thickness in metres.
	Tox float64
	// Tau0 is the capture time constant for traps at the interface, s.
	Tau0 float64
	// Gamma is the tunnelling attenuation coefficient, 1/m.
	Gamma float64
	// G is the trap degeneracy factor g in Eq (2).
	G float64
	// TempK is the lattice temperature in kelvin.
	TempK float64
	// VRef is the gate bias at which E is referenced: at V_gs = VRef
	// the trap level sits exactly E (eV) away from the Fermi level.
	VRef float64
	// Coupling is the electrostatic coupling efficiency of the oxide
	// field to the trap level (dimensionless, ~1).
	Coupling float64
	// SurfaceFrac is the depth-independent fraction of the gate-bias
	// coupling: the part of (E_T − E_F) that tracks the surface
	// potential and channel Fermi level, which every trap sees
	// regardless of its depth. The remaining (1 − SurfaceFrac) scales
	// with y/t_ox (the oxide band bending). The effective level shift
	// is −Coupling·(SurfaceFrac + (1−SurfaceFrac)·y/t_ox)·(V_gs − VRef)
	// eV per volt.
	SurfaceFrac float64
	// ActivationEV is the thermal activation energy of the
	// capture/emission kinetics (Kirton & Uren observe RTN time
	// constants to be Arrhenius-activated with Ea ≈ 0.2–0.6 eV). The
	// rate sum becomes 1/(τ₀·e^(γ·y)) · e^(−Ea/kT) · e^(+Ea/kT₀) with
	// T₀ = 300 K, so the default (0) leaves room-temperature behaviour
	// unchanged while non-zero values speed all traps up with
	// temperature. Because the factor is bias-independent, Eq (1)'s
	// invariant — and therefore the exactness of uniformisation — is
	// preserved.
	ActivationEV float64
}

// DefaultContext returns a context with literature-typical values
// (Kirton & Uren; Dunga): τ₀ = 10⁻¹⁰ s, γ = 10¹⁰ m⁻¹ (1 Å⁻¹·10),
// g = 1, room temperature.
func DefaultContext(tox, vref float64) Context {
	return Context{
		Tox:         tox,
		Tau0:        1e-10,
		Gamma:       1e10,
		G:           1,
		TempK:       units.RoomTemperature,
		VRef:        vref,
		Coupling:    1,
		SurfaceFrac: 0.5,
	}
}

// Validate reports whether the context parameters are physical.
func (c Context) Validate() error {
	switch {
	case c.Tox <= 0:
		return fmt.Errorf("trap: non-positive oxide thickness %g", c.Tox)
	case c.Tau0 <= 0:
		return fmt.Errorf("trap: non-positive tau0 %g", c.Tau0)
	case c.Gamma < 0:
		return fmt.Errorf("trap: negative gamma %g", c.Gamma)
	case c.G <= 0:
		return fmt.Errorf("trap: non-positive degeneracy %g", c.G)
	case c.TempK <= 0:
		return fmt.Errorf("trap: non-positive temperature %g", c.TempK)
	}
	return nil
}

// RateSum returns λ_c + λ_e for the trap: Eq (1), with the optional
// Arrhenius temperature activation. It is independent of bias and time.
func (c Context) RateSum(tr Trap) float64 {
	base := 1 / (c.Tau0 * math.Exp(c.Gamma*tr.Y))
	if c.ActivationEV == 0 {
		return base
	}
	kt := units.ThermalEnergyEV(c.TempK)
	kt0 := units.ThermalEnergyEV(units.RoomTemperature)
	return base * math.Exp(-c.ActivationEV/kt+c.ActivationEV/kt0)
}

// LevelSplitEV returns (E_T − E_F) in eV at gate bias vgs: the trap's
// reference level shifted by the surface-potential/Fermi movement plus
// the depth-weighted oxide band bending.
func (c Context) LevelSplitEV(tr Trap, vgs float64) float64 {
	return tr.E - c.Coupling*c.EffectiveCoupling(tr)*(vgs-c.VRef)
}

// EffectiveCoupling returns the dimensionless bias-coupling factor of a
// trap: SurfaceFrac + (1−SurfaceFrac)·y/t_ox.
func (c Context) EffectiveCoupling(tr Trap) float64 {
	return c.SurfaceFrac + (1-c.SurfaceFrac)*tr.Y/c.Tox
}

// Beta returns β = λ_e/λ_c at gate bias vgs: Eq (2). The exponent is
// clamped to ±500 kT to avoid overflow; at that point the trap is
// pinned in one state anyway.
func (c Context) Beta(tr Trap, vgs float64) float64 {
	kt := units.ThermalEnergyEV(c.TempK)
	x := c.LevelSplitEV(tr, vgs) / kt
	x = units.Clamp(x, -500, 500)
	return c.G * math.Exp(x)
}

// Rates returns (λ_c, λ_e) at gate bias vgs, splitting the invariant
// sum of Eq (1) by the ratio of Eq (2).
func (c Context) Rates(tr Trap, vgs float64) (lc, le float64) {
	sum := c.RateSum(tr)
	beta := c.Beta(tr, vgs)
	lc = sum / (1 + beta)
	le = sum - lc
	return
}

// OccupancyProb returns the stationary probability that the trap is
// filled at constant gate bias vgs: λ_c/(λ_c+λ_e) = 1/(1+β).
func (c Context) OccupancyProb(tr Trap, vgs float64) float64 {
	return 1 / (1 + c.Beta(tr, vgs))
}

// Activity returns a dimensionless measure of how "active" the trap is
// at bias vgs: 4·p·(1−p) where p is the stationary fill probability.
// It is 1 when β = 1 (maximum switching) and → 0 when the trap is
// pinned filled or empty. The paper's observation that only 5–10 traps
// are active at a given bias corresponds to thresholding this value.
func (c Context) Activity(tr Trap, vgs float64) float64 {
	p := c.OccupancyProb(tr, vgs)
	return 4 * p * (1 - p)
}

// TimeConstants returns the mean capture and emission times
// (τ_c = 1/λ_c, τ_e = 1/λ_e) at the given bias.
func (c Context) TimeConstants(tr Trap, vgs float64) (tauC, tauE float64) {
	lc, le := c.Rates(tr, vgs)
	return 1 / lc, 1 / le
}

package trap

import (
	"math"
	"testing"
)

// TestCompiledRates pins CompiledTrap.Rates to Context.Rates at the
// bit level over a grid of traps and biases — the batch uniformisation
// kernel's correctness rests on this equivalence.
func TestCompiledRates(t *testing.T) {
	ctx := DefaultContext(1.9e-9, 1.2)
	for _, yFrac := range []float64{0.05, 0.3, 0.45, 0.8, 1.0} {
		for _, e := range []float64{-0.2, -0.03, 0, 0.03, 0.2} {
			tr := Trap{Y: yFrac * ctx.Tox, E: e}
			ct := ctx.Compile(tr)
			if math.Float64bits(ct.Sum) != math.Float64bits(ctx.RateSum(tr)) {
				t.Fatalf("y=%g e=%g: compiled Sum differs from RateSum", yFrac, e)
			}
			for v := -1.0; v <= 2.0; v += 0.03 {
				wantLC, wantLE := ctx.Rates(tr, v)
				gotLC, gotLE := ct.Rates(v)
				if math.Float64bits(gotLC) != math.Float64bits(wantLC) ||
					math.Float64bits(gotLE) != math.Float64bits(wantLE) {
					t.Fatalf("y=%g e=%g v=%g: compiled rates (%g,%g) != (%g,%g)",
						yFrac, e, v, gotLC, gotLE, wantLC, wantLE)
				}
			}
		}
	}
}

// TestCompiledRatesClampRegion checks the β exponent clamp survives
// compilation: extreme biases must still agree bitwise.
func TestCompiledRatesClampRegion(t *testing.T) {
	ctx := DefaultContext(1.9e-9, 0)
	tr := Trap{Y: 0.5 * ctx.Tox, E: 0}
	ct := ctx.Compile(tr)
	for _, v := range []float64{-1e4, -100, 100, 1e4} {
		wantLC, wantLE := ctx.Rates(tr, v)
		gotLC, gotLE := ct.Rates(v)
		if math.Float64bits(gotLC) != math.Float64bits(wantLC) ||
			math.Float64bits(gotLE) != math.Float64bits(wantLE) {
			t.Fatalf("v=%g: clamped compiled rates diverge", v)
		}
	}
}

package trap

import (
	"math"
	"testing"
	"testing/quick"

	"samurai/internal/rng"
	"samurai/internal/units"
)

func testCtx() Context { return DefaultContext(1.9e-9, 1.2) }

func TestContextValidate(t *testing.T) {
	good := testCtx()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Tox = 0
	if bad.Validate() == nil {
		t.Fatal("zero Tox accepted")
	}
	bad = good
	bad.Tau0 = -1
	if bad.Validate() == nil {
		t.Fatal("negative tau0 accepted")
	}
	bad = good
	bad.G = 0
	if bad.Validate() == nil {
		t.Fatal("zero degeneracy accepted")
	}
	bad = good
	bad.TempK = 0
	if bad.Validate() == nil {
		t.Fatal("zero temperature accepted")
	}
}

// Property: Eq (1) — λc + λe is independent of bias.
func TestRateSumBiasInvariantProperty(t *testing.T) {
	ctx := testCtx()
	f := func(yFracRaw, eRaw, v1Raw, v2Raw float64) bool {
		yFrac := math.Mod(math.Abs(yFracRaw), 1)
		e := math.Mod(eRaw, 0.3)
		v1 := math.Mod(v1Raw, 2)
		v2 := math.Mod(v2Raw, 2)
		if math.IsNaN(yFrac + e + v1 + v2) {
			return true
		}
		tr := Trap{Y: yFrac * ctx.Tox, E: e}
		lc1, le1 := ctx.Rates(tr, v1)
		lc2, le2 := ctx.Rates(tr, v2)
		sum := ctx.RateSum(tr)
		return math.Abs(lc1+le1-sum) < 1e-9*sum &&
			math.Abs(lc2+le2-sum) < 1e-9*sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRateSumDepthDependence(t *testing.T) {
	ctx := testCtx()
	shallow := Trap{Y: 0}
	deep := Trap{Y: ctx.Tox}
	ratio := ctx.RateSum(shallow) / ctx.RateSum(deep)
	want := math.Exp(ctx.Gamma * ctx.Tox)
	if math.Abs(ratio-want) > 1e-6*want {
		t.Fatalf("depth attenuation ratio = %g, want %g", ratio, want)
	}
	if ctx.RateSum(shallow) != 1/ctx.Tau0 {
		t.Fatalf("interface trap rate = %g, want 1/tau0", ctx.RateSum(shallow))
	}
}

func TestBetaEquation2(t *testing.T) {
	ctx := testCtx()
	tr := Trap{Y: 0.5 * ctx.Tox, E: 0.05}
	kt := units.ThermalEnergyEV(ctx.TempK)
	// At reference bias the split equals E.
	want := ctx.G * math.Exp(tr.E/kt)
	if got := ctx.Beta(tr, ctx.VRef); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("beta at VRef = %g, want %g", got, want)
	}
}

func TestBetaMonotoneInBias(t *testing.T) {
	ctx := testCtx()
	tr := Trap{Y: 0.5 * ctx.Tox, E: 0}
	// Raising the gate pulls the trap below the Fermi level: β falls
	// (trap more likely filled).
	prev := math.Inf(1)
	for v := 0.0; v <= 2.4; v += 0.2 {
		b := ctx.Beta(tr, v)
		if b >= prev {
			t.Fatalf("beta not strictly decreasing at v=%g", v)
		}
		prev = b
	}
}

func TestBetaClampNoOverflow(t *testing.T) {
	ctx := testCtx()
	tr := Trap{Y: ctx.Tox, E: 10}
	b := ctx.Beta(tr, -1000)
	if math.IsInf(b, 0) || math.IsNaN(b) {
		t.Fatalf("beta overflowed: %g", b)
	}
}

func TestOccupancyProbLimits(t *testing.T) {
	ctx := testCtx()
	deepBelow := Trap{Y: 0.5 * ctx.Tox, E: -0.5} // far below E_F → filled
	farAbove := Trap{Y: 0.5 * ctx.Tox, E: 0.5}   // far above → empty
	if p := ctx.OccupancyProb(deepBelow, ctx.VRef); p < 0.999 {
		t.Fatalf("deep trap occupancy = %g, want ≈1", p)
	}
	if p := ctx.OccupancyProb(farAbove, ctx.VRef); p > 0.001 {
		t.Fatalf("shallow trap occupancy = %g, want ≈0", p)
	}
}

func TestActivityPeaksAtBetaOne(t *testing.T) {
	ctx := testCtx()
	tr := Trap{Y: 0.5 * ctx.Tox, E: 0}
	// β=1 at VRef for E=0 → activity there must be maximal (=1).
	if a := ctx.Activity(tr, ctx.VRef); math.Abs(a-1) > 1e-9 {
		t.Fatalf("activity at beta=1 is %g, want 1", a)
	}
	if a := ctx.Activity(tr, ctx.VRef+1); a > 0.1 {
		t.Fatalf("activity off-peak = %g, want small", a)
	}
}

func TestTimeConstantsConsistent(t *testing.T) {
	ctx := testCtx()
	tr := Trap{Y: 0.4 * ctx.Tox, E: 0.03}
	tauC, tauE := ctx.TimeConstants(tr, 1.0)
	lc, le := ctx.Rates(tr, 1.0)
	if math.Abs(tauC*lc-1) > 1e-12 || math.Abs(tauE*le-1) > 1e-12 {
		t.Fatal("time constants not reciprocal of rates")
	}
}

func TestEffectiveCouplingRange(t *testing.T) {
	ctx := testCtx()
	c0 := ctx.EffectiveCoupling(Trap{Y: 0})
	c1 := ctx.EffectiveCoupling(Trap{Y: ctx.Tox})
	if math.Abs(c0-ctx.SurfaceFrac) > 1e-12 {
		t.Fatalf("interface coupling = %g, want %g", c0, ctx.SurfaceFrac)
	}
	if math.Abs(c1-1) > 1e-12 {
		t.Fatalf("gate-side coupling = %g, want 1", c1)
	}
}

func TestProfilerExpectedCount(t *testing.T) {
	p := DefaultProfiler()
	w, l, tox := 100e-9, 50e-9, 2e-9
	want := p.Density * w * l * tox
	if got := p.ExpectedCount(w, l, tox); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("expected count = %g, want %g", got, want)
	}
}

func TestProfilerSampleStatistics(t *testing.T) {
	ctx := testCtx()
	p := DefaultProfiler()
	r := rng.New(99)
	total := 0
	const devices = 400
	w, l := 200e-9, 100e-9
	for i := 0; i < devices; i++ {
		profile := p.Sample(w, l, ctx, r.Split(uint64(i)))
		total += len(profile.Traps)
		for _, tr := range profile.Traps {
			if tr.Y < 0 || tr.Y > ctx.Tox {
				t.Fatalf("trap depth out of range: %g", tr.Y)
			}
			if tr.E < p.EMinEV || tr.E > p.EMaxEV {
				t.Fatalf("trap energy out of range: %g", tr.E)
			}
		}
	}
	mean := float64(total) / devices
	want := p.ExpectedCount(w, l, ctx.Tox)
	if math.Abs(mean-want) > 0.1*want {
		t.Fatalf("sampled mean count %g, want ≈%g", mean, want)
	}
}

func TestProfilerSampleSorted(t *testing.T) {
	ctx := testCtx()
	profile := DefaultProfiler().SampleN(50, ctx, rng.New(5))
	for i := 1; i < len(profile.Traps); i++ {
		if profile.Traps[i].Y < profile.Traps[i-1].Y {
			t.Fatal("traps not sorted by depth")
		}
	}
}

func TestProfilerDeterministic(t *testing.T) {
	ctx := testCtx()
	a := DefaultProfiler().SampleN(20, ctx, rng.New(123))
	b := DefaultProfiler().SampleN(20, ctx, rng.New(123))
	for i := range a.Traps {
		if a.Traps[i] != b.Traps[i] {
			t.Fatal("equal seeds gave different profiles")
		}
	}
}

func TestActiveTrapsFiltering(t *testing.T) {
	ctx := testCtx()
	profile := Profile{
		Ctx: ctx,
		Traps: []Trap{
			{Y: 0.5 * ctx.Tox, E: 0},    // active at VRef
			{Y: 0.5 * ctx.Tox, E: 0.24}, // pinned empty
		},
	}
	active := profile.ActiveTraps(ctx.VRef, 0.01)
	if len(active) != 1 || active[0].E != 0 {
		t.Fatalf("active filter returned %v", active)
	}
}

func TestInitFilledMatchesStationary(t *testing.T) {
	// Sampled initial states must be distributed per the stationary
	// occupancy at VRef.
	ctx := testCtx()
	p := DefaultProfiler()
	p.EMinEV, p.EMaxEV = -0.001, 0.001 // pin β≈1 → p(filled)≈0.5
	r := rng.New(77)
	filled := 0
	const n = 2000
	profile := p.SampleN(n, ctx, r)
	for _, tr := range profile.Traps {
		if tr.InitFilled {
			filled++
		}
	}
	frac := float64(filled) / n
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("initial fill fraction = %g, want ≈0.5", frac)
	}
}

func TestArrheniusActivation(t *testing.T) {
	ctx := testCtx()
	ctx.ActivationEV = 0.3
	tr := Trap{Y: 0.5 * ctx.Tox}

	// At the 300 K reference, activation must not change the rates.
	ref := testCtx()
	if got, want := ctx.RateSum(tr), ref.RateSum(tr); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("activation changed room-temperature rate: %g vs %g", got, want)
	}
	// Hotter → faster, colder → slower, by the Arrhenius factor.
	hot := ctx
	hot.TempK = 400
	cold := ctx
	cold.TempK = 250
	if hot.RateSum(tr) <= ctx.RateSum(tr) {
		t.Fatal("rates must accelerate with temperature")
	}
	if cold.RateSum(tr) >= ctx.RateSum(tr) {
		t.Fatal("rates must slow when cold")
	}
	kt400 := units.ThermalEnergyEV(400)
	kt300 := units.ThermalEnergyEV(300)
	want := math.Exp(-0.3/kt400 + 0.3/kt300)
	if r := hot.RateSum(tr) / ctx.RateSum(tr); math.Abs(r-want) > 1e-9*want {
		t.Fatalf("Arrhenius ratio %g, want %g", r, want)
	}
	// Eq (1) invariance must survive activation: sum equal across bias.
	lc1, le1 := hot.Rates(tr, 0.3)
	lc2, le2 := hot.Rates(tr, 1.8)
	if math.Abs((lc1+le1)-(lc2+le2)) > 1e-9*(lc1+le1) {
		t.Fatal("activation broke the bias-invariant rate sum")
	}
}

package trap

import (
	"math"

	"samurai/internal/units"
)

// CompiledTrap caches every bias-independent subexpression of the
// propensity formulas (Eq 1 and Eq 2) for one trap under one context:
// the invariant rate sum λ* = λ_c+λ_e, the thermal energy kT, and the
// effective bias-coupling prefactor of the level split. Batch kernels
// that evaluate Rates once per candidate event compile the trap once
// and skip the two math.Exp calls hidden in Context.RateSum and the
// repeated coupling products — without changing a single bit of the
// result.
type CompiledTrap struct {
	// Sum is λ_c+λ_e (Eq 1), exactly Context.RateSum(tr).
	Sum float64
	// E is the trap's reference level, eV.
	E float64
	// VRef is the reference gate bias, V.
	VRef float64
	// G is the degeneracy factor of Eq (2).
	G float64
	// KT is the thermal energy in eV.
	KT float64
	// CC is Coupling·EffectiveCoupling(tr) — the eV-per-volt slope of
	// the level split, associated exactly as LevelSplitEV computes it.
	CC float64
}

// Compile precomputes the bias-independent parts of the trap's
// propensity functions. CompiledTrap.Rates(v) is bit-identical to
// Context.Rates(tr, v) for every bias v (pinned by TestCompiledRates).
func (c Context) Compile(tr Trap) CompiledTrap {
	return CompiledTrap{
		Sum:  c.RateSum(tr),
		E:    tr.E,
		VRef: c.VRef,
		G:    c.G,
		KT:   units.ThermalEnergyEV(c.TempK),
		CC:   c.Coupling * c.EffectiveCoupling(tr),
	}
}

// Rates returns (λ_c, λ_e) at gate bias vgs. The operation order
// reproduces Context.Rates exactly: the level split is
// E − CC·(vgs−VRef), divided by kT, clamped to ±500, exponentiated and
// scaled by G to give β, and the invariant sum is split by β.
//
// Tilted returns the trap's constants with the energy level shifted by
// dE (eV) — the importance-sampling tilt hook. Shifting E changes only
// how the invariant sum λ* splits into λ_c/λ_e (Eq 2): Sum is
// untouched, so the uniformisation majorant of the nominal process
// stays an exact majorant of the tilted one and the thinning
// likelihood ratio is computable candidate by candidate. Tilted(0)
// returns the receiver unchanged (E+0.0 == E to the bit), which is
// what makes the tilt-0 sampler bit-identical to the naive kernel.
func (ct CompiledTrap) Tilted(dE float64) CompiledTrap {
	ct.E += dE
	return ct
}

//lint:hot
func (ct CompiledTrap) Rates(vgs float64) (lc, le float64) {
	x := (ct.E - ct.CC*(vgs-ct.VRef)) / ct.KT
	x = units.Clamp(x, -500, 500)
	beta := ct.G * math.Exp(x)
	lc = ct.Sum / (1 + beta)
	le = ct.Sum - lc
	return
}

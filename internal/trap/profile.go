package trap

import (
	"fmt"
	"sort"

	"samurai/internal/rng"
)

// Profile is the trap population of one device plus the context needed
// to evaluate propensities.
type Profile struct {
	Ctx   Context
	Traps []Trap
}

// Profiler is the statistical trap profiling model (paper ref [6],
// Dunga). Trap count follows a Poisson law with mean proportional to
// the gate oxide volume; depths are uniform through the oxide (which
// yields log-uniform time constants and hence 1/f aggregation for
// large populations); energies are uniform over a band around the
// Fermi level.
type Profiler struct {
	// Density is the volumetric trap density in traps/m³.
	Density float64
	// EMinEV and EMaxEV bound the sampled trap energy band (eV,
	// relative to the Fermi level at VRef).
	EMinEV, EMaxEV float64
	// YMinFrac and YMaxFrac bound the sampled depth as fractions of
	// t_ox; defaults 0 and 1.
	YMinFrac, YMaxFrac float64
}

// DefaultProfiler returns the profiler used throughout the paper
// reproduction: 5·10²⁴ traps/m³ (≈5·10¹⁸ cm⁻³ — oxide trap densities
// reported for scaled high-k stacks), an energy band of ±0.25 eV.
func DefaultProfiler() Profiler {
	return Profiler{
		Density:  5e24,
		EMinEV:   -0.25,
		EMaxEV:   0.25,
		YMinFrac: 0,
		YMaxFrac: 1,
	}
}

// ExpectedCount returns the mean trap count for a device with gate area
// w×l and oxide thickness tox.
func (p Profiler) ExpectedCount(w, l, tox float64) float64 {
	return p.Density * w * l * tox
}

// Sample draws a trap population for a device of gate width w, length l
// and context ctx. The initial state of each trap is drawn from its
// stationary occupancy at the context's reference bias, so simulations
// start in statistical equilibrium.
func (p Profiler) Sample(w, l float64, ctx Context, r *rng.Stream) Profile {
	mean := p.ExpectedCount(w, l, ctx.Tox)
	n := r.Poisson(mean)
	return p.SampleN(n, ctx, r)
}

// SampleN draws exactly n traps (bypassing the Poisson count), which is
// useful for controlled experiments such as Fig 3's technology
// comparison.
func (p Profiler) SampleN(n int, ctx Context, r *rng.Stream) Profile {
	yLo, yHi := p.YMinFrac, p.YMaxFrac
	if yHi <= yLo {
		yLo, yHi = 0, 1
	}
	traps := make([]Trap, n)
	for i := range traps {
		tr := Trap{
			Y: ctx.Tox * r.Uniform(yLo, yHi),
			E: r.Uniform(p.EMinEV, p.EMaxEV),
		}
		tr.InitFilled = r.Float64() < ctx.OccupancyProb(tr, ctx.VRef)
		traps[i] = tr
	}
	// Sort by depth so trap indices are deterministic given the sample
	// and diagnostics read naturally (fast traps first).
	sort.Slice(traps, func(i, j int) bool { return traps[i].Y < traps[j].Y })
	return Profile{Ctx: ctx, Traps: traps}
}

// ActiveTraps returns the subset of the profile whose activity at bias
// vgs exceeds threshold (see Context.Activity). With threshold ≈ 1e-3
// this reproduces the paper's "5–10 active traps" observation for
// scaled devices.
func (pr Profile) ActiveTraps(vgs, threshold float64) []Trap {
	var out []Trap
	for _, tr := range pr.Traps {
		if pr.Ctx.Activity(tr, vgs) >= threshold {
			out = append(out, tr)
		}
	}
	return out
}

// String summarises the profile.
func (pr Profile) String() string {
	return fmt.Sprintf("trap.Profile{%d traps, tox=%.3g m}", len(pr.Traps), pr.Ctx.Tox)
}

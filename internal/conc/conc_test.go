package conc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestFirstFailZeroValue(t *testing.T) {
	var f FirstFail
	if f.Failed() {
		t.Fatal("zero value reports failed")
	}
	if f.Err() != nil {
		t.Fatal("zero value has an error")
	}
	if f.Index() != -1 {
		t.Fatalf("zero value index = %d, want -1", f.Index())
	}
}

func TestFirstFailLowestIndexWins(t *testing.T) {
	var f FirstFail
	e3 := errors.New("three")
	e1 := errors.New("one")
	f.Record(3, e3)
	f.Record(5, errors.New("five"))
	f.Record(1, e1)
	f.Record(2, errors.New("two"))
	if got := f.Err(); got != e1 {
		t.Fatalf("Err() = %v, want %v", got, e1)
	}
	if f.Index() != 1 {
		t.Fatalf("Index() = %d, want 1", f.Index())
	}
}

func TestFirstFailIgnoresNil(t *testing.T) {
	var f FirstFail
	f.Record(0, nil)
	if f.Failed() {
		t.Fatal("nil error recorded as failure")
	}
}

// Under concurrent recording the winner must still be the lowest index
// — the property that makes parallel error reporting deterministic.
func TestFirstFailConcurrentDeterminism(t *testing.T) {
	var f FirstFail
	var wg sync.WaitGroup
	const n = 64
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.Record(i, fmt.Errorf("worker %d", i))
		}(i)
	}
	wg.Wait()
	if f.Index() != 0 {
		t.Fatalf("Index() = %d, want 0", f.Index())
	}
	if got := f.Err().Error(); got != "worker 0" {
		t.Fatalf("Err() = %q, want %q", got, "worker 0")
	}
}

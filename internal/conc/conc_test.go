package conc

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFirstFailZeroValue(t *testing.T) {
	var f FirstFail
	if f.Failed() {
		t.Fatal("zero value reports failed")
	}
	if f.Err() != nil {
		t.Fatal("zero value has an error")
	}
	if f.Index() != -1 {
		t.Fatalf("zero value index = %d, want -1", f.Index())
	}
}

func TestFirstFailLowestIndexWins(t *testing.T) {
	var f FirstFail
	e3 := errors.New("three")
	e1 := errors.New("one")
	f.Record(3, e3)
	f.Record(5, errors.New("five"))
	f.Record(1, e1)
	f.Record(2, errors.New("two"))
	if got := f.Err(); got != e1 {
		t.Fatalf("Err() = %v, want %v", got, e1)
	}
	if f.Index() != 1 {
		t.Fatalf("Index() = %d, want 1", f.Index())
	}
}

func TestFirstFailIgnoresNil(t *testing.T) {
	var f FirstFail
	f.Record(0, nil)
	if f.Failed() {
		t.Fatal("nil error recorded as failure")
	}
}

// TestFirstFailPanicPropagates pins the pool's panic contract: a worker
// panic must crash the process (propagate) rather than be swallowed or
// leave siblings deadlocked in wg.Wait. The panicking scenario runs in
// a subprocess — a goroutine panic is fatal by design — and the parent
// asserts it dies with the panic message within a bound, so a deadlock
// shows up as a timeout failure, not a hung CI job.
func TestFirstFailPanicPropagates(t *testing.T) {
	if os.Getenv("CONC_TEST_PANIC_WORKER") == "1" {
		// Child: the exact fan-out shape samurai.Run and RunArray use.
		var agg FirstFail
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if i == 5 {
					panic("conc test: worker 5 exploded")
				}
				agg.Record(i, fmt.Errorf("worker %d", i))
			}(i)
		}
		wg.Wait()
		fmt.Println("UNREACHABLE: pool survived a worker panic")
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0], "-test.run=^TestFirstFailPanicPropagates$", "-test.v")
	cmd.Env = append(os.Environ(), "CONC_TEST_PANIC_WORKER=1")
	out, err := cmd.CombinedOutput()
	if ctx.Err() != nil {
		t.Fatalf("panicking pool deadlocked (subprocess killed after timeout); output:\n%s", out)
	}
	if err == nil {
		t.Fatalf("worker panic did not propagate: subprocess exited 0; output:\n%s", out)
	}
	if !strings.Contains(string(out), "conc test: worker 5 exploded") {
		t.Fatalf("subprocess died without the worker's panic message; output:\n%s", out)
	}
	if strings.Contains(string(out), "UNREACHABLE") {
		t.Fatalf("pool swallowed the panic and kept going; output:\n%s", out)
	}
}

// TestFirstFailRecordDuringPanicUnwind: aggregation must stay usable
// when Record runs from a deferred call during a panic unwind — the
// mutex is released on every path, so a recovered panic cannot wedge
// later Failed/Err calls.
func TestFirstFailRecordDuringPanicUnwind(t *testing.T) {
	var agg FirstFail
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				agg.Record(2, fmt.Errorf("recovered: %v", r))
			}
		}()
		agg.Record(7, errors.New("pre-panic record"))
		panic("conc test: unwind")
	}()
	wg.Wait()
	if !agg.Failed() {
		t.Fatal("no failure recorded across the unwind")
	}
	if agg.Index() != 2 {
		t.Fatalf("Index() = %d, want 2 (deferred record should win over index 7)", agg.Index())
	}
	if got := agg.Err().Error(); !strings.Contains(got, "recovered") {
		t.Fatalf("Err() = %q, want the deferred recovery error", got)
	}
}

// Under concurrent recording the winner must still be the lowest index
// — the property that makes parallel error reporting deterministic.
func TestFirstFailConcurrentDeterminism(t *testing.T) {
	var f FirstFail
	var wg sync.WaitGroup
	const n = 64
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.Record(i, fmt.Errorf("worker %d", i))
		}(i)
	}
	wg.Wait()
	if f.Index() != 0 {
		t.Fatalf("Index() = %d, want 0", f.Index())
	}
	if got := f.Err().Error(); got != "worker 0" {
		t.Fatalf("Err() = %q, want %q", got, "worker 0")
	}
}

// Package conc provides small concurrency helpers for the parallel
// fan-outs (samurai.Run's per-transistor workers, montecarlo.RunArray's
// cell workers). The helpers exist to keep parallel execution exactly
// as reproducible as sequential execution: result writes stay
// index-disjoint in the callers, and error aggregation here is
// mutex-guarded and scheduling-independent.
package conc

import "sync"

// FirstFail aggregates errors from indexed parallel workers under a
// mutex. The failure with the lowest worker index wins, so the error a
// run eventually reports does not depend on goroutine scheduling. The
// zero value is ready to use.
type FirstFail struct {
	mu  sync.Mutex
	idx int
	err error
	set bool
}

// Record stores err for worker index i unless a lower-indexed failure
// is already recorded. A nil err is ignored.
func (f *FirstFail) Record(i int, err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.set || i < f.idx {
		f.idx, f.err, f.set = i, err, true
	}
}

// Failed reports whether any failure has been recorded; workers use it
// to skip doomed work once a sibling has failed.
func (f *FirstFail) Failed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set
}

// Err returns the recorded lowest-index error, or nil. Callers must
// synchronise with worker completion (WaitGroup.Wait) before treating
// the result as final.
func (f *FirstFail) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Index returns the worker index of the recorded failure, -1 if none.
func (f *FirstFail) Index() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.set {
		return -1
	}
	return f.idx
}

package device

import (
	"math"
	"testing"
	"testing/quick"

	"samurai/internal/units"
)

func TestNodesEnumeration(t *testing.T) {
	names := Nodes()
	if len(names) != 5 {
		t.Fatalf("expected 5 nodes, got %d", len(names))
	}
	prevL := math.Inf(1)
	prevVdd := math.Inf(1)
	prevDensity := 0.0
	for _, n := range names {
		tech := Node(n)
		if tech.Lmin >= prevL {
			t.Fatalf("nodes not in descending feature size at %s", n)
		}
		if tech.Vdd >= prevVdd {
			t.Fatalf("Vdd must scale down at %s", n)
		}
		if tech.TrapDensity <= prevDensity {
			t.Fatalf("trap density must grow with scaling at %s", n)
		}
		prevL, prevVdd, prevDensity = tech.Lmin, tech.Vdd, tech.TrapDensity
	}
}

func TestNodeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown node did not panic")
		}
	}()
	Node("7nm")
}

func testDev() MOSParams {
	return NewMOS(Node("90nm"), NMOS, 180e-9, 90e-9)
}

func TestValidate(t *testing.T) {
	if err := testDev().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testDev()
	bad.W = 0
	if bad.Validate() == nil {
		t.Fatal("zero width accepted")
	}
	bad = testDev()
	bad.SlopeN = 0.5
	if bad.Validate() == nil {
		t.Fatal("sub-unity slope factor accepted")
	}
}

func TestCutoffCurrentTiny(t *testing.T) {
	d := testDev()
	op := d.Eval(0, 1.0)
	// Subthreshold at vgs=0 with Vt≈0.32: current must be far below
	// the on-current.
	on := d.Eval(1.2, 1.0)
	if op.Ids > 1e-6*on.Ids {
		t.Fatalf("off current %g vs on %g", op.Ids, on.Ids)
	}
}

func TestSquareLawSaturation(t *testing.T) {
	d := testDev()
	d.Lambda = 0 // pure square law for the check
	vgs := 1.0
	op := d.Eval(vgs, 2.0)
	if !op.Saturated {
		t.Fatal("expected saturation")
	}
	want := 0.5 * d.KP() * op.VovEff * op.VovEff
	if math.Abs(op.Ids-want) > 1e-9*want {
		t.Fatalf("sat current %g, want %g", op.Ids, want)
	}
}

func TestTriodeSaturationContinuity(t *testing.T) {
	d := testDev()
	vgs := 1.0
	vov := d.Eval(vgs, 0).VovEff
	below := d.Eval(vgs, vov*(1-1e-9))
	above := d.Eval(vgs, vov*(1+1e-9))
	if math.Abs(below.Ids-above.Ids) > 1e-6*above.Ids {
		t.Fatalf("current discontinuous at pinch-off: %g vs %g", below.Ids, above.Ids)
	}
	if math.Abs(below.Gds-above.Gds) > 1e-3*math.Abs(above.Gds)+1e-12 {
		t.Fatalf("gds discontinuous at pinch-off: %g vs %g", below.Gds, above.Gds)
	}
}

// Property: source-drain symmetry I(vgs, vds) = −I(vgs−vds, −vds).
func TestSourceDrainSymmetryProperty(t *testing.T) {
	d := testDev()
	f := func(vgsRaw, vdsRaw float64) bool {
		vgs := math.Mod(vgsRaw, 1.5)
		vds := math.Mod(vdsRaw, 1.5)
		if math.IsNaN(vgs + vds) {
			return true
		}
		a := d.Eval(vgs, vds).Ids
		b := -d.Eval(vgs-vds, -vds).Ids
		return math.Abs(a-b) <= 1e-12+1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the analytic Gm/Gds match finite differences.
func TestDerivativesMatchFiniteDifferenceProperty(t *testing.T) {
	d := testDev()
	f := func(vgsRaw, vdsRaw float64) bool {
		vgs := math.Mod(math.Abs(vgsRaw), 1.3)
		vds := math.Mod(vdsRaw, 1.3)
		if math.IsNaN(vgs + vds) {
			return true
		}
		const h = 1e-7
		op := d.Eval(vgs, vds)
		gmFD := (d.Eval(vgs+h, vds).Ids - d.Eval(vgs-h, vds).Ids) / (2 * h)
		gdsFD := (d.Eval(vgs, vds+h).Ids - d.Eval(vgs, vds-h).Ids) / (2 * h)
		scale := math.Abs(op.Ids)/0.05 + 1e-9
		okGm := math.Abs(op.Gm-gmFD) < 1e-4*scale+1e-4*math.Abs(gmFD)
		okGds := math.Abs(op.Gds-gdsFD) < 1e-4*scale+1e-3*math.Abs(gdsFD)
		return okGm && okGds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPMOSMirror(t *testing.T) {
	tech := Node("90nm")
	n := NewMOS(tech, NMOS, 180e-9, 90e-9)
	p := NewMOS(tech, PMOS, 180e-9, 90e-9)
	p.Vt = n.Vt
	p.Mu = n.Mu // equalise for the mirror check
	a := n.Eval(1.0, 0.5).Ids
	b := p.Eval(-1.0, -0.5).Ids
	if math.Abs(a+b) > 1e-12*math.Abs(a) {
		t.Fatalf("PMOS mirror broken: %g vs %g", a, b)
	}
	// A conducting PMOS carries negative Ids.
	if p.Eval(-1.0, -0.5).Ids >= 0 {
		t.Fatal("conducting PMOS should have negative Ids")
	}
}

func TestCarrierDensityBehaviour(t *testing.T) {
	d := testDev()
	nOn := d.CarrierDensity(1.2)
	nOff := d.CarrierDensity(0)
	if nOn <= nOff {
		t.Fatal("carrier density must grow with gate bias")
	}
	// Strong inversion: N ≈ Cox(Vgs−Vt)/q.
	want := d.CoxArea * (1.2 - d.Vt) / units.ElectronCharge
	if math.Abs(nOn-want) > 0.05*want {
		t.Fatalf("N = %g, want ≈%g", nOn, want)
	}
	// Floor keeps it positive when the channel is off.
	if nOff <= 0 {
		t.Fatal("carrier density must stay positive")
	}
}

func TestCarrierCountScalesWithArea(t *testing.T) {
	tech := Node("90nm")
	small := NewMOS(tech, NMOS, 90e-9, 90e-9)
	big := NewMOS(tech, NMOS, 900e-9, 90e-9)
	r := big.CarrierCount(1.0) / small.CarrierCount(1.0)
	if math.Abs(r-10) > 1e-9 {
		t.Fatalf("carrier count ratio = %g, want 10", r)
	}
}

func TestThermalNoiseProportionalToGm(t *testing.T) {
	d := testDev()
	op := d.Eval(1.2, 1.2)
	want := 8.0 / 3.0 * units.BoltzmannJPerK * d.TempK * op.Gm
	if got := d.ThermalNoisePSD(1.2, 1.2); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("thermal PSD = %g, want %g", got, want)
	}
}

func TestGateCap(t *testing.T) {
	d := testDev()
	want := d.CoxArea * d.W * d.L
	if d.GateCap() != want {
		t.Fatal("gate cap wrong")
	}
}

func TestTrapContextUsesTechTox(t *testing.T) {
	tech := Node("45nm")
	ctx := tech.TrapContext(1.0)
	if ctx.Tox != tech.Tox || ctx.VRef != 1.0 {
		t.Fatal("TrapContext mis-wired")
	}
	if tech.TrapProfiler().Density != tech.TrapDensity {
		t.Fatal("TrapProfiler mis-wired")
	}
}

// Package device provides MOSFET compact models and technology
// descriptors for the SAMURAI reproduction.
//
// The paper runs BSIM-4 in SpiceOPUS; we substitute a SPICE level-1
// (square-law) model with channel-length modulation, a smooth
// subthreshold tail and linear gate capacitances. SAMURAI itself only
// consumes bias waveforms — V_gs(t) and I_d(t) — so the substitution
// preserves every behaviour the experiments depend on (see DESIGN.md).
package device

import (
	"fmt"

	"samurai/internal/trap"
	"samurai/internal/units"
)

// Technology describes a CMOS node: nominal geometry, supply, threshold
// and oxide parameters, plus trap statistics. The numbers are
// representative textbook values per node; the experiments only rely on
// their relative scaling.
type Technology struct {
	Name string
	// Lmin is the minimum drawn channel length, m.
	Lmin float64
	// WminSRAM is the nominal SRAM pull-down width, m.
	WminSRAM float64
	// Tox is the (equivalent) gate oxide thickness, m.
	Tox float64
	// Vdd is the nominal supply voltage, V.
	Vdd float64
	// Vtn and Vtp are nominal NMOS/PMOS threshold magnitudes, V.
	Vtn, Vtp float64
	// MuN and MuP are effective channel mobilities, m²/(V·s).
	MuN, MuP float64
	// CoxArea is the oxide capacitance per unit area, F/m².
	CoxArea float64
	// TrapDensity is the oxide trap volumetric density, traps/m³.
	TrapDensity float64
	// SigmaVt is the local threshold-voltage variation (1σ) for a
	// minimum device, V — used by the Monte-Carlo array experiments.
	SigmaVt float64
}

// epsOx is the permittivity of SiO2, F/m.
const epsOx = units.SiO2Permittivity

func coxFor(tox float64) float64 { return epsOx / tox }

// Node returns the descriptor for one of the built-in technology nodes:
// "130nm", "90nm", "65nm", "45nm", "32nm". It panics on unknown names
// (the set is a closed enumeration used by the experiments); callers
// handling untrusted input should use NodeOK.
func Node(name string) Technology {
	t, ok := NodeOK(name)
	if !ok {
		panic(fmt.Sprintf("device: unknown technology node %q", name))
	}
	return t
}

// NodeOK is the non-panicking lookup for untrusted node names.
func NodeOK(name string) (Technology, bool) {
	t, ok := nodes[name]
	return t, ok
}

// Nodes returns the built-in node names in descending feature size.
func Nodes() []string {
	return []string{"130nm", "90nm", "65nm", "45nm", "32nm"}
}

var nodes = map[string]Technology{
	"130nm": makeNode("130nm", 130*units.Nano, 2.2*units.Nano, 1.30, 0.34, 0.36, 430e-4, 6.5e23, 18*units.Milli),
	"90nm":  makeNode("90nm", 90*units.Nano, 1.9*units.Nano, 1.20, 0.32, 0.34, 400e-4, 1.3e24, 24*units.Milli),
	"65nm":  makeNode("65nm", 65*units.Nano, 1.7*units.Nano, 1.10, 0.31, 0.33, 380e-4, 2.4e24, 30*units.Milli),
	"45nm":  makeNode("45nm", 45*units.Nano, 1.4*units.Nano, 1.00, 0.30, 0.32, 350e-4, 4.0e24, 38*units.Milli),
	"32nm":  makeNode("32nm", 32*units.Nano, 1.2*units.Nano, 0.90, 0.29, 0.31, 320e-4, 6.5e24, 46*units.Milli),
}

func makeNode(name string, lmin, tox, vdd, vtn, vtp, mun, trapDensity, sigmaVt float64) Technology {
	return Technology{
		Name:        name,
		Lmin:        lmin,
		WminSRAM:    2 * lmin,
		Tox:         tox,
		Vdd:         vdd,
		Vtn:         vtn,
		Vtp:         vtp,
		MuN:         mun,
		MuP:         mun * 0.45,
		CoxArea:     coxFor(tox),
		TrapDensity: trapDensity,
		SigmaVt:     sigmaVt,
	}
}

// TrapContext returns a trap.Context configured for this technology
// with the given reference gate bias.
func (t Technology) TrapContext(vref float64) trap.Context {
	return trap.DefaultContext(t.Tox, vref)
}

// TrapProfiler returns the statistical profiler tuned to this
// technology's trap density.
func (t Technology) TrapProfiler() trap.Profiler {
	p := trap.DefaultProfiler()
	p.Density = t.TrapDensity
	return p
}

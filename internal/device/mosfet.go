package device

import (
	"fmt"
	"math"

	"samurai/internal/units"
)

// MOSType distinguishes NMOS from PMOS devices.
type MOSType int

const (
	// NMOS is an n-channel device (positive Vt, source at the lower
	// potential).
	NMOS MOSType = iota
	// PMOS is a p-channel device; the model mirrors the NMOS equations.
	PMOS
)

// String names the device type.
func (t MOSType) String() string {
	if t == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// MOSParams is a level-1 (square-law) MOSFET parameter set with a
// smooth subthreshold tail. Source and bulk are tied (3-terminal
// model), which is exact for the 6T SRAM cell topologies simulated
// here.
type MOSParams struct {
	Type MOSType
	// W and L are the drawn channel width and length, m.
	W, L float64
	// Vt is the threshold voltage magnitude, V (positive for both
	// types; the sign convention is handled by the model).
	Vt float64
	// Mu is the effective mobility, m²/(V·s).
	Mu float64
	// CoxArea is the oxide capacitance per area, F/m².
	CoxArea float64
	// Lambda is the channel-length modulation coefficient, 1/V.
	Lambda float64
	// SlopeN is the subthreshold slope ideality factor (~1.3–1.7).
	SlopeN float64
	// TempK is the device temperature, K.
	TempK float64
}

// NewMOS builds a parameter set for the given technology, type and
// geometry with default second-order coefficients.
func NewMOS(t Technology, typ MOSType, w, l float64) MOSParams {
	vt := t.Vtn
	mu := t.MuN
	if typ == PMOS {
		vt = t.Vtp
		mu = t.MuP
	}
	return MOSParams{
		Type:    typ,
		W:       w,
		L:       l,
		Vt:      vt,
		Mu:      mu,
		CoxArea: t.CoxArea,
		Lambda:  0.15,
		SlopeN:  1.5,
		TempK:   units.RoomTemperature,
	}
}

// Validate checks the parameter set for physical plausibility.
func (p MOSParams) Validate() error {
	switch {
	case p.W <= 0 || p.L <= 0:
		return fmt.Errorf("device: non-positive geometry W=%g L=%g", p.W, p.L)
	case p.Mu <= 0:
		return fmt.Errorf("device: non-positive mobility %g", p.Mu)
	case p.CoxArea <= 0:
		return fmt.Errorf("device: non-positive Cox %g", p.CoxArea)
	case p.SlopeN < 1:
		return fmt.Errorf("device: subthreshold slope factor %g < 1", p.SlopeN)
	case p.TempK <= 0:
		return fmt.Errorf("device: non-positive temperature %g", p.TempK)
	}
	return nil
}

// KP returns the transconductance parameter µ·Cox·W/L, A/V².
func (p MOSParams) KP() float64 {
	return p.Mu * p.CoxArea * p.W / p.L
}

// softplus returns s·ln(1+exp(x/s)) and its derivative (the logistic
// sigmoid). It provides the smooth overdrive used for the subthreshold
// transition; for x ≫ s it converges to x, for x ≪ −s it decays
// exponentially with the subthreshold slope.
func softplus(x, s float64) (val, deriv float64) {
	z := x / s
	switch {
	case z > 40:
		return x, 1
	case z < -40:
		e := math.Exp(z)
		return s * e, e
	}
	e := math.Exp(z)
	return s * math.Log1p(e), e / (1 + e)
}

// OpPoint is the DC evaluation of the device at a bias point.
type OpPoint struct {
	// Ids is the conventional current entering the drain terminal and
	// leaving the source terminal, A. A conducting NMOS has Ids > 0
	// when Vds > 0; a conducting PMOS (Vds < 0) has Ids < 0.
	Ids float64
	// Gm is ∂Ids/∂Vgs and Gds is ∂Ids/∂Vds, both in siemens.
	Gm, Gds float64
	// VovEff is the smoothed gate overdrive in the frame the core
	// model evaluated (always positive), V. Used by CarrierDensity.
	VovEff float64
	// Saturated reports whether the device operated beyond pinch-off.
	Saturated bool
}

// core evaluates the positive-frame NMOS equations for vds >= 0.
// Returns current, ∂/∂vgs, ∂/∂vds, smoothed overdrive and saturation.
func (p MOSParams) core(vgs, vds float64) (ids, fg, fd, vov float64, sat bool) {
	vth := units.ThermalVoltage(p.TempK)
	s := p.SlopeN * vth
	vov, dvov := softplus(vgs-p.Vt, s)
	k := p.KP()
	clm := 1 + p.Lambda*vds
	if vds < vov {
		// Triode. I = k·(vov·vds − vds²/2)·(1+λ·vds)
		core := vov*vds - 0.5*vds*vds
		ids = k * core * clm
		fg = k * vds * clm * dvov
		fd = k*(vov-vds)*clm + k*core*p.Lambda
		return ids, fg, fd, vov, false
	}
	// Saturation. I = (k/2)·vov²·(1+λ·vds)
	core := 0.5 * vov * vov
	ids = k * core * clm
	fg = k * vov * clm * dvov
	fd = k * core * p.Lambda
	return ids, fg, fd, vov, true
}

// evalN evaluates the NMOS equations for any vds sign, using the
// source/drain symmetry I(vgs, vds) = −I(vgs−vds, −vds).
func (p MOSParams) evalN(vgs, vds float64) (ids, gm, gds, vov float64, sat bool) {
	if vds >= 0 {
		return p.core(vgs, vds)
	}
	// Mirrored frame: I = −f(vgs−vds, −vds).
	// ∂I/∂vgs = −f_g
	// ∂I/∂vds = −(f_g·∂(vgs−vds)/∂vds + f_d·∂(−vds)/∂vds) = f_g + f_d
	f, fg, fd, vov, sat := p.core(vgs-vds, -vds)
	return -f, -fg, fg + fd, vov, sat
}

// Eval computes the channel current and small-signal conductances at
// gate-source voltage vgs and drain-source voltage vds.
func (p MOSParams) Eval(vgs, vds float64) OpPoint {
	if p.Type == NMOS {
		ids, gm, gds, vov, sat := p.evalN(vgs, vds)
		return OpPoint{Ids: ids, Gm: gm, Gds: gds, VovEff: vov, Saturated: sat}
	}
	// PMOS: I(vgs, vds) = −I_N(−vgs, −vds).
	// ∂I/∂vgs = −(−1)·f_g = f_g ; ∂I/∂vds = f_d.
	ids, gm, gds, vov, sat := p.evalN(-vgs, -vds)
	return OpPoint{Ids: -ids, Gm: gm, Gds: gds, VovEff: vov, Saturated: sat}
}

// CarrierDensity returns the inversion-layer carrier number density N
// (carriers per m²) at gate overdrive conditions implied by vgs, using
// the charge-sheet approximation N = Cox·Vov_eff/q. The smoothed
// overdrive keeps N positive (exponentially small in subthreshold), so
// Eq (3) divides by a well-defined quantity at every bias.
func (p MOSParams) CarrierDensity(vgs float64) float64 {
	vth := units.ThermalVoltage(p.TempK)
	s := p.SlopeN * vth
	v := vgs
	if p.Type == PMOS {
		v = -vgs
	}
	vov, _ := softplus(v-p.Vt, s)
	// Floor the overdrive at one thermal voltage worth of charge so
	// the Eq (3) amplitude stays finite when the channel is off.
	if vov < vth {
		vov = vth
	}
	return p.CoxArea * vov / units.ElectronCharge
}

// CarrierCount returns W·L·N, the total inversion-layer carrier count
// entering Eq (3)'s denominator.
func (p MOSParams) CarrierCount(vgs float64) float64 {
	return p.W * p.L * p.CarrierDensity(vgs)
}

// GateCap returns the total intrinsic gate capacitance Cox·W·L, F.
func (p MOSParams) GateCap() float64 {
	return p.CoxArea * p.W * p.L
}

// ThermalNoisePSD returns the (one-sided) channel thermal-noise current
// spectral density S = (8/3)·k·T·g_m used by the paper's Fig 7 plots,
// in A²/Hz, at the given bias.
func (p MOSParams) ThermalNoisePSD(vgs, vds float64) float64 {
	op := p.Eval(vgs, vds)
	gm := math.Abs(op.Gm)
	return 8.0 / 3.0 * units.BoltzmannJPerK * p.TempK * gm
}

package pll

import (
	"math"
	"testing"

	"samurai/internal/markov"
)

// alwaysFilled returns a path pinned in the filled state over [0, t1].
func alwaysFilled(t1 float64) *markov.Path {
	return markov.NewPath(0, t1, true)
}

func TestNoSlipInsideLockRange(t *testing.T) {
	// Δω = 0.8·K: the loop must settle to θ = arcsin(Δω/K), no slips.
	k := 1e6
	df := 0.8 * k / (2 * math.Pi)
	res, err := Simulate(Config{K: k, DeltaF: df}, alwaysFilled(200/k))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slips != 0 {
		t.Fatalf("slipped %d times inside the lock range", res.Slips)
	}
	want := math.Asin(0.8)
	if math.Abs(res.MaxAbsTheta-want) > 0.05 {
		t.Fatalf("settled phase error %g, want ≈%g", res.MaxAbsTheta, want)
	}
}

func TestSlipRateMatchesAnalyticalBeat(t *testing.T) {
	// Δω = 2·K: slips at rate √(Δω²−K²)/2π. Simulate long enough for
	// ~100 slips and compare.
	k := 1e6
	dOmega := 2 * k
	df := dOmega / (2 * math.Pi)
	rate := SlipRate(k, dOmega)
	horizon := 100 / rate
	res, err := Simulate(Config{K: k, DeltaF: df}, alwaysFilled(horizon))
	if err != nil {
		t.Fatal(err)
	}
	want := rate * horizon
	if math.Abs(float64(res.Slips)-want) > 0.05*want+2 {
		t.Fatalf("slips = %d, analytical %g", res.Slips, want)
	}
	if math.Abs(res.PredictedSlips-want) > 1e-6*want {
		t.Fatalf("PredictedSlips = %g, want %g", res.PredictedSlips, want)
	}
}

func TestSlipsOnlyWhileTrapFilled(t *testing.T) {
	// The trap fills during [t1/4, t3/4]; slips must match the
	// analytical count for that window only.
	k := 1e6
	dOmega := 3 * k
	df := dOmega / (2 * math.Pi)
	rate := SlipRate(k, dOmega)
	total := 60 / rate
	p := markov.NewPath(0, total, false)
	p.Transition(total / 4)
	p.Transition(3 * total / 4)
	res, err := Simulate(Config{K: k, DeltaF: df}, p)
	if err != nil {
		t.Fatal(err)
	}
	want := rate * total / 2
	if math.Abs(float64(res.Slips)-want) > 0.1*want+2 {
		t.Fatalf("slips = %d, want ≈%g over the filled half", res.Slips, want)
	}
}

func TestSlipRateFormula(t *testing.T) {
	if SlipRate(10, 5) != 0 || SlipRate(10, 10) != 0 {
		t.Fatal("inside/at lock range must be slip-free")
	}
	got := SlipRate(3, 5)
	want := 4.0 / (2 * math.Pi)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SlipRate = %g, want %g", got, want)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Simulate(Config{K: 0}, alwaysFilled(1)); err == nil {
		t.Fatal("zero gain accepted")
	}
	if _, err := Simulate(Config{K: 1}, markov.NewPath(1, 1, false)); err == nil {
		t.Fatal("empty path accepted")
	}
}

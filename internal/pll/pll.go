// Package pll models RTN-induced cycle slipping in phase-locked loops —
// the paper's final conjecture in future-work #4 ("We also conjecture
// that RTN causes cycle slipping in PLLs").
//
// The model is the canonical phase-domain loop with a sinusoidal phase
// detector:
//
//	dθ/dt = Δω(t) − K·sin θ
//
// where θ is the phase error, K the loop gain (rad/s) and Δω(t) the
// instantaneous frequency offset. An RTN trap in the VCO's bias devices
// shifts the oscillator frequency by δf while filled, so
// Δω(t) = 2π·δf·filled(t). The classical result: the loop holds lock
// for |Δω| < K, and for |Δω| > K it slips cycles at the beat rate
// √(Δω² − K²)/2π — giving this package an exact analytical oracle.
package pll

import (
	"errors"
	"math"

	"samurai/internal/markov"
)

// Config describes the loop and the RTN modulation.
type Config struct {
	// K is the loop gain, rad/s.
	K float64
	// DeltaF is the VCO frequency shift while the trap is filled, Hz.
	DeltaF float64
	// Dt is the integration step; it must resolve both 1/K and the
	// beat period. Zero → min(0.02/K, 0.02/Δf').
	Dt float64
}

func (c Config) defaults() (Config, error) {
	if c.K <= 0 {
		return c, errors.New("pll: non-positive loop gain")
	}
	if c.Dt == 0 {
		c.Dt = 0.02 / c.K
		if c.DeltaF != 0 {
			if d := 0.02 / (2 * math.Pi * math.Abs(c.DeltaF)); d < c.Dt {
				c.Dt = d
			}
		}
	}
	return c, nil
}

// Result summarises a cycle-slip simulation.
type Result struct {
	// Slips is the number of 2π phase wraps observed.
	Slips int
	// TimeFilled is the total time the trap spent filled, s.
	TimeFilled float64
	// PredictedSlips is the analytical expectation
	// √(Δω²−K²)/2π · TimeFilled for Δω > K, else 0.
	PredictedSlips float64
	// MaxAbsTheta is the peak |θ| excursion, rad.
	MaxAbsTheta float64
}

// SlipRate returns the analytical steady-state slip rate (slips/s) for
// a constant frequency offset dOmega (rad/s) against loop gain k: zero
// inside the lock range, the beat frequency outside it.
func SlipRate(k, dOmega float64) float64 {
	a := math.Abs(dOmega)
	if a <= k {
		return 0
	}
	return math.Sqrt(a*a-k*k) / (2 * math.Pi)
}

// Simulate integrates the phase error over the trap path's lifetime
// with RK4 and counts cycle slips (continuous unwrapped θ crossing 2π
// boundaries).
func Simulate(cfg Config, path *markov.Path) (*Result, error) {
	cfg, err := cfg.defaults()
	if err != nil {
		return nil, err
	}
	t0, t1 := path.Begin(), path.End
	if t1 <= t0 {
		return nil, errors.New("pll: empty trap path")
	}
	dOmega := 2 * math.Pi * cfg.DeltaF
	deriv := func(t, th float64) float64 {
		dw := 0.0
		if path.StateAt(t) {
			dw = dOmega
		}
		return dw - cfg.K*math.Sin(th)
	}
	res := &Result{}
	theta := 0.0
	wraps := 0
	prevWrap := 0
	h := cfg.Dt
	for t := t0; t < t1; t += h {
		step := h
		if t+step > t1 {
			step = t1 - t
		}
		k1 := deriv(t, theta)
		k2 := deriv(t+step/2, theta+step/2*k1)
		k3 := deriv(t+step/2, theta+step/2*k2)
		k4 := deriv(t+step, theta+step*k3)
		theta += step / 6 * (k1 + 2*k2 + 2*k3 + k4)
		if a := math.Abs(theta); a > res.MaxAbsTheta {
			res.MaxAbsTheta = a
		}
		if w := int(math.Floor(math.Abs(theta) / (2 * math.Pi))); w != prevWrap {
			if w > prevWrap {
				wraps += w - prevWrap
			}
			prevWrap = w
		}
	}
	res.Slips = wraps
	// Time filled from the path itself.
	res.TimeFilled = path.FilledFraction() * (t1 - t0)
	res.PredictedSlips = SlipRate(cfg.K, dOmega) * res.TimeFilled
	return res, nil
}

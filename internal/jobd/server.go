package jobd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"samurai/internal/obs"
)

// NewHandler mounts the job API next to the observability surface
// (obs.NewMux: /metrics, /debug/pprof) and returns the combined
// handler.
//
//	POST /jobs                submit a Spec, 202 + View
//	GET  /jobs                list all jobs
//	GET  /jobs/{id}           one job's View
//	GET  /jobs/{id}/result    409 until done; provenance manifest,
//	                          summary + sorted cells
//	GET  /jobs/{id}/trace     causal trace of the job's last run:
//	                          Chrome/Perfetto trace_event JSON, or
//	                          one span per line with ?format=jsonl
//	GET  /jobs/{id}/events    progress stream: NDJSON, or SSE with
//	                          ?format=sse / Accept: text/event-stream
//	POST /jobs/{id}/cancel    cancel queued or running job
//	GET  /debug/flightrecorder  recent span/event notes of every job
//	GET  /healthz             liveness (503 while draining)
func NewHandler(s *Scheduler) http.Handler {
	mux := obs.NewMux(nil)
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("jobd: decoding job spec: %w", err))
			return
		}
		v, err := s.Submit(spec)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrDraining) {
				code = http.StatusServiceUnavailable
			}
			httpError(w, code, err)
			return
		}
		writeJSON(w, http.StatusAccepted, v)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := s.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("jobd: no job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		v, ok := s.Get(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("jobd: no job %q", id))
			return
		}
		if v.State != StateDone {
			httpError(w, http.StatusConflict, fmt.Errorf("jobd: job %q is %s, not done", id, v.State))
			return
		}
		cells, _ := s.CellRecords(id)
		// The provenance manifest is attached at serve time only: it is
		// machine-dependent (CPU count, VCS revision) and must never
		// enter the WAL, where it would poison resumed runs' records.
		writeJSON(w, http.StatusOK, struct {
			ID      string       `json:"id"`
			RunInfo obs.RunInfo  `json:"run_info"`
			Summary *Summary     `json:"summary"`
			Cells   []CellRecord `json:"cells,omitempty"`
		}{
			ID:      id,
			RunInfo: obs.Info(v.Spec.Seed, fmt.Sprintf("%016x", v.Spec.TraceID())),
			Summary: v.Result,
			Cells:   cells,
		})
	})
	mux.HandleFunc("GET /jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		tr, ok := s.Trace(id)
		if !ok {
			httpError(w, http.StatusNotFound,
				fmt.Errorf("jobd: no trace for job %q (never started?)", id))
			return
		}
		var err error
		switch format := r.URL.Query().Get("format"); format {
		case "", "chrome":
			w.Header().Set("Content-Type", "application/json")
			err = tr.WriteChrome(w)
		case "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			err = tr.WriteJSONL(w)
		default:
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("jobd: unknown trace format %q (want chrome or jsonl)", format))
			return
		}
		if err != nil {
			// Mid-stream write failure: the client hung up; there is no
			// channel left to report on.
			return
		}
	})
	mux.HandleFunc("GET /debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, v := range s.List() {
			tr, ok := s.Trace(v.ID)
			if !ok || tr.Flight() == nil {
				continue
			}
			header := struct {
				Job     string `json:"job"`
				TraceID string `json:"trace_id"`
			}{Job: v.ID, TraceID: fmt.Sprintf("%016x", tr.TraceID())}
			hb, err := json.Marshal(header)
			if err != nil {
				continue // unreachable: header is plain data
			}
			if _, err := w.Write(append(hb, '\n')); err != nil {
				return
			}
			if err := tr.Flight().WriteJSONL(w); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := s.Cancel(id); err != nil {
			code := http.StatusConflict
			if strings.Contains(err.Error(), "no job") {
				code = http.StatusNotFound
			}
			httpError(w, code, err)
			return
		}
		v, _ := s.Get(id)
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		s.serveEvents(w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// serveEvents streams a job's progress events until the job finishes,
// the scheduler drains, or the client hangs up. The stream rides the
// obs JSONL sink (one Write per event) wrapped for the chosen framing.
func (s *Scheduler) serveEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, ok := s.Events(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("jobd: no job %q", id))
		return
	}
	defer cancel()

	sse := r.URL.Query().Get("format") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	flusher, _ := w.(http.Flusher)
	var sink obs.Sink
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		sink = obs.NewJSONLSink(sseWriter{w: w, f: flusher})
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
		sink = obs.NewJSONLSink(flushWriter{w: w, f: flusher})
	}
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}

	// Open with a snapshot so late subscribers see current progress.
	if v, ok := s.Get(id); ok {
		sink.Emit(obs.Event{Name: "jobd.snapshot", Fields: []obs.Field{
			obs.F("job", v.ID),
			obs.F("state", string(v.State)),
			obs.F("done", v.CellsDone),
			obs.F("cells", v.CellsTotal),
		}})
	}
	for {
		select {
		case e, open := <-ch:
			if !open {
				return
			}
			sink.Emit(e)
		case <-r.Context().Done():
			return
		}
	}
}

// writeJSON encodes v as the response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//lint:ignore bareerr a failed response write means the client hung up; nothing to recover
	json.NewEncoder(w).Encode(v)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

package jobd

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"samurai"
	"samurai/internal/montecarlo"
	"samurai/internal/obs"
	"samurai/internal/obs/trace"
	"samurai/internal/sram"
)

// Service instrumentation, resolved against the process registry so
// samuraid's /metrics surface carries the job layer next to the solver
// and montecarlo series.
var (
	mQueueDepth = obs.GetGauge("samurai_jobd_queue_depth",
		"jobs waiting for a scheduler slot")
	mResumes = obs.GetCounter("samurai_jobd_resumes_total",
		"sweeps picked back up with checkpointed cells in the store")
	mCellsCheckpointed = obs.GetCounter("samurai_jobd_cells_checkpointed_total",
		"array cells durably recorded in the job store")
	mStoreErrors = obs.GetCounter("samurai_jobd_store_errors_total",
		"failed write-ahead store appends")
)

// stateGauge resolves the per-state job count gauge.
func stateGauge(st State) *obs.Gauge {
	return obs.GetGauge("samurai_jobd_jobs",
		"jobs by lifecycle state", obs.L("state", string(st)))
}

// jobScope returns the per-job label scope: every series a job's run
// resolves through it carries job="…", so one /metrics exposition
// distinguishes tenants.
func jobScope(id string) *obs.Scope {
	return obs.Default().Child(obs.L("job", id))
}

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = errors.New("jobd: scheduler is draining; not accepting jobs")

// Options tunes a Scheduler. The zero value is usable.
type Options struct {
	// MaxJobs bounds concurrently executing jobs (default 1). Each
	// array job additionally parallelises over its own cell workers.
	MaxJobs int
	// QueueCap bounds jobs waiting behind the running ones (default
	// 256); Submit fails once the queue is full.
	QueueCap int
	// Workers is the default per-job cell parallelism applied when a
	// spec leaves Workers at 0 (0 → GOMAXPROCS, montecarlo's default).
	Workers int
	// Retry is the default per-cell retry policy for specs that do not
	// set one.
	Retry RetrySpec
	// FlightSize is the per-job flight-recorder ring capacity (last N
	// span/event notes kept for failure dumps; default
	// DefaultFlightSize). Negative disables the recorder.
	FlightSize int
}

// DefaultFlightSize keeps the last 4096 notes per job — enough to cover
// the tail of a large sweep at ~48 bytes a slot.
const DefaultFlightSize = 4096

func (o Options) withDefaults() Options {
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.FlightSize == 0 {
		o.FlightSize = DefaultFlightSize
	}
	o.Retry = o.Retry.withDefaults()
	return o
}

// Scheduler owns the job table and executes jobs on a bounded pool.
// Every mutation is persisted to the Store before it is observable
// through the API, so a crash at any point replays into a consistent
// table.
type Scheduler struct {
	store *Store
	opts  Options
	hub   *hub

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	seq     uint64
	started bool
	// draining flips once; guarded by mu, signalled by drainCh.
	draining bool
	cancels  map[string]context.CancelFunc

	queue   chan *Job
	drainCh chan struct{}
	wg      sync.WaitGroup
}

// New builds a scheduler over a freshly opened store. replayed and
// maxSeq come from Open; replayed jobs keep their stored state and
// queued ones (including drained/crashed sweeps) are re-dispatched by
// Start.
func New(store *Store, replayed []*Job, maxSeq uint64, opts Options) *Scheduler {
	opts = opts.withDefaults()
	s := &Scheduler{
		store:   store,
		opts:    opts,
		hub:     newHub(),
		jobs:    map[string]*Job{},
		seq:     maxSeq,
		cancels: map[string]context.CancelFunc{},
		queue:   make(chan *Job, opts.QueueCap+len(replayed)),
		drainCh: make(chan struct{}),
	}
	for _, j := range replayed {
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		stateGauge(j.State).Add(1)
		if j.State.Terminal() {
			s.hub.finish(j.ID)
		}
	}
	return s
}

// Start launches the worker pool and re-dispatches replayed queued
// jobs in submission order.
func (s *Scheduler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	var pending []*Job
	for _, id := range s.order {
		if j := s.jobs[id]; j.State == StateQueued {
			pending = append(pending, j)
			if j.cellsDone() > 0 {
				j.Resumes++
				mResumes.Inc()
			}
		}
	}
	s.mu.Unlock()
	for _, j := range pending {
		s.enqueue(j)
	}
	for w := 0; w < s.opts.MaxJobs; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case j := <-s.queue:
					mQueueDepth.Add(-1)
					s.runJob(j)
				case <-s.drainCh:
					return
				}
			}
		}()
	}
}

// enqueue hands a job to the pool; the caller must have persisted it.
func (s *Scheduler) enqueue(j *Job) {
	s.queue <- j
	mQueueDepth.Add(1)
}

// Submit validates, persists and queues a new job, returning its view.
func (s *Scheduler) Submit(spec Spec) (View, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return View{}, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return View{}, ErrDraining
	}
	if len(s.queue) >= cap(s.queue) {
		s.mu.Unlock()
		return View{}, fmt.Errorf("jobd: queue full (%d jobs)", cap(s.queue))
	}
	s.seq++
	j := &Job{
		ID:    fmt.Sprintf("job-%06d", s.seq),
		Seq:   s.seq,
		Spec:  spec,
		State: StateQueued,
		cells: map[int]CellRecord{},
	}
	if ArrayLike(spec.Type) {
		j.CellsTotal = spec.Cells
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	v := j.view()
	s.mu.Unlock()

	if err := s.store.AppendJob(j); err != nil {
		mStoreErrors.Inc()
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		return View{}, err
	}
	stateGauge(StateQueued).Add(1)
	s.emit(j.ID, "jobd.state",
		obs.F("job", j.ID), obs.F("state", string(StateQueued)))
	s.enqueue(j)
	return v, nil
}

// Get returns a snapshot of a job.
func (s *Scheduler) Get(id string) (View, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return View{}, false
	}
	return j.view(), true
}

// List returns snapshots of all jobs in submission order.
func (s *Scheduler) List() []View {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]View, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// Trace returns the tracer of a job's current or most recent run
// (false until the job has started running at least once).
func (s *Scheduler) Trace(id string) (*trace.Tracer, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.tracer == nil {
		return nil, false
	}
	return j.tracer, true
}

// CellRecords returns the checkpointed cells of a job, sorted by index.
func (s *Scheduler) CellRecords(id string) ([]CellRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.cellRecords(), true
}

// Events subscribes to a job's progress stream.
func (s *Scheduler) Events(id string) (<-chan obs.Event, func(), bool) {
	s.mu.Lock()
	_, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	ch, cancel := s.hub.subscribe(id)
	return ch, cancel, true
}

// Cancel aborts a job: queued jobs transition immediately, running
// jobs have their context cancelled (the transition happens when the
// runner observes it). Terminal jobs return an error.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("jobd: no job %q", id)
	}
	switch j.State {
	case StateQueued:
		s.mu.Unlock()
		s.transition(j, StateCanceled, "canceled while queued")
		return nil
	case StateRunning:
		cancel := s.cancels[id]
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		st := j.State
		s.mu.Unlock()
		return fmt.Errorf("jobd: job %q already %s", id, st)
	}
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops the scheduler gracefully: no new jobs are accepted or
// started, in-flight array cells finish and checkpoint, interrupted
// sweeps transition back to queued (resumable after restart), and all
// event streams are closed. It blocks until the pool is idle.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	s.mu.Unlock()
	close(s.drainCh)
	s.wg.Wait()
	s.hub.closeAll()
}

// emit publishes a progress event to the job's stream subscribers and
// to the process-wide obs sink.
func (s *Scheduler) emit(id, name string, fields ...obs.Field) {
	s.hub.publish(id, obs.Event{Name: name, Fields: fields})
	obs.Emit(name, fields...)
}

// transition moves a job to a new state, persisting first and then
// publishing. A failed store append downgrades the transition to
// in-memory only (counted by samurai_jobd_store_errors_total) — the
// API stays truthful for this process lifetime even when the WAL is
// sick.
func (s *Scheduler) transition(j *Job, st State, errMsg string) {
	if err := s.store.AppendState(j.ID, st, errMsg); err != nil {
		mStoreErrors.Inc()
	}
	s.mu.Lock()
	old := j.State
	j.State = st
	j.Error = errMsg
	s.mu.Unlock()
	stateGauge(old).Add(-1)
	stateGauge(st).Add(1)
	fields := []obs.Field{obs.F("job", j.ID), obs.F("state", string(st))}
	if errMsg != "" {
		fields = append(fields, obs.F("error", errMsg))
	}
	s.emit(j.ID, "jobd.state", fields...)
	if st.Terminal() {
		s.hub.finish(j.ID)
	}
}

// runJob executes one job to a final (or requeued) state. Every run
// gets a fresh tracer under the spec's deterministic trace ID and a
// flight recorder that is dumped to the WAL directory when the run
// fails or drains.
func (s *Scheduler) runJob(j *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var flight *trace.Flight
	if s.opts.FlightSize > 0 {
		flight = trace.NewFlight(s.opts.FlightSize)
	}
	tr := trace.New(j.Spec.TraceID(), trace.Options{Flight: flight})
	ctx = trace.NewContext(ctx, tr)
	s.mu.Lock()
	if j.State != StateQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	j.tracer = tr
	spec := j.Spec
	resume := j.resumeOutcomes()
	s.cancels[j.ID] = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.cancels, j.ID)
		s.mu.Unlock()
	}()

	s.transition(j, StateRunning, "")

	var sum *Summary
	var err error
	switch spec.Type {
	case TypeRun:
		sum, err = s.execRun(ctx, spec)
	case TypeArray, TypeRareArray:
		sum, err = s.execArray(ctx, cancel, j, spec, resume)
	default:
		err = fmt.Errorf("jobd: unknown job type %q", spec.Type)
	}

	switch {
	case err == nil:
		if serr := s.store.AppendResult(j.ID, *sum); serr != nil {
			mStoreErrors.Inc()
		}
		s.mu.Lock()
		j.Result = sum
		s.mu.Unlock()
		s.emit(j.ID, "jobd.done",
			obs.F("job", j.ID),
			obs.F("num_failed", sum.NumFailed),
			obs.F("write_errors", sum.WriteErrors),
			obs.F("slowdowns", sum.Slowdowns))
		s.transition(j, StateDone, "")
	case errors.Is(err, montecarlo.ErrDrained):
		// Graceful drain: checkpointed progress is in the store; the
		// job resumes after the next start.
		s.dumpFlight(j.ID, tr, "drain")
		s.transition(j, StateQueued, "")
	case errors.Is(err, context.Canceled):
		s.transition(j, StateCanceled, "canceled")
	default:
		s.dumpFlight(j.ID, tr, "failure")
		s.transition(j, StateFailed, err.Error())
	}
}

// dumpFlight writes the tracer's flight-recorder contents next to the
// WAL as <jobID>-flight-<reason>.jsonl, so the last moments of a
// failed, retried or drained run survive for post-mortem inspection.
// Dumps are best-effort observability: a write failure is emitted, not
// returned.
func (s *Scheduler) dumpFlight(id string, tr *trace.Tracer, reason string) {
	f := tr.Flight()
	if f == nil {
		return
	}
	path := filepath.Join(filepath.Dir(s.store.Path()), id+"-flight-"+reason+".jsonl")
	fh, err := os.Create(path)
	if err != nil {
		obs.Emit("jobd.flightdump", obs.F("job", id), obs.F("error", err.Error()))
		return
	}
	werr := f.WriteJSONL(fh)
	if cerr := fh.Close(); werr == nil {
		werr = cerr
	}
	fields := []obs.Field{obs.F("job", id), obs.F("reason", reason), obs.F("path", path)}
	if werr != nil {
		fields = append(fields, obs.F("error", werr.Error()))
	}
	s.emit(id, "jobd.flightdump", fields...)
}

// execRun executes a single methodology run job.
func (s *Scheduler) execRun(ctx context.Context, spec Spec) (*Summary, error) {
	cfg, err := spec.RunConfig()
	if err != nil {
		return nil, err
	}
	res, err := samurai.RunCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	traps := 0
	for _, p := range res.Profiles {
		traps += len(p.Traps)
	}
	return &Summary{
		WriteErrors: res.WithRTN.NumError,
		Slowdowns:   res.WithRTN.NumSlow,
		Traps:       traps,
	}, nil
}

// execArray executes (or resumes) an array sweep with cell-granular
// checkpointing. cancel aborts the sweep if the WAL stops accepting
// checkpoints — running on without durability would break the resume
// contract silently.
func (s *Scheduler) execArray(ctx context.Context, cancel context.CancelFunc, j *Job, spec Spec, resume []montecarlo.CellOutcome) (*Summary, error) {
	cfg, err := spec.ArrayConfig()
	if err != nil {
		return nil, err
	}
	if cfg.Workers == 0 {
		cfg.Workers = s.opts.Workers
	}
	retry := spec.Retry
	if retry.Max == 0 {
		retry = s.opts.Retry
	}
	trc := trace.FromContext(ctx)
	scope := jobScope(j.ID)
	cellsPerSec := scope.Gauge("samurai_jobd_job_cells_per_second",
		"fresh cells per second of the job's current run")
	retries := scope.Counter("samurai_jobd_job_retries_total",
		"per-cell retry attempts of the job's current run")
	onRetry := func(seed uint64, attempt int, err error) {
		retries.Inc()
		trc.Event("jobd.retry", seed, uint64(attempt), 0)
		s.emit(j.ID, "jobd.retry",
			obs.F("job", j.ID),
			obs.F("seed", seed),
			obs.F("attempt", attempt),
			obs.F("error", err.Error()))
		s.dumpFlight(j.ID, trc, "retry")
	}
	var runner montecarlo.CtxRunner
	var rare *montecarlo.RareEventSpec
	if spec.Type == TypeRareArray {
		rare = &montecarlo.RareEventSpec{
			TiltEV: spec.TiltEV,
			Runner: retryRareRunner(samurai.RareArrayRunnerCtx(), retry, onRetry),
		}
	} else {
		runner = retryRunner(samurai.ArrayRunnerCtx(), retry, onRetry)
	}

	start := time.Now()
	var storeErr error
	var storeErrOnce sync.Once
	opts := montecarlo.ArrayOptions{
		Resume:    resume,
		Drain:     s.drainCh,
		RareEvent: rare,
		OnCell: func(o montecarlo.CellOutcome) {
			rec := NewCellRecord(o)
			if aerr := s.store.AppendCell(j.ID, rec); aerr != nil {
				mStoreErrors.Inc()
				storeErrOnce.Do(func() {
					storeErr = aerr
					cancel()
				})
				return
			}
			mCellsCheckpointed.Inc()
			s.mu.Lock()
			j.cells[rec.Index] = rec
			done := j.cellsDone()
			total := j.CellsTotal
			s.mu.Unlock()
			trc.Event("jobd.cell", uint64(rec.Index), uint64(done), uint64(total))
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				cellsPerSec.Set(float64(done-len(resume)) / elapsed)
			}
			s.emit(j.ID, "jobd.cell",
				obs.F("job", j.ID),
				obs.F("index", rec.Index),
				obs.F("done", done),
				obs.F("cells", total))
		},
	}
	res, err := montecarlo.RunArrayCtx(ctx, cfg, runner, opts)
	if err != nil {
		if storeErr != nil {
			return nil, fmt.Errorf("jobd: checkpoint store failed: %w", storeErr)
		}
		return nil, err
	}
	return &Summary{
		NumFailed: res.NumFailed,
		ErrorRate: res.ErrorRate,
		MeanTraps: res.MeanTraps,
		Rare:      res.Rare,
	}, nil
}

// retryRareRunner is retryRunner for the tilted rare-event cell runner.
// The same determinism argument applies: a rare cell's outcome —
// including its log-LR and glitch depth — is a pure function of
// (seed, tiltEV), so a retry either reproduces the failure or yields
// the one true result.
func retryRareRunner(run montecarlo.RareCtxRunner, r RetrySpec, onRetry func(seed uint64, attempt int, err error)) montecarlo.RareCtxRunner {
	if r.Max <= 0 {
		return run
	}
	r = r.withDefaults()
	return func(ctx context.Context, cell sram.CellConfig, pattern sram.Pattern, scale, tiltEV float64, seed uint64) (int, int, int, float64, float64, error) {
		backoff := time.Duration(r.BackoffMS) * time.Millisecond
		maxBackoff := time.Duration(r.MaxBackoffMS) * time.Millisecond
		for attempt := 0; ; attempt++ {
			nerr, slow, traps, logLR, glitch, err := run(ctx, cell, pattern, scale, tiltEV, seed)
			if err == nil || attempt >= r.Max ||
				errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nerr, slow, traps, logLR, glitch, err
			}
			if onRetry != nil {
				onRetry(seed, attempt, err)
			}
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return nerr, slow, traps, logLR, glitch, err
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
}

// retryRunner wraps a cell runner with capped exponential backoff for
// transiently failing cells. Cancellation errors are never retried,
// and the backoff sleep aborts as soon as ctx does. onRetry (optional)
// observes each attempt that is about to be retried, keyed by the
// cell's seed — the one stable identifier the runner signature carries.
func retryRunner(run montecarlo.CtxRunner, r RetrySpec, onRetry func(seed uint64, attempt int, err error)) montecarlo.CtxRunner {
	if r.Max <= 0 {
		return run
	}
	r = r.withDefaults()
	return func(ctx context.Context, cell sram.CellConfig, pattern sram.Pattern, scale float64, seed uint64) (int, int, int, error) {
		backoff := time.Duration(r.BackoffMS) * time.Millisecond
		maxBackoff := time.Duration(r.MaxBackoffMS) * time.Millisecond
		for attempt := 0; ; attempt++ {
			nerr, slow, traps, err := run(ctx, cell, pattern, scale, seed)
			if err == nil || attempt >= r.Max ||
				errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nerr, slow, traps, err
			}
			if onRetry != nil {
				onRetry(seed, attempt, err)
			}
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return nerr, slow, traps, err
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
}

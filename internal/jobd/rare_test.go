package jobd

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"samurai"
	"samurai/internal/montecarlo"
)

// rareSpec is a real-but-small importance-sampled sweep: every cell
// runs the full two-pass methodology with the tilted kernel.
func rareSpec(cells int, tilt float64) Spec {
	return Spec{Type: TypeRareArray, Seed: 4321, Cells: cells, Workers: 2, TiltEV: tilt}
}

// rareBaseline runs the spec's sweep directly through RunArrayCtx with
// the production rare runner — the reference a jobd execution must
// reproduce bit-for-bit.
func rareBaseline(t *testing.T, spec Spec) *montecarlo.ArrayResult {
	t.Helper()
	cfg, err := spec.ArrayConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := montecarlo.RunArrayCtx(context.Background(), cfg, nil, montecarlo.ArrayOptions{
		RareEvent: &montecarlo.RareEventSpec{TiltEV: spec.TiltEV, Runner: samurai.RareArrayRunnerCtx()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRareArrayJobMatchesDirect is the jobd integration contract of the
// rare-event engine: a rare_array job executes the tilted sweep, its
// checkpointed cells round-trip the WAL with bit-exact log-LR and
// glitch-depth fields, and the persisted summary carries the weighted
// aggregate bit-identical to a direct RunArrayCtx of the same spec.
func TestRareArrayJobMatchesDirect(t *testing.T) {
	spec := rareSpec(4, -0.05)
	want := rareBaseline(t, spec)

	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, jobs, seq := mustOpen(t, path)
	s := New(st, jobs, seq, Options{MaxJobs: 1})
	s.Start()
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rare job to finish", func() bool {
		cur, ok := s.Get(v.ID)
		return ok && cur.State == StateDone
	})
	cells, _ := s.CellRecords(v.ID)
	if len(cells) != spec.Cells {
		t.Fatalf("checkpointed %d cells, want %d", len(cells), spec.Cells)
	}
	for i, c := range cells {
		w := want.Outcomes[i]
		if c.Index != w.Index || c.Errors != w.Errors || c.Slow != w.Slow ||
			c.TrapCount != w.TrapCount || c.Failed != w.Failed {
			t.Fatalf("cell %d counts differ from direct run: got %+v want %+v", i, c, w)
		}
		if math.Float64bits(c.LogLR) != math.Float64bits(w.LogLR) {
			t.Fatalf("cell %d LogLR not bit-identical: %x vs %x",
				i, math.Float64bits(c.LogLR), math.Float64bits(w.LogLR))
		}
		if math.Float64bits(c.GlitchDepth) != math.Float64bits(w.GlitchDepth) {
			t.Fatalf("cell %d GlitchDepth not bit-identical", i)
		}
	}
	cur, _ := s.Get(v.ID)
	if cur.Result == nil || cur.Result.Rare == nil {
		t.Fatalf("done rare job has no weighted aggregate: %+v", cur.Result)
	}
	g, w := cur.Result.Rare, want.Rare
	if g.N != w.N ||
		math.Float64bits(g.PFail) != math.Float64bits(w.PFail) ||
		math.Float64bits(g.ESS) != math.Float64bits(w.ESS) ||
		math.Float64bits(g.LRVar) != math.Float64bits(w.LRVar) ||
		math.Float64bits(g.CIHalf) != math.Float64bits(w.CIHalf) {
		t.Fatalf("summary aggregate not bit-identical:\n got %+v\nwant %+v", g, w)
	}
	s.Drain()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// WAL replay: the rare fields and the summary survive a "restart".
	st2, replayed, _ := mustOpen(t, path)
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if len(replayed) != 1 {
		t.Fatalf("replayed %d jobs", len(replayed))
	}
	j := replayed[0]
	if j.State != StateDone || j.Result == nil || j.Result.Rare == nil {
		t.Fatalf("replayed rare job lost its result: state %s result %+v", j.State, j.Result)
	}
	if math.Float64bits(j.Result.Rare.PFail) != math.Float64bits(w.PFail) {
		t.Fatal("replayed rare aggregate not bit-identical")
	}
	for i, rec := range j.Records() {
		if math.Float64bits(rec.LogLR) != math.Float64bits(want.Outcomes[i].LogLR) {
			t.Fatalf("replayed cell %d LogLR not bit-identical", i)
		}
	}
}

// TestRareSpecValidation pins the rare_array spec gate: tilts on plain
// jobs, contradictory with_rtn and out-of-range tilts are rejected;
// well-formed specs pass.
func TestRareSpecValidation(t *testing.T) {
	if err := rareSpec(4, -0.05).withDefaults().Validate(); err != nil {
		t.Fatalf("valid rare spec rejected: %v", err)
	}
	bad := []Spec{
		{Type: TypeArray, Seed: 1, Cells: 4, TiltEV: -0.1},
		{Type: TypeRun, Seed: 1, TiltEV: -0.1},
		{Type: TypeRareArray, Seed: 1, Cells: 0, TiltEV: -0.1},
		{Type: TypeRareArray, Seed: 1, Cells: 4, TiltEV: -3},
		func() Spec {
			withRTN := false
			return Spec{Type: TypeRareArray, Seed: 1, Cells: 4, WithRTN: &withRTN}
		}(),
	}
	for i, spec := range bad {
		if err := spec.withDefaults().Validate(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, spec)
		}
	}
}

// TestRareCellRecordGuards: non-finite rare fields must never reach the
// WAL — they cannot round-trip JSON.
func TestRareCellRecordGuards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, _, _ := mustOpen(t, path)
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if err := st.AppendCell("job-1", CellRecord{Index: 0, LogLR: math.Inf(-1)}); err == nil {
		t.Fatal("infinite log-LR accepted")
	}
	if err := st.AppendCell("job-1", CellRecord{Index: 0, GlitchDepth: math.NaN()}); err == nil {
		t.Fatal("NaN glitch depth accepted")
	}
}

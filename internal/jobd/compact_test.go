package jobd

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// flapStore builds a WAL whose job cycled through many drain/resume
// transitions — the record shape a long-lived coordinator accumulates —
// plus a second, terminal job with a result.
func flapStore(t *testing.T, path string) {
	t.Helper()
	st, jobs, seq := mustOpen(t, path)
	if len(jobs) != 0 || seq != 0 {
		t.Fatalf("fresh store replayed %d jobs, seq %d", len(jobs), seq)
	}
	j1 := &Job{ID: "job-000001", Seq: 1, Spec: arraySpec(4), State: StateQueued, cells: map[int]CellRecord{}}
	j1.CellsTotal = 4
	if err := st.AppendJob(j1); err != nil {
		t.Fatal(err)
	}
	// Ten drain/resume cycles: 20 state records that compaction folds away.
	for i := 0; i < 10; i++ {
		if err := st.AppendState(j1.ID, StateRunning, ""); err != nil {
			t.Fatal(err)
		}
		if err := st.AppendState(j1.ID, StateQueued, ""); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		rec := CellRecord{Index: i, TrapCount: i, VtShift: map[string]float64{"M1": 0.001 * float64(i+1)}}
		if err := st.AppendCell(j1.ID, rec); err != nil {
			t.Fatal(err)
		}
	}

	j2 := &Job{ID: "job-000002", Seq: 2, Spec: arraySpec(1), State: StateQueued, cells: map[int]CellRecord{}}
	j2.CellsTotal = 1
	if err := st.AppendJob(j2); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCell(j2.ID, CellRecord{Index: 0, VtShift: map[string]float64{"M2": -0.004}}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResult(j2.ID, Summary{NumFailed: 0, ErrorRate: 0, MeanTraps: 2.5}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendState(j2.ID, StateDone, ""); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// assertSameTable compares two replayed job tables field by field, with
// the float64 cell payloads compared as raw bits.
func assertSameTable(t *testing.T, got, want []*Job) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		gv, wv := g.View(), w.View()
		if gv.ID != wv.ID || gv.State != wv.State || gv.Error != wv.Error ||
			gv.CellsDone != wv.CellsDone || gv.CellsTotal != wv.CellsTotal {
			t.Fatalf("job %d view differs: got %+v want %+v", i, gv, wv)
		}
		if g.Seq != w.Seq {
			t.Fatalf("job %s seq %d, want %d", gv.ID, g.Seq, w.Seq)
		}
		if (g.Result == nil) != (w.Result == nil) {
			t.Fatalf("job %s result presence differs", gv.ID)
		}
		if w.Result != nil && *g.Result != *w.Result {
			t.Fatalf("job %s result %+v, want %+v", gv.ID, *g.Result, *w.Result)
		}
		gc, wc := g.Records(), w.Records()
		if len(gc) != len(wc) {
			t.Fatalf("job %s has %d cells, want %d", gv.ID, len(gc), len(wc))
		}
		for k := range wc {
			if gc[k].Index != wc[k].Index || gc[k].TrapCount != wc[k].TrapCount ||
				gc[k].Errors != wc[k].Errors || gc[k].Slow != wc[k].Slow || gc[k].Failed != wc[k].Failed {
				t.Fatalf("job %s cell %d differs: %+v vs %+v", gv.ID, k, gc[k], wc[k])
			}
			for key, want := range wc[k].VtShift {
				if math.Float64bits(gc[k].VtShift[key]) != math.Float64bits(want) {
					t.Fatalf("job %s cell %d VtShift[%q] not bit-identical", gv.ID, k, key)
				}
			}
		}
	}
}

// TestCompactReplayEquivalent proves the headline compaction property:
// the snapshot replays into exactly the same job table as the full log,
// is strictly smaller for a log with redundant history, and stays
// appendable afterwards.
func TestCompactReplayEquivalent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	flapStore(t, path)
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	st, jobs, seq := mustOpen(t, path)
	if err := st.Compact(jobs); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction grew the log: %d -> %d bytes", before.Size(), after.Size())
	}

	// Appends after compaction must land in the compacted file.
	if err := st.AppendState("job-000001", StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCell("job-000001", CellRecord{Index: 3, VtShift: map[string]float64{"M1": 0.25}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, jobs2, seq2 := mustOpen(t, path)
	defer st2.Close()
	if seq2 != seq {
		t.Fatalf("max seq %d after compaction, want %d", seq2, seq)
	}
	if len(jobs2) != 2 {
		t.Fatalf("replayed %d jobs after compaction", len(jobs2))
	}
	// job-000001 took the two post-compaction appends: back to queued
	// (running is normalized on replay) with a fourth cell.
	if jobs2[0].Done() != 4 {
		t.Fatalf("job-000001 has %d cells after post-compaction append, want 4", jobs2[0].Done())
	}
	if jobs2[0].State != StateQueued {
		t.Fatalf("job-000001 state %s, want queued", jobs2[0].State)
	}
	if jobs2[1].State != StateDone || jobs2[1].Result == nil {
		t.Fatalf("job-000002 lost its terminal state or result: %+v", jobs2[1].View())
	}
}

// TestCompactThenReplayIdentical compacts and immediately replays,
// asserting the table is identical to the pre-compaction one.
func TestCompactThenReplayIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	flapStore(t, path)

	st, jobs, _ := mustOpen(t, path)
	if err := st.Compact(jobs); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, jobs2, _ := mustOpen(t, path)
	defer st2.Close()
	assertSameTable(t, jobs2, jobs)

	// Compaction is idempotent: a second pass replays identically again.
	if err := st2.Compact(jobs2); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, jobs3, _ := mustOpen(t, path)
	defer st3.Close()
	assertSameTable(t, jobs3, jobs)
}

// TestCompactTornTail crashes mid-append after a compaction: the torn
// final line must be truncated on reopen exactly as on a fresh log.
func TestCompactTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	flapStore(t, path)
	st, jobs, _ := mustOpen(t, path)
	if err := st.Compact(jobs); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"rec":"cell","id":"job-000001","cell":{"index":3,"vt_shift":{"M1":0.1`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st2, jobs2, _ := mustOpen(t, path)
	defer st2.Close()
	if jobs2[0].Done() != 3 {
		t.Fatalf("torn cell record survived replay: %d cells", jobs2[0].Done())
	}
	assertSameTable(t, jobs2, jobs)
}

// TestCompactClosedStore rejects compaction after Close.
func TestCompactClosedStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, jobs, _ := mustOpen(t, path)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(jobs); err == nil {
		t.Fatal("compaction of a closed store accepted")
	}
}

package jobd

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"samurai/internal/montecarlo"
)

func testSpec() Spec {
	withRTN := false
	return Spec{Type: TypeArray, Seed: 7, Cells: 8, WithRTN: &withRTN}.withDefaults()
}

func mustOpen(t *testing.T, path string) (*Store, []*Job, uint64) {
	t.Helper()
	st, jobs, seq, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//lint:ignore bareerr double-close in cleanup is fine; Close is idempotent
		st.Close()
	})
	return st, jobs, seq
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, jobs, seq := mustOpen(t, path)
	if len(jobs) != 0 || seq != 0 {
		t.Fatalf("fresh store replayed %d jobs, seq %d", len(jobs), seq)
	}
	j := &Job{ID: "job-000001", Seq: 1, Spec: testSpec(), State: StateQueued, cells: map[int]CellRecord{}}
	if err := st.AppendJob(j); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendState(j.ID, StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	// Bit-exactness: these floats exercise the shortest-representation
	// round trip (subnormal, negative, many digits).
	rec := CellRecord{
		Index: 3,
		VtShift: map[string]float64{
			"M1": 0.012345678901234567,
			"M2": -1.7976931348623157e+308,
			"M3": 5e-324,
		},
		TrapCount: 4, Errors: 1, Slow: 2, Failed: true,
	}
	if err := st.AppendCell(j.ID, rec); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendState(j.ID, StateDone, ""); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResult(j.ID, Summary{NumFailed: 1, ErrorRate: 0.125, MeanTraps: 3.5}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, replayed, maxSeq := mustOpen(t, path)
	if len(replayed) != 1 || maxSeq != 1 {
		t.Fatalf("replayed %d jobs, seq %d", len(replayed), maxSeq)
	}
	got := replayed[0]
	if got.State != StateDone || got.ID != j.ID || got.Seq != 1 {
		t.Fatalf("replayed job %+v", got)
	}
	if got.Result == nil || got.Result.NumFailed != 1 || got.Result.ErrorRate != 0.125 {
		t.Fatalf("replayed result %+v", got.Result)
	}
	cells := got.cellRecords()
	if len(cells) != 1 {
		t.Fatalf("replayed %d cells", len(cells))
	}
	for k, want := range rec.VtShift {
		if gotBits, wantBits := math.Float64bits(cells[0].VtShift[k]), math.Float64bits(want); gotBits != wantBits {
			t.Fatalf("VtShift[%q] round-tripped %x, want %x", k, gotBits, wantBits)
		}
	}
}

func TestStoreRunningJobReplaysAsQueued(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, _, _ := mustOpen(t, path)
	j := &Job{ID: "job-000001", Seq: 1, Spec: testSpec(), State: StateQueued, cells: map[int]CellRecord{}}
	if err := st.AppendJob(j); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendState(j.ID, StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCell(j.ID, CellRecord{Index: 0}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, replayed, _ := mustOpen(t, path)
	if len(replayed) != 1 {
		t.Fatalf("replayed %d jobs", len(replayed))
	}
	if replayed[0].State != StateQueued {
		t.Fatalf("crashed running job replayed as %s, want queued", replayed[0].State)
	}
	if replayed[0].cellsDone() != 1 {
		t.Fatalf("checkpointed cells lost: %d", replayed[0].cellsDone())
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, _, _ := mustOpen(t, path)
	j := &Job{ID: "job-000001", Seq: 1, Spec: testSpec(), State: StateQueued, cells: map[int]CellRecord{}}
	if err := st.AppendJob(j); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCell(j.ID, CellRecord{Index: 2}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, newline-less fragment.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"rec":"cell","id":"job-000001","cell":{"index":`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st2, replayed, _ := mustOpen(t, path)
	if len(replayed) != 1 || replayed[0].cellsDone() != 1 {
		t.Fatalf("torn tail corrupted replay: %d jobs, %d cells", len(replayed), replayed[0].cellsDone())
	}
	// The tail was truncated, so a fresh append starts a clean record.
	if err := st2.AppendCell(j.ID, CellRecord{Index: 3}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	_, replayed3, _ := mustOpen(t, path)
	if replayed3[0].cellsDone() != 2 {
		t.Fatalf("post-truncation append lost: %d cells", replayed3[0].cellsDone())
	}
}

func TestStoreRejectsCorruptRecords(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"bad json", "{nope}\n"},
		{"unknown kind", `{"rec":"mystery","id":"x"}` + "\n"},
		{"state for unknown job", `{"rec":"state","id":"ghost","state":"done"}` + "\n"},
		{"unknown state", `{"rec":"job","id":"a","seq":1,"spec":{"type":"run"}}` + "\n" + `{"rec":"state","id":"a","state":"limbo"}` + "\n"},
		{"duplicate job", `{"rec":"job","id":"a","seq":1,"spec":{"type":"run"}}` + "\n" + `{"rec":"job","id":"a","seq":2,"spec":{"type":"run"}}` + "\n"},
		{"cell out of range", `{"rec":"job","id":"a","seq":1,"spec":{"type":"array","cells":2,"seed":1}}` + "\n" + `{"rec":"cell","id":"a","cell":{"index":7}}` + "\n"},
	}
	for _, c := range cases {
		path := filepath.Join(t.TempDir(), "store.jsonl")
		if err := os.WriteFile(path, []byte(c.line), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := Open(path); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestStoreRejectsNonFiniteShifts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, _, _ := mustOpen(t, path)
	j := &Job{ID: "job-000001", Seq: 1, Spec: testSpec(), State: StateQueued, cells: map[int]CellRecord{}}
	if err := st.AppendJob(j); err != nil {
		t.Fatal(err)
	}
	bad := CellRecord{Index: 0, VtShift: map[string]float64{"M1": math.NaN()}}
	if err := st.AppendCell(j.ID, bad); err == nil || !strings.Contains(err.Error(), "not JSON-representable") {
		t.Fatalf("NaN shift accepted: %v", err)
	}
}

func TestNewCellRecordPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for errored outcome")
		}
	}()
	NewCellRecord(montecarlo.CellOutcome{Index: 0, Err: os.ErrClosed})
}

package jobd

import (
	"bytes"
	"io"
	"net/http"
	"sync"

	"samurai/internal/obs"
)

// subBuffer is the per-subscriber event buffer. Publishing never
// blocks: a subscriber that falls further behind than this loses
// events (progress is advisory; the store is the durable record).
const subBuffer = 64

// hub fans per-job progress events out to streaming subscribers. It
// adapts the internal/obs event model: publishers hand it obs.Event
// values and subscribers drain them through obs sinks (JSONL for
// NDJSON responses, SSE-framed for EventSource clients), so the wire
// encoding is exactly the one the rest of the repository emits.
type hub struct {
	mu   sync.Mutex
	subs map[string]map[int]chan obs.Event
	done map[string]bool
	next int
}

func newHub() *hub {
	return &hub{
		subs: map[string]map[int]chan obs.Event{},
		done: map[string]bool{},
	}
}

// publish fans an event out to the job's subscribers without blocking;
// slow subscribers drop events.
func (h *hub) publish(id string, e obs.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ch := range h.subs[id] {
		select {
		case ch <- e:
		default:
		}
	}
}

// subscribe registers a subscriber for the job's events. The returned
// cancel is idempotent and must be called when the consumer goes away.
// Subscribing to a finished job yields an already-closed channel.
func (h *hub) subscribe(id string) (<-chan obs.Event, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := make(chan obs.Event, subBuffer)
	if h.done[id] {
		close(ch)
		return ch, func() {}
	}
	if h.subs[id] == nil {
		h.subs[id] = map[int]chan obs.Event{}
	}
	h.next++
	key := h.next
	h.subs[id][key] = ch
	return ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if sub, ok := h.subs[id][key]; ok {
			delete(h.subs[id], key)
			close(sub)
		}
	}
}

// finish marks a job's stream complete: current subscribers are closed
// (after draining whatever is buffered) and future subscribers get a
// closed channel immediately.
func (h *hub) finish(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.done[id] = true
	for _, ch := range h.subs[id] {
		close(ch)
	}
	delete(h.subs, id)
}

// closeAll ends every stream — the drain path: event handlers return,
// which lets http.Server.Shutdown complete.
func (h *hub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, subs := range h.subs {
		for _, ch := range subs {
			close(ch)
		}
		delete(h.subs, id)
	}
}

// flushWriter flushes the HTTP response after every write so each
// NDJSON line (one write per obs JSONL sink emit) reaches the client
// immediately.
type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// sseWriter frames each written line as a Server-Sent Events message.
// The obs JSONL sink performs exactly one Write per event, a single
// newline-terminated JSON object, which maps 1:1 onto an SSE "data:"
// frame.
type sseWriter struct {
	w io.Writer
	f http.Flusher
}

func (sw sseWriter) Write(p []byte) (int, error) {
	line := bytes.TrimRight(p, "\n")
	if _, err := sw.w.Write([]byte("data: ")); err != nil {
		return 0, err
	}
	if _, err := sw.w.Write(line); err != nil {
		return 0, err
	}
	if _, err := sw.w.Write([]byte("\n\n")); err != nil {
		return 0, err
	}
	if sw.f != nil {
		sw.f.Flush()
	}
	return len(p), nil
}

package jobd

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// walLines joins WAL records into file contents (helper for the seed
// corpus below).
func walLines(lines ...string) []byte {
	return []byte(strings.Join(lines, "\n") + "\n")
}

// FuzzReplay feeds arbitrary bytes to the write-ahead log replay path.
// The contract under fuzzing: Open must never panic, and whenever it
// succeeds the reconstructed job table must be internally consistent —
// unique ids, valid non-running states, cell indices in range — and the
// (possibly tail-truncated) file must replay to the same table on a
// second Open, stay appendable, and replay the appended record too.
func FuzzReplay(f *testing.F) {
	job := `{"rec":"job","id":"j1","seq":1,"spec":{"type":"array","seed":7,"cells":4}}`
	runJob := `{"rec":"job","id":"j2","seq":2,"spec":{"type":"run","seed":1}}`
	state := `{"rec":"state","id":"j1","state":"running"}`
	cell := `{"rec":"cell","id":"j1","cell":{"index":2,"trap_count":3,"errors":1,"slow":0,"failed":false}}`
	result := `{"rec":"result","id":"j1","summary":{"num_failed":1}}`

	// Well-formed log.
	f.Add(walLines(job, state, cell, result))
	// Torn tail: final line has no newline (must be truncated away).
	f.Add([]byte(job + "\n" + state + "\n" + `{"rec":"cell","id":"j1","ce`))
	// Corrupt JSON mid-file (must be rejected, not panic).
	f.Add(walLines(job, `{"rec":"state","id":"j1",`, cell))
	// Duplicate job ids and records for unknown jobs.
	f.Add(walLines(job, job))
	f.Add(walLines(state, cell, result))
	// Out-of-order: lifecycle records before the submission.
	f.Add(walLines(state, job, cell))
	// Duplicate cell checkpoints and out-of-range indices.
	f.Add(walLines(job, cell, cell, `{"rec":"cell","id":"j1","cell":{"index":99}}`))
	// Unknown record kind, empty and blank-line-only files.
	f.Add(walLines(`{"rec":"wat","id":"x"}`))
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add(walLines(job, runJob, state, `{"rec":"state","id":"j2","state":"done"}`))
	// Running job at crash: must come back queued.
	f.Add(walLines(job, state))
	// Huge/odd sequence numbers and deep JSON noise.
	f.Add(walLines(`{"rec":"job","id":"j3","seq":18446744073709551615,"spec":{"type":"run","seed":0}}`))
	f.Add([]byte(`{"rec":[[[[{}]]]],"id":{"a":1}}` + "\n"))
	f.Add([]byte("\x00\x01\x02garbage\nmore\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("writing corpus file: %v", err)
		}
		st, jobs, maxSeq, err := Open(path)
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		checkConsistent(t, jobs, maxSeq)
		if err := st.Close(); err != nil {
			t.Fatalf("closing store: %v", err)
		}

		// Open truncated the torn tail (if any), so a second replay must
		// accept the file and rebuild the identical table.
		st2, jobs2, maxSeq2, err := Open(path)
		if err != nil {
			t.Fatalf("reopen after successful open failed: %v", err)
		}
		if len(jobs2) != len(jobs) || maxSeq2 != maxSeq {
			t.Fatalf("replay not stable: %d jobs/seq %d, then %d jobs/seq %d",
				len(jobs), maxSeq, len(jobs2), maxSeq2)
		}
		for i := range jobs {
			if jobs[i].ID != jobs2[i].ID || jobs[i].State != jobs2[i].State || len(jobs[i].cells) != len(jobs2[i].cells) {
				t.Fatalf("replay not stable at job %d: %+v vs %+v", i, jobs[i], jobs2[i])
			}
		}

		// The store must stay appendable, and the appended record must
		// replay (the WAL grows, it never wedges).
		if len(jobs2) > 0 {
			if err := st2.AppendState(jobs2[0].ID, StateCanceled, "fuzz"); err != nil {
				t.Fatalf("append after replay: %v", err)
			}
		}
		if err := st2.Close(); err != nil {
			t.Fatalf("closing store: %v", err)
		}
		st3, jobs3, _, err := Open(path)
		if err != nil {
			t.Fatalf("replay after append failed: %v", err)
		}
		if len(jobs2) > 0 && jobs3[0].State != StateCanceled {
			t.Fatalf("appended state did not replay: %v", jobs3[0].State)
		}
		if err := st3.Close(); err != nil {
			t.Fatalf("closing store: %v", err)
		}
	})
}

// checkConsistent asserts the replayed job table invariants.
func checkConsistent(t *testing.T, jobs []*Job, maxSeq uint64) {
	t.Helper()
	seen := map[string]bool{}
	for _, j := range jobs {
		if j.ID == "" {
			t.Fatalf("replayed job with empty id")
		}
		if seen[j.ID] {
			t.Fatalf("duplicate job id %q survived replay", j.ID)
		}
		seen[j.ID] = true
		if !j.State.valid() {
			t.Fatalf("job %s replayed with invalid state %q", j.ID, j.State)
		}
		if j.State == StateRunning {
			t.Fatalf("job %s still running after replay (must normalise to queued)", j.ID)
		}
		if j.Seq > maxSeq {
			t.Fatalf("job %s seq %d exceeds reported max %d", j.ID, j.Seq, maxSeq)
		}
		if j.cells == nil {
			t.Fatalf("job %s replayed with nil cell map", j.ID)
		}
		for idx := range j.cells {
			if idx < 0 || (j.CellsTotal > 0 && idx >= j.CellsTotal) {
				t.Fatalf("job %s cell index %d outside [0,%d)", j.ID, idx, j.CellsTotal)
			}
		}
	}
}

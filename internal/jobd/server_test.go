package jobd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// newTestServer boots a scheduler + handler on an httptest server.
func newTestServer(t *testing.T) (*Scheduler, *httptest.Server) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, jobs, seq := mustOpen(t, path)
	s := New(st, jobs, seq, Options{MaxJobs: 1})
	s.Start()
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		s.Drain()
		srv.Close()
	})
	return s, srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore bareerr body close in the postJSON helper; the response bytes were already read
		resp.Body.Close()
	}()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore bareerr body close in the getJSON helper; the decode above carries any failure
		resp.Body.Close()
	}()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestServerSubmitPollResult(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/jobs",
		`{"type":"array","seed":42,"cells":3,"with_rtn":false}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.State != StateQueued {
		t.Fatalf("submit view %+v", v)
	}

	waitFor(t, "job to finish over HTTP", func() bool {
		var cur View
		getJSON(t, srv.URL+"/jobs/"+v.ID, &cur)
		return cur.State == StateDone
	})

	var result struct {
		ID      string       `json:"id"`
		Summary *Summary     `json:"summary"`
		Cells   []CellRecord `json:"cells"`
	}
	if resp := getJSON(t, srv.URL+"/jobs/"+v.ID+"/result", &result); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d", resp.StatusCode)
	}
	if result.Summary == nil || len(result.Cells) != 3 {
		t.Fatalf("result %+v", result)
	}
	for i, c := range result.Cells {
		if c.Index != i {
			t.Fatalf("cells not sorted: %v", result.Cells)
		}
	}

	var list []View
	getJSON(t, srv.URL+"/jobs", &list)
	if len(list) != 1 || list[0].ID != v.ID {
		t.Fatalf("list %+v", list)
	}
}

func TestServerValidationAndRouting(t *testing.T) {
	_, srv := newTestServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`{"type":"array","cells":0}`, http.StatusBadRequest},
		{`{"type":"mystery"}`, http.StatusBadRequest},
		{`{"type":"array","cells":1,"bogus_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if resp, body := postJSON(t, srv.URL+"/jobs", c.body); resp.StatusCode != c.want {
			t.Fatalf("submit %q: %d %s, want %d", c.body, resp.StatusCode, body, c.want)
		}
	}
	if resp := getJSON(t, srv.URL+"/jobs/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/jobs/nope/result", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing result: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/jobs/nope/cancel", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing cancel: %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	// The obs surface is mounted on the same mux.
	if resp := getJSON(t, srv.URL+"/metrics", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
}

func TestServerResultConflictBeforeDone(t *testing.T) {
	s, srv := newTestServer(t)
	// Submit directly while no worker can pick it up mid-assert is racy;
	// instead park a job by cancelling it and check result 409.
	v, err := s.Submit(arraySpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to leave queued", func() bool {
		cur, _ := s.Get(v.ID)
		return cur.State != StateQueued
	})
	waitFor(t, "terminal state", func() bool {
		cur, _ := s.Get(v.ID)
		return cur.State.Terminal()
	})
	cur, _ := s.Get(v.ID)
	if cur.State == StateDone {
		return // finished; the 409 path is covered by the canceled case below
	}
	if resp := getJSON(t, srv.URL+"/jobs/"+v.ID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of %s job: %d, want 409", cur.State, resp.StatusCode)
	}
}

func TestServerEventStreamNDJSON(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/jobs",
		`{"type":"array","seed":9,"cells":2,"with_rtn":false}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}

	stream, err := http.Get(srv.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore bareerr closing the NDJSON event stream after the assertions completed
		stream.Body.Close()
	}()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sawSnapshot := false
	sawDone := false
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		var ev struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("stream line %q: %v", line, err)
		}
		var st struct {
			State State `json:"state"`
		}
		if err := json.Unmarshal([]byte(line), &st); err != nil {
			t.Fatal(err)
		}
		switch ev.Event {
		case "jobd.snapshot":
			sawSnapshot = true
			// A snapshot taken after the job already finished is the
			// only event a late subscriber sees.
			if st.State == StateDone {
				sawDone = true
			}
		case "jobd.state":
			if st.State == StateDone {
				sawDone = true
			}
		}
	}
	// The hub closes the stream when the job finishes, ending the scan.
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSnapshot {
		t.Fatal("stream carried no snapshot event")
	}
	if !sawDone {
		t.Fatal("stream ended without a done state event")
	}
}

func TestServerEventStreamSSE(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/jobs",
		`{"type":"array","seed":10,"cells":2,"with_rtn":false}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	stream, err := http.Get(srv.URL + "/jobs/" + v.ID + "/events?format=sse")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore bareerr closing the SSE event stream after the assertions completed
		stream.Body.Close()
	}()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	frames := 0
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("non-SSE line %q", line)
		}
		var ev struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("frame %q: %v", data, err)
		}
		frames++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if frames == 0 {
		t.Fatal("SSE stream carried no frames")
	}
}

func TestServerEventsForFinishedJobCloseImmediately(t *testing.T) {
	s, srv := newTestServer(t)
	v, err := s.Submit(arraySpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool {
		cur, _ := s.Get(v.ID)
		return cur.State == StateDone
	})
	stream, err := http.Get(srv.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore bareerr closing the finished-job event stream; EOF was the assertion itself
		stream.Body.Close()
	}()
	// Only the snapshot arrives, then EOF — the handler must not hang.
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(stream.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "jobd.snapshot") {
		t.Fatalf("finished-job stream %q lacks snapshot", buf.String())
	}
}

func TestServerRunJob(t *testing.T) {
	if testing.Short() {
		t.Skip("full methodology run is not short")
	}
	_, srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/jobs", `{"type":"run","seed":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "run job to finish", func() bool {
		var cur View
		getJSON(t, srv.URL+"/jobs/"+v.ID, &cur)
		return cur.State.Terminal()
	})
	var cur View
	getJSON(t, srv.URL+"/jobs/"+v.ID, &cur)
	if cur.State != StateDone {
		t.Fatalf("run job ended %s (%s)", cur.State, cur.Error)
	}
	if cur.Result == nil {
		t.Fatal("run job has no result summary")
	}
}

func TestServerHealthzReportsDraining(t *testing.T) {
	s, srv := newTestServer(t)
	s.Drain()
	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/jobs", fmt.Sprintf(`{"type":"array","seed":1,"cells":1}`)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
}

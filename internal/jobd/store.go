package jobd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"samurai/internal/montecarlo"
)

// CellRecord is the JSON-safe checkpoint of one completed array cell.
// It mirrors montecarlo.CellOutcome minus the error field: only cells
// that finished without a simulation error are checkpointed, so the
// round trip CellOutcome → CellRecord → CellOutcome is lossless —
// including bit-exact float64 fields, because encoding/json emits the
// shortest representation that parses back to the identical bits.
type CellRecord struct {
	Index     int                `json:"index"`
	VtShift   map[string]float64 `json:"vt_shift,omitempty"`
	TrapCount int                `json:"trap_count"`
	Errors    int                `json:"errors"`
	Slow      int                `json:"slow"`
	Failed    bool               `json:"failed"`
	// LogLR and GlitchDepth carry the rare-event fields of tilted
	// sweeps; both are exactly 0 for plain array cells, so the omitempty
	// keeps existing WALs and their golden fixtures byte-identical.
	LogLR       float64 `json:"log_lr,omitempty"`
	GlitchDepth float64 `json:"glitch_depth,omitempty"`
}

// NewCellRecord converts a completed outcome into its checkpoint form.
// It panics if the outcome carries a simulation error — such cells must
// never reach the store.
func NewCellRecord(o montecarlo.CellOutcome) CellRecord {
	if o.Err != nil {
		panic("jobd: checkpointing a failed cell outcome")
	}
	return CellRecord{
		Index:       o.Index,
		VtShift:     o.VtShift,
		TrapCount:   o.TrapCount,
		Errors:      o.Errors,
		Slow:        o.Slow,
		Failed:      o.Failed,
		LogLR:       o.LogLR,
		GlitchDepth: o.GlitchDepth,
	}
}

// Outcome converts the checkpoint back into the montecarlo outcome.
func (c CellRecord) Outcome() montecarlo.CellOutcome {
	return montecarlo.CellOutcome{
		Index:       c.Index,
		VtShift:     c.VtShift,
		TrapCount:   c.TrapCount,
		Errors:      c.Errors,
		Slow:        c.Slow,
		Failed:      c.Failed,
		LogLR:       c.LogLR,
		GlitchDepth: c.GlitchDepth,
	}
}

// record is one WAL line. Rec selects which optional fields are set.
type record struct {
	// Rec is the record kind: "job" (submission), "state" (lifecycle
	// transition), "cell" (checkpoint) or "result" (final aggregates).
	Rec  string `json:"rec"`
	ID   string `json:"id"`
	Seq  uint64 `json:"seq,omitempty"`
	Spec *Spec  `json:"spec,omitempty"`
	// State accompanies "state" records; Error the failed transition.
	State State  `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Cell accompanies "cell" records.
	Cell *CellRecord `json:"cell,omitempty"`
	// Summary accompanies "result" records.
	Summary *Summary `json:"summary,omitempty"`
}

// Store is the append-only JSONL write-ahead log backing samuraid.
// Records are committed by their trailing newline plus fsync; a torn
// final line (crash mid-append) is detected and truncated on Open, so
// at most the single record being written during a crash is lost — for
// a sweep that means re-simulating one cell, never corrupting history.
type Store struct {
	mu   sync.Mutex
	path string
	f    *os.File
	// nosync disables the per-append fsync (tests only; the daemon
	// always syncs).
	nosync bool
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Open opens (or creates) the store at path, replays its records and
// returns the reconstructed jobs in submission order along with the
// highest job sequence number seen. Jobs that were running when the
// previous process died are returned in StateQueued with their
// checkpointed cells attached — ready to resume.
func Open(path string) (*Store, []*Job, uint64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("jobd: opening store: %w", err)
	}
	jobs, maxSeq, validLen, err := replay(f)
	if err != nil {
		//lint:ignore bareerr the replay error is the one worth reporting; close is best-effort cleanup
		f.Close()
		return nil, nil, 0, err
	}
	// Drop a torn final line so the next append starts a fresh record.
	if err := f.Truncate(validLen); err != nil {
		//lint:ignore bareerr the truncate error is the one worth reporting; close is best-effort cleanup
		f.Close()
		return nil, nil, 0, fmt.Errorf("jobd: truncating torn store tail: %w", err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		//lint:ignore bareerr the seek error is the one worth reporting; close is best-effort cleanup
		f.Close()
		return nil, nil, 0, fmt.Errorf("jobd: seeking store tail: %w", err)
	}
	normalizeReplayed(jobs)
	return &Store{path: path, f: f}, jobs, maxSeq, nil
}

// replay scans the WAL and rebuilds the job table. It returns the byte
// length of the valid prefix; a final line without a terminating
// newline is treated as torn (even if it parses — it may be a
// truncated numeric literal) and excluded.
func replay(f *os.File) (jobs []*Job, maxSeq uint64, validLen int64, err error) {
	byID := map[string]*Job{}
	r := bufio.NewReader(f)
	var offset int64
	for lineNo := 1; ; lineNo++ {
		line, rerr := r.ReadString('\n')
		if rerr == io.EOF {
			// No trailing newline: the final append was torn.
			return jobs, maxSeq, offset, nil
		}
		if rerr != nil {
			return nil, 0, 0, fmt.Errorf("jobd: reading store: %w", rerr)
		}
		lineLen := int64(len(line))
		if strings.TrimSpace(line) == "" {
			offset += lineLen
			continue
		}
		var rec record
		if jerr := json.Unmarshal([]byte(line), &rec); jerr != nil {
			return nil, 0, 0, fmt.Errorf("jobd: store line %d corrupt: %w", lineNo, jerr)
		}
		if aerr := apply(byID, &jobs, rec); aerr != nil {
			return nil, 0, 0, fmt.Errorf("jobd: store line %d: %w", lineNo, aerr)
		}
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		offset += lineLen
	}
}

// apply folds one WAL record into the job table.
func apply(byID map[string]*Job, jobs *[]*Job, rec record) error {
	switch rec.Rec {
	case "job":
		if rec.Spec == nil || rec.ID == "" {
			return fmt.Errorf("job record missing id or spec")
		}
		if _, dup := byID[rec.ID]; dup {
			return fmt.Errorf("duplicate job id %q", rec.ID)
		}
		j := &Job{
			ID:    rec.ID,
			Seq:   rec.Seq,
			Spec:  *rec.Spec,
			State: StateQueued,
			cells: map[int]CellRecord{},
		}
		if ArrayLike(rec.Spec.Type) {
			j.CellsTotal = rec.Spec.Cells
		}
		byID[rec.ID] = j
		*jobs = append(*jobs, j)
	case "state":
		j, ok := byID[rec.ID]
		if !ok {
			return fmt.Errorf("state record for unknown job %q", rec.ID)
		}
		if !rec.State.valid() {
			return fmt.Errorf("unknown state %q", rec.State)
		}
		j.State = rec.State
		j.Error = rec.Error
	case "cell":
		j, ok := byID[rec.ID]
		if !ok {
			return fmt.Errorf("cell record for unknown job %q", rec.ID)
		}
		if rec.Cell == nil {
			return fmt.Errorf("cell record without a cell")
		}
		if rec.Cell.Index < 0 || (j.CellsTotal > 0 && rec.Cell.Index >= j.CellsTotal) {
			return fmt.Errorf("cell index %d outside [0,%d)", rec.Cell.Index, j.CellsTotal)
		}
		j.cells[rec.Cell.Index] = *rec.Cell
	case "result":
		j, ok := byID[rec.ID]
		if !ok {
			return fmt.Errorf("result record for unknown job %q", rec.ID)
		}
		if rec.Summary == nil {
			return fmt.Errorf("result record without a summary")
		}
		sum := *rec.Summary
		j.Result = &sum
	default:
		return fmt.Errorf("unknown record kind %q", rec.Rec)
	}
	return nil
}

// normalizeReplayed finalises replayed jobs for scheduling: a job that
// was mid-flight (running) when the previous process died goes back to
// queued so the scheduler resumes it. Exported logic lives here so
// tests can exercise it without a Scheduler.
func normalizeReplayed(jobs []*Job) {
	for _, j := range jobs {
		if j.State == StateRunning {
			j.State = StateQueued
		}
	}
}

// append writes one record, newline-terminated, and fsyncs so the
// record survives a process or OS crash before the caller proceeds.
func (s *Store) append(rec record) error {
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobd: encoding store record: %w", err)
	}
	buf = append(buf, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("jobd: store is closed")
	}
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("jobd: appending store record: %w", err)
	}
	if s.nosync {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("jobd: syncing store: %w", err)
	}
	return nil
}

// AppendJob persists a job submission.
func (s *Store) AppendJob(j *Job) error {
	spec := j.Spec
	return s.append(record{Rec: "job", ID: j.ID, Seq: j.Seq, Spec: &spec})
}

// AppendState persists a lifecycle transition.
func (s *Store) AppendState(id string, st State, errMsg string) error {
	return s.append(record{Rec: "state", ID: id, State: st, Error: errMsg})
}

// AppendCell checkpoints one completed cell. The VtShift floats are
// finite by construction (normal variates); reject anything non-finite
// rather than writing a record that cannot round-trip.
func (s *Store) AppendCell(id string, c CellRecord) error {
	for k, v := range c.VtShift {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("jobd: cell %d %s shift %v is not JSON-representable", c.Index, k, v)
		}
	}
	if math.IsNaN(c.LogLR) || math.IsInf(c.LogLR, 0) {
		return fmt.Errorf("jobd: cell %d log-LR %v is not JSON-representable", c.Index, c.LogLR)
	}
	if math.IsNaN(c.GlitchDepth) || math.IsInf(c.GlitchDepth, 0) {
		return fmt.Errorf("jobd: cell %d glitch depth %v is not JSON-representable", c.Index, c.GlitchDepth)
	}
	return s.append(record{Rec: "cell", ID: id, Cell: &c})
}

// AppendResult persists a finished job's aggregates.
func (s *Store) AppendResult(id string, sum Summary) error {
	return s.append(record{Rec: "result", ID: id, Summary: &sum})
}

// Compact rewrites the WAL as its minimal replay-equivalent snapshot:
// one job record, the sorted cell checkpoints, the latest non-queued
// state and the result (if any) per job — dropping every intermediate
// lifecycle transition a long-lived daemon accumulates across
// drain/resume cycles. The snapshot is written to a temp file in the
// store's directory, fsynced, and atomically renamed over the log, so
// a crash at any point leaves either the old or the new WAL, never a
// mix. jobs must be the full replayed table in submission order (as
// returned by Open) and must not be mutated concurrently — call this
// between Open and handing the jobs to a scheduler or coordinator.
func (s *Store) Compact(jobs []*Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("jobd: store is closed")
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("jobd: creating compaction snapshot: %w", err)
	}
	//lint:ignore bareerr best-effort temp cleanup; a no-op once the snapshot is renamed into place
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	writeRec := func(rec record) error {
		buf, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("jobd: encoding snapshot record: %w", err)
		}
		buf = append(buf, '\n')
		_, err = w.Write(buf)
		return err
	}
	// One closure for the whole snapshot body keeps exactly one
	// abandon-the-temp-file error path below.
	writeSnapshot := func() error {
		for _, j := range jobs {
			spec := j.Spec
			if err := writeRec(record{Rec: "job", ID: j.ID, Seq: j.Seq, Spec: &spec}); err != nil {
				return err
			}
			for _, c := range j.cellRecords() {
				c := c
				if err := writeRec(record{Rec: "cell", ID: j.ID, Cell: &c}); err != nil {
					return err
				}
			}
			// Queued is the replay default (normalizeReplayed also folds a
			// torn "running" back into it), so only other states need a line.
			if j.State != StateQueued && j.State != StateRunning {
				if err := writeRec(record{Rec: "state", ID: j.ID, State: j.State, Error: j.Error}); err != nil {
					return err
				}
			}
			if j.Result != nil {
				sum := *j.Result
				if err := writeRec(record{Rec: "result", ID: j.ID, Summary: &sum}); err != nil {
					return err
				}
			}
		}
		if err := w.Flush(); err != nil {
			return fmt.Errorf("jobd: flushing compaction snapshot: %w", err)
		}
		if err := tmp.Sync(); err != nil {
			return fmt.Errorf("jobd: syncing compaction snapshot: %w", err)
		}
		return nil
	}
	if err := writeSnapshot(); err != nil {
		//lint:ignore bareerr the snapshot write error is the one worth reporting; the temp file is abandoned
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobd: closing compaction snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("jobd: installing compaction snapshot: %w", err)
	}
	// The rename is durable once the directory entry is synced.
	if d, err := os.Open(dir); err == nil {
		//lint:ignore bareerr directory fsync is best-effort extra durability; the data file itself is synced
		d.Sync()
		//lint:ignore bareerr closing a read-only directory handle cannot lose data
		d.Close()
	}
	old := s.f
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobd: reopening compacted store: %w", err)
	}
	s.f = f
	if err := old.Close(); err != nil {
		return fmt.Errorf("jobd: closing pre-compaction store handle: %w", err)
	}
	return nil
}

// Close syncs and closes the backing file. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	f := s.f
	s.f = nil
	if err := f.Sync(); err != nil {
		//lint:ignore bareerr the sync error is the one worth reporting; close is best-effort cleanup
		f.Close()
		return fmt.Errorf("jobd: syncing store on close: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("jobd: closing store: %w", err)
	}
	return nil
}

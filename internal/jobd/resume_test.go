package jobd

import (
	"context"
	"math"
	"path/filepath"
	"testing"
	"time"

	"samurai"
	"samurai/internal/montecarlo"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// arraySpec is a real-but-cheap sweep: variation-only (no RTN pass), so
// each cell is a single clean transient.
func arraySpec(cells int) Spec {
	withRTN := false
	return Spec{Type: TypeArray, Seed: 1234, Cells: cells, WithRTN: &withRTN, Workers: 2}
}

// directBaseline runs the spec's sweep uninterrupted, without any jobd
// machinery — the golden reference.
func directBaseline(t *testing.T, spec Spec) *montecarlo.ArrayResult {
	t.Helper()
	cfg, err := spec.ArrayConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := montecarlo.RunArrayCtx(context.Background(), cfg, samurai.ArrayRunnerCtx(), montecarlo.ArrayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertCellsMatchBaseline compares a job's checkpointed cells against
// the baseline outcomes bit-for-bit.
func assertCellsMatchBaseline(t *testing.T, cells []CellRecord, baseline *montecarlo.ArrayResult) {
	t.Helper()
	if len(cells) != len(baseline.Outcomes) {
		t.Fatalf("job checkpointed %d cells, baseline has %d", len(cells), len(baseline.Outcomes))
	}
	for i, c := range cells {
		want := baseline.Outcomes[i]
		if c.Index != want.Index || c.TrapCount != want.TrapCount ||
			c.Errors != want.Errors || c.Slow != want.Slow || c.Failed != want.Failed {
			t.Fatalf("cell %d differs from baseline: got %+v want %+v", i, c, want)
		}
		for k, wv := range want.VtShift {
			if math.Float64bits(c.VtShift[k]) != math.Float64bits(wv) {
				t.Fatalf("cell %d VtShift[%q] not bit-identical after store round trip", i, k)
			}
		}
	}
}

// TestSchedulerDrainResumeBitIdentical is the end-to-end resume golden
// test: a sweep is interrupted by a graceful drain (the SIGTERM path),
// the store is reopened in a "new process", the job resumes from its
// checkpoints, and the final per-cell results are bit-identical to an
// uninterrupted run of the same spec.
func TestSchedulerDrainResumeBitIdentical(t *testing.T) {
	spec := arraySpec(8)
	baseline := directBaseline(t, spec)

	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, jobs, seq := mustOpen(t, path)
	s := New(st, jobs, seq, Options{MaxJobs: 1})
	s.Start()
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Let some cells checkpoint, then drain mid-sweep.
	waitFor(t, "first checkpoints", func() bool {
		cur, _ := s.Get(v.ID)
		return cur.CellsDone >= 2
	})
	s.Drain()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	mid, _ := s.Get(v.ID)
	if mid.State == StateDone {
		// The sweep beat the drain; determinism is still checked below,
		// but the resume path wasn't exercised — make the race visible.
		t.Log("sweep finished before drain; resume path not hit this run")
	} else if mid.State != StateQueued {
		t.Fatalf("drained job is %s, want queued", mid.State)
	}

	// "Restart": replay the store into a fresh scheduler.
	st2, replayed, seq2 := mustOpen(t, path)
	if len(replayed) != 1 {
		t.Fatalf("replayed %d jobs", len(replayed))
	}
	s2 := New(st2, replayed, seq2, Options{MaxJobs: 1})
	s2.Start()
	defer s2.Drain()

	waitFor(t, "resumed job to finish", func() bool {
		cur, ok := s2.Get(v.ID)
		return ok && cur.State == StateDone
	})
	cur, _ := s2.Get(v.ID)
	if mid.State == StateQueued && cur.Resumes != 1 {
		t.Fatalf("resume count = %d, want 1", cur.Resumes)
	}

	cells, _ := s2.CellRecords(v.ID)
	assertCellsMatchBaseline(t, cells, baseline)
	if cur.Result == nil {
		t.Fatal("finished job has no result")
	}
	if cur.Result.NumFailed != baseline.NumFailed ||
		cur.Result.ErrorRate != baseline.ErrorRate ||
		cur.Result.MeanTraps != baseline.MeanTraps {
		t.Fatalf("aggregates differ from baseline: %+v vs {%d %g %g}",
			cur.Result, baseline.NumFailed, baseline.ErrorRate, baseline.MeanTraps)
	}
}

// TestSchedulerRepeatedKillsStayBitIdentical drains repeatedly — every
// restart interrupts the sweep again at a different depth — and the
// final result must still match the uninterrupted baseline exactly.
func TestSchedulerRepeatedKillsStayBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-restart sweep is not short")
	}
	spec := arraySpec(10)
	baseline := directBaseline(t, spec)
	path := filepath.Join(t.TempDir(), "store.jsonl")

	st, jobs, seq := mustOpen(t, path)
	s := New(st, jobs, seq, Options{MaxJobs: 1})
	s.Start()
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id := v.ID

	for restart := 0; restart < 4; restart++ {
		cur, ok := s.Get(id)
		if !ok {
			t.Fatalf("restart %d lost job %s", restart, id)
		}
		if cur.State == StateDone {
			break
		}
		// Interrupt once at least one more cell has checkpointed.
		progressed := cur.CellsDone
		waitFor(t, "one more checkpoint or done", func() bool {
			c, _ := s.Get(id)
			return c.State == StateDone || c.CellsDone > progressed
		})
		s.Drain()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st, jobs, seq = mustOpen(t, path)
		s = New(st, jobs, seq, Options{MaxJobs: 1})
		s.Start()
	}
	defer s.Drain()
	waitFor(t, "job to finish across restarts", func() bool {
		c, ok := s.Get(id)
		return ok && c.State == StateDone
	})
	cells, _ := s.CellRecords(id)
	assertCellsMatchBaseline(t, cells, baseline)
}

func TestSchedulerCancelQueuedJob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, jobs, seq := mustOpen(t, path)
	// No Start: the job stays queued forever, so Cancel hits the queued
	// branch deterministically.
	s := New(st, jobs, seq, Options{})
	v, err := s.Submit(arraySpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	cur, _ := s.Get(v.ID)
	if cur.State != StateCanceled {
		t.Fatalf("state %s, want canceled", cur.State)
	}
	if err := s.Cancel(v.ID); err == nil {
		t.Fatal("second cancel accepted")
	}
}

func TestSchedulerRejectsBadSpecs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, jobs, seq := mustOpen(t, path)
	s := New(st, jobs, seq, Options{})
	bad := []Spec{
		{Type: "mystery"},
		{Type: TypeArray, Cells: 0},
		{Type: TypeRun, Cells: 5},
		{Type: TypeArray, Cells: 2, Tech: "7nm"},
		{Type: TypeArray, Cells: 2, Pattern: "01x1"},
	}
	for _, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Fatalf("spec %+v accepted", spec)
		}
	}
}

func TestSchedulerSubmitAfterDrainRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, jobs, seq := mustOpen(t, path)
	s := New(st, jobs, seq, Options{})
	s.Start()
	s.Drain()
	if _, err := s.Submit(arraySpec(2)); err != ErrDraining {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
}

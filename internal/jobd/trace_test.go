package jobd

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"samurai/internal/obs"
	"samurai/internal/obs/trace"
	"samurai/internal/sram"
)

// closeBody closes a response body, failing the test on error.
func closeBody(t *testing.T, resp *http.Response) {
	t.Helper()
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("closing response body: %v", err)
	}
}

// submitAndFinish posts a small array job and waits for it to be done.
func submitAndFinish(t *testing.T, s *Scheduler, srvURL string) string {
	t.Helper()
	resp, body := postJSON(t, srvURL+"/jobs",
		`{"type":"array","seed":42,"cells":2,"with_rtn":false}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to finish", func() bool {
		cur, ok := s.Get(v.ID)
		return ok && cur.State == StateDone
	})
	return v.ID
}

func TestServerTraceEndpoint(t *testing.T) {
	s, srv := newTestServer(t)
	id := submitAndFinish(t, s, srv.URL)

	// Default format: Chrome/Perfetto trace_event JSON.
	resp, err := http.Get(srv.URL + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace endpoint is not trace_event JSON: %v", err)
	}
	closeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d", resp.StatusCode)
	}
	if len(doc.TraceEvents) < 2 || doc.TraceEvents[0].Ph != "M" {
		t.Fatalf("trace events malformed: %+v", doc.TraceEvents)
	}
	var sawCell bool
	for _, ev := range doc.TraceEvents[1:] {
		if ev.Ph != "X" {
			t.Fatalf("non-complete event %+v", ev)
		}
		if strings.HasSuffix(ev.Name, "/cell") {
			sawCell = true
		}
	}
	if !sawCell {
		t.Fatalf("no per-cell span in %+v", doc.TraceEvents)
	}

	// JSONL format: header line carries the trace ID, spans follow.
	resp, err = http.Get(srv.URL + "/jobs/" + id + "/trace?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("jsonl line %d invalid: %v", lines, err)
		}
		if lines == 0 {
			if _, ok := obj["trace_id"]; !ok {
				t.Fatalf("jsonl header lacks trace_id: %v", obj)
			}
		}
		lines++
	}
	closeBody(t, resp)
	if lines < 3 {
		t.Fatalf("jsonl export has %d lines, want header + spans", lines)
	}

	// Unknown format is a client error; unknown job is a 404.
	if resp := getJSON(t, srv.URL+"/jobs/"+id+"/trace?format=pprof", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format: %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/jobs/job-999999/trace", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d, want 404", resp.StatusCode)
	}
}

func TestServerFlightRecorderEndpoint(t *testing.T) {
	s, srv := newTestServer(t)
	submitAndFinish(t, s, srv.URL)

	resp, err := http.Get(srv.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines, headers int
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("flightrecorder line %d invalid: %v", lines, err)
		}
		if _, ok := obj["job"]; ok {
			headers++
		}
		lines++
	}
	closeBody(t, resp)
	if headers != 1 || lines < 2 {
		t.Fatalf("flightrecorder dump: %d header(s), %d line(s); want one job with notes", headers, lines)
	}
}

func TestServerResultCarriesProvenance(t *testing.T) {
	s, srv := newTestServer(t)
	id := submitAndFinish(t, s, srv.URL)

	var result struct {
		RunInfo obs.RunInfo `json:"run_info"`
	}
	if resp := getJSON(t, srv.URL+"/jobs/"+id+"/result", &result); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d", resp.StatusCode)
	}
	ri := result.RunInfo
	if ri.GoVersion == "" || ri.OS == "" || ri.Arch == "" || ri.NumCPU < 1 {
		t.Fatalf("run_info missing build facts: %+v", ri)
	}
	if ri.Seed != 42 {
		t.Fatalf("run_info seed = %d, want 42", ri.Seed)
	}
	if len(ri.SpecHash) != 16 {
		t.Fatalf("run_info spec_hash %q, want 16 hex chars", ri.SpecHash)
	}
	if len(ri.LintWaivers) == 0 {
		t.Fatalf("run_info lacks the lint-waiver rule set: %+v", ri)
	}
}

func TestSpecTraceIDDeterministic(t *testing.T) {
	a, b := arraySpec(4), arraySpec(4)
	if a.TraceID() != b.TraceID() {
		t.Fatal("identical specs produced different trace IDs")
	}
	c := arraySpec(4)
	c.Seed = 99
	if a.TraceID() == c.TraceID() {
		t.Fatal("different seeds produced the same trace ID")
	}
	d := arraySpec(5)
	if a.TraceID() == d.TraceID() {
		t.Fatal("different cell counts produced the same trace ID")
	}
}

// TestJobMetricsCarryJobLabel pins the multi-tenant prerequisite: a
// job's throughput series is labelled with its job ID, so one /metrics
// exposition separates tenants.
func TestJobMetricsCarryJobLabel(t *testing.T) {
	s, srv := newTestServer(t)
	id := submitAndFinish(t, s, srv.URL)

	var b strings.Builder
	if err := obs.Default().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`samurai_jobd_job_cells_per_second{job=%q}`, id)
	if !strings.Contains(b.String(), want) {
		t.Fatalf("/metrics lacks the per-job series %s", want)
	}
}

// TestDumpFlightWritesJSONL covers the failure/retry/drain dump path
// directly: the recorder contents land next to the WAL as valid JSONL.
func TestDumpFlightWritesJSONL(t *testing.T) {
	dir := t.TempDir()
	st, jobs, seq := mustOpen(t, filepath.Join(dir, "store.jsonl"))
	s := New(st, jobs, seq, Options{})

	flight := trace.NewFlight(16)
	tr := trace.New(trace.ID(7, []byte("dump")), trace.Options{Flight: flight})
	tr.Event("jobd.retry", 3, 1, 0)
	tr.Event("jobd.cell", 4, 2, 8)
	s.dumpFlight("job-000042", tr, "failure")

	path := filepath.Join(dir, "job-000042-flight-failure.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("dump file not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump holds %d notes, want 2:\n%s", len(lines), data)
	}
	for i, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("dump line %d invalid JSON: %v", i, err)
		}
	}

	// A tracer without a recorder dumps nothing and must not panic.
	bare := trace.New(1, trace.Options{})
	s.dumpFlight("job-000043", bare, "failure")
	if _, err := os.Stat(filepath.Join(dir, "job-000043-flight-failure.jsonl")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("recorderless tracer still wrote a dump file")
	}
}

// TestSchedulerFlightDumpOnDrain drains a job mid-sweep and expects
// the drain dump beside the WAL (skipped when the sweep wins the race
// and finishes first, mirroring the resume tests).
func TestSchedulerFlightDumpOnDrain(t *testing.T) {
	dir := t.TempDir()
	st, jobs, seq := mustOpen(t, filepath.Join(dir, "store.jsonl"))
	s := New(st, jobs, seq, Options{MaxJobs: 1})
	s.Start()
	v, err := s.Submit(arraySpec(8))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first checkpoints", func() bool {
		cur, _ := s.Get(v.ID)
		return cur.CellsDone >= 2
	})
	s.Drain()

	cur, _ := s.Get(v.ID)
	if cur.State == StateDone {
		t.Log("sweep finished before drain; dump path not hit this run")
		return
	}
	path := filepath.Join(dir, v.ID+"-flight-drain.jsonl")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no drain dump at %s: %v", path, err)
	}
}

// TestRetryRunnerNotifiesOnRetry pins the retry observability hook:
// every retried attempt is reported before the backoff sleep.
func TestRetryRunnerNotifiesOnRetry(t *testing.T) {
	fails := 2
	var calls []int
	run := func(ctx context.Context, cell sram.CellConfig, pattern sram.Pattern, scale float64, seed uint64) (int, int, int, error) {
		if fails > 0 {
			fails--
			return 0, 0, 0, errors.New("transient")
		}
		return 1, 2, 3, nil
	}
	wrapped := retryRunner(run, RetrySpec{Max: 3, BackoffMS: 1, MaxBackoffMS: 1},
		func(seed uint64, attempt int, err error) {
			if seed != 77 || err == nil {
				t.Errorf("onRetry(seed=%d, err=%v)", seed, err)
			}
			calls = append(calls, attempt)
		})
	nerr, slow, traps, err := wrapped(context.Background(), sram.CellConfig{}, sram.Pattern{}, 1, 77)
	if err != nil || nerr != 1 || slow != 2 || traps != 3 {
		t.Fatalf("wrapped runner = (%d,%d,%d,%v)", nerr, slow, traps, err)
	}
	if len(calls) != 2 {
		t.Fatalf("onRetry fired %d times, want 2 (attempts: %v)", len(calls), calls)
	}

	// Cancellation is never retried and never reported.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reported := false
	wrapped = retryRunner(
		func(ctx context.Context, cell sram.CellConfig, pattern sram.Pattern, scale float64, seed uint64) (int, int, int, error) {
			return 0, 0, 0, ctx.Err()
		},
		RetrySpec{Max: 3, BackoffMS: 1, MaxBackoffMS: 1},
		func(uint64, int, error) { reported = true })
	if _, _, _, err := wrapped(ctx, sram.CellConfig{}, sram.Pattern{}, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled runner returned %v", err)
	}
	if reported {
		t.Fatal("cancellation was reported as a retry")
	}
}

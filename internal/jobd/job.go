// Package jobd is samuraid's durable job layer: a JSON job model, an
// append-only JSONL write-ahead store, and a draining scheduler that
// executes methodology runs (samurai.Run) and Monte-Carlo array sweeps
// (montecarlo.RunArray) with cell-granular checkpoints.
//
// # Determinism under resume
//
// Every array cell's random stream is derived deterministically from
// the job seed (rng.Stream.Split by cell index), so a sweep that is
// interrupted — crash, SIGTERM drain, restart — and resumed from the
// store produces an ArrayResult bit-identical to an uninterrupted run
// with the same spec. The store only has to persist *which* cells
// finished and their outcomes; no generator state is checkpointed. The
// resume golden tests (resume_test.go and montecarlo's
// TestRunArrayCtxResume*) pin this property.
package jobd

import (
	"encoding/json"
	"fmt"
	"sort"

	"samurai"
	"samurai/internal/device"
	"samurai/internal/montecarlo"
	"samurai/internal/obs/trace"
	"samurai/internal/rareevent"
	"samurai/internal/sram"
)

// Job types accepted in Spec.Type.
const (
	TypeRun       = "run"        // one full two-pass methodology run
	TypeArray     = "array"      // Monte-Carlo array sweep
	TypeRareArray = "rare_array" // importance-sampled rare-event array sweep
)

// ArrayLike reports whether typ executes as a cell-sharded array sweep
// (plain or importance-sampled) — the shape the scheduler checkpoints
// cell by cell and the fabric shards into leases.
func ArrayLike(typ string) bool {
	return typ == TypeArray || typ == TypeRareArray
}

// State is a job lifecycle state.
type State string

// Job lifecycle: queued → running → {done, failed, canceled}; a drained
// running job moves back to queued and resumes after restart.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state ends the job's lifecycle.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// valid reports whether s is one of the known states (used by WAL
// replay to reject corrupt records early).
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// RetrySpec configures per-cell retry for transiently failing cells.
// Retrying is free of determinism hazards: a cell's outcome is a pure
// function of its seed, so a retry either reproduces the failure or
// yields the one true result.
type RetrySpec struct {
	// Max is the number of retries after the first attempt.
	Max int `json:"max,omitempty"`
	// BackoffMS is the initial backoff in milliseconds (default 100).
	BackoffMS int `json:"backoff_ms,omitempty"`
	// MaxBackoffMS caps the exponential backoff (default 2000).
	MaxBackoffMS int `json:"max_backoff_ms,omitempty"`
}

// withDefaults fills unset backoff parameters.
func (r RetrySpec) withDefaults() RetrySpec {
	if r.BackoffMS <= 0 {
		r.BackoffMS = 100
	}
	if r.MaxBackoffMS <= 0 {
		r.MaxBackoffMS = 2000
	}
	return r
}

// Spec is the submitted job description (the POST /jobs payload).
type Spec struct {
	// Type selects the workload: "run" or "array".
	Type string `json:"type"`
	// Tech names the technology node (default "90nm", matching
	// samurai.Config).
	Tech string `json:"tech,omitempty"`
	// VddFrac scales the node's nominal supply (default 1.0).
	VddFrac float64 `json:"vdd_frac,omitempty"`
	// Pattern is the bit string written each sweep, e.g. "110101001";
	// empty selects the paper's Fig 8 pattern.
	Pattern string `json:"pattern,omitempty"`
	// Seed drives all sampling; the whole job is a pure function of it.
	Seed uint64 `json:"seed"`
	// Scale multiplies RTN amplitudes (default 1).
	Scale float64 `json:"scale,omitempty"`
	// Cells is the array size (array jobs only).
	Cells int `json:"cells,omitempty"`
	// WithRTN disables the RTN pass when explicitly false (array jobs;
	// default true).
	WithRTN *bool `json:"with_rtn,omitempty"`
	// Workers bounds the per-job cell parallelism; 0 → GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Retry is the per-cell retry policy (array jobs).
	Retry RetrySpec `json:"retry,omitempty"`
	// TiltEV is the importance-sampling energy tilt in eV (rare_array
	// jobs only). 0 runs the untilted kernel — bit-identical to a plain
	// array sweep of the same seed, with every path weight exactly 1.
	TiltEV float64 `json:"tilt_ev,omitempty"`
}

// withDefaults normalises optional fields.
func (s Spec) withDefaults() Spec {
	if s.Tech == "" {
		s.Tech = "90nm"
	}
	if s.VddFrac == 0 {
		s.VddFrac = 1
	}
	if s.Scale == 0 {
		s.Scale = 1
	}
	s.Retry = s.Retry.withDefaults()
	return s
}

// Normalized returns the spec with optional fields defaulted — the
// canonical form stored in the job table. Submitting the normalized
// spec anywhere (scheduler or fabric coordinator) yields the same
// TraceID, so the same sweep is diffable across deployments.
func (s Spec) Normalized() Spec { return s.withDefaults() }

// Validate checks a (defaulted) spec for consistency.
func (s Spec) Validate() error {
	switch s.Type {
	case TypeRun:
		if s.Cells != 0 {
			return fmt.Errorf("jobd: %q jobs take no cell count", TypeRun)
		}
	case TypeArray, TypeRareArray:
		if s.Cells <= 0 {
			return fmt.Errorf("jobd: %q jobs need a positive cell count, got %d", s.Type, s.Cells)
		}
	default:
		return fmt.Errorf("jobd: unknown job type %q (want %q, %q or %q)", s.Type, TypeRun, TypeArray, TypeRareArray)
	}
	if s.TiltEV != 0 && s.Type != TypeRareArray {
		return fmt.Errorf("jobd: tilt_ev is only meaningful on %q jobs", TypeRareArray)
	}
	if s.Type == TypeRareArray {
		if s.WithRTN != nil && !*s.WithRTN {
			return fmt.Errorf("jobd: %q jobs always run the RTN pass; with_rtn=false is contradictory", TypeRareArray)
		}
		if s.TiltEV < -2 || s.TiltEV > 2 {
			return fmt.Errorf("jobd: tilt_ev %g out of [-2, 2] eV", s.TiltEV)
		}
	}
	if _, ok := device.NodeOK(s.Tech); !ok {
		return fmt.Errorf("jobd: unknown technology node %q", s.Tech)
	}
	if s.VddFrac <= 0 || s.VddFrac > 2 {
		return fmt.Errorf("jobd: vdd_frac %g out of (0, 2]", s.VddFrac)
	}
	if s.Scale < 0 {
		return fmt.Errorf("jobd: negative RTN scale %g", s.Scale)
	}
	for _, c := range s.Pattern {
		if c != '0' && c != '1' {
			return fmt.Errorf("jobd: pattern must be a string of 0s and 1s, got %q", s.Pattern)
		}
	}
	if s.Retry.Max < 0 {
		return fmt.Errorf("jobd: negative retry count %d", s.Retry.Max)
	}
	return nil
}

// pattern builds the write pattern for the spec's technology.
func (s Spec) pattern(vdd float64) sram.Pattern {
	if s.Pattern == "" {
		return sram.Fig8Pattern(vdd)
	}
	bits := make([]int, 0, len(s.Pattern))
	for _, c := range s.Pattern {
		bit := 0
		if c == '1' {
			bit = 1
		}
		bits = append(bits, bit)
	}
	return sram.Pattern{Bits: bits, Timing: sram.DefaultTiming(), Vdd: vdd}
}

// ArrayConfig translates an array spec into the montecarlo config it
// executes. The translation is deterministic: the same spec always
// yields the same config, which is what makes stored jobs resumable.
func (s Spec) ArrayConfig() (montecarlo.ArrayConfig, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return montecarlo.ArrayConfig{}, err
	}
	if !ArrayLike(s.Type) {
		return montecarlo.ArrayConfig{}, fmt.Errorf("jobd: ArrayConfig on a %q job", s.Type)
	}
	tech := device.Node(s.Tech)
	vdd := s.VddFrac * tech.Vdd
	withRTN := true
	if s.WithRTN != nil {
		withRTN = *s.WithRTN
	}
	return montecarlo.ArrayConfig{
		Tech:    tech,
		Cell:    sram.CellConfig{Tech: tech, Vdd: vdd},
		Pattern: s.pattern(vdd),
		Cells:   s.Cells,
		Scale:   s.Scale,
		Seed:    s.Seed,
		WithRTN: withRTN,
		Workers: s.Workers,
	}, nil
}

// RunConfig translates a run spec into the samurai methodology config.
func (s Spec) RunConfig() (samurai.Config, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return samurai.Config{}, err
	}
	if s.Type != TypeRun {
		return samurai.Config{}, fmt.Errorf("jobd: RunConfig on a %q job", s.Type)
	}
	tech := device.Node(s.Tech)
	vdd := s.VddFrac * tech.Vdd
	return samurai.Config{
		Tech:    tech,
		Cell:    sram.CellConfig{Tech: tech, Vdd: vdd},
		Pattern: s.pattern(vdd),
		Seed:    s.Seed,
		Scale:   s.Scale,
	}, nil
}

// TraceID derives the job's deterministic trace ID: the FNV hash of
// the seed and the canonical (defaulted) spec bytes. The same spec
// always produces the same trace ID, so a resumed or re-run job is
// diffable against its previous trace — including a fabric worker's
// run of the same job on another machine. The trace ID doubles as the
// spec hash in the provenance manifest.
func (s Spec) TraceID() uint64 {
	b, err := json.Marshal(s)
	if err != nil {
		b = nil // unreachable: Spec is plain data
	}
	return trace.ID(s.Seed, b)
}

// Summary is the aggregate outcome persisted for a finished job. Run
// jobs fill the write-cycle counters; array jobs fill the array rates.
type Summary struct {
	// Run jobs.
	WriteErrors int `json:"write_errors,omitempty"`
	Slowdowns   int `json:"slowdowns,omitempty"`
	Traps       int `json:"traps,omitempty"`
	// Array jobs.
	NumFailed int     `json:"num_failed,omitempty"`
	ErrorRate float64 `json:"error_rate,omitempty"`
	MeanTraps float64 `json:"mean_traps,omitempty"`
	// Rare-event array jobs additionally carry the weighted aggregate
	// (ESS, likelihood-ratio variance, CI width).
	Rare *rareevent.ArrayStats `json:"rare,omitempty"`
}

// Job is the scheduler's mutable record of one submitted job. All
// fields are guarded by the owning Scheduler's mutex; HTTP handlers
// and tests read immutable View snapshots.
type Job struct {
	ID    string
	Seq   uint64
	Spec  Spec
	State State
	Error string
	// CellsTotal is Spec.Cells for array jobs, 0 for run jobs.
	CellsTotal int
	// Resumes counts how many times the job was picked back up with
	// checkpointed cells already in the store.
	Resumes int
	Result  *Summary
	// cells holds the checkpointed per-cell outcomes (array jobs),
	// keyed by cell index. After a clean finish it covers every cell.
	cells map[int]CellRecord
	// tracer collects the causal trace and flight-recorder notes of the
	// job's current (or most recent) run. Rebuilt each time the job is
	// picked up; observability state, never persisted to the WAL.
	tracer *trace.Tracer
}

// cellsDone returns the number of checkpointed cells.
func (j *Job) cellsDone() int { return len(j.cells) }

// resumeOutcomes converts the checkpointed cells into the Resume slice
// RunArrayCtx expects, ordered by index for reproducible dispatch.
func (j *Job) resumeOutcomes() []montecarlo.CellOutcome {
	if len(j.cells) == 0 {
		return nil
	}
	out := make([]montecarlo.CellOutcome, 0, len(j.cells))
	for _, rec := range j.cells {
		out = append(out, rec.Outcome())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// cellRecords returns the checkpointed cells sorted by index.
func (j *Job) cellRecords() []CellRecord {
	out := make([]CellRecord, 0, len(j.cells))
	for _, rec := range j.cells {
		out = append(out, rec)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// The exported Job accessors below exist for owners other than the
// in-process Scheduler — the fabric coordinator keeps its own job table
// over the same Store. The caller owns serialisation: all of them must
// run under whatever mutex guards the job, exactly like the unexported
// twins the Scheduler uses.

// Records returns the checkpointed cells sorted by index.
func (j *Job) Records() []CellRecord { return j.cellRecords() }

// Done returns the number of checkpointed cells.
func (j *Job) Done() int { return j.cellsDone() }

// Checkpointed reports whether cell index i has a durable record.
func (j *Job) Checkpointed(i int) bool {
	_, ok := j.cells[i]
	return ok
}

// Cell returns the checkpointed record for index i, if any.
func (j *Job) Cell(i int) (CellRecord, bool) {
	rec, ok := j.cells[i]
	return rec, ok
}

// PutCell attaches a checkpointed cell record to the job's in-memory
// table. The caller must have appended the record to the Store first —
// memory never runs ahead of the WAL.
func (j *Job) PutCell(rec CellRecord) {
	if j.cells == nil {
		j.cells = map[int]CellRecord{}
	}
	j.cells[rec.Index] = rec
}

// View snapshots the job into its immutable API form.
func (j *Job) View() View { return j.view() }

// View is an immutable snapshot of a job, JSON-shaped for the API.
type View struct {
	ID         string   `json:"id"`
	State      State    `json:"state"`
	Spec       Spec     `json:"spec"`
	Error      string   `json:"error,omitempty"`
	CellsDone  int      `json:"cells_done"`
	CellsTotal int      `json:"cells_total,omitempty"`
	Resumes    int      `json:"resumes,omitempty"`
	Result     *Summary `json:"result,omitempty"`
}

// view snapshots the job; callers must hold the scheduler mutex.
func (j *Job) view() View {
	v := View{
		ID:         j.ID,
		State:      j.State,
		Spec:       j.Spec,
		Error:      j.Error,
		CellsDone:  j.cellsDone(),
		CellsTotal: j.CellsTotal,
		Resumes:    j.Resumes,
	}
	if j.Result != nil {
		r := *j.Result
		v.Result = &r
	}
	return v
}

package waveform

import (
	"math"
	"testing"

	"samurai/internal/rng"
)

// randomPWL builds a random strictly-increasing waveform with n
// breakpoints spread over roughly [0, n].
func randomPWL(t *testing.T, r *rng.Stream, n int) *PWL {
	t.Helper()
	ts := make([]float64, n)
	vs := make([]float64, n)
	acc := r.Float64() - 0.5
	for i := range ts {
		acc += r.Float64() + 1e-9
		ts[i] = acc
		vs[i] = 2*r.Float64() - 1
	}
	w, err := New(ts, vs)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// wantSameBits asserts the cursor and plain Eval agree bit for bit.
func wantSameBits(t *testing.T, w *PWL, cur *Cursor, q float64) {
	t.Helper()
	want := w.Eval(q)
	got := cur.Eval(q)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("Cursor.Eval(%g) = %g, PWL.Eval = %g (bits differ)", q, got, want)
	}
}

func TestCursorMatchesEvalOnMonotoneSweep(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		w := randomPWL(t, r, 3+r.Intn(40))
		cur := w.Cursor()
		span := w.End() - w.Begin()
		q := w.Begin() - 0.1*span
		for q < w.End()+0.1*span {
			wantSameBits(t, w, &cur, q)
			q += span * r.Float64() / 50
		}
	}
}

func TestCursorMatchesEvalOnArbitraryJumps(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 20; trial++ {
		w := randomPWL(t, r, 2+r.Intn(30))
		cur := w.Cursor()
		span := w.End() - w.Begin()
		for i := 0; i < 300; i++ {
			// Mix arbitrary positions, exact breakpoints and the
			// out-of-range holds.
			var q float64
			switch r.Intn(4) {
			case 0:
				q = w.Begin() + span*(2*r.Float64()-0.5)
			case 1:
				q = w.T[r.Intn(len(w.T))] // exact breakpoint hit
			case 2:
				q = w.Begin() - r.Float64()
			default:
				q = w.End() + r.Float64()
			}
			wantSameBits(t, w, &cur, q)
		}
	}
}

func TestCursorSingleBreakpoint(t *testing.T) {
	w := Constant(2.5)
	cur := w.Cursor()
	for _, q := range []float64{-1, 0, 1, 1e9} {
		wantSameBits(t, w, &cur, q)
	}
}

func TestCursorLongForwardJumpFallsBackToSearch(t *testing.T) {
	// More than cursorProbe segments between consecutive queries forces
	// the binary-search fallback; results must still match.
	n := cursorProbe*4 + 7
	ts := make([]float64, n)
	vs := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i)
		vs[i] = float64(i % 5)
	}
	w, err := New(ts, vs)
	if err != nil {
		t.Fatal(err)
	}
	cur := w.Cursor()
	wantSameBits(t, w, &cur, 0.5)
	wantSameBits(t, w, &cur, float64(n)-1.25) // jump over ~4·probe segments
	wantSameBits(t, w, &cur, 1.75)            // and all the way back
}

// TestCursorBoundaryBacktracking drives targeted out-of-range and
// backward query sequences at the domain boundaries. The out-of-range
// fast paths return without touching the remembered segment, so each
// step also checks the stale state cannot poison the next answer.
func TestCursorBoundaryBacktracking(t *testing.T) {
	w, err := New([]float64{0, 1, 2, 5}, []float64{10, -4, 3, 8})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-12
	sequences := [][]float64{
		// Backward sweep from past the end to before the start.
		{6, 5, 5 - eps, 2, 1 + eps, 1, eps, 0, -3},
		// Ping-pong across both boundaries: each out-of-range query
		// leaves the cursor where the last in-range query put it.
		{-1, 0, 6, 5, -1, 2.5, 6, 0.5, -1, 4.999},
		// Land exactly on every breakpoint, then retreat just inside it.
		{5, 5 - eps, 2, 2 - eps, 1, 1 - eps, 0, -eps},
		// Advance deep, then query the exact left boundary (the t <=
		// T[0] hold), then just above it with the stale high segment.
		{4.5, 0, eps, 4.5, -7, eps},
	}
	for si, seq := range sequences {
		cur := w.Cursor()
		for qi, q := range seq {
			want := w.Eval(q)
			got := cur.Eval(q)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("sequence %d step %d: Cursor.Eval(%g) = %g, PWL.Eval = %g",
					si, qi, q, got, want)
			}
		}
	}

	// Two-point waveform: every query resolves against the only segment.
	w2, err := New([]float64{1, 2}, []float64{-1, 1})
	if err != nil {
		t.Fatal(err)
	}
	cur := w2.Cursor()
	for _, q := range []float64{3, 2, 1.5, 1, 0, 2, 1, 3, -5} {
		wantSameBits(t, w2, &cur, q)
	}
}

// FuzzCursorEquivalence drives a cursor with an arbitrary (generally
// non-monotone) query sequence decoded from fuzz bytes and checks every
// answer bit for bit against the stateless PWL.Eval.
func FuzzCursorEquivalence(f *testing.F) {
	f.Add(uint64(1), []byte{0, 128, 255, 3, 77})
	f.Add(uint64(42), []byte{9, 9, 9, 250, 1, 0, 200, 13})
	f.Add(uint64(7), []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, queries []byte) {
		r := rng.New(seed)
		ts := make([]float64, 2+int(seed%37))
		vs := make([]float64, len(ts))
		acc := 0.0
		for i := range ts {
			acc += r.Float64() + 1e-9
			ts[i] = acc
			vs[i] = 2*r.Float64() - 1
		}
		w, err := New(ts, vs)
		if err != nil {
			t.Fatal(err)
		}
		cur := w.Cursor()
		span := w.End() - w.Begin()
		for _, b := range queries {
			// Map one byte to a query spanning past both ends.
			q := w.Begin() + span*(float64(b)/200.0-0.1)
			want := w.Eval(q)
			got := cur.Eval(q)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Cursor.Eval(%g) = %g, PWL.Eval = %g", q, got, want)
			}
		}
	})
}

// Package waveform implements piecewise-linear (PWL) waveforms — the
// interchange format between the circuit simulator and the SAMURAI RTN
// engine. The circuit simulator exports node voltages and device
// currents as PWL waveforms; SAMURAI evaluates trap propensities on
// them; the generated I_RTN traces go back into the circuit as PWL
// current sources.
package waveform

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// PWL is a piecewise-linear waveform: value is interpolated linearly
// between breakpoints and held constant outside the time range.
// Times must be strictly increasing.
type PWL struct {
	T []float64
	V []float64
}

// New constructs a PWL from parallel slices, validating monotonic time.
func New(t, v []float64) (*PWL, error) {
	if len(t) != len(v) {
		return nil, errors.New("waveform: time and value lengths differ")
	}
	if len(t) == 0 {
		return nil, errors.New("waveform: empty waveform")
	}
	for i := 1; i < len(t); i++ {
		if !(t[i] > t[i-1]) {
			return nil, fmt.Errorf("waveform: times not strictly increasing at index %d (%g then %g)", i, t[i-1], t[i])
		}
	}
	return &PWL{T: t, V: v}, nil
}

// Constant returns a waveform with the given constant value, defined at
// t = 0 (and by extension everywhere).
func Constant(v float64) *PWL {
	return &PWL{T: []float64{0}, V: []float64{v}}
}

// Eval returns the waveform value at time t, holding the first/last
// value outside the breakpoint range.
func (w *PWL) Eval(t float64) float64 {
	n := len(w.T)
	if n == 1 || t <= w.T[0] {
		return w.V[0]
	}
	if t >= w.T[n-1] {
		return w.V[n-1]
	}
	// Binary search for the segment containing t.
	i := sort.SearchFloat64s(w.T, t)
	// w.T[i-1] < t <= w.T[i]
	//lint:ignore floateq exact hit on a stored breakpoint located by SearchFloat64s
	if w.T[i] == t {
		return w.V[i]
	}
	t0, t1 := w.T[i-1], w.T[i]
	v0, v1 := w.V[i-1], w.V[i]
	frac := (t - t0) / (t1 - t0)
	return v0 + frac*(v1-v0)
}

// Begin returns the first breakpoint time.
func (w *PWL) Begin() float64 { return w.T[0] }

// End returns the last breakpoint time.
func (w *PWL) End() float64 { return w.T[len(w.T)-1] }

// Len returns the number of breakpoints.
func (w *PWL) Len() int { return len(w.T) }

// Clone returns a deep copy.
func (w *PWL) Clone() *PWL {
	return &PWL{T: append([]float64(nil), w.T...), V: append([]float64(nil), w.V...)}
}

// Sample evaluates the waveform at n uniformly spaced points spanning
// [t0, t1] inclusive and returns the times and values.
func (w *PWL) Sample(t0, t1 float64, n int) (ts, vs []float64) {
	if n < 2 {
		return []float64{t0}, []float64{w.Eval(t0)}
	}
	ts = make([]float64, n)
	vs = make([]float64, n)
	dt := (t1 - t0) / float64(n-1)
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		ts[i] = t
		vs[i] = w.Eval(t)
	}
	return
}

// Integral returns ∫ w dt over [t0, t1] computed exactly (the waveform
// is piecewise linear, so each segment contributes a trapezoid).
func (w *PWL) Integral(t0, t1 float64) float64 {
	if t1 < t0 {
		return -w.Integral(t1, t0)
	}
	// Collect breakpoints strictly inside (t0, t1).
	s := 0.0
	prevT, prevV := t0, w.Eval(t0)
	for i := 0; i < len(w.T); i++ {
		t := w.T[i]
		if t <= t0 {
			continue
		}
		if t >= t1 {
			break
		}
		v := w.V[i]
		s += 0.5 * (v + prevV) * (t - prevT)
		prevT, prevV = t, v
	}
	endV := w.Eval(t1)
	s += 0.5 * (endV + prevV) * (t1 - prevT)
	return s
}

// combine merges the breakpoints of a and b and applies op pointwise.
// The result is exact for operations that preserve piecewise linearity
// (addition, subtraction, scaling) and a breakpoint-dense approximation
// otherwise.
func combine(a, b *PWL, op func(x, y float64) float64) *PWL {
	ts := mergeTimes(a.T, b.T)
	vs := make([]float64, len(ts))
	for i, t := range ts {
		vs[i] = op(a.Eval(t), b.Eval(t))
	}
	return &PWL{T: ts, V: vs}
}

func mergeTimes(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = appendUnique(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = appendUnique(out, b[j])
			j++
		default: // equal
			out = appendUnique(out, a[i])
			i++
			j++
		}
	}
	return out
}

func appendUnique(s []float64, t float64) []float64 {
	//lint:ignore floateq deduplicates bitwise-identical merged breakpoints only
	if len(s) > 0 && s[len(s)-1] == t {
		return s
	}
	return append(s, t)
}

// Add returns a+b (exact).
func Add(a, b *PWL) *PWL { return combine(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a-b (exact).
func Sub(a, b *PWL) *PWL { return combine(a, b, func(x, y float64) float64 { return x - y }) }

// Mul returns the pointwise product sampled at merged breakpoints. The
// product of two PWLs is quadratic per segment, so this is approximate;
// it is only used for diagnostics, never inside the solvers.
func Mul(a, b *PWL) *PWL { return combine(a, b, func(x, y float64) float64 { return x * y }) }

// Scale returns w scaled by k (exact).
func (w *PWL) Scale(k float64) *PWL {
	out := w.Clone()
	for i := range out.V {
		out.V[i] *= k
	}
	return out
}

// Shift returns w translated in time by dt (exact).
func (w *PWL) Shift(dt float64) *PWL {
	out := w.Clone()
	for i := range out.T {
		out.T[i] += dt
	}
	return out
}

// Min and Max return the extreme breakpoint values; since the waveform
// is piecewise linear, extremes occur at breakpoints.
func (w *PWL) Min() float64 {
	m := math.Inf(1)
	for _, v := range w.V {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest breakpoint value.
func (w *PWL) Max() float64 {
	m := math.Inf(-1)
	for _, v := range w.V {
		if v > m {
			m = v
		}
	}
	return m
}

// Resample returns a PWL with breakpoints exactly at the n uniform
// sample points over [t0, t1]. Useful for compacting waveforms with
// many redundant breakpoints before hand-off.
func (w *PWL) Resample(t0, t1 float64, n int) *PWL {
	ts, vs := w.Sample(t0, t1, n)
	return &PWL{T: ts, V: vs}
}

// Crossings returns the times at which the waveform crosses the given
// level, found exactly per linear segment (rising and falling).
func (w *PWL) Crossings(level float64) []float64 {
	var out []float64
	for i := 1; i < len(w.T); i++ {
		v0, v1 := w.V[i-1]-level, w.V[i]-level
		if v0 == 0 {
			out = append(out, w.T[i-1])
			continue
		}
		if v0*v1 < 0 {
			frac := v0 / (v0 - v1)
			out = append(out, w.T[i-1]+frac*(w.T[i]-w.T[i-1]))
		}
	}
	//lint:ignore floateq an exact endpoint touch is a crossing by definition; nearby values are caught by the sign test
	if len(w.V) > 0 && w.V[len(w.V)-1] == level {
		out = append(out, w.T[len(w.T)-1])
	}
	return out
}

// String renders a short summary.
func (w *PWL) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PWL[%d pts, t=%g..%g, v=%g..%g]", len(w.T), w.Begin(), w.End(), w.Min(), w.Max())
	return b.String()
}

// Step builds a piecewise-constant waveform (expressed in PWL form with
// near-vertical edges of the given rise time) that takes values vals[i]
// on [times[i], times[i+1]). len(vals) == len(times); the final value
// holds forever.
func Step(times, vals []float64, rise float64) (*PWL, error) {
	if len(times) != len(vals) || len(times) == 0 {
		return nil, errors.New("waveform: Step needs equal non-empty times/vals")
	}
	var t, v []float64
	for i := range times {
		if i == 0 {
			t = append(t, times[0])
			v = append(v, vals[0])
			continue
		}
		edge := times[i]
		t = append(t, edge, edge+rise)
		v = append(v, vals[i-1], vals[i])
	}
	return New(t, v)
}

package waveform

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	w, err := New([]float64{0, 1e-9, 2.5e-9}, []float64{0, 1.2, -0.3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != w.Len() {
		t.Fatalf("length changed: %d vs %d", got.Len(), w.Len())
	}
	for i := range w.T {
		if got.T[i] != w.T[i] || got.V[i] != w.V[i] {
			t.Fatal("CSV round trip not exact")
		}
	}
}

func TestReadCSVSkipsHeaderAndComments(t *testing.T) {
	src := "time_s,value\n# a comment\n0,1\n1,2\n"
	w, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 || w.Eval(0.5) != 1.5 {
		t.Fatalf("parsed %v", w)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("0,1,2\n")); err == nil {
		t.Fatal("3-column line accepted")
	}
	if _, err := ReadCSV(strings.NewReader("0,1\nx,y\n")); err == nil {
		t.Fatal("non-numeric body accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestParsePWLSpec(t *testing.T) {
	w, err := ParsePWLSpec("0 0 1n 1.2 5n 1.2")
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 || math.Abs(w.Eval(0.5e-9)-0.6) > 1e-12 {
		t.Fatalf("parsed wrong: %v", w)
	}
	if _, err := ParsePWLSpec("0 0 1n"); err == nil {
		t.Fatal("odd field count accepted")
	}
	if _, err := ParsePWLSpec(""); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestParseEng(t *testing.T) {
	cases := map[string]float64{
		"1":     1,
		"2.5k":  2500,
		"3meg":  3e6,
		"1.5f":  1.5e-15,
		"10p":   1e-11,
		"45n":   45e-9,
		"2u":    2e-6,
		"7m":    7e-3,
		"1g":    1e9,
		"2t":    2e12,
		"-0.3":  -0.3,
		"1e-12": 1e-12,
	}
	for in, want := range cases {
		got, err := ParseEng(in)
		if err != nil {
			t.Fatalf("ParseEng(%q): %v", in, err)
		}
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Fatalf("ParseEng(%q) = %g, want %g", in, got, want)
		}
	}
	if _, err := ParseEng("abc"); err == nil {
		t.Fatal("garbage accepted")
	}
}

package waveform

import (
	"math"
	"strings"
	"testing"
)

// FuzzParsePWLSpec: arbitrary spec strings must parse or error, never
// panic, and parsed waveforms must evaluate finitely at their own
// breakpoints.
func FuzzParsePWLSpec(f *testing.F) {
	for _, s := range []string{
		"", "0 0", "0 0 1n 1", "0 0 1 1 2 0",
		"x y", "1meg 3k", "0 0 0 1", "-1 2 3 4",
		"1e308 1e308 2e308 0",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		w, err := ParsePWLSpec(spec)
		if err != nil {
			return
		}
		for _, tt := range w.T {
			if v := w.Eval(tt); math.IsNaN(v) {
				t.Fatalf("NaN at own breakpoint for %q", spec)
			}
		}
	})
}

// FuzzReadCSV: arbitrary CSV bodies must never panic the reader.
func FuzzReadCSV(f *testing.F) {
	for _, s := range []string{
		"", "time,value\n0,1\n1,2\n", "0,1\n", "a,b\nc,d\n",
		"0,1,2\n", "# comment\n0,1\n2,3\n", "1,1\n0,0\n",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		_, _ = ReadCSV(strings.NewReader(body))
	})
}

// FuzzParseEng: engineering-notation parsing must round-trip sane
// values and reject garbage without panicking.
func FuzzParseEng(f *testing.F) {
	for _, s := range []string{"1", "2.5k", "3meg", "1.5f", "-2u", "zz", "1e-12", "megmeg"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseEng(s)
		if err == nil && math.IsNaN(v) {
			t.Fatalf("ParseEng(%q) accepted NaN", s)
		}
	})
}

package waveform

import (
	"math"
	"testing"
	"testing/quick"
)

// mustNew fails the test on a construction error; fixtures here are
// statically valid.
func mustNew(t *testing.T, ts, vs []float64) *PWL {
	t.Helper()
	w, err := New(ts, vs)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("empty waveform accepted")
	}
	if _, err := New([]float64{0, 1}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := New([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing times accepted")
	}
	if _, err := New([]float64{1, 0}, []float64{1, 2}); err == nil {
		t.Fatal("decreasing times accepted")
	}
}

func TestEvalInterpolationAndClamping(t *testing.T) {
	w := mustNew(t, []float64{0, 1, 3}, []float64{0, 10, 30})
	cases := map[float64]float64{
		-5:  0,  // clamp left
		0:   0,  // breakpoint
		0.5: 5,  // interior
		1:   10, // breakpoint
		2:   20, // interior second segment
		3:   30, // last
		99:  30, // clamp right
	}
	for in, want := range cases {
		if got := w.Eval(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", in, got, want)
		}
	}
}

func TestConstant(t *testing.T) {
	w := Constant(3.5)
	for _, tt := range []float64{-1, 0, 1e9} {
		if w.Eval(tt) != 3.5 {
			t.Fatal("Constant not constant")
		}
	}
}

func TestIntegralExact(t *testing.T) {
	// Triangle from (0,0) to (2,4): area over [0,2] is 4.
	w := mustNew(t, []float64{0, 2}, []float64{0, 4})
	if got := w.Integral(0, 2); math.Abs(got-4) > 1e-12 {
		t.Fatalf("integral = %g, want 4", got)
	}
	// Partial segment: [0,1] is area 1.
	if got := w.Integral(0, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("partial integral = %g, want 1", got)
	}
	// Reversed limits negate.
	if got := w.Integral(2, 0); math.Abs(got+4) > 1e-12 {
		t.Fatalf("reversed integral = %g, want -4", got)
	}
	// Beyond the range the value holds constant.
	if got := w.Integral(2, 3); math.Abs(got-4) > 1e-12 {
		t.Fatalf("clamped integral = %g, want 4", got)
	}
}

func TestAddSubPointwiseProperty(t *testing.T) {
	a := mustNew(t, []float64{0, 1, 2}, []float64{1, 3, 2})
	b := mustNew(t, []float64{0.5, 1.5}, []float64{10, 20})
	sum := Add(a, b)
	diff := Sub(a, b)
	f := func(tRaw float64) bool {
		tt := math.Mod(math.Abs(tRaw), 3)
		if math.IsNaN(tt) {
			return true
		}
		okSum := math.Abs(sum.Eval(tt)-(a.Eval(tt)+b.Eval(tt))) < 1e-9
		okDiff := math.Abs(diff.Eval(tt)-(a.Eval(tt)-b.Eval(tt))) < 1e-9
		return okSum && okDiff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleShift(t *testing.T) {
	w := mustNew(t, []float64{0, 1}, []float64{2, 4})
	s := w.Scale(3)
	if s.Eval(1) != 12 || w.Eval(1) != 4 {
		t.Fatal("Scale wrong or mutated the original")
	}
	sh := w.Shift(10)
	if sh.Eval(10.5) != w.Eval(0.5) {
		t.Fatal("Shift misaligned")
	}
}

func TestMinMax(t *testing.T) {
	w := mustNew(t, []float64{0, 1, 2}, []float64{-3, 7, 0})
	if w.Min() != -3 || w.Max() != 7 {
		t.Fatalf("min/max = %g/%g", w.Min(), w.Max())
	}
}

func TestCrossings(t *testing.T) {
	w := mustNew(t, []float64{0, 1, 2, 3}, []float64{0, 2, 0, 2})
	xs := w.Crossings(1)
	want := []float64{0.5, 1.5, 2.5}
	if len(xs) != len(want) {
		t.Fatalf("crossings = %v, want %v", xs, want)
	}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("crossings = %v, want %v", xs, want)
		}
	}
}

func TestCrossingsTouchingLevel(t *testing.T) {
	// A waveform that starts exactly at the level reports that point.
	w := mustNew(t, []float64{0, 1}, []float64{1, 2})
	xs := w.Crossings(1)
	if len(xs) != 1 || xs[0] != 0 {
		t.Fatalf("touch crossing = %v", xs)
	}
}

func TestSampleEndpoints(t *testing.T) {
	w := mustNew(t, []float64{0, 10}, []float64{0, 10})
	ts, vs := w.Sample(0, 10, 11)
	if len(ts) != 11 || ts[0] != 0 || ts[10] != 10 || vs[5] != 5 {
		t.Fatalf("Sample wrong: %v %v", ts, vs)
	}
}

func TestResampleIdempotent(t *testing.T) {
	w := mustNew(t, []float64{0, 1, 2}, []float64{0, 5, -1})
	r1 := w.Resample(0, 2, 101)
	r2 := r1.Resample(0, 2, 101)
	for i := range r1.T {
		if r1.V[i] != r2.V[i] {
			t.Fatal("Resample not idempotent on its own grid")
		}
	}
}

func TestStepWaveform(t *testing.T) {
	w, err := Step([]float64{0, 1e-9, 2e-9}, []float64{0, 1, 0.5}, 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	if w.Eval(0.5e-9) != 0 {
		t.Fatalf("before first edge: %g", w.Eval(0.5e-9))
	}
	if w.Eval(1.5e-9) != 1 {
		t.Fatalf("after first edge: %g", w.Eval(1.5e-9))
	}
	if w.Eval(3e-9) != 0.5 {
		t.Fatalf("final hold: %g", w.Eval(3e-9))
	}
}

func TestMulApproximation(t *testing.T) {
	a := mustNew(t, []float64{0, 2}, []float64{1, 1})
	b := mustNew(t, []float64{0, 2}, []float64{0, 2})
	m := Mul(a, b)
	if math.Abs(m.Eval(1)-1) > 1e-12 {
		t.Fatalf("Mul constant×ramp at 1 = %g", m.Eval(1))
	}
}

func TestEvalBinarySearchConsistency(t *testing.T) {
	// Dense random breakpoints: Eval must be monotone-consistent with
	// direct linear interpolation.
	n := 1000
	ts := make([]float64, n)
	vs := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i) * 0.1
		vs[i] = math.Sin(float64(i))
	}
	w := mustNew(t, ts, vs)
	for i := 0; i+1 < n; i += 37 {
		mid := (ts[i] + ts[i+1]) / 2
		want := (vs[i] + vs[i+1]) / 2
		if math.Abs(w.Eval(mid)-want) > 1e-12 {
			t.Fatalf("Eval(%g) = %g, want %g", mid, w.Eval(mid), want)
		}
	}
}

package waveform

import "sort"

// Cursor evaluates a PWL with O(1) amortised cost for monotone time
// sweeps. It remembers the segment that satisfied the previous query
// and advances linearly from there; a query behind the remembered
// segment (or far ahead of it) falls back to the same binary search
// PWL.Eval uses. Every query returns a value bit-identical to
// PWL.Eval(t) — the cursor only changes how the segment is located,
// never how the interpolation is computed.
//
// A Cursor is cheap to create and must not be shared between
// goroutines; each sweep (a transient element, a trace-composition
// loop, a uniformisation run) owns its own.
type Cursor struct {
	w *PWL
	// idx is the candidate upper breakpoint: when valid it satisfies
	// T[idx-1] < t <= T[idx] for the previous query's t.
	idx int
}

// cursorProbe bounds the linear advance before giving up and binary
// searching — keeps a large forward jump from degrading below the
// plain Eval cost.
const cursorProbe = 32

// Cursor returns a fresh cursor over w positioned before the first
// breakpoint.
func (w *PWL) Cursor() Cursor { return Cursor{w: w} }

// Eval returns the waveform value at time t, holding the first/last
// value outside the breakpoint range, exactly as PWL.Eval does.
//
//lint:hot
func (c *Cursor) Eval(t float64) float64 {
	w := c.w
	n := len(w.T)
	if n == 1 || t <= w.T[0] {
		return w.V[0]
	}
	if t >= w.T[n-1] {
		return w.V[n-1]
	}
	// Locate the smallest i with T[i] >= t (the SearchFloat64s
	// contract), starting from the remembered segment when the query
	// moved forward.
	i := c.idx
	if i < 1 || i >= n || !(w.T[i-1] < t) {
		i = sort.SearchFloat64s(w.T, t)
	} else {
		for probe := 0; w.T[i] < t; probe++ {
			if probe == cursorProbe {
				i = sort.SearchFloat64s(w.T, t)
				break
			}
			i++
		}
	}
	c.idx = i
	//lint:ignore floateq exact hit on a stored breakpoint, mirroring PWL.Eval
	if w.T[i] == t {
		return w.V[i]
	}
	t0, t1 := w.T[i-1], w.T[i]
	v0, v1 := w.V[i-1], w.V[i]
	frac := (t - t0) / (t1 - t0)
	return v0 + frac*(v1-v0)
}

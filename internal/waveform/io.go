package waveform

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV emits the waveform breakpoints as "time,value" lines with a
// header. The output round-trips exactly through ReadCSV.
func (w *PWL) WriteCSV(out io.Writer) error {
	bw := bufio.NewWriter(out)
	if _, err := fmt.Fprintln(bw, "time_s,value"); err != nil {
		return err
	}
	for i := range w.T {
		if _, err := fmt.Fprintf(bw, "%s,%s\n",
			strconv.FormatFloat(w.T[i], 'g', -1, 64),
			strconv.FormatFloat(w.V[i], 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a two-column CSV of time,value pairs (an optional
// non-numeric header line is skipped) into a PWL.
func ReadCSV(in io.Reader) (*PWL, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var ts, vs []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("waveform: line %d: want 2 columns, got %d", line, len(parts))
		}
		t, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		v, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("waveform: line %d: bad numbers %q", line, text)
		}
		ts = append(ts, t)
		vs = append(vs, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(ts, vs)
}

// ParsePWLSpec parses a SPICE-style inline PWL list "t1 v1 t2 v2 ..."
// (whitespace separated, engineering suffixes allowed: f p n u m k meg g).
func ParsePWLSpec(spec string) (*PWL, error) {
	fields := strings.Fields(spec)
	if len(fields)%2 != 0 || len(fields) == 0 {
		return nil, fmt.Errorf("waveform: PWL spec needs time/value pairs, got %d fields", len(fields))
	}
	ts := make([]float64, 0, len(fields)/2)
	vs := make([]float64, 0, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		t, err := ParseEng(fields[i])
		if err != nil {
			return nil, err
		}
		v, err := ParseEng(fields[i+1])
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
		vs = append(vs, v)
	}
	return New(ts, vs)
}

// ParseEng parses a number with an optional SPICE engineering suffix
// (f, p, n, u, m, k, meg, g, t — case-insensitive).
func ParseEng(s string) (float64, error) {
	lower := strings.ToLower(strings.TrimSpace(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(lower, "meg"):
		mult, lower = 1e6, strings.TrimSuffix(lower, "meg")
	case strings.HasSuffix(lower, "f"):
		mult, lower = 1e-15, strings.TrimSuffix(lower, "f")
	case strings.HasSuffix(lower, "p"):
		mult, lower = 1e-12, strings.TrimSuffix(lower, "p")
	case strings.HasSuffix(lower, "n"):
		mult, lower = 1e-9, strings.TrimSuffix(lower, "n")
	case strings.HasSuffix(lower, "u"):
		mult, lower = 1e-6, strings.TrimSuffix(lower, "u")
	case strings.HasSuffix(lower, "m"):
		mult, lower = 1e-3, strings.TrimSuffix(lower, "m")
	case strings.HasSuffix(lower, "k"):
		mult, lower = 1e3, strings.TrimSuffix(lower, "k")
	case strings.HasSuffix(lower, "g"):
		mult, lower = 1e9, strings.TrimSuffix(lower, "g")
	case strings.HasSuffix(lower, "t"):
		mult, lower = 1e12, strings.TrimSuffix(lower, "t")
	}
	v, err := strconv.ParseFloat(lower, 64)
	if err != nil {
		return 0, fmt.Errorf("waveform: bad engineering number %q", s)
	}
	return v * mult, nil
}

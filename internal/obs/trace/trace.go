// Package trace is causal tracing for the samurai pipeline, built on
// the obs layer and sharing its determinism guarantee: tracing measures
// and reports, it never influences the computation it observes.
//
// # Deterministic identifiers
//
// Every identifier is a pure function of the work being traced, never
// of the clock, the scheduler or math/rand:
//
//   - the trace ID is an FNV-1a hash of the job seed and the canonical
//     spec bytes (ID);
//   - a span's ID is its parent's ID XORed with the hash of its name
//     (and, for instanced spans, of the instance index).
//
// Two runs of the same job therefore produce the identical trace
// topology — same IDs, same parent links, same paths — which is what
// lets a trace be diffed against a replay, and what keeps the detflow
// lint clean: no nondeterminism source feeds an ID.
//
// # Context propagation vs. timing
//
// The context carries only the pure causal position (tracer, span ID,
// path) — never a timestamp. Wall-clock readings live exclusively in
// the *Span value returned alongside the derived context, so contexts
// threaded through seeded entry points (samurai.RunCtx,
// montecarlo.RunArrayCtx) stay clean under taint analysis while spans
// still measure real durations for export.
//
// # Label cardinality
//
// Instance indices (cell number, transistor number) are mixed into
// span IDs but never into span paths: the samurai_span_seconds series
// for a million-cell sweep is one histogram labelled span="…/cell",
// not a million series. The per-path metric cache is additionally
// capped at maxMetricPaths distinct paths; overflow records under the
// sentinel path "!other".
package trace

import (
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"samurai/internal/obs"
)

// offset64 and prime64 are the FNV-1a 64-bit parameters.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// fnv1a folds bytes into an FNV-1a running hash.
func fnv1a(h uint64, data []byte) uint64 {
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// fnv1aString is fnv1a over a string without allocation.
func fnv1aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ID derives the deterministic trace ID for a run: the FNV-1a hash of
// the seed (little-endian) followed by the canonical spec bytes.
// Identical (seed, spec) pairs always map to the same trace ID.
func ID(seed uint64, spec []byte) uint64 {
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], seed)
	return fnv1a(fnv1a(offset64, sb[:]), spec)
}

// pathID hashes one path segment for span-ID derivation.
func pathID(name string) uint64 {
	return fnv1aString(offset64, name)
}

// instID mixes an instance index into a span ID, distinguishing
// sibling instances of the same phase (cell 0 vs cell 1) without
// touching the span path.
func instID(inst uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], inst)
	return fnv1a(offset64, b[:])
}

// SpanRec is one completed span as recorded by a Tracer. Start is an
// offset from the tracer's epoch (the wall-clock start of the first
// span recorded), so records are self-contained for export.
type SpanRec struct {
	ID     uint64
	Parent uint64
	Path   string
	Inst   uint64
	Start  time.Duration
	Dur    time.Duration
}

// Options configures a Tracer.
type Options struct {
	// MaxSpans caps the number of retained span records; further spans
	// are still timed and counted (Dropped) but not retained. 0 means
	// DefaultMaxSpans.
	MaxSpans int
	// Flight, when non-nil, receives a fixed-size note for every ended
	// span so the most recent activity survives even when MaxSpans has
	// been exhausted.
	Flight *Flight
}

// DefaultMaxSpans bounds a tracer's memory at roughly 4 MB of span
// records for pathological span counts.
const DefaultMaxSpans = 65536

// Tracer collects the spans of one run (one job, one CLI invocation)
// under a single deterministic trace ID. All methods are safe for
// concurrent use; montecarlo workers record from many goroutines.
type Tracer struct {
	traceID uint64
	flight  *Flight

	mu       sync.Mutex
	epoch    time.Time
	spans    []SpanRec
	maxSpans int
	dropped  uint64
}

// New returns a Tracer for the given deterministic trace ID. New never
// reads the clock: the epoch is established by the first recorded
// span, so a freshly built tracer is a pure value and the context it
// is placed in stays clean under taint analysis.
func New(traceID uint64, opts Options) *Tracer {
	max := opts.MaxSpans
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &Tracer{traceID: traceID, maxSpans: max, flight: opts.Flight}
}

// TraceID returns the tracer's deterministic trace ID.
func (t *Tracer) TraceID() uint64 { return t.traceID }

// Flight returns the tracer's flight recorder (nil when not attached).
func (t *Tracer) Flight() *Flight { return t.flight }

// Dropped reports how many span records were discarded because
// MaxSpans was reached.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// record retains one completed span. The first record pins the epoch.
func (t *Tracer) record(path string, id, parent, inst uint64, start time.Time, d time.Duration) {
	t.mu.Lock()
	if t.epoch.IsZero() || start.Before(t.epoch) {
		t.epoch = start
	}
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.spans = append(t.spans, SpanRec{
		ID: id, Parent: parent, Path: path, Inst: inst,
		Start: start.Sub(t.epoch), Dur: d,
	})
	t.mu.Unlock()
}

// Snapshot returns a copy of the recorded spans in recording order
// (scheduling-dependent; use Topology for the deterministic view).
func (t *Tracer) Snapshot() []SpanRec {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRec(nil), t.spans...)
}

// Event notes a point event (a cell checkpoint, a retry) in the
// tracer's flight recorder; a and b are free payload words whose
// meaning is the caller's. No-op without a flight recorder attached.
func (t *Tracer) Event(path string, inst, a, b uint64) {
	if t == nil || t.flight == nil {
		return
	}
	t.flight.noteEvent(path, inst, a, b)
}

// node is the causal position carried by a context: which tracer, the
// current span's ID and its slash-joined path. It is a pure value —
// deliberately no timestamps — so contexts derived from it never carry
// nondeterminism into seeded results. quiet marks per-instance work
// (a cell, a transistor) and is inherited by every descendant span.
type node struct {
	t     *Tracer
	id    uint64
	path  string
	quiet bool
}

type nodeKey struct{}

// NewContext returns ctx carrying tr as the root of a span tree. Spans
// started from the returned context parent at the trace ID itself.
func NewContext(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, nodeKey{}, node{t: tr, id: tr.traceID, path: ""})
}

// FromContext returns the Tracer the context carries, or nil.
func FromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	n, _ := ctx.Value(nodeKey{}).(node)
	return n.t
}

// Span is one live, wall-clock-timed region of a traced run. It is
// returned alongside the derived context by Start/StartInst and must
// be Ended on every path (the spanend lint rule enforces this). A nil
// *Span is inert.
type Span struct {
	n      node
	parent uint64
	inst   uint64
	start  time.Time
}

// Start opens a child span named name under the causal position ctx
// carries and returns the derived context plus the live span. Without
// a tracer in ctx the span is metrics-only: it still lands in the
// samurai_span_seconds histogram and emits a "span" event (the
// behavior instrumented code has relied on since the obs layer
// landed), but nothing is retained for export. Start on a nil context
// returns a nil, fully inert span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return start(ctx, name, 0, false)
}

// StartInst opens an instanced child span: inst (a cell index, a
// transistor number) is mixed into the span's ID — so sibling
// instances are distinguishable in the exported trace — but not into
// its path, keeping metric label cardinality independent of sweep
// size. Instanced spans — and every span nested beneath one — are
// quiet: they record to the histogram, the tracer and the flight
// recorder but never to the event stream, which stays a throttled
// progress channel instead of scaling with sweep size.
func StartInst(ctx context.Context, name string, inst uint64) (context.Context, *Span) {
	return start(ctx, name, inst, true)
}

func start(ctx context.Context, name string, inst uint64, instanced bool) (context.Context, *Span) {
	if ctx == nil {
		return nil, nil
	}
	parent, _ := ctx.Value(nodeKey{}).(node)
	path := name
	if parent.path != "" {
		path = parent.path + "/" + name
	}
	child := node{
		t:     parent.t,
		id:    parent.id ^ pathID(name) ^ instID(inst),
		path:  path,
		quiet: parent.quiet || instanced,
	}
	sp := &Span{n: child, parent: parent.id, inst: inst, start: time.Now()}
	return context.WithValue(ctx, nodeKey{}, child), sp
}

// End closes the span: the duration lands in the samurai_span_seconds
// histogram (labelled with the span path), a "span" event is emitted
// when a live sink is installed (quiet per-instance spans skip the
// event, never the histogram), the record is retained by the tracer
// and noted in the flight recorder. End on a nil span is a no-op; End
// is safe to call at most once.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	pathHist(s.n.path).Observe(d.Seconds())
	if !s.n.quiet && obs.Enabled() {
		obs.Emit("span", obs.F("span", s.n.path), obs.F("seconds", d.Seconds()))
	}
	if t := s.n.t; t != nil {
		t.record(s.n.path, s.n.id, s.parent, s.inst, s.start, d)
		if t.flight != nil {
			t.flight.noteSpan(s.n.path, s.n.id, s.inst, d)
		}
	}
	return d
}

// Path returns the span's slash-joined path ("" for nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.n.path
}

// SpanID returns the span's deterministic ID (0 for nil).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.n.id
}

// maxMetricPaths bounds the number of distinct samurai_span_seconds
// series the trace layer will create. Span paths are static code
// positions, so real programs sit far below the cap; a pathological
// dynamic-path caller overflows into the "!other" sentinel series
// instead of exploding the registry.
const maxMetricPaths = 512

var (
	pathHists  sync.Map // path string -> *obs.Histogram
	pathCount  atomic.Int64
	otherHist  *obs.Histogram
	otherOnce  sync.Once
	histCreate sync.Mutex
)

// pathHist resolves the cached histogram for a span path, creating it
// on first use. Steady state is one sync.Map load — no registry lock,
// no key allocation.
func pathHist(path string) *obs.Histogram {
	if h, ok := pathHists.Load(path); ok {
		return h.(*obs.Histogram)
	}
	histCreate.Lock()
	defer histCreate.Unlock()
	if h, ok := pathHists.Load(path); ok {
		return h.(*obs.Histogram)
	}
	if pathCount.Load() >= maxMetricPaths {
		otherOnce.Do(func() {
			otherHist = obs.GetHistogram("samurai_span_seconds",
				"wall-clock duration of named pipeline spans", obs.TimeBuckets(),
				obs.L("span", "!other"))
		})
		return otherHist
	}
	h := obs.GetHistogram("samurai_span_seconds",
		"wall-clock duration of named pipeline spans", obs.TimeBuckets(),
		obs.L("span", path))
	pathHists.Store(path, h)
	pathCount.Add(1)
	return h
}

package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// sortedSpans returns the tracer's spans in the deterministic export
// order: by path, then instance, then span ID, then start offset (the
// offset breaks ties between repeated same-path occurrences; for a
// fixed job it only reorders identical topology lines).
func (t *Tracer) sortedSpans() []SpanRec {
	spans := t.Snapshot()
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Inst != b.Inst {
			return a.Inst < b.Inst
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Start < b.Start
	})
	return spans
}

// WriteJSONL renders the trace as one JSON object per span, one per
// line, in deterministic export order. Timestamps are offsets from the
// trace epoch in nanoseconds.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, `{"trace_id":"%016x","dropped":%d}`+"\n", t.traceID, t.Dropped())
	for _, s := range t.sortedSpans() {
		fmt.Fprintf(&b,
			`{"span_id":"%016x","parent_id":"%016x","path":%s,"inst":%d,"start_ns":%d,"dur_ns":%d}`+"\n",
			s.ID, s.Parent, strconv.Quote(s.Path), s.Inst,
			s.Start.Nanoseconds(), s.Dur.Nanoseconds())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteChrome renders the trace in Chrome/Perfetto trace_event JSON
// ("X" complete events, microsecond timestamps relative to the trace
// epoch). Load the output at ui.perfetto.dev or chrome://tracing. The
// instance index becomes the tid so per-cell/per-transistor work lands
// on its own track; span and parent IDs ride along in args.
func (t *Tracer) WriteChrome(w io.Writer) error {
	var b strings.Builder
	b.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	fmt.Fprintf(&b,
		`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"trace %016x"}}`,
		t.traceID)
	for _, s := range t.sortedSpans() {
		b.WriteString(",\n")
		fmt.Fprintf(&b,
			`{"name":%s,"cat":"samurai","ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,`+
				`"args":{"span_id":"%016x","parent_id":"%016x","inst":%d}}`,
			strconv.Quote(s.Path),
			microseconds(s.Start.Nanoseconds()), microseconds(s.Dur.Nanoseconds()),
			s.Inst, s.ID, s.Parent, s.Inst)
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// microseconds renders nanoseconds as a decimal microsecond value with
// sub-microsecond precision preserved (trace_event ts/dur are µs).
func microseconds(ns int64) string {
	if ns%1000 == 0 {
		return strconv.FormatInt(ns/1000, 10)
	}
	return strconv.FormatFloat(float64(ns)/1000.0, 'f', 3, 64)
}

// WriteTopology renders the timestamp-free projection of the trace:
// every span's (path, inst, span ID, parent ID), sorted. Because span
// IDs are pure functions of the work, two runs of the same job produce
// byte-identical topology output regardless of scheduling — the
// property the root-package golden test pins.
func (t *Tracer) WriteTopology(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x\n", t.traceID)
	for _, s := range t.sortedSpans() {
		fmt.Fprintf(&b, "%s inst=%d id=%016x parent=%016x\n", s.Path, s.Inst, s.ID, s.Parent)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Flight is a lock-free flight recorder: a fixed ring of the most
// recent span/event notes for one job. Writers (hot path) perform only
// atomic stores into preallocated slots — zero steady-state allocation
// — so the recorder can stay on during production sweeps and still
// hold the last moments before a failure. Readers (cold path: the
// /debug/flightrecorder endpoint, the on-failure WAL dump) snapshot
// via per-slot sequence validation and simply skip slots that were
// being rewritten mid-read.
//
// Memory bound: len(slots) × 56 bytes of slot state plus the interned
// path table (≤ maxFlightPaths strings) — a 1024-entry recorder is
// ~60 KB regardless of how long the job runs.
type Flight struct {
	slots  []flightSlot
	cursor atomic.Uint64

	// paths interns slot path strings: hot-path writers publish a
	// small uint32 index, never a string. Interning a *new* path takes
	// a mutex, but the set of span paths is static per program, so
	// steady state is a single lock-free map load.
	paths   sync.Map // string -> uint32
	pathsMu sync.Mutex
	names   atomic.Pointer[[]string]
}

// flightSlot is one ring entry. Every field is atomic: a writer that
// wraps onto a slot mid-read cannot race the reader, it can only cause
// the reader's sequence check to reject the slot.
type flightSlot struct {
	// seq is 2·ticket+1 while the slot is being written, 2·ticket+2
	// once complete. Readers accept a slot only when seq is even and
	// unchanged across the field reads.
	seq  atomic.Uint64
	kind atomic.Uint32 // flightSpan or flightEvent
	path atomic.Uint32 // index into the interned path table
	inst atomic.Uint64
	a    atomic.Uint64 // span: duration ns; event: first payload word
	b    atomic.Uint64 // span: span ID;     event: second payload word
}

// Note kinds.
const (
	flightSpan  = 1
	flightEvent = 2
)

// maxFlightPaths caps the interned path table; overflow notes intern
// as the sentinel index 0 ("!overflow").
const maxFlightPaths = 1024

// NewFlight returns a recorder retaining the last n notes (n is
// rounded up to at least 16).
func NewFlight(n int) *Flight {
	if n < 16 {
		n = 16
	}
	f := &Flight{slots: make([]flightSlot, n)}
	names := []string{"!overflow"}
	f.names.Store(&names)
	return f
}

// Cap returns the ring capacity.
func (f *Flight) Cap() int { return len(f.slots) }

// intern maps a path to its table index, adding it on first use.
func (f *Flight) intern(path string) uint32 {
	if v, ok := f.paths.Load(path); ok {
		return v.(uint32)
	}
	f.pathsMu.Lock()
	defer f.pathsMu.Unlock()
	if v, ok := f.paths.Load(path); ok {
		return v.(uint32)
	}
	names := *f.names.Load()
	if len(names) >= maxFlightPaths {
		return 0
	}
	idx := uint32(len(names))
	next := make([]string, len(names)+1)
	copy(next, names)
	next[len(names)] = path
	f.names.Store(&next)
	f.paths.Store(path, idx)
	return idx
}

// noteSpan records a completed span (duration in a, span ID in b).
func (f *Flight) noteSpan(path string, id, inst uint64, d time.Duration) {
	f.note(flightSpan, path, inst, uint64(d.Nanoseconds()), id)
}

// noteEvent records a point event with two free payload words.
func (f *Flight) noteEvent(path string, inst, a, b uint64) {
	f.note(flightEvent, path, inst, a, b)
}

func (f *Flight) note(kind uint32, path string, inst, a, b uint64) {
	ticket := f.cursor.Add(1) - 1
	s := &f.slots[ticket%uint64(len(f.slots))]
	s.seq.Store(2*ticket + 1) // odd: write in progress
	s.kind.Store(kind)
	s.path.Store(f.intern(path))
	s.inst.Store(inst)
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(2*ticket + 2) // even: complete
}

// FlightNote is one decoded recorder entry.
type FlightNote struct {
	Seq  uint64 // global ticket (monotone; orders notes causally)
	Kind string // "span" or "event"
	Path string
	Inst uint64
	A    uint64
	B    uint64
}

// Snapshot decodes the currently valid ring contents, oldest first.
// Slots concurrently being rewritten are skipped — a snapshot is a
// best-effort consistent sample, which is all a flight recorder needs.
func (f *Flight) Snapshot() []FlightNote {
	names := *f.names.Load()
	out := make([]FlightNote, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		seq1 := s.seq.Load()
		if seq1 == 0 || seq1%2 == 1 {
			continue // never written, or mid-write
		}
		n := FlightNote{
			Seq:  seq1/2 - 1,
			Inst: s.inst.Load(),
			A:    s.a.Load(),
			B:    s.b.Load(),
		}
		kind := s.kind.Load()
		pathIdx := s.path.Load()
		if s.seq.Load() != seq1 {
			continue // rewritten underneath us
		}
		switch kind {
		case flightSpan:
			n.Kind = "span"
		case flightEvent:
			n.Kind = "event"
		default:
			continue
		}
		if int(pathIdx) < len(names) {
			n.Path = names[pathIdx]
		} else {
			n.Path = "!overflow"
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSONL renders a snapshot as one JSON object per line — the
// format of the on-failure WAL-directory dumps and the
// /debug/flightrecorder endpoint.
func (f *Flight) WriteJSONL(w io.Writer) error {
	var b strings.Builder
	for _, n := range f.Snapshot() {
		b.WriteString(`{"seq":`)
		b.WriteString(strconv.FormatUint(n.Seq, 10))
		b.WriteString(`,"kind":`)
		b.WriteString(strconv.Quote(n.Kind))
		b.WriteString(`,"path":`)
		b.WriteString(strconv.Quote(n.Path))
		b.WriteString(`,"inst":`)
		b.WriteString(strconv.FormatUint(n.Inst, 10))
		if n.Kind == "span" {
			b.WriteString(`,"dur_ns":`)
			b.WriteString(strconv.FormatUint(n.A, 10))
			b.WriteString(`,"span_id":"`)
			b.WriteString(fmt.Sprintf("%016x", n.B))
			b.WriteString(`"`)
		} else {
			b.WriteString(`,"a":`)
			b.WriteString(strconv.FormatUint(n.A, 10))
			b.WriteString(`,"b":`)
			b.WriteString(strconv.FormatUint(n.B, 10))
		}
		b.WriteString("}\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

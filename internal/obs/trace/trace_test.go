package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDDeterministic(t *testing.T) {
	a := ID(42, []byte(`{"cells":3}`))
	b := ID(42, []byte(`{"cells":3}`))
	if a != b {
		t.Fatalf("same (seed, spec) gave different trace IDs: %x vs %x", a, b)
	}
	if ID(43, []byte(`{"cells":3}`)) == a {
		t.Fatalf("different seeds collided on trace ID %x", a)
	}
	if ID(42, []byte(`{"cells":4}`)) == a {
		t.Fatalf("different specs collided on trace ID %x", a)
	}
}

func TestSpanIDsAreTopologyPure(t *testing.T) {
	build := func() []SpanRec {
		tr := New(ID(7, []byte("spec")), Options{})
		ctx := NewContext(context.Background(), tr)
		ctx, root := Start(ctx, "run")
		cctx, phase := Start(ctx, "phase")
		_, cell := StartInst(cctx, "cell", 3)
		cell.End()
		phase.End()
		root.End()
		return tr.sortedSpans()
	}
	a, b := build(), build()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("expected 3 spans, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Parent != b[i].Parent || a[i].Path != b[i].Path || a[i].Inst != b[i].Inst {
			t.Fatalf("span %d topology differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Sibling instances of the same phase get distinct IDs.
	tr := New(1, Options{})
	ctx := NewContext(context.Background(), tr)
	_, s0 := StartInst(ctx, "cell", 0)
	_, s1 := StartInst(ctx, "cell", 1)
	if s0.SpanID() == s1.SpanID() {
		t.Fatalf("distinct instances share span ID %x", s0.SpanID())
	}
	if s0.Path() != s1.Path() {
		t.Fatalf("instance index leaked into span path: %q vs %q", s0.Path(), s1.Path())
	}
	s0.End()
	s1.End()
}

func TestStartWithoutTracerIsMetricsOnly(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "orphan")
	if sp == nil {
		t.Fatalf("expected a metrics-only span without a tracer")
	}
	if sp.Path() != "orphan" {
		t.Fatalf("metrics-only span path %q, want %q", sp.Path(), "orphan")
	}
	// Nesting still builds paths so the histogram series match the
	// traced layout.
	_, child := Start(ctx2, "phase")
	if child.Path() != "orphan/phase" {
		t.Fatalf("nested metrics-only path %q, want orphan/phase", child.Path())
	}
	child.End()
	if d := sp.End(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	if FromContext(nil) != nil || FromContext(ctx) != nil {
		t.Fatalf("FromContext invented a tracer")
	}
	c2, sp2 := StartInst(nil, "x", 0)
	if c2 != nil || sp2 != nil {
		t.Fatalf("StartInst on nil ctx not inert")
	}
	if d := sp2.End(); d != 0 {
		t.Fatalf("nil span End returned %v", d)
	}
}

func TestMaxSpansDropsButCounts(t *testing.T) {
	tr := New(1, Options{MaxSpans: 4})
	ctx := NewContext(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := StartInst(ctx, "s", uint64(i))
		sp.End()
	}
	if got := len(tr.Snapshot()); got != 4 {
		t.Fatalf("retained %d spans, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped %d spans, want 6", got)
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	tr := New(1, Options{Flight: NewFlight(32)})
	ctx := NewContext(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cctx, sp := StartInst(ctx, "cell", uint64(g*50+i))
				_, inner := Start(cctx, "inner")
				inner.End()
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Snapshot()); got != 800 {
		t.Fatalf("recorded %d spans, want 800", got)
	}
}

func TestFlightWraparound(t *testing.T) {
	f := NewFlight(16)
	for i := 0; i < 100; i++ {
		f.noteEvent("jobd.cell", uint64(i), uint64(i), 0)
	}
	notes := f.Snapshot()
	if len(notes) != 16 {
		t.Fatalf("snapshot has %d notes, want ring capacity 16", len(notes))
	}
	// The ring keeps the most recent 16 tickets, oldest first.
	for i, n := range notes {
		want := uint64(84 + i)
		if n.Seq != want {
			t.Fatalf("note %d has seq %d, want %d", i, n.Seq, want)
		}
		if n.Inst != want || n.A != want {
			t.Fatalf("note %d payload (inst=%d a=%d) does not match seq %d", i, n.Inst, n.A, want)
		}
	}
}

func TestFlightConcurrentWrapRace(t *testing.T) {
	f := NewFlight(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				f.noteEvent("w", uint64(g), uint64(i), 1)
				f.noteSpan("s", uint64(i), uint64(g), time.Microsecond)
			}
		}(g)
	}
	// Concurrent readers while writers wrap the ring hard.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, n := range f.Snapshot() {
					if n.Kind != "span" && n.Kind != "event" {
						t.Errorf("corrupt note kind %q", n.Kind)
						return
					}
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := len(f.Snapshot()); got != 16 {
		t.Fatalf("final snapshot has %d notes, want 16", got)
	}
}

func TestFlightPathInterningOverflow(t *testing.T) {
	f := NewFlight(16)
	// Exhaust the path table with synthetic dynamic paths.
	long := strings.Repeat("p/", 4)
	for i := 0; i < maxFlightPaths+10; i++ {
		f.noteEvent(long+string(rune('a'+i%26))+strings.Repeat("x", i%7)+itoa(i), 0, 0, 0)
	}
	notes := f.Snapshot()
	overflow := 0
	for _, n := range notes {
		if n.Path == "!overflow" {
			overflow++
		}
	}
	if overflow == 0 {
		t.Fatalf("expected overflow sentinel paths after exhausting the intern table")
	}
}

func itoa(i int) string {
	return string(rune('0'+i/1000%10)) + string(rune('0'+i/100%10)) +
		string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

func TestFlightJSONLIsValid(t *testing.T) {
	f := NewFlight(16)
	f.noteSpan("run/phase", 0xabc, 2, 1500*time.Nanosecond)
	f.noteEvent("jobd.cell", 7, 1, 2)
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
	}
}

func TestChromeExportIsValidTraceEvent(t *testing.T) {
	tr := New(ID(9, []byte("s")), Options{})
	ctx := NewContext(context.Background(), tr)
	ctx, root := Start(ctx, "run")
	_, cell := StartInst(ctx, "cell", 1)
	cell.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 { // metadata + 2 spans
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
	seenX := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
			seenX++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if ev.Pid != 1 {
			t.Fatalf("event pid %d, want 1", ev.Pid)
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Fatalf("negative ts/dur in %+v", ev)
		}
		if _, ok := ev.Args["span_id"]; !ok {
			t.Fatalf("X event missing span_id args: %+v", ev)
		}
	}
	if seenX != 2 {
		t.Fatalf("got %d complete events, want 2", seenX)
	}
}

func TestTopologyByteIdentical(t *testing.T) {
	run := func() string {
		tr := New(ID(5, []byte("job")), Options{Flight: NewFlight(16)})
		ctx := NewContext(context.Background(), tr)
		ctx, root := Start(ctx, "run")
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cctx, sp := StartInst(ctx, "cell", uint64(i))
				_, inner := Start(cctx, "solve")
				inner.End()
				sp.End()
			}(i)
		}
		wg.Wait()
		root.End()
		var buf bytes.Buffer
		if err := tr.WriteTopology(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("trace topology differs between identical concurrent runs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

func TestJSONLExportParses(t *testing.T) {
	tr := New(3, Options{})
	ctx := NewContext(context.Background(), tr)
	_, sp := Start(ctx, "run")
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 { // header + 1 span
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSONL %q: %v", line, err)
		}
	}
}

func TestMetricPathCardinalityBounded(t *testing.T) {
	// A million instances of the same phase must not create a million
	// metric series: the instance index goes into the span ID only.
	tr := New(1, Options{})
	ctx := NewContext(context.Background(), tr)
	before := pathCount.Load()
	for i := 0; i < 1000; i++ {
		_, sp := StartInst(ctx, "bounded_cell", uint64(i))
		sp.End()
	}
	after := pathCount.Load()
	if after-before > 1 {
		t.Fatalf("1000 instances created %d new metric paths, want 1", after-before)
	}
}

package obs

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(10)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1010 {
		t.Fatalf("counter = %d, want %d", got, 8*1010)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestFloatCounterConcurrent(t *testing.T) {
	var c FloatCounter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Fatalf("float counter = %g, want 4000", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 1e6} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	// Upper bounds are inclusive: {≤1: 2, ≤10: 2, ≤100: 2, +Inf: 1}.
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 7 {
		t.Fatalf("count = %d, want 7", snap.Count)
	}
	if snap.Sum != 0.5+1+5+10+50+100+1e6 {
		t.Fatalf("sum = %g", snap.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(ExpBuckets(1e-3, 10, 6))
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(w) * 1e-3)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 16*500 {
		t.Fatalf("count = %d, want %d", got, 16*500)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	newHistogram([]float64{1, 1, 2})
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "ignored later help")
	if a != b {
		t.Fatal("same series resolved to different counters")
	}
	l1 := r.Counter("x_total", "help", L("worker", "1"))
	if l1 == a {
		t.Fatal("labelled series aliased the unlabelled one")
	}
	// Label order must not matter.
	m1 := r.Gauge("g", "", L("a", "1"), L("b", "2"))
	m2 := r.Gauge("g", "", L("b", "2"), L("a", "1"))
	if m1 != m2 {
		t.Fatal("label order changed series identity")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	r.Counter("bad name!", "")
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b help").Add(2)
	r.Gauge("a_value", "a help").Set(1.5)
	r.Counter("b_total", "", L("worker", "1")).Inc()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)

	var out1, out2 strings.Builder
	if err := r.WritePrometheus(&out1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&out2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatal("exposition not deterministic")
	}
	want := `# HELP a_value a help
# TYPE a_value gauge
a_value 1.5
# HELP b_total b help
# TYPE b_total counter
b_total 2
b_total{worker="1"} 1
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 10.55
lat_seconds_count 3
`
	if got := out1.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// captureSink records events for assertions.
type captureSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *captureSink) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *captureSink) names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.events))
	for i, e := range c.events {
		out[i] = e.Name
	}
	return out
}

func TestEmitRoutesThroughCurrentSink(t *testing.T) {
	cap := &captureSink{}
	prev := SetSink(cap)
	defer SetSink(prev)
	if !Enabled() {
		t.Fatal("Enabled() false with a live sink")
	}
	Emit("hello", F("n", 3))
	if got := cap.names(); len(got) != 1 || got[0] != "hello" {
		t.Fatalf("events = %v", got)
	}
	SetSink(Discard)
	if Enabled() {
		t.Fatal("Enabled() true with Discard")
	}
	Emit("dropped")
	if got := cap.names(); len(got) != 1 {
		t.Fatalf("Discard leaked an event: %v", got)
	}
}

func TestTextSinkFormat(t *testing.T) {
	var b strings.Builder
	s := NewTextSink(&syncWriter{w: &b})
	s.Emit(Event{Name: "mc.progress", Fields: []Field{
		F("done", 12), F("rate", 3.5), F("phase", "rtn pass"), F("ok", true),
		F("err", errors.New("boom")), F("d", 1500*time.Millisecond),
	}})
	got := b.String()
	want := "mc.progress done=12 rate=3.5 phase=\"rtn pass\" ok=true err=\"boom\" d=1.5s\n"
	if got != want {
		t.Fatalf("text line:\ngot  %q\nwant %q", got, want)
	}
}

func TestJSONLSinkFormat(t *testing.T) {
	var b strings.Builder
	s := NewJSONLSink(&syncWriter{w: &b})
	s.Emit(Event{Name: "span", Fields: []Field{
		F("span", "run/clean"), F("seconds", 0.25), F("n", int64(7)), F("ok", false),
	}})
	got := b.String()
	want := `{"event":"span","span":"run/clean","seconds":0.25,"n":7,"ok":false}` + "\n"
	if got != want {
		t.Fatalf("jsonl line:\ngot  %q\nwant %q", got, want)
	}
}

// syncWriter adapts a strings.Builder (not safe for concurrent use) to
// the sink tests.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestSinksAreConcurrencySafe(t *testing.T) {
	var b strings.Builder
	for _, s := range []Sink{NewTextSink(&syncWriter{w: &b}), NewJSONLSink(&syncWriter{w: &b})} {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					s.Emit(Event{Name: "e", Fields: []Field{F("i", i)}})
				}
			}()
		}
		wg.Wait()
	}
}

func TestMultiSink(t *testing.T) {
	a, b := &captureSink{}, &captureSink{}
	m := MultiSink(a, nil, Discard, b)
	m.Emit(Event{Name: "x"})
	if len(a.names()) != 1 || len(b.names()) != 1 {
		t.Fatal("multi sink dropped an event")
	}
	if MultiSink() != Discard || MultiSink(nil, Discard) != Discard {
		t.Fatal("empty multi sink should collapse to Discard")
	}
}

func TestSpanNestingAndRecording(t *testing.T) {
	cap := &captureSink{}
	prev := SetSink(cap)
	defer SetSink(prev)

	root := StartSpan("test_run")
	child := root.Child("phase1")
	if child.Name() != "test_run/phase1" {
		t.Fatalf("child name = %q", child.Name())
	}
	if d := child.End(); d < 0 {
		t.Fatalf("duration = %v", d)
	}
	root.End()

	names := cap.names()
	if len(names) != 2 || names[0] != "span" || names[1] != "span" {
		t.Fatalf("span events = %v", names)
	}
	// Durations land in the labelled histogram of the default registry.
	snap := spanSeconds("test_run/phase1").Snapshot()
	if snap.Count != 1 {
		t.Fatalf("span histogram count = %d, want 1", snap.Count)
	}
}

func TestNilSpanIsInert(t *testing.T) {
	var s *Span
	if s.Name() != "" || s.End() != 0 {
		t.Fatal("nil span not inert")
	}
	if c := s.Child("x"); c == nil || c.Name() != "x" {
		t.Fatal("nil span Child should start a root span")
	}
}

func TestServeMetricsRoundTrip(t *testing.T) {
	GetCounter("obs_test_roundtrip_total", "test counter").Add(41)
	srv, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "obs_test_roundtrip_total 41") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	// pprof index must be mounted too.
	resp2, err := http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp2.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp2.StatusCode)
	}
}

func TestMetricsServerCloseIsGraceful(t *testing.T) {
	srv, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// An in-flight scrape must finish during Close, not be severed: start
	// a request, then Close concurrently and check the response still
	// arrives intact.
	started := make(chan struct{})
	closed := make(chan error, 1)
	go func() {
		<-started
		closed <- srv.Close()
	}()
	close(started)
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		// Close may win the race and refuse the dial; that is the
		// "listener stopped accepting" half of graceful shutdown.
		if cerr := <-closed; cerr != nil {
			t.Fatalf("close: %v", cerr)
		}
		return
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatalf("in-flight scrape severed by Close: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if cerr := <-closed; cerr != nil {
		t.Fatalf("close: %v", cerr)
	}
	// Once closed, the port no longer accepts.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func TestMetricsServerCloseIdempotentish(t *testing.T) {
	srv, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use; the zero value is ready.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas panic: counters only go up.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: negative delta added to a counter")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float metric (e.g.
// accumulated busy seconds). Safe for concurrent use; zero value ready.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates delta. Negative deltas panic: counters only go up.
func (c *FloatCounter) Add(delta float64) {
	if delta < 0 {
		panic("obs: negative delta added to a float counter")
	}
	addFloatBits(&c.bits, delta)
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float metric that can go up and down (last write wins).
// Safe for concurrent use; the zero value reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) { addFloatBits(&g.bits, delta) }

// addFloatBits is the lock-free float accumulate loop shared by
// FloatCounter.Add and Gauge.Add: CAS on the IEEE-754 bit pattern
// until the delta lands exactly once.
func addFloatBits(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histStripes is the number of independently locked shards a histogram
// spreads its observations over. Eight keeps worst-case contention an
// order of magnitude below a single mutex while costing only a few
// hundred bytes per histogram.
const histStripes = 8

// Histogram accumulates observations into fixed buckets. It is
// lock-striped: each observation locks one of histStripes shards chosen
// round-robin, so concurrent observers rarely collide. Construct with
// Registry.Histogram (or newHistogram); the zero value is not usable.
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets, in
	// strictly increasing order; an implicit +Inf bucket follows.
	bounds  []float64
	stripes [histStripes]histStripe
	rr      atomic.Uint32
}

type histStripe struct {
	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; the last slot is the +Inf bucket
	sum    float64
	n      uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	for i := range h.stripes {
		h.stripes[i].counts = make([]uint64, len(bounds)+1)
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Bucket search outside the lock: bounds are immutable.
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	s := &h.stripes[h.rr.Add(1)%histStripes]
	s.mu.Lock()
	s.counts[idx]++
	s.sum += v
	s.n++
	s.mu.Unlock()
}

// HistSnapshot is a consistent-per-stripe merged view of a histogram.
type HistSnapshot struct {
	// Bounds mirrors the histogram's finite upper bounds; Counts has one
	// extra trailing slot for the +Inf bucket.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot merges the stripes. Concurrent Observe calls may or may not
// be included, but every sample is counted exactly once eventually.
func (h *Histogram) Snapshot() HistSnapshot {
	snap := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		for j, c := range s.counts {
			snap.Counts[j] += c
		}
		snap.Sum += s.sum
		snap.Count += s.n
		s.mu.Unlock()
	}
	return snap
}

// ExpBuckets returns n strictly increasing bucket bounds starting at
// start and growing by factor — the standard shape for latency
// histograms. Panics on a non-positive start, a factor ≤ 1 or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1 and n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// TimeBuckets is the default span/duration bucket layout: 1 µs to ~67 s
// in ×4 steps.
func TimeBuckets() []float64 { return ExpBuckets(1e-6, 4, 14) }

package obs

import "time"

// spanSeconds records the duration of every ended span, one series per
// span name.
func spanSeconds(name string) *Histogram {
	return std.Histogram("samurai_span_seconds",
		"wall-clock duration of named pipeline spans", TimeBuckets(),
		L("span", name))
}

// Span is a named, nested, wall-clock-timed region of the pipeline.
// Ending a span records its duration in the samurai_span_seconds
// histogram (labelled with the span's full slash-joined path) and emits
// a "span" progress event. A nil *Span is inert: every method is a
// no-op, so optional instrumentation can hold and End nil spans freely.
//
// Spans measure and report; they never influence the computation they
// time — that is what keeps instrumented runs bit-identical to
// unobserved ones.
type Span struct {
	name  string
	start time.Time
}

// StartSpan opens a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child opens a nested span named parent/name. Child on a nil span
// starts a root span, so call sites need not know whether tracing is
// structured above them.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return StartSpan(name)
	}
	return &Span{name: s.name + "/" + name, start: time.Now()}
}

// Name returns the span's full slash-joined path ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End closes the span, records its duration and emits a "span" event.
// It returns the measured duration (0 for nil spans) and is safe to
// call at most once per span.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	spanSeconds(s.name).Observe(d.Seconds())
	Emit("span", F("span", s.name), F("seconds", d.Seconds()))
	return d
}

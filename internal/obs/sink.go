package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Field is one key/value pair of a progress event. Values are limited
// to the types the encoders know how to render losslessly; anything
// else is formatted with %v.
type Field struct {
	Key   string
	Value any
}

// F constructs a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured progress event: a name plus ordered fields.
// Events carry no timestamp by design — they describe *what* happened;
// sinks that need arrival times can stamp on receipt.
type Event struct {
	Name   string
	Fields []Field
}

// Sink consumes progress events. Implementations must be safe for
// concurrent Emit calls: instrumented fan-outs (montecarlo workers,
// samurai's per-transistor goroutines) emit from many goroutines.
type Sink interface {
	Emit(e Event)
}

// Discard is the no-op sink: every event is dropped before any
// formatting work happens. It is the process-wide default.
var Discard Sink = discardSink{}

type discardSink struct{}

func (discardSink) Emit(Event) {}

// textSink renders one human-readable line per event.
type textSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink returns a sink writing `name key=value ...` lines to w,
// serialised under a mutex. Write errors are silently dropped —
// telemetry must never fail the computation it observes.
func NewTextSink(w io.Writer) Sink { return &textSink{w: w} }

func (s *textSink) Emit(e Event) {
	var b strings.Builder
	b.WriteString(e.Name)
	for _, f := range e.Fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(fieldText(f.Value))
	}
	b.WriteByte('\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore bareerr an event-emit write failure must never surface into the observed computation
	s.w.Write([]byte(b.String()))
}

// jsonlSink renders one JSON object per line.
type jsonlSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLSink returns a sink writing one JSON object per event to w
// (key "event" holds the name, fields follow in order), serialised
// under a mutex. Write errors are silently dropped.
func NewJSONLSink(w io.Writer) Sink { return &jsonlSink{w: w} }

func (s *jsonlSink) Emit(e Event) {
	var b strings.Builder
	b.WriteString(`{"event":`)
	b.WriteString(strconv.Quote(e.Name))
	for _, f := range e.Fields {
		b.WriteByte(',')
		b.WriteString(strconv.Quote(f.Key))
		b.WriteByte(':')
		b.WriteString(fieldJSON(f.Value))
	}
	b.WriteString("}\n")
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore bareerr a metrics-flush write failure must never surface into the observed computation
	s.w.Write([]byte(b.String()))
}

// fieldText renders a field value for the text sink.
func fieldText(v any) string {
	switch x := v.(type) {
	case string:
		if strings.ContainsAny(x, " \t\n\"=") {
			return strconv.Quote(x)
		}
		return x
	case time.Duration:
		return x.String()
	case float64:
		return strconv.FormatFloat(x, 'g', 6, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', 6, 32)
	case bool:
		return strconv.FormatBool(x)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case error:
		return strconv.Quote(x.Error())
	default:
		return fmt.Sprintf("%v", v)
	}
}

// fieldJSON renders a field value as a JSON literal.
func fieldJSON(v any) string {
	switch x := v.(type) {
	case string:
		return strconv.Quote(x)
	case time.Duration:
		return strconv.FormatFloat(x.Seconds(), 'g', -1, 64)
	case float64:
		return jsonFloat(x)
	case float32:
		return jsonFloat(float64(x))
	case bool:
		return strconv.FormatBool(x)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case error:
		return strconv.Quote(x.Error())
	default:
		return strconv.Quote(fmt.Sprintf("%v", v))
	}
}

// jsonFloat renders a float as JSON; non-finite values (not
// representable in JSON) become quoted strings.
func jsonFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if strings.ContainsAny(s, "IN") { // Inf, -Inf, NaN
		return strconv.Quote(s)
	}
	return s
}

// MultiSink fans every event out to each sink in order.
func MultiSink(sinks ...Sink) Sink {
	out := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil && s != Discard {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return Discard
	}
	return out
}

type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

package obs

import (
	"encoding/json"
	"runtime"
	"testing"
)

func TestInfoIdentifiesBuildAndRun(t *testing.T) {
	ri := Info(42, "deadbeef")
	if ri.GoVersion != runtime.Version() {
		t.Fatalf("go version %q, want %q", ri.GoVersion, runtime.Version())
	}
	if ri.OS != runtime.GOOS || ri.Arch != runtime.GOARCH {
		t.Fatalf("platform %s/%s, want %s/%s", ri.OS, ri.Arch, runtime.GOOS, runtime.GOARCH)
	}
	if ri.NumCPU < 1 {
		t.Fatalf("NumCPU %d", ri.NumCPU)
	}
	if ri.Seed != 42 || ri.SpecHash != "deadbeef" {
		t.Fatalf("run identity not carried: %+v", ri)
	}
	if ri.Revision == "" {
		t.Fatalf("revision must never be empty (use \"unknown\")")
	}
	if len(ri.LintWaivers) == 0 {
		t.Fatalf("waiver provenance missing")
	}
	// The process half is stable across calls.
	if again := Info(42, "deadbeef"); again.NumCPU != ri.NumCPU || again.Revision != ri.Revision {
		t.Fatalf("process provenance changed between calls")
	}
}

func TestSpliceJSONPreservesBody(t *testing.T) {
	body := []byte("{\n  \"result\": 1,\n  \"gates\": [true]\n}")
	out := SpliceJSON(body, Info(7, "abc"))

	var doc struct {
		RunInfo RunInfo `json:"run_info"`
		Result  int     `json:"result"`
		Gates   []bool  `json:"gates"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("spliced document is not valid JSON: %v\n%s", err, out)
	}
	if doc.Result != 1 || len(doc.Gates) != 1 || !doc.Gates[0] {
		t.Fatalf("body fields damaged by splice: %s", out)
	}
	if doc.RunInfo.Seed != 7 || doc.RunInfo.SpecHash != "abc" {
		t.Fatalf("run_info not spliced: %s", out)
	}
	// The original body bytes must appear verbatim after the inserted
	// member — the deterministic report body stays bit-pinned.
	if want := string(body[1:]); !containsSuffix(string(out), want) {
		t.Fatalf("body bytes not preserved verbatim:\n%s", out)
	}
}

func containsSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

func TestSpliceJSONEdgeShapes(t *testing.T) {
	ri := Info(0, "")
	// Empty object: no trailing comma.
	out := SpliceJSON([]byte("{}"), ri)
	var m map[string]any
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatalf("splice into {} invalid: %v\n%s", err, out)
	}
	if _, ok := m["run_info"]; !ok {
		t.Fatalf("run_info missing from spliced empty object")
	}
	// Non-object bodies pass through untouched.
	for _, body := range []string{"[1,2]", `"str"`, ""} {
		if got := string(SpliceJSON([]byte(body), ri)); got != body {
			t.Fatalf("non-object body %q modified to %q", body, got)
		}
	}
	// Leading whitespace before the brace is tolerated.
	out = SpliceJSON([]byte("  \n{\"a\":1}"), ri)
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatalf("splice after whitespace invalid: %v\n%s", err, out)
	}
}

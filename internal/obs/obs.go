// Package obs is the repository's zero-dependency observability layer:
// a race-safe metrics registry (atomic counters and gauges,
// lock-striped histograms), lightweight wall-clock spans and structured
// progress events, with Prometheus text exposition and pluggable event
// sinks (stderr text, JSONL, discard).
//
// # Determinism guarantee
//
// Instrumentation built on this package is deterministic by
// construction: obs never touches rng.Stream or any other source of
// simulation randomness, and instrumented code never branches on a
// metric or sink value. Seeded simulation results are therefore
// bit-identical whether the process-wide sink is Discard or a live
// sink, and whether or not /metrics is being scraped. (Wall-clock
// readings appear only in telemetry output — event fields, span
// durations, throughput gauges — never in results.) The golden test
// TestObsDeterminism in the root package enforces this.
//
// # Usage
//
// Instrumented packages resolve their series lazily from the default
// registry, typically in package-level vars:
//
//	var solves = obs.GetCounter("samurai_circuit_newton_solves_total",
//		"completed Newton solves")
//
// Hot loops accumulate into local variables and publish once per call,
// so the per-iteration instrumentation cost is zero. Progress events
// flow through the process-wide sink, which defaults to Discard:
//
//	obs.Emit("montecarlo.progress", obs.F("done", n), obs.F("cells_per_sec", r))
//
// Binaries opt in with -progress (text sink on stderr) and
// -metrics-addr (Prometheus exposition plus net/http/pprof).
package obs

import "sync/atomic"

// std is the process-wide default registry; package-level helpers
// resolve series against it.
var std = NewRegistry()

// Default returns the process-wide registry (used by Handler and the
// package-level metric constructors).
func Default() *Registry { return std }

// GetCounter resolves a counter in the default registry.
func GetCounter(name, help string, labels ...Label) *Counter {
	return std.Counter(name, help, labels...)
}

// GetFloatCounter resolves a float counter in the default registry.
func GetFloatCounter(name, help string, labels ...Label) *FloatCounter {
	return std.FloatCounter(name, help, labels...)
}

// GetGauge resolves a gauge in the default registry.
func GetGauge(name, help string, labels ...Label) *Gauge {
	return std.Gauge(name, help, labels...)
}

// GetHistogram resolves a histogram in the default registry.
func GetHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return std.Histogram(name, help, bounds, labels...)
}

// sinkBox wraps the current sink so it can live in an atomic.Pointer.
type sinkBox struct{ s Sink }

var currentSink atomic.Pointer[sinkBox]

func init() {
	currentSink.Store(&sinkBox{s: Discard})
}

// SetSink swaps the process-wide event sink and returns the previous
// one. Pass Discard (or nil) to turn progress events off.
func SetSink(s Sink) Sink {
	if s == nil {
		s = Discard
	}
	prev := currentSink.Swap(&sinkBox{s: s})
	return prev.s
}

// CurrentSink returns the process-wide event sink.
func CurrentSink() Sink { return currentSink.Load().s }

// Enabled reports whether progress events currently go anywhere.
// Emitters with non-trivial field construction cost should check it
// first; Emit itself is safe to call regardless.
func Enabled() bool { return CurrentSink() != Discard }

// Emit sends a progress event to the process-wide sink. With the
// Discard sink this is a single atomic load plus an interface call.
func Emit(name string, fields ...Field) {
	s := CurrentSink()
	if s == Discard {
		return
	}
	s.Emit(Event{Name: name, Fields: fields})
}

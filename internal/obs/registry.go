package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one key="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds named metric series and renders them in Prometheus
// text exposition format. Lookups are get-or-create and idempotent:
// asking twice for the same (name, labels) returns the same metric, so
// instrumented code can resolve its series lazily on hot paths without
// coordination. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry // keyed by name + rendered label set
	help    map[string]string // first registration wins
}

type entry struct {
	name   string
	labels []Label // sorted by key
	metric any     // *Counter | *FloatCounter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}, help: map[string]string{}}
}

// Counter returns the counter series (name, labels), creating it on
// first use. help documents the metric in the exposition (the first
// registration of a name wins). Panics if the series exists with a
// different metric type or the name is not a valid metric name.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return lookup(r, name, help, labels, func() *Counter { return &Counter{} })
}

// FloatCounter returns the float counter series (name, labels),
// creating it on first use.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	return lookup(r, name, help, labels, func() *FloatCounter { return &FloatCounter{} })
}

// Gauge returns the gauge series (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return lookup(r, name, help, labels, func() *Gauge { return &Gauge{} })
}

// Histogram returns the histogram series (name, labels), creating it
// with the given bucket bounds on first use (later calls reuse the
// original buckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return lookup(r, name, help, labels, func() *Histogram { return newHistogram(bounds) })
}

// lookup implements the shared get-or-create path.
func lookup[M any](r *Registry, name, help string, labels []Label, create func() *M) *M {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	labels = sortedLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		m, ok := e.metric.(*M)
		if !ok {
			panic(fmt.Sprintf("obs: metric %s already registered with type %T", key, e.metric))
		}
		return m
	}
	m := create()
	r.entries[key] = &entry{name: name, labels: labels, metric: m}
	if _, ok := r.help[name]; !ok && help != "" {
		r.help[name] = help
	}
	return m
}

// WritePrometheus renders every series in Prometheus text format,
// deterministically ordered by metric name then label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return seriesKey("", entries[i].labels) < seriesKey("", entries[j].labels)
	})

	var b strings.Builder
	lastName := ""
	for _, e := range entries {
		if e.name != lastName {
			if h := help[e.name]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", e.name, h)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, typeName(e.metric))
			lastName = e.name
		}
		writeSeries(&b, e)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func typeName(m any) string {
	switch m.(type) {
	case *Counter, *FloatCounter:
		return "counter"
	case *Gauge:
		return "gauge"
	case *Histogram:
		return "histogram"
	default:
		panic(fmt.Sprintf("obs: unknown metric type %T", m))
	}
}

func writeSeries(b *strings.Builder, e *entry) {
	switch m := e.metric.(type) {
	case *Counter:
		fmt.Fprintf(b, "%s%s %d\n", e.name, labelString(e.labels, ""), m.Value())
	case *FloatCounter:
		fmt.Fprintf(b, "%s%s %s\n", e.name, labelString(e.labels, ""), formatFloat(m.Value()))
	case *Gauge:
		fmt.Fprintf(b, "%s%s %s\n", e.name, labelString(e.labels, ""), formatFloat(m.Value()))
	case *Histogram:
		snap := m.Snapshot()
		cum := uint64(0)
		for i, c := range snap.Counts {
			cum += c
			le := "+Inf"
			if i < len(snap.Bounds) {
				le = formatFloat(snap.Bounds[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", e.name, labelString(e.labels, le), cum)
		}
		fmt.Fprintf(b, "%s_sum%s %s\n", e.name, labelString(e.labels, ""), formatFloat(snap.Sum))
		fmt.Fprintf(b, "%s_count%s %d\n", e.name, labelString(e.labels, ""), snap.Count)
	}
}

// labelString renders {k="v",...}; le, when non-empty, is appended as
// the histogram bucket bound label. Empty label sets render as "".
func labelString(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le=`)
		b.WriteString(strconv.Quote(le))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	return name + labelString(labels, "")
}

func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for i := 1; i < len(out); i++ {
		if out[i].Key == out[i-1].Key {
			panic("obs: duplicate metric label key " + strconv.Quote(out[i].Key))
		}
		if !validLabelKey(out[i].Key) {
			panic("obs: invalid metric label key " + strconv.Quote(out[i].Key))
		}
	}
	if len(out) > 0 && !validLabelKey(out[0].Key) {
		panic("obs: invalid metric label key " + strconv.Quote(out[0].Key))
	}
	return out
}

// validMetricName enforces the Prometheus name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelKey enforces the Prometheus label charset
// [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(key string) bool {
	if key == "" {
		return false
	}
	for i, c := range key {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

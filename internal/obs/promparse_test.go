package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePrometheus is a minimal parser for the Prometheus text
// exposition format, written against the format spec rather than this
// package's writer: names [a-zA-Z_:][a-zA-Z0-9_:]*, label values
// double-quoted with \\, \" and \n escapes, one sample per line,
// # HELP/# TYPE comments. It exists so WritePrometheus is conformance-
// tested against an independent reading of the format.
func parsePrometheus(text string) ([]promSample, error) {
	var out []promSample
	for lineNo, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "# ")
			if !strings.HasPrefix(rest, "HELP ") && !strings.HasPrefix(rest, "TYPE ") {
				return nil, fmt.Errorf("line %d: unknown comment form %q", lineNo+1, line)
			}
			continue
		}
		s := promSample{labels: map[string]string{}}
		i := 0
		for i < len(line) {
			c := line[i]
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(i > 0 && c >= '0' && c <= '9')
			if !ok {
				break
			}
			i++
		}
		if i == 0 {
			return nil, fmt.Errorf("line %d: no metric name in %q", lineNo+1, line)
		}
		s.name = line[:i]
		if i < len(line) && line[i] == '{' {
			i++
			for {
				if i < len(line) && line[i] == '}' {
					i++
					break
				}
				j := i
				for j < len(line) && line[j] != '=' {
					j++
				}
				if j >= len(line) {
					return nil, fmt.Errorf("line %d: unterminated label in %q", lineNo+1, line)
				}
				key := line[i:j]
				if key == "" {
					return nil, fmt.Errorf("line %d: empty label key in %q", lineNo+1, line)
				}
				i = j + 1
				if i >= len(line) || line[i] != '"' {
					return nil, fmt.Errorf("line %d: label value not quoted in %q", lineNo+1, line)
				}
				i++
				var val strings.Builder
				for i < len(line) && line[i] != '"' {
					if line[i] == '\\' && i+1 < len(line) {
						i++
						switch line[i] {
						case 'n':
							val.WriteByte('\n')
						case '\\', '"':
							val.WriteByte(line[i])
						default:
							return nil, fmt.Errorf("line %d: bad escape \\%c", lineNo+1, line[i])
						}
					} else {
						val.WriteByte(line[i])
					}
					i++
				}
				if i >= len(line) {
					return nil, fmt.Errorf("line %d: unterminated label value in %q", lineNo+1, line)
				}
				i++ // closing quote
				s.labels[key] = val.String()
				if i < len(line) && line[i] == ',' {
					i++
				}
			}
		}
		rest := strings.TrimSpace(line[i:])
		if rest == "" || strings.ContainsAny(rest, " \t") {
			return nil, fmt.Errorf("line %d: expected exactly one sample value, got %q", lineNo+1, rest)
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q: %v", lineNo+1, rest, err)
		}
		s.value = v
		out = append(out, s)
	}
	return out, nil
}

// TestPrometheusConformance renders a registry holding every metric
// type and checks the exposition through the independent parser: all
// samples parse, histograms expose a cumulative bucket series ending
// in an explicit le="+Inf" line equal to _count, and label values
// round-trip through quoting.
func TestPrometheusConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("conf_jobs_total", "jobs").Add(3)
	r.FloatCounter("conf_busy_seconds_total", "busy").Add(1.5)
	r.Gauge("conf_depth", "queue depth", L("queue", `with"quote`)).Set(-2.5)
	h := r.Histogram("conf_latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := parsePrometheus(b.String())
	if err != nil {
		t.Fatalf("exposition does not conform to the text format: %v\n%s", err, b.String())
	}

	find := func(name string, labels map[string]string) *promSample {
		for i := range samples {
			s := &samples[i]
			if s.name != name || len(s.labels) != len(labels) {
				continue
			}
			match := true
			for k, v := range labels {
				if s.labels[k] != v {
					match = false
				}
			}
			if match {
				return s
			}
		}
		t.Fatalf("no sample %s%v in:\n%s", name, labels, b.String())
		return nil
	}

	if s := find("conf_jobs_total", nil); s.value != 3 {
		t.Fatalf("counter value %v, want 3", s.value)
	}
	if s := find("conf_busy_seconds_total", nil); s.value != 1.5 {
		t.Fatalf("float counter value %v, want 1.5", s.value)
	}
	if s := find("conf_depth", map[string]string{"queue": `with"quote`}); s.value != -2.5 {
		t.Fatalf("gauge value %v, want -2.5 (label quoting must round-trip)", s.value)
	}

	// Histogram: buckets must be cumulative, the last bucket must be
	// the explicit le="+Inf" one, and it must equal _count.
	var buckets []promSample
	for _, s := range samples {
		if s.name == "conf_latency_seconds_bucket" {
			buckets = append(buckets, s)
		}
	}
	if len(buckets) != 4 { // 3 finite + +Inf
		t.Fatalf("got %d bucket lines, want 4:\n%s", len(buckets), b.String())
	}
	sort.Slice(buckets, func(i, j int) bool {
		fi, erri := strconv.ParseFloat(buckets[i].labels["le"], 64)
		fj, errj := strconv.ParseFloat(buckets[j].labels["le"], 64)
		if erri != nil {
			return false
		}
		if errj != nil {
			return true
		}
		return fi < fj
	})
	wantCum := []float64{1, 2, 3, 4}
	for i, bkt := range buckets {
		if bkt.value != wantCum[i] {
			t.Fatalf("bucket %d (le=%q) = %v, want cumulative %v", i, bkt.labels["le"], bkt.value, wantCum[i])
		}
	}
	inf := buckets[len(buckets)-1]
	if inf.labels["le"] != "+Inf" {
		t.Fatalf("last bucket le=%q, want explicit +Inf", inf.labels["le"])
	}
	if count := find("conf_latency_seconds_count", nil); inf.value != count.value {
		t.Fatalf("+Inf bucket %v != _count %v", inf.value, count.value)
	}
	if sum := find("conf_latency_seconds_sum", nil); sum.value != 0.05+0.5+5+50 {
		t.Fatalf("_sum %v, want %v", sum.value, 0.05+0.5+5+50)
	}
}

// TestPrometheusParserRejectsGarbage pins that the conformance parser
// is strict enough to be worth conforming to.
func TestPrometheusParserRejectsGarbage(t *testing.T) {
	bad := []string{
		`metric{key=unquoted} 1`,
		`metric 1 2 3`,
		`metric{k="v"} notanumber`,
		`{nolabel="x"} 1`,
		`metric{k="unterminated} 1`,
	}
	for _, line := range bad {
		if _, err := parsePrometheus(line); err == nil {
			t.Fatalf("parser accepted malformed line %q", line)
		}
	}
}

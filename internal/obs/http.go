package obs

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the registry in Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//lint:ignore bareerr exposition write failures mean the scraper hung up; nothing to recover
		r.WritePrometheus(w)
	})
}

// Handler serves the default registry in Prometheus text format.
func Handler() http.Handler { return std.Handler() }

// NewMux returns an http.ServeMux with the observability surface
// mounted: /metrics (Prometheus text) and the /debug/pprof profiler
// endpoints. It does not touch http.DefaultServeMux.
func NewMux(reg *Registry) *http.ServeMux {
	if reg == nil {
		reg = std
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsServer is a running background metrics endpoint.
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// closeGrace bounds how long Close waits for in-flight scrapes before
// severing them. Scrapes serve an in-memory snapshot, so anything still
// running after this long is a hung client, not a slow handler.
const closeGrace = 2 * time.Second

// Close drains the endpoint gracefully: the listener stops accepting,
// in-flight scrapes get up to closeGrace to finish, and only then is
// the hard Close fallback used to sever whatever remains mid-write.
func (m *MetricsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
	defer cancel()
	err := m.srv.Shutdown(ctx)
	if err == nil || errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	// Graceful drain timed out (or failed); fall back to severing the
	// remaining connections so Close never hangs.
	//lint:ignore bareerr the Shutdown error is the one worth reporting; Close is best-effort cleanup
	m.srv.Close()
	return err
}

// ServeMetrics binds addr and serves /metrics plus /debug/pprof from
// the default registry in a background goroutine. Binding errors are
// returned synchronously; later serve errors surface as
// "obs.metrics_server_error" events.
func ServeMetrics(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(std), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			Emit("obs.metrics_server_error", F("err", err))
		}
	}()
	return &MetricsServer{srv: srv, ln: ln}, nil
}

package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestSpanChildAfterEnd pins that a span remains a valid parent after
// it has Ended: spans are immutable name+start values, so a late Child
// still inherits the path. (The spanend lint rule flags the leak when
// the child itself is never Ended; the runtime behaviour here must
// stay benign either way.)
func TestSpanChildAfterEnd(t *testing.T) {
	s := StartSpan("edge_parent")
	s.End()
	c := s.Child("late")
	if got := c.Name(); got != "edge_parent/late" {
		t.Fatalf("Child after End lost the path: %q", got)
	}
	if d := c.End(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	// Double End records twice but must not panic or corrupt state.
	if d := s.End(); d < 0 {
		t.Fatalf("second End returned negative duration %v", d)
	}
}

// TestSpanConcurrentChildren opens children of one parent from many
// goroutines at once — the montecarlo worker-pool shape — and checks
// every child lands in the histogram exactly once.
func TestSpanConcurrentChildren(t *testing.T) {
	parent := StartSpan("edge_fanout")
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				parent.Child("work").End()
			}
		}()
	}
	wg.Wait()
	parent.End()

	h := std.Histogram("samurai_span_seconds", "", TimeBuckets(), L("span", "edge_fanout/work"))
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("histogram recorded %d children, want %d", got, workers*per)
	}
}

// TestSpanPathsStayBounded pins the label-cardinality discipline on
// the obs side: sibling children created in a loop share one series
// when they share a name, and the series label is the full slash path.
func TestSpanPathsStayBounded(t *testing.T) {
	parent := StartSpan("edge_card")
	for i := 0; i < 100; i++ {
		parent.Child("iter").End()
	}
	parent.End()

	var b strings.Builder
	if err := std.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	n := strings.Count(b.String(), `span="edge_card/iter"`)
	// One series → one bucket set: TimeBuckets has 14 finite buckets,
	// +Inf, _sum and _count = 17 lines carrying the label.
	if n != 17 {
		t.Fatalf("expected exactly one edge_card/iter series (17 labelled lines), got %d", n)
	}
}

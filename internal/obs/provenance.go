package obs

import (
	"encoding/json"
	"runtime"
	"runtime/debug"
	"sync"
)

// RunInfo is the provenance manifest attached to every externally
// visible result (samuraid job results, samuraivv reports, BENCH_N
// trajectory files): enough to re-derive the run bit-exactly. The
// build half identifies the code and the machine; Seed and SpecHash
// identify the work.
//
// RunInfo is deliberately machine-dependent (CPU count, VCS revision)
// and therefore must never flow into a seeded result or the jobd WAL —
// the detflow lint enforces that statically. Serializers whose output
// bytes are a pinned invariant (samuraivv) splice the pre-marshalled
// SpliceJSON bytes in after marshalling their deterministic body.
type RunInfo struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"goos"`
	Arch      string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Revision is the module VCS revision baked into the binary
	// ("unknown" for non-VCS builds, e.g. go test binaries).
	Revision string `json:"revision"`
	// Modified reports uncommitted changes at build time.
	Modified bool `json:"modified,omitempty"`
	// LintWaivers is the rule set with active //lint:ignore waivers in
	// the tree this binary was built from (see waivers.go): part of
	// provenance because a waiver can exempt code from the determinism
	// guarantees the rest of this manifest promises.
	LintWaivers []string `json:"lint_waivers"`
	// Seed and SpecHash identify the specific run; zero when the
	// manifest describes the process rather than one job.
	Seed     uint64 `json:"seed,omitempty"`
	SpecHash string `json:"spec_hash,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo RunInfo
)

// build returns the process-constant half of the manifest, computed
// once.
func build() RunInfo {
	buildOnce.Do(func() {
		buildInfo = RunInfo{
			GoVersion:   runtime.Version(),
			OS:          runtime.GOOS,
			Arch:        runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
			Revision:    "unknown",
			LintWaivers: LintWaivers(),
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					buildInfo.Revision = s.Value
				case "vcs.modified":
					buildInfo.Modified = s.Value == "true"
				}
			}
		}
	})
	return buildInfo
}

// Info returns the provenance manifest for a run identified by seed
// and spec hash (pass 0, "" for process-level provenance).
func Info(seed uint64, specHash string) RunInfo {
	ri := build()
	ri.Seed = seed
	ri.SpecHash = specHash
	return ri
}

// SpliceJSON marshals the manifest and splices it into an
// already-marshalled JSON object as a leading "run_info" member. The
// body bytes stay byte-for-byte intact after the inserted member, so a
// serializer whose output is pinned bit-identical (samuraivv) keeps
// its deterministic body while still carrying provenance; the
// marshalling of the machine-dependent half happens here, outside the
// pinned serializer package. doc must be a JSON object ({...}); any
// other shape is returned unchanged.
func SpliceJSON(doc []byte, ri RunInfo) []byte {
	enc, err := json.Marshal(ri)
	if err != nil {
		return doc // cannot happen: RunInfo has no unmarshalable fields
	}
	i := 0
	for i < len(doc) && (doc[i] == ' ' || doc[i] == '\t' || doc[i] == '\n' || doc[i] == '\r') {
		i++
	}
	if i >= len(doc) || doc[i] != '{' {
		return doc
	}
	out := make([]byte, 0, len(doc)+len(enc)+16)
	out = append(out, doc[:i+1]...)
	out = append(out, []byte("\n  \"run_info\": ")...)
	out = append(out, enc...)
	// Empty object {}: no comma needed before the closing brace.
	j := i + 1
	for j < len(doc) && (doc[j] == ' ' || doc[j] == '\t' || doc[j] == '\n' || doc[j] == '\r') {
		j++
	}
	if j < len(doc) && doc[j] != '}' {
		out = append(out, ',')
	}
	out = append(out, doc[i+1:]...)
	return out
}

package obs

// lintWaiverRules is the set of samurailint rules that have at least
// one active //lint:ignore waiver in this tree, baked in at commit
// time so binaries can report it as provenance (RunInfo.LintWaivers).
// A waived rule marks code exempted from a static guarantee — a reader
// of a result file deserves to know which guarantees were softened.
//
// Kept in sync with `samurailint -suppressions ./...` by
// TestLintWaiverProvenanceMatchesTree in cmd/samurailint; update this
// list when a waiver for a new rule lands (the test fails otherwise).
var lintWaiverRules = []string{
	"bareerr",
	"floateq",
	"hotalloc",
}

// LintWaivers returns the rule names with active lint waivers, as a
// fresh copy.
func LintWaivers() []string {
	return append([]string(nil), lintWaiverRules...)
}

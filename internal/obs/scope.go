package obs

// Scope is a label-scoped view of a Registry: every series resolved
// through it carries the scope's labels in addition to the caller's.
// jobd gives each job a Scope labelled job_id="…" so one /metrics
// exposition distinguishes tenants — the prerequisite for fair-share
// scheduling.
//
// A Scope adds no storage of its own: series live in the parent
// registry and appear in its Prometheus exposition alongside unscoped
// series. Nested Child calls accumulate labels.
type Scope struct {
	r      *Registry
	labels []Label
}

// Child returns a scope over r with the given labels bound. Panics on
// duplicate or invalid label keys (same rules as direct registration).
func (r *Registry) Child(labels ...Label) *Scope {
	return &Scope{r: r, labels: sortedLabels(labels)}
}

// Child returns a sub-scope with additional labels bound.
func (s *Scope) Child(labels ...Label) *Scope {
	return &Scope{r: s.r, labels: s.merge(labels)}
}

// merge appends extra labels to the scope's bound set. The result is
// re-validated by sortedLabels at the registration site, which also
// rejects key collisions between scope and call-site labels.
func (s *Scope) merge(extra []Label) []Label {
	if len(extra) == 0 {
		return s.labels
	}
	out := make([]Label, 0, len(s.labels)+len(extra))
	out = append(out, s.labels...)
	out = append(out, extra...)
	return out
}

// Counter resolves a counter series carrying the scope labels.
func (s *Scope) Counter(name, help string, labels ...Label) *Counter {
	return s.r.Counter(name, help, s.merge(labels)...)
}

// FloatCounter resolves a float counter series carrying the scope
// labels.
func (s *Scope) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	return s.r.FloatCounter(name, help, s.merge(labels)...)
}

// Gauge resolves a gauge series carrying the scope labels.
func (s *Scope) Gauge(name, help string, labels ...Label) *Gauge {
	return s.r.Gauge(name, help, s.merge(labels)...)
}

// Histogram resolves a histogram series carrying the scope labels.
func (s *Scope) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return s.r.Histogram(name, help, bounds, s.merge(labels)...)
}

package obs

import (
	"strings"
	"testing"
)

func TestScopeLabelsAllSeries(t *testing.T) {
	r := NewRegistry()
	s := r.Child(L("job_id", "j1"))
	s.Counter("scope_cells_total", "cells").Add(5)
	s.Gauge("scope_rate", "rate").Set(2)
	s.FloatCounter("scope_busy_seconds_total", "busy").Add(0.5)
	s.Histogram("scope_lat_seconds", "lat", []float64{1}).Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := parsePrometheus(b.String())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]promSample{}
	for _, smp := range samples {
		byName[smp.name] = smp
	}
	for _, name := range []string{
		"scope_cells_total", "scope_rate", "scope_busy_seconds_total",
		"scope_lat_seconds_sum", "scope_lat_seconds_count",
	} {
		smp, ok := byName[name]
		if !ok {
			t.Fatalf("series %s missing from scoped exposition:\n%s", name, b.String())
		}
		if smp.labels["job_id"] != "j1" {
			t.Fatalf("series %s missing scope label job_id: %v", name, smp.labels)
		}
	}
}

func TestScopeIsolatesTenants(t *testing.T) {
	r := NewRegistry()
	a := r.Child(L("job_id", "a"))
	b := r.Child(L("job_id", "b"))
	a.Counter("tenant_cells_total", "cells").Add(1)
	b.Counter("tenant_cells_total", "cells").Add(10)
	if got := a.Counter("tenant_cells_total", "cells").Value(); got != 1 {
		t.Fatalf("tenant a sees %d, want its own 1", got)
	}
	if got := b.Counter("tenant_cells_total", "cells").Value(); got != 10 {
		t.Fatalf("tenant b sees %d, want its own 10", got)
	}
}

func TestScopeChildAccumulatesLabels(t *testing.T) {
	r := NewRegistry()
	s := r.Child(L("job_id", "j")).Child(L("worker", "3"))
	s.Counter("nested_total", "n", L("extra", "e")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := parsePrometheus(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(samples))
	}
	want := map[string]string{"job_id": "j", "worker": "3", "extra": "e"}
	for k, v := range want {
		if samples[0].labels[k] != v {
			t.Fatalf("label %s=%q, want %q (all levels must accumulate)", k, samples[0].labels[k], v)
		}
	}
}

func TestScopeDuplicateKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on scope/call-site label key collision")
		}
	}()
	r := NewRegistry()
	r.Child(L("job_id", "j")).Counter("dup_total", "d", L("job_id", "other"))
}

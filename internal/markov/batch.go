package markov

import (
	"context"
	"math"
	"sort"

	"samurai/internal/obs/trace"
	"samurai/internal/rng"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

// two53 scales an accept probability p into the integer lattice of
// rng.Float64: Float64() < p  ⟺  float64(Uint64()>>11) < p·2⁵³, because
// both sides differ from the original comparison only by the exact
// power-of-two scaling (p < 1 is always normal here, so p·2⁵³ neither
// overflows nor denormalises). The batch kernel uses the scaled form to
// drop one division per candidate without changing a single accept
// decision.
const two53 = 1 << 53

// candChunk is the number of (inter-arrival, accept) candidate pairs
// pre-drawn per lane per rng.FillCandidates call. Over-drawing past the
// horizon is unobservable: lane child streams exist only for the
// duration of one Run, and entry i of a fill is a pure prefix function
// of the stream (see FillCandidates), so paths stay bit-identical to
// sequential no matter where the chunk boundaries fall.
const candChunk = 64

// BatchState is the reusable workspace of the batched uniformisation
// kernel: N traps advance in struct-of-arrays layout through one shared
// walk over the bias PWL's segments. All slices are lane-indexed and
// grow monotonically, so a steady-state Run allocates nothing beyond
// the returned paths (whose backing arrays are pre-sized from the
// previous Run's transition counts).
type BatchState struct {
	streams []rng.Stream        // lane rng, re-derived per Run via SplitInto
	comp    []trap.CompiledTrap // bias-independent trap constants
	t       []float64           // current candidate instant per lane
	filled  []bool              // current trap state per lane
	cand    []int64             // candidates drawn in [t0, tf] per lane
	acc     []int64             // accepted flips per lane
	pos     []int32             // cursor into the lane's candidate chunk
	// Pre-drawn candidate chunks, lane k at [k·candChunk, (k+1)·candChunk).
	dtBuf  []float64
	rawBuf []float64
	// Per-lane accept-threshold cache for constant-bias segments, keyed
	// on the exact bias value: thrE/thrF are the scaled thresholds
	// (λ_next/λ*)·2⁵³ for the empty and filled states at bias thrV.
	thrV   []float64
	thrE   []float64
	thrF   []float64
	hasThr []bool
	// capHint carries each lane's event count to the next Run so path
	// storage is allocated once instead of grown log-many times.
	capHint []int
}

// NewBatchState returns an empty workspace; it sizes itself lazily on
// first use and can be reused across Runs of any lane count.
func NewBatchState() *BatchState { return &BatchState{} }

// grow ensures capacity for n lanes, preserving capacity hints.
func (bs *BatchState) grow(n int) {
	if len(bs.t) >= n {
		return
	}
	bs.streams = make([]rng.Stream, n)
	bs.comp = make([]trap.CompiledTrap, n)
	bs.t = make([]float64, n)
	bs.filled = make([]bool, n)
	bs.cand = make([]int64, n)
	bs.acc = make([]int64, n)
	bs.pos = make([]int32, n)
	bs.dtBuf = make([]float64, n*candChunk)
	bs.rawBuf = make([]float64, n*candChunk)
	bs.thrV = make([]float64, n)
	bs.thrE = make([]float64, n)
	bs.thrF = make([]float64, n)
	bs.hasThr = make([]bool, n)
	hints := make([]int, n)
	copy(hints, bs.capHint)
	bs.capHint = hints
}

// Run advances every trap in traps over [t0, tf] under the shared bias
// waveform and returns one path per trap. Lane k draws from
// parent.SplitInto(k), exactly as UniformiseProfile derives per-trap
// streams, and the draws it consumes for candidates inside the horizon
// are exactly the sequential kernel's (per candidate: Exp inter-arrival
// then accept uniform) — so every lane's path is bit-identical to
// Uniformise(ctx, traps[k], bias.Eval, t0, tf, parent.Split(k)).
// TestBatchMatchesSequential pins this with Float64bits comparisons.
//
// The speedup over N sequential calls comes from hoisting, not from
// changing arithmetic: candidates are pre-drawn in chunks by
// rng.FillCandidates (register-resident generator state, one math.Log
// call per candidate and nothing else), the bias PWL is walked once per
// segment for all lanes instead of through N cursors, λ* and the
// coupling prefactor are compiled once per lane (trap.CompiledTrap),
// and on constant-bias segments the two accept thresholds are computed
// once per (lane, bias value) instead of per candidate — eliminating
// both math.Exp calls and two divisions from the inner loop.
func (bs *BatchState) Run(tctx trap.Context, traps []trap.Trap, bias *waveform.PWL, t0, tf float64, parent *rng.Stream) ([]*Path, error) {
	if tf <= t0 {
		return nil, ErrBadInterval
	}
	if err := tctx.Validate(); err != nil {
		return nil, err
	}
	n := len(traps)
	bs.grow(n)
	paths := make([]*Path, n)

	// Lane init: derive streams, compile traps, pre-draw the first
	// candidate chunk and place each lane at its first candidate instant
	// (the same first Exp draw the sequential kernel makes). Filled is
	// not stored during the walk — states strictly alternate, so it is
	// rebuilt from InitFilled and len(Times) in one pass at the end.
	minNext := math.Inf(1)
	for k := 0; k < n; k++ {
		parent.SplitInto(uint64(k), &bs.streams[k])
		bs.comp[k] = tctx.Compile(traps[k])
		bs.filled[k] = traps[k].InitFilled
		bs.cand[k], bs.acc[k] = 0, 0
		bs.hasThr[k] = false
		hint := bs.capHint[k]
		if hint < 8 {
			hint = 8
		}
		p := &Path{Times: make([]float64, 1, hint), End: tf}
		p.Times[0] = t0
		paths[k] = p
		base := k * candChunk
		bs.streams[k].FillCandidates(bs.dtBuf[base:base+candChunk], bs.rawBuf[base:base+candChunk], bs.comp[k].Sum)
		bs.pos[k] = 0
		t := t0 + bs.dtBuf[base]
		bs.t[k] = t
		if t < minNext {
			minNext = t
		}
	}

	// Shared segment walk. Region r of the PWL is:
	//   r == 0: (-inf, T[0]], constant V[0]
	//   0 < r < m: (T[r-1], T[r]], linear V[r-1]→V[r]
	//   r == m: (T[m-1], +inf), constant V[m-1]
	// matching PWL.Eval's clamp/exact-hit/interpolate branches exactly.
	// sort.SearchFloat64s(T, t) returns precisely this region index.
	T, V := bias.T, bias.V
	m := len(T)
	r := sort.SearchFloat64s(T, minNext)
	for minNext <= tf {
		var v0, v1, s0, s1 float64
		var isConst bool
		segEnd := tf
		switch {
		case m <= 1 || r == 0:
			v0, isConst = V[0], true
			if m > 1 && r == 0 && T[0] < segEnd {
				segEnd = T[0]
			}
		case r >= m:
			v0, isConst = V[m-1], true
		default:
			s0, s1 = T[r-1], T[r]
			v0, v1 = V[r-1], V[r]
			//lint:ignore floateq a bitwise-flat segment interpolates to exactly v0 everywhere, so the constant fast path is bit-identical
			isConst = v0 == v1
			if s1 < segEnd {
				segEnd = s1
			}
		}

		newMin := math.Inf(1)
		for k := 0; k < n; k++ {
			t := bs.t[k]
			if t <= segEnd {
				if isConst {
					t = bs.advanceConst(k, paths[k], t, segEnd, v0)
				} else {
					t = bs.advanceRamp(k, paths[k], t, segEnd, s0, s1, v0, v1)
				}
				bs.t[k] = t
			}
			if t < newMin {
				newMin = t
			}
		}
		minNext = newMin
		if minNext > tf {
			break
		}
		// Fast-forward the region index past segments no lane lands in.
		for r < m && T[r] < minNext {
			r++
		}
	}

	for k := 0; k < n; k++ {
		publishPath(bs.comp[k].Sum, bs.cand[k], bs.acc[k])
		p := paths[k]
		// Rebuild the strictly-alternating state sequence outside the
		// hot loop: one cold pass instead of one store per candidate.
		p.Filled = make([]bool, len(p.Times))
		f := traps[k].InitFilled
		p.Filled[0] = f
		for i := 1; i < len(p.Filled); i++ {
			f = !f
			p.Filled[i] = f
		}
		bs.capHint[k] = len(p.Times) + 8
	}
	return paths, nil
}

// advanceConst drains lane k's candidates up to segEnd under constant
// bias v. The two accept thresholds (one per trap state) are computed
// once per bias value and cached, so the candidate loop per pre-drawn
// candidate is one compare, one add and the (amortised) path append.
//
//lint:hot
func (bs *BatchState) advanceConst(k int, p *Path, t, segEnd, v float64) float64 {
	ct := bs.comp[k]
	//lint:ignore floateq threshold cache keyed on the exact bias value; a miss only costs a recompute
	if !bs.hasThr[k] || bs.thrV[k] != v {
		lc, le := ct.Rates(v)
		bs.thrE[k] = lc / ct.Sum * two53
		bs.thrF[k] = le / ct.Sum * two53
		bs.thrV[k] = v
		bs.hasThr[k] = true
	}
	var thrs [2]float64
	thrs[0], thrs[1] = bs.thrE[k], bs.thrF[k]
	sum := ct.Sum
	base := k * candChunk
	dt := bs.dtBuf[base : base+candChunk : base+candChunk]
	raw := bs.rawBuf[base : base+candChunk : base+candChunk]
	pos := int(bs.pos[k])
	times := p.Times
	fi := 0
	if bs.filled[k] {
		fi = 1
	}
	cand, acc := bs.cand[k], bs.acc[k]
	for t <= segEnd {
		cand++
		// Branchless accept: the decision is a coin flip near 50% in
		// active-trap scenarios, so a conditional append mispredicts on
		// every other candidate. Instead the time is stored
		// unconditionally and the slice is re-lengthened by the 0/1
		// accept outcome — a store plus arithmetic, no data-dependent
		// branch. t is monotone and the state strictly alternates, so
		// the (possibly discarded) store is always safe. The &-masks are
		// no-ops (pos stays in [0, candChunk)) that let the compiler
		// drop the bounds checks on the chunk accesses.
		a := 0
		if raw[pos&(candChunk-1)] < thrs[fi&1] {
			a = 1
		}
		//lint:ignore hotalloc path storage is pre-sized from the previous Run's capHint, so a growing append here is a first-Run (or hint-miss) event, not steady-state
		times = append(times, t)
		times = times[:len(times)-1+a]
		fi ^= a
		pos++
		if pos == candChunk {
			bs.streams[k].FillCandidates(dt, raw, sum)
			pos = 0
		}
		t += dt[pos&(candChunk-1)]
	}
	acc += int64(len(times) - len(p.Times))
	p.Times = times
	bs.pos[k] = int32(pos)
	bs.filled[k] = fi == 1
	bs.cand[k], bs.acc[k] = cand, acc
	return t
}

// advanceRamp drains lane k's candidates up to segEnd across one linear
// bias segment (s0, s1] ramping v0→v1. The bias at each candidate is
// interpolated with PWL.Eval's exact formula (including the exact-hit
// branch at s1), and the rates come from the compiled trap — same
// arithmetic as Context.Rates minus the two per-candidate math.Exp
// calls hidden in RateSum and ThermalEnergyEV.
//
//lint:hot
func (bs *BatchState) advanceRamp(k int, p *Path, t, segEnd, s0, s1, v0, v1 float64) float64 {
	ct := bs.comp[k]
	sum := ct.Sum
	base := k * candChunk
	dt := bs.dtBuf[base : base+candChunk : base+candChunk]
	raw := bs.rawBuf[base : base+candChunk : base+candChunk]
	pos := int(bs.pos[k])
	times := p.Times
	fi := 0
	if bs.filled[k] {
		fi = 1
	}
	cand, acc := bs.cand[k], bs.acc[k]
	for t <= segEnd {
		cand++
		var v float64
		//lint:ignore floateq exact-hit branch mirrors waveform.PWL.Eval bit-for-bit
		if t == s1 {
			v = v1
		} else {
			frac := (t - s0) / (s1 - s0)
			v = v0 + frac*(v1-v0)
		}
		lc, le := ct.Rates(v)
		lam := lc
		if fi == 1 {
			lam = le
		}
		// Branchless accept — see advanceConst.
		a := 0
		if raw[pos&(candChunk-1)] < lam/sum*two53 {
			a = 1
		}
		//lint:ignore hotalloc amortised append into capHint-sized storage; ramp segments see the same hint as the constant path
		times = append(times, t)
		times = times[:len(times)-1+a]
		fi ^= a
		pos++
		if pos == candChunk {
			bs.streams[k].FillCandidates(dt, raw, sum)
			pos = 0
		}
		t += dt[pos&(candChunk-1)]
	}
	acc += int64(len(times) - len(p.Times))
	p.Times = times
	bs.pos[k] = int32(pos)
	bs.filled[k] = fi == 1
	bs.cand[k], bs.acc[k] = cand, acc
	return t
}

// UniformiseBatch advances every trap of a profile over [t0, tf] as one
// batch. One-shot convenience over BatchState.Run; loops that simulate
// many profiles should hold a BatchState and call Run to reuse the
// workspace.
func UniformiseBatch(tctx trap.Context, traps []trap.Trap, bias *waveform.PWL, t0, tf float64, r *rng.Stream) ([]*Path, error) {
	return NewBatchState().Run(tctx, traps, bias, t0, tf, r)
}

// UniformiseProfileBatch is the batched equivalent of
// UniformiseProfile: identical paths (lane k ≡ Split(k) sequential),
// one shared segment walk.
func UniformiseProfileBatch(pr trap.Profile, bias *waveform.PWL, t0, tf float64, r *rng.Stream) ([]*Path, error) {
	return UniformiseBatch(pr.Ctx, pr.Traps, bias, t0, tf, r)
}

// UniformiseProfileBatchCtx is UniformiseProfileBatch under a traced
// context, emitting the same markov.uniformise span as the sequential
// path so span-shape goldens are unaffected by kernel choice.
func UniformiseProfileBatchCtx(ctx context.Context, pr trap.Profile, bias *waveform.PWL, t0, tf float64, r *rng.Stream) ([]*Path, error) {
	_, span := trace.Start(ctx, "markov.uniformise")
	defer span.End()
	return UniformiseProfileBatch(pr, bias, t0, tf, r)
}

package markov

import (
	"errors"
	"fmt"

	"samurai/internal/rng"
	"samurai/internal/trap"
)

// RateFunc returns the instantaneous capture and emission propensities
// of a two-state chain at time t. It is the fully general form of the
// trap model: the paper's Eq (1)–(2) model has a bias-invariant sum,
// but §II-C notes that "more complex models … can be incorporated into
// SAMURAI just as easily" — this is the hook that does so.
type RateFunc func(t float64) (lc, le float64)

// ErrMajorantViolated is returned when the chain's exit propensity
// exceeds the caller-supplied majorant; the thinning construction is
// only exact while λ_next(t) ≤ λ*.
var ErrMajorantViolated = errors.New("markov: propensity exceeded the uniformisation majorant")

// UniformiseGeneral simulates an arbitrary two-state inhomogeneous
// chain over [t0, tf] by uniformisation with the explicit majorant
// lambdaStar ≥ sup_t max(λ_c(t), λ_e(t)). For the Eq (1) model the
// natural (and tight) majorant is the invariant sum λ_c+λ_e;
// Uniformise uses exactly that, so this function generalises it
// without changing its law.
func UniformiseGeneral(rates RateFunc, lambdaStar float64, initFilled bool, t0, tf float64, r *rng.Stream) (*Path, error) {
	if tf <= t0 {
		return nil, ErrBadInterval
	}
	if lambdaStar <= 0 {
		return nil, fmt.Errorf("markov: non-positive majorant %g", lambdaStar)
	}
	p := NewPath(t0, tf, initFilled)
	filled := initFilled
	t := t0
	var candidates, accepts int64 // published once after the loop
	for {
		t += r.Exp(lambdaStar)
		if t > tf {
			break
		}
		candidates++
		lc, le := rates(t)
		lambdaNext := lc
		if filled {
			lambdaNext = le
		}
		if lambdaNext > lambdaStar*(1+1e-12) {
			mMajorantViolations.Inc()
			publishPath(lambdaStar, candidates, accepts)
			return nil, fmt.Errorf("%w: λ=%g > λ*=%g at t=%g",
				ErrMajorantViolated, lambdaNext, lambdaStar, t)
		}
		if r.Float64() < lambdaNext/lambdaStar {
			p.Transition(t)
			filled = !filled
			accepts++
		}
	}
	publishPath(lambdaStar, candidates, accepts)
	return p, nil
}

// Majorant scans the rate function over [t0, tf] on a uniform grid and
// returns a safe uniformisation rate: the largest observed single-state
// propensity times the given safety factor. For rate functions driven
// by piecewise-linear biases a grid of a few times the breakpoint count
// is exact up to the safety margin.
func Majorant(rates RateFunc, t0, tf float64, grid int, safety float64) float64 {
	if grid < 2 {
		grid = 2
	}
	if safety < 1 {
		safety = 1
	}
	worst := 0.0
	for i := 0; i < grid; i++ {
		t := t0 + (tf-t0)*float64(i)/float64(grid-1)
		lc, le := rates(t)
		if lc > worst {
			worst = lc
		}
		if le > worst {
			worst = le
		}
	}
	return worst * safety
}

// OccupancyODEFunc is OccupancyODE for an arbitrary rate function — the
// deterministic oracle for general models.
func OccupancyODEFunc(rates RateFunc, t0, tf, p0 float64, n int) (ts, ps []float64) {
	if n < 1 {
		n = 1
	}
	ts = make([]float64, n+1)
	ps = make([]float64, n+1)
	h := (tf - t0) / float64(n)
	deriv := func(t, p float64) float64 {
		lc, le := rates(t)
		return lc - (lc+le)*p
	}
	p := p0
	for i := 0; i <= n; i++ {
		t := t0 + float64(i)*h
		ts[i] = t
		ps[i] = p
		if i == n {
			break
		}
		k1 := deriv(t, p)
		k2 := deriv(t+h/2, p+h/2*k1)
		k3 := deriv(t+h/2, p+h/2*k2)
		k4 := deriv(t+h, p+h*k3)
		p += h / 6 * (k1 + 2*k2 + 2*k3 + k4)
	}
	return
}

// SRHRates builds a Shockley–Read–Hall-style rate function for a trap:
// the capture propensity scales with the instantaneous inversion-layer
// carrier density (no carriers → no capture), and emission follows from
// detailed balance with the Eq (2) occupancy ratio:
//
//	λ_c(t) = λ₀ · n(V_gs(t)) / n(V_ref)
//	λ_e(t) = λ_c(t) · β(t)
//
// λ₀ is chosen so the model coincides with the Eq (1) model at the
// reference bias. The sum λ_c+λ_e is NOT constant here, which is
// exactly why UniformiseGeneral (with an explicit majorant) exists.
func SRHRates(ctx trap.Context, tr trap.Trap, vgs BiasFunc, carrierDensity func(vgs float64) float64) RateFunc {
	nRef := carrierDensity(ctx.VRef)
	lcRef, _ := ctx.Rates(tr, ctx.VRef)
	return func(t float64) (lc, le float64) {
		v := vgs(t)
		lc = lcRef * carrierDensity(v) / nRef
		le = lc * ctx.Beta(tr, v)
		return
	}
}

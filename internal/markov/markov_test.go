package markov

import (
	"math"
	"testing"
	"testing/quick"

	"samurai/internal/num"
	"samurai/internal/rng"
	"samurai/internal/trap"
	"samurai/internal/units"
)

func testCtx() trap.Context { return trap.DefaultContext(1.9e-9, 1.2) }

// activeTrap returns a trap with β≈1 at the context reference bias and
// a convenient rate sum.
func activeTrap(ctx trap.Context) trap.Trap {
	return trap.Trap{Y: 0.45 * ctx.Tox, E: 0}
}

func TestPathBasics(t *testing.T) {
	p := NewPath(0, 10, false)
	p.Transition(1)
	p.Transition(4)
	if p.Transitions() != 2 {
		t.Fatalf("transitions = %d", p.Transitions())
	}
	if p.StateAt(0.5) || !p.StateAt(2) || p.StateAt(7) {
		t.Fatal("StateAt wrong")
	}
	if p.StateAt(1) != true {
		t.Fatal("StateAt at event time must reflect the new state")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// filled on [1,4) of [0,10] → fraction 0.3
	if f := p.FilledFraction(); math.Abs(f-0.3) > 1e-12 {
		t.Fatalf("filled fraction = %g", f)
	}
}

func TestPathTransitionOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order transition did not panic")
		}
	}()
	p := NewPath(0, 10, false)
	p.Transition(5)
	p.Transition(1)
}

func TestPathSampleMatchesStateAt(t *testing.T) {
	p := NewPath(0, 1, true)
	p.Transition(0.25)
	p.Transition(0.5)
	p.Transition(0.75)
	ts, vs := p.Sample(0, 1, 101)
	for i := range ts {
		want := 0.0
		if p.StateAt(ts[i]) {
			want = 1
		}
		if vs[i] != want {
			t.Fatalf("sample %d (t=%g) = %g, want %g", i, ts[i], vs[i], want)
		}
	}
}

func TestUniformiseBadInterval(t *testing.T) {
	ctx := testCtx()
	if _, err := Uniformise(ctx, activeTrap(ctx), ConstantBias(1), 1, 1, rng.New(1)); err != ErrBadInterval {
		t.Fatal("empty interval accepted")
	}
}

func TestUniformiseDeterministic(t *testing.T) {
	ctx := testCtx()
	tr := activeTrap(ctx)
	a, _ := Uniformise(ctx, tr, ConstantBias(1.2), 0, 1e-3, rng.New(9))
	b, _ := Uniformise(ctx, tr, ConstantBias(1.2), 0, 1e-3, rng.New(9))
	if a.Transitions() != b.Transitions() {
		t.Fatal("equal seeds gave different paths")
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatal("event times differ")
		}
	}
}

func TestUniformisePathsValid(t *testing.T) {
	ctx := testCtx()
	f := func(seed uint64, eRaw float64) bool {
		e := math.Mod(eRaw, 0.1)
		if math.IsNaN(e) {
			return true
		}
		tr := trap.Trap{Y: 0.45 * ctx.Tox, E: e}
		p, err := Uniformise(ctx, tr, ConstantBias(1.2), 0, 5e-4, rng.New(seed))
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Under constant bias the time-average occupancy must converge to the
// stationary probability 1/(1+β).
func TestUniformiseStationaryOccupancy(t *testing.T) {
	ctx := testCtx()
	for _, e := range []float64{-0.03, 0, 0.03} {
		tr := trap.Trap{Y: 0.45 * ctx.Tox, E: e}
		want := ctx.OccupancyProb(tr, 1.2)
		tr.InitFilled = want > 0.5
		ls := ctx.RateSum(tr)
		horizon := 3e4 / ls
		p, err := Uniformise(ctx, tr, ConstantBias(1.2), 0, horizon, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		got := p.FilledFraction()
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("E=%g: occupancy %g, want %g", e, got, want)
		}
	}
}

// Dwell times in each state must be exponential with the exit rates.
func TestUniformiseDwellTimesExponential(t *testing.T) {
	ctx := testCtx()
	tr := activeTrap(ctx)
	lc, le := ctx.Rates(tr, 1.2)
	ls := ctx.RateSum(tr)
	p, err := Uniformise(ctx, tr, ConstantBias(1.2), 0, 4e4/ls, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	filled, empty := p.DwellTimes()
	if len(filled) < 1000 || len(empty) < 1000 {
		t.Fatalf("too few dwells: %d/%d", len(filled), len(empty))
	}
	// KS critical value at alpha≈0.001 is ~1.95/sqrt(n).
	if d := num.KSStatExp(filled, le); d > 1.95/math.Sqrt(float64(len(filled))) {
		t.Fatalf("filled dwells fail KS: %g", d)
	}
	if d := num.KSStatExp(empty, lc); d > 1.95/math.Sqrt(float64(len(empty))) {
		t.Fatalf("empty dwells fail KS: %g", d)
	}
}

// Gillespie and uniformisation must agree distributionally at constant
// bias: compare occupancy and transition counts.
func TestUniformiseMatchesGillespie(t *testing.T) {
	ctx := testCtx()
	tr := activeTrap(ctx)
	ls := ctx.RateSum(tr)
	horizon := 2e4 / ls
	u, err := Uniformise(ctx, tr, ConstantBias(1.2), 0, horizon, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Gillespie(ctx, tr, 1.2, 0, horizon, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	fu, fg := u.FilledFraction(), g.FilledFraction()
	if math.Abs(fu-fg) > 0.03 {
		t.Fatalf("occupancy disagrees: uniformise %g vs gillespie %g", fu, fg)
	}
	ru := float64(u.Transitions()) / horizon
	rg := float64(g.Transitions()) / horizon
	if math.Abs(ru-rg) > 0.05*rg {
		t.Fatalf("transition rates disagree: %g vs %g", ru, rg)
	}
}

// The ensemble occupancy under a strongly time-varying bias must track
// the exact ODE solution — the core exactness claim of Algorithm 1.
func TestUniformiseMatchesODENonStationary(t *testing.T) {
	ctx := testCtx()
	tr := activeTrap(ctx)
	ls := ctx.RateSum(tr)
	cEff := ctx.Coupling * ctx.EffectiveCoupling(tr)
	amp := 4 * units.ThermalVoltage(units.RoomTemperature) / cEff
	period := 5 / ls
	bias := func(t float64) float64 {
		return ctx.VRef + amp*math.Sin(2*math.Pi*t/period)
	}
	t0, t1 := 0.0, 3*period
	tr.InitFilled = false
	const grid = 60
	_, pExact := OccupancyODE(ctx, tr, bias, t0, t1, 0, grid)
	_, pEmp, err := EnsembleOccupancy(ctx, tr, bias, t0, t1, 6000, grid, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range pExact {
		if math.Abs(pExact[i]-pEmp[i]) > 0.03 {
			t.Fatalf("grid %d: ODE %g vs ensemble %g", i, pExact[i], pEmp[i])
		}
	}
}

// The discretised baseline must converge to the ODE as dt shrinks and
// be visibly biased at coarse dt.
func TestDiscretisedBernoulliBias(t *testing.T) {
	ctx := testCtx()
	tr := activeTrap(ctx)
	ls := ctx.RateSum(tr)
	bias := ConstantBias(1.2)
	horizon := 20 / ls
	tr.InitFilled = false
	const grid = 40
	_, pExact := OccupancyODE(ctx, tr, bias, 0, horizon, 0, grid)

	errAt := func(dt float64) float64 {
		const paths = 3000
		counts := make([]float64, grid+1)
		r := rng.New(21)
		for k := 0; k < paths; k++ {
			p, err := DiscretisedBernoulli(ctx, tr, bias, 0, horizon, dt, r.Split(uint64(k)))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i <= grid; i++ {
				tt := horizon * float64(i) / grid
				if p.StateAt(tt) {
					counts[i]++
				}
			}
		}
		worst := 0.0
		for i := range counts {
			if d := math.Abs(counts[i]/paths - pExact[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	coarse := errAt(1.5 / ls)
	fine := errAt(0.05 / ls)
	if coarse < 2*fine {
		t.Fatalf("baseline bias did not shrink with dt: coarse %g, fine %g", coarse, fine)
	}
	if fine > 0.05 {
		t.Fatalf("fine-step baseline too far from ODE: %g", fine)
	}
}

func TestUniformiseProfilePathIndependence(t *testing.T) {
	// Trap k's path must not depend on how many other traps exist.
	ctx := testCtx()
	short := trap.Profile{Ctx: ctx, Traps: []trap.Trap{activeTrap(ctx)}}
	long := trap.Profile{Ctx: ctx, Traps: []trap.Trap{
		activeTrap(ctx),
		{Y: 0.6 * ctx.Tox, E: 0.05},
		{Y: 0.3 * ctx.Tox, E: -0.02},
	}}
	a, err := UniformiseProfile(short, ConstantBias(1.2), 0, 1e-3, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	b, err := UniformiseProfile(long, ConstantBias(1.2), 0, 1e-3, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Transitions() != b[0].Transitions() {
		t.Fatal("trap 0's path depends on population size")
	}
	for i := range a[0].Times {
		if a[0].Times[i] != b[0].Times[i] {
			t.Fatal("trap 0's event times differ")
		}
	}
}

func TestOccupancyODEEquilibrium(t *testing.T) {
	// At constant bias the ODE must converge to 1/(1+β).
	ctx := testCtx()
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0.02}
	ls := ctx.RateSum(tr)
	_, ps := OccupancyODE(ctx, tr, ConstantBias(1.2), 0, 30/ls, 0, 3000)
	want := ctx.OccupancyProb(tr, 1.2)
	if got := ps[len(ps)-1]; math.Abs(got-want) > 1e-4 {
		t.Fatalf("ODE equilibrium %g, want %g", got, want)
	}
}

func TestExpectedCandidates(t *testing.T) {
	ctx := testCtx()
	tr := activeTrap(ctx)
	want := ctx.RateSum(tr) * 2e-4
	if got := ExpectedCandidates(ctx, tr, 0, 2e-4); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("ExpectedCandidates = %g, want %g", got, want)
	}
}

func TestGillespieRejectsBadInput(t *testing.T) {
	ctx := testCtx()
	if _, err := Gillespie(ctx, activeTrap(ctx), 1.2, 5, 4, rng.New(1)); err == nil {
		t.Fatal("reversed interval accepted")
	}
	if _, err := DiscretisedBernoulli(ctx, activeTrap(ctx), ConstantBias(1.2), 0, 1, 0, rng.New(1)); err == nil {
		t.Fatal("zero dt accepted")
	}
}

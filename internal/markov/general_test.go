package markov

import (
	"errors"
	"math"
	"testing"

	"samurai/internal/rng"
)

func TestUniformiseGeneralMatchesUniformiseExactly(t *testing.T) {
	// With the Eq (1) model and the invariant-sum majorant, the general
	// path must reproduce the specialised one event for event (same
	// random stream, same thinning decisions).
	ctx := testCtx()
	tr := activeTrap(ctx)
	bias := ConstantBias(1.25)
	rates := func(tt float64) (float64, float64) { return ctx.Rates(tr, bias(tt)) }
	ls := ctx.RateSum(tr)
	horizon := 2e3 / ls

	a, err := Uniformise(ctx, tr, bias, 0, horizon, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := UniformiseGeneral(rates, ls, tr.InitFilled, 0, horizon, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Transitions() != b.Transitions() {
		t.Fatalf("transition counts differ: %d vs %d", a.Transitions(), b.Transitions())
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatal("event times differ")
		}
	}
}

func TestUniformiseGeneralRejectsBadMajorant(t *testing.T) {
	rates := func(float64) (float64, float64) { return 100, 100 }
	if _, err := UniformiseGeneral(rates, 0, false, 0, 1, rng.New(1)); err == nil {
		t.Fatal("zero majorant accepted")
	}
	_, err := UniformiseGeneral(rates, 10, false, 0, 10, rng.New(1))
	if !errors.Is(err, ErrMajorantViolated) {
		t.Fatalf("majorant violation not detected: %v", err)
	}
}

func TestMajorantScan(t *testing.T) {
	rates := func(tt float64) (float64, float64) {
		return 10 + 5*math.Sin(tt), 3
	}
	m := Majorant(rates, 0, 10, 1000, 1.0)
	if math.Abs(m-15) > 0.1 {
		t.Fatalf("majorant = %g, want ≈15", m)
	}
	if Majorant(rates, 0, 10, 1000, 1.2) < m {
		t.Fatal("safety factor not applied")
	}
}

// The SRH model (carrier-dependent capture) must match its own exact
// ODE under a switching bias — the generalised-uniformisation
// correctness check for a model with non-constant rate sum.
func TestSRHModelMatchesODE(t *testing.T) {
	ctx := testCtx()
	tr := activeTrap(ctx)
	ls := ctx.RateSum(tr)
	period := 8 / ls
	bias := func(tt float64) float64 {
		if math.Mod(tt, period) < period/2 {
			return ctx.VRef
		}
		return ctx.VRef - 0.1
	}
	// Carrier density falling exponentially below VRef (subthreshold).
	carriers := func(v float64) float64 {
		return 1e17 * math.Exp((v-ctx.VRef)/0.06)
	}
	rates := SRHRates(ctx, tr, bias, carriers)

	// The sum must really vary (otherwise this test proves nothing).
	lc1, le1 := rates(0.1 * period)
	lc2, le2 := rates(0.6 * period)
	if math.Abs((lc1+le1)-(lc2+le2)) < 0.1*(lc1+le1) {
		t.Fatalf("SRH rate sum unexpectedly constant: %g vs %g", lc1+le1, lc2+le2)
	}

	t0, t1 := 0.0, 3*period
	star := Majorant(rates, t0, t1, 4096, 1.05)
	const grid = 50
	// Integrate the oracle on a grid fine enough for the stiffest
	// phase (h·λmax ≪ 1), then subsample to the comparison grid.
	const oversample = 400
	_, pFine := OccupancyODEFunc(rates, t0, t1, 0, grid*oversample)
	pExact := make([]float64, grid+1)
	for i := 0; i <= grid; i++ {
		pExact[i] = pFine[i*oversample]
	}

	const paths = 3000
	counts := make([]float64, grid+1)
	root := rng.New(9)
	for k := 0; k < paths; k++ {
		p, err := UniformiseGeneral(rates, star, false, t0, t1, root.Split(uint64(k)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i <= grid; i++ {
			tt := t0 + (t1-t0)*float64(i)/grid
			if p.StateAt(tt) {
				counts[i]++
			}
		}
	}
	for i := range counts {
		emp := counts[i] / paths
		if math.Abs(emp-pExact[i]) > 0.04 {
			t.Fatalf("grid %d: ensemble %g vs ODE %g", i, emp, pExact[i])
		}
	}
}

func TestOccupancyODEFuncMatchesSpecialised(t *testing.T) {
	ctx := testCtx()
	tr := activeTrap(ctx)
	bias := ConstantBias(1.22)
	rates := func(tt float64) (float64, float64) { return ctx.Rates(tr, bias(tt)) }
	ls := ctx.RateSum(tr)
	_, a := OccupancyODE(ctx, tr, bias, 0, 10/ls, 0.3, 200)
	_, b := OccupancyODEFunc(rates, 0, 10/ls, 0.3, 200)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("generalised ODE disagrees with specialised one")
		}
	}
}

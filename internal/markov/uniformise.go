package markov

import (
	"errors"

	"samurai/internal/rng"
	"samurai/internal/trap"
)

// BiasFunc returns the instantaneous gate bias V_gs at time t.
type BiasFunc func(t float64) float64

// ConstantBias adapts a fixed V_gs to a BiasFunc.
func ConstantBias(vgs float64) BiasFunc {
	return func(float64) float64 { return vgs }
}

// ErrBadInterval is returned when tf <= t0.
var ErrBadInterval = errors.New("markov: simulation interval is empty")

// Uniformise is Algorithm 1 of the paper: exact non-stationary
// simulation of a single trap over [t0, tf] under the time-varying gate
// bias vgs.
//
// Because λ_c(t)+λ_e(t) is bias-independent (Eq 1), λ* := λ_c(t₀)+λ_e(t₀)
// is an exact majorant at all times: candidate events are generated as
// a Poisson process of rate λ* and each is accepted ("the state flips")
// with probability λ_next(t)/λ* where λ_next is the propensity of
// leaving the current state at the candidate time. Accepted and
// rejected candidates together exactly reproduce the inhomogeneous
// chain's law.
func Uniformise(ctx trap.Context, tr trap.Trap, vgs BiasFunc, t0, tf float64, r *rng.Stream) (*Path, error) {
	if tf <= t0 {
		return nil, ErrBadInterval
	}
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	lambdaStar := ctx.RateSum(tr) // == λ_c(t)+λ_e(t) for all t, Eq (1)
	p := NewPath(t0, tf, tr.InitFilled)
	filled := tr.InitFilled
	t := t0
	var candidates, accepts int64 // published once after the loop
	for {
		t += r.Exp(lambdaStar)
		if t > tf {
			break
		}
		candidates++
		lc, le := ctx.Rates(tr, vgs(t))
		lambdaNext := lc
		if filled {
			lambdaNext = le
		}
		if r.Float64() < lambdaNext/lambdaStar {
			p.Transition(t)
			filled = !filled
			accepts++
		}
	}
	publishPath(lambdaStar, candidates, accepts)
	return p, nil
}

// UniformiseProfile simulates every trap in a profile over [t0, tf].
// Each trap gets an independent child stream derived from r via
// Split(i), so trap i's path does not depend on how many traps exist.
func UniformiseProfile(pr trap.Profile, vgs BiasFunc, t0, tf float64, r *rng.Stream) ([]*Path, error) {
	paths := make([]*Path, len(pr.Traps))
	for i, tr := range pr.Traps {
		p, err := Uniformise(pr.Ctx, tr, vgs, t0, tf, r.Split(uint64(i)))
		if err != nil {
			return nil, err
		}
		paths[i] = p
	}
	return paths, nil
}

// ExpectedCandidates returns the expected number of candidate events
// Algorithm 1 draws for the given trap and horizon — the cost model
// used by the efficiency benchmarks.
func ExpectedCandidates(ctx trap.Context, tr trap.Trap, t0, tf float64) float64 {
	return ctx.RateSum(tr) * (tf - t0)
}

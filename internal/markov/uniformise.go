package markov

import (
	"context"
	"errors"

	"samurai/internal/obs/trace"
	"samurai/internal/rng"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

// BiasFunc returns the instantaneous gate bias V_gs at time t.
type BiasFunc func(t float64) float64

// ConstantBias adapts a fixed V_gs to a BiasFunc.
func ConstantBias(vgs float64) BiasFunc {
	return func(float64) float64 { return vgs }
}

// PWLBias adapts a PWL waveform to a BiasFunc through a
// waveform.Cursor, so the (monotone) candidate-time sweep of
// Uniformise costs O(1) amortised per bias lookup instead of a binary
// search. Values are bit-identical to w.Eval. The returned func owns
// one cursor and must not be shared between goroutines.
func PWLBias(w *waveform.PWL) BiasFunc {
	cur := w.Cursor()
	return cur.Eval
}

// ErrBadInterval is returned when tf <= t0.
var ErrBadInterval = errors.New("markov: simulation interval is empty")

// Uniformise is Algorithm 1 of the paper: exact non-stationary
// simulation of a single trap over [t0, tf] under the time-varying gate
// bias vgs.
//
// Because λ_c(t)+λ_e(t) is bias-independent (Eq 1), λ* := λ_c(t₀)+λ_e(t₀)
// is an exact majorant at all times: candidate events are generated as
// a Poisson process of rate λ* and each is accepted ("the state flips")
// with probability λ_next(t)/λ* where λ_next is the propensity of
// leaving the current state at the candidate time. Accepted and
// rejected candidates together exactly reproduce the inhomogeneous
// chain's law.
//
// The candidate loop is the innermost kernel of the whole methodology;
// it must stay allocation-free (path growth is amortised inside
// Path.Transition).
//
//lint:hot
func Uniformise(ctx trap.Context, tr trap.Trap, vgs BiasFunc, t0, tf float64, r *rng.Stream) (*Path, error) {
	if tf <= t0 {
		return nil, ErrBadInterval
	}
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	lambdaStar := ctx.RateSum(tr) // == λ_c(t)+λ_e(t) for all t, Eq (1)
	p := NewPath(t0, tf, tr.InitFilled)
	filled := tr.InitFilled
	t := t0
	var candidates, accepts int64 // published once after the loop
	for {
		t += r.Exp(lambdaStar)
		if t > tf {
			break
		}
		candidates++
		lc, le := ctx.Rates(tr, vgs(t))
		lambdaNext := lc
		if filled {
			lambdaNext = le
		}
		if r.Float64() < lambdaNext/lambdaStar {
			p.Transition(t)
			filled = !filled
			accepts++
		}
	}
	publishPath(lambdaStar, candidates, accepts)
	return p, nil
}

// UniformiseProfileCtx is UniformiseProfile under a traced context: the
// whole profile simulation is wrapped in a markov.uniformise span
// (nested under whatever span tree ctx carries). The span only
// measures — the simulated paths are bit-identical to
// UniformiseProfile's for the same stream.
func UniformiseProfileCtx(ctx context.Context, pr trap.Profile, vgs BiasFunc, t0, tf float64, r *rng.Stream) ([]*Path, error) {
	_, span := trace.Start(ctx, "markov.uniformise")
	defer span.End()
	return UniformiseProfile(pr, vgs, t0, tf, r)
}

// UniformiseProfile simulates every trap in a profile over [t0, tf].
// Each trap gets an independent child stream derived from r via
// Split(i), so trap i's path does not depend on how many traps exist.
func UniformiseProfile(pr trap.Profile, vgs BiasFunc, t0, tf float64, r *rng.Stream) ([]*Path, error) {
	paths := make([]*Path, len(pr.Traps))
	// One reusable child stream: Uniformise only draws from it, so the
	// storage can be re-derived per trap (bit-identical to Split(i)).
	var child rng.Stream
	for i, tr := range pr.Traps {
		r.SplitInto(uint64(i), &child)
		p, err := Uniformise(pr.Ctx, tr, vgs, t0, tf, &child)
		if err != nil {
			return nil, err
		}
		paths[i] = p
	}
	return paths, nil
}

// ExpectedCandidates returns the expected number of candidate events
// Algorithm 1 draws for the given trap and horizon — the cost model
// used by the efficiency benchmarks.
func ExpectedCandidates(ctx trap.Context, tr trap.Trap, t0, tf float64) float64 {
	return ctx.RateSum(tr) * (tf - t0)
}

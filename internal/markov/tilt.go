package markov

import (
	"math"

	"samurai/internal/rng"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

// This file is the importance-sampling variant of Algorithm 1: the
// trap is *sampled* under an energy-tilted propensity split while the
// exact likelihood ratio against the nominal law is accumulated from
// the thinning accept/reject record.
//
// The tilt is an energy shift E → E+dE on the trap's compiled
// constants (trap.CompiledTrap.Tilted). Because λ_c+λ_e is
// bias-independent (Eq 1) and the shift only re-splits the sum through
// β (Eq 2), the nominal majorant λ* remains the tilted process's exact
// majorant: candidate instants have the *same* law under both
// measures, and the two processes differ only in the per-candidate
// accept probability. The per-path Radon–Nikodym derivative therefore
// factorises over candidates:
//
//	accept at t:  p(t)/q(t)
//	reject at t:  (1−p(t))/(1−q(t))
//
// with p = λ_next(t)/λ* the nominal accept probability and
// q = λ'_next(t)/λ* the tilted one. UniformiseTilted accumulates
// log of these factors term by term; at dE = 0 the tilted constants
// are bit-identical to the nominal ones, every factor is exactly 1,
// log(1) = 0.0 exactly, and the returned path (and rng consumption)
// is bit-identical to Uniformise.

// ThinningRecord captures the full accept/reject history of one
// tilted uniformisation run: every candidate instant inside the
// horizon and whether it was accepted. The record is sufficient to
// recompute the path *and* its log-likelihood ratio post hoc
// (RecomputeLogLR), which is how the property tests pin the
// incremental accumulation to the bit.
type ThinningRecord struct {
	Times   []float64
	Accepts []bool
}

// reset clears the record for reuse.
func (tr *ThinningRecord) reset() {
	tr.Times = tr.Times[:0]
	tr.Accepts = tr.Accepts[:0]
}

// UniformiseTilted is Uniformise sampling under the energy tilt
// tiltEV while exactly accumulating the per-path log-likelihood ratio
// log(dP_nominal/dP_tilted) from the thinning record. rec, when
// non-nil, is reset and filled with the candidate history.
//
// The draw order per candidate (Exp inter-arrival, then one accept
// uniform) and all rate arithmetic (trap.CompiledTrap.Rates, pinned
// bit-identical to Context.Rates) exactly mirror Uniformise, so with
// tiltEV == 0 the returned path, the stream state and the (identically
// zero) log-LR are bit-identical to the naive kernel's.
//
//lint:hot
func UniformiseTilted(ctx trap.Context, tr trap.Trap, vgs BiasFunc, t0, tf, tiltEV float64, r *rng.Stream, rec *ThinningRecord) (*Path, float64, error) {
	if tf <= t0 {
		return nil, 0, ErrBadInterval
	}
	if err := ctx.Validate(); err != nil {
		return nil, 0, err
	}
	nom := ctx.Compile(tr)
	til := nom.Tilted(tiltEV)
	lambdaStar := nom.Sum
	if rec != nil {
		rec.reset()
	}
	p := NewPath(t0, tf, tr.InitFilled)
	filled := tr.InitFilled
	t := t0
	logLR := 0.0
	var candidates, accepts int64
	for {
		t += r.Exp(lambdaStar)
		if t > tf {
			break
		}
		candidates++
		v := vgs(t)
		lcN, leN := nom.Rates(v)
		lcT, leT := til.Rates(v)
		pN, qT := lcN/lambdaStar, lcT/lambdaStar
		if filled {
			pN, qT = leN/lambdaStar, leT/lambdaStar
		}
		accept := r.Float64() < qT
		if accept {
			p.Transition(t)
			filled = !filled
			accepts++
			logLR += math.Log(pN / qT)
		} else {
			logLR += math.Log((1 - pN) / (1 - qT))
		}
		if rec != nil {
			//lint:ignore hotalloc reset() keeps the record's capacity, so appends only grow on the first run (or a candidate-count high-water mark), not steady-state
			rec.Times = append(rec.Times, t)
			//lint:ignore hotalloc grows in lockstep with Times under the same retained capacity; reuse makes it allocation-free
			rec.Accepts = append(rec.Accepts, accept)
		}
	}
	publishPath(lambdaStar, candidates, accepts)
	return p, logLR, nil
}

// RecomputeLogLR re-derives the log-likelihood ratio of a recorded
// tilted run from its candidate history alone, using the identical
// arithmetic and accumulation order as UniformiseTilted — the two
// results must agree to the bit (TestTiltLogLRRecompute pins this).
func RecomputeLogLR(ctx trap.Context, tr trap.Trap, vgs BiasFunc, tiltEV float64, rec *ThinningRecord) float64 {
	nom := ctx.Compile(tr)
	til := nom.Tilted(tiltEV)
	lambdaStar := nom.Sum
	filled := tr.InitFilled
	logLR := 0.0
	for i, t := range rec.Times {
		v := vgs(t)
		lcN, leN := nom.Rates(v)
		lcT, leT := til.Rates(v)
		pN, qT := lcN/lambdaStar, lcT/lambdaStar
		if filled {
			pN, qT = leN/lambdaStar, leT/lambdaStar
		}
		if rec.Accepts[i] {
			filled = !filled
			logLR += math.Log(pN / qT)
		} else {
			logLR += math.Log((1 - pN) / (1 - qT))
		}
	}
	return logLR
}

// UniformiseProfileTilted simulates every trap of a profile under the
// tilt and returns the per-trap paths plus the profile's total log-LR
// (the traps are independent, so the path-ensemble likelihood ratio is
// the product — the sum in log space, accumulated in trap order).
// Trap i draws from r.SplitInto(i), the exact derivation
// UniformiseProfile and the batch kernel use, so at tiltEV == 0 the
// paths are bit-identical to both.
func UniformiseProfileTilted(pr trap.Profile, vgs BiasFunc, t0, tf, tiltEV float64, r *rng.Stream) ([]*Path, float64, error) {
	paths := make([]*Path, len(pr.Traps))
	logLR := 0.0
	var child rng.Stream
	for i, tr := range pr.Traps {
		r.SplitInto(uint64(i), &child)
		p, l, err := UniformiseTilted(pr.Ctx, tr, vgs, t0, tf, tiltEV, &child, nil)
		if err != nil {
			return nil, 0, err
		}
		paths[i] = p
		logLR += l
	}
	return paths, logLR, nil
}

// RunTilted is the BatchState entry point of the tilted kernel: one
// call advances every lane over the horizon and returns per-lane paths
// and log-likelihood ratios. Lane k derives its stream via
// parent.SplitInto(k) and delegates to UniformiseTilted — the tilted
// accept probabilities depend on the lane's own energy shift, so the
// SoA threshold cache of the untilted fast path does not apply; what
// the batch surface guarantees is stream-derivation identity: lane k's
// (path, logLR) is bit-identical to the sequential tilted kernel on
// parent.Split(k), and at tiltEV == 0 to BatchState.Run itself.
func (bs *BatchState) RunTilted(tctx trap.Context, traps []trap.Trap, bias *waveform.PWL, t0, tf, tiltEV float64, parent *rng.Stream) ([]*Path, []float64, error) {
	if tf <= t0 {
		return nil, nil, ErrBadInterval
	}
	n := len(traps)
	bs.grow(n)
	paths := make([]*Path, n)
	logLRs := make([]float64, n)
	for k := 0; k < n; k++ {
		parent.SplitInto(uint64(k), &bs.streams[k])
		cur := bias.Cursor()
		p, l, err := UniformiseTilted(tctx, traps[k], cur.Eval, t0, tf, tiltEV, &bs.streams[k], nil)
		if err != nil {
			return nil, nil, err
		}
		paths[k] = p
		logLRs[k] = l
	}
	return paths, logLRs, nil
}

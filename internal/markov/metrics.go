package markov

import "samurai/internal/obs"

// Uniformisation instrumentation (Algorithm 1 of the paper). Candidate
// and acceptance counts are accumulated in locals inside the thinning
// loop and published once per path, so the kernel's inner loop carries
// no atomic operations. The expected candidate count is λ*·(tf−t0) —
// comparing samurai_markov_candidates_total against that product is the
// paper's own cost model (and the first thing to check when a run looks
// slow).
var (
	mPaths = obs.GetCounter("samurai_markov_paths_total",
		"trap occupancy paths simulated by uniformisation")
	mCandidates = obs.GetCounter("samurai_markov_candidates_total",
		"candidate events drawn from the majorant Poisson process")
	mAccepts = obs.GetCounter("samurai_markov_accepts_total",
		"candidate events accepted by thinning (state flips)")
	mMajorant = obs.GetGauge("samurai_markov_majorant_rate",
		"most recent uniformisation majorant rate λ*, 1/s")
	mMajorantViolations = obs.GetCounter("samurai_markov_majorant_violations_total",
		"UniformiseGeneral aborts because a propensity exceeded λ*")
)

// publishPath records one finished (or aborted) path's counts.
func publishPath(lambdaStar float64, candidates, accepts int64) {
	mPaths.Inc()
	mCandidates.Add(candidates)
	mAccepts.Add(accepts)
	mMajorant.Set(lambdaStar)
}

package markov

import (
	"math"
	"testing"

	"samurai/internal/rng"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

// batchTestProfile builds a profile of n traps spanning depths and
// energies so the lanes cover fast, slow, skewed and near-pinned traps.
func batchTestProfile(ctx trap.Context, n int) trap.Profile {
	traps := make([]trap.Trap, n)
	for i := range traps {
		frac := 0.3 + 0.4*float64(i)/float64(n)
		traps[i] = trap.Trap{
			Y:          frac * ctx.Tox,
			E:          -0.04 + 0.08*float64(i%5)/4,
			InitFilled: i%2 == 0,
		}
	}
	return trap.Profile{Ctx: ctx, Traps: traps}
}

// batchBiases covers the three PWL shapes the kernel special-cases:
// constant (single-point PWL), step (flat segments joined by sharp
// ramps, candidates landing exactly on breakpoints are possible), and
// a multi-segment ramp (every candidate interpolates).
func batchBiases() map[string]*waveform.PWL {
	step, err := waveform.Step([]float64{0, 3e-4, 6e-4}, []float64{1.2, 0.4, 1.0}, 1e-8)
	if err != nil {
		panic(err)
	}
	ramp := &waveform.PWL{
		T: []float64{0, 2e-4, 5e-4, 9e-4},
		V: []float64{0.2, 1.2, 0.7, 1.1},
	}
	return map[string]*waveform.PWL{
		"const": waveform.Constant(1.2),
		"step":  step,
		"ramp":  ramp,
	}
}

// TestBatchMatchesSequential is the tentpole's determinism pin: every
// lane of the batch kernel must be bit-identical (Float64bits) to the
// sequential Uniformise run with the same split stream, across
// constant, step and ramp biases.
func TestBatchMatchesSequential(t *testing.T) {
	ctx := testCtx()
	for name, bias := range batchBiases() {
		t.Run(name, func(t *testing.T) {
			pr := batchTestProfile(ctx, 23)
			root := rng.New(42)
			t0, tf := 0.0, 1e-3

			got, err := UniformiseProfileBatch(pr, bias, t0, tf, root)
			if err != nil {
				t.Fatal(err)
			}
			want, err := UniformiseProfile(pr, PWLBias(bias), t0, tf, root)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("lane count %d, want %d", len(got), len(want))
			}
			total := 0
			for k := range want {
				w, g := want[k], got[k]
				if err := g.Validate(); err != nil {
					t.Fatalf("lane %d: invalid path: %v", k, err)
				}
				if len(g.Times) != len(w.Times) {
					t.Fatalf("lane %d: %d events, want %d", k, len(g.Times)-1, len(w.Times)-1)
				}
				for i := range w.Times {
					if math.Float64bits(g.Times[i]) != math.Float64bits(w.Times[i]) {
						t.Fatalf("lane %d event %d: %x != %x (%g vs %g)",
							k, i, math.Float64bits(g.Times[i]), math.Float64bits(w.Times[i]),
							g.Times[i], w.Times[i])
					}
					if g.Filled[i] != w.Filled[i] {
						t.Fatalf("lane %d event %d: state mismatch", k, i)
					}
				}
				total += len(w.Times) - 1
			}
			if total == 0 {
				t.Fatal("degenerate fixture: no transitions in any lane")
			}
		})
	}
}

// TestBatchWorkspaceReuse reuses one BatchState across runs of varying
// lane counts and checks results stay identical to fresh states — the
// workspace must be fully re-initialised per Run.
func TestBatchWorkspaceReuse(t *testing.T) {
	ctx := testCtx()
	bias := batchBiases()["ramp"]
	bs := NewBatchState()
	for _, n := range []int{7, 3, 11} {
		pr := batchTestProfile(ctx, n)
		root := rng.New(uint64(1000 + n))
		got, err := bs.Run(pr.Ctx, pr.Traps, bias, 0, 5e-4, root)
		if err != nil {
			t.Fatal(err)
		}
		want, err := UniformiseBatch(pr.Ctx, pr.Traps, bias, 0, 5e-4, root)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if len(got[k].Times) != len(want[k].Times) {
				t.Fatalf("n=%d lane %d: reused state diverged", n, k)
			}
			for i := range want[k].Times {
				if math.Float64bits(got[k].Times[i]) != math.Float64bits(want[k].Times[i]) {
					t.Fatalf("n=%d lane %d event %d: reused state diverged", n, k, i)
				}
			}
		}
	}
}

// TestBatchCandidateTimesCrossSegments places breakpoints so densely
// that lanes repeatedly cross segment boundaries mid-path, exercising
// the resume-at-segment-boundary logic against the sequential oracle.
func TestBatchCandidateTimesCrossSegments(t *testing.T) {
	ctx := testCtx()
	// ~50 breakpoints over the horizon: segment dwell far below the mean
	// candidate spacing for the slow lanes, far above for fast lanes.
	nBp := 50
	T := make([]float64, nBp)
	V := make([]float64, nBp)
	for i := range T {
		T[i] = 1e-3 * float64(i) / float64(nBp-1)
		V[i] = 0.6 + 0.6*math.Sin(float64(i)*0.7)
	}
	bias := &waveform.PWL{T: T, V: V}
	pr := batchTestProfile(ctx, 16)
	root := rng.New(7)
	got, err := UniformiseProfileBatch(pr, bias, 0, 1e-3, root)
	if err != nil {
		t.Fatal(err)
	}
	want, err := UniformiseProfile(pr, PWLBias(bias), 0, 1e-3, root)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if len(got[k].Times) != len(want[k].Times) {
			t.Fatalf("lane %d: %d events, want %d", k, len(got[k].Times)-1, len(want[k].Times)-1)
		}
		for i := range want[k].Times {
			if math.Float64bits(got[k].Times[i]) != math.Float64bits(want[k].Times[i]) {
				t.Fatalf("lane %d event %d differs", k, i)
			}
		}
	}
}

func TestBatchBadInterval(t *testing.T) {
	ctx := testCtx()
	pr := batchTestProfile(ctx, 2)
	if _, err := UniformiseProfileBatch(pr, waveform.Constant(1.2), 1, 1, rng.New(1)); err != ErrBadInterval {
		t.Fatal("empty interval accepted")
	}
}

func TestBatchEmptyProfile(t *testing.T) {
	ctx := testCtx()
	paths, err := UniformiseBatch(ctx, nil, waveform.Constant(1.2), 0, 1e-4, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Fatalf("expected no paths, got %d", len(paths))
	}
}

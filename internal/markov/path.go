// Package markov implements the SAMURAI core: exact stochastic
// simulation of the two-state time-inhomogeneous Markov chain that
// governs each oxide trap (§III of the paper).
//
// Three simulators are provided:
//
//   - Uniformise — Algorithm 1 of the paper. Candidate events are drawn
//     from a stationary Poisson process at the majorant rate
//     λ* = λ_c+λ_e (constant per trap by Eq 1) and accepted with
//     probability λ_next(t)/λ*, which provably restores the exact
//     non-stationary statistics (paper refs [11]–[13]).
//   - Gillespie — the classical SSA, exact only under constant bias;
//     used for cross-validation.
//   - DiscretisedBernoulli — a naive fixed-step simulator whose error
//     is O(dt); it is the accuracy/efficiency baseline (EXP-T1).
//
// An exact occupancy-probability ODE integrator (OccupancyODE) serves
// as the deterministic oracle for ensemble tests.
package markov

import (
	"fmt"
	"sort"
)

// Path is a sample path of a single trap: a piecewise-constant boolean
// process. Filled[i] is the state on [Times[i], Times[i+1]), and the
// final state holds until End. Times[0] is the path start.
type Path struct {
	Times  []float64
	Filled []bool
	End    float64
}

// NewPath starts a path at time t0 in the given state, extending to tf.
func NewPath(t0, tf float64, filled bool) *Path {
	return &Path{Times: []float64{t0}, Filled: []bool{filled}, End: tf}
}

// Transition appends a state flip at time t. Flips must be appended in
// nondecreasing time order; out-of-order appends panic (it would mean a
// simulator bug, not a recoverable condition).
func (p *Path) Transition(t float64) {
	last := p.Times[len(p.Times)-1]
	if t < last {
		panic(fmt.Sprintf("markov: transition at t=%g before last event %g", t, last))
	}
	p.Times = append(p.Times, t)
	p.Filled = append(p.Filled, !p.Filled[len(p.Filled)-1])
}

// StateAt returns the trap state at time t (clamped to the path range).
func (p *Path) StateAt(t float64) bool {
	if t <= p.Times[0] {
		return p.Filled[0]
	}
	// Find the last event time <= t.
	i := sort.SearchFloat64s(p.Times, t)
	//lint:ignore floateq exact hit on a stored event time located by SearchFloat64s
	if i < len(p.Times) && p.Times[i] == t {
		return p.Filled[i]
	}
	return p.Filled[i-1]
}

// Transitions returns the number of state flips in the path.
func (p *Path) Transitions() int { return len(p.Times) - 1 }

// Begin returns the path start time.
func (p *Path) Begin() float64 { return p.Times[0] }

// FilledFraction returns the fraction of [Begin, End] the trap spent
// filled — the time-average occupancy of this sample path.
func (p *Path) FilledFraction() float64 {
	total := p.End - p.Times[0]
	if total <= 0 {
		return 0
	}
	filled := 0.0
	for i, t := range p.Times {
		next := p.End
		if i+1 < len(p.Times) {
			next = p.Times[i+1]
		}
		if p.Filled[i] {
			filled += next - t
		}
	}
	return filled / total
}

// DwellTimes returns the completed sojourn durations in the filled and
// empty states (the first and last, censored, sojourns are excluded so
// the samples are unbiased exponentials).
func (p *Path) DwellTimes() (filled, empty []float64) {
	for i := 1; i < len(p.Times)-1; i++ {
		d := p.Times[i+1] - p.Times[i]
		if p.Filled[i] {
			filled = append(filled, d)
		} else {
			empty = append(empty, d)
		}
	}
	return
}

// Sample evaluates the path as 0/1 values at n uniform instants across
// [t0, t1]; used by the spectral estimators.
func (p *Path) Sample(t0, t1 float64, n int) (ts []float64, vs []float64) {
	ts = make([]float64, n)
	vs = make([]float64, n)
	if n == 1 {
		ts[0] = t0
		if p.StateAt(t0) {
			vs[0] = 1
		}
		return
	}
	dt := (t1 - t0) / float64(n-1)
	// March through events in order rather than binary-searching per
	// sample: O(n + events).
	idx := 0
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		ts[i] = t
		for idx+1 < len(p.Times) && p.Times[idx+1] <= t {
			idx++
		}
		if p.Filled[idx] {
			vs[i] = 1
		}
	}
	return
}

// Validate checks internal consistency (monotone times, alternating
// states); test helpers call it after simulation.
func (p *Path) Validate() error {
	if len(p.Times) != len(p.Filled) || len(p.Times) == 0 {
		return fmt.Errorf("markov: malformed path (%d times, %d states)", len(p.Times), len(p.Filled))
	}
	for i := 1; i < len(p.Times); i++ {
		if p.Times[i] < p.Times[i-1] {
			return fmt.Errorf("markov: non-monotone event times at %d", i)
		}
		if p.Filled[i] == p.Filled[i-1] {
			return fmt.Errorf("markov: repeated state at %d", i)
		}
	}
	if p.End < p.Times[len(p.Times)-1] {
		return fmt.Errorf("markov: path end %g before last event %g", p.End, p.Times[len(p.Times)-1])
	}
	return nil
}

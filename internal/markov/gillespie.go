package markov

import (
	"samurai/internal/rng"
	"samurai/internal/trap"
)

// Gillespie performs the classical stochastic simulation algorithm
// (paper ref [9]) on a single trap under *constant* bias vgs. For a
// two-state chain with constant rates this is exact: the sojourn in the
// current state is exponential with the state's exit rate, and every
// event is a flip.
//
// Under time-varying bias Gillespie is *not* exact (it would freeze the
// propensity over each sojourn); that is precisely the deficiency
// Markov uniformisation fixes. Gillespie is kept as the stationary
// cross-check used in the Fig 7 validation experiments.
func Gillespie(ctx trap.Context, tr trap.Trap, vgs, t0, tf float64, r *rng.Stream) (*Path, error) {
	if tf <= t0 {
		return nil, ErrBadInterval
	}
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	lc, le := ctx.Rates(tr, vgs)
	p := NewPath(t0, tf, tr.InitFilled)
	filled := tr.InitFilled
	t := t0
	for {
		exit := lc
		if filled {
			exit = le
		}
		t += r.Exp(exit)
		if t > tf {
			break
		}
		p.Transition(t)
		filled = !filled
	}
	return p, nil
}

// DiscretisedBernoulli is the naive fixed-step simulator used as the
// accuracy/efficiency baseline (EXP-T1): at every step of width dt the
// trap flips with probability λ_exit(t)·dt. Its bias is O(dt) — it
// systematically under-counts flips because it allows at most one per
// step — and its cost is (tf−t0)/dt regardless of trap speed, whereas
// uniformisation's cost adapts to λ*.
func DiscretisedBernoulli(ctx trap.Context, tr trap.Trap, vgs BiasFunc, t0, tf, dt float64, r *rng.Stream) (*Path, error) {
	if tf <= t0 {
		return nil, ErrBadInterval
	}
	if dt <= 0 {
		return nil, ErrBadInterval
	}
	p := NewPath(t0, tf, tr.InitFilled)
	filled := tr.InitFilled
	for t := t0; t < tf; t += dt {
		lc, le := ctx.Rates(tr, vgs(t))
		exit := lc
		if filled {
			exit = le
		}
		prob := exit * dt
		if prob > 1 {
			prob = 1
		}
		if r.Float64() < prob {
			// Attribute the flip to the middle of the step.
			ft := t + dt/2
			if ft > tf {
				ft = tf
			}
			p.Transition(ft)
			filled = !filled
		}
	}
	return p, nil
}

// OccupancyODE integrates the exact occupancy probability
//
//	P₁'(t) = λ_c(t) − (λ_c(t)+λ_e(t))·P₁(t)
//
// with RK4 at the given step, returning P₁ sampled at n+1 uniform
// instants over [t0, tf] (including both endpoints). It is the
// deterministic oracle against which ensemble averages of the
// stochastic simulators are tested.
func OccupancyODE(ctx trap.Context, tr trap.Trap, vgs BiasFunc, t0, tf float64, p0 float64, n int) (ts, ps []float64) {
	if n < 1 {
		n = 1
	}
	ts = make([]float64, n+1)
	ps = make([]float64, n+1)
	h := (tf - t0) / float64(n)
	deriv := func(t, p float64) float64 {
		lc, le := ctx.Rates(tr, vgs(t))
		return lc - (lc+le)*p
	}
	p := p0
	for i := 0; i <= n; i++ {
		t := t0 + float64(i)*h
		ts[i] = t
		ps[i] = p
		if i == n {
			break
		}
		k1 := deriv(t, p)
		k2 := deriv(t+h/2, p+h/2*k1)
		k3 := deriv(t+h/2, p+h/2*k2)
		k4 := deriv(t+h, p+h*k3)
		p += h / 6 * (k1 + 2*k2 + 2*k3 + k4)
	}
	return
}

// EnsembleOccupancy runs nPaths independent uniformisation simulations
// and returns the empirical P(filled) at n+1 uniform instants — the
// stochastic estimate matched against OccupancyODE in tests and in the
// validation experiments.
func EnsembleOccupancy(ctx trap.Context, tr trap.Trap, vgs BiasFunc, t0, tf float64, nPaths, n int, r *rng.Stream) (ts []float64, ps []float64, err error) {
	ts = make([]float64, n+1)
	ps = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		ts[i] = t0 + (tf-t0)*float64(i)/float64(n)
	}
	for k := 0; k < nPaths; k++ {
		path, e := Uniformise(ctx, tr, vgs, t0, tf, r.Split(uint64(k)))
		if e != nil {
			return nil, nil, e
		}
		for i, t := range ts {
			if path.StateAt(t) {
				ps[i]++
			}
		}
	}
	for i := range ps {
		ps[i] /= float64(nPaths)
	}
	return ts, ps, nil
}

package markov

import (
	"math"
	"sort"
	"testing"

	"samurai/internal/rng"
	"samurai/internal/trap"
	"samurai/internal/waveform"
)

func tiltTestCtx() trap.Context { return trap.DefaultContext(1.9e-9, 1.2) }

// fuzzedPWL draws a random piecewise-linear bias profile with nSeg
// breakpoints over [0, horizon] and values in [0.8, 1.5] — a
// deterministic pseudo-fuzz: the generating stream has a fixed seed,
// so the profile set is stable run to run (testseed).
func fuzzedPWL(t *testing.T, r *rng.Stream, horizon float64, nSeg int) *waveform.PWL {
	t.Helper()
	times := make([]float64, nSeg)
	vals := make([]float64, nSeg)
	for i := range times {
		times[i] = r.Float64() * horizon
		vals[i] = 0.8 + 0.7*r.Float64()
	}
	sort.Float64s(times)
	// Deduplicate breakpoints: PWL wants strictly increasing times.
	outT, outV := times[:1], vals[:1]
	for i := 1; i < nSeg; i++ {
		if times[i] > outT[len(outT)-1] {
			outT = append(outT, times[i])
			outV = append(outV, vals[i])
		}
	}
	w, err := waveform.New(outT, outV)
	if err != nil {
		t.Fatalf("fuzzed PWL: %v", err)
	}
	return w
}

// TestTiltZeroBitIdentical pins the tilt-0 contract: with tiltEV == 0
// the tilted kernel consumes the stream identically to Uniformise,
// produces a bit-identical path, and accumulates a log-LR of exactly
// +0.0 — not merely a small number.
func TestTiltZeroBitIdentical(t *testing.T) {
	ctx := tiltTestCtx()
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0.03}
	horizon := 200 / ctx.RateSum(tr)
	gen := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		bias := fuzzedPWL(t, gen, horizon, 6)
		naive, err := Uniformise(ctx, tr, PWLBias(bias), 0, horizon, rng.New(uint64(100+trial)))
		if err != nil {
			t.Fatal(err)
		}
		tilted, logLR, err := UniformiseTilted(ctx, tr, PWLBias(bias), 0, horizon, 0, rng.New(uint64(100+trial)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(logLR) != 0 {
			t.Fatalf("trial %d: tilt-0 logLR = %g (bits %x), want exactly +0.0", trial, logLR, math.Float64bits(logLR))
		}
		if len(tilted.Times) != len(naive.Times) {
			t.Fatalf("trial %d: %d transitions, want %d", trial, len(tilted.Times), len(naive.Times))
		}
		for i := range naive.Times {
			if math.Float64bits(tilted.Times[i]) != math.Float64bits(naive.Times[i]) {
				t.Fatalf("trial %d: transition %d at %x, want %x", trial, i,
					math.Float64bits(tilted.Times[i]), math.Float64bits(naive.Times[i]))
			}
			if tilted.Filled[i] != naive.Filled[i] {
				t.Fatalf("trial %d: state %d differs", trial, i)
			}
		}
	}
}

// TestTiltLogLRRecompute is the exact-likelihood property test: the
// incrementally accumulated log-LR must equal the post-hoc
// recomputation from the recorded candidate history to the bit,
// across fuzzed bias profiles and tilt strengths.
func TestTiltLogLRRecompute(t *testing.T) {
	ctx := tiltTestCtx()
	gen := rng.New(11)
	tilts := []float64{0, 0.02, -0.05, 0.09, -0.13}
	var rec ThinningRecord
	for trial := 0; trial < 30; trial++ {
		tr := trap.Trap{Y: (0.2 + 0.6*gen.Float64()) * ctx.Tox, E: 0.12 * (gen.Float64() - 0.5)}
		horizon := (50 + 200*gen.Float64()) / ctx.RateSum(tr)
		bias := fuzzedPWL(t, gen, horizon, 8)
		tilt := tilts[trial%len(tilts)]
		_, inc, err := UniformiseTilted(ctx, tr, PWLBias(bias), 0, horizon, tilt, rng.New(uint64(300+trial)), &rec)
		if err != nil {
			t.Fatal(err)
		}
		post := RecomputeLogLR(ctx, tr, PWLBias(bias), tilt, &rec)
		if math.Float64bits(inc) != math.Float64bits(post) {
			t.Fatalf("trial %d (tilt %g): incremental logLR %x != recomputed %x",
				trial, tilt, math.Float64bits(inc), math.Float64bits(post))
		}
	}
}

// TestTiltRecordReplaysPath checks the thinning record is a faithful
// transcript: replaying its accepted candidates reproduces the path.
func TestTiltRecordReplaysPath(t *testing.T) {
	ctx := tiltTestCtx()
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0.02}
	horizon := 150 / ctx.RateSum(tr)
	bias := waveform.Constant(1.2)
	var rec ThinningRecord
	p, _, err := UniformiseTilted(ctx, tr, PWLBias(bias), 0, horizon, -0.04, rng.New(5), &rec)
	if err != nil {
		t.Fatal(err)
	}
	var accepted []float64
	for i, ti := range rec.Times {
		if rec.Accepts[i] {
			accepted = append(accepted, ti)
		}
	}
	if len(accepted) != len(p.Times)-1 {
		t.Fatalf("record holds %d accepts, path has %d transitions", len(accepted), len(p.Times)-1)
	}
	for i, ti := range accepted {
		if math.Float64bits(ti) != math.Float64bits(p.Times[i+1]) {
			t.Fatalf("accept %d at %x, path transition at %x", i, math.Float64bits(ti), math.Float64bits(p.Times[i+1]))
		}
	}
}

// TestRunTiltedMatchesSequential pins the batch tilted surface: lane k
// must be bit-identical to the sequential tilted kernel on Split(k),
// and at tilt 0 to BatchState.Run itself.
func TestRunTiltedMatchesSequential(t *testing.T) {
	ctx := tiltTestCtx()
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0.05}
	horizon := 120 / ctx.RateSum(tr)
	bias := fuzzedPWL(t, rng.New(17), horizon, 5)
	traps := make([]trap.Trap, 16)
	for i := range traps {
		traps[i] = tr
	}
	for ti, tilt := range []float64{0, -0.06} {
		zeroTilt := ti == 0
		bs := NewBatchState()
		paths, lrs, err := bs.RunTilted(ctx, traps, bias, 0, horizon, tilt, rng.New(23))
		if err != nil {
			t.Fatal(err)
		}
		parent := rng.New(23)
		var child rng.Stream
		for k := range traps {
			parent.SplitInto(uint64(k), &child)
			want, wantLR, err := UniformiseTilted(ctx, traps[k], PWLBias(bias), 0, horizon, tilt, &child, nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(lrs[k]) != math.Float64bits(wantLR) {
				t.Fatalf("tilt %g lane %d logLR differs", tilt, k)
			}
			if len(paths[k].Times) != len(want.Times) {
				t.Fatalf("tilt %g lane %d transition count differs", tilt, k)
			}
			for i := range want.Times {
				if math.Float64bits(paths[k].Times[i]) != math.Float64bits(want.Times[i]) {
					t.Fatalf("tilt %g lane %d transition %d differs", tilt, k, i)
				}
			}
		}
		if zeroTilt {
			naive, err := NewBatchState().Run(ctx, traps, bias, 0, horizon, rng.New(23))
			if err != nil {
				t.Fatal(err)
			}
			for k := range traps {
				if len(paths[k].Times) != len(naive[k].Times) {
					t.Fatalf("tilt-0 lane %d differs from untilted batch kernel", k)
				}
				for i := range naive[k].Times {
					if math.Float64bits(paths[k].Times[i]) != math.Float64bits(naive[k].Times[i]) {
						t.Fatalf("tilt-0 lane %d transition %d differs from untilted batch", k, i)
					}
				}
			}
		}
	}
}

// TestTiltedWeightsUnbiased is a kernel-level sanity bound: the mean
// importance weight over many tilted paths concentrates at 1 (the
// likelihood ratio integrates to 1 under the sampling law). The vv
// conformance rows gate this properly; here a loose 5-sigma band
// guards the kernel in isolation.
func TestTiltedWeightsUnbiased(t *testing.T) {
	ctx := tiltTestCtx()
	tr := trap.Trap{Y: 0.45 * ctx.Tox, E: 0.10}
	horizon := 60 / ctx.RateSum(tr)
	bias := waveform.Constant(1.2)
	const n = 4000
	parent := rng.New(41)
	var child rng.Stream
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		parent.SplitInto(uint64(i), &child)
		_, lr, err := UniformiseTilted(ctx, tr, PWLBias(bias), 0, horizon, -0.05, &child, nil)
		if err != nil {
			t.Fatal(err)
		}
		w := math.Exp(lr)
		sum += w
		sum2 += w * w
	}
	mean := sum / n
	sd := math.Sqrt((sum2/n - mean*mean) / n)
	if math.Abs(mean-1) > 5*sd {
		t.Fatalf("mean weight %g ± %g not compatible with 1", mean, sd)
	}
}

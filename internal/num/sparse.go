package num

import "sort"

// Sparse is a square sparse matrix in compressed-sparse-row layout with
// a frozen nonzero pattern. The pattern is fixed at Build time; values
// are reassembled in place between factorisations (Zero + Add), which
// is exactly the MNA stamping lifecycle — the circuit topology, and
// therefore the pattern, never changes across Newton iterations or
// timesteps.
type Sparse struct {
	N      int
	RowPtr []int     // len N+1; row i occupies [RowPtr[i], RowPtr[i+1])
	ColIdx []int32   // len NNZ; column indices, sorted within each row
	Val    []float64 // len NNZ
}

// SparseBuilder accumulates the nonzero pattern of an N×N matrix.
// Duplicate entries are merged at Build.
type SparseBuilder struct {
	n      int
	coords []uint64 // i<<32 | j
}

// NewSparseBuilder returns a pattern builder for an n×n matrix.
func NewSparseBuilder(n int) *SparseBuilder {
	if n < 0 || n >= 1<<31 {
		panic("num: sparse dimension out of range")
	}
	return &SparseBuilder{n: n}
}

// Entry records position (i, j) as structurally nonzero.
func (b *SparseBuilder) Entry(i, j int) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic("num: sparse entry out of range")
	}
	b.coords = append(b.coords, uint64(i)<<32|uint64(j))
}

// Build freezes the accumulated pattern into a zero-valued Sparse. The
// pattern is canonical (sorted, deduplicated), so it does not depend on
// the order entries were recorded in.
func (b *SparseBuilder) Build() *Sparse {
	sort.Slice(b.coords, func(x, y int) bool { return b.coords[x] < b.coords[y] })
	nnz := 0
	for k, c := range b.coords {
		if k == 0 || c != b.coords[k-1] {
			nnz++
		}
	}
	s := &Sparse{
		N:      b.n,
		RowPtr: make([]int, b.n+1),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float64, nnz),
	}
	row := 0
	for k, c := range b.coords {
		if k > 0 && c == b.coords[k-1] {
			continue
		}
		i := int(c >> 32)
		for row < i {
			row++
			s.RowPtr[row] = len(s.ColIdx)
		}
		s.ColIdx = append(s.ColIdx, int32(uint32(c)))
	}
	for row < b.n {
		row++
		s.RowPtr[row] = len(s.ColIdx)
	}
	return s
}

// NNZ returns the number of structural nonzeros.
func (s *Sparse) NNZ() int { return len(s.ColIdx) }

// Index returns the Val position of entry (i, j), or -1 if (i, j) is
// outside the frozen pattern.
func (s *Sparse) Index(i, j int) int {
	lo, hi := s.RowPtr[i], s.RowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if int(s.ColIdx[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.RowPtr[i+1] && int(s.ColIdx[lo]) == j {
		return lo
	}
	return -1
}

// Zero clears all values in place, keeping the pattern.
func (s *Sparse) Zero() {
	for i := range s.Val {
		s.Val[i] = 0
	}
}

// Add accumulates v into entry (i, j). It panics if (i, j) is outside
// the frozen pattern — stamping a position that was never recorded is a
// topology bug, not a numeric condition.
func (s *Sparse) Add(i, j int, v float64) {
	p := s.Index(i, j)
	if p < 0 {
		panic("num: sparse Add outside frozen pattern")
	}
	s.Val[p] += v
}

// At returns entry (i, j), zero if outside the pattern.
func (s *Sparse) At(i, j int) float64 {
	if p := s.Index(i, j); p >= 0 {
		return s.Val[p]
	}
	return 0
}

// MulVecInto computes dst = s·x without allocating. dst must not alias
// x. It panics on dimension mismatch.
//
//lint:hot
func (s *Sparse) MulVecInto(dst, x []float64) {
	if len(x) != s.N || len(dst) != s.N {
		panic("num: sparse MulVecInto dimension mismatch")
	}
	for i := 0; i < s.N; i++ {
		sum := 0.0
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			sum += s.Val[p] * x[s.ColIdx[p]]
		}
		dst[i] = sum
	}
}

// MaxAbs returns the largest absolute value (the max norm).
func (s *Sparse) MaxAbs() float64 {
	mx := 0.0
	for _, v := range s.Val {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Dense expands s into a dense Matrix — for tests and debugging only.
func (s *Sparse) Dense() *Matrix {
	m := NewMatrix(s.N, s.N)
	for i := 0; i < s.N; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			m.Set(i, int(s.ColIdx[p]), s.Val[p])
		}
	}
	return m
}

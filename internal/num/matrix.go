// Package num provides the numerical kernels used by the SAMURAI
// reproduction: dense linear algebra (the MNA solver's workhorse), FFTs
// for spectral estimation, interpolation and basic statistics.
//
// The circuits simulated here are small (a 6T SRAM cell plus drivers is
// ~15 nodes), so a dense LU with partial pivoting is both exact and
// faster than any sparse machinery at this scale.
package num

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("num: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j). MNA stamping is built on this.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Zero clears all elements in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom overwrites m with src (dimensions must match).
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("num: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// MulVec computes y = m·x. It panics on dimension mismatch.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("num: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecInto computes dst = m·x without allocating. dst must not alias
// x. It panics on dimension mismatch.
//
//lint:hot
func (m *Matrix) MulVecInto(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("num: MulVecInto dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "% .6e ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxAbs returns the largest absolute element value (the max norm).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// VecNormInf returns max_i |x_i|.
func VecNormInf(x []float64) float64 {
	mx := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// VecNorm2 returns the Euclidean norm of x.
func VecNorm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// SubInto computes dst = a−b without allocating. dst may alias a or b.
//
//lint:hot
func SubInto(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("num: SubInto length mismatch")
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// VecSub returns a-b as a new slice.
func VecSub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("num: VecSub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

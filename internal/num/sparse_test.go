package num

import (
	"errors"
	"math"
	"testing"

	"samurai/internal/rng"
)

// sparseFromDense converts a dense matrix into a Sparse holding exactly
// the structurally nonzero entries (plus any extra pattern positions
// requested), for cross-checking the two solvers on identical values.
func sparseFromDense(m *Matrix) *Sparse {
	b := NewSparseBuilder(m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != 0 {
				b.Entry(i, j)
			}
		}
	}
	s := b.Build()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if v := m.At(i, j); v != 0 {
				s.Add(i, j, v)
			}
		}
	}
	return s
}

// randomSparseDominant builds a random diagonally dominant matrix with
// roughly the given fill fraction off the diagonal.
func randomSparseDominant(r *rng.Stream, n int, fill float64) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i == j || r.Float64() >= fill {
				continue
			}
			v := 2*r.Float64() - 1
			a.Set(i, j, v)
			rowSum += math.Abs(v)
		}
		sign := 1.0
		if r.Float64() < 0.5 {
			sign = -1
		}
		a.Set(i, i, sign*(rowSum+1+r.Float64()))
	}
	return a
}

func TestSparseBuilderCanonicalPattern(t *testing.T) {
	b := NewSparseBuilder(3)
	// Out-of-order and duplicate entries must merge into one sorted
	// pattern.
	b.Entry(2, 1)
	b.Entry(0, 0)
	b.Entry(2, 1)
	b.Entry(0, 2)
	b.Entry(1, 1)
	s := b.Build()
	if s.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", s.NNZ())
	}
	wantRows := []int{0, 2, 3, 4}
	for i, w := range wantRows {
		if s.RowPtr[i] != w {
			t.Fatalf("RowPtr[%d] = %d, want %d", i, s.RowPtr[i], w)
		}
	}
	s.Add(2, 1, 5)
	s.Add(2, 1, 2.5)
	if got := s.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %g, want 7.5", got)
	}
	if got := s.At(1, 0); got != 0 {
		t.Fatalf("At(1,0) = %g, want 0 (outside pattern)", got)
	}
	if s.Index(1, 0) != -1 {
		t.Fatal("Index outside pattern should be -1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add outside the frozen pattern must panic")
		}
	}()
	s.Add(1, 0, 1)
}

func TestSparseMulVecMatchesDense(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(20)
		d := randomSparseDominant(r, n, 0.3)
		s := sparseFromDense(d)
		x := make([]float64, n)
		for i := range x {
			x[i] = 2*r.Float64() - 1
		}
		want := d.MulVec(x)
		got := make([]float64, n)
		s.MulVecInto(got, x)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: row %d: %g vs %g", trial, i, got[i], want[i])
			}
		}
	}
}

// solveResidual returns ‖A·x − b‖∞ for a dense A.
func solveResidual(a *Matrix, x, b []float64) float64 {
	r := a.MulVec(x)
	mx := 0.0
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func TestSparseLUMatchesDenseSolve(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 120; trial++ {
		n := 1 + r.Intn(24)
		d := randomSparseDominant(r, n, 0.25)
		s := sparseFromDense(d)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = 2*r.Float64() - 1
		}
		want, err := SolveLinear(d, rhs)
		if err != nil {
			t.Fatalf("trial %d: dense solve failed: %v", trial, err)
		}
		f := NewSparseLU()
		if err := f.FactorInto(s); err != nil {
			t.Fatalf("trial %d: sparse factor failed: %v", trial, err)
		}
		got := f.Solve(rhs)
		scale := 1 + VecNormInf(want)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10*scale {
				t.Fatalf("trial %d: x[%d] = %.17g, dense %.17g", trial, i, got[i], want[i])
			}
		}
		if res := solveResidual(d, got, rhs); res > 1e-12*(1+d.MaxAbs())*float64(n)*scale {
			t.Fatalf("trial %d: sparse residual %g too large", trial, res)
		}
	}
}

// TestSparseLURefactorBitIdentical pins the symbolic-once/numeric-many
// contract: refactoring the same values over the frozen pattern must
// reproduce the analysis factorisation bit for bit, and new values must
// solve exactly as a fresh analysis of them would.
func TestSparseLURefactorBitIdentical(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(16)
		d := randomSparseDominant(r, n, 0.3)
		s := sparseFromDense(d)
		f := NewSparseLU()
		if err := f.FactorInto(s); err != nil {
			t.Fatal(err)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = 2*r.Float64() - 1
		}
		want := f.Solve(rhs)
		// Same values through the numeric-replay path.
		if err := f.FactorInto(s); err != nil {
			t.Fatal(err)
		}
		got := f.Solve(rhs)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: refactor of identical values changed x[%d]: %g vs %g",
					trial, i, got[i], want[i])
			}
		}
		// New values over the same pattern: replay must agree bitwise
		// with a fresh workspace that analyses those values directly
		// (the pivot order is a function of the pattern and magnitudes,
		// which perturbing by scaling preserves).
		for p := range s.Val {
			s.Val[p] *= 1.5
		}
		if err := f.FactorInto(s); err != nil {
			t.Fatal(err)
		}
		fresh := NewSparseLU()
		if err := fresh.FactorInto(s); err != nil {
			t.Fatal(err)
		}
		a := f.Solve(rhs)
		b := fresh.Solve(rhs)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("trial %d: replay vs fresh analysis differ at x[%d]: %g vs %g",
					trial, i, a[i], b[i])
			}
		}
	}
}

// TestSparseLUZeroDiagonal exercises the MNA shape that motivates
// pivoting: voltage-source branch rows have a structural zero on the
// diagonal and only ±1 couplings.
func TestSparseLUZeroDiagonal(t *testing.T) {
	// Node equation with a conductance, plus a source branch:
	//   [ g  1 ] [v]   [0]
	//   [ 1  0 ] [i] = [E]
	d := NewMatrix(2, 2)
	d.Set(0, 0, 1e-3)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	s := sparseFromDense(d)
	f := NewSparseLU()
	if err := f.FactorInto(s); err != nil {
		t.Fatalf("zero-diagonal factor failed: %v", err)
	}
	x := f.Solve([]float64{0, 1.2})
	if math.Abs(x[0]-1.2) > 1e-12 {
		t.Fatalf("node voltage = %g, want 1.2", x[0])
	}
	if math.Abs(x[1]-(-1.2e-3)) > 1e-15 {
		t.Fatalf("branch current = %g, want -1.2e-3", x[1])
	}
}

// TestSparseLURepivotsWhenFrozenPivotDies changes values so the pivot
// the analysis froze becomes exactly zero; FactorInto must silently
// re-analyse and still solve.
func TestSparseLURepivotsWhenFrozenPivotDies(t *testing.T) {
	b := NewSparseBuilder(2)
	for _, c := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		b.Entry(c[0], c[1])
	}
	s := b.Build()
	set := func(a00, a01, a10, a11 float64) {
		s.Zero()
		s.Add(0, 0, a00)
		s.Add(0, 1, a01)
		s.Add(1, 0, a10)
		s.Add(1, 1, a11)
	}
	f := NewSparseLU()
	set(4, 1, 1, 3) // analysis pivots on the dominant diagonal
	if err := f.FactorInto(s); err != nil {
		t.Fatal(err)
	}
	// Kill the frozen (0,0)-ish pivot; the matrix stays well-posed.
	set(0, 1, 1, 3)
	if err := f.FactorInto(s); err != nil {
		t.Fatalf("re-pivot path failed: %v", err)
	}
	x := f.Solve([]float64{1, 2})
	// [0 1; 1 3]·x = [1 2] → x = [-1, 1]
	if math.Abs(x[0]+1) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("solution after re-pivot = %v, want [-1 1]", x)
	}
}

func TestSparseLURecoversAfterSingular(t *testing.T) {
	b := NewSparseBuilder(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			b.Entry(i, j)
		}
	}
	s := b.Build() // all values zero: singular
	f := NewSparseLU()
	if err := f.FactorInto(s); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	r := rng.New(9)
	d := randomSparseDominant(r, 3, 1.0)
	s2 := sparseFromDense(d)
	if err := f.FactorInto(s2); err != nil {
		t.Fatalf("workspace unusable after singular matrix: %v", err)
	}
	rhs := []float64{1, -2, 0.5}
	x := f.Solve(rhs)
	if res := solveResidual(d, x, rhs); res > 1e-10 {
		t.Fatalf("post-recovery residual %g too large", res)
	}
}

// TestSparseLUWorkspaceReuseAcrossPatterns rebinds one workspace to a
// sequence of different matrices (different sizes and patterns), the
// lifecycle a fuzzer or a multi-circuit caller produces.
func TestSparseLUWorkspaceReuseAcrossPatterns(t *testing.T) {
	r := rng.New(41)
	f := NewSparseLU()
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(20)
		d := randomSparseDominant(r, n, 0.4)
		s := sparseFromDense(d)
		if err := f.FactorInto(s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = 2*r.Float64() - 1
		}
		x := f.Solve(rhs)
		scale := 1 + VecNormInf(x)
		if res := solveResidual(d, x, rhs); res > 1e-10*scale {
			t.Fatalf("trial %d: residual %g too large", trial, res)
		}
	}
}

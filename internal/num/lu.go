package num

import (
	"errors"
	"math"
)

// ErrSingular is returned when LU factorisation encounters a pivot that
// is numerically zero. In circuit terms this means the MNA matrix is
// singular — typically a floating node or a loop of ideal sources.
var ErrSingular = errors.New("num: matrix is singular to working precision")

// LU holds an in-place LU factorisation with partial pivoting:
// P·A = L·U where L is unit lower triangular and U upper triangular.
type LU struct {
	lu    *Matrix
	pivot []int
	signP int // determinant sign of P
}

// Factor computes the LU factorisation of a (which is copied, not
// modified). It returns ErrSingular if a pivot underflows.
func Factor(a *Matrix) (*LU, error) {
	f := &LU{}
	if err := f.FactorInto(a); err != nil {
		return nil, err
	}
	return f, nil
}

// NewLU returns an empty n×n factorisation workspace ready for
// FactorInto. Holding one per solver context keeps repeated
// factorisations allocation-free.
func NewLU(n int) *LU {
	return &LU{lu: NewMatrix(n, n), pivot: make([]int, n)}
}

// FactorInto recomputes the factorisation of a into f's existing
// storage, allocating only when the workspace is absent or sized for a
// different dimension. The elimination is identical to Factor, so a
// reused workspace yields bit-identical factors and solutions to a
// fresh factorisation of the same matrix. On ErrSingular the workspace
// contents are unspecified but remain reusable.
func (f *LU) FactorInto(a *Matrix) error {
	if a.Rows != a.Cols {
		panic("num: Factor requires a square matrix")
	}
	n := a.Rows
	if f.lu == nil || f.lu.Rows != n || f.lu.Cols != n {
		f.lu = NewMatrix(n, n)
		f.pivot = make([]int, n)
	}
	f.lu.CopyFrom(a)
	f.signP = 1
	lu := f.lu
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest |entry| in column k.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				maxAbs = a
				p = i
			}
		}
		f.pivot[k] = p
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return ErrSingular
		}
		if p != k {
			f.signP = -f.signP
			for j := 0; j < n; j++ {
				v := lu.At(k, j)
				lu.Set(k, j, lu.At(p, j))
				lu.Set(p, j, v)
			}
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) * inv
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			rowI := lu.Data[i*n : (i+1)*n]
			rowK := lu.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	return nil
}

// Solve returns x such that A·x = b. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("num: Solve dimension mismatch")
	}
	x := make([]float64, n)
	copy(x, b)
	f.SolveInPlace(x)
	return x
}

// SolveInPlace overwrites x (initially holding b) with the solution.
//
//lint:hot
func (f *LU) SolveInPlace(x []float64) {
	n := f.lu.Rows
	lu := f.lu
	// Apply P.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.signP)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear is a convenience one-shot solve of A·x = b.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

package num

import "math"

// FFT computes the in-place-free discrete Fourier transform of x and
// returns it. Power-of-two lengths use an iterative radix-2
// Cooley–Tukey; other lengths fall back to Bluestein's chirp-z
// algorithm, so any length is supported exactly (no silent padding).
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := make([]complex128, n)
		copy(out, x)
		fftRadix2(out, false)
		return out
	}
	return bluestein(x, false)
}

// IFFT computes the inverse DFT (with 1/n normalisation).
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	var out []complex128
	if n&(n-1) == 0 {
		out = make([]complex128, n)
		copy(out, x)
		fftRadix2(out, true)
	} else {
		out = bluestein(x, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// fftRadix2 performs an in-place radix-2 FFT. inverse selects the sign
// of the twiddle exponent; normalisation is the caller's business.
func fftRadix2(a []complex128, inverse bool) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := complex(math.Cos(ang), math.Sin(ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * w
				a[i+j] = u + v
				a[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// which re-expresses the DFT as a convolution that can be evaluated with
// power-of-two FFTs.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign*i*pi*k^2/n)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for huge n; use mod 2n on the phase index.
		idx := float64(int64(k) * int64(k) % int64(2*n))
		ang := sign * math.Pi * idx / float64(n)
		chirp[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	conj := func(c complex128) complex128 { return complex(real(c), -imag(c)) }
	b[0] = conj(chirp[0])
	for k := 1; k < n; k++ {
		b[k] = conj(chirp[k])
		b[m-k] = b[k]
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * chirp[k]
	}
	return out
}

// RealFFT transforms a real sequence and returns the full complex
// spectrum (length len(x)).
func RealFFT(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

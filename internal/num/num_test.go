package num

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2)
	if m.At(0, 0) != 1 || m.At(1, 2) != 7 {
		t.Fatalf("element access broken: %v", m.Data)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases the original")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := m.MulVec([]float64{5, 6})
	if y[0] != 17 || y[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", y)
	}
}

func TestLUSolveKnownSystem(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	x, err := SolveLinear(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); err == nil {
		t.Fatal("expected ErrSingular for a rank-deficient matrix")
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 4)
	a.Set(1, 1, 2)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-2) > 1e-12 {
		t.Fatalf("det = %g, want 2", f.Det())
	}
}

// Property: for random well-conditioned systems, ‖A·x − b‖ is tiny.
func TestLUResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%7) + 2
		if n < 0 {
			n = 2
		}
		a := NewMatrix(n, n)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(int64(s>>11))/float64(1<<52) - 1
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, next())
			}
			a.Add(i, i, float64(n)) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = next()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		r := VecSub(a.MulVec(x), b)
		return VecNormInf(r) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTKnownTransform(t *testing.T) {
	// DFT of [1,0,0,0] is all ones.
	out := FFT([]complex128{1, 0, 0, 0})
	for i, v := range out {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 8, 12, 15, 64, 100} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(math.Sin(float64(i)*1.7), math.Cos(float64(i)*0.3))
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip broke at %d: %v vs %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	for _, n := range []int{16, 37, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(math.Sin(float64(i)), 0.5*math.Cos(2*float64(i)))
		}
		timeE := 0.0
		for _, v := range x {
			timeE += real(v)*real(v) + imag(v)*imag(v)
		}
		spec := FFT(x)
		freqE := 0.0
		for _, v := range spec {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		freqE /= float64(n)
		if math.Abs(timeE-freqE) > 1e-9*timeE {
			t.Fatalf("n=%d: Parseval violated: %g vs %g", n, timeE, freqE)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 10)
		b = math.Mod(b, 10)
		n := 16
		x := make([]complex128, n)
		y := make([]complex128, n)
		for i := range x {
			x[i] = complex(math.Sin(float64(i)*0.9), 0)
			y[i] = complex(math.Cos(float64(i)*1.3), 0)
		}
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = complex(a, 0)*x[i] + complex(b, 0)*y[i]
		}
		fx, fy, fs := FFT(x), FFT(y), FFT(sum)
		for i := range fs {
			want := complex(a, 0)*fx[i] + complex(b, 0)*fy[i]
			if cmplx.Abs(fs[i]-want) > 1e-9*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRealFFTMatchesComplex(t *testing.T) {
	x := []float64{1, 2, -1, 3, 0, 1, -2, 4}
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	a, b := RealFFT(x), FFT(c)
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("RealFFT disagrees with FFT")
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 64: 64, 65: 128}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestStats(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(x) != 5 {
		t.Fatalf("mean = %g", Mean(x))
	}
	if StdDev(x) != 2 {
		t.Fatalf("std = %g", StdDev(x))
	}
	if q := Quantile(x, 0.5); math.Abs(q-4.5) > 1e-12 {
		t.Fatalf("median = %g", q)
	}
	if q := Quantile(x, 0); q != 2 {
		t.Fatalf("q0 = %g", q)
	}
	if q := Quantile(x, 1); q != 9 {
		t.Fatalf("q1 = %g", q)
	}
}

func TestLinFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b := LinFit(x, y)
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Fatalf("fit = (%g, %g), want (1, 2)", a, b)
	}
}

func TestTrapzLinear(t *testing.T) {
	x := Linspace(0, 2, 101)
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3 * v
	}
	if got := Trapz(x, y); math.Abs(got-6) > 1e-12 {
		t.Fatalf("trapz = %g, want 6", got)
	}
}

func TestLogspaceLinspace(t *testing.T) {
	ls := Logspace(0, 2, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(ls[i]-want[i]) > 1e-9 {
			t.Fatalf("logspace = %v", ls)
		}
	}
	lin := Linspace(1, 3, 5)
	if lin[0] != 1 || lin[4] != 3 || lin[2] != 2 {
		t.Fatalf("linspace = %v", lin)
	}
}

func TestKSStatExp(t *testing.T) {
	// A perfect exponential quantile grid should have a tiny KS stat.
	n := 1000
	x := make([]float64, n)
	for i := range x {
		u := (float64(i) + 0.5) / float64(n)
		x[i] = -math.Log(1-u) / 2.0
	}
	if d := KSStatExp(x, 2.0); d > 0.01 {
		t.Fatalf("KS stat on exact quantiles = %g", d)
	}
	// Against the wrong rate it must be large.
	if d := KSStatExp(x, 6.0); d < 0.2 {
		t.Fatalf("KS stat with wrong rate = %g, want large", d)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(1.1, 1.0, 1e-12) != 0.10000000000000009 && math.Abs(RelErr(1.1, 1.0, 1e-12)-0.1) > 1e-12 {
		t.Fatal("RelErr basic case")
	}
	// Floor keeps near-zero references sane.
	if RelErr(1e-9, 0, 1e-6) != 1e-3 {
		t.Fatalf("floored RelErr = %g", RelErr(1e-9, 0, 1e-6))
	}
}

package num

import "math"

// sparsePivotTol is the threshold-pivoting relative tolerance: any row
// whose column magnitude is within this factor of the column maximum is
// an acceptable pivot, and among acceptable rows the one with the
// fewest structural nonzeros (a static Markowitz cost) is chosen. This
// is the classic SPICE trade: near-maximal numerical stability, but
// hub rows — shared bitlines and wordlines touch every cell in a row
// or column of the array — are eliminated last so they do not smear
// fill across the whole factor. 0.1 bounds per-step element growth at
// 10×, keeping residuals comfortably inside the circuit layer's 1e-9
// KCL gate; looser thresholds (SPICE's classic 1e-3) buy little fill
// here because the MNA stamps already put the dominant entry on or
// near the diagonal.
const sparsePivotTol = 0.1

// SparseLU factors a Sparse matrix as P·A = L·U using the
// Gilbert–Peierls left-looking algorithm. The expensive part — the
// symbolic work of discovering the fill pattern and choosing a pivot
// order — runs once, on the first FactorInto for a given matrix;
// subsequent calls replay the elimination numerically over the frozen
// pattern with frozen pivots. That split matches the MNA workload
// exactly: one pattern per circuit, thousands of refactorisations
// across Newton iterations and timesteps.
//
// If a frozen pivot later turns numerically zero (the operating point
// moved far enough to change which rows are viable), FactorInto
// silently re-analyses with fresh pivoting and only reports
// ErrSingular if the matrix is singular under full re-pivoting too —
// the same observable contract as the dense LU.
type SparseLU struct {
	n   int
	pat *Sparse // matrix the current analysis belongs to

	// CSC view of the input pattern: column j occupies
	// [cColPtr[j], cColPtr[j+1]); entry p lives at row cRow[p] and
	// sources its value from pat.Val[cSrc[p]].
	cColPtr []int
	cRow    []int32
	cSrc    []int32

	// Factors, column-major, patterns frozen by analysis.
	// L excludes the unit diagonal and indexes original (unpermuted)
	// rows. U's off-diagonal entries are indexed by pivot *step* and
	// stored per column in the exact topological order the numeric
	// replay applies them; the diagonal lives in uDiag.
	lColPtr []int
	lRow    []int32
	lVal    []float64
	uColPtr []int
	uStep   []int32
	uVal    []float64
	uDiag   []float64
	pivRow  []int // pivot step k -> original row index

	rowCount []int32 // static nonzeros per row of A (Markowitz cost)

	// Scratch. w is the sparse accumulator column and must be all-zero
	// between columns; y is the solve-time intermediate.
	w         []float64
	y         []float64
	pos       []int   // original row -> pivot step, -1 while non-pivotal
	cp        []int   // per-step DFS child cursor
	post      []int32 // DFS postorder of pivot steps
	cand      []int32 // non-pivotal rows in the current column's pattern
	dfs       []int32 // DFS stack
	stepStamp []int32 // per-step visited mark, stamped by column
	rowStamp  []int32 // per-row candidate mark, stamped by column
}

// NewSparseLU returns an empty factorisation workspace. The first
// FactorInto sizes and analyses it.
func NewSparseLU() *SparseLU { return &SparseLU{} }

// FactorInto computes or refreshes the factorisation of a. The first
// call for a given matrix performs symbolic analysis with threshold
// pivoting; later calls for the same matrix replay only the numeric
// elimination over the frozen pattern. On ErrSingular the workspace
// remains reusable.
func (f *SparseLU) FactorInto(a *Sparse) error {
	if f.pat != a {
		return f.analyze(a)
	}
	if f.refactor(a) {
		return nil
	}
	// A frozen pivot hit exact zero (or NaN): re-pivot from scratch.
	return f.analyze(a)
}

// analyze runs the full Gilbert–Peierls factorisation: per column, a
// depth-first search over the partially built L discovers the fill
// pattern and a topological application order, the numeric update runs
// over exactly that pattern, and the pivot is chosen by threshold +
// static Markowitz cost. Everything discovered here — patterns, pivot
// order, application order — is frozen for refactor.
func (f *SparseLU) analyze(a *Sparse) error {
	n := a.N
	f.n = n
	f.pat = nil
	f.buildCSC(a)
	f.growScratch(n)
	for i := range f.pos {
		f.pos[i] = -1
	}
	f.lColPtr = append(f.lColPtr[:0], 0)
	f.lRow = f.lRow[:0]
	f.lVal = f.lVal[:0]
	f.uColPtr = append(f.uColPtr[:0], 0)
	f.uStep = f.uStep[:0]
	f.uVal = f.uVal[:0]

	for j := 0; j < n; j++ {
		f.post = f.post[:0]
		f.cand = f.cand[:0]
		// Symbolic: reachability of column j's pattern through L.
		for p := f.cColPtr[j]; p < f.cColPtr[j+1]; p++ {
			f.visit(int(f.cRow[p]), j)
		}
		// Numeric: scatter A(:,j) and apply the reached pivot columns
		// in topological (reverse-post) order.
		for p := f.cColPtr[j]; p < f.cColPtr[j+1]; p++ {
			f.w[f.cRow[p]] = a.Val[f.cSrc[p]]
		}
		for i := len(f.post) - 1; i >= 0; i-- {
			k := int(f.post[i])
			xk := f.w[f.pivRow[k]]
			f.uStep = append(f.uStep, int32(k))
			f.uVal = append(f.uVal, xk)
			if xk != 0 {
				for p := f.lColPtr[k]; p < f.lColPtr[k+1]; p++ {
					f.w[f.lRow[p]] -= xk * f.lVal[p]
				}
			}
		}
		f.uColPtr = append(f.uColPtr, len(f.uStep))
		// Pivot: threshold on magnitude, tie-break on static row count.
		xmax := 0.0
		for _, r := range f.cand {
			v := math.Abs(f.w[r])
			if math.IsNaN(v) {
				f.clearColumn()
				return ErrSingular
			}
			if v > xmax {
				xmax = v
			}
		}
		if xmax == 0 {
			f.clearColumn()
			return ErrSingular
		}
		best := -1
		var bestCount int32
		for _, r := range f.cand {
			if math.Abs(f.w[r]) < sparsePivotTol*xmax {
				continue
			}
			c := f.rowCount[r]
			if best < 0 || c < bestCount || (c == bestCount && int(r) < best) {
				best, bestCount = int(r), c
			}
		}
		f.pivRow[j] = best
		f.pos[best] = j
		piv := f.w[best]
		f.uDiag[j] = piv
		for _, r := range f.cand {
			if int(r) == best {
				continue
			}
			f.lRow = append(f.lRow, r)
			f.lVal = append(f.lVal, f.w[r]/piv)
		}
		f.lColPtr = append(f.lColPtr, len(f.lRow))
		f.clearColumn()
	}
	f.pat = a
	return nil
}

// visit runs the iterative DFS for one starting row of column j,
// appending reached pivot steps to post and newly seen non-pivotal
// rows to cand. Visit marks persist for the whole column via pos/cp
// sentinel state: a step is on or past the stack iff cp[k] >= 0 this
// column, tracked with the stamp convention below.
func (f *SparseLU) visit(r0, j int) {
	if f.pos[r0] < 0 {
		f.markCand(int32(r0), j)
		return
	}
	k0 := f.pos[r0]
	if f.stepSeen(k0, j) {
		return
	}
	f.dfs = append(f.dfs[:0], int32(k0))
	f.cp[k0] = f.lColPtr[k0]
	for len(f.dfs) > 0 {
		k := int(f.dfs[len(f.dfs)-1])
		descended := false
		for p := f.cp[k]; p < f.lColPtr[k+1]; p++ {
			r := int(f.lRow[p])
			f.cp[k] = p + 1
			if f.pos[r] < 0 {
				f.markCand(int32(r), j)
				continue
			}
			k2 := f.pos[r]
			if !f.stepSeen(k2, j) {
				f.cp[k2] = f.lColPtr[k2]
				f.dfs = append(f.dfs, int32(k2))
				descended = true
				break
			}
		}
		if !descended {
			f.dfs = f.dfs[:len(f.dfs)-1]
			f.post = append(f.post, int32(k))
		}
	}
}

// stepStamp/rowStamp implement O(1) per-column visited marks without a
// per-column clear: a mark is valid only if stamped with the current
// column number + 1.
func (f *SparseLU) stepSeen(k, j int) bool {
	if f.stepStamp[k] == int32(j+1) {
		return true
	}
	f.stepStamp[k] = int32(j + 1)
	return false
}

func (f *SparseLU) markCand(r int32, j int) {
	if f.rowStamp[r] != int32(j+1) {
		f.rowStamp[r] = int32(j + 1)
		f.cand = append(f.cand, r)
	}
}

// clearColumn restores the all-zero invariant of w after a column is
// finished (or abandoned on ErrSingular).
func (f *SparseLU) clearColumn() {
	for _, k := range f.post {
		f.w[f.pivRow[k]] = 0
	}
	for _, r := range f.cand {
		f.w[r] = 0
	}
}

// refactor replays the elimination numerically over the frozen
// pattern, pivots, and application order. It reports false — leaving
// the caller to re-analyse — if a frozen pivot is exactly zero or NaN.
//
//lint:hot
func (f *SparseLU) refactor(a *Sparse) bool {
	n := f.n
	w := f.w
	lColPtr, lRow, lVal := f.lColPtr, f.lRow, f.lVal
	uColPtr, uStep, uVal := f.uColPtr, f.uStep, f.uVal
	pivRow := f.pivRow
	for j := 0; j < n; j++ {
		for p := f.cColPtr[j]; p < f.cColPtr[j+1]; p++ {
			w[f.cRow[p]] = a.Val[f.cSrc[p]]
		}
		for p := uColPtr[j]; p < uColPtr[j+1]; p++ {
			k := int(uStep[p])
			xk := w[pivRow[k]]
			uVal[p] = xk
			if xk != 0 {
				for q := lColPtr[k]; q < lColPtr[k+1]; q++ {
					w[lRow[q]] -= xk * lVal[q]
				}
			}
		}
		piv := w[pivRow[j]]
		if piv == 0 || math.IsNaN(piv) {
			// Clear w before handing control back for re-analysis.
			for p := uColPtr[j]; p < uColPtr[j+1]; p++ {
				w[pivRow[uStep[p]]] = 0
			}
			w[pivRow[j]] = 0
			for p := lColPtr[j]; p < lColPtr[j+1]; p++ {
				w[lRow[p]] = 0
			}
			return false
		}
		f.uDiag[j] = piv
		for p := lColPtr[j]; p < lColPtr[j+1]; p++ {
			lVal[p] = w[lRow[p]] / piv
			w[lRow[p]] = 0
		}
		for p := uColPtr[j]; p < uColPtr[j+1]; p++ {
			w[pivRow[uStep[p]]] = 0
		}
		w[pivRow[j]] = 0
	}
	return true
}

// SolveInPlace overwrites x (initially holding b) with the solution of
// A·x = b using the current factors. It allocates nothing.
//
//lint:hot
func (f *SparseLU) SolveInPlace(x []float64) {
	n := f.n
	if len(x) != n {
		panic("num: sparse SolveInPlace dimension mismatch")
	}
	y := f.y
	// Forward substitution in original row space: step k consumes the
	// pivot row's running value and pushes its L column into the rows
	// below (in elimination order).
	for k := 0; k < n; k++ {
		yk := x[f.pivRow[k]]
		y[k] = yk
		if yk != 0 {
			for p := f.lColPtr[k]; p < f.lColPtr[k+1]; p++ {
				x[f.lRow[p]] -= yk * f.lVal[p]
			}
		}
	}
	// Back substitution on U in step space, column-oriented.
	for j := n - 1; j >= 0; j-- {
		xj := y[j] / f.uDiag[j]
		y[j] = xj
		if xj != 0 {
			for p := f.uColPtr[j]; p < f.uColPtr[j+1]; p++ {
				y[f.uStep[p]] -= xj * f.uVal[p]
			}
		}
	}
	copy(x, y[:n])
}

// Solve returns x such that A·x = b. b is not modified.
func (f *SparseLU) Solve(b []float64) []float64 {
	x := make([]float64, len(b))
	copy(x, b)
	f.SolveInPlace(x)
	return x
}

// FactorNNZ returns the number of stored factor entries (L + U,
// including diagonals) — the fill the analysis settled on, and the
// quantity per-step solve cost is linear in.
func (f *SparseLU) FactorNNZ() int {
	return len(f.lVal) + len(f.uVal) + 2*f.n
}

// buildCSC transposes a's pattern into the column-major view used by
// the factorisation, with back-references into a.Val so refactor can
// scatter straight from the stamped values.
func (f *SparseLU) buildCSC(a *Sparse) {
	n := a.N
	nnz := a.NNZ()
	if cap(f.cColPtr) < n+1 {
		f.cColPtr = make([]int, n+1)
	}
	f.cColPtr = f.cColPtr[:n+1]
	for j := range f.cColPtr {
		f.cColPtr[j] = 0
	}
	if cap(f.cRow) < nnz {
		f.cRow = make([]int32, nnz)
		f.cSrc = make([]int32, nnz)
	}
	f.cRow = f.cRow[:nnz]
	f.cSrc = f.cSrc[:nnz]
	for _, j := range a.ColIdx {
		f.cColPtr[j+1]++
	}
	for j := 0; j < n; j++ {
		f.cColPtr[j+1] += f.cColPtr[j]
	}
	// Walking rows in order makes each CSC column row-sorted for free.
	fill := make([]int, n)
	copy(fill, f.cColPtr[:n])
	for i := 0; i < n; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := int(a.ColIdx[p])
			f.cRow[fill[j]] = int32(i)
			f.cSrc[fill[j]] = int32(p)
			fill[j]++
		}
	}
	if cap(f.rowCount) < n {
		f.rowCount = make([]int32, n)
	}
	f.rowCount = f.rowCount[:n]
	for i := 0; i < n; i++ {
		f.rowCount[i] = int32(a.RowPtr[i+1] - a.RowPtr[i])
	}
}

// growScratch sizes the per-row/per-step work arrays, zeroing the
// accumulator and the visit stamps.
func (f *SparseLU) growScratch(n int) {
	if cap(f.w) < n {
		f.w = make([]float64, n)
		f.y = make([]float64, n)
		f.pos = make([]int, n)
		f.cp = make([]int, n)
		f.pivRow = make([]int, n)
		f.uDiag = make([]float64, n)
		f.stepStamp = make([]int32, n)
		f.rowStamp = make([]int32, n)
	}
	f.w = f.w[:n]
	f.y = f.y[:n]
	f.pos = f.pos[:n]
	f.cp = f.cp[:n]
	f.pivRow = f.pivRow[:n]
	f.uDiag = f.uDiag[:n]
	f.stepStamp = f.stepStamp[:n]
	f.rowStamp = f.rowStamp[:n]
	for i := range f.w {
		f.w[i] = 0
	}
	for i := range f.stepStamp {
		f.stepStamp[i] = 0
		f.rowStamp[i] = 0
	}
}

package num

import (
	"errors"
	"math"
	"testing"

	"samurai/internal/rng"
)

// randomDominant builds a random strictly diagonally dominant (hence
// well-conditioned enough to factor) n×n matrix.
func randomDominant(r *rng.Stream, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := 2*r.Float64() - 1
			a.Set(i, j, v)
			rowSum += math.Abs(v)
		}
		sign := 1.0
		if r.Float64() < 0.5 {
			sign = -1
		}
		a.Set(i, i, sign*(rowSum+1+r.Float64()))
	}
	return a
}

// wantIdenticalLU asserts two factorisations match bit for bit.
func wantIdenticalLU(t *testing.T, fresh, reused *LU) {
	t.Helper()
	if fresh.signP != reused.signP {
		t.Fatalf("signP differs: %d vs %d", fresh.signP, reused.signP)
	}
	for i, p := range fresh.pivot {
		if reused.pivot[i] != p {
			t.Fatalf("pivot[%d] differs: %d vs %d", i, p, reused.pivot[i])
		}
	}
	for i, v := range fresh.lu.Data {
		if math.Float64bits(reused.lu.Data[i]) != math.Float64bits(v) {
			t.Fatalf("factor entry %d differs: %g vs %g", i, v, reused.lu.Data[i])
		}
	}
}

// TestFactorIntoMatchesFreshFactor is the workspace-reuse property
// test: factoring B into a workspace that previously held A must yield
// factors, pivots and solutions bit-identical to a fresh Factor(B).
func TestFactorIntoMatchesFreshFactor(t *testing.T) {
	r := rng.New(77)
	ws := &LU{}
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(12)
		// Dirty the workspace with a first factorisation of a
		// different random matrix (possibly of a different size).
		if err := ws.FactorInto(randomDominant(r, 1+r.Intn(12))); err != nil {
			t.Fatalf("trial %d: priming factorisation failed: %v", trial, err)
		}

		b := randomDominant(r, n)
		fresh, err := Factor(b)
		if err != nil {
			t.Fatalf("trial %d: fresh Factor failed: %v", trial, err)
		}
		if err := ws.FactorInto(b); err != nil {
			t.Fatalf("trial %d: FactorInto failed: %v", trial, err)
		}
		wantIdenticalLU(t, fresh, ws)

		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = 2*r.Float64() - 1
		}
		want := fresh.Solve(rhs)
		got := make([]float64, n)
		copy(got, rhs)
		ws.SolveInPlace(got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: solution %d differs: %g vs %g", trial, i, want[i], got[i])
			}
		}
	}
}

func TestFactorIntoDoesNotModifyInput(t *testing.T) {
	r := rng.New(5)
	a := randomDominant(r, 7)
	orig := a.Clone()
	ws := NewLU(7)
	if err := ws.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	for i, v := range orig.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(v) {
			t.Fatalf("FactorInto modified its input at %d", i)
		}
	}
}

func TestFactorIntoRecoversAfterSingular(t *testing.T) {
	ws := NewLU(3)
	sing := NewMatrix(3, 3) // all-zero: singular
	if err := ws.FactorInto(sing); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	r := rng.New(9)
	a := randomDominant(r, 3)
	if err := ws.FactorInto(a); err != nil {
		t.Fatalf("workspace unusable after singular matrix: %v", err)
	}
	fresh, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	wantIdenticalLU(t, fresh, ws)
}

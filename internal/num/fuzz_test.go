package num

import (
	"errors"
	"math"
	"testing"
)

// fuzzMatrix decodes a dense matrix from fuzz bytes: each potential
// entry consumes one byte for presence/value. Values land on a coarse
// lattice (sixteenths in [-8, 8)) so structural cancellations stay
// exact and the singular paths actually get exercised.
func fuzzMatrix(n int, dominant bool, data []byte) *Matrix {
	m := NewMatrix(n, n)
	k := 0
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[k%len(data)]
		k++
		return b
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b := next()
			if b%3 == 0 {
				continue // structural zero
			}
			m.Set(i, j, float64(int8(b))/16)
		}
	}
	if dominant {
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					rowSum += math.Abs(m.At(i, j))
				}
			}
			m.Set(i, i, math.Abs(m.At(i, i))+rowSum+1)
		}
	}
	return m
}

// FuzzSparseVsDenseLU drives the sparse factorisation against the
// dense reference on arbitrary fuzz-derived matrices. Diagonally
// dominant mode checks the solutions agree; raw mode checks the
// solvers agree on (near-)singularity and that both workspaces stay
// usable after an ErrSingular — the recovery contract the circuit
// layer relies on when a bias point degenerates.
func FuzzSparseVsDenseLU(f *testing.F) {
	f.Add([]byte{1, 0, 17, 42, 99, 3, 250, 7, 16})
	f.Add([]byte{2, 1, 0, 0, 0, 0})
	f.Add([]byte{5, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Add([]byte{7, 1, 200, 100, 50, 25, 12, 6, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := int(data[0]%10) + 1
		dominant := data[1]&1 == 0
		d := fuzzMatrix(n, dominant, data[2:])
		s := sparseFromDense(d)

		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = float64(i%5) - 2
		}
		denseLU := NewLU(n)
		denseErr := denseLU.FactorInto(d)
		sf := NewSparseLU()
		sparseErr := sf.FactorInto(s)

		if denseErr == nil && sparseErr == nil {
			xd := denseLU.Solve(rhs)
			xs := sf.Solve(rhs)
			scale := 1 + VecNormInf(xd)
			if dominant {
				for i := range xd {
					if math.Abs(xs[i]-xd[i]) > 1e-9*scale {
						t.Fatalf("solutions diverge at %d: sparse %.17g dense %.17g", i, xs[i], xd[i])
					}
				}
			}
			// Backward-stability parity in both modes: each solver's
			// residual must be rounding-sized relative to ‖A‖·‖x‖ for
			// its own solution. (Near-singular inputs make the raw
			// residuals incomparable — both x's are junk whose norms
			// depend on which rounding crumbs became the last pivot.)
			bound := func(x []float64) float64 {
				return 1e-8 * float64(n) * (1 + d.MaxAbs()) * (1 + VecNormInf(x))
			}
			if rd := solveResidual(d, xd, rhs); rd > bound(xd) {
				t.Fatalf("dense residual %g not backward-stable (bound %g)", rd, bound(xd))
			}
			if rs := solveResidual(d, xs, rhs); rs > bound(xs) {
				t.Fatalf("sparse residual %g not backward-stable (bound %g)", rs, bound(xs))
			}
		} else if (denseErr == nil) != (sparseErr == nil) {
			// Different pivot orders may round an exactly-cancelling
			// pivot to zero in one solver and leave amplified rounding
			// noise in the other; a disagreement is only legitimate
			// when the survivor's smallest pivot shows the matrix is
			// effectively singular.
			minPiv := math.Inf(1)
			if sparseErr == nil {
				for _, u := range sf.uDiag[:n] {
					if a := math.Abs(u); a < minPiv {
						minPiv = a
					}
				}
			} else {
				for i := 0; i < n; i++ {
					if a := math.Abs(denseLU.lu.At(i, i)); a < minPiv {
						minPiv = a
					}
				}
			}
			if minPiv > 1e-6*(1+d.MaxAbs()) {
				t.Fatalf("singularity disagreement far from the edge: dense err %v, sparse err %v, min pivot %g",
					denseErr, sparseErr, minPiv)
			}
		} else {
			if !errors.Is(sparseErr, ErrSingular) {
				t.Fatalf("sparse error is not ErrSingular: %v", sparseErr)
			}
		}

		// Recovery parity: after whatever just happened, both
		// workspaces must factor a well-posed matrix.
		good := fuzzMatrix(n, true, data[2:])
		gs := sparseFromDense(good)
		if err := denseLU.FactorInto(good); err != nil {
			t.Fatalf("dense workspace unusable after fuzz case: %v", err)
		}
		if err := sf.FactorInto(gs); err != nil {
			t.Fatalf("sparse workspace unusable after fuzz case: %v", err)
		}
		xd := denseLU.Solve(rhs)
		xs := sf.Solve(rhs)
		scale := 1 + VecNormInf(xd)
		for i := range xd {
			if math.Abs(xs[i]-xd[i]) > 1e-9*scale {
				t.Fatalf("post-recovery solutions diverge at %d: %g vs %g", i, xs[i], xd[i])
			}
		}
	})
}

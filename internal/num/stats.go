package num

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Quantile returns the q-th quantile (0<=q<=1) of x using linear
// interpolation between order statistics. x is not modified.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// KSStatExp returns the Kolmogorov–Smirnov statistic of sample x against
// an exponential distribution with the given rate. Tests use it to check
// that simulated dwell times have the right law.
func KSStatExp(x []float64, rate float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	n := float64(len(s))
	d := 0.0
	for i, v := range s {
		cdf := 1 - math.Exp(-rate*v)
		hi := float64(i+1)/n - cdf
		lo := cdf - float64(i)/n
		if hi > d {
			d = hi
		}
		if lo > d {
			d = lo
		}
	}
	return d
}

// LinFit fits y ≈ a + b·x by least squares and returns (a, b).
func LinFit(x, y []float64) (a, b float64) {
	if len(x) != len(y) || len(x) == 0 {
		panic("num: LinFit needs equal-length non-empty inputs")
	}
	mx, my := Mean(x), Mean(y)
	num, den := 0.0, 0.0
	for i := range x {
		dx := x[i] - mx
		num += dx * (y[i] - my)
		den += dx * dx
	}
	if den == 0 {
		return my, 0
	}
	b = num / den
	a = my - b*mx
	return
}

// Trapz integrates samples y over abscissae x with the trapezoidal rule.
func Trapz(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("num: Trapz length mismatch")
	}
	s := 0.0
	for i := 1; i < len(x); i++ {
		s += 0.5 * (y[i] + y[i-1]) * (x[i] - x[i-1])
	}
	return s
}

// Logspace returns n points logarithmically spaced from 10^lo to 10^hi
// (exponents lo..hi inclusive).
func Logspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = math.Pow(10, lo)
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = math.Pow(10, lo+float64(i)*step)
	}
	return out
}

// Linspace returns n evenly spaced points from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// RelErr returns |a-b| / max(|b|, floor): a relative error with an
// absolute floor so comparisons against near-zero references stay
// meaningful.
func RelErr(a, b, floor float64) float64 {
	den := math.Abs(b)
	if den < floor {
		den = floor
	}
	return math.Abs(a-b) / den
}

package circuit

import (
	"math"
	"testing"

	"samurai/internal/device"
	"samurai/internal/waveform"
)

func TestResistorDividerDC(t *testing.T) {
	c := New()
	if err := c.AddDCVSource("V1", "in", Ground, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := c.AddResistor("R1", "in", "mid", 1000); err != nil {
		t.Fatal(err)
	}
	if err := c.AddResistor("R2", "mid", Ground, 3000); err != nil {
		t.Fatal(err)
	}
	op, err := c.OperatingPoint(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 * 3000 / 4000
	if math.Abs(op["mid"]-want) > 1e-6 {
		t.Fatalf("divider mid = %g, want %g", op["mid"], want)
	}
}

func TestRCStepResponse(t *testing.T) {
	// 1V step into RC with tau = 1ms; v(t) = 1 - exp(-t/tau).
	c := New()
	step, _ := waveform.New([]float64{0, 1e-9}, []float64{0, 1})
	if err := c.AddVSource("V1", "in", Ground, step); err != nil {
		t.Fatal(err)
	}
	if err := c.AddResistor("R1", "in", "out", 1000); err != nil {
		t.Fatal(err)
	}
	if err := c.AddCapacitor("C1", "out", Ground, 1e-6); err != nil {
		t.Fatal(err)
	}
	res, err := c.Transient(TransientSpec{
		T0: 0, T1: 5e-3, Dt: 1e-6, UIC: true,
		Options: Options{Method: Trapezoidal},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Voltage("out")
	if err != nil {
		t.Fatal(err)
	}
	tau := 1e-3
	for _, tt := range []float64{0.5e-3, 1e-3, 2e-3, 4e-3} {
		want := 1 - math.Exp(-tt/tau)
		got := v.Eval(tt)
		if math.Abs(got-want) > 2e-3 {
			t.Errorf("v(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestNMOSInverterTransfer(t *testing.T) {
	// Resistor-load NMOS inverter: output high when input low and
	// vice versa.
	tech := device.Node("90nm")
	c := New()
	if err := c.AddDCVSource("VDD", "vdd", Ground, tech.Vdd); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDCVSource("VIN", "in", Ground, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.AddResistor("RL", "vdd", "out", 100e3); err != nil {
		t.Fatal(err)
	}
	nm := device.NewMOS(tech, device.NMOS, 4*tech.Lmin, tech.Lmin)
	if err := c.AddMOSFET("M1", "out", "in", Ground, nm); err != nil {
		t.Fatal(err)
	}
	op, err := c.OperatingPoint(map[string]float64{"vdd": tech.Vdd, "out": tech.Vdd}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if op["out"] < 0.9*tech.Vdd {
		t.Fatalf("inverter out with Vin=0: %g, want ≈ %g", op["out"], tech.Vdd)
	}

	// Now drive the gate high.
	c2 := New()
	c2.AddDCVSource("VDD", "vdd", Ground, tech.Vdd)
	c2.AddDCVSource("VIN", "in", Ground, tech.Vdd)
	c2.AddResistor("RL", "vdd", "out", 100e3)
	c2.AddMOSFET("M1", "out", "in", Ground, nm)
	op2, err := c2.OperatingPoint(map[string]float64{"vdd": tech.Vdd, "out": 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if op2["out"] > 0.2*tech.Vdd {
		t.Fatalf("inverter out with Vin=Vdd: %g, want near 0", op2["out"])
	}
}

func TestCMOSInverterDC(t *testing.T) {
	tech := device.Node("90nm")
	for _, vin := range []float64{0, tech.Vdd} {
		c := New()
		c.AddDCVSource("VDD", "vdd", Ground, tech.Vdd)
		c.AddDCVSource("VIN", "in", Ground, vin)
		nm := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)
		pm := device.NewMOS(tech, device.PMOS, 4*tech.Lmin, tech.Lmin)
		c.AddMOSFET("MN", "out", "in", Ground, nm)
		c.AddMOSFET("MP", "out", "in", "vdd", pm)
		op, err := c.OperatingPoint(map[string]float64{"vdd": tech.Vdd, "out": tech.Vdd / 2}, Options{})
		if err != nil {
			t.Fatalf("vin=%g: %v", vin, err)
		}
		want := tech.Vdd - vin
		if math.Abs(op["out"]-want) > 0.05*tech.Vdd {
			t.Fatalf("CMOS inverter: vin=%g → out=%g, want ≈ %g", vin, op["out"], want)
		}
	}
}

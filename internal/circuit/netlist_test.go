package circuit

import (
	"math"
	"strings"
	"testing"

	"samurai/internal/waveform"
)

func TestParseDeckDivider(t *testing.T) {
	deck, err := ParseDeck(strings.NewReader(`
* simple divider
V1 in 0 DC 2
R1 in mid 1k
R2 mid 0 3k
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	op, err := deck.Circuit.OperatingPoint(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op["mid"]-1.5) > 1e-6 {
		t.Fatalf("mid = %g", op["mid"])
	}
}

func TestParseDeckEngineeringSuffixes(t *testing.T) {
	deck, err := ParseDeck(strings.NewReader(`
V1 in 0 DC 1
R1 in out 1meg
C1 out 0 2.5f
.tran 1n 10n
`))
	if err != nil {
		t.Fatal(err)
	}
	if !deck.HasTran || deck.Tran.Dt != 1e-9 || deck.Tran.T1 != 10e-9 {
		t.Fatalf("tran parsed wrong: %+v", deck.Tran)
	}
}

func TestParseDeckPWLSource(t *testing.T) {
	deck, err := ParseDeck(strings.NewReader(`
VWL wl 0 PWL(0 0 1n 0 1.1n 1.2 5n 1.2)
R1 wl 0 1k
.tran 10p 5n uic
`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := deck.RunTran()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Voltage("wl")
	if v.Eval(0.5e-9) != 0 {
		t.Fatalf("wl before edge = %g", v.Eval(0.5e-9))
	}
	if math.Abs(v.Eval(3e-9)-1.2) > 1e-9 {
		t.Fatalf("wl after edge = %g", v.Eval(3e-9))
	}
	if !deck.Tran.UIC {
		t.Fatal("uic flag lost")
	}
}

func TestParseDeckPulseSource(t *testing.T) {
	deck, err := ParseDeck(strings.NewReader(`
.tran 10p 10n
VCK ck 0 PULSE(0 1 1n 100p 100p 2n 4n)
R1 ck 0 1k
`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := deck.RunTran()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Voltage("ck")
	// High during [1.1n, 3.1n], low again by 3.2n, next pulse at 5n.
	if v.Eval(2e-9) < 0.99 {
		t.Fatalf("pulse not high at 2n: %g", v.Eval(2e-9))
	}
	if v.Eval(4e-9) > 0.01 {
		t.Fatalf("pulse not low at 4n: %g", v.Eval(4e-9))
	}
	if v.Eval(6.2e-9) < 0.99 {
		t.Fatalf("second pulse missing at 6.2n: %g", v.Eval(6.2e-9))
	}
}

func TestParseDeckInverter(t *testing.T) {
	deck, err := ParseDeck(strings.NewReader(`
.tech 90nm
VDD vdd 0 DC 1.2
VIN in 0 DC 0
MN out in 0 NMOS W=180n L=90n
MP out in vdd PMOS W=360n L=90n
`))
	if err != nil {
		t.Fatal(err)
	}
	op, err := deck.Circuit.OperatingPoint(map[string]float64{"vdd": 1.2, "out": 0.6}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if op["out"] < 1.1 {
		t.Fatalf("inverter out with low input = %g", op["out"])
	}
}

func TestParseDeckMOSVtOverride(t *testing.T) {
	deck, err := ParseDeck(strings.NewReader(`
.tech 90nm
M1 d g 0 NMOS W=180n L=90n VT=0.5
`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := deck.Circuit.MOSFETParams("M1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Vt != 0.5 {
		t.Fatalf("Vt override lost: %g", p.Vt)
	}
}

func TestParseDeckIC(t *testing.T) {
	deck, err := ParseDeck(strings.NewReader(`
R1 a 0 1k
C1 a 0 1p
.ic a=0.7
.tran 1p 1n uic
`))
	if err != nil {
		t.Fatal(err)
	}
	if deck.Tran.InitialV["a"] != 0.7 {
		t.Fatalf("ic lost: %v", deck.Tran.InitialV)
	}
}

func TestParseDeckErrors(t *testing.T) {
	cases := []string{
		"R1 a b",                         // too few fields
		"R1 a b 1x2",                     // bad number
		"Q1 a b c",                       // unknown card
		"V1 a 0 NOISE 3",                 // unknown source kind
		"M1 d g s JFET W=1u L=1u",        // unknown device type
		"M1 d g s NMOS W=1u",             // missing L
		"M1 d g s NMOS W=1u L=1u Z=3",    // unknown parameter
		"V1 a 0 PULSE 0 1 0 1n 1n 1n 1n", // PULSE without .tran
		".ic a",                          // malformed ic
	}
	for _, src := range cases {
		if _, err := ParseDeck(strings.NewReader(src)); err == nil {
			t.Errorf("deck %q accepted", src)
		}
	}
}

func TestDeckMatchesProgrammaticCircuit(t *testing.T) {
	// The same RC netlist built both ways must produce identical
	// transients.
	deck, err := ParseDeck(strings.NewReader(`
V1 in 0 PWL(0 0 1n 1)
R1 in out 1k
C1 out 0 1p
.tran 10p 10n uic
`))
	if err != nil {
		t.Fatal(err)
	}
	dres, err := deck.RunTran()
	if err != nil {
		t.Fatal(err)
	}

	c := New()
	w, _ := waveform.ParsePWLSpec("0 0 1n 1")
	c.AddVSource("V1", "in", Ground, w)
	c.AddResistor("R1", "in", "out", 1000)
	c.AddCapacitor("C1", "out", Ground, 1e-12)
	pres, err := c.Transient(TransientSpec{T0: 0, T1: 10e-9, Dt: 10e-12, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dres.Times {
		if math.Abs(dres.V["out"][i]-pres.V["out"][i]) > 1e-12 {
			t.Fatal("deck and programmatic circuits diverge")
		}
	}
}

package circuit

import (
	"math"
	"strings"
	"testing"

	"samurai/internal/device"
	"samurai/internal/waveform"
)

func TestDuplicateElementNameRejected(t *testing.T) {
	c := New()
	if err := c.AddResistor("R1", "a", "b", 100); err != nil {
		t.Fatal(err)
	}
	if err := c.AddResistor("R1", "b", "c", 100); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestInvalidElementValues(t *testing.T) {
	c := New()
	if err := c.AddResistor("R", "a", "b", 0); err == nil {
		t.Fatal("zero resistance accepted")
	}
	if err := c.AddCapacitor("C", "a", "b", -1); err == nil {
		t.Fatal("negative capacitance accepted")
	}
}

func TestNodeInterningAndAccessors(t *testing.T) {
	c := New()
	c.AddResistor("R1", "a", "b", 100)
	c.AddResistor("R2", "b", Ground, 100)
	if got := len(c.Nodes()); got != 2 {
		t.Fatalf("node count = %d", got)
	}
	if idx, ok := c.NodeIndex(Ground); !ok || idx != -1 {
		t.Fatal("ground index wrong")
	}
	if _, ok := c.NodeIndex("zzz"); ok {
		t.Fatal("unknown node found")
	}
}

func TestVSourceBranchCurrent(t *testing.T) {
	// V across R: the source's branch current must equal V/R. Verify
	// indirectly through node voltages and KCL: current into R equals
	// (v_in − 0)/R.
	c := New()
	c.AddDCVSource("V1", "in", Ground, 3)
	c.AddResistor("R1", "in", Ground, 1500)
	op, err := c.OperatingPoint(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op["in"]-3) > 1e-9 {
		t.Fatalf("source voltage not enforced: %g", op["in"])
	}
}

func TestISourceInjection(t *testing.T) {
	// 1 mA pushed into a 1 kΩ load: 1 V across it.
	c := New()
	c.AddISource("I1", Ground, "out", waveform.Constant(1e-3))
	c.AddResistor("RL", "out", Ground, 1000)
	op, err := c.OperatingPoint(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op["out"]-1) > 1e-6 {
		t.Fatalf("out = %g, want 1", op["out"])
	}
}

func TestSetISourceWaveform(t *testing.T) {
	c := New()
	c.AddISource("I1", Ground, "out", waveform.Constant(0))
	c.AddResistor("RL", "out", Ground, 1000)
	if err := c.SetISourceWaveform("I1", waveform.Constant(2e-3)); err != nil {
		t.Fatal(err)
	}
	op, err := c.OperatingPoint(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op["out"]-2) > 1e-6 {
		t.Fatalf("out = %g after waveform swap", op["out"])
	}
	if err := c.SetISourceWaveform("nope", waveform.Constant(0)); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestFloatingNodeReported(t *testing.T) {
	c := New()
	// A capacitor to a floating node in DC has no path: gmin keeps the
	// matrix solvable, so this must converge with the node near 0.
	c.AddDCVSource("V1", "in", Ground, 1)
	c.AddCapacitor("C1", "in", "float", 1e-12)
	op, err := c.OperatingPoint(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op["float"]-1) > 0.2 {
		// With only tiny leak conductances the node follows via the
		// cap's DC leak; either way it must be finite.
		if math.IsNaN(op["float"]) || math.IsInf(op["float"], 0) {
			t.Fatal("floating node voltage is not finite")
		}
	}
}

// Integration order check on a smooth drive: halving dt must shrink
// backward Euler's error ~2× (first order) and trapezoidal's ~4×
// (second order).
func TestIntegrationOrders(t *testing.T) {
	// RC driven by a PWL approximation of a sine (dense breakpoints so
	// the source itself contributes negligible error).
	const (
		rOhm = 1000.0
		cF   = 1e-6
		f0   = 200.0
	)
	tau := rOhm * cF
	w := 2 * math.Pi * f0
	// Steady-state analytic response to sin(wt):
	// v(t) = (sin(wt) − wτ·cos(wt) + wτ·e^(−t/τ)) / (1 + (wτ)²)
	exact := func(tt float64) float64 {
		return (math.Sin(w*tt) - w*tau*math.Cos(w*tt) + w*tau*math.Exp(-tt/tau)) / (1 + w*tau*w*tau)
	}
	run := func(m Method, dt float64) float64 {
		n := 4001
		ts := make([]float64, n)
		vs := make([]float64, n)
		for i := range ts {
			ts[i] = 5e-3 * float64(i) / float64(n-1)
			vs[i] = math.Sin(w * ts[i])
		}
		src, err := waveform.New(ts, vs)
		if err != nil {
			t.Fatal(err)
		}
		c := New()
		c.AddVSource("V1", "in", Ground, src)
		c.AddResistor("R1", "in", "out", rOhm)
		c.AddCapacitor("C1", "out", Ground, cF)
		res, err := c.Transient(TransientSpec{
			T0: 0, T1: 4e-3, Dt: dt, UIC: true,
			Options: Options{Method: m},
		})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := res.Voltage("out")
		worst := 0.0
		for _, tt := range []float64{1e-3, 2e-3, 3e-3} {
			if d := math.Abs(v.Eval(tt) - exact(tt)); d > worst {
				worst = d
			}
		}
		return worst
	}
	beCoarse, beFine := run(BackwardEuler, 4e-5), run(BackwardEuler, 2e-5)
	trCoarse, trFine := run(Trapezoidal, 4e-5), run(Trapezoidal, 2e-5)
	if r := beCoarse / beFine; r < 1.5 || r > 3 {
		t.Fatalf("BE convergence ratio %g, want ≈2", r)
	}
	if r := trCoarse / trFine; r < 3 || r > 6 {
		t.Fatalf("trapezoidal convergence ratio %g, want ≈4", r)
	}
	if trCoarse > beCoarse/4 {
		t.Fatalf("trapezoidal (%g) not clearly better than BE (%g) on smooth drive", trCoarse, beCoarse)
	}
}

func TestChargeConservationRCDecay(t *testing.T) {
	// A charged cap discharging through R: total delivered charge must
	// equal C·V0.
	c := New()
	c.AddResistor("R1", "top", Ground, 1000)
	c.AddCapacitor("C1", "top", Ground, 1e-6)
	res, err := c.Transient(TransientSpec{
		T0: 0, T1: 10e-3, Dt: 5e-6, UIC: true,
		InitialV: map[string]float64{"top": 2},
		Options:  Options{Method: Trapezoidal},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Voltage("top")
	// ∫ v/R dt = C·V0 (all initial charge flows out).
	charge := v.Integral(0, 10e-3) / 1000
	want := 1e-6 * 2.0
	if math.Abs(charge-want) > 0.01*want {
		t.Fatalf("delivered charge %g, want %g", charge, want)
	}
}

func TestKCLResidualAtConvergence(t *testing.T) {
	// After a converged nonlinear DC solve, node currents must balance.
	tech := device.Node("90nm")
	c := New()
	c.AddDCVSource("VDD", "vdd", Ground, tech.Vdd)
	c.AddDCVSource("VIN", "in", Ground, 0.6)
	c.AddResistor("RL", "vdd", "out", 50e3)
	nm := device.NewMOS(tech, device.NMOS, 4*tech.Lmin, tech.Lmin)
	c.AddMOSFET("M1", "out", "in", Ground, nm)
	op, err := c.OperatingPoint(map[string]float64{"vdd": tech.Vdd, "out": tech.Vdd / 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// KCL at "out": resistor current in == device current out.
	iR := (op["vdd"] - op["out"]) / 50e3
	iM := nm.Eval(op["in"], op["out"]).Ids
	if math.Abs(iR-iM) > 1e-6*math.Abs(iM)+1e-9 {
		t.Fatalf("KCL residual at out: %g vs %g", iR, iM)
	}
}

func TestRunnerStepByStepMatchesTransient(t *testing.T) {
	build := func() *Circuit {
		c := New()
		step, _ := waveform.New([]float64{0, 1e-9}, []float64{0, 1})
		c.AddVSource("V1", "in", Ground, step)
		c.AddResistor("R1", "in", "out", 1000)
		c.AddCapacitor("C1", "out", Ground, 1e-9)
		return c
	}
	spec := TransientSpec{T0: 0, T1: 1e-6, Dt: 1e-8, UIC: true}
	full, err := build().Transient(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := build().NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	for !r.Done() {
		if err := r.Step(spec.Dt); err != nil {
			t.Fatal(err)
		}
	}
	stepwise := r.Result()
	if len(full.Times) != len(stepwise.Times) {
		t.Fatalf("lengths differ: %d vs %d", len(full.Times), len(stepwise.Times))
	}
	for i := range full.Times {
		if math.Abs(full.V["out"][i]-stepwise.V["out"][i]) > 1e-12 {
			t.Fatal("stepwise result diverges from Transient")
		}
	}
}

func TestRunnerAccessors(t *testing.T) {
	tech := device.Node("90nm")
	c := New()
	c.AddDCVSource("VDD", "vdd", Ground, tech.Vdd)
	nm := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)
	c.AddMOSFET("M1", "vdd", "vdd", Ground, nm)
	r, err := c.NewRunner(TransientSpec{T0: 0, T1: 1e-9, Dt: 1e-10, UIC: true,
		InitialV: map[string]float64{"vdd": tech.Vdd}})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := r.NodeVoltage("vdd"); err != nil || math.Abs(v-tech.Vdd) > 1e-9 {
		t.Fatalf("NodeVoltage = %g, %v", v, err)
	}
	if _, err := r.NodeVoltage("nope"); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, _, _, err := r.DeviceOp("M1"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := r.DeviceOp("MX"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestMOSFETAccessors(t *testing.T) {
	tech := device.Node("90nm")
	c := New()
	nm := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)
	c.AddMOSFET("M1", "d", "g", "s", nm)
	names := c.MOSFETNames()
	if len(names) != 1 || names[0] != "M1" {
		t.Fatalf("names = %v", names)
	}
	p, err := c.MOSFETParams("M1")
	if err != nil || p.W != nm.W {
		t.Fatal("params lookup broken")
	}
	d, g, s, err := c.MOSFETNodes("M1")
	if err != nil || d != "d" || g != "g" || s != "s" {
		t.Fatal("nodes lookup broken")
	}
	if _, err := c.MOSFETParams("M9"); err == nil {
		t.Fatal("unknown MOSFET accepted")
	}
}

func TestTransientRejectsBadSpec(t *testing.T) {
	c := New()
	c.AddResistor("R", "a", Ground, 1)
	if _, err := c.Transient(TransientSpec{T0: 0, T1: 0, Dt: 1}); err == nil {
		t.Fatal("empty interval accepted")
	}
	if _, err := c.Transient(TransientSpec{T0: 0, T1: 1, Dt: 0}); err == nil {
		t.Fatal("zero dt accepted")
	}
}

func TestDeviceBiasRecording(t *testing.T) {
	tech := device.Node("90nm")
	c := New()
	c.AddDCVSource("VDD", "vdd", Ground, tech.Vdd)
	c.AddDCVSource("VG", "g", Ground, tech.Vdd)
	c.AddResistor("RD", "vdd", "d", 10e3)
	nm := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)
	c.AddMOSFET("M1", "d", "g", Ground, nm)
	res, err := c.Transient(TransientSpec{T0: 0, T1: 1e-9, Dt: 1e-10, UIC: false})
	if err != nil {
		t.Fatal(err)
	}
	vgs, id, err := res.DeviceBias("M1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vgs.Eval(0.5e-9)-tech.Vdd) > 1e-6 {
		t.Fatalf("recorded vgs = %g", vgs.Eval(0.5e-9))
	}
	if id.Eval(0.5e-9) <= 0 {
		t.Fatal("recorded Id must be positive for a conducting NMOS")
	}
	if _, _, err := res.DeviceBias("MX"); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := res.Voltage("zz"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestSourceBranchCurrentRecording(t *testing.T) {
	// Series source→R→ground: branch current must equal V/R at all
	// times, and the supply-energy integral must equal V²/R·T.
	c := New()
	c.AddDCVSource("V1", "in", Ground, 2)
	c.AddResistor("R1", "in", Ground, 1000)
	res, err := c.Transient(TransientSpec{T0: 0, T1: 1e-6, Dt: 1e-8, UIC: false})
	if err != nil {
		t.Fatal(err)
	}
	iw, err := res.SourceCurrent("V1")
	if err != nil {
		t.Fatal(err)
	}
	// The MNA branch current flows +→through-source→−, so a sourcing
	// supply shows a negative branch current of magnitude V/R.
	if got := iw.Eval(0.5e-6); math.Abs(got+2.0/1000) > 1e-9 {
		t.Fatalf("branch current = %g, want %g", got, -2.0/1000)
	}
	energy := -iw.Integral(0, 1e-6) * 2 // ∫ V·I dt with constant V
	want := 2 * 2 / 1000.0 * 1e-6
	if math.Abs(energy-want) > 1e-3*want {
		t.Fatalf("delivered energy %g, want %g", energy, want)
	}
	if _, err := res.SourceCurrent("nope"); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestRunnerSubsteppingRecoversFromHardStep(t *testing.T) {
	// A huge current spike injected into a tiny-capacitance node for
	// exactly one step is a brutal Newton problem at the full step; the
	// runner must fall back to sub-steps rather than fail.
	tech := device.Node("32nm")
	c := New()
	c.AddDCVSource("VDD", "vdd", Ground, tech.Vdd)
	nm := device.NewMOS(tech, device.NMOS, 2*tech.Lmin, tech.Lmin)
	c.AddMOSFET("M1", "out", "vdd", Ground, nm)
	c.AddResistor("RL", "vdd", "out", 20e3)
	c.AddCapacitor("C1", "out", Ground, 0.2e-15)
	spike, _ := waveform.New(
		[]float64{0, 1e-9, 1.0001e-9, 1.2e-9, 1.2001e-9},
		[]float64{0, 0, 5e-3, 5e-3, 0})
	c.AddISource("I1", Ground, "out", spike)
	res, err := c.Transient(TransientSpec{
		T0: 0, T1: 3e-9, Dt: 50e-12, UIC: true,
		InitialV: map[string]float64{"vdd": tech.Vdd},
		Options:  Options{MaxNewton: 40},
	})
	if err != nil {
		t.Fatalf("transient failed despite sub-stepping: %v", err)
	}
	v, _ := res.Voltage("out")
	if math.IsNaN(v.Eval(2e-9)) {
		t.Fatal("solution corrupted")
	}
}

func TestRunnerStepAfterDone(t *testing.T) {
	c := New()
	c.AddResistor("R1", "a", Ground, 1000)
	c.AddDCVSource("V1", "a", Ground, 1)
	r, err := c.NewRunner(TransientSpec{T0: 0, T1: 1e-9, Dt: 1e-9, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(1e-9); err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Fatal("runner should be done")
	}
	if err := r.Step(1e-9); err == nil {
		t.Fatal("stepping past the end must error")
	}
}

func TestOperatingPointNonConvergenceReported(t *testing.T) {
	// Two ideal voltage sources fighting over one node: the MNA matrix
	// is structurally singular, which must surface as an error, not a
	// panic or a bogus answer.
	c := New()
	c.AddDCVSource("V1", "a", Ground, 1)
	c.AddDCVSource("V2", "a", Ground, 2)
	if _, err := c.OperatingPoint(nil, Options{}); err == nil {
		t.Fatal("conflicting ideal sources accepted")
	}
}

func TestPulseGuardRejectsAbsurdTrains(t *testing.T) {
	_, err := ParseDeck(strings.NewReader(
		"V1 a 0 PULSE(0 1 0 1p 1p 1p 4p)\nR1 a 0 1k\n.tran 1p 1\n"))
	if err == nil {
		t.Fatal("10^11-period pulse train accepted")
	}
}

package circuit

import (
	"strings"
	"testing"
)

// FuzzParseDeck checks that arbitrary deck text never panics the parser
// — it must either produce a circuit or a descriptive error. Run with
// `go test -fuzz FuzzParseDeck ./internal/circuit` for a real fuzzing
// session; the seed corpus runs on every ordinary `go test`.
func FuzzParseDeck(f *testing.F) {
	seeds := []string{
		"",
		"* only a comment\n",
		"V1 a 0 DC 1\nR1 a 0 1k\n",
		"V1 a 0 PWL(0 0 1n 1)\n.tran 1p 2n uic\n",
		".tech 32nm\nM1 d g 0 NMOS W=64n L=32n\n",
		"V1 a 0 PULSE(0 1 0 1p 1p 1n 2n)\n.tran 1p 4n\n",
		".ic a=1 b=0.5\n",
		"R1 a b -5\n",
		"M1 d g s PMOS W= L=1u\n",
		"V1 a 0 PWL(0 0 0 1)\n", // non-monotone PWL times
		".tran x y\n",
		strings.Repeat("R1 a b 1k\n", 3), // duplicate names
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		deck, err := ParseDeck(strings.NewReader(src))
		if err != nil {
			return
		}
		// A successfully parsed deck must be internally consistent:
		// running its DC analysis may fail (singular etc.) but must
		// not panic.
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("DC solve panicked on valid-parsed deck %q: %v", src, r)
			}
		}()
		_, _ = deck.Circuit.OperatingPoint(nil, Options{MaxNewton: 10})
	})
}

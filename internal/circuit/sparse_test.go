package circuit

import (
	"math"
	"testing"

	"samurai/internal/device"
	"samurai/internal/waveform"
)

// rcLadder builds an n-stage RC ladder driven by a step — a linear
// circuit big enough to exercise the sparse machinery but with an
// obvious dense reference.
func rcLadder(t *testing.T, n int) *Circuit {
	t.Helper()
	c := New()
	step, err := waveform.New([]float64{0, 1e-9}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddVSource("V1", "n0", Ground, step); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		a := nodeLabel(i)
		b := nodeLabel(i + 1)
		if err := c.AddResistor("R"+b, a, b, 1000); err != nil {
			t.Fatal(err)
		}
		if err := c.AddCapacitor("C"+b, b, Ground, 1e-12); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func nodeLabel(i int) string {
	return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// nonlinearChain builds a chain of resistor-loaded NMOS inverters, so
// the sparse path is exercised with a genuinely nonlinear Newton loop
// including the DC gmin ladder.
func nonlinearChain(t *testing.T, stages int) *Circuit {
	t.Helper()
	tech := device.Node("90nm")
	c := New()
	if err := c.AddDCVSource("VDD", "vdd", Ground, tech.Vdd); err != nil {
		t.Fatal(err)
	}
	step, err := waveform.New([]float64{0, 2e-10}, []float64{0, tech.Vdd})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddVSource("VIN", "s00", Ground, step); err != nil {
		t.Fatal(err)
	}
	nm := device.NewMOS(tech, device.NMOS, 4*tech.Lmin, tech.Lmin)
	for i := 0; i < stages; i++ {
		in := "s" + nodeLabel(i)[1:]
		out := "s" + nodeLabel(i+1)[1:]
		if err := c.AddResistor("RL"+out, "vdd", out, 50e3); err != nil {
			t.Fatal(err)
		}
		if err := c.AddMOSFET("M"+out, out, in, Ground, nm); err != nil {
			t.Fatal(err)
		}
		if err := c.AddCapacitor("CL"+out, out, Ground, 2e-15); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestSparseMatchesDenseOperatingPoint pins the two backends to the
// same DC solution on a nonlinear circuit.
func TestSparseMatchesDenseOperatingPoint(t *testing.T) {
	for _, stages := range []int{3, 9} {
		dense, err := nonlinearChain(t, stages).OperatingPoint(nil, Options{Solver: SolverDense})
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := nonlinearChain(t, stages).OperatingPoint(nil, Options{Solver: SolverSparse})
		if err != nil {
			t.Fatal(err)
		}
		for name, vd := range dense {
			vs, ok := sparse[name]
			if !ok {
				t.Fatalf("stages=%d: node %q missing from sparse solution", stages, name)
			}
			// Both solves run Newton to VTol with their own rounding;
			// agreement must be at tolerance scale, not machine scale.
			if math.Abs(vs-vd) > 2e-6 {
				t.Errorf("stages=%d node %s: sparse %.9g vs dense %.9g", stages, name, vs, vd)
			}
		}
	}
}

// TestSparseMatchesDenseTransient runs the same transient through both
// backends and compares every recorded node sample.
func TestSparseMatchesDenseTransient(t *testing.T) {
	spec := TransientSpec{
		T0: 0, T1: 2e-9, Dt: 1e-11, UIC: true,
		Options: Options{Method: BackwardEuler},
	}
	spec.Options.Solver = SolverDense
	rd, err := rcLadder(t, 20).Transient(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Options.Solver = SolverSparse
	rs, err := rcLadder(t, 20).Transient(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Times) != len(rs.Times) {
		t.Fatalf("sample counts differ: %d vs %d", len(rd.Times), len(rs.Times))
	}
	for name, vd := range rd.V {
		vs := rs.V[name]
		for k := range vd {
			if math.Abs(vs[k]-vd[k]) > 1e-9 {
				t.Fatalf("node %s sample %d: sparse %.12g vs dense %.12g", name, k, vs[k], vd[k])
			}
		}
	}
	// Branch currents (the zero-diagonal MNA rows) must agree too.
	for name, id := range rd.SourceI {
		is := rs.SourceI[name]
		for k := range id {
			if math.Abs(is[k]-id[k]) > 1e-9 {
				t.Fatalf("source %s sample %d: sparse %.12g vs dense %.12g", name, k, is[k], id[k])
			}
		}
	}
}

// TestSolverAutoThreshold checks the automatic backend choice on both
// sides of the crossover.
func TestSolverAutoThreshold(t *testing.T) {
	small := rcLadder(t, 4) // ~10 unknowns
	stSmall := newStampCtx(small, Options{}.Defaults())
	if stSmall.a == nil {
		t.Fatal("small circuit should default to the dense backend")
	}
	big := rcLadder(t, 60) // ~62 unknowns
	stBig := newStampCtx(big, Options{}.Defaults())
	if stBig.a != nil || stBig.slu == nil {
		t.Fatal("array-scale circuit should default to the sparse backend")
	}
}

// TestSparsePatternRecordingStable verifies the scatter replay: after
// the first Newton iteration froze the pattern, hundreds of further
// stamps (DC ladder + transient steps, which exercise both capacitor
// stamp modes) must replay through it without divergence — the factor()
// cursor check panics if they do not.
func TestSparsePatternRecordingStable(t *testing.T) {
	c := nonlinearChain(t, 8)
	spec := TransientSpec{
		T0: 0, T1: 1e-9, Dt: 1e-11,
		Options: Options{Solver: SolverSparse},
	}
	res, err := c.Transient(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) < 100 {
		t.Fatalf("expected ≥100 samples, got %d", len(res.Times))
	}
	// The last inverter output must have switched low after the input
	// step propagated — i.e. the sparse run actually simulated.
	last := res.V["s"+nodeLabel(8)[1:]]
	if len(last) == 0 {
		t.Fatal("missing final stage samples")
	}
}

package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"samurai/internal/device"
	"samurai/internal/waveform"
)

// Deck is a parsed SPICE-style netlist: the circuit plus the analysis
// directives found in the text.
//
// Supported cards (case-insensitive, '*' comments, continuation not
// needed because sources use parentheses):
//
//	.tech 90nm                    — technology for MOSFET defaults
//	Vxxx n+ n- DC <v>             — constant voltage source
//	Vxxx n+ n- PWL(t1 v1 t2 v2 …) — piecewise-linear source
//	Vxxx n+ n- PULSE(v1 v2 td tr tf pw per)
//	Ixxx n+ n- DC <i> | PWL(…)    — current source (n+ → n−)
//	Rxxx a b <ohms>
//	Cxxx a b <farads>
//	Mxxx d g s NMOS|PMOS W=… L=… [VT=…]
//	.ic node=<v> [node=<v> …]
//	.tran <dt> <tstop> [uic]
//	.end
//
// Engineering suffixes (f p n u m k meg g t) are accepted everywhere.
type Deck struct {
	Circuit *Circuit
	Tran    TransientSpec
	HasTran bool
	Tech    device.Technology
}

// ParseDeck parses netlist text. Sources with PULSE specs need the
// .tran card to appear anywhere in the deck (the pulse train is
// elaborated over the analysis window).
func ParseDeck(r io.Reader) (*Deck, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var lines []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	deck := &Deck{Circuit: New(), Tech: device.Node("90nm")}
	deck.Tran.InitialV = map[string]float64{}

	// Pass 1: directives that later cards depend on (.tech, .tran).
	for _, line := range lines {
		f := fields(line)
		if len(f) == 0 {
			// Lines made solely of punctuation (e.g. a stray "(")
			// tokenise to nothing; treat them like blank lines.
			continue
		}
		switch strings.ToLower(f[0]) {
		case ".tech":
			if len(f) != 2 {
				return nil, fmt.Errorf("circuit: .tech wants one argument: %q", line)
			}
			tech, ok := device.NodeOK(f[1])
			if !ok {
				return nil, fmt.Errorf("circuit: unknown technology node %q", f[1])
			}
			deck.Tech = tech
		case ".tran":
			if len(f) < 3 {
				return nil, fmt.Errorf("circuit: .tran wants dt and tstop: %q", line)
			}
			dt, err := waveform.ParseEng(f[1])
			if err != nil {
				return nil, err
			}
			stop, err := waveform.ParseEng(f[2])
			if err != nil {
				return nil, err
			}
			deck.Tran.Dt = dt
			deck.Tran.T1 = stop
			deck.HasTran = true
			if len(f) > 3 && strings.EqualFold(f[3], "uic") {
				deck.Tran.UIC = true
			}
		}
	}

	// Pass 2: elements and initial conditions.
	for lineNo, line := range lines {
		f := fields(line)
		if len(f) == 0 {
			continue
		}
		card := strings.ToUpper(f[0])
		var err error
		switch {
		case strings.HasPrefix(card, "R"):
			err = deck.parseR(f)
		case strings.HasPrefix(card, "C"):
			err = deck.parseC(f)
		case strings.HasPrefix(card, "V"):
			err = deck.parseSource(f, true)
		case strings.HasPrefix(card, "I"):
			err = deck.parseSource(f, false)
		case strings.HasPrefix(card, "M"):
			err = deck.parseM(f)
		case card == ".IC":
			err = deck.parseIC(f)
		case card == ".TECH", card == ".TRAN", card == ".END":
			// handled in pass 1 / terminator
		default:
			err = fmt.Errorf("unknown card %q", f[0])
		}
		if err != nil {
			return nil, fmt.Errorf("circuit: line %d (%q): %w", lineNo+1, line, err)
		}
	}
	return deck, nil
}

// fields splits a card, keeping parenthesised groups (PWL/PULSE args)
// as part of their keyword token stream: "PWL(0 0 1n 1)" becomes
// ["PWL", "0", "0", "1n", "1"].
func fields(line string) []string {
	replaced := strings.NewReplacer("(", " ", ")", " ", ",", " ", "=", "=").Replace(line)
	return strings.Fields(replaced)
}

func (d *Deck) parseR(f []string) error {
	if len(f) != 4 {
		return fmt.Errorf("resistor wants 'Rname a b value'")
	}
	v, err := waveform.ParseEng(f[3])
	if err != nil {
		return err
	}
	return d.Circuit.AddResistor(f[0], f[1], f[2], v)
}

func (d *Deck) parseC(f []string) error {
	if len(f) != 4 {
		return fmt.Errorf("capacitor wants 'Cname a b value'")
	}
	v, err := waveform.ParseEng(f[3])
	if err != nil {
		return err
	}
	return d.Circuit.AddCapacitor(f[0], f[1], f[2], v)
}

func (d *Deck) parseSource(f []string, isV bool) error {
	if len(f) < 5 {
		return fmt.Errorf("source wants 'name n+ n- DC|PWL|PULSE args'")
	}
	name, np, nn := f[0], f[1], f[2]
	var w *waveform.PWL
	switch strings.ToUpper(f[3]) {
	case "DC":
		v, err := waveform.ParseEng(f[4])
		if err != nil {
			return err
		}
		w = waveform.Constant(v)
	case "PWL":
		var err error
		w, err = waveform.ParsePWLSpec(strings.Join(f[4:], " "))
		if err != nil {
			return err
		}
	case "PULSE":
		if len(f) != 11 {
			return fmt.Errorf("PULSE wants 7 arguments (v1 v2 td tr tf pw per)")
		}
		if !d.HasTran {
			return fmt.Errorf("PULSE sources need a .tran card to define the pulse-train window")
		}
		args := make([]float64, 7)
		for i := range args {
			v, err := waveform.ParseEng(f[4+i])
			if err != nil {
				return err
			}
			args[i] = v
		}
		var err error
		w, err = pulseWave(args, d.Tran.T1)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown source kind %q", f[3])
	}
	if isV {
		return d.Circuit.AddVSource(name, np, nn, w)
	}
	return d.Circuit.AddISource(name, np, nn, w)
}

// pulseWave elaborates a SPICE PULSE(v1 v2 td tr tf pw per) over
// [0, tstop].
func pulseWave(a []float64, tstop float64) (*waveform.PWL, error) {
	v1, v2, td, tr, tf, pw, per := a[0], a[1], a[2], a[3], a[4], a[5], a[6]
	if tr <= 0 || tf <= 0 || pw <= 0 || per <= 0 {
		return nil, fmt.Errorf("PULSE timing values must be positive")
	}
	if tr+pw+tf > per {
		return nil, fmt.Errorf("PULSE period %g shorter than tr+pw+tf", per)
	}
	if n := (tstop + per - td) / per; !(n > 0) || n > 2e5 {
		return nil, fmt.Errorf("PULSE train needs %g periods over the .tran window; limit is 2e5", n)
	}
	ts := []float64{0}
	vs := []float64{v1}
	add := func(t, v float64) {
		if t > ts[len(ts)-1] {
			ts = append(ts, t)
			vs = append(vs, v)
		}
	}
	for start := td; start < tstop+per; start += per {
		add(start, v1)
		add(start+tr, v2)
		add(start+tr+pw, v2)
		add(start+tr+pw+tf, v1)
	}
	return waveform.New(ts, vs)
}

func (d *Deck) parseM(f []string) error {
	if len(f) < 5 {
		return fmt.Errorf("mosfet wants 'Mname d g s NMOS|PMOS W=.. L=..'")
	}
	typ := device.NMOS
	switch strings.ToUpper(f[4]) {
	case "NMOS":
	case "PMOS":
		typ = device.PMOS
	default:
		return fmt.Errorf("unknown device type %q", f[4])
	}
	var w, l, vt float64
	haveVt := false
	for _, kv := range f[5:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad parameter %q", kv)
		}
		v, err := waveform.ParseEng(parts[1])
		if err != nil {
			return err
		}
		switch strings.ToUpper(parts[0]) {
		case "W":
			w = v
		case "L":
			l = v
		case "VT":
			vt, haveVt = v, true
		default:
			return fmt.Errorf("unknown MOSFET parameter %q", parts[0])
		}
	}
	if w <= 0 || l <= 0 {
		return fmt.Errorf("MOSFET needs positive W= and L=")
	}
	params := device.NewMOS(d.Tech, typ, w, l)
	if haveVt {
		params.Vt = vt
	}
	return d.Circuit.AddMOSFET(f[0], f[1], f[2], f[3], params)
}

func (d *Deck) parseIC(f []string) error {
	for _, kv := range f[1:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad .ic entry %q", kv)
		}
		v, err := waveform.ParseEng(parts[1])
		if err != nil {
			return err
		}
		d.Tran.InitialV[parts[0]] = v
	}
	return nil
}

// RunTran executes the deck's transient analysis.
func (d *Deck) RunTran() (*TransientResult, error) {
	if !d.HasTran {
		return nil, fmt.Errorf("circuit: deck has no .tran card")
	}
	return d.Circuit.Transient(d.Tran)
}

package circuit

import (
	"samurai/internal/device"
	"samurai/internal/num"
	"samurai/internal/waveform"
)

// Method selects the implicit integration scheme for transient runs.
type Method int

const (
	// BackwardEuler is L-stable and the robust default for the stiff,
	// strongly nonlinear SRAM write transients.
	BackwardEuler Method = iota
	// Trapezoidal is A-stable and second-order accurate; preferred for
	// the validation circuits where waveform fidelity matters.
	Trapezoidal
)

// String names the method for logs and tables.
func (m Method) String() string {
	if m == Trapezoidal {
		return "trapezoidal"
	}
	return "backward-euler"
}

// stampCtx carries everything an element needs to contribute to one
// Newton iteration of one (DC or transient) solve.
type stampCtx struct {
	a      *num.Matrix // MNA matrix, Size×Size
	b      []float64   // RHS
	x      []float64   // current Newton iterate
	nNodes int         // node-voltage unknowns; branch k is nNodes+k
	time   float64     // evaluation time (end of step for implicit)
	dt     float64     // step size; 0 means DC
	method Method
	gmin   float64 // conductance to ground on every node
	// Persistent per-solve scratch: the LU workspace and the candidate
	// iterate are owned by the context so Newton iterations never
	// allocate (see DESIGN.md, hot-path memory discipline).
	lu   *num.LU
	xNew []float64
}

// newStampCtx builds a solve context with all workspaces preallocated
// for the circuit's current size.
func newStampCtx(c *Circuit, opt Options) *stampCtx {
	n := c.Size()
	return &stampCtx{
		a:      num.NewMatrix(n, n),
		b:      make([]float64, n),
		x:      make([]float64, n),
		nNodes: len(c.nodeNames),
		method: opt.Method,
		gmin:   opt.Gmin,
		lu:     num.NewLU(n),
		xNew:   make([]float64, n),
	}
}

// element is the internal per-device interface. stamp adds the
// element's linearised contribution; advance commits per-element state
// after an accepted timestep.
type element interface {
	name() string
	stamp(st *stampCtx)
	advance(st *stampCtx)
}

// --- resistor -------------------------------------------------------

type resistorElem struct {
	id   string
	a, b int
	g    float64
}

func (r *resistorElem) name() string { return r.id }

func (r *resistorElem) stamp(st *stampCtx) {
	stampConductance(st, r.a, r.b, r.g)
}

func (r *resistorElem) advance(*stampCtx) {}

func stampConductance(st *stampCtx, a, b int, g float64) {
	if a >= 0 {
		st.a.Add(a, a, g)
	}
	if b >= 0 {
		st.a.Add(b, b, g)
	}
	if a >= 0 && b >= 0 {
		st.a.Add(a, b, -g)
		st.a.Add(b, a, -g)
	}
}

// stampCurrent injects current i flowing out of node a into node b
// (i.e. adds +i to b's KCL inflow and −i to a's).
func stampCurrent(st *stampCtx, a, b int, i float64) {
	if a >= 0 {
		st.b[a] -= i
	}
	if b >= 0 {
		st.b[b] += i
	}
}

// --- capacitor ------------------------------------------------------

type capacitorElem struct {
	id    string
	a, b  int
	c     float64
	vPrev float64 // branch voltage at the last accepted step
	iPrev float64 // branch current at the last accepted step (TRAP)
	init  bool
}

func (e *capacitorElem) name() string { return e.id }

func (e *capacitorElem) stamp(st *stampCtx) {
	if st.dt == 0 {
		// DC: open circuit. A tiny conductance keeps otherwise
		// cap-only nodes non-singular.
		stampConductance(st, e.a, e.b, 1e-12)
		return
	}
	var geq, ieq float64
	switch st.method {
	case Trapezoidal:
		geq = 2 * e.c / st.dt
		ieq = geq*e.vPrev + e.iPrev
	default: // backward Euler
		geq = e.c / st.dt
		ieq = geq * e.vPrev
	}
	// Companion model: i = geq·v − ieq, i.e. a conductance in
	// parallel with a history current source pushing ieq from b to a.
	stampConductance(st, e.a, e.b, geq)
	stampCurrent(st, e.b, e.a, ieq)
}

func (e *capacitorElem) advance(st *stampCtx) {
	v := voltage(st.x, e.a) - voltage(st.x, e.b)
	if st.dt == 0 {
		e.vPrev = v
		e.iPrev = 0
		e.init = true
		return
	}
	switch st.method {
	case Trapezoidal:
		geq := 2 * e.c / st.dt
		i := geq*(v-e.vPrev) - e.iPrev
		e.iPrev = i
	default:
		// iPrev unused by BE; keep it for method switches mid-run.
		e.iPrev = e.c / st.dt * (v - e.vPrev)
	}
	e.vPrev = v
	e.init = true
}

// --- voltage source -------------------------------------------------

type vsourceElem struct {
	id     string
	p, n   int
	w      *waveform.PWL
	cur    waveform.Cursor // monotone-sweep accelerator over w
	branch int
}

func (e *vsourceElem) name() string { return e.id }

func (e *vsourceElem) stamp(st *stampCtx) {
	br := st.nNodes + e.branch
	if e.p >= 0 {
		st.a.Add(e.p, br, 1)
		st.a.Add(br, e.p, 1)
	}
	if e.n >= 0 {
		st.a.Add(e.n, br, -1)
		st.a.Add(br, e.n, -1)
	}
	st.b[br] += e.cur.Eval(st.time)
}

func (e *vsourceElem) advance(*stampCtx) {}

// --- current source -------------------------------------------------

type isourceElem struct {
	id   string
	p, n int
	w    *waveform.PWL
	cur  waveform.Cursor // monotone-sweep accelerator over w
}

func (e *isourceElem) name() string { return e.id }

func (e *isourceElem) stamp(st *stampCtx) {
	stampCurrent(st, e.p, e.n, e.cur.Eval(st.time))
}

func (e *isourceElem) advance(*stampCtx) {}

// --- MOSFET ---------------------------------------------------------

type mosfetElem struct {
	id      string
	d, g, s int
	p       device.MOSParams
}

func (e *mosfetElem) name() string { return e.id }

func (e *mosfetElem) stamp(st *stampCtx) {
	vd := voltage(st.x, e.d)
	vg := voltage(st.x, e.g)
	vs := voltage(st.x, e.s)
	op := e.p.Eval(vg-vs, vd-vs)
	// Linearised channel current entering the drain:
	// i_d ≈ Ids + gm·(Δvgs) + gds·(Δvds)
	// Stamp the Jacobian and the history current
	// ieq = Ids − gm·vgs0 − gds·vds0.
	ieq := op.Ids - op.Gm*(vg-vs) - op.Gds*(vd-vs)
	if e.d >= 0 {
		st.a.Add(e.d, e.d, op.Gds)
		if e.g >= 0 {
			st.a.Add(e.d, e.g, op.Gm)
		}
		if e.s >= 0 {
			st.a.Add(e.d, e.s, -(op.Gm + op.Gds))
		}
		st.b[e.d] -= ieq
	}
	if e.s >= 0 {
		st.a.Add(e.s, e.s, op.Gm+op.Gds)
		if e.g >= 0 {
			st.a.Add(e.s, e.g, -op.Gm)
		}
		if e.d >= 0 {
			st.a.Add(e.s, e.d, -op.Gds)
		}
		st.b[e.s] += ieq
	}
}

func (e *mosfetElem) advance(*stampCtx) {}

// opAt evaluates the device operating point from a solution vector.
func (e *mosfetElem) opAt(x []float64) device.OpPoint {
	vd := voltage(x, e.d)
	vg := voltage(x, e.g)
	vs := voltage(x, e.s)
	return e.p.Eval(vg-vs, vd-vs)
}

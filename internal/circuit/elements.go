package circuit

import (
	"samurai/internal/device"
	"samurai/internal/num"
	"samurai/internal/waveform"
)

// Method selects the implicit integration scheme for transient runs.
type Method int

const (
	// BackwardEuler is L-stable and the robust default for the stiff,
	// strongly nonlinear SRAM write transients.
	BackwardEuler Method = iota
	// Trapezoidal is A-stable and second-order accurate; preferred for
	// the validation circuits where waveform fidelity matters.
	Trapezoidal
)

// String names the method for logs and tables.
func (m Method) String() string {
	if m == Trapezoidal {
		return "trapezoidal"
	}
	return "backward-euler"
}

// stampCtx carries everything an element needs to contribute to one
// Newton iteration of one (DC or transient) solve. It owns either a
// dense or a sparse linear-algebra backend; elements stamp through
// addA/addB and never see which one is active.
type stampCtx struct {
	// Dense backend (nil when sparse is active).
	a  *num.Matrix // MNA matrix, Size×Size
	lu *num.LU
	// Sparse backend (nil when dense is active). The first stamping
	// pass records the coordinate sequence; finishRecording freezes it
	// into a CSR pattern plus a scatter list, after which addA is a
	// single indexed accumulate. The sequence is identical for every
	// iteration and timestep — element order is fixed and each
	// element's A-coordinates depend only on circuit topology (the DC
	// and transient capacitor stamps hit the same positions; only the
	// dense RHS differs) — so one recording serves the whole run.
	sp        *num.Sparse
	slu       *num.SparseLU
	recording bool
	coords    [][2]int32 // recorded (i,j) op sequence (recording only)
	vals      []float64  // values stamped while recording
	scatter   []int32    // op index -> sp.Val position
	cursor    int

	b      []float64 // RHS
	x      []float64 // current Newton iterate
	nNodes int       // node-voltage unknowns; branch k is nNodes+k
	time   float64   // evaluation time (end of step for implicit)
	dt     float64   // step size; 0 means DC
	method Method
	gmin   float64 // conductance to ground on every node
	// Persistent per-solve scratch: the factorisation workspace, the
	// candidate iterate and the residual column are owned by the
	// context so Newton iterations never allocate (see DESIGN.md,
	// hot-path memory discipline).
	xNew  []float64
	resid []float64
}

// newStampCtx builds a solve context with all workspaces preallocated
// for the circuit's current size, picking the linear-algebra backend
// per opt.Solver.
func newStampCtx(c *Circuit, opt Options) *stampCtx {
	n := c.Size()
	st := &stampCtx{
		b:      make([]float64, n),
		x:      make([]float64, n),
		nNodes: len(c.nodeNames),
		method: opt.Method,
		gmin:   opt.Gmin,
		xNew:   make([]float64, n),
		resid:  make([]float64, n),
	}
	if opt.useSparse(n) {
		st.slu = num.NewSparseLU()
		st.recording = true
	} else {
		st.a = num.NewMatrix(n, n)
		st.lu = num.NewLU(n)
	}
	return st
}

// addA accumulates v into MNA matrix position (i, j).
func (st *stampCtx) addA(i, j int, v float64) {
	if st.a != nil {
		st.a.Add(i, j, v)
		return
	}
	if st.recording {
		st.coords = append(st.coords, [2]int32{int32(i), int32(j)})
		st.vals = append(st.vals, v)
		return
	}
	st.sp.Val[st.scatter[st.cursor]] += v
	st.cursor++
}

// addB accumulates v into RHS position i.
func (st *stampCtx) addB(i int, v float64) {
	st.b[i] += v
}

// beginStamp resets the assembly state for one Newton iteration.
//
//lint:hot
func (st *stampCtx) beginStamp() {
	if st.a != nil {
		st.a.Zero()
	} else if st.sp != nil {
		st.sp.Zero()
	}
	st.cursor = 0
	for i := range st.b {
		st.b[i] = 0
	}
}

// factor factorises the assembled matrix. On the sparse path the first
// call freezes the recorded stamp sequence into the CSR pattern and
// the scatter list; later calls verify the sequence length so a
// diverging stamp order (a topology bug) fails loudly instead of
// silently scattering into the wrong entries.
func (st *stampCtx) factor() error {
	if st.a != nil {
		return st.lu.FactorInto(st.a)
	}
	if st.recording {
		st.finishRecording()
	} else if st.cursor != len(st.scatter) {
		panic("circuit: sparse stamp sequence diverged from recorded pattern")
	}
	return st.slu.FactorInto(st.sp)
}

// finishRecording builds the frozen CSR pattern from the recorded
// coordinate sequence, replays the recorded values into it, and drops
// the recording buffers.
func (st *stampCtx) finishRecording() {
	bld := num.NewSparseBuilder(len(st.b))
	for _, c := range st.coords {
		bld.Entry(int(c[0]), int(c[1]))
	}
	st.sp = bld.Build()
	st.scatter = make([]int32, len(st.coords))
	for k, c := range st.coords {
		st.scatter[k] = int32(st.sp.Index(int(c[0]), int(c[1])))
	}
	for k, v := range st.vals {
		st.sp.Val[st.scatter[k]] += v
	}
	st.cursor = len(st.scatter)
	st.coords, st.vals = nil, nil
	st.recording = false
}

// solveInPlace overwrites x (initially the RHS) with the solution.
//
//lint:hot
func (st *stampCtx) solveInPlace(x []float64) {
	if st.a != nil {
		st.lu.SolveInPlace(x)
		return
	}
	st.slu.SolveInPlace(x)
}

// residualOK verifies the accepted Newton step actually solves the
// linear system it was computed from: ‖A·x − b‖∞ ≤ tol·max(1, ‖A‖·‖x‖).
// The scaling makes this a backward-stability guard: a healthy
// factorisation leaves rounding-sized residuals many orders below the
// bound even when the matrix carries huge companion conductances (a
// drift-clamped femto-step puts C/dt ~ 1e9 in A), so it never perturbs
// a converged solve — while a silently wrong step from an
// ill-conditioned factorisation has residual ~‖A‖·‖x‖ itself and is
// rejected.
//
//lint:hot
func (st *stampCtx) residualOK(tol float64) bool {
	var maxA float64
	if st.a != nil {
		st.a.MulVecInto(st.resid, st.xNew)
		maxA = st.a.MaxAbs()
	} else {
		st.sp.MulVecInto(st.resid, st.xNew)
		maxA = st.sp.MaxAbs()
	}
	num.SubInto(st.resid, st.resid, st.b)
	scale := maxA * num.VecNormInf(st.xNew)
	if scale < 1 {
		scale = 1
	}
	return num.VecNormInf(st.resid) <= tol*scale
}

// element is the internal per-device interface. stamp adds the
// element's linearised contribution; advance commits per-element state
// after an accepted timestep.
type element interface {
	name() string
	stamp(st *stampCtx)
	advance(st *stampCtx)
}

// --- resistor -------------------------------------------------------

type resistorElem struct {
	id   string
	a, b int
	g    float64
}

func (r *resistorElem) name() string { return r.id }

func (r *resistorElem) stamp(st *stampCtx) {
	stampConductance(st, r.a, r.b, r.g)
}

func (r *resistorElem) advance(*stampCtx) {}

func stampConductance(st *stampCtx, a, b int, g float64) {
	if a >= 0 {
		st.addA(a, a, g)
	}
	if b >= 0 {
		st.addA(b, b, g)
	}
	if a >= 0 && b >= 0 {
		st.addA(a, b, -g)
		st.addA(b, a, -g)
	}
}

// stampCurrent injects current i flowing out of node a into node b
// (i.e. adds +i to b's KCL inflow and −i to a's).
func stampCurrent(st *stampCtx, a, b int, i float64) {
	if a >= 0 {
		st.addB(a, -i)
	}
	if b >= 0 {
		st.addB(b, i)
	}
}

// --- capacitor ------------------------------------------------------

type capacitorElem struct {
	id    string
	a, b  int
	c     float64
	vPrev float64 // branch voltage at the last accepted step
	iPrev float64 // branch current at the last accepted step (TRAP)
	init  bool
}

func (e *capacitorElem) name() string { return e.id }

func (e *capacitorElem) stamp(st *stampCtx) {
	if st.dt == 0 {
		// DC: open circuit. A tiny conductance keeps otherwise
		// cap-only nodes non-singular.
		stampConductance(st, e.a, e.b, 1e-12)
		return
	}
	var geq, ieq float64
	switch st.method {
	case Trapezoidal:
		geq = 2 * e.c / st.dt
		ieq = geq*e.vPrev + e.iPrev
	default: // backward Euler
		geq = e.c / st.dt
		ieq = geq * e.vPrev
	}
	// Companion model: i = geq·v − ieq, i.e. a conductance in
	// parallel with a history current source pushing ieq from b to a.
	stampConductance(st, e.a, e.b, geq)
	stampCurrent(st, e.b, e.a, ieq)
}

func (e *capacitorElem) advance(st *stampCtx) {
	v := voltage(st.x, e.a) - voltage(st.x, e.b)
	if st.dt == 0 {
		e.vPrev = v
		e.iPrev = 0
		e.init = true
		return
	}
	switch st.method {
	case Trapezoidal:
		geq := 2 * e.c / st.dt
		i := geq*(v-e.vPrev) - e.iPrev
		e.iPrev = i
	default:
		// iPrev unused by BE; keep it for method switches mid-run.
		e.iPrev = e.c / st.dt * (v - e.vPrev)
	}
	e.vPrev = v
	e.init = true
}

// --- voltage source -------------------------------------------------

type vsourceElem struct {
	id     string
	p, n   int
	w      *waveform.PWL
	cur    waveform.Cursor // monotone-sweep accelerator over w
	branch int
}

func (e *vsourceElem) name() string { return e.id }

func (e *vsourceElem) stamp(st *stampCtx) {
	br := st.nNodes + e.branch
	if e.p >= 0 {
		st.addA(e.p, br, 1)
		st.addA(br, e.p, 1)
	}
	if e.n >= 0 {
		st.addA(e.n, br, -1)
		st.addA(br, e.n, -1)
	}
	st.addB(br, e.cur.Eval(st.time))
}

func (e *vsourceElem) advance(*stampCtx) {}

// --- current source -------------------------------------------------

type isourceElem struct {
	id   string
	p, n int
	w    *waveform.PWL
	cur  waveform.Cursor // monotone-sweep accelerator over w
}

func (e *isourceElem) name() string { return e.id }

func (e *isourceElem) stamp(st *stampCtx) {
	stampCurrent(st, e.p, e.n, e.cur.Eval(st.time))
}

func (e *isourceElem) advance(*stampCtx) {}

// --- MOSFET ---------------------------------------------------------

type mosfetElem struct {
	id      string
	d, g, s int
	p       device.MOSParams
}

func (e *mosfetElem) name() string { return e.id }

func (e *mosfetElem) stamp(st *stampCtx) {
	vd := voltage(st.x, e.d)
	vg := voltage(st.x, e.g)
	vs := voltage(st.x, e.s)
	op := e.p.Eval(vg-vs, vd-vs)
	// Linearised channel current entering the drain:
	// i_d ≈ Ids + gm·(Δvgs) + gds·(Δvds)
	// Stamp the Jacobian and the history current
	// ieq = Ids − gm·vgs0 − gds·vds0.
	ieq := op.Ids - op.Gm*(vg-vs) - op.Gds*(vd-vs)
	if e.d >= 0 {
		st.addA(e.d, e.d, op.Gds)
		if e.g >= 0 {
			st.addA(e.d, e.g, op.Gm)
		}
		if e.s >= 0 {
			st.addA(e.d, e.s, -(op.Gm + op.Gds))
		}
		st.addB(e.d, -ieq)
	}
	if e.s >= 0 {
		st.addA(e.s, e.s, op.Gm+op.Gds)
		if e.g >= 0 {
			st.addA(e.s, e.g, -op.Gm)
		}
		if e.d >= 0 {
			st.addA(e.s, e.d, -op.Gds)
		}
		st.addB(e.s, ieq)
	}
}

func (e *mosfetElem) advance(*stampCtx) {}

// opAt evaluates the device operating point from a solution vector.
func (e *mosfetElem) opAt(x []float64) device.OpPoint {
	vd := voltage(x, e.d)
	vg := voltage(x, e.g)
	vs := voltage(x, e.s)
	return e.p.Eval(vg-vs, vd-vs)
}

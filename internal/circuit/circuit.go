// Package circuit is a compact SPICE-class circuit simulator: modified
// nodal analysis (MNA) with Newton–Raphson linearisation, gmin-aided DC
// operating point and implicit (backward-Euler or trapezoidal)
// transient integration.
//
// It is the substrate standing in for SpiceOPUS/BSIM-4 in the SAMURAI
// methodology (see DESIGN.md): the circuits involved — 6T SRAM cells
// with drivers — have ~15 nodes, so a dense LU factorisation per Newton
// iteration is exact and fast.
//
// Supported elements: resistors, capacitors, independent voltage and
// current sources (constant or PWL), and 3-terminal level-1 MOSFETs
// (device.MOSParams). RTN is injected as PWL current sources between
// drain and source, exactly as in Fig 4 of the paper.
package circuit

import (
	"fmt"
	"sort"

	"samurai/internal/device"
	"samurai/internal/waveform"
)

// Ground is the reference node name.
const Ground = "0"

// Circuit is a netlist under construction plus the index assignment
// used by the MNA formulation. Node 0 (ground) is not part of the
// unknown vector; voltage-source branch currents are appended after the
// node voltages.
type Circuit struct {
	nodeIndex map[string]int
	nodeNames []string
	elems     []element
	elemNames map[string]bool
	vsrcCount int
	mosfets   []*mosfetElem
	isources  map[string]*isourceElem
	vsources  map[string]*vsourceElem
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{
		nodeIndex: map[string]int{Ground: -1},
		elemNames: map[string]bool{},
		isources:  map[string]*isourceElem{},
		vsources:  map[string]*vsourceElem{},
	}
}

// node interns a node name, returning its unknown index (-1 = ground).
func (c *Circuit) node(name string) int {
	if idx, ok := c.nodeIndex[name]; ok {
		return idx
	}
	idx := len(c.nodeNames)
	c.nodeIndex[name] = idx
	c.nodeNames = append(c.nodeNames, name)
	return idx
}

// Nodes returns the non-ground node names in index order.
func (c *Circuit) Nodes() []string {
	return append([]string(nil), c.nodeNames...)
}

// NodeIndex returns the unknown index of a node name (-1 for ground)
// and whether the node exists.
func (c *Circuit) NodeIndex(name string) (int, bool) {
	idx, ok := c.nodeIndex[name]
	return idx, ok
}

// Size returns the dimension of the MNA system.
func (c *Circuit) Size() int { return len(c.nodeNames) + c.vsrcCount }

func (c *Circuit) register(name string) error {
	if c.elemNames[name] {
		return fmt.Errorf("circuit: duplicate element name %q", name)
	}
	c.elemNames[name] = true
	return nil
}

// AddResistor adds a two-terminal linear resistor.
func (c *Circuit) AddResistor(name, n1, n2 string, ohms float64) error {
	if ohms <= 0 {
		return fmt.Errorf("circuit: resistor %q has non-positive value %g", name, ohms)
	}
	if err := c.register(name); err != nil {
		return err
	}
	c.elems = append(c.elems, &resistorElem{id: name, a: c.node(n1), b: c.node(n2), g: 1 / ohms})
	return nil
}

// AddCapacitor adds a two-terminal linear capacitor.
func (c *Circuit) AddCapacitor(name, n1, n2 string, farads float64) error {
	if farads <= 0 {
		return fmt.Errorf("circuit: capacitor %q has non-positive value %g", name, farads)
	}
	if err := c.register(name); err != nil {
		return err
	}
	c.elems = append(c.elems, &capacitorElem{id: name, a: c.node(n1), b: c.node(n2), c: farads})
	return nil
}

// AddVSource adds an independent voltage source; the branch forces
// V(np) − V(nn) = w(t). Its branch current (flowing np→nn inside the
// source) becomes an extra MNA unknown.
func (c *Circuit) AddVSource(name, np, nn string, w *waveform.PWL) error {
	if err := c.register(name); err != nil {
		return err
	}
	e := &vsourceElem{id: name, p: c.node(np), n: c.node(nn), w: w, cur: w.Cursor(), branch: c.vsrcCount}
	c.vsrcCount++
	c.elems = append(c.elems, e)
	c.vsources[name] = e
	return nil
}

// AddDCVSource adds a constant voltage source.
func (c *Circuit) AddDCVSource(name, np, nn string, volts float64) error {
	return c.AddVSource(name, np, nn, waveform.Constant(volts))
}

// AddISource adds an independent current source pushing conventional
// current w(t) from node np, through the source, into node nn (i.e. it
// extracts w(t) from np and injects it at nn).
func (c *Circuit) AddISource(name, np, nn string, w *waveform.PWL) error {
	if err := c.register(name); err != nil {
		return err
	}
	e := &isourceElem{id: name, p: c.node(np), n: c.node(nn), w: w, cur: w.Cursor()}
	c.elems = append(c.elems, e)
	c.isources[name] = e
	return nil
}

// SetISourceWaveform replaces the waveform of an existing current
// source — how the methodology swaps RTN traces in and out between
// passes without rebuilding the netlist.
func (c *Circuit) SetISourceWaveform(name string, w *waveform.PWL) error {
	e, ok := c.isources[name]
	if !ok {
		return fmt.Errorf("circuit: no current source named %q", name)
	}
	e.w = w
	e.cur = w.Cursor()
	return nil
}

// SetVSourceWaveform replaces the waveform of an existing voltage
// source — used by DC sweep drivers (e.g. the SNM butterfly tracer) to
// step a bias without rebuilding the netlist.
func (c *Circuit) SetVSourceWaveform(name string, w *waveform.PWL) error {
	e, ok := c.vsources[name]
	if !ok {
		return fmt.Errorf("circuit: no voltage source named %q", name)
	}
	e.w = w
	e.cur = w.Cursor()
	return nil
}

// AddMOSFET adds a 3-terminal MOSFET (source tied to bulk) with the
// given drain, gate and source nodes.
func (c *Circuit) AddMOSFET(name, d, g, s string, p device.MOSParams) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("circuit: mosfet %q: %w", name, err)
	}
	if err := c.register(name); err != nil {
		return err
	}
	e := &mosfetElem{id: name, d: c.node(d), g: c.node(g), s: c.node(s), p: p}
	c.elems = append(c.elems, e)
	c.mosfets = append(c.mosfets, e)
	return nil
}

// MOSFETNames returns the registered MOSFET element names, sorted.
func (c *Circuit) MOSFETNames() []string {
	names := make([]string, len(c.mosfets))
	for i, m := range c.mosfets {
		names[i] = m.id
	}
	sort.Strings(names)
	return names
}

// MOSFETParams returns the parameter set of a named MOSFET.
func (c *Circuit) MOSFETParams(name string) (device.MOSParams, error) {
	for _, m := range c.mosfets {
		if m.id == name {
			return m.p, nil
		}
	}
	return device.MOSParams{}, fmt.Errorf("circuit: no MOSFET named %q", name)
}

// MOSFETNodes returns the (drain, gate, source) node names of a MOSFET.
func (c *Circuit) MOSFETNodes(name string) (d, g, s string, err error) {
	for _, m := range c.mosfets {
		if m.id == name {
			return c.nodeName(m.d), c.nodeName(m.g), c.nodeName(m.s), nil
		}
	}
	return "", "", "", fmt.Errorf("circuit: no MOSFET named %q", name)
}

func (c *Circuit) nodeName(idx int) string {
	if idx < 0 {
		return Ground
	}
	return c.nodeNames[idx]
}

// voltage reads node voltage idx from solution vector x.
func voltage(x []float64, idx int) float64 {
	if idx < 0 {
		return 0
	}
	return x[idx]
}

package circuit

import (
	"errors"
	"fmt"
	"math"

	"samurai/internal/num"
	"samurai/internal/waveform"
)

// Options tunes the nonlinear solver and transient integrator. The zero
// value is completed by Defaults (applied automatically).
type Options struct {
	// MaxNewton is the Newton iteration cap per solve.
	MaxNewton int
	// VTol is the node-voltage convergence tolerance, V.
	VTol float64
	// ResTol is the KCL residual tolerance, A.
	ResTol float64
	// MaxStepV limits the per-iteration voltage update (damping), V.
	MaxStepV float64
	// Gmin is the convergence-aid conductance from every node to
	// ground.
	Gmin float64
	// Method selects the transient integration scheme.
	Method Method
}

// Defaults fills unset fields with robust values.
func (o Options) Defaults() Options {
	if o.MaxNewton == 0 {
		o.MaxNewton = 200
	}
	if o.VTol == 0 {
		o.VTol = 1e-6
	}
	if o.ResTol == 0 {
		o.ResTol = 1e-9
	}
	if o.MaxStepV == 0 {
		o.MaxStepV = 0.5
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	return o
}

// ErrNoConvergence is returned when Newton iteration fails to settle.
var ErrNoConvergence = errors.New("circuit: Newton iteration did not converge")

// newtonSolve runs damped Newton–Raphson at a fixed time/step,
// overwriting st.x with the solution. Iteration counts are published to
// the solver metrics once per call (never inside the loop).
func (c *Circuit) newtonSolve(st *stampCtx, opt Options) error {
	n := c.Size()
	mNewtonSolves.Inc()
	for iter := 0; iter < opt.MaxNewton; iter++ {
		st.a.Zero()
		for i := range st.b {
			st.b[i] = 0
		}
		for _, e := range c.elems {
			e.stamp(st)
		}
		// gmin on every node keeps the Jacobian nonsingular when
		// devices are fully off.
		for i := 0; i < st.nNodes; i++ {
			st.a.Add(i, i, st.gmin)
		}
		lu, err := num.Factor(st.a)
		if err != nil {
			return fmt.Errorf("circuit: singular MNA matrix (floating node or source loop?): %w", err)
		}
		xNew := lu.Solve(st.b)
		// Damp node-voltage updates; branch currents move freely.
		maxDv := 0.0
		for i := 0; i < st.nNodes; i++ {
			dv := xNew[i] - st.x[i]
			if a := math.Abs(dv); a > maxDv {
				maxDv = a
			}
		}
		scale := 1.0
		if maxDv > opt.MaxStepV {
			scale = opt.MaxStepV / maxDv
		}
		for i := 0; i < n; i++ {
			if i < st.nNodes {
				st.x[i] += scale * (xNew[i] - st.x[i])
			} else {
				st.x[i] = xNew[i]
			}
		}
		//lint:ignore floateq scale is exactly the literal 1.0 whenever no damping step-limit was applied
		if scale == 1.0 && maxDv < opt.VTol {
			mNewtonIterations.Add(int64(iter + 1))
			return nil
		}
	}
	mNewtonIterations.Add(int64(opt.MaxNewton))
	mNewtonFailures.Inc()
	return ErrNoConvergence
}

// OperatingPoint computes the DC solution with capacitors open. guess,
// if non-nil, seeds the Newton iteration — essential for bistable
// circuits like the SRAM cell, where the seed selects the stable state.
// The returned map holds every non-ground node voltage.
func (c *Circuit) OperatingPoint(guess map[string]float64, opt Options) (map[string]float64, error) {
	opt = opt.Defaults()
	n := c.Size()
	st := &stampCtx{
		a:      num.NewMatrix(n, n),
		b:      make([]float64, n),
		x:      make([]float64, n),
		nNodes: len(c.nodeNames),
		method: opt.Method,
		gmin:   opt.Gmin,
	}
	for name, v := range guess {
		if idx, ok := c.nodeIndex[name]; ok && idx >= 0 {
			st.x[idx] = v
		}
	}
	// gmin stepping: start with a heavy convergence aid and relax it.
	var err error
	for _, g := range []float64{1e-3, 1e-6, 1e-9, opt.Gmin} {
		st.gmin = g
		if err = c.newtonSolve(st, opt); err != nil {
			return nil, err
		}
	}
	for _, e := range c.elems {
		e.advance(st)
	}
	out := map[string]float64{}
	for i, name := range c.nodeNames {
		out[name] = st.x[i]
	}
	return out, nil
}

// TransientResult holds the sampled solution of a transient run.
type TransientResult struct {
	Times []float64
	// V maps node name → voltage samples aligned with Times.
	V map[string][]float64
	// DeviceID maps MOSFET name → channel-current samples (drain
	// convention); DeviceVgs/DeviceVds hold the terminal biases — the
	// waveforms SAMURAI consumes.
	DeviceID  map[string][]float64
	DeviceVgs map[string][]float64
	DeviceVds map[string][]float64
	// SourceI maps voltage-source name → branch-current samples (the
	// MNA branch unknowns, flowing from the + terminal through the
	// source to the − terminal). Supply-current integrals give write
	// energy and similar power metrics.
	SourceI map[string][]float64
}

// Voltage returns the PWL waveform of a node.
func (r *TransientResult) Voltage(node string) (*waveform.PWL, error) {
	vs, ok := r.V[node]
	if !ok {
		return nil, fmt.Errorf("circuit: node %q not recorded", node)
	}
	return waveform.New(r.Times, vs)
}

// SourceCurrent returns the branch-current waveform of a voltage
// source.
func (r *TransientResult) SourceCurrent(name string) (*waveform.PWL, error) {
	is, ok := r.SourceI[name]
	if !ok {
		return nil, fmt.Errorf("circuit: source %q not recorded", name)
	}
	return waveform.New(r.Times, is)
}

// DeviceBias returns the (Vgs, Id) waveforms of a MOSFET — the inputs
// SAMURAI's trace generator needs for that device.
func (r *TransientResult) DeviceBias(name string) (vgs, id *waveform.PWL, err error) {
	gv, ok := r.DeviceVgs[name]
	if !ok {
		return nil, nil, fmt.Errorf("circuit: device %q not recorded", name)
	}
	iv := r.DeviceID[name]
	vgs, err = waveform.New(r.Times, gv)
	if err != nil {
		return nil, nil, err
	}
	id, err = waveform.New(r.Times, iv)
	return vgs, id, err
}

// TransientSpec describes a transient analysis.
type TransientSpec struct {
	T0, T1 float64
	// Dt is the fixed timestep.
	Dt float64
	// UIC, when true, skips the DC operating point and starts from the
	// provided InitialV (SPICE's "use initial conditions"). Nodes not
	// listed start at 0.
	UIC      bool
	InitialV map[string]float64
	Options  Options
}

// Runner advances a transient analysis one step at a time. It exists so
// that higher layers can co-simulate with the circuit — the
// bidirectionally-coupled RTN mode updates trap states and RTN source
// values between steps (paper future-work #1).
type Runner struct {
	c   *Circuit
	st  *stampCtx
	opt Options
	res *TransientResult
	t   float64
	t1  float64
}

// NewRunner initialises a transient analysis (performing the DC
// operating point unless spec.UIC is set) and records the initial
// state.
func (c *Circuit) NewRunner(spec TransientSpec) (*Runner, error) {
	opt := spec.Options.Defaults()
	if spec.Dt <= 0 || spec.T1 <= spec.T0 {
		return nil, errors.New("circuit: transient needs T1 > T0 and Dt > 0")
	}
	n := c.Size()
	st := &stampCtx{
		a:      num.NewMatrix(n, n),
		b:      make([]float64, n),
		x:      make([]float64, n),
		nNodes: len(c.nodeNames),
		method: opt.Method,
		gmin:   opt.Gmin,
		time:   spec.T0,
	}
	if spec.UIC {
		for name, v := range spec.InitialV {
			if idx, ok := c.nodeIndex[name]; ok && idx >= 0 {
				st.x[idx] = v
			}
		}
	} else {
		op, err := c.OperatingPoint(spec.InitialV, opt)
		if err != nil {
			return nil, fmt.Errorf("circuit: transient DC seed failed: %w", err)
		}
		for name, v := range op {
			st.x[c.nodeIndex[name]] = v
		}
		// One in-place DC solve so the branch-current unknowns (which
		// OperatingPoint does not return) are consistent at the first
		// recorded sample.
		if err := c.newtonSolve(st, opt); err != nil {
			return nil, fmt.Errorf("circuit: transient DC seed failed: %w", err)
		}
	}
	// Initialise per-element history from the starting point.
	st.dt = 0
	for _, e := range c.elems {
		e.advance(st)
	}
	mTransientRuns.Inc()
	r := &Runner{
		c: c, st: st, opt: opt, t: spec.T0, t1: spec.T1,
		res: &TransientResult{
			V:         map[string][]float64{},
			DeviceID:  map[string][]float64{},
			DeviceVgs: map[string][]float64{},
			DeviceVds: map[string][]float64{},
			SourceI:   map[string][]float64{},
		},
	}
	r.record()
	return r, nil
}

// Time returns the current simulation time.
func (r *Runner) Time() float64 { return r.t }

// Done reports whether the run has reached its end time.
func (r *Runner) Done() bool { return r.t >= r.t1 }

// NodeVoltage returns the present voltage of a node (0 for ground,
// an error for unknown names).
func (r *Runner) NodeVoltage(name string) (float64, error) {
	idx, ok := r.c.nodeIndex[name]
	if !ok {
		return 0, fmt.Errorf("circuit: unknown node %q", name)
	}
	return voltage(r.st.x, idx), nil
}

// DeviceOp returns the present bias (vgs, vds) and channel current of a
// MOSFET.
func (r *Runner) DeviceOp(name string) (vgs, vds, id float64, err error) {
	for _, m := range r.c.mosfets {
		if m.id == name {
			op := m.opAt(r.st.x)
			return voltage(r.st.x, m.g) - voltage(r.st.x, m.s),
				voltage(r.st.x, m.d) - voltage(r.st.x, m.s),
				op.Ids, nil
		}
	}
	return 0, 0, 0, fmt.Errorf("circuit: no MOSFET named %q", name)
}

// Step advances the analysis by dt (clamped to the end time) and
// records the solution. If Newton fails to converge at the full step,
// the step is retried as a sequence of halved sub-steps (up to 6
// levels) before giving up — strongly nonlinear transients (e.g. large
// injected RTN spikes during switching) occasionally need the shorter
// horizon.
func (r *Runner) Step(dt float64) error {
	if r.Done() {
		return errors.New("circuit: runner already at end time")
	}
	t := r.t + dt
	if t > r.t1 {
		t = r.t1
	}
	if err := r.advanceTo(t, 0); err != nil {
		return err
	}
	r.record()
	return nil
}

func (r *Runner) advanceTo(t float64, depth int) error {
	saved := append([]float64(nil), r.st.x...)
	r.st.time = t
	r.st.dt = t - r.t
	if err := r.c.newtonSolve(r.st, r.opt); err != nil {
		copy(r.st.x, saved)
		mStepsRejected.Inc()
		if depth >= 6 {
			return fmt.Errorf("circuit: step at t=%.4g s: %w", t, err)
		}
		mid := r.t + (t-r.t)/2
		if err := r.advanceTo(mid, depth+1); err != nil {
			return err
		}
		return r.advanceTo(t, depth+1)
	}
	for _, e := range r.c.elems {
		e.advance(r.st)
	}
	mStepsAccepted.Inc()
	r.t = t
	return nil
}

func (r *Runner) record() {
	res := r.res
	res.Times = append(res.Times, r.t)
	for i, name := range r.c.nodeNames {
		res.V[name] = append(res.V[name], r.st.x[i])
	}
	for _, m := range r.c.mosfets {
		op := m.opAt(r.st.x)
		res.DeviceID[m.id] = append(res.DeviceID[m.id], op.Ids)
		res.DeviceVgs[m.id] = append(res.DeviceVgs[m.id], voltage(r.st.x, m.g)-voltage(r.st.x, m.s))
		res.DeviceVds[m.id] = append(res.DeviceVds[m.id], voltage(r.st.x, m.d)-voltage(r.st.x, m.s))
	}
	for name, vs := range r.c.vsources {
		res.SourceI[name] = append(res.SourceI[name], r.st.x[r.st.nNodes+vs.branch])
	}
}

// Result returns the samples recorded so far.
func (r *Runner) Result() *TransientResult { return r.res }

// Transient runs a fixed-step implicit transient analysis and records
// every node voltage and every MOSFET bias/current at each step.
func (c *Circuit) Transient(spec TransientSpec) (*TransientResult, error) {
	r, err := c.NewRunner(spec)
	if err != nil {
		return nil, err
	}
	for !r.Done() {
		if err := r.Step(spec.Dt); err != nil {
			return nil, err
		}
	}
	return r.Result(), nil
}

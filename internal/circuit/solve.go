package circuit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"samurai/internal/obs/trace"
	"samurai/internal/waveform"
)

// Options tunes the nonlinear solver and transient integrator. The zero
// value is completed by Defaults (applied automatically).
type Options struct {
	// MaxNewton is the Newton iteration cap per solve.
	MaxNewton int
	// VTol is the node-voltage convergence tolerance, V.
	VTol float64
	// ResTol is the KCL residual tolerance, A.
	ResTol float64
	// MaxStepV limits the per-iteration voltage update (damping), V.
	MaxStepV float64
	// Gmin is the convergence-aid conductance from every node to
	// ground.
	Gmin float64
	// Method selects the transient integration scheme.
	Method Method
	// Solver selects the linear-algebra backend for the MNA system.
	// The zero value (SolverAuto) picks dense for small circuits and
	// sparse for array-scale ones.
	Solver Solver
	// Ctx, when non-nil, cancels a transient analysis between steps:
	// Runner.Step returns the wrapped ctx error as soon as the
	// cancellation is observed. The sampled solution up to that point
	// is unaffected — cancellation can only abort a run early, never
	// perturb its numbers.
	Ctx context.Context
}

// Defaults fills unset fields with robust values.
func (o Options) Defaults() Options {
	if o.MaxNewton == 0 {
		o.MaxNewton = 200
	}
	if o.VTol == 0 {
		o.VTol = 1e-6
	}
	if o.ResTol == 0 {
		o.ResTol = 1e-9
	}
	if o.MaxStepV == 0 {
		o.MaxStepV = 0.5
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	return o
}

// Solver selects the linear-algebra backend used for the MNA system.
type Solver int

const (
	// SolverAuto picks dense below sparseAutoThreshold unknowns and
	// sparse at or above it.
	SolverAuto Solver = iota
	// SolverDense forces the dense LU path regardless of size.
	SolverDense
	// SolverSparse forces the sparse LU path regardless of size.
	SolverSparse
)

// sparseAutoThreshold is the unknown count at which SolverAuto switches
// from dense to sparse. A 6T cell plus drivers is ~15 unknowns — dense
// wins there by avoiding all indexing indirection — while even the
// smallest shared-bitline array (8×8 ≈ 200+ unknowns) factors orders of
// magnitude faster sparse. The crossover sits well between the two.
const sparseAutoThreshold = 50

// useSparse reports whether a circuit with n unknowns should use the
// sparse backend under these options.
func (o Options) useSparse(n int) bool {
	switch o.Solver {
	case SolverDense:
		return false
	case SolverSparse:
		return true
	default:
		return n >= sparseAutoThreshold
	}
}

// ErrNoConvergence is returned when Newton iteration fails to settle.
var ErrNoConvergence = errors.New("circuit: Newton iteration did not converge")

// newtonSolve runs damped Newton–Raphson at a fixed time/step,
// overwriting st.x with the solution. Iteration counts are published to
// the solver metrics once per call (never inside the loop). The LU
// factorisation and the candidate iterate live in the stampCtx, so the
// iteration allocates nothing.
//
//lint:hot
func (c *Circuit) newtonSolve(st *stampCtx, opt Options) error {
	n := c.Size()
	mNewtonSolves.Inc()
	for iter := 0; iter < opt.MaxNewton; iter++ {
		st.beginStamp()
		for _, e := range c.elems {
			e.stamp(st)
		}
		// gmin on every node keeps the Jacobian nonsingular when
		// devices are fully off.
		for i := 0; i < st.nNodes; i++ {
			st.addA(i, i, st.gmin)
		}
		if err := st.factor(); err != nil {
			return fmt.Errorf("circuit: singular MNA matrix (floating node or source loop?): %w", err)
		}
		xNew := st.xNew
		copy(xNew, st.b)
		st.solveInPlace(xNew)
		// Damp node-voltage updates; branch currents move freely.
		maxDv := 0.0
		for i := 0; i < st.nNodes; i++ {
			dv := xNew[i] - st.x[i]
			if a := math.Abs(dv); a > maxDv {
				maxDv = a
			}
		}
		scale := 1.0
		if maxDv > opt.MaxStepV {
			scale = opt.MaxStepV / maxDv
		}
		for i := 0; i < n; i++ {
			if i < st.nNodes {
				st.x[i] += scale * (xNew[i] - st.x[i])
			} else {
				st.x[i] = xNew[i]
			}
		}
		//lint:ignore floateq scale is exactly the literal 1.0 whenever no damping step-limit was applied
		if scale == 1.0 && maxDv < opt.VTol {
			// Voltage convergence alone can be fooled by a bad linear
			// solve; only accept the iterate if it also satisfies the
			// system it came from to within the KCL residual tolerance.
			if st.residualOK(opt.ResTol) {
				mNewtonIterations.Add(int64(iter + 1))
				return nil
			}
		}
	}
	mNewtonIterations.Add(int64(opt.MaxNewton))
	mNewtonFailures.Inc()
	return ErrNoConvergence
}

// OperatingPoint computes the DC solution with capacitors open. guess,
// if non-nil, seeds the Newton iteration — essential for bistable
// circuits like the SRAM cell, where the seed selects the stable state.
// The returned map holds every non-ground node voltage.
func (c *Circuit) OperatingPoint(guess map[string]float64, opt Options) (map[string]float64, error) {
	opt = opt.Defaults()
	st := newStampCtx(c, opt)
	for name, v := range guess {
		if idx, ok := c.nodeIndex[name]; ok && idx >= 0 {
			st.x[idx] = v
		}
	}
	// gmin stepping: start with a heavy convergence aid and relax it.
	// Once two consecutive levels agree within VTol on every node the
	// ladder has converged and the remaining (easier) levels are
	// skipped — they could only move the solution by less than the
	// tolerance again.
	prev := make([]float64, st.nNodes)
	for li, g := range []float64{1e-3, 1e-6, 1e-9, opt.Gmin} {
		st.gmin = g
		if err := c.newtonSolve(st, opt); err != nil {
			return nil, err
		}
		if li > 0 {
			settled := true
			for i := 0; i < st.nNodes; i++ {
				if math.Abs(st.x[i]-prev[i]) >= opt.VTol {
					settled = false
					break
				}
			}
			if settled {
				break
			}
		}
		copy(prev, st.x[:st.nNodes])
	}
	for _, e := range c.elems {
		e.advance(st)
	}
	out := map[string]float64{}
	for i, name := range c.nodeNames {
		out[name] = st.x[i]
	}
	return out, nil
}

// TransientResult holds the sampled solution of a transient run.
type TransientResult struct {
	Times []float64
	// V maps node name → voltage samples aligned with Times.
	V map[string][]float64
	// DeviceID maps MOSFET name → channel-current samples (drain
	// convention); DeviceVgs/DeviceVds hold the terminal biases — the
	// waveforms SAMURAI consumes.
	DeviceID  map[string][]float64
	DeviceVgs map[string][]float64
	DeviceVds map[string][]float64
	// SourceI maps voltage-source name → branch-current samples (the
	// MNA branch unknowns, flowing from the + terminal through the
	// source to the − terminal). Supply-current integrals give write
	// energy and similar power metrics.
	SourceI map[string][]float64
}

// Voltage returns the PWL waveform of a node.
func (r *TransientResult) Voltage(node string) (*waveform.PWL, error) {
	vs, ok := r.V[node]
	if !ok {
		return nil, fmt.Errorf("circuit: node %q not recorded", node)
	}
	return waveform.New(r.Times, vs)
}

// SourceCurrent returns the branch-current waveform of a voltage
// source.
func (r *TransientResult) SourceCurrent(name string) (*waveform.PWL, error) {
	is, ok := r.SourceI[name]
	if !ok {
		return nil, fmt.Errorf("circuit: source %q not recorded", name)
	}
	return waveform.New(r.Times, is)
}

// DeviceBias returns the (Vgs, Id) waveforms of a MOSFET — the inputs
// SAMURAI's trace generator needs for that device.
func (r *TransientResult) DeviceBias(name string) (vgs, id *waveform.PWL, err error) {
	gv, ok := r.DeviceVgs[name]
	if !ok {
		return nil, nil, fmt.Errorf("circuit: device %q not recorded", name)
	}
	iv := r.DeviceID[name]
	vgs, err = waveform.New(r.Times, gv)
	if err != nil {
		return nil, nil, err
	}
	id, err = waveform.New(r.Times, iv)
	return vgs, id, err
}

// TransientSpec describes a transient analysis.
type TransientSpec struct {
	T0, T1 float64
	// Dt is the fixed timestep.
	Dt float64
	// UIC, when true, skips the DC operating point and starts from the
	// provided InitialV (SPICE's "use initial conditions"). Nodes not
	// listed start at 0.
	UIC      bool
	InitialV map[string]float64
	Options  Options
}

// Runner advances a transient analysis one step at a time. It exists so
// that higher layers can co-simulate with the circuit — the
// bidirectionally-coupled RTN mode updates trap states and RTN source
// values between steps (paper future-work #1).
type Runner struct {
	c   *Circuit
	st  *stampCtx
	opt Options
	res *TransientResult
	t   float64
	t1  float64
	// saved backs up st.x across a trial step so a rejected Newton
	// solve can be rolled back without allocating. The recursive
	// sub-stepping in advanceTo may overwrite it, but every frame is
	// done reading the buffer before it recurses, so one per runner
	// suffices.
	saved []float64
	// Recording columns, resolved once at NewRunner and preallocated to
	// the expected sample count. record() only index-assigns into them;
	// the name-keyed TransientResult maps are refreshed by Result().
	n         int       // samples recorded so far
	times     []float64 // sample instants
	nodeCols  [][]float64
	idCols    [][]float64 // per c.mosfets entry
	vgsCols   [][]float64
	vdsCols   [][]float64
	srcNames  []string // voltage sources in recording order
	srcBranch []int
	srcCols   [][]float64
}

// NewRunner initialises a transient analysis (performing the DC
// operating point unless spec.UIC is set) and records the initial
// state.
func (c *Circuit) NewRunner(spec TransientSpec) (*Runner, error) {
	opt := spec.Options.Defaults()
	if spec.Dt <= 0 || spec.T1 <= spec.T0 {
		return nil, errors.New("circuit: transient needs T1 > T0 and Dt > 0")
	}
	st := newStampCtx(c, opt)
	st.time = spec.T0
	if spec.UIC {
		for name, v := range spec.InitialV {
			if idx, ok := c.nodeIndex[name]; ok && idx >= 0 {
				st.x[idx] = v
			}
		}
	} else {
		op, err := c.OperatingPoint(spec.InitialV, opt)
		if err != nil {
			return nil, fmt.Errorf("circuit: transient DC seed failed: %w", err)
		}
		for name, v := range op {
			st.x[c.nodeIndex[name]] = v
		}
		// One in-place DC solve so the branch-current unknowns (which
		// OperatingPoint does not return) are consistent at the first
		// recorded sample.
		if err := c.newtonSolve(st, opt); err != nil {
			return nil, fmt.Errorf("circuit: transient DC seed failed: %w", err)
		}
	}
	// Initialise per-element history from the starting point.
	st.dt = 0
	for _, e := range c.elems {
		e.advance(st)
	}
	mTransientRuns.Inc()
	r := &Runner{
		c: c, st: st, opt: opt, t: spec.T0, t1: spec.T1,
		saved: make([]float64, c.Size()),
		res: &TransientResult{
			V:         map[string][]float64{},
			DeviceID:  map[string][]float64{},
			DeviceVgs: map[string][]float64{},
			DeviceVds: map[string][]float64{},
			SourceI:   map[string][]float64{},
		},
	}
	// One sample per step plus the initial state; growRecording covers
	// the rare extra step introduced by floating-point drift of t.
	capHint := int(math.Ceil((spec.T1-spec.T0)/spec.Dt)) + 1
	r.times = make([]float64, capHint)
	r.nodeCols = makeCols(len(c.nodeNames), capHint)
	r.idCols = makeCols(len(c.mosfets), capHint)
	r.vgsCols = makeCols(len(c.mosfets), capHint)
	r.vdsCols = makeCols(len(c.mosfets), capHint)
	r.srcNames = make([]string, 0, len(c.vsources))
	for name := range c.vsources {
		r.srcNames = append(r.srcNames, name)
	}
	sort.Strings(r.srcNames)
	r.srcBranch = make([]int, len(r.srcNames))
	for i, name := range r.srcNames {
		r.srcBranch[i] = c.vsources[name].branch
	}
	r.srcCols = makeCols(len(r.srcNames), capHint)
	r.record()
	return r, nil
}

// makeCols allocates n column buffers of the given length.
func makeCols(n, length int) [][]float64 {
	cols := make([][]float64, n)
	for i := range cols {
		cols[i] = make([]float64, length)
	}
	return cols
}

// Time returns the current simulation time.
func (r *Runner) Time() float64 { return r.t }

// MatrixNNZ reports the number of structural nonzeros in the MNA
// matrix pattern: the frozen CSR pattern size on the sparse backend,
// n² on the dense one. The sparse pattern exists once the first solve
// has stamped (NewRunner's DC seed or first step); before that it
// reports 0.
func (r *Runner) MatrixNNZ() int {
	if r.st.a != nil {
		return r.st.a.Rows * r.st.a.Cols
	}
	if r.st.sp == nil {
		return 0
	}
	return r.st.sp.NNZ()
}

// Done reports whether the run has reached its end time.
func (r *Runner) Done() bool { return r.t >= r.t1 }

// NodeVoltage returns the present voltage of a node (0 for ground,
// an error for unknown names).
func (r *Runner) NodeVoltage(name string) (float64, error) {
	idx, ok := r.c.nodeIndex[name]
	if !ok {
		return 0, fmt.Errorf("circuit: unknown node %q", name)
	}
	return voltage(r.st.x, idx), nil
}

// DeviceOp returns the present bias (vgs, vds) and channel current of a
// MOSFET.
func (r *Runner) DeviceOp(name string) (vgs, vds, id float64, err error) {
	for _, m := range r.c.mosfets {
		if m.id == name {
			op := m.opAt(r.st.x)
			return voltage(r.st.x, m.g) - voltage(r.st.x, m.s),
				voltage(r.st.x, m.d) - voltage(r.st.x, m.s),
				op.Ids, nil
		}
	}
	return 0, 0, 0, fmt.Errorf("circuit: no MOSFET named %q", name)
}

// Step advances the analysis by dt (clamped to the end time) and
// records the solution. If Newton fails to converge at the full step,
// the step is retried as a sequence of halved sub-steps (up to 6
// levels) before giving up — strongly nonlinear transients (e.g. large
// injected RTN spikes during switching) occasionally need the shorter
// horizon.
func (r *Runner) Step(dt float64) error {
	if r.Done() {
		return errors.New("circuit: runner already at end time")
	}
	if r.opt.Ctx != nil {
		if err := r.opt.Ctx.Err(); err != nil {
			return fmt.Errorf("circuit: transient canceled at t=%.4g s: %w", r.t, err)
		}
	}
	t := r.t + dt
	if t > r.t1 {
		t = r.t1
	}
	if err := r.advanceTo(t, 0); err != nil {
		return err
	}
	r.record()
	return nil
}

//lint:hot
func (r *Runner) advanceTo(t float64, depth int) error {
	copy(r.saved, r.st.x)
	r.st.time = t
	r.st.dt = t - r.t
	if err := r.c.newtonSolve(r.st, r.opt); err != nil {
		copy(r.st.x, r.saved)
		mStepsRejected.Inc()
		if depth >= 6 {
			return fmt.Errorf("circuit: step at t=%.4g s: %w", t, err)
		}
		mid := r.t + (t-r.t)/2
		if err := r.advanceTo(mid, depth+1); err != nil {
			return err
		}
		return r.advanceTo(t, depth+1)
	}
	for _, e := range r.c.elems {
		e.advance(r.st)
	}
	mStepsAccepted.Inc()
	r.t = t
	return nil
}

//lint:hot
func (r *Runner) record() {
	k := r.n
	if k == len(r.times) {
		r.growRecording()
	}
	x := r.st.x
	r.times[k] = r.t
	for i, col := range r.nodeCols {
		col[k] = x[i]
	}
	for i, m := range r.c.mosfets {
		op := m.opAt(x)
		r.idCols[i][k] = op.Ids
		r.vgsCols[i][k] = voltage(x, m.g) - voltage(x, m.s)
		r.vdsCols[i][k] = voltage(x, m.d) - voltage(x, m.s)
	}
	for i, br := range r.srcBranch {
		r.srcCols[i][k] = x[r.st.nNodes+br]
	}
	r.n++
}

// growRecording doubles every recording column. It only runs when the
// NewRunner capacity estimate is exceeded (floating-point drift of the
// step accumulator), so record itself stays allocation-free.
func (r *Runner) growRecording() {
	grow := func(col []float64) []float64 {
		out := make([]float64, 2*len(col)+1)
		copy(out, col)
		return out
	}
	r.times = grow(r.times)
	for _, cols := range [][][]float64{r.nodeCols, r.idCols, r.vgsCols, r.vdsCols, r.srcCols} {
		for i := range cols {
			cols[i] = grow(cols[i])
		}
	}
}

// Result returns the samples recorded so far. The name-keyed maps are
// refreshed from the recording columns on each call; the returned
// slices alias the live recording buffers up to their current length,
// exactly as the previous append-based recorder did.
func (r *Runner) Result() *TransientResult {
	res := r.res
	n := r.n
	res.Times = r.times[:n]
	for i, name := range r.c.nodeNames {
		res.V[name] = r.nodeCols[i][:n]
	}
	for i, m := range r.c.mosfets {
		res.DeviceID[m.id] = r.idCols[i][:n]
		res.DeviceVgs[m.id] = r.vgsCols[i][:n]
		res.DeviceVds[m.id] = r.vdsCols[i][:n]
	}
	for i, name := range r.srcNames {
		res.SourceI[name] = r.srcCols[i][:n]
	}
	return res
}

// Transient runs a fixed-step implicit transient analysis and records
// every node voltage and every MOSFET bias/current at each step. When
// spec.Options.Ctx carries a trace position, the whole analysis is
// wrapped in a circuit.transient span (timing only — the solution is
// bit-identical with or without tracing).
func (c *Circuit) Transient(spec TransientSpec) (*TransientResult, error) {
	_, span := trace.Start(spec.Options.Ctx, "circuit.transient")
	defer span.End()
	r, err := c.NewRunner(spec)
	if err != nil {
		return nil, err
	}
	for !r.Done() {
		if err := r.Step(spec.Dt); err != nil {
			return nil, err
		}
	}
	return r.Result(), nil
}

package circuit

import "samurai/internal/obs"

// Solver instrumentation. Counters are process-wide atomics resolved
// once at init; the Newton loop itself counts into locals and publishes
// once per solve, so the per-iteration cost of observability is zero.
// None of these touch simulation state or randomness — see the
// determinism guarantee in internal/obs.
var (
	mNewtonSolves = obs.GetCounter("samurai_circuit_newton_solves_total",
		"completed Newton solves (converged or not)")
	mNewtonIterations = obs.GetCounter("samurai_circuit_newton_iterations_total",
		"Newton iterations across all solves")
	mNewtonFailures = obs.GetCounter("samurai_circuit_newton_failures_total",
		"Newton solves that hit the iteration cap without converging")
	mStepsAccepted = obs.GetCounter("samurai_circuit_steps_accepted_total",
		"transient steps accepted (including halved sub-steps)")
	mStepsRejected = obs.GetCounter("samurai_circuit_steps_rejected_total",
		"transient steps rejected and retried at half the horizon")
	mTransientRuns = obs.GetCounter("samurai_circuit_transient_runs_total",
		"transient analyses started")
)

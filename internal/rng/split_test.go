package rng

import (
	"math"
	"testing"
)

// The norandglobal lint rule rests on one statistical premise: injected
// streams may be Split freely, and the children behave as independent
// generators. These tests pin that premise with a fixed seed, so a
// regression in Split's mixing shows up as a deterministic failure.

// pearson computes the sample correlation of two equal-length series.
func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	return cov / math.Sqrt(va*vb)
}

// draws collects n uniform draws from a stream.
func draws(s *Stream, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Float64()
	}
	return out
}

// Child streams of a common parent must be pairwise uncorrelated on
// overlapping draw windows. With N = 4096 draws the null standard error
// of r is 1/sqrt(N) ≈ 0.0156; the pinned threshold of 0.08 is over 5σ,
// so any real coupling between siblings trips it while the fixed seed
// keeps the test fully deterministic.
func TestSplitChildStreamsPairwiseIndependent(t *testing.T) {
	const (
		children  = 24
		n         = 4096
		threshold = 0.08
	)
	parent := New(0xfeedface)
	series := make([][]float64, children)
	for i := range series {
		series[i] = draws(parent.Split(uint64(i)), n)
	}
	worst := 0.0
	for i := 0; i < children; i++ {
		for j := i + 1; j < children; j++ {
			r := math.Abs(pearson(series[i], series[j]))
			if r > worst {
				worst = r
			}
			if r > threshold {
				t.Errorf("children %d,%d: |corr| = %.4f > %.2f", i, j, r, threshold)
			}
		}
	}
	t.Logf("worst pairwise |corr| over %d pairs: %.4f", children*(children-1)/2, worst)
}

// Lagged cross-correlation catches children that are shifted copies of
// the same underlying sequence — zero-lag correlation alone misses that
// failure mode entirely.
func TestSplitChildStreamsLagIndependent(t *testing.T) {
	const (
		n         = 4096
		threshold = 0.08
	)
	parent := New(0xdecafbad)
	a := draws(parent.Split(1), n+64)
	b := draws(parent.Split(2), n+64)
	for _, lag := range []int{1, 2, 7, 31, 64} {
		if r := math.Abs(pearson(a[:n], b[lag:lag+n])); r > threshold {
			t.Errorf("lag %d: |corr| = %.4f > %.2f", lag, r, threshold)
		}
		if r := math.Abs(pearson(a[lag:lag+n], b[:n])); r > threshold {
			t.Errorf("lag -%d: |corr| = %.4f > %.2f", lag, r, threshold)
		}
	}
}

// A child must also be independent of its parent's own draw sequence
// (Split reads parent identity without advancing it, so the histories
// could plausibly overlap if the mixing were weak).
func TestSplitChildIndependentOfParent(t *testing.T) {
	const (
		n         = 4096
		threshold = 0.08
	)
	parent := New(0xabad1dea)
	child := parent.Split(7)
	pa := draws(parent, n)
	ch := draws(child, n)
	if r := math.Abs(pearson(pa, ch)); r > threshold {
		t.Errorf("parent/child |corr| = %.4f > %.2f", r, threshold)
	}
}

// Identical ids must give identical children (Split is a pure function
// of parent identity and id), and distinct ids distinct children — the
// property the per-transistor stream derivation in samurai.Run relies
// on for order-independence.
func TestSplitDeterministicPerID(t *testing.T) {
	p1 := New(99)
	p2 := New(99)
	a := draws(p1.Split(5), 64)
	b := draws(p2.Split(5), 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Split(5) not reproducible at draw %d: %g vs %g", i, a[i], b[i])
		}
	}
	c := draws(p1.Split(6), 64)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("Split(5) and Split(6) share %d/64 draws", same)
	}
}

// Child uniforms must actually be uniform: mean 1/2 and variance 1/12
// within pinned tolerances, catching a Split that produces valid-looking
// but biased children.
func TestSplitChildMoments(t *testing.T) {
	const n = 1 << 14
	parent := New(0xc0ffee)
	for id := uint64(0); id < 8; id++ {
		xs := draws(parent.Split(id), n)
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= n
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= n
		if math.Abs(mean-0.5) > 0.01 {
			t.Errorf("child %d: mean = %.4f, want 0.5±0.01", id, mean)
		}
		if math.Abs(v-1.0/12.0) > 0.005 {
			t.Errorf("child %d: var = %.4f, want %.4f±0.005", id, v, 1.0/12.0)
		}
	}
}
